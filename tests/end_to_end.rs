//! Cross-crate integration tests: the full journey a binary takes
//! through this system -- compile (mini-C) → serialize to ELF bytes →
//! strip → parse → harden → run -- plus properties that span subsystems
//! (optimization-level equivalence, metadata hardening against foreign
//! corruption, allow-list round-trips).

use redfat::core::{
    collect_allowlist, harden, instrument_profile, run_once, AllowList, HardenConfig, LowFatPolicy,
};
use redfat::emu::{ErrorMode, MemErrKind, RunResult};
use redfat::minic::compile;
use redfat::vm::layout;

const VULN_PROGRAM: &str = "
fn main() {
    var a = malloc(10 * 8);
    var b = malloc(10 * 8);
    for (var i = 0; i < 10; i = i + 1) { a[i] = i; b[i] = 100 + i; }
    var idx = input();
    a[idx] = 7;
    var sum = 0;
    for (var i = 0; i < 10; i = i + 1) { sum = sum + a[i] + b[i]; }
    print(sum);
    return 0;
}";

#[test]
fn full_pipeline_through_elf_bytes_and_strip() {
    // Compile, serialize, strip, re-parse: the hardening input is a
    // genuinely stripped binary reconstructed from disk bytes.
    let mut image = compile(VULN_PROGRAM).expect("compiles");
    assert!(!image.symbols.is_empty());
    image.strip();
    let bytes = image.to_bytes();
    let stripped = redfat::elf::Image::parse(&bytes).expect("parses");
    assert!(stripped.symbols.is_empty());

    let hardened = harden(&stripped, &HardenConfig::with_merge(LowFatPolicy::All)).unwrap();

    // Behavior preserved on benign input.
    let base = run_once(&stripped, vec![4], ErrorMode::Abort, 10_000_000);
    let hard = run_once(&hardened.image, vec![4], ErrorMode::Abort, 10_000_000);
    assert_eq!(base.result, RunResult::Exited(0));
    assert_eq!(hard.result, RunResult::Exited(0));
    assert_eq!(base.io.out_ints, hard.io.out_ints);

    // Attack detected. Index 12 lands in object b's user data
    // (objects are 96 bytes apart in the 96-byte class; 12 elements =
    // 96 bytes: exactly the neighbor's user start).
    let attacked = run_once(&hardened.image, vec![12], ErrorMode::Abort, 10_000_000);
    assert!(
        matches!(attacked.result, RunResult::MemoryError(_)),
        "got {:?}",
        attacked.result
    );
}

#[test]
fn hardened_binary_serializes_and_reloads() {
    // A hardened image (trampolines, possibly trap tables) must survive
    // the ELF round trip: harden → bytes → parse → run.
    let image = compile(VULN_PROGRAM).unwrap();
    let hardened = harden(&image, &HardenConfig::with_merge(LowFatPolicy::All)).unwrap();
    let bytes = hardened.image.to_bytes();
    let reloaded = redfat::elf::Image::parse(&bytes).unwrap();
    let out = run_once(&reloaded, vec![3], ErrorMode::Abort, 10_000_000);
    assert_eq!(out.result, RunResult::Exited(0));
    let attacked = run_once(&reloaded, vec![12], ErrorMode::Abort, 10_000_000);
    assert!(matches!(attacked.result, RunResult::MemoryError(_)));
}

#[test]
fn all_optimization_levels_agree_on_output_and_detection() {
    let image = compile(VULN_PROGRAM).unwrap();
    let baseline = run_once(&image, vec![4], ErrorMode::Abort, 10_000_000);
    let expected = baseline.io.out_ints.clone();
    for (name, cfg) in [
        ("unopt", HardenConfig::unoptimized(LowFatPolicy::All)),
        ("+elim", HardenConfig::with_elim(LowFatPolicy::All)),
        ("+batch", HardenConfig::with_batch(LowFatPolicy::All)),
        ("+merge", HardenConfig::with_merge(LowFatPolicy::All)),
        ("-size", HardenConfig::minus_size(LowFatPolicy::All)),
        ("-reads", HardenConfig::minus_reads(LowFatPolicy::All)),
    ] {
        let hardened = harden(&image, &cfg).unwrap();
        let ok = run_once(&hardened.image, vec![4], ErrorMode::Abort, 10_000_000);
        assert_eq!(ok.result, RunResult::Exited(0), "{name}");
        assert_eq!(ok.io.out_ints, expected, "{name} changed output");
        let bad = run_once(&hardened.image, vec![12], ErrorMode::Abort, 10_000_000);
        assert!(
            matches!(bad.result, RunResult::MemoryError(_)),
            "{name} missed the attack: {:?}",
            bad.result
        );
    }
}

#[test]
fn optimization_ladder_monotonically_cheapens() {
    // More optimization must never cost more cycles (on this workload).
    let image = compile(
        "fn main() {
            var a = malloc(64 * 8);
            var s = 0;
            for (var it = 0; it < 50; it = it + 1) {
                for (var i = 0; i < 64; i = i + 1) { a[i] = i * it; }
                for (var i = 0; i < 64; i = i + 1) { s = s + a[i]; }
            }
            print(s);
            return 0;
        }",
    )
    .unwrap();
    let mut cycles = Vec::new();
    for cfg in [
        HardenConfig::unoptimized(LowFatPolicy::All),
        HardenConfig::with_elim(LowFatPolicy::All),
        HardenConfig::with_batch(LowFatPolicy::All),
        HardenConfig::with_merge(LowFatPolicy::All),
        HardenConfig::minus_size(LowFatPolicy::All),
        HardenConfig::minus_reads(LowFatPolicy::All),
    ] {
        let hardened = harden(&image, &cfg).unwrap();
        let out = run_once(&hardened.image, vec![], ErrorMode::Abort, 100_000_000);
        assert_eq!(out.result, RunResult::Exited(0));
        cycles.push(out.counters.cycles);
    }
    for w in cycles.windows(2) {
        assert!(w[1] <= w[0], "optimization increased cost: {cycles:?}");
    }
    // And the fully-hardened binary costs more than baseline.
    let base = run_once(&image, vec![], ErrorMode::Abort, 100_000_000);
    assert!(cycles[0] > base.counters.cycles);
}

#[test]
fn metadata_hardening_catches_foreign_corruption() {
    // An "uninstrumented library" (simulated by a privileged host poke)
    // corrupts the in-band SIZE metadata to a huge value, trying to turn
    // the bounds check into a no-op. Metadata hardening (§4.2) validates
    // SIZE against the immutable class size and aborts.
    let image = compile(
        "fn main() {
            var a = malloc(40);
            var idx = input();
            a[idx] = 1;
            print(a[0]);
            return 0;
        }",
    )
    .unwrap();
    let hardened = harden(&image, &HardenConfig::with_merge(LowFatPolicy::All)).unwrap();

    // Run until after malloc, then corrupt. Easiest deterministic
    // vector: corrupt *before* the indexed store by hooking the runtime
    // -- here we simply run the whole program against a pre-corrupted
    // heap by replaying: load, corrupt first object's metadata, run.
    let runtime = redfat::emu::HostRuntime::new(ErrorMode::Abort).with_input(vec![2]);
    let mut emu = redfat::emu::Emu::load_image(&hardened.image, runtime).expect("loads");
    // Execute until the first malloc has happened (watch out_ints? no:
    // step until a heap object exists).
    let mut corrupted = false;
    let result = loop {
        match emu.step() {
            Ok(None) => {
                if !corrupted {
                    let first_obj = layout::region_base(4).div_ceil(64) * 64;
                    if emu.vm.read_u64(first_obj).map(|v| v == 40).unwrap_or(false) {
                        // SIZE=40 metadata present: overwrite with 1 << 40.
                        emu.vm
                            .write_privileged(first_obj, &(1u64 << 40).to_le_bytes())
                            .unwrap();
                        corrupted = true;
                    }
                }
            }
            Ok(Some(r)) => break r,
            Err(e) => panic!("emu error: {e}"),
        }
    };
    assert!(corrupted, "test never saw the allocation");
    match result {
        RunResult::MemoryError(e) => assert_eq!(e.kind, MemErrKind::Metadata),
        other => panic!("metadata corruption not detected: {other:?}"),
    }
}

#[test]
fn minus_size_accepts_what_metadata_hardening_rejects() {
    // Same corruption, but with -size: the metadata check is gone, so
    // the (now bogus) bounds check passes. This is the documented
    // security/performance trade of the -size column.
    let image = compile(
        "fn main() {
            var a = malloc(40);
            var idx = input();
            a[idx] = 1;
            print(a[0]);
            return 0;
        }",
    )
    .unwrap();
    let hardened = harden(&image, &HardenConfig::minus_size(LowFatPolicy::All)).unwrap();
    let runtime = redfat::emu::HostRuntime::new(ErrorMode::Abort).with_input(vec![2]);
    let mut emu = redfat::emu::Emu::load_image(&hardened.image, runtime).expect("loads");
    let mut corrupted = false;
    let result = loop {
        match emu.step() {
            Ok(None) => {
                if !corrupted {
                    let first_obj = layout::region_base(4).div_ceil(64) * 64;
                    if emu.vm.read_u64(first_obj).map(|v| v == 40).unwrap_or(false) {
                        emu.vm
                            .write_privileged(first_obj, &(1u64 << 40).to_le_bytes())
                            .unwrap();
                        corrupted = true;
                    }
                }
            }
            Ok(Some(r)) => break r,
            Err(e) => panic!("emu error: {e}"),
        }
    };
    assert!(corrupted);
    assert_eq!(
        result,
        RunResult::Exited(0),
        "-size tolerates metadata lies"
    );
}

#[test]
fn allowlist_text_roundtrip_through_production() {
    let image = compile(
        "fn main() {
            var t = malloc(16 * 8);
            var t1 = t - 8;
            for (var i = 0; i < 16; i = i + 1) { t[i] = i; }
            var i = input();
            print(t1[i]);
            return 0;
        }",
    )
    .unwrap();
    let prof = instrument_profile(&image).unwrap();
    let out = run_once(&prof.image, vec![8], ErrorMode::Log, 10_000_000);
    assert_eq!(out.result, RunResult::Exited(0));
    let allow = collect_allowlist(&out.profile);

    // Round-trip through the allow.lst text format.
    let text = allow.to_text();
    let parsed = AllowList::from_text(&text).unwrap();
    assert_eq!(parsed, allow);

    let cfg = HardenConfig::with_merge(LowFatPolicy::AllowList(parsed));
    let hardened = harden(&image, &cfg).unwrap();
    let ok = run_once(&hardened.image, vec![8], ErrorMode::Abort, 10_000_000);
    assert_eq!(ok.result, RunResult::Exited(0), "no false positive");
}

#[test]
fn double_free_and_invalid_free_reported_by_allocator() {
    let image = compile(
        "fn main() {
            var a = malloc(32);
            free(a);
            free(a);   // double free: runtime ignores gracefully
            print(1);
            return 0;
        }",
    )
    .unwrap();
    // The runtime tolerates the bad free (real RedFat's allocator
    // aborts; ours records) -- what matters is no crash and no heap
    // corruption afterwards.
    let out = run_once(&image, vec![], ErrorMode::Abort, 1_000_000);
    assert_eq!(out.result, RunResult::Exited(0));
}

#[test]
fn use_after_free_detected_until_reuse() {
    let image = compile(
        "fn main() {
            var a = malloc(40);
            a[0] = 5;
            free(a);
            var v = a[0];   // UAF read
            print(v);
            return 0;
        }",
    )
    .unwrap();
    let hardened = harden(&image, &HardenConfig::with_merge(LowFatPolicy::All)).unwrap();
    let out = run_once(&hardened.image, vec![], ErrorMode::Abort, 1_000_000);
    assert!(matches!(out.result, RunResult::MemoryError(_)));
}

#[test]
fn position_independent_images_harden_too() {
    // The paper stresses PIC/non-PIC agnosticism (§1, §7). ET_DYN images
    // go through the identical pipeline.
    let mut image = compile(VULN_PROGRAM).unwrap();
    image.kind = redfat::elf::ImageKind::Dyn;
    let bytes = image.to_bytes();
    let image = redfat::elf::Image::parse(&bytes).unwrap();
    assert_eq!(image.kind, redfat::elf::ImageKind::Dyn);
    let hardened = harden(&image, &HardenConfig::with_merge(LowFatPolicy::All)).unwrap();
    let ok = run_once(&hardened.image, vec![4], ErrorMode::Abort, 10_000_000);
    assert_eq!(ok.result, RunResult::Exited(0));
    let bad = run_once(&hardened.image, vec![12], ErrorMode::Abort, 10_000_000);
    assert!(matches!(bad.result, RunResult::MemoryError(_)));
}

#[test]
fn lowfat_only_ablation_misses_uaf_catches_skip() {
    // The complementarity matrix's key cells, asserted in the suite.
    let skip = compile(
        "fn main() {
            var a = malloc(40);
            var b = malloc(40);
            b[0] = 1;
            a[input()] = 7;
            return 0;
        }",
    )
    .unwrap();
    let uaf = compile(
        "fn main() {
            var a = malloc(40);
            free(a);
            a[input()] = 7;
            return 0;
        }",
    )
    .unwrap();
    let lowfat = redfat::core::HardenConfig::lowfat_only();
    let h_skip = harden(&skip, &lowfat).unwrap();
    let out = run_once(&h_skip.image, vec![10], ErrorMode::Abort, 1_000_000);
    assert!(
        matches!(out.result, RunResult::MemoryError(_)),
        "lowfat catches skips"
    );
    let h_uaf = harden(&uaf, &lowfat).unwrap();
    let out = run_once(&h_uaf.image, vec![1], ErrorMode::Abort, 1_000_000);
    assert_eq!(out.result, RunResult::Exited(0), "lowfat alone misses UAF");
}
