//! §7.4 integration: separately instrumented images -- protection
//! follows instrumentation, module by module.

use redfat::core::{harden, harden_with_bases, HardenConfig, LowFatPolicy};
use redfat::elf::Image;
use redfat::emu::{Emu, ErrorMode, HostRuntime, RunResult};
use redfat::minic::{compile, compile_library};
use redfat::rewriter::RewriteBases;

const LIB_SRC: &str = "
fn lib_store(buf, idx) {
    buf[idx] = 0x41;
    return buf[0];
}
fn lib_sum(buf, n) {
    var s = 0;
    for (var i = 0; i < n; i = i + 1) { s = s + buf[i]; }
    return s;
}";

const MAIN_SRC: &str = "
fn main() {
    var store_fn = input();
    var sum_fn = input();
    var idx = input();
    var who = input();
    var a = malloc(40);
    var b = malloc(40);
    b[0] = 1;
    if (who == 0) {
        a[idx] = 7;
    } else {
        callptr(store_fn, a, idx);
    }
    print(callptr(sum_fn, a, 5));
    return 0;
}";

const LIB_BASES: RewriteBases = RewriteBases {
    trampoline: 0x7800_0000,
    trap_table: 0x77F0_0000,
};

fn run(main_img: &Image, lib_img: &Image, idx: i64, who: i64) -> (RunResult, Vec<i64>) {
    let store_fn = lib_img.symbol("lib_store").unwrap().value as i64;
    let sum_fn = lib_img.symbol("lib_sum").unwrap().value as i64;
    let rt = HostRuntime::new(ErrorMode::Abort).with_input(vec![store_fn, sum_fn, idx, who]);
    let mut emu = Emu::load_images(&[main_img, lib_img], rt).expect("loads");
    let r = emu.run(10_000_000);
    (r, emu.runtime.io.out_ints.clone())
}

#[test]
fn protection_follows_instrumentation() {
    let main_plain = compile(MAIN_SRC).unwrap();
    let lib_plain = compile_library(LIB_SRC, 0x0100_0000, 0x0120_0000).unwrap();
    let cfg = HardenConfig::with_merge(LowFatPolicy::All);
    let main_hard = harden(&main_plain, &cfg).unwrap().image;
    let lib_hard = harden_with_bases(&lib_plain, &cfg, LIB_BASES)
        .unwrap()
        .image;

    let detected = |r: &RunResult| matches!(r, RunResult::MemoryError(_));
    let atk = 10;

    // Nothing hardened: both bugs silent.
    assert!(!detected(&run(&main_plain, &lib_plain, atk, 0).0));
    assert!(!detected(&run(&main_plain, &lib_plain, atk, 1).0));
    // Main hardened: only main's bug caught.
    assert!(detected(&run(&main_hard, &lib_plain, atk, 0).0));
    assert!(!detected(&run(&main_hard, &lib_plain, atk, 1).0));
    // Library hardened: only the library's bug caught.
    assert!(!detected(&run(&main_plain, &lib_hard, atk, 0).0));
    assert!(detected(&run(&main_plain, &lib_hard, atk, 1).0));
    // Both hardened: both caught.
    assert!(detected(&run(&main_hard, &lib_hard, atk, 0).0));
    assert!(detected(&run(&main_hard, &lib_hard, atk, 1).0));
}

#[test]
fn cross_image_calls_compute_correctly() {
    let main_plain = compile(MAIN_SRC).unwrap();
    let lib_plain = compile_library(LIB_SRC, 0x0100_0000, 0x0120_0000).unwrap();
    let cfg = HardenConfig::with_merge(LowFatPolicy::All);
    let main_hard = harden(&main_plain, &cfg).unwrap().image;
    let lib_hard = harden_with_bases(&lib_plain, &cfg, LIB_BASES)
        .unwrap()
        .image;

    // Benign run through every combination gives identical output:
    // the library stores 0x41 at a[2], then sums the first 5 elements.
    let mut outputs = Vec::new();
    for (m, l) in [
        (&main_plain, &lib_plain),
        (&main_hard, &lib_plain),
        (&main_plain, &lib_hard),
        (&main_hard, &lib_hard),
    ] {
        let (r, out) = run(m, l, 2, 1);
        assert_eq!(r, RunResult::Exited(0));
        outputs.push(out);
    }
    assert!(outputs.windows(2).all(|w| w[0] == w[1]), "{outputs:?}");
    assert_eq!(outputs[0], vec![0x41]);
}

#[test]
fn library_symbols_survive_hardening() {
    let lib = compile_library(LIB_SRC, 0x0100_0000, 0x0120_0000).unwrap();
    let hard = harden_with_bases(
        &lib,
        &HardenConfig::with_merge(LowFatPolicy::All),
        LIB_BASES,
    )
    .unwrap()
    .image;
    // Exported entry points stay at their original addresses: trampoline
    // rewriting never moves function entries.
    assert_eq!(
        lib.symbol("lib_store").unwrap().value,
        hard.symbol("lib_store").unwrap().value
    );
    assert_eq!(
        lib.symbol("lib_sum").unwrap().value,
        hard.symbol("lib_sum").unwrap().value
    );
}
