//! Allocator-policy ablations called out in DESIGN.md: the quarantine's
//! role in use-after-free detection, and basic heap randomization
//! (paper §8: "our current implementation also incorporates basic heap
//! randomization").

use redfat::core::{harden, HardenConfig, LowFatPolicy};
use redfat::emu::{Emu, ErrorMode, HostRuntime, RunResult};
use redfat::lowfat::LowFatConfig;
use redfat::minic::compile;

/// Free an object, then allocate `churn` same-class objects, then
/// dereference the dangling pointer.
fn uaf_after_churn_src() -> &'static str {
    "fn main() {
        var churn = input();
        var a = malloc(40);
        a[0] = 1;
        free(a);
        for (var i = 0; i < churn; i = i + 1) {
            var x = malloc(40);
            x[0] = i;
        }
        a[1] = 7;   // dangling write
        return 0;
    }"
}

fn run_uaf(quarantine: usize, churn: i64) -> RunResult {
    let image = compile(uaf_after_churn_src()).unwrap();
    let hardened = harden(&image, &HardenConfig::with_merge(LowFatPolicy::All)).unwrap();
    let rt = HostRuntime::with_config(
        ErrorMode::Abort,
        LowFatConfig {
            quarantine,
            ..LowFatConfig::default()
        },
    )
    .with_input(vec![churn]);
    let mut emu = Emu::load_image(&hardened.image, rt).expect("loads");
    emu.run(10_000_000)
}

#[test]
fn quarantine_extends_uaf_detection_window() {
    // With a healthy quarantine, the dangling access still sees the
    // Free state even after heavy allocation churn.
    assert!(matches!(run_uaf(64, 40), RunResult::MemoryError(_)));

    // With no quarantine, the freed slot is recycled immediately: the
    // dangling pointer aliases a *live* object and the UAF becomes
    // undetectable by any object-based scheme (the known limitation
    // quarantines exist to mitigate).
    assert!(matches!(run_uaf(0, 40), RunResult::Exited(0)));

    // Even with no quarantine, a prompt dangling access (no churn) is
    // still caught.
    assert!(matches!(run_uaf(0, 0), RunResult::MemoryError(_)));
}

#[test]
fn randomization_varies_heap_layout_not_behavior() {
    // DieHard-style randomized reuse: the same program gets different
    // object placements across seeds, while output stays correct and
    // hardened detection still works.
    let image = compile(
        "fn main() {
            var ptrs = malloc(16 * 8);
            for (var i = 0; i < 16; i = i + 1) { ptrs[i] = malloc(40); }
            for (var i = 0; i < 16; i = i + 1) { free(ptrs[i]); }
            var a = malloc(40);
            var b = malloc(40);
            a[0] = 7;
            b[0] = 9;
            print(a[0] + b[0]);
            print(a - b);
            return 0;
        }",
    )
    .unwrap();

    let mut gaps = std::collections::HashSet::new();
    for seed in 0..8u64 {
        let rt = HostRuntime::with_config(
            ErrorMode::Abort,
            LowFatConfig {
                randomize: true,
                quarantine: 0,
                seed,
                ..LowFatConfig::default()
            },
        );
        let mut emu = Emu::load_image(&image, rt).expect("loads");
        assert_eq!(emu.run(10_000_000), RunResult::Exited(0));
        let out = &emu.runtime.io.out_ints;
        assert_eq!(out[0], 16, "program semantics unchanged");
        gaps.insert(out[1]); // relative placement of a and b
    }
    assert!(
        gaps.len() > 1,
        "randomized allocation must vary layout: {gaps:?}"
    );
}
