//! Criterion micro-benchmarks for the substrates and the hardening
//! pipeline itself (host-side costs; the guest-side overheads are the
//! table1/figure8 binaries' business).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use redfat_core::{harden, run_once, HardenConfig, LowFatPolicy};
use redfat_emu::ErrorMode;
use redfat_lowfat::{LowFatConfig, RedFatHeap};
use redfat_minic::compile;
use redfat_vm::Vm;
use redfat_x86::{decode_one, encode, Inst, Mem, Op, Operands, Reg, Width};

fn bench_codec(c: &mut Criterion) {
    let inst = Inst::new(
        Op::Mov,
        Width::W64,
        Operands::MR {
            dst: Mem::bis(Reg::Rax, Reg::Rcx, 8, 0x40),
            src: Reg::Rdx,
        },
    );
    let bytes = encode(&inst, 0x40_0000).unwrap();
    let mut g = c.benchmark_group("x86-codec");
    g.throughput(Throughput::Elements(1));
    g.bench_function("encode-mov-sib", |b| {
        b.iter(|| encode(std::hint::black_box(&inst), 0x40_0000).unwrap())
    });
    g.bench_function("decode-mov-sib", |b| {
        b.iter(|| decode_one(std::hint::black_box(&bytes), 0x40_0000).unwrap())
    });
    g.finish();
}

fn bench_allocator(c: &mut Criterion) {
    let mut g = c.benchmark_group("lowfat-allocator");
    g.bench_function("malloc-free-64B", |b| {
        b.iter_batched(
            || {
                let mut vm = Vm::new();
                let heap = RedFatHeap::new(LowFatConfig::default());
                heap.install(&mut vm);
                (heap, vm)
            },
            |(mut heap, mut vm)| {
                for _ in 0..128 {
                    let p = heap.malloc(&mut vm, 48).unwrap();
                    heap.free(&mut vm, p).unwrap();
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("base-size-lookup", |b| {
        let ptr = redfat_vm::layout::region_base(4) + 4096 + 24;
        b.iter(|| {
            std::hint::black_box(redfat_vm::layout::lowfat_base(std::hint::black_box(ptr)))
                + std::hint::black_box(redfat_vm::layout::lowfat_size(ptr))
        })
    });
    g.finish();
}

fn demo_image() -> redfat_elf::Image {
    compile(
        "fn main() {
            var a = malloc(64 * 8);
            var sum = 0;
            for (var it = 0; it < 200; it = it + 1) {
                for (var i = 0; i < 64; i = i + 1) { a[i] = i * it; }
                for (var i = 0; i < 64; i = i + 1) { sum = sum + a[i]; }
            }
            print(sum);
            return 0;
        }",
    )
    .expect("compiles")
}

fn bench_pipeline(c: &mut Criterion) {
    let image = demo_image();
    let mut g = c.benchmark_group("hardening-pipeline");
    g.bench_function("harden-small-binary", |b| {
        b.iter(|| {
            harden(
                std::hint::black_box(&image),
                &HardenConfig::with_merge(LowFatPolicy::All),
            )
            .unwrap()
        })
    });
    g.finish();
}

fn bench_guest_execution(c: &mut Criterion) {
    let image = demo_image();
    let hardened = harden(&image, &HardenConfig::with_merge(LowFatPolicy::All))
        .unwrap()
        .image;
    let redzone = harden(&image, &HardenConfig::with_merge(LowFatPolicy::Disabled))
        .unwrap()
        .image;
    let mut g = c.benchmark_group("guest-execution");
    g.bench_function("baseline", |b| {
        b.iter(|| run_once(&image, vec![], ErrorMode::Log, u64::MAX))
    });
    g.bench_function("hardened-full", |b| {
        b.iter(|| run_once(&hardened, vec![], ErrorMode::Log, u64::MAX))
    });
    g.bench_function("hardened-redzone-only", |b| {
        b.iter(|| run_once(&redzone, vec![], ErrorMode::Log, u64::MAX))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_codec,
    bench_allocator,
    bench_pipeline,
    bench_guest_execution
);
criterion_main!(benches);
