//! Micro-benchmarks for the substrates and the hardening pipeline itself
//! (host-side costs; the guest-side overheads are the table1/figure8
//! binaries' business).
//!
//! A dependency-free harness (`harness = false`): each case runs a warmup
//! batch, then measures wall time over enough iterations to smooth jitter
//! and prints ns/iter. `cargo bench -p redfat-bench` runs them all.

use redfat_core::{harden, run_once, HardenConfig, LowFatPolicy};
use redfat_emu::ErrorMode;
use redfat_lowfat::{LowFatConfig, RedFatHeap};
use redfat_minic::compile;
use redfat_vm::Vm;
use redfat_x86::{decode_one, encode, Inst, Mem, Op, Operands, Reg, Width};
use std::hint::black_box;
use std::time::Instant;

fn bench(name: &str, iters: u32, mut f: impl FnMut()) {
    for _ in 0..iters.div_ceil(10) {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let elapsed = start.elapsed();
    println!(
        "{name:32} {:>12.1} ns/iter ({iters} iters)",
        elapsed.as_nanos() as f64 / iters as f64
    );
}

fn bench_codec() {
    let inst = Inst::new(
        Op::Mov,
        Width::W64,
        Operands::MR {
            dst: Mem::bis(Reg::Rax, Reg::Rcx, 8, 0x40),
            src: Reg::Rdx,
        },
    );
    let bytes = encode(&inst, 0x40_0000).unwrap();
    bench("x86/encode-mov-sib", 500_000, || {
        black_box(encode(black_box(&inst), 0x40_0000).unwrap());
    });
    bench("x86/decode-mov-sib", 500_000, || {
        black_box(decode_one(black_box(&bytes), 0x40_0000).unwrap());
    });
}

fn bench_allocator() {
    bench("lowfat/malloc-free-64B-x128", 500, || {
        let mut vm = Vm::new();
        let mut heap = RedFatHeap::new(LowFatConfig::default());
        heap.install(&mut vm);
        for _ in 0..128 {
            let p = heap.malloc(&mut vm, 48).unwrap();
            heap.free(&mut vm, p).unwrap();
        }
    });
    let ptr = redfat_vm::layout::region_base(4) + 4096 + 24;
    bench("lowfat/base-size-lookup", 1_000_000, || {
        black_box(
            redfat_vm::layout::lowfat_base(black_box(ptr)) + redfat_vm::layout::lowfat_size(ptr),
        );
    });
}

fn demo_image() -> redfat_elf::Image {
    compile(
        "fn main() {
            var a = malloc(64 * 8);
            var sum = 0;
            for (var it = 0; it < 200; it = it + 1) {
                for (var i = 0; i < 64; i = i + 1) { a[i] = i * it; }
                for (var i = 0; i < 64; i = i + 1) { sum = sum + a[i]; }
            }
            print(sum);
            return 0;
        }",
    )
    .expect("compiles")
}

fn bench_pipeline() {
    let image = demo_image();
    bench("pipeline/harden-small-binary", 200, || {
        black_box(
            harden(
                black_box(&image),
                &HardenConfig::with_merge(LowFatPolicy::All),
            )
            .unwrap(),
        );
    });
}

fn bench_guest_execution() {
    let image = demo_image();
    let hardened = harden(&image, &HardenConfig::with_merge(LowFatPolicy::All))
        .unwrap()
        .image;
    let redzone = harden(&image, &HardenConfig::with_merge(LowFatPolicy::Disabled))
        .unwrap()
        .image;
    bench("guest/baseline", 50, || {
        black_box(run_once(&image, vec![], ErrorMode::Log, u64::MAX));
    });
    bench("guest/hardened-full", 50, || {
        black_box(run_once(&hardened, vec![], ErrorMode::Log, u64::MAX));
    });
    bench("guest/hardened-redzone-only", 50, || {
        black_box(run_once(&redzone, vec![], ErrorMode::Log, u64::MAX));
    });
}

fn main() {
    // `cargo bench` passes harness flags like `--bench`; ignore them.
    bench_codec();
    bench_allocator();
    bench_pipeline();
    bench_guest_execution();
}
