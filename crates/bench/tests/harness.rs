//! Tests for the experiment harness itself: the full Table 1 pipeline on
//! one benchmark, false-positive counting, and the helpers.

use redfat_bench::{false_positive_sites, geomean, parallel_map, table1_row};
use redfat_workloads::spec;

#[test]
fn geomean_is_correct() {
    assert!((geomean([2.0, 8.0]) - 4.0).abs() < 1e-9);
    assert!((geomean([3.0]) - 3.0).abs() < 1e-9);
    assert_eq!(geomean(std::iter::empty()), 0.0);
}

#[test]
fn parallel_map_preserves_order() {
    let out = parallel_map((0..40).collect(), 4, |&x| x * 2);
    assert_eq!(out, (0..40).map(|x| x * 2).collect::<Vec<_>>());
}

#[test]
fn table1_pipeline_on_one_benchmark() {
    let wl = spec::by_name("perlbench").unwrap();
    let row = table1_row(&wl);
    // Structural sanity of the whole pipeline.
    assert!(row.coverage > 0.5 && row.coverage <= 1.0);
    assert!(row.baseline_cycles > 100_000);
    // Optimization ladder: unoptimized is the most expensive; each later
    // column is no more expensive than the previous.
    for w in row.redfat.windows(2) {
        assert!(w[1] <= w[0] * 1.02, "ladder violated: {:?}", row.redfat);
    }
    assert!(row.redfat[5] < row.redfat[0]);
    assert!(row.redfat[8] >= 1.0, "-reads still costs something");
    // +interproc can only remove checks relative to +redund.
    assert!(row.redfat[6] <= row.redfat[5] * 1.02);
    // Memcheck runs and is slower than optimized RedFat.
    let mc = row.memcheck.expect("perlbench is memcheck-runnable");
    assert!(
        mc > row.redfat[4],
        "memcheck {mc} vs +flow {}",
        row.redfat[4]
    );
}

#[test]
fn false_positive_counts_match_planted_sites() {
    for name in ["gobmk", "calculix"] {
        let wl = spec::by_name(name).unwrap();
        let expected = wl.anti_idiom_sites;
        assert_eq!(false_positive_sites(&wl), expected, "{name} planted sites");
    }
}

#[test]
fn nr_rows_have_no_memcheck_numbers() {
    let wl = spec::by_name("zeusmp").unwrap();
    let row = table1_row(&wl);
    assert!(row.memcheck.is_none(), "zeusmp models Valgrind's x87 NR");
}
