//! Cache-performance measurements for the hardening service: component
//! cache cold/warm wall-clock and artifact cache hit/miss latency.
//!
//! Shared by the `svcperf` bin (standalone report) and `perf`
//! (the `"service"` section of `BENCH_perf.json`).

use redfat_core::{harden_cached, HardenConfig, MemoryComponentCache};
use redfat_service::{artifact_key, ArtifactCache, ArtifactEntry};
use redfat_workloads::Workload;
use std::time::Instant;

/// Timing repetitions; the minimum is reported.
const REPS: usize = 3;

/// Cache-performance measurements for one workload.
#[derive(Debug, Clone)]
pub struct ServiceRow {
    /// Benchmark name.
    pub name: &'static str,
    /// CFG components in the image (the unit of incremental reuse).
    pub components: usize,
    /// Cold `harden_cached` wall-clock (empty component cache).
    pub cold_ms: f64,
    /// Warm `harden_cached` wall-clock (every component reused).
    pub warm_ms: f64,
    /// cold / warm ratio: the payoff of full component reuse.
    pub warm_speedup: f64,
    /// Verified read of this workload's artifact from the on-disk
    /// cache (the daemon's warm-hit path, excluding protocol cost).
    pub artifact_hit_ms: f64,
    /// Lookup of an absent key (the miss-detection overhead a cold
    /// submission pays before computing).
    pub artifact_miss_ms: f64,
}

/// Measures component-cache and artifact-cache performance for one
/// workload. Panics on any pipeline failure or output mismatch -- the
/// harness must not publish numbers for a broken cache.
pub fn measure_service(wl: &Workload, artifacts: &ArtifactCache) -> ServiceRow {
    let image = wl.image();
    let config = HardenConfig::default();

    let mut cold_best = f64::INFINITY;
    let mut warm_best = f64::INFINITY;
    let mut components = 0;
    let mut cold_bytes = None;
    for _ in 0..REPS {
        // A fresh cache each repetition keeps the cold path cold.
        let cache = MemoryComponentCache::new();
        let t = Instant::now();
        let cold = harden_cached(&image, &config, 1, &cache).expect("cold harden");
        cold_best = cold_best.min(t.elapsed().as_secs_f64());
        assert_eq!(cold.stats.components_reused, 0, "{}: cold run", wl.name);
        components = cold.stats.components;

        let t = Instant::now();
        let warm = harden_cached(&image, &config, 1, &cache).expect("warm harden");
        warm_best = warm_best.min(t.elapsed().as_secs_f64());
        assert_eq!(
            warm.stats.components_reused, warm.stats.components,
            "{}: warm run must reuse every component",
            wl.name
        );
        let bytes = cold.image.to_bytes();
        assert_eq!(
            bytes,
            warm.image.to_bytes(),
            "{}: warm output differs from cold",
            wl.name
        );
        cold_bytes = Some(bytes);
    }

    // Artifact cache: publish once, then time the verified hit and the
    // guaranteed miss.
    let image_bytes = image.to_bytes();
    let config_bytes = config.canonical_bytes();
    let key = artifact_key(&image_bytes, &config_bytes, 1);
    let entry = ArtifactEntry {
        artifact: cold_bytes.expect("REPS > 0"),
        stats: String::new(),
    };
    artifacts.put(&key, &entry).expect("artifact publish");
    let missing = artifact_key(&image_bytes, &config_bytes, 0xFF);

    let mut hit_best = f64::INFINITY;
    let mut miss_best = f64::INFINITY;
    for _ in 0..REPS {
        let t = Instant::now();
        let got = artifacts.get(&key);
        hit_best = hit_best.min(t.elapsed().as_secs_f64());
        assert_eq!(got.as_ref(), Some(&entry), "{}: artifact hit", wl.name);

        let t = Instant::now();
        assert!(artifacts.get(&missing).is_none(), "{}: miss", wl.name);
        miss_best = miss_best.min(t.elapsed().as_secs_f64());
    }

    ServiceRow {
        name: wl.name,
        components,
        cold_ms: cold_best * 1e3,
        warm_ms: warm_best.max(1e-9) * 1e3,
        warm_speedup: cold_best / warm_best.max(1e-9),
        artifact_hit_ms: hit_best * 1e3,
        artifact_miss_ms: miss_best * 1e3,
    }
}
