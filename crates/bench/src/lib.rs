//! The experiment harness: shared pipeline code behind the `table1`,
//! `falsepos`, `table2` and `figure8` binaries (one per paper artifact)
//! and the micro-benchmarks.

pub mod service;

use redfat_core::{
    collect_allowlist, harden, instrument_profile, run_once, try_run_backend_policy,
    AllocPolicyKind, HardenConfig, LowFatPolicy,
};
use redfat_elf::Image;
use redfat_emu::{Emu, ErrorMode, ExecBackend, RunResult};
use redfat_memcheck::{MemcheckLimits, MemcheckRuntime};
use redfat_workloads::Workload;
use std::collections::BTreeSet;

/// Step budget for any single guest run.
pub const MAX_STEPS: u64 = 4_000_000_000;

/// The Table 1 measurements for one benchmark.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Source language of the original.
    pub lang: redfat_workloads::Lang,
    /// Coverage: fraction of ref-executed sites with the full check.
    pub coverage: f64,
    /// Baseline modeled cycles on ref.
    pub baseline_cycles: u64,
    /// Slowdown factors, Table 1 column order: unoptimized, +elim,
    /// +batch, +merge, +flow, +redund, +interproc, -size, -reads.
    pub redfat: [f64; 9],
    /// Memcheck slowdown, or `None` for NR.
    pub memcheck: Option<f64>,
    /// Distinct real-error sites detected during the ref run (fully
    /// optimized config, log mode).
    pub errors_detected: usize,
    /// Static sites eliminated by the syntactic rule (under "+elim").
    pub sites_elim: usize,
    /// Static sites *additionally* eliminated by flow-sensitive
    /// provenance (under "+flow").
    pub sites_flow: usize,
    /// Static full checks downgraded to redzone-only by the redundant
    /// pass (under "+redund").
    pub sites_redundant: usize,
    /// Static sites *additionally* eliminated by the interprocedural
    /// summary pass (under "+interproc").
    pub sites_interproc: usize,
}

/// Runs the complete §5 + Table 1 pipeline for one workload.
pub fn table1_row(wl: &Workload) -> Table1Row {
    let image = wl.image();

    // Baseline.
    let base = run_once(&image, wl.ref_input.clone(), ErrorMode::Log, MAX_STEPS);
    assert!(
        matches!(base.result, RunResult::Exited(_)),
        "{}: baseline must exit ({:?})",
        wl.name,
        base.result
    );
    let baseline_cycles = base.counters.cycles;
    let baseline_digest = base.io.digest();

    // Profiling phase on the train input.
    let prof = instrument_profile(&image).expect("profile instrumentation");
    let train = run_once(
        &prof.image,
        wl.train_input.clone(),
        ErrorMode::Log,
        MAX_STEPS,
    );
    assert!(
        matches!(train.result, RunResult::Exited(_)),
        "{}: profile run must exit ({:?})",
        wl.name,
        train.result
    );
    let allow = collect_allowlist(&train.profile);

    // Coverage accounting: sites dynamically reached on ref.
    let cov = run_once(&prof.image, wl.ref_input.clone(), ErrorMode::Log, MAX_STEPS);
    let executed: BTreeSet<u64> = cov.profile.keys().copied().collect();
    let covered = executed.iter().filter(|s| allow.contains(**s)).count();
    let coverage = if executed.is_empty() {
        0.0
    } else {
        covered as f64 / executed.len() as f64
    };

    // The nine RedFat configurations.
    let configs: [HardenConfig; 9] = [
        HardenConfig::unoptimized(LowFatPolicy::AllowList(allow.clone())),
        HardenConfig::with_elim(LowFatPolicy::AllowList(allow.clone())),
        HardenConfig::with_batch(LowFatPolicy::AllowList(allow.clone())),
        HardenConfig::with_merge(LowFatPolicy::AllowList(allow.clone())),
        HardenConfig::with_flow(LowFatPolicy::AllowList(allow.clone())),
        HardenConfig::with_redundant(LowFatPolicy::AllowList(allow.clone())),
        HardenConfig::with_interproc(LowFatPolicy::AllowList(allow.clone())),
        HardenConfig::minus_size(LowFatPolicy::AllowList(allow.clone())),
        HardenConfig::minus_reads(LowFatPolicy::AllowList(allow.clone())),
    ];
    let mut redfat = [0.0; 9];
    let mut errors_detected = 0usize;
    let mut sites_elim = 0usize;
    let mut sites_flow = 0usize;
    let mut sites_redundant = 0usize;
    let mut sites_interproc = 0usize;
    for (i, cfg) in configs.iter().enumerate() {
        let hardened = harden(&image, cfg).expect("hardening");
        match i {
            1 => sites_elim = hardened.stats.sites_eliminated,
            4 => sites_flow = hardened.stats.sites_eliminated_flow,
            5 => sites_redundant = hardened.stats.sites_redundant,
            6 => sites_interproc = hardened.stats.sites_eliminated_interproc,
            _ => {}
        }
        let out = run_once(
            &hardened.image,
            wl.ref_input.clone(),
            ErrorMode::Log,
            MAX_STEPS,
        );
        assert!(
            matches!(out.result, RunResult::Exited(_)),
            "{}: hardened run ({i}) must exit ({:?})",
            wl.name,
            out.result
        );
        assert_eq!(
            out.io.digest(),
            baseline_digest,
            "{}: hardened output differs (config {i})",
            wl.name
        );
        redfat[i] = out.counters.cycles as f64 / baseline_cycles as f64;
        if i == 5 {
            // Fully optimized (+redund): report detected real errors.
            let sites: BTreeSet<u64> = out.errors.iter().map(|e| e.site).collect();
            errors_detected = sites.len();
        }
    }

    // Memcheck baseline (or NR).
    let memcheck = match MemcheckLimits::default().check(&image, wl.requires_x87) {
        Err(_) => None,
        Ok(()) => {
            let rt = MemcheckRuntime::new(ErrorMode::Log).with_input(wl.ref_input.clone());
            let mut emu = Emu::load_image(&image, rt).expect("loads");
            emu.cost = MemcheckRuntime::cost_model();
            let r = emu.run(MAX_STEPS);
            assert!(
                matches!(r, RunResult::Exited(_)),
                "{}: memcheck run must exit ({r:?})",
                wl.name
            );
            Some(emu.counters.cycles as f64 / baseline_cycles as f64)
        }
    };

    Table1Row {
        name: wl.name,
        lang: wl.lang,
        coverage,
        baseline_cycles,
        redfat,
        memcheck,
        errors_detected,
        sites_elim,
        sites_flow,
        sites_redundant,
        sites_interproc,
    }
}

/// False-positive measurement (§7.1): harden with LowFat on *all* sites
/// (no allow-list), run ref in log mode, and count distinct erroring
/// sites that are not planted real errors.
pub fn false_positive_sites(wl: &Workload) -> usize {
    false_positive_sites_policy(wl, AllocPolicyKind::default())
}

/// [`false_positive_sites`] with the runtime heap backed by the given
/// allocator policy. The hardened image is identical across policies;
/// only the placement decisions (and thus which intentional-OOB
/// anti-idiom pointers land on live metadata) change.
pub fn false_positive_sites_policy(wl: &Workload, policy: AllocPolicyKind) -> usize {
    let image = wl.image();
    // Merging would attribute a merged check's error to its first member
    // site; measure without merging for exact per-site attribution.
    let cfg = HardenConfig::with_batch(LowFatPolicy::All);
    let hardened = harden(&image, &cfg).expect("hardening");
    let out = try_run_backend_policy(
        &hardened.image,
        wl.ref_input.clone(),
        ErrorMode::Log,
        ExecBackend::Step,
        MAX_STEPS,
        policy,
    )
    .expect("image loads");
    let sites: BTreeSet<u64> = out.errors.iter().map(|e| e.site).collect();
    sites.len().saturating_sub(wl.planted_errors)
}

/// Detection verdict for a vulnerable program under RedFat hardening.
pub fn redfat_detects(image: &Image, attack_input: &[i64]) -> bool {
    redfat_detects_policy(image, attack_input, AllocPolicyKind::default())
}

/// [`redfat_detects`] with the runtime heap backed by the given
/// allocator policy.
pub fn redfat_detects_policy(image: &Image, attack_input: &[i64], policy: AllocPolicyKind) -> bool {
    let cfg = HardenConfig::with_merge(LowFatPolicy::All);
    let hardened = harden(image, &cfg).expect("hardening");
    let out = try_run_backend_policy(
        &hardened.image,
        attack_input.to_vec(),
        ErrorMode::Abort,
        ExecBackend::Step,
        MAX_STEPS,
        policy,
    )
    .expect("image loads");
    matches!(out.result, RunResult::MemoryError(_))
}

/// Parses `--alloc-policy <kind>` (or `--alloc-policy=<kind>`) from a
/// bench binary's argument list; defaults to the paper's policy.
///
/// # Panics
///
/// Panics on an unknown policy name (bench binaries fail fast).
pub fn policy_from_args(args: impl IntoIterator<Item = String>) -> AllocPolicyKind {
    let mut policy = AllocPolicyKind::default();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        let value = if a == "--alloc-policy" {
            it.next()
        } else {
            a.strip_prefix("--alloc-policy=").map(str::to_string)
        };
        if let Some(v) = value {
            policy = AllocPolicyKind::parse(&v)
                .unwrap_or_else(|| panic!("bad --alloc-policy {v:?} (lowfat|rand-lowfat)"));
        }
    }
    policy
}

/// Detection verdict under the Memcheck baseline.
pub fn memcheck_detects(image: &Image, attack_input: &[i64]) -> bool {
    let rt = MemcheckRuntime::new(ErrorMode::Abort).with_input(attack_input.to_vec());
    let mut emu = Emu::load_image(image, rt).expect("loads");
    emu.cost = MemcheckRuntime::cost_model();
    let r = emu.run(MAX_STEPS);
    matches!(r, RunResult::MemoryError(_)) || !emu.runtime.errors.is_empty()
}

// The work-distribution helpers moved to `redfat-parallel` so the
// hardening pipeline can shard without depending on this crate;
// re-exported here so the bins and tests keep their imports.
pub use redfat_parallel::{
    geomean, parallel_map, resolve_threads, threads_from_args, try_parallel_map,
};
