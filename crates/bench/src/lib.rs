//! The experiment harness: shared pipeline code behind the `table1`,
//! `falsepos`, `table2` and `figure8` binaries (one per paper artifact)
//! and the micro-benchmarks.

use redfat_core::{
    collect_allowlist, harden, instrument_profile, run_once, HardenConfig, LowFatPolicy,
};
use redfat_elf::Image;
use redfat_emu::{Emu, ErrorMode, RunResult};
use redfat_memcheck::{MemcheckLimits, MemcheckRuntime};
use redfat_workloads::Workload;
use std::collections::BTreeSet;

/// Step budget for any single guest run.
pub const MAX_STEPS: u64 = 4_000_000_000;

/// The Table 1 measurements for one benchmark.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Source language of the original.
    pub lang: redfat_workloads::Lang,
    /// Coverage: fraction of ref-executed sites with the full check.
    pub coverage: f64,
    /// Baseline modeled cycles on ref.
    pub baseline_cycles: u64,
    /// Slowdown factors, Table 1 column order:
    /// unoptimized, +elim, +batch, +merge, +flow, +redund, -size, -reads.
    pub redfat: [f64; 8],
    /// Memcheck slowdown, or `None` for NR.
    pub memcheck: Option<f64>,
    /// Distinct real-error sites detected during the ref run (fully
    /// optimized config, log mode).
    pub errors_detected: usize,
    /// Static sites eliminated by the syntactic rule (under "+elim").
    pub sites_elim: usize,
    /// Static sites *additionally* eliminated by flow-sensitive
    /// provenance (under "+flow").
    pub sites_flow: usize,
    /// Static full checks downgraded to redzone-only by the redundant
    /// pass (under "+redund").
    pub sites_redundant: usize,
}

/// Runs the complete §5 + Table 1 pipeline for one workload.
pub fn table1_row(wl: &Workload) -> Table1Row {
    let image = wl.image();

    // Baseline.
    let base = run_once(&image, wl.ref_input.clone(), ErrorMode::Log, MAX_STEPS);
    assert!(
        matches!(base.result, RunResult::Exited(_)),
        "{}: baseline must exit ({:?})",
        wl.name,
        base.result
    );
    let baseline_cycles = base.counters.cycles;
    let baseline_digest = base.io.digest();

    // Profiling phase on the train input.
    let prof = instrument_profile(&image).expect("profile instrumentation");
    let train = run_once(
        &prof.image,
        wl.train_input.clone(),
        ErrorMode::Log,
        MAX_STEPS,
    );
    assert!(
        matches!(train.result, RunResult::Exited(_)),
        "{}: profile run must exit ({:?})",
        wl.name,
        train.result
    );
    let allow = collect_allowlist(&train.profile);

    // Coverage accounting: sites dynamically reached on ref.
    let cov = run_once(&prof.image, wl.ref_input.clone(), ErrorMode::Log, MAX_STEPS);
    let executed: BTreeSet<u64> = cov.profile.keys().copied().collect();
    let covered = executed.iter().filter(|s| allow.contains(**s)).count();
    let coverage = if executed.is_empty() {
        0.0
    } else {
        covered as f64 / executed.len() as f64
    };

    // The eight RedFat configurations.
    let configs: [HardenConfig; 8] = [
        HardenConfig::unoptimized(LowFatPolicy::AllowList(allow.clone())),
        HardenConfig::with_elim(LowFatPolicy::AllowList(allow.clone())),
        HardenConfig::with_batch(LowFatPolicy::AllowList(allow.clone())),
        HardenConfig::with_merge(LowFatPolicy::AllowList(allow.clone())),
        HardenConfig::with_flow(LowFatPolicy::AllowList(allow.clone())),
        HardenConfig::with_redundant(LowFatPolicy::AllowList(allow.clone())),
        HardenConfig::minus_size(LowFatPolicy::AllowList(allow.clone())),
        HardenConfig::minus_reads(LowFatPolicy::AllowList(allow.clone())),
    ];
    let mut redfat = [0.0; 8];
    let mut errors_detected = 0usize;
    let mut sites_elim = 0usize;
    let mut sites_flow = 0usize;
    let mut sites_redundant = 0usize;
    for (i, cfg) in configs.iter().enumerate() {
        let hardened = harden(&image, cfg).expect("hardening");
        match i {
            1 => sites_elim = hardened.stats.sites_eliminated,
            4 => sites_flow = hardened.stats.sites_eliminated_flow,
            5 => sites_redundant = hardened.stats.sites_redundant,
            _ => {}
        }
        let out = run_once(
            &hardened.image,
            wl.ref_input.clone(),
            ErrorMode::Log,
            MAX_STEPS,
        );
        assert!(
            matches!(out.result, RunResult::Exited(_)),
            "{}: hardened run ({i}) must exit ({:?})",
            wl.name,
            out.result
        );
        assert_eq!(
            out.io.digest(),
            baseline_digest,
            "{}: hardened output differs (config {i})",
            wl.name
        );
        redfat[i] = out.counters.cycles as f64 / baseline_cycles as f64;
        if i == 5 {
            // Fully optimized (+redund): report detected real errors.
            let sites: BTreeSet<u64> = out.errors.iter().map(|e| e.site).collect();
            errors_detected = sites.len();
        }
    }

    // Memcheck baseline (or NR).
    let memcheck = match MemcheckLimits::default().check(&image, wl.requires_x87) {
        Err(_) => None,
        Ok(()) => {
            let rt = MemcheckRuntime::new(ErrorMode::Log).with_input(wl.ref_input.clone());
            let mut emu = Emu::load_image(&image, rt);
            emu.cost = MemcheckRuntime::cost_model();
            let r = emu.run(MAX_STEPS);
            assert!(
                matches!(r, RunResult::Exited(_)),
                "{}: memcheck run must exit ({r:?})",
                wl.name
            );
            Some(emu.counters.cycles as f64 / baseline_cycles as f64)
        }
    };

    Table1Row {
        name: wl.name,
        lang: wl.lang,
        coverage,
        baseline_cycles,
        redfat,
        memcheck,
        errors_detected,
        sites_elim,
        sites_flow,
        sites_redundant,
    }
}

/// False-positive measurement (§7.1): harden with LowFat on *all* sites
/// (no allow-list), run ref in log mode, and count distinct erroring
/// sites that are not planted real errors.
pub fn false_positive_sites(wl: &Workload) -> usize {
    let image = wl.image();
    // Merging would attribute a merged check's error to its first member
    // site; measure without merging for exact per-site attribution.
    let cfg = HardenConfig::with_batch(LowFatPolicy::All);
    let hardened = harden(&image, &cfg).expect("hardening");
    let out = run_once(
        &hardened.image,
        wl.ref_input.clone(),
        ErrorMode::Log,
        MAX_STEPS,
    );
    let sites: BTreeSet<u64> = out.errors.iter().map(|e| e.site).collect();
    sites.len().saturating_sub(wl.planted_errors)
}

/// Detection verdict for a vulnerable program under RedFat hardening.
pub fn redfat_detects(image: &Image, attack_input: &[i64]) -> bool {
    let cfg = HardenConfig::with_merge(LowFatPolicy::All);
    let hardened = harden(image, &cfg).expect("hardening");
    let out = run_once(
        &hardened.image,
        attack_input.to_vec(),
        ErrorMode::Abort,
        MAX_STEPS,
    );
    matches!(out.result, RunResult::MemoryError(_))
}

/// Detection verdict under the Memcheck baseline.
pub fn memcheck_detects(image: &Image, attack_input: &[i64]) -> bool {
    let rt = MemcheckRuntime::new(ErrorMode::Abort).with_input(attack_input.to_vec());
    let mut emu = Emu::load_image(image, rt);
    emu.cost = MemcheckRuntime::cost_model();
    let r = emu.run(MAX_STEPS);
    matches!(r, RunResult::MemoryError(_)) || !emu.runtime.errors.is_empty()
}

/// Geometric mean helper.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        return 0.0;
    }
    (log_sum / n as f64).exp()
}

/// Runs closures in parallel over a work list with scoped threads,
/// preserving input order in the output. Each slot is `Err` with the
/// item's index and panic message if its closure panicked; a poisoned
/// item never prevents the other items from completing and reporting.
pub fn try_parallel_map<T, U, F>(items: Vec<T>, threads: usize, f: F) -> Vec<Result<U, String>>
where
    T: Send + Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let n = items.len();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let (tx, rx) = std::sync::mpsc::channel::<(usize, Result<U, String>)>();
    let items_ref = &items;
    let f_ref = &f;
    let next_ref = &next;
    std::thread::scope(|scope| {
        for _ in 0..threads.max(1) {
            let tx = tx.clone();
            scope.spawn(move || loop {
                let i = next_ref.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f_ref(&items_ref[i])))
                        .map_err(|payload| {
                            let msg = payload
                                .downcast_ref::<&str>()
                                .map(|s| s.to_string())
                                .or_else(|| payload.downcast_ref::<String>().cloned())
                                .unwrap_or_else(|| "non-string panic payload".to_string());
                            format!("item {i} panicked: {msg}")
                        });
                if tx.send((i, out)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut results: Vec<Option<Result<U, String>>> = (0..n).map(|_| None).collect();
        for (i, out) in rx {
            results[i] = Some(out);
        }
        results
            .into_iter()
            .enumerate()
            .map(|(i, r)| r.unwrap_or_else(|| Err(format!("item {i}: no result reported"))))
            .collect()
    })
}

/// Runs closures in parallel over a work list with scoped threads,
/// preserving input order in the output.
///
/// # Panics
///
/// Panics after *all* items have finished if any closure panicked,
/// naming every failed item -- completed work is never thrown away
/// mid-run by one bad item.
pub fn parallel_map<T, U, F>(items: Vec<T>, threads: usize, f: F) -> Vec<U>
where
    T: Send + Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let n = items.len();
    let results = try_parallel_map(items, threads, f);
    let failures: Vec<&str> = results
        .iter()
        .filter_map(|r| r.as_ref().err().map(|s| s.as_str()))
        .collect();
    if !failures.is_empty() {
        panic!(
            "parallel_map: {}/{} items failed:\n  {}",
            failures.len(),
            n,
            failures.join("\n  ")
        );
    }
    results
        .into_iter()
        .map(|r| r.expect("failures checked above"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisoned_item_does_not_sink_the_rest() {
        let items: Vec<u32> = (0..8).collect();
        let results = try_parallel_map(items, 4, |&v| {
            if v == 3 {
                panic!("poisoned workload {v}");
            }
            v * 10
        });
        assert_eq!(results.len(), 8);
        for (i, r) in results.iter().enumerate() {
            if i == 3 {
                let err = r.as_ref().expect_err("item 3 must fail");
                assert!(err.contains("item 3"), "error names the item: {err}");
                assert!(
                    err.contains("poisoned workload 3"),
                    "error keeps message: {err}"
                );
            } else {
                assert_eq!(*r, Ok(i as u32 * 10), "item {i} must still complete");
            }
        }
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..32).collect();
        let doubled = parallel_map(items, 5, |&v| v * 2);
        assert_eq!(doubled, (0..32).map(|v| v * 2).collect::<Vec<_>>());
    }
}
