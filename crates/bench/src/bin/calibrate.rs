//! Quick calibration: baseline instruction counts per workload.
use redfat_emu::{Emu, ErrorMode, HostRuntime};
use redfat_workloads::spec;

fn main() {
    for wl in spec::all() {
        let image = wl.image();
        let mut counts = Vec::new();
        for input in [&wl.train_input, &wl.ref_input] {
            let rt = HostRuntime::new(ErrorMode::Log).with_input(input.clone());
            let mut emu = Emu::load_image(&image, rt).expect("loads");
            let r = emu.run(2_000_000_000);
            counts.push((r, emu.counters.instructions, emu.counters.cycles));
        }
        println!(
            "{:12} train {:?} {:>10} ref {:?} {:>11}",
            wl.name, counts[0].0, counts[0].1, counts[1].0, counts[1].1
        );
    }
}
