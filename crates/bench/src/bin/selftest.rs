//! Differential self-test harness: the heavy, parallel counterpart of
//! `redfat selftest`.
//!
//! Runs the lockstep divergence oracle over every SPEC stand-in on its
//! `ref` input (one worker per workload), plus larger deterministic
//! round-trip and allocator-invariant fuzzing campaigns than the CLI
//! subcommand, and exits nonzero on any unexplained divergence. A
//! divergence is shrunk to a minimal input before it is reported.

use redfat_bench::parallel_map;
use redfat_core::selftest::{allocator_invariants, lockstep_images, roundtrip_fuzz, shrink_input};
use redfat_core::{harden, HardenConfig};
use redfat_workloads::spec;

const MAX_STEPS: u64 = 600_000_000;

fn main() {
    let threads = redfat_bench::threads_from_args(std::env::args());
    let mut failed = false;

    let rt = roundtrip_fuzz(50_000, 0x5EED_0BAD_F00D_0001);
    println!(
        "roundtrip: {} cases, {} failures",
        rt.cases,
        rt.failures.len()
    );
    for f in &rt.failures {
        eprintln!("  {f}");
        failed = true;
    }

    let ar = allocator_invariants(5_000, 0xA110_C000_0000_0002);
    println!(
        "allocator: {} cases, {} failures",
        ar.cases,
        ar.failures.len()
    );
    for f in &ar.failures {
        eprintln!("  {f}");
        failed = true;
    }

    println!(
        "lockstep: {} workloads on {} threads...",
        spec::all().len(),
        threads
    );
    let rows = parallel_map(spec::all(), threads, |w| {
        let image = w.image();
        let hardened = harden(&image, &HardenConfig::default())
            .unwrap_or_else(|e| panic!("hardening {} failed: {e}", w.name));
        let rep = lockstep_images(
            &image,
            &hardened.image,
            &hardened.clobbers,
            &w.ref_input,
            MAX_STEPS,
        );
        let detail = if rep.clean() && rep.completed {
            None
        } else {
            // Shrink to a minimal failing input, then report the first
            // divergence (it embeds a disassembly window).
            let shrunk = shrink_input(
                &image,
                &hardened.image,
                &hardened.clobbers,
                &w.ref_input,
                MAX_STEPS,
            );
            let rerun = lockstep_images(
                &image,
                &hardened.image,
                &hardened.clobbers,
                &shrunk,
                MAX_STEPS,
            );
            let msg = rerun
                .divergences
                .first()
                .or(rep.divergences.first())
                .map(|d| d.detail.clone())
                .unwrap_or_else(|| "run did not complete within the step budget".into());
            Some(format!("input {shrunk:?}:\n{msg}"))
        };
        (
            w.name,
            rep.synced,
            rep.divergences.len(),
            rep.hardened_errors,
            detail,
        )
    });
    for (name, synced, divergences, errors, detail) in rows {
        println!(
            "  {name:<14} {synced:>9} synced, {divergences} divergences, {errors} check reports"
        );
        if let Some(d) = detail {
            eprintln!("FAIL {name}: {d}");
            failed = true;
        }
    }

    if failed {
        eprintln!("selftest FAILED");
        std::process::exit(1);
    }
    println!("selftest passed");
}
