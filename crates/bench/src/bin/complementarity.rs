//! The paper's §3 core argument as a measured matrix: which memory-error
//! classes each methodology detects, for (Redzone)-only, (LowFat)-only,
//! and the combined check. "Complementary protection offers an overall
//! stronger defense than each individual protection can offer alone."

use redfat_core::{harden, run_once, HardenConfig, LowFatPolicy};
use redfat_emu::{ErrorMode, RunResult};
use redfat_minic::compile;

/// An error-class probe: a program + input that triggers exactly that
/// class of memory error.
struct Probe {
    class: &'static str,
    source: &'static str,
    input: Vec<i64>,
}

fn probes() -> Vec<Probe> {
    vec![
        Probe {
            class: "incremental overflow (redzone hit)",
            source: "fn main() {
                var a = malloc(40);
                var b = malloc(40);
                b[0] = 1;
                var n = input();
                for (var i = 0; i < n; i = i + 1) { a[i] = i; }
                return 0;
            }",
            // Runs off the end, through padding, into the next redzone.
            input: vec![7],
        },
        Probe {
            class: "non-incremental skip into live object",
            source: "fn main() {
                var a = malloc(40);
                var b = malloc(40);
                b[0] = 1;
                a[input()] = 7;
                return 0;
            }",
            // Object stride is 64B = 8 elements; land in b's user data.
            input: vec![10],
        },
        Probe {
            class: "use-after-free",
            source: "fn main() {
                var a = malloc(40);
                free(a);
                a[input()] = 7;
                return 0;
            }",
            input: vec![1],
        },
        Probe {
            class: "overflow into allocation padding",
            source: "fn main() {
                var a = malloc(40);
                a[input()] = 7;
                return 0;
            }",
            // Elements 5 of 40B object in a 64B class: padding.
            input: vec![5],
        },
        Probe {
            class: "underflow into own redzone",
            source: "fn main() {
                var a = malloc(40);
                a[input()] = 7;
                return 0;
            }",
            input: vec![-1],
        },
    ]
}

fn detects(cfg: &HardenConfig, probe: &Probe) -> bool {
    let image = compile(probe.source).expect("probe compiles");
    let hardened = harden(&image, cfg).expect("hardens");
    let out = run_once(
        &hardened.image,
        probe.input.clone(),
        ErrorMode::Abort,
        10_000_000,
    );
    matches!(out.result, RunResult::MemoryError(_))
}

fn main() {
    let configs: [(&str, HardenConfig); 3] = [
        ("Redzone", HardenConfig::with_merge(LowFatPolicy::Disabled)),
        ("LowFat", HardenConfig::lowfat_only()),
        ("Combined", HardenConfig::with_merge(LowFatPolicy::All)),
    ];
    println!("Complementarity matrix (paper §3): detected = x, missed = .");
    println!();
    println!(
        "{:<40} {:>8} {:>8} {:>9}",
        "error class", "Redzone", "LowFat", "Combined"
    );
    for probe in probes() {
        let verdicts: Vec<bool> = configs.iter().map(|(_, c)| detects(c, &probe)).collect();
        println!(
            "{:<40} {:>8} {:>8} {:>9}",
            probe.class,
            if verdicts[0] { "x" } else { "." },
            if verdicts[1] { "x" } else { "." },
            if verdicts[2] { "x" } else { "." },
        );
        assert!(
            verdicts[2],
            "combined check must detect every class: {}",
            probe.class
        );
    }
    println!();
    println!("The combined column dominates: each individual methodology");
    println!("misses classes the other catches (Problem #1 / UAF vs. skips).");
}
