//! Emulator throughput probe: guest instructions per second on a
//! representative workload (host-side performance diagnostic).

use redfat_emu::{Emu, ErrorMode, HostRuntime};
use redfat_workloads::spec;
use std::time::Instant;

fn main() {
    for name in ["lbm", "gcc", "omnetpp"] {
        let wl = spec::by_name(name).expect("known benchmark");
        let image = wl.image();
        let rt = HostRuntime::new(ErrorMode::Log).with_input(wl.ref_input.clone());
        let mut emu = Emu::load_image(&image, rt).expect("loads");
        let t = Instant::now();
        let r = emu.run(2_000_000_000);
        let dt = t.elapsed().as_secs_f64();
        println!(
            "{name:10} {r:?}: {} instructions in {dt:.2}s = {:.1} M/s",
            emu.counters.instructions,
            emu.counters.instructions as f64 / dt / 1e6
        );
    }
}
