//! Standalone cache-performance report for the hardening service.
//!
//! For every SPEC stand-in (or the quick subset with `--quick`):
//! cold vs warm component-cache hardening wall-clock, and the
//! verified-hit / miss latency of the on-disk artifact cache.
//!
//! Fails (nonzero exit) if any warm run re-analyzes a component, if
//! warm output is not byte-identical to cold, or if the geomean warm
//! speedup drops below 1.0 -- a component cache that does not pay for
//! itself is a regression.

use redfat_bench::geomean;
use redfat_bench::service::{measure_service, ServiceRow};
use redfat_service::ArtifactCache;
use redfat_workloads::spec;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");

    let dir = std::env::temp_dir().join(format!("redfat-svcperf-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let artifacts = ArtifactCache::open(&dir).expect("artifact cache");

    let suite = spec::all();
    let step = if quick { 4 } else { 1 };
    let rows: Vec<ServiceRow> = suite
        .iter()
        .step_by(step)
        .map(|wl| {
            let row = measure_service(wl, &artifacts);
            println!(
                "svcperf: {:<14} {:>3} components  cold {:>8.3} ms  warm {:>8.3} ms \
                 ({:>5.2}x)  artifact hit {:>7.4} ms / miss {:>7.4} ms",
                row.name,
                row.components,
                row.cold_ms,
                row.warm_ms,
                row.warm_speedup,
                row.artifact_hit_ms,
                row.artifact_miss_ms
            );
            row
        })
        .collect();
    let _ = std::fs::remove_dir_all(&dir);

    let warm = geomean(rows.iter().map(|r| r.warm_speedup));
    println!(
        "svcperf: geomean warm-cache speedup {warm:.3}x over {} workloads",
        rows.len()
    );
    if warm < 1.0 {
        eprintln!("svcperf: REGRESSION: warm component-cache runs are slower than cold");
        std::process::exit(1);
    }
}
