//! Performance trajectory harness (`BENCH_perf.json`).
//!
//! Measures, across the SPEC stand-in suite:
//!
//! * **Emulator throughput** -- retired instructions/sec of the step
//!   interpreter vs the superblock backend vs the trace-linked backend
//!   (chaining + indirect-branch inline caches + dead-flag elision) vs
//!   the fast tier (host-pointer caching + batched counters + hook
//!   elision) on the baseline image. All four backends must agree
//!   exactly on the run result and every cost counter; a difference
//!   aborts the run naming the first counter that diverged and both
//!   values. The headline `fast_speedup` is step → fast; `emu_speedup`
//!   (step → trace) and `superblock_speedup` record the mid tiers.
//!   Trace-cache behavior (hits, misses, chain follows, inline-cache
//!   hits/misses) is recorded per workload.
//! * **Harden wall-clock** -- end-to-end `harden()` time serial
//!   (1 thread) vs parallel (`--threads`/`REDFAT_THREADS`/available
//!   parallelism). The two images must be byte-identical, and the
//!   parallel path must not regress below serial beyond timing noise
//!   (the 1-thread thread-pool overhead regression stays fixed).
//! * **Service caches** -- cold vs warm component-cache hardening
//!   wall-clock (warm must reuse every component and stay
//!   byte-identical) and on-disk artifact-cache verified-hit / miss
//!   latency, the `"service"` section. Quick mode fails if the geomean
//!   warm-cache speedup drops below 1.0.
//!
//! Modes:
//!
//! * default: full sweep (ref inputs) plus the quick subset, written as
//!   JSON to `-o` (default `BENCH_perf.json`). The quick-subset geomeans
//!   are stored alongside the full ones so CI can compare like for like.
//! * `--quick`: measure only the quick subset (train inputs, reduced
//!   step budget), validate the committed baseline's schema, fail if
//!   the measured geomean emulator speedup regressed more than 10%
//!   against the baseline's recorded quick geomean, and assert the
//!   tier ordering holds: fast at least as fast as trace-linked, which
//!   is at least as fast as superblock.
//! * `--micro`: run only the microbenchmark suite (reg-ALU, branch,
//!   mem-load, mem-store and mixed loops; `micro_suite`), printing
//!   per-category M instr/s for all four backends. The full sweep
//!   always records the same suite in the `"micro"` JSON section, so
//!   the per-category numbers are versioned with `BENCH_perf.json`.
//! * `--check <file>`: validate the schema of an existing JSON file and
//!   exit (no measurement).
//!
//! All numbers are modeled-deterministic except wall-clock; the speedup
//! *ratios* are the stable, host-independent quantities the regression
//! gate uses.

use redfat_bench::service::{measure_service, ServiceRow};
use redfat_bench::{geomean, threads_from_args};
use redfat_core::{harden_threaded, HardenConfig};
use redfat_elf::{Image, ImageKind, SegFlags, Segment};
use redfat_emu::{syscalls, Emu, ErrorMode, ExecBackend, HostRuntime, RunResult, TraceStats};
use redfat_service::ArtifactCache;
use redfat_vm::layout;
use redfat_workloads::{spec, Workload};
use redfat_x86::{AluOp, Asm, Cond, Mem, Reg, Width};
use std::fmt::Write as _;
use std::time::Instant;

const SCHEMA: &str = "redfat-bench-perf/v4";
/// Step cap for the full sweep (ref inputs all exit well below this).
const FULL_BUDGET: u64 = 4_000_000_000;
/// Step cap for the quick subset (train inputs).
const QUICK_BUDGET: u64 = 100_000_000;
/// Quick mode fails if the emulator speedup geomean drops below
/// `baseline * (1 - REGRESSION_TOLERANCE)`.
const REGRESSION_TOLERANCE: f64 = 0.10;
/// Per-workload floor on serial/parallel harden ratio: the parallel
/// entry point must never be meaningfully slower than the serial path
/// (catches a return of the 1-thread thread-pool overhead bug while
/// absorbing wall-clock jitter).
const MIN_HARDEN_SPEEDUP: f64 = 0.80;
/// Timing repetitions; the minimum is reported.
const REPS: usize = 3;

struct Row {
    name: &'static str,
    instructions: u64,
    step_mips: f64,
    superblock_mips: f64,
    trace_mips: f64,
    fast_mips: f64,
    /// step → trace throughput ratio (the v3 headline).
    emu_speedup: f64,
    /// Mid tier: step → superblock throughput ratio.
    superblock_speedup: f64,
    /// Headline: step → fast throughput ratio.
    fast_speedup: f64,
    stats: TraceStats,
    harden_serial_ms: f64,
    harden_parallel_ms: f64,
    harden_speedup: f64,
}

/// Every 4th stand-in: 8 workloads spanning the suite.
fn quick_subset(suite: Vec<Workload>) -> Vec<Workload> {
    suite.into_iter().step_by(4).collect()
}

/// Counter-equality precondition for the throughput comparison: when a
/// translated backend disagrees with `step()`, name the first counter
/// that diverged and both values -- "cost counters diverge" with two
/// 9-field debug dumps made people diff structs by eye.
fn assert_counters_equal(
    wl: &str,
    backend: ExecBackend,
    step: &redfat_emu::Counters,
    other: &redfat_emu::Counters,
) {
    let fields = [
        ("instructions", step.instructions, other.instructions),
        ("cycles", step.cycles, other.cycles),
        ("loads", step.loads, other.loads),
        ("stores", step.stores, other.stores),
        ("taken_branches", step.taken_branches, other.taken_branches),
        ("transfers", step.transfers, other.transfers),
        (
            "region_crossings",
            step.region_crossings,
            other.region_crossings,
        ),
        ("syscalls", step.syscalls, other.syscalls),
        ("int3_traps", step.int3_traps, other.int3_traps),
    ];
    for (name, s, o) in fields {
        assert_eq!(
            s, o,
            "{wl}: counter {name:?} diverges between step ({s}) and {backend} ({o})"
        );
    }
}

/// Times one emulator run; returns (result, counters, stats, best secs).
fn time_backend(
    image: &redfat_elf::Image,
    input: &[i64],
    backend: ExecBackend,
    budget: u64,
) -> (RunResult, redfat_emu::Counters, TraceStats, f64) {
    let mut best = f64::INFINITY;
    let mut outcome = None;
    for _ in 0..REPS {
        let rt = HostRuntime::new(ErrorMode::Log).with_input(input.to_vec());
        let mut emu = Emu::load_image(image, rt).expect("loads");
        let t = Instant::now();
        let r = emu.run_backend(backend, budget);
        best = best.min(t.elapsed().as_secs_f64());
        outcome = Some((r, emu.counters, emu.trace_stats()));
    }
    let (r, c, s) = outcome.expect("REPS > 0");
    (r, c, s, best.max(1e-9))
}

fn measure(wl: &Workload, input: &[i64], budget: u64, threads: usize) -> Row {
    let image = wl.image();

    let (r_step, c_step, _, t_step) = time_backend(&image, input, ExecBackend::Step, budget);
    let (r_sup, c_sup, _, t_sup) = time_backend(&image, input, ExecBackend::Superblock, budget);
    let (r_tr, c_tr, stats, t_tr) = time_backend(&image, input, ExecBackend::Trace, budget);
    let (r_fast, c_fast, _, t_fast) = time_backend(&image, input, ExecBackend::Fast, budget);
    for (backend, r, c) in [
        (ExecBackend::Superblock, r_sup, &c_sup),
        (ExecBackend::Trace, r_tr, &c_tr),
        (ExecBackend::Fast, r_fast, &c_fast),
    ] {
        assert_eq!(
            r_step, r,
            "{}: backend run results diverge (step {r_step:?}, {backend} {r:?})",
            wl.name
        );
        assert_counters_equal(wl.name, backend, &c_step, c);
    }
    assert!(
        matches!(r_step, RunResult::Exited(_) | RunResult::StepLimit),
        "{}: unexpected run result {r_step:?}",
        wl.name
    );

    let config = HardenConfig::default();
    let mut serial_best = f64::INFINITY;
    let mut parallel_best = f64::INFINITY;
    let mut serial_bytes = None;
    let mut parallel_bytes = None;
    for _ in 0..REPS {
        let t = Instant::now();
        let h = harden_threaded(&image, &config, 1).expect("serial harden");
        serial_best = serial_best.min(t.elapsed().as_secs_f64());
        serial_bytes = Some(h.image.to_bytes());

        let t = Instant::now();
        let h = harden_threaded(&image, &config, threads).expect("parallel harden");
        parallel_best = parallel_best.min(t.elapsed().as_secs_f64());
        parallel_bytes = Some(h.image.to_bytes());
    }
    assert_eq!(
        serial_bytes, parallel_bytes,
        "{}: hardened image differs between 1 and {threads} threads",
        wl.name
    );
    let harden_speedup = serial_best / parallel_best.max(1e-9);
    assert!(
        harden_speedup >= MIN_HARDEN_SPEEDUP,
        "{}: harden_threaded({threads}) is {harden_speedup:.2}x vs serial -- the \
         parallel entry point regressed below the {MIN_HARDEN_SPEEDUP:.2}x floor",
        wl.name
    );

    Row {
        name: wl.name,
        instructions: c_step.instructions,
        step_mips: c_step.instructions as f64 / t_step / 1e6,
        superblock_mips: c_step.instructions as f64 / t_sup / 1e6,
        trace_mips: c_step.instructions as f64 / t_tr / 1e6,
        fast_mips: c_step.instructions as f64 / t_fast / 1e6,
        emu_speedup: t_step / t_tr,
        superblock_speedup: t_step / t_sup,
        fast_speedup: t_step / t_fast,
        stats,
        harden_serial_ms: serial_best * 1e3,
        harden_parallel_ms: parallel_best.max(1e-9) * 1e3,
        harden_speedup,
    }
}

fn sweep(suite: &[Workload], quick: bool, threads: usize) -> Vec<Row> {
    suite
        .iter()
        .map(|wl| {
            let input = if quick {
                &wl.train_input
            } else {
                &wl.ref_input
            };
            let budget = if quick { QUICK_BUDGET } else { FULL_BUDGET };
            let row = measure(wl, input, budget, threads);
            eprintln!(
                "perf: {:<14} {:>11} insts  step {:>6.1} M/s  superblock {:>7.1} M/s  \
                 trace {:>7.1} M/s  fast {:>7.1} M/s  emu {:.2}x  fast {:.2}x  harden {:.2}x",
                row.name,
                row.instructions,
                row.step_mips,
                row.superblock_mips,
                row.trace_mips,
                row.fast_mips,
                row.emu_speedup,
                row.fast_speedup,
                row.harden_speedup
            );
            row
        })
        .collect()
}

fn rows_json(rows: &[Row]) -> String {
    let mut s = String::from("[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "\n    {{\"name\":\"{}\",\"instructions\":{},\"step_mips\":{:.3},\
             \"superblock_mips\":{:.3},\"trace_mips\":{:.3},\"fast_mips\":{:.3},\
             \"emu_speedup\":{:.4},\"superblock_speedup\":{:.4},\"fast_speedup\":{:.4},\
             \"trace_hits\":{},\"trace_misses\":{},\"trace_chain_follows\":{},\
             \"trace_ic_hits\":{},\"trace_ic_misses\":{},\
             \"harden_serial_ms\":{:.3},\"harden_parallel_ms\":{:.3},\"harden_speedup\":{:.4}}}",
            r.name,
            r.instructions,
            r.step_mips,
            r.superblock_mips,
            r.trace_mips,
            r.fast_mips,
            r.emu_speedup,
            r.superblock_speedup,
            r.fast_speedup,
            r.stats.hits,
            r.stats.misses,
            r.stats.chain_follows,
            r.stats.ic_hits,
            r.stats.ic_misses,
            r.harden_serial_ms,
            r.harden_parallel_ms,
            r.harden_speedup
        );
    }
    s.push_str("\n  ]");
    s
}

fn service_rows_json(rows: &[ServiceRow]) -> String {
    let mut s = String::from("[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "\n    {{\"name\":\"{}\",\"components\":{},\"cold_ms\":{:.3},\"warm_ms\":{:.3},\
             \"warm_speedup\":{:.4},\"artifact_hit_ms\":{:.4},\"artifact_miss_ms\":{:.4}}}",
            r.name,
            r.components,
            r.cold_ms,
            r.warm_ms,
            r.warm_speedup,
            r.artifact_hit_ms,
            r.artifact_miss_ms
        );
    }
    s.push_str("\n  ]");
    s
}

/// Cache measurements over a suite, against a scratch on-disk artifact
/// cache that is removed afterwards.
fn sweep_service(suite: &[Workload]) -> Vec<ServiceRow> {
    let dir = std::env::temp_dir().join(format!("redfat-perf-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let artifacts = ArtifactCache::open(&dir).expect("artifact cache");
    let rows: Vec<ServiceRow> = suite
        .iter()
        .map(|wl| {
            let row = measure_service(wl, &artifacts);
            eprintln!(
                "perf: {:<14} {:>3} components  cache cold {:>8.3} ms  warm {:>8.3} ms \
                 ({:.2}x)  artifact hit {:.4} ms",
                row.name,
                row.components,
                row.cold_ms,
                row.warm_ms,
                row.warm_speedup,
                row.artifact_hit_ms
            );
            row
        })
        .collect();
    let _ = std::fs::remove_dir_all(&dir);
    rows
}

fn warm_cache_geomean(rows: &[ServiceRow]) -> f64 {
    geomean(rows.iter().map(|r| r.warm_speedup))
}

fn emu_geomean(rows: &[Row]) -> f64 {
    geomean(rows.iter().map(|r| r.emu_speedup))
}

fn superblock_geomean(rows: &[Row]) -> f64 {
    geomean(rows.iter().map(|r| r.superblock_speedup))
}

fn fast_geomean(rows: &[Row]) -> f64 {
    geomean(rows.iter().map(|r| r.fast_speedup))
}

fn harden_geomean(rows: &[Row]) -> f64 {
    geomean(rows.iter().map(|r| r.harden_speedup))
}

/// One microbenchmark category: retired instructions and throughput on
/// each backend, run on the same hand-assembled loop.
struct MicroRow {
    name: &'static str,
    instructions: u64,
    step_mips: f64,
    superblock_mips: f64,
    trace_mips: f64,
    fast_mips: f64,
}

/// Iterations per microbenchmark loop; each body is 2-5 instructions,
/// so every category retires 1-2 M instructions per run.
const MICRO_ITERS: i64 = 300_000;

/// Hand-assembled single-category loops. The SPEC stand-ins mix
/// categories; these isolate them so a per-backend win or regression
/// can be attributed (e.g. host-pointer caching only moves the mem-*
/// and mixed rows; batched counters move all of them).
///
/// Every loop uses the same skeleton -- rdi accumulator, rsi data base,
/// rbx countdown, `sub rbx,1; jne` backedge -- so the backedge cost is
/// a constant across categories. Memory categories get a small RW
/// segment at `layout::GLOBALS_BASE`.
fn micro_suite() -> Vec<(&'static str, Image)> {
    fn build(with_data: bool, body: impl FnOnce(&mut Asm)) -> Image {
        let mut a = Asm::new(layout::CODE_BASE);
        a.mov_ri(Width::W64, Reg::Rdi, 0);
        a.mov_ri(Width::W64, Reg::Rsi, layout::GLOBALS_BASE as i64);
        a.mov_ri(Width::W64, Reg::Rbx, MICRO_ITERS);
        let spin = a.label();
        a.bind(spin).unwrap();
        body(&mut a);
        a.alu_ri(AluOp::Sub, Width::W64, Reg::Rbx, 1);
        a.jcc_label(Cond::Ne, spin);
        a.mov_ri(Width::W64, Reg::Rax, syscalls::EXIT as i64);
        a.syscall();
        let p = a.finish().unwrap();
        let mut segments = vec![Segment::new(p.base, SegFlags::RX, p.bytes)];
        if with_data {
            segments.push(Segment::new(
                layout::GLOBALS_BASE,
                SegFlags::RW,
                vec![0; 4096],
            ));
        }
        Image {
            kind: ImageKind::Exec,
            entry: layout::CODE_BASE,
            segments,
            symbols: vec![],
        }
    }

    vec![
        (
            "reg-alu",
            build(false, |a| {
                a.alu_ri(AluOp::Add, Width::W64, Reg::Rdi, 5);
                a.mov_rr(Width::W64, Reg::Rcx, Reg::Rdi);
                a.alu_ri(AluOp::And, Width::W64, Reg::Rcx, 7);
                a.alu_rr(AluOp::Xor, Width::W64, Reg::Rdi, Reg::Rcx);
            }),
        ),
        // Taken on even counts, fall-through on odd: a 50% mispredict
        // rate against the trace tier's expect-taken/expect-fallthrough
        // block shapes, stressing the side-exit path.
        (
            "branch",
            build(false, |a| {
                a.mov_rr(Width::W64, Reg::Rcx, Reg::Rbx);
                a.alu_ri(AluOp::And, Width::W64, Reg::Rcx, 1);
                let skip = a.label();
                a.jcc_label(Cond::E, skip);
                a.alu_ri(AluOp::Add, Width::W64, Reg::Rdi, 1);
                a.bind(skip).unwrap();
            }),
        ),
        (
            "mem-load",
            build(true, |a| {
                a.alu_rm(AluOp::Add, Width::W64, Reg::Rdi, Mem::base(Reg::Rsi));
                a.mov_rm(Width::W64, Reg::Rcx, Mem::base_disp(Reg::Rsi, 8));
                a.alu_rm(
                    AluOp::Add,
                    Width::W64,
                    Reg::Rdi,
                    Mem::base_disp(Reg::Rsi, 16),
                );
            }),
        ),
        (
            "mem-store",
            build(true, |a| {
                a.mov_mr(Width::W64, Mem::base(Reg::Rsi), Reg::Rbx);
                a.mov_mi(Width::W64, Mem::base_disp(Reg::Rsi, 8), 7);
                a.mov_mr(Width::W64, Mem::base_disp(Reg::Rsi, 16), Reg::Rdi);
            }),
        ),
        (
            "mixed",
            build(true, |a| {
                a.mov_mr(Width::W64, Mem::base(Reg::Rsi), Reg::Rbx);
                a.alu_rm(AluOp::Add, Width::W64, Reg::Rdi, Mem::base(Reg::Rsi));
                a.mov_rr(Width::W64, Reg::Rcx, Reg::Rdi);
                a.alu_ri(AluOp::And, Width::W64, Reg::Rcx, 15);
                let skip = a.label();
                a.jcc_label(Cond::E, skip);
                a.alu_ri(AluOp::Add, Width::W64, Reg::Rdi, 1);
                a.bind(skip).unwrap();
            }),
        ),
    ]
}

/// Times every category on all four backends, under the same
/// run-result and counter-equality preconditions as the main sweep.
fn sweep_micro() -> Vec<MicroRow> {
    micro_suite()
        .into_iter()
        .map(|(name, image)| {
            let (r_step, c_step, _, t_step) =
                time_backend(&image, &[], ExecBackend::Step, FULL_BUDGET);
            let (r_sup, c_sup, _, t_sup) =
                time_backend(&image, &[], ExecBackend::Superblock, FULL_BUDGET);
            let (r_tr, c_tr, _, t_tr) = time_backend(&image, &[], ExecBackend::Trace, FULL_BUDGET);
            let (r_fast, c_fast, _, t_fast) =
                time_backend(&image, &[], ExecBackend::Fast, FULL_BUDGET);
            assert!(
                matches!(r_step, RunResult::Exited(_)),
                "micro {name}: unexpected run result {r_step:?}"
            );
            for (backend, r, c) in [
                (ExecBackend::Superblock, r_sup, &c_sup),
                (ExecBackend::Trace, r_tr, &c_tr),
                (ExecBackend::Fast, r_fast, &c_fast),
            ] {
                assert_eq!(
                    r_step, r,
                    "micro {name}: backend run results diverge (step {r_step:?}, {backend} {r:?})"
                );
                assert_counters_equal(name, backend, &c_step, c);
            }
            let insts = c_step.instructions as f64;
            let row = MicroRow {
                name,
                instructions: c_step.instructions,
                step_mips: insts / t_step / 1e6,
                superblock_mips: insts / t_sup / 1e6,
                trace_mips: insts / t_tr / 1e6,
                fast_mips: insts / t_fast / 1e6,
            };
            eprintln!(
                "perf micro: {:<10} {:>9} insts  step {:>6.1} M/s  superblock {:>7.1} M/s  \
                 trace {:>7.1} M/s  fast {:>7.1} M/s",
                row.name,
                row.instructions,
                row.step_mips,
                row.superblock_mips,
                row.trace_mips,
                row.fast_mips
            );
            row
        })
        .collect()
}

fn micro_rows_json(rows: &[MicroRow]) -> String {
    let mut s = String::from("[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "\n    {{\"name\":\"{}\",\"instructions\":{},\"step_mips\":{:.3},\
             \"superblock_mips\":{:.3},\"trace_mips\":{:.3},\"fast_mips\":{:.3}}}",
            r.name, r.instructions, r.step_mips, r.superblock_mips, r.trace_mips, r.fast_mips
        );
    }
    s.push_str("\n  ]");
    s
}

fn render_json(
    full: &[Row],
    quick: &[Row],
    micro: &[MicroRow],
    service: &[ServiceRow],
    threads: usize,
    cores: usize,
) -> String {
    format!(
        "{{\n  \"schema\": \"{SCHEMA}\",\n  \"threads\": {threads},\n  \"cores\": {cores},\n  \
         \"full_budget\": {FULL_BUDGET},\n  \"quick_budget\": {QUICK_BUDGET},\n  \
         \"geomean_emu_speedup\": {:.4},\n  \"geomean_superblock_speedup\": {:.4},\n  \
         \"geomean_fast_speedup\": {:.4},\n  \
         \"geomean_harden_speedup\": {:.4},\n  \
         \"quick_geomean_emu_speedup\": {:.4},\n  \"quick_geomean_superblock_speedup\": {:.4},\n  \
         \"quick_geomean_fast_speedup\": {:.4},\n  \
         \"quick_geomean_harden_speedup\": {:.4},\n  \
         \"geomean_warm_cache_speedup\": {:.4},\n  \
         \"workloads\": {},\n  \"quick_workloads\": {},\n  \"micro\": {},\n  \"service\": {}\n}}\n",
        emu_geomean(full),
        superblock_geomean(full),
        fast_geomean(full),
        harden_geomean(full),
        emu_geomean(quick),
        superblock_geomean(quick),
        fast_geomean(quick),
        harden_geomean(quick),
        warm_cache_geomean(service),
        rows_json(full),
        rows_json(quick),
        micro_rows_json(micro),
        service_rows_json(service),
    )
}

/// Minimal extractor for our own flat JSON keys: finds `"key":` and
/// parses the number that follows.
fn json_number(text: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let i = text.find(&pat)? + pat.len();
    let rest = text[i..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Schema validation: required keys, non-empty workload arrays.
fn validate_schema(text: &str) -> Result<(), String> {
    if !text.contains(&format!("\"schema\": \"{SCHEMA}\"")) {
        return Err(format!("missing or unexpected schema id (want {SCHEMA})"));
    }
    for key in [
        // v3 keys, all preserved in v4.
        "geomean_emu_speedup",
        "geomean_superblock_speedup",
        "geomean_harden_speedup",
        "quick_geomean_emu_speedup",
        "quick_geomean_superblock_speedup",
        "quick_geomean_harden_speedup",
        "geomean_warm_cache_speedup",
        "threads",
        "cores",
        // v4: the fast tier.
        "geomean_fast_speedup",
        "quick_geomean_fast_speedup",
    ] {
        if json_number(text, key).is_none() {
            return Err(format!("missing numeric key {key:?}"));
        }
    }
    if !text.contains("\"workloads\":") || !text.contains("\"quick_workloads\":") {
        return Err("missing workload arrays".into());
    }
    if !text.contains("\"name\":") {
        return Err("workload arrays are empty".into());
    }
    if !text.contains("\"trace_mips\":") || !text.contains("\"trace_chain_follows\":") {
        return Err("missing per-workload trace backend columns".into());
    }
    if !text.contains("\"fast_mips\":") || !text.contains("\"fast_speedup\":") {
        return Err("missing per-workload fast backend columns".into());
    }
    if !text.contains("\"micro\":") {
        return Err("missing microbenchmark section".into());
    }
    if !text.contains("\"service\":") || !text.contains("\"warm_speedup\":") {
        return Err("missing service cache section".into());
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let threads = threads_from_args(args.iter().cloned());
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let quick = args.iter().any(|a| a == "--quick");
    let micro_only = args.iter().any(|a| a == "--micro");
    let mut out_path = "BENCH_perf.json".to_string();
    let mut baseline_path = "BENCH_perf.json".to_string();
    let mut check_path = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-o" => out_path = it.next().expect("-o requires a path").clone(),
            "--baseline" => baseline_path = it.next().expect("--baseline requires a path").clone(),
            "--check" => check_path = Some(it.next().expect("--check requires a path").clone()),
            _ => {}
        }
    }

    if let Some(path) = check_path {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        match validate_schema(&text) {
            Ok(()) => {
                println!("perf: {path}: schema ok ({SCHEMA})");
                return;
            }
            Err(e) => {
                eprintln!("perf: {path}: schema invalid: {e}");
                std::process::exit(1);
            }
        }
    }

    if micro_only {
        eprintln!("perf: microbenchmark suite...");
        let rows = sweep_micro();
        println!(
            "perf micro: fast/step geomean {:.3}x over {} categories",
            geomean(rows.iter().map(|r| r.fast_mips / r.step_mips)),
            rows.len()
        );
        return;
    }

    let suite = spec::all();
    if quick {
        eprintln!("perf: quick subset on {threads} threads ({cores} cores)...",);
        let rows = sweep(&quick_subset(suite), true, threads);
        let measured = emu_geomean(&rows);
        let sup = superblock_geomean(&rows);
        let fast = fast_geomean(&rows);
        println!(
            "perf quick: geomean emu speedup {measured:.3}x (superblock {sup:.3}x, \
             fast {fast:.3}x), harden speedup {:.3}x",
            harden_geomean(&rows)
        );
        if measured < sup {
            eprintln!(
                "perf: REGRESSION: trace-linked tier ({measured:.3}x) is slower than the \
                 superblock tier ({sup:.3}x) it builds on"
            );
            std::process::exit(1);
        }
        if fast < measured {
            eprintln!(
                "perf: REGRESSION: fast tier ({fast:.3}x) is slower than the \
                 trace-linked tier ({measured:.3}x) it builds on"
            );
            std::process::exit(1);
        }

        let service = sweep_service(&quick_subset(spec::all()));
        let warm = warm_cache_geomean(&service);
        println!("perf quick: geomean warm-cache speedup {warm:.3}x");
        if warm < 1.0 {
            eprintln!(
                "perf: REGRESSION: warm component-cache re-hardening ({warm:.3}x) is \
                 slower than cold analysis"
            );
            std::process::exit(1);
        }

        let text = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
            eprintln!("perf: cannot read committed baseline {baseline_path}: {e}");
            std::process::exit(1);
        });
        if let Err(e) = validate_schema(&text) {
            eprintln!("perf: baseline {baseline_path} schema invalid: {e}");
            std::process::exit(1);
        }
        let recorded = json_number(&text, "quick_geomean_emu_speedup").expect("validated");
        let floor = recorded * (1.0 - REGRESSION_TOLERANCE);
        println!("perf quick: baseline quick geomean {recorded:.3}x, regression floor {floor:.3}x");
        if measured < floor {
            eprintln!(
                "perf: REGRESSION: emulator speedup geomean {measured:.3}x fell below \
                 {floor:.3}x (baseline {recorded:.3}x - {:.0}%)",
                REGRESSION_TOLERANCE * 100.0
            );
            std::process::exit(1);
        }
        println!("perf quick: ok");
        return;
    }

    eprintln!(
        "perf: full sweep, {} workloads on {threads} threads ({cores} cores)...",
        suite.len()
    );
    let full = sweep(&suite, false, threads);
    eprintln!("perf: quick subset...");
    let quick_rows = sweep(&quick_subset(spec::all()), true, threads);
    eprintln!("perf: microbenchmark suite...");
    let micro = sweep_micro();
    eprintln!("perf: service cache sweep...");
    let service = sweep_service(&suite);
    let json = render_json(&full, &quick_rows, &micro, &service, threads, cores);
    validate_schema(&json).expect("self-produced JSON validates");
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!(
        "perf: geomean emu speedup {:.3}x (superblock {:.3}x, fast {:.3}x), \
         harden speedup {:.3}x, warm cache {:.3}x ({} workloads) -> {out_path}",
        emu_geomean(&full),
        superblock_geomean(&full),
        fast_geomean(&full),
        harden_geomean(&full),
        warm_cache_geomean(&service),
        full.len()
    );
}
