//! Regenerates the paper's **Table 1**: performance of RedFat and the
//! Memcheck baseline on the SPEC CPU2006 stand-in suite.
//!
//! Columns: coverage (% of ref-executed memory operands with the full
//! (Redzone)+(LowFat) check), baseline modeled cycles, then slowdown
//! factors for the nine RedFat configurations and Memcheck (NR where
//! the modeled Valgrind limits apply). Ends with the geometric means,
//! the static check-elimination accounting (syntactic vs. flow vs.
//! redundant vs. interprocedural) and the detected-real-error report
//! of §7.1.

use redfat_bench::{geomean, parallel_map, table1_row, Table1Row};
use redfat_workloads::{spec, Lang};

fn lang_tag(lang: Lang) -> &'static str {
    match lang {
        Lang::C => "C  ",
        Lang::Cpp => "C++",
        Lang::Fortran => "F  ",
    }
}

fn main() {
    let threads = redfat_bench::threads_from_args(std::env::args());
    let suite = spec::all();
    eprintln!(
        "table1: running {} benchmarks on {} threads...",
        suite.len(),
        threads
    );
    let t0 = std::time::Instant::now();
    let rows: Vec<Table1Row> = parallel_map(suite, threads, table1_row);
    eprintln!("table1: done in {:.1}s", t0.elapsed().as_secs_f64());

    println!("Table 1: Performance of RedFat and Memcheck on the SPEC CPU2006 stand-in suite");
    println!("(slowdown factors vs. the uninstrumented baseline; modeled cycles)");
    println!();
    println!(
        "{:<12} {:>4} {:>9} {:>12} {:>8} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>9}",
        "Binary",
        "lang",
        "coverage",
        "Baseline(cy)",
        "unopt",
        "+elim",
        "+batch",
        "+merge",
        "+flow",
        "+redund",
        "+interp",
        "-size",
        "-reads",
        "Memcheck"
    );
    for r in &rows {
        let mc = match r.memcheck {
            Some(v) => format!("{v:8.2}x"),
            None => "      NR".to_owned(),
        };
        println!(
            "{:<12} {:>4} {:>8.1}% {:>12} {:>7.2}x {:>6.2}x {:>6.2}x {:>6.2}x {:>6.2}x {:>6.2}x {:>6.2}x {:>6.2}x {:>6.2}x {}",
            r.name,
            lang_tag(r.lang),
            100.0 * r.coverage,
            r.baseline_cycles,
            r.redfat[0],
            r.redfat[1],
            r.redfat[2],
            r.redfat[3],
            r.redfat[4],
            r.redfat[5],
            r.redfat[6],
            r.redfat[7],
            r.redfat[8],
            mc
        );
    }

    let gm = |idx: usize| geomean(rows.iter().map(|r| r.redfat[idx]));
    let mc_gm = geomean(rows.iter().filter_map(|r| r.memcheck));
    println!(
        "{:<12} {:>4} {:>8.1}% {:>12} {:>7.2}x {:>6.2}x {:>6.2}x {:>6.2}x {:>6.2}x {:>6.2}x {:>6.2}x {:>6.2}x {:>6.2}x {:>8.2}x",
        "Geomean",
        "",
        100.0 * geomean(rows.iter().map(|r| r.coverage.max(1e-9))),
        rows.iter().map(|r| r.baseline_cycles).sum::<u64>() / rows.len() as u64,
        gm(0),
        gm(1),
        gm(2),
        gm(3),
        gm(4),
        gm(5),
        gm(6),
        gm(7),
        gm(8),
        mc_gm
    );

    println!();
    println!("Static check elimination (sites):");
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>10}",
        "Binary", "syntactic", "+flow", "redundant", "+interproc"
    );
    for r in &rows {
        println!(
            "{:<12} {:>10} {:>10} {:>10} {:>10}",
            r.name, r.sites_elim, r.sites_flow, r.sites_redundant, r.sites_interproc
        );
    }
    let flow_wins = rows
        .iter()
        .filter(|r| r.sites_flow > 0 && r.redfat[4] <= r.redfat[3])
        .count();
    println!(
        "+flow eliminates additional sites on {} / {} benchmarks",
        flow_wins,
        rows.len()
    );
    let interproc_wins = rows.iter().filter(|r| r.sites_interproc > 0).count();
    println!(
        "+interproc eliminates additional sites on {} / {} benchmarks",
        interproc_wins,
        rows.len()
    );

    println!();
    println!("Detected errors (fully optimized config, log mode):");
    for r in rows.iter().filter(|r| r.errors_detected > 0) {
        println!(
            "  {:<12} {} distinct error site(s)",
            r.name, r.errors_detected
        );
    }
    let nr: Vec<&str> = rows
        .iter()
        .filter(|r| r.memcheck.is_none())
        .map(|r| r.name)
        .collect();
    println!("Memcheck NR rows: {nr:?}");
}
