//! Dynamic memory-access mix probe: classifies every guest access as
//! stack / heap / other. The stack share bounds what check elimination
//! can remove (Table 1, unopt vs +elim).

use redfat_emu::{Cpu, Emu, ErrorMode, HostRuntime, MemoryError, Runtime, SyscallOutcome};
use redfat_vm::{layout, Vm};
use redfat_workloads::spec;

struct Classify {
    inner: HostRuntime,
    stack: u64,
    heap: u64,
    other: u64,
}

impl Runtime for Classify {
    // Accesses are bucketed through the hook.
    const OBSERVES_MEMORY: bool = true;

    fn on_load(&mut self, vm: &mut Vm) {
        self.inner.on_load(vm);
    }
    fn syscall(&mut self, cpu: &mut Cpu, vm: &mut Vm) -> SyscallOutcome {
        self.inner.syscall(cpu, vm)
    }
    fn on_memory_access(
        &mut self,
        _vm: &Vm,
        addr: u64,
        _len: u8,
        _w: bool,
        _rip: u64,
    ) -> Result<u64, MemoryError> {
        if addr >= layout::heap_start() {
            self.heap += 1;
        } else if addr > layout::STACK_TOP - layout::STACK_SIZE {
            self.stack += 1;
        } else {
            self.other += 1;
        }
        Ok(0)
    }
}

fn main() {
    println!(
        "{:<12} {:>7} {:>7} {:>7} {:>12} {:>12}",
        "benchmark", "stack", "heap", "other", "instructions", "accesses"
    );
    for wl in spec::all() {
        let rt = Classify {
            inner: HostRuntime::new(ErrorMode::Log).with_input(wl.ref_input.clone()),
            stack: 0,
            heap: 0,
            other: 0,
        };
        let mut emu = Emu::load_image(&wl.image(), rt).expect("loads");
        let _ = emu.run(u64::MAX);
        let r = &emu.runtime;
        let total = (r.stack + r.heap + r.other) as f64;
        println!(
            "{:<12} {:>6.1}% {:>6.1}% {:>6.1}% {:>12} {:>12}",
            wl.name,
            100.0 * r.stack as f64 / total,
            100.0 * r.heap as f64 / total,
            100.0 * r.other as f64 / total,
            emu.counters.instructions,
            total as u64
        );
    }
}
