//! Regenerates the paper's **Table 2**: detection of non-incremental
//! bounds errors -- four real-world CVE reproductions plus the generated
//! 480-case Juliet-like CWE-122 suite -- under RedFat and the Memcheck
//! baseline.

use redfat_bench::{memcheck_detects, parallel_map, redfat_detects};
use redfat_workloads::{cve, juliet};

fn main() {
    let threads = redfat_bench::threads_from_args(std::env::args());

    println!("Table 2: CVEs/CWEs for non-incremental bounds errors");
    println!();
    println!("{:<38} {:>16} {:>16}", "Entry", "Memcheck", "RedFat");

    for case in cve::all() {
        let image = case.workload.image();
        let rf = redfat_detects(&image, &case.attack_input) as usize;
        let mc = memcheck_detects(&image, &case.attack_input) as usize;
        println!(
            "{:<38} {:>10}/1 ({:>3.0}%) {:>9}/1 ({:>3.0}%)",
            format!("{} ({})", case.cve, case.workload.name),
            mc,
            100.0 * mc as f64,
            rf,
            100.0 * rf as f64,
        );
    }

    // Juliet sweep (parallel; 480 hardened runs).
    let suite = juliet::generate();
    let total = suite.len();
    let verdicts = parallel_map(suite, threads, |case| {
        let image = case.workload.image();
        (
            redfat_detects(&image, &case.attack_input),
            memcheck_detects(&image, &case.attack_input),
        )
    });
    let rf_hits = verdicts.iter().filter(|(rf, _)| *rf).count();
    let mc_hits = verdicts.iter().filter(|(_, mc)| *mc).count();
    println!(
        "{:<38} {:>8}/{} ({:>3.0}%) {:>7}/{} ({:>3.0}%)",
        "CWE-122-Heap-Buffer (Juliet-like)",
        mc_hits,
        total,
        100.0 * mc_hits as f64 / total as f64,
        rf_hits,
        total,
        100.0 * rf_hits as f64 / total as f64,
    );
}
