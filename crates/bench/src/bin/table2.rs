//! Regenerates the paper's **Table 2**: detection of non-incremental
//! bounds errors -- four real-world CVE reproductions plus the generated
//! 480-case Juliet-like CWE-122 suite -- under RedFat and the Memcheck
//! baseline.
//!
//! Flags:
//!
//! * `--alloc-policy lowfat|rand-lowfat` backs the RedFat runs with the
//!   given allocator policy (default `lowfat`, which reproduces the
//!   paper's table byte-for-byte).
//! * `--backends` emits the per-backend comparison instead: every CVE,
//!   the computed-pointer slot-skip suite, and the Juliet sweep under
//!   *each* registered policy side by side (recorded in
//!   `results/table2_backends.txt`; methodology in EXPERIMENTS.md).

use redfat_bench::{
    memcheck_detects, parallel_map, policy_from_args, redfat_detects_policy, threads_from_args,
};
use redfat_core::AllocPolicyKind;
use redfat_workloads::{cve, juliet, skips};

fn main() {
    let threads = threads_from_args(std::env::args());
    let policy = policy_from_args(std::env::args());
    if std::env::args().any(|a| a == "--backends") {
        per_backend(threads);
    } else {
        paper_table(threads, policy);
    }
}

/// The paper's Table 2 under one allocator policy (the default policy
/// reproduces the committed `results/table2.txt` exactly).
fn paper_table(threads: usize, policy: AllocPolicyKind) {
    println!("Table 2: CVEs/CWEs for non-incremental bounds errors");
    println!();
    println!("{:<38} {:>16} {:>16}", "Entry", "Memcheck", "RedFat");

    for case in cve::all() {
        let image = case.workload.image();
        let rf = redfat_detects_policy(&image, &case.attack_input, policy) as usize;
        let mc = memcheck_detects(&image, &case.attack_input) as usize;
        println!(
            "{:<38} {:>10}/1 ({:>3.0}%) {:>9}/1 ({:>3.0}%)",
            format!("{} ({})", case.cve, case.workload.name),
            mc,
            100.0 * mc as f64,
            rf,
            100.0 * rf as f64,
        );
    }

    // Juliet sweep (parallel; 480 hardened runs).
    let suite = juliet::generate();
    let total = suite.len();
    let verdicts = parallel_map(suite, threads, |case| {
        let image = case.workload.image();
        (
            redfat_detects_policy(&image, &case.attack_input, policy),
            memcheck_detects(&image, &case.attack_input),
        )
    });
    let rf_hits = verdicts.iter().filter(|(rf, _)| *rf).count();
    let mc_hits = verdicts.iter().filter(|(_, mc)| *mc).count();
    println!(
        "{:<38} {:>8}/{} ({:>3.0}%) {:>7}/{} ({:>3.0}%)",
        "CWE-122-Heap-Buffer (Juliet-like)",
        mc_hits,
        total,
        100.0 * mc_hits as f64 / total as f64,
        rf_hits,
        total,
        100.0 * rf_hits as f64 / total as f64,
    );
}

/// The per-backend sweep: one RedFat column per registered allocator
/// policy, over the CVEs, the slot-skip suite, and the Juliet sweep.
fn per_backend(threads: usize) {
    println!("Table 2 (per-backend): detection under each allocator policy");
    println!();
    print!("{:<38}", "Entry");
    for kind in AllocPolicyKind::ALL {
        print!(" {:>16}", kind.to_string());
    }
    println!();

    for case in cve::all() {
        let image = case.workload.image();
        print!("{:<38}", format!("{} ({})", case.cve, case.workload.name));
        for kind in AllocPolicyKind::ALL {
            let hit = redfat_detects_policy(&image, &case.attack_input, kind) as usize;
            print!(" {hit:>14}/1");
        }
        println!();
    }

    // The slot-skip suite: accesses with no base-register provenance.
    // The deterministic policy's live same-class neighbor makes the
    // landing slot's metadata cover the access; the randomized policy
    // leaves the adjacent slot free with high probability.
    for case in skips::all() {
        let image = case.workload.image();
        print!(
            "{:<38}",
            format!("{} (computed-pointer skip)", case.workload.name)
        );
        for kind in AllocPolicyKind::ALL {
            let hit = redfat_detects_policy(&image, &case.attack_input, kind) as usize;
            print!(" {hit:>14}/1");
        }
        println!();
    }

    let suite = juliet::generate();
    let total = suite.len();
    let verdicts = parallel_map(suite, threads, |case| {
        let image = case.workload.image();
        AllocPolicyKind::ALL.map(|kind| redfat_detects_policy(&image, &case.attack_input, kind))
    });
    print!("{:<38}", "CWE-122-Heap-Buffer (Juliet-like)");
    for (i, _) in AllocPolicyKind::ALL.iter().enumerate() {
        let hits = verdicts.iter().filter(|v| v[i]).count();
        print!(" {hits:>12}/{total}");
    }
    println!();
    println!();
    println!("(provenance-carrying accesses detect identically under every policy;");
    println!(" the computed-pointer skips separate them -- see EXPERIMENTS.md)");
}
