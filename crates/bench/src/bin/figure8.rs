//! Regenerates the paper's **Figure 8**: overhead of write-protection
//! hardening on a very large binary ("kromium", the Chrome stand-in)
//! under the Kraken-like benchmark suite (§7.3).
//!
//! Also reports the §7.3 scalability statistics: binary size, number of
//! patched sites, trampoline bytes, patch-tactic split, and rewrite
//! wall-clock time.

use redfat_bench::geomean;
use redfat_core::{harden, run_once, HardenConfig, LowFatPolicy};
use redfat_emu::ErrorMode;
use redfat_workloads::{kraken, kromium};

fn main() {
    eprintln!("figure8: building kromium...");
    let t0 = std::time::Instant::now();
    let wl = kromium::build();
    let image = wl.image();
    let code_bytes: u64 = image.exec_segments().map(|s| s.data.len() as u64).sum();
    eprintln!(
        "figure8: kromium built in {:.1}s ({} KB of code)",
        t0.elapsed().as_secs_f64(),
        code_bytes / 1024
    );

    // Write-only hardening, as in the paper's Chrome experiment.
    let t1 = std::time::Instant::now();
    let cfg = HardenConfig::minus_reads(LowFatPolicy::All);
    let hardened = harden(&image, &cfg).expect("kromium hardens");
    let rewrite_secs = t1.elapsed().as_secs_f64();

    println!("Figure 8: kromium (Chrome stand-in) overhead under Kraken-like benchmarks");
    println!("(write-only (Redzone)+(LowFat) hardening, slowdown vs. baseline)");
    println!();

    let mut factors = Vec::new();
    for bench in kraken::all() {
        let input = vec![bench.kernel, bench.scale];
        let base = run_once(&image, input.clone(), ErrorMode::Log, u64::MAX);
        let hard = run_once(&hardened.image, input, ErrorMode::Log, u64::MAX);
        assert!(base.ok() && hard.ok(), "{} must run", bench.name);
        assert_eq!(
            base.io.digest(),
            hard.io.digest(),
            "{}: hardening changed output",
            bench.name
        );
        let factor = hard.counters.cycles as f64 / base.counters.cycles as f64;
        factors.push(factor);
        let bar = "#".repeat(((factor - 1.0) * 40.0).clamp(1.0, 60.0) as usize);
        println!("{:<22} {factor:>5.2}x  {bar}", bench.name);
    }
    let gm = geomean(factors.iter().copied());
    println!("{:<22} {gm:>5.2}x", "Geometric Mean");

    println!();
    println!("Scalability (paper §7.3):");
    println!("  code size           {:>10} bytes", code_bytes);
    println!("  rewrite time        {rewrite_secs:>10.2} s");
    println!(
        "  instrumented sites  {:>10}",
        hardened.stats.sites_lowfat + hardened.stats.sites_redzone
    );
    println!("  batches             {:>10}", hardened.stats.batches);
    println!(
        "  jmp patches         {:>10}",
        hardened.stats.rewrite.jmp_patches
    );
    println!(
        "  int3 patches        {:>10}",
        hardened.stats.rewrite.trap_patches
    );
    println!(
        "  trampoline bytes    {:>10}",
        hardened.stats.rewrite.trampoline_bytes
    );

    // Startup stability check (the "Chrome loads and runs stable" claim).
    let startup = run_once(&hardened.image, vec![0, 1], ErrorMode::Abort, u64::MAX);
    println!(
        "  hardened startup    {:>10}",
        if startup.ok() { "stable" } else { "FAILED" }
    );
}
