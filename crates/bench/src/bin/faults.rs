//! Fault-injection campaign: the heavy, parallel counterpart of
//! `redfat selftest --faults`.
//!
//! Runs a much larger seeded mutation sweep than the CLI subcommand
//! (hundreds of mutants per SPEC stand-in), prints the classification
//! breakdown by stage, and exits nonzero if any mutant escaped
//! classification -- i.e. if anything in the parse → harden → load →
//! run chain panicked instead of returning a structured error or a
//! recorded degradation.

use redfat_core::{fault_sweep, FaultConfig};

fn main() {
    let threads = redfat_bench::threads_from_args(std::env::args());
    let config = FaultConfig {
        mutants_per_workload: 400,
        ..FaultConfig::default()
    };
    println!(
        "faults: {} mutants per stand-in on {} threads (seed {:#x})...",
        config.mutants_per_workload, threads, config.seed
    );
    let report = fault_sweep(&config, threads);
    println!(
        "faults: {} mutants: {} ok, {} errors, {} degraded",
        report.cases, report.ok, report.errors, report.degraded
    );
    for (stage, n) in &report.by_stage {
        println!("  stage {stage:<8} {n} errors");
    }
    if !report.clean() {
        for f in &report.failures {
            eprintln!("FAIL {f}");
        }
        eprintln!(
            "fault sweep FAILED ({} unclassified)",
            report.failures.len()
        );
        std::process::exit(1);
    }
    println!("fault sweep passed");
}
