//! Regenerates the §7.1 **false positives** experiment: rerun the SPEC
//! stand-ins with full (Redzone)+(LowFat) checking on every memory
//! access (no profile-based allow-list) and count the distinct
//! false-positive sites per benchmark.
//!
//! The paper reports: perlbench 1, gcc 14, gobmk 1, povray 1, bwaves 5,
//! gromacs 3, GemsFDTD 32, wrf 26, calculix 2 -- mostly `array - K`
//! anti-idioms, natively produced by Fortran's non-zero array bases.

use redfat_bench::{false_positive_sites, parallel_map};
use redfat_workloads::spec;

fn main() {
    let threads = redfat_bench::threads_from_args(std::env::args());
    let suite = spec::all();
    let expected: Vec<(&str, usize)> = suite.iter().map(|w| (w.name, w.anti_idiom_sites)).collect();
    let counts = parallel_map(suite, threads, false_positive_sites);

    println!("False positives with (Redzone)+(LowFat) on ALL memory access (no allow-list):");
    println!();
    println!(
        "{:<12} {:>10} {:>24}",
        "Binary", "observed", "anti-idiom sites (src)"
    );
    let mut total = 0usize;
    for ((name, planted), observed) in expected.iter().zip(&counts) {
        if *observed > 0 || *planted > 0 {
            println!("{name:<12} {observed:>10} {planted:>24}");
        }
        total += observed;
    }
    println!();
    println!("total false-positive sites: {total}");
    println!("(the same binaries run clean under the profile-generated allow-list: see table1)");
}
