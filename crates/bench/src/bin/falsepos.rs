//! Regenerates the §7.1 **false positives** experiment: rerun the SPEC
//! stand-ins with full (Redzone)+(LowFat) checking on every memory
//! access (no profile-based allow-list) and count the distinct
//! false-positive sites per benchmark.
//!
//! The paper reports: perlbench 1, gcc 14, gobmk 1, povray 1, bwaves 5,
//! gromacs 3, GemsFDTD 32, wrf 26, calculix 2 -- mostly `array - K`
//! anti-idioms, natively produced by Fortran's non-zero array bases.
//!
//! Flags:
//!
//! * `--alloc-policy lowfat|rand-lowfat` backs the runs with the given
//!   allocator policy (default `lowfat` reproduces the committed
//!   `results/falsepos.txt` byte-for-byte).
//! * `--backends` emits one observed-count column per registered policy
//!   (recorded in `results/falsepos_backends.txt`): placement decides
//!   which intentional-OOB anti-idiom pointers land on metadata that
//!   fails the merged check, so per-site counts shift between policies
//!   -- which is exactly why the §5 allow-list workflow precedes
//!   production deployment under any backend.

use redfat_bench::{
    false_positive_sites_policy, parallel_map, policy_from_args, threads_from_args,
};
use redfat_core::AllocPolicyKind;
use redfat_workloads::spec;

fn main() {
    let threads = threads_from_args(std::env::args());
    let policy = policy_from_args(std::env::args());
    if std::env::args().any(|a| a == "--backends") {
        per_backend(threads);
    } else {
        paper_table(threads, policy);
    }
}

fn paper_table(threads: usize, policy: AllocPolicyKind) {
    let suite = spec::all();
    let expected: Vec<(&str, usize)> = suite.iter().map(|w| (w.name, w.anti_idiom_sites)).collect();
    let counts = parallel_map(suite, threads, |w| false_positive_sites_policy(w, policy));

    println!("False positives with (Redzone)+(LowFat) on ALL memory access (no allow-list):");
    println!();
    println!(
        "{:<12} {:>10} {:>24}",
        "Binary", "observed", "anti-idiom sites (src)"
    );
    let mut total = 0usize;
    for ((name, planted), observed) in expected.iter().zip(&counts) {
        if *observed > 0 || *planted > 0 {
            println!("{name:<12} {observed:>10} {planted:>24}");
        }
        total += observed;
    }
    println!();
    println!("total false-positive sites: {total}");
    println!("(the same binaries run clean under the profile-generated allow-list: see table1)");
}

fn per_backend(threads: usize) {
    let suite = spec::all();
    let names: Vec<(&str, usize)> = suite.iter().map(|w| (w.name, w.anti_idiom_sites)).collect();
    let counts = parallel_map(suite, threads, |w| {
        AllocPolicyKind::ALL.map(|kind| false_positive_sites_policy(w, kind))
    });

    println!("False positives per allocator policy (full checking, no allow-list):");
    println!();
    print!("{:<12}", "Binary");
    for kind in AllocPolicyKind::ALL {
        print!(" {:>12}", kind.to_string());
    }
    println!(" {:>24}", "anti-idiom sites (src)");
    let mut totals = vec![0usize; AllocPolicyKind::ALL.len()];
    for ((name, planted), observed) in names.iter().zip(&counts) {
        if observed.iter().any(|&c| c > 0) || *planted > 0 {
            print!("{name:<12}");
            for &c in observed.iter() {
                print!(" {c:>12}");
            }
            println!(" {planted:>24}");
        }
        for (t, &c) in totals.iter_mut().zip(observed.iter()) {
            *t += c;
        }
    }
    println!();
    print!("total sites:");
    for t in &totals {
        print!(" {t:>12}");
    }
    println!();
    println!();
    println!("(placement decides which intentional-OOB anti-idiom pointers land on");
    println!(" metadata that fails the merged check, so per-site counts shift between");
    println!(" policies -- the profile-generated allow-list workflow covers both)");
}
