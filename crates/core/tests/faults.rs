//! Fault-injection harness integration tests: the seeded sweep must
//! classify every mutant (no panics), be deterministic, and the
//! individual panic fixes must hold through the public API.

use redfat_core::{classify_bytes, fault_sweep, FaultConfig, FaultOutcome};
use redfat_workloads::spec;

/// A scaled-down sweep config so debug-build test time stays sane.
fn small_config() -> FaultConfig {
    FaultConfig {
        mutants_per_workload: 4,
        max_steps: 50_000,
        ..FaultConfig::default()
    }
}

#[test]
fn sweep_classifies_every_mutant() {
    let report = fault_sweep(&small_config(), 4);
    assert!(report.clean(), "failures: {:#?}", report.failures);
    assert_eq!(report.cases, 4 * spec::all().len());
    assert_eq!(report.cases, report.ok + report.errors + report.degraded);
    // A sweep that rejects nothing is not exercising the error paths.
    assert!(report.errors > 0, "{report:?}");
}

#[test]
fn sweep_is_deterministic_across_thread_counts() {
    let a = fault_sweep(&small_config(), 1);
    let b = fault_sweep(&small_config(), 7);
    assert_eq!(a, b);
}

#[test]
fn different_seed_changes_the_mutants() {
    let a = fault_sweep(&small_config(), 4);
    let b = fault_sweep(
        &FaultConfig {
            seed: 0x0DD5_EED5,
            ..small_config()
        },
        4,
    );
    // Same case count, but (overwhelmingly likely) different outcomes.
    assert_eq!(a.cases, b.cases);
    assert_ne!(a, b);
}

#[test]
fn truncated_elf_classifies_as_parse_error() {
    let w = spec::all().into_iter().next().unwrap();
    let bytes = w.image().to_bytes();
    let outcome = classify_bytes(&bytes[..20], &w.train_input, 10_000);
    match outcome {
        FaultOutcome::Error(e) => assert_eq!(e.stage, redfat_core::Stage::Parse),
        other => panic!("expected parse error, got {other:?}"),
    }
}

#[test]
fn well_formed_workload_classifies_ok() {
    let w = spec::all().into_iter().next().unwrap();
    let bytes = w.image().to_bytes();
    let outcome = classify_bytes(&bytes, &w.train_input, 2_000_000);
    assert!(matches!(outcome, FaultOutcome::Ok), "{outcome:?}");
}
