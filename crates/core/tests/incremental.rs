//! Golden tests for incremental re-hardening: warm component-cache
//! runs must do zero analysis and a one-component byte edit must
//! re-analyze exactly that component, with output byte-identical to a
//! cold run -- across every SPEC stand-in.

use redfat_analysis::{disassemble, unknown_entries, Cfg};
use redfat_core::{harden_cached, HardenConfig, MemoryComponentCache};
use redfat_elf::Image;

/// Finds a single-byte mutation of `image` that changes instruction
/// *content* but not structure: identical decode boundaries, identical
/// blocks/successors, identical leaders, function entries, and roots.
/// Such an edit perturbs exactly one CFG component's content key.
///
/// Returns the mutated image. Deterministic: candidates are tried in
/// address order (low bit of each instruction's last byte).
fn mutate_one_component(image: &Image) -> Option<Image> {
    let d0 = disassemble(image);
    let cfg0 = Cfg::recover(&d0, image.entry, &[]);
    let roots0 = unknown_entries(&d0, &cfg0, image.entry);
    let bounds0: Vec<(u64, u8)> = d0.iter().map(|(a, _, l)| (a, l)).collect();

    let mut tried = 0;
    for (addr, _, len) in d0.iter() {
        // Only instructions inside a recovered block participate in a
        // component key; flipping anything else proves nothing.
        if cfg0.block_of(addr).is_none() {
            continue;
        }
        // Long instructions end in immediates/displacements far more
        // often than in opcode bytes, so their low bit is the most
        // likely structure-preserving flip.
        if len < 4 {
            continue;
        }
        tried += 1;
        if tried > 300 {
            break; // candidate budget; plenty for every stand-in
        }

        let mut mutated = image.clone();
        let target = addr + u64::from(len) - 1;
        let Some(seg) = mutated
            .segments
            .iter_mut()
            .find(|s| s.vaddr <= target && target - s.vaddr < s.data.len() as u64)
        else {
            continue;
        };
        seg.data[(target - seg.vaddr) as usize] ^= 1;

        // Validate: same decode boundaries and identical CFG structure
        // (blocks compare instruction lists, successors, and opaque
        // exits), so exactly one component's *content* changed.
        let d1 = disassemble(&mutated);
        let bounds1: Vec<(u64, u8)> = d1.iter().map(|(a, _, l)| (a, l)).collect();
        if bounds1 != bounds0 {
            continue;
        }
        let cfg1 = Cfg::recover(&d1, mutated.entry, &[]);
        if cfg1.blocks != cfg0.blocks
            || cfg1.leaders != cfg0.leaders
            || cfg1.func_entries != cfg0.func_entries
        {
            continue;
        }
        if unknown_entries(&d1, &cfg1, mutated.entry) != roots0 {
            continue;
        }
        return Some(mutated);
    }
    None
}

#[test]
fn warm_and_incremental_rehardening_is_byte_identical_on_all_stand_ins() {
    let config = HardenConfig::default();
    for w in redfat_workloads::spec::all() {
        let image = w.image();
        let cache = MemoryComponentCache::new();

        // Cold run: populates the cache, reuses nothing.
        let cold = harden_cached(&image, &config, 2, &cache)
            .unwrap_or_else(|e| panic!("{}: cold harden failed: {e}", w.name));
        assert_eq!(cold.stats.components_reused, 0, "{}", w.name);
        assert!(cold.stats.components > 1, "{}: multi-component", w.name);

        // Warm run: every component served from the cache, zero
        // analysis, byte-identical output.
        let warm = harden_cached(&image, &config, 2, &cache)
            .unwrap_or_else(|e| panic!("{}: warm harden failed: {e}", w.name));
        assert_eq!(
            warm.stats.components_reused, warm.stats.components,
            "{}: warm run reuses every component",
            w.name
        );
        assert_eq!(
            warm.image.to_bytes(),
            cold.image.to_bytes(),
            "{}: warm bytes identical",
            w.name
        );

        // One-component edit: only the touched component re-analyzes,
        // and the result is byte-identical to hardening the edited
        // image from a cold cache.
        let mutated = mutate_one_component(&image)
            .unwrap_or_else(|| panic!("{}: no structure-preserving mutation found", w.name));
        let cold_cache = MemoryComponentCache::new();
        let cold2 = harden_cached(&mutated, &config, 2, &cold_cache)
            .unwrap_or_else(|e| panic!("{}: mutated cold harden failed: {e}", w.name));
        let incr = harden_cached(&mutated, &config, 2, &cache)
            .unwrap_or_else(|e| panic!("{}: incremental harden failed: {e}", w.name));
        assert_eq!(incr.stats.components, cold2.stats.components, "{}", w.name);
        assert_eq!(
            incr.stats.components_reused,
            incr.stats.components - 1,
            "{}: exactly one component re-analyzed",
            w.name
        );
        assert_eq!(
            incr.image.to_bytes(),
            cold2.image.to_bytes(),
            "{}: incremental bytes identical to cold",
            w.name
        );
    }
}

#[test]
fn interproc_config_degrades_reuse_to_whole_image_soundly() {
    use redfat_core::LowFatPolicy;
    let config = HardenConfig::with_interproc(LowFatPolicy::All);
    let w = &redfat_workloads::spec::all()[0];
    let image = w.image();
    let cache = MemoryComponentCache::new();

    // Same image: full reuse still applies (the whole-image digest in
    // the prefix is unchanged).
    let cold = harden_cached(&image, &config, 2, &cache).expect("cold");
    let warm = harden_cached(&image, &config, 2, &cache).expect("warm");
    assert_eq!(warm.stats.components_reused, warm.stats.components);
    assert_eq!(warm.image.to_bytes(), cold.image.to_bytes());

    // Any byte edit invalidates *every* component under interproc
    // (summaries are a whole-image fixpoint), trading reuse for
    // soundness.
    let mutated = mutate_one_component(&image).expect("mutation");
    let incr = harden_cached(&mutated, &config, 2, &cache).expect("incremental");
    assert_eq!(
        incr.stats.components_reused, 0,
        "interproc degrades to whole-image granularity"
    );
    let cold_cache = MemoryComponentCache::new();
    let cold2 = harden_cached(&mutated, &config, 2, &cold_cache).expect("mutated cold");
    assert_eq!(incr.image.to_bytes(), cold2.image.to_bytes());
}
