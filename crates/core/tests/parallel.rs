//! Determinism of the sharded hardening pipeline: the hardened image,
//! the statistics, and the clobber declarations must be identical at
//! every thread count. The shard unit is one weakly-connected CFG
//! component, so the worker count can only change *who* computes a
//! shard, never what any shard computes (see `Cfg::components`).

use redfat_core::{harden_threaded, HardenConfig, LowFatPolicy};

#[test]
fn harden_is_identical_across_thread_counts() {
    for w in redfat_workloads::spec::all() {
        let image = w.image();
        for config in [
            HardenConfig::default(),
            HardenConfig::unoptimized(LowFatPolicy::All),
        ] {
            let serial = harden_threaded(&image, &config, 1).expect("serial harden");
            let serial_bytes = serial.image.to_bytes();
            for threads in [2usize, 8] {
                let parallel = harden_threaded(&image, &config, threads).expect("parallel harden");
                assert_eq!(
                    serial_bytes,
                    parallel.image.to_bytes(),
                    "{}: hardened image differs at {threads} threads",
                    w.name
                );
                assert_eq!(
                    serial.stats, parallel.stats,
                    "{}: stats differ at {threads} threads",
                    w.name
                );
                assert_eq!(
                    serial.clobbers, parallel.clobbers,
                    "{}: clobber declarations differ at {threads} threads",
                    w.name
                );
            }
        }
    }
}

#[test]
fn threads_beyond_component_count_are_harmless() {
    let image = redfat_minic::compile(
        "fn main() {
            var a = malloc(8 * 8);
            for (var i = 0; i < 8; i = i + 1) { a[i] = i * 3; }
            var s = 0;
            for (var i = 0; i < 8; i = i + 1) { s = s + a[i]; }
            print(s);
            free(a);
            return 0;
        }",
    )
    .expect("program compiles");
    let config = HardenConfig::default();
    let serial = harden_threaded(&image, &config, 1).expect("serial harden");
    let wide = harden_threaded(&image, &config, 64).expect("wide harden");
    assert_eq!(serial.image.to_bytes(), wide.image.to_bytes());
    assert_eq!(serial.stats, wide.stats);
}
