//! Randomized tests for the hardening pipeline: random mini-C programs
//! must behave identically before and after hardening (on inputs with
//! no memory errors), under every optimization configuration. Driven by
//! a deterministic seeded generator.

use redfat_core::{harden, run_once, HardenConfig, LowFatPolicy};
use redfat_emu::{ErrorMode, RunResult};
use redfat_minic::compile;
use redfat_vm::Rng64;

/// Generates a random but memory-safe mini-C program: fixed-size heap
/// arrays accessed through in-bounds indices only, with random
/// arithmetic and control flow.
fn random_program(r: &mut Rng64) -> String {
    let elems = r.range_u64(2, 12);
    let loops = r.range_u64(1, 6);
    let n_ops = r.below_usize(11) + 1;
    let mut body = String::new();
    for _ in 0..n_ops {
        let slot = r.below(8);
        let val = r.range_i64(0, 50);
        let idx = slot % elems;
        match r.below(5) {
            0 => body.push_str(&format!("a[{idx}] = {val};\n")),
            1 => body.push_str(&format!("a[{idx}] = a[{idx}] + {val};\n")),
            2 => body.push_str(&format!("s = s + a[{idx}] * {val};\n")),
            3 => body.push_str(&format!(
                "if (a[{idx}] > {val}) {{ s = s + 1; }} else {{ a[{idx}] = {val}; }}\n"
            )),
            _ => body.push_str(&format!(
                "for (var k = 0; k < {elems}; k = k + 1) {{ s = s + a[k] + {val}; }}\n"
            )),
        }
    }
    format!(
        "fn main() {{
            var a = malloc({elems} * 8);
            for (var i = 0; i < {elems}; i = i + 1) {{ a[i] = i; }}
            var s = 0;
            for (var l = 0; l < {loops}; l = l + 1) {{
                {body}
            }}
            print(s);
            for (var i = 0; i < {elems}; i = i + 1) {{ print(a[i]); }}
            return 0;
        }}"
    )
}

#[test]
fn hardening_preserves_random_program_behavior() {
    let mut r = Rng64::new(0xC04E_0001);
    for case in 0..48 {
        let src = random_program(&mut r);
        let image = compile(&src).expect("generated programs compile");
        let base = run_once(&image, vec![], ErrorMode::Abort, 20_000_000);
        assert_eq!(base.result, RunResult::Exited(0), "case {case}");

        for cfg in [
            HardenConfig::unoptimized(LowFatPolicy::All),
            HardenConfig::with_merge(LowFatPolicy::All),
            HardenConfig::with_redundant(LowFatPolicy::All),
            HardenConfig::minus_reads(LowFatPolicy::Disabled),
        ] {
            let hardened = harden(&image, &cfg).expect("hardens");
            let out = run_once(&hardened.image, vec![], ErrorMode::Abort, 100_000_000);
            assert_eq!(
                out.result,
                RunResult::Exited(0),
                "case {case} config {cfg:?}"
            );
            assert_eq!(
                out.io.out_ints, base.io.out_ints,
                "case {case} config {cfg:?}"
            );
            assert!(out.counters.cycles >= base.counters.cycles);
        }
    }
}

#[test]
fn out_of_bounds_index_always_detected() {
    // Any index that lands beyond the object's class must be caught
    // by the full check (write path).
    let mut r = Rng64::new(0xC04E_0002);
    for _ in 0..24 {
        let elems = r.range_u64(2, 12);
        let excess = r.range_u64(3, 40);
        let src = format!(
            "fn main() {{
                var a = malloc({elems} * 8);
                var pad = malloc({elems} * 8);
                pad[0] = 1;
                a[input()] = 7;
                return 0;
            }}"
        );
        let image = compile(&src).expect("compiles");
        let hardened = harden(&image, &HardenConfig::with_merge(LowFatPolicy::All)).unwrap();
        // Class capacity in elements (user area minus nothing; the
        // check bound is the malloc size).
        let idx = (elems + excess) as i64;
        let out = run_once(&hardened.image, vec![idx], ErrorMode::Abort, 10_000_000);
        assert!(
            matches!(out.result, RunResult::MemoryError(_)),
            "idx {} on {} elems gave {:?}",
            idx,
            elems,
            out.result
        );
        // And the in-bounds probe is clean.
        let ok = run_once(
            &hardened.image,
            vec![elems as i64 - 1],
            ErrorMode::Abort,
            10_000_000,
        );
        assert_eq!(ok.result, RunResult::Exited(0));
    }
}
