//! Property tests for the hardening pipeline: random mini-C programs
//! must behave identically before and after hardening (on inputs with
//! no memory errors), under every optimization configuration.

use proptest::prelude::*;
use redfat_core::{harden, run_once, HardenConfig, LowFatPolicy};
use redfat_emu::{ErrorMode, RunResult};
use redfat_minic::compile;

/// Generates a random but memory-safe mini-C program: fixed-size heap
/// arrays accessed through in-bounds indices only, with random
/// arithmetic and control flow.
fn random_program() -> impl Strategy<Value = String> {
    (
        2u64..12,                                   // array elems
        proptest::collection::vec((0u64..8, 0i64..50, 0u8..5), 1..12), // ops
        1u64..6,                                    // loop count
    )
        .prop_map(|(elems, ops, loops)| {
            let mut body = String::new();
            for (slot, val, kind) in ops {
                let idx = slot % elems;
                match kind {
                    0 => body.push_str(&format!("a[{idx}] = {val};\n")),
                    1 => body.push_str(&format!("a[{idx}] = a[{idx}] + {val};\n")),
                    2 => body.push_str(&format!("s = s + a[{idx}] * {val};\n")),
                    3 => body.push_str(&format!(
                        "if (a[{idx}] > {val}) {{ s = s + 1; }} else {{ a[{idx}] = {val}; }}\n"
                    )),
                    _ => body.push_str(&format!(
                        "for (var k = 0; k < {elems}; k = k + 1) {{ s = s + a[k] + {val}; }}\n"
                    )),
                }
            }
            format!(
                "fn main() {{
                    var a = malloc({elems} * 8);
                    for (var i = 0; i < {elems}; i = i + 1) {{ a[i] = i; }}
                    var s = 0;
                    for (var l = 0; l < {loops}; l = l + 1) {{
                        {body}
                    }}
                    print(s);
                    for (var i = 0; i < {elems}; i = i + 1) {{ print(a[i]); }}
                    return 0;
                }}"
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn hardening_preserves_random_program_behavior(src in random_program()) {
        let image = compile(&src).expect("generated programs compile");
        let base = run_once(&image, vec![], ErrorMode::Abort, 20_000_000);
        prop_assert_eq!(&base.result, &RunResult::Exited(0));

        for cfg in [
            HardenConfig::unoptimized(LowFatPolicy::All),
            HardenConfig::with_merge(LowFatPolicy::All),
            HardenConfig::minus_reads(LowFatPolicy::Disabled),
        ] {
            let hardened = harden(&image, &cfg).expect("hardens");
            let out = run_once(&hardened.image, vec![], ErrorMode::Abort, 100_000_000);
            prop_assert_eq!(&out.result, &RunResult::Exited(0), "config {:?}", cfg);
            prop_assert_eq!(&out.io.out_ints, &base.io.out_ints, "config {:?}", cfg);
            prop_assert!(out.counters.cycles >= base.counters.cycles);
        }
    }

    #[test]
    fn out_of_bounds_index_always_detected(
        elems in 2u64..12,
        excess in 3u64..40,
    ) {
        // Any index that lands beyond the object's class must be caught
        // by the full check (write path).
        let src = format!(
            "fn main() {{
                var a = malloc({elems} * 8);
                var pad = malloc({elems} * 8);
                pad[0] = 1;
                a[input()] = 7;
                return 0;
            }}"
        );
        let image = compile(&src).expect("compiles");
        let hardened = harden(&image, &HardenConfig::with_merge(LowFatPolicy::All)).unwrap();
        // Class capacity in elements (user area minus nothing; the
        // check bound is the malloc size).
        let idx = (elems + excess) as i64;
        let out = run_once(&hardened.image, vec![idx], ErrorMode::Abort, 10_000_000);
        prop_assert!(
            matches!(out.result, RunResult::MemoryError(_)),
            "idx {} on {} elems gave {:?}",
            idx, elems, out.result
        );
        // And the in-bounds probe is clean.
        let ok = run_once(&hardened.image, vec![elems as i64 - 1], ErrorMode::Abort, 10_000_000);
        prop_assert_eq!(ok.result, RunResult::Exited(0));
    }
}
