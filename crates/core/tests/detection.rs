//! End-to-end detection tests: build a guest binary, harden it, run it,
//! and assert that each class of memory error from the paper is (or is
//! not) detected under each policy:
//!
//! * incremental out-of-bounds → redzone hit (detected by both policies)
//! * non-incremental out-of-bounds (redzone skip) → detected only with
//!   the LowFat component (Problem #1)
//! * use-after-free → detected (merged `SIZE == 0` check)
//! * overflow into allocation padding → detected (accurate malloc-size
//!   bounds, §4.2)
//! * intentional out-of-bounds base pointer (`array - K`) → false
//!   positive with LowFat-everywhere, eliminated by the §5 allow-list
//!   workflow (Problem #2)

use redfat_core::{
    collect_allowlist, harden, instrument_profile, run_once, HardenConfig, LowFatPolicy,
};
use redfat_elf::{Image, ImageKind, SegFlags, Segment};
use redfat_emu::{syscalls, ErrorMode, MemErrKind, RunResult};
use redfat_vm::layout;
use redfat_x86::{AluOp, Asm, Mem, Reg, Width};

fn build_image(f: impl FnOnce(&mut Asm)) -> Image {
    let mut a = Asm::new(layout::CODE_BASE);
    f(&mut a);
    let p = a.finish().unwrap();
    Image {
        kind: ImageKind::Exec,
        entry: layout::CODE_BASE,
        segments: vec![Segment::new(p.base, SegFlags::RX, p.bytes)],
        symbols: vec![],
    }
}

fn sys(a: &mut Asm, nr: u64) {
    a.mov_ri(Width::W64, Reg::Rax, nr as i64);
    a.syscall();
}

fn exit0(a: &mut Asm) {
    a.mov_ri(Width::W64, Reg::Rdi, 0);
    sys(a, syscalls::EXIT);
}

/// malloc(size) -> rbx.
fn malloc_rbx(a: &mut Asm, size: i64) {
    a.mov_ri(Width::W64, Reg::Rdi, size);
    sys(a, syscalls::MALLOC);
    a.mov_rr(Width::W64, Reg::Rbx, Reg::Rax);
}

/// `array[idx] = 1` with idx read from input: the attacker-controlled
/// non-incremental store of the paper's snippet (b).
fn attacker_indexed_store(a: &mut Asm) {
    malloc_rbx(a, 40); // class 64: base..base+64, user 40 bytes
    sys(a, syscalls::READ_INT); // rax = attacker index
    a.mov_ri(Width::W64, Reg::Rcx, 1);
    a.mov_mr(Width::W64, Mem::bis(Reg::Rbx, Reg::Rax, 8, 0), Reg::Rcx);
    exit0(a);
}

fn full() -> HardenConfig {
    HardenConfig::with_merge(LowFatPolicy::All)
}

fn redzone_only() -> HardenConfig {
    HardenConfig::with_merge(LowFatPolicy::Disabled)
}

fn expect_error(img: &Image, input: Vec<i64>, cfg: &HardenConfig) -> redfat_emu::MemoryError {
    let hardened = harden(img, cfg).expect("hardens");
    let out = run_once(&hardened.image, input, ErrorMode::Abort, 1_000_000);
    match out.result {
        RunResult::MemoryError(e) => e,
        other => panic!(
            "expected memory error, got {other:?} (errors: {:?})",
            out.errors
        ),
    }
}

fn expect_clean(img: &Image, input: Vec<i64>, cfg: &HardenConfig) {
    let hardened = harden(img, cfg).expect("hardens");
    let out = run_once(&hardened.image, input, ErrorMode::Abort, 1_000_000);
    assert_eq!(out.result, RunResult::Exited(0), "errors: {:?}", out.errors);
}

#[test]
fn in_bounds_access_is_clean() {
    let img = build_image(attacker_indexed_store);
    for idx in [0i64, 1, 4] {
        expect_clean(&img, vec![idx], &full());
        expect_clean(&img, vec![idx], &redzone_only());
    }
}

#[test]
fn incremental_overflow_hits_redzone() {
    // Index 6/7 lands in bytes 48..64: past user data (40) but inside
    // the class -- that is *padding*, caught by the accurate SIZE bound.
    // The next object's redzone starts at +64 (index 8).
    let img = build_image(attacker_indexed_store);
    let e = expect_error(&img, vec![8], &full());
    assert_eq!(e.kind, MemErrKind::Bounds);
    assert!(e.is_write);
    // Redzone-only policy catches it too: the access lands in the
    // adjacent object's metadata redzone.
    let e = expect_error(&img, vec![8], &redzone_only());
    assert_eq!(e.kind, MemErrKind::Bounds);
}

#[test]
fn padding_overflow_detected() {
    // 40-byte object in a 64-byte class: bytes 40..48 of the user area
    // are padding (48 = 64 - 16 redzone). Index 5 = bytes 40..47.
    let img = build_image(attacker_indexed_store);
    let e = expect_error(&img, vec![5], &full());
    assert_eq!(e.kind, MemErrKind::Bounds);
    // Redzone-only *fallback* also checks the malloc size here (the
    // combined check shares the accurate bound), so it detects it too.
    let e = expect_error(&img, vec![5], &redzone_only());
    assert_eq!(e.kind, MemErrKind::Bounds);
}

#[test]
fn non_incremental_skip_detected_only_by_lowfat() {
    // Index 16 skips the adjacent object's redzone (bytes 64..80) and
    // lands in its *user data* (byte 128 = base+128: two objects over,
    // user area). Choose idx so target is allocated user memory of a
    // neighboring object: allocate two extra objects to make sure memory
    // there is valid and Allocated.
    let img = build_image(|a| {
        malloc_rbx(a, 40); // victim
        a.mov_rr(Width::W64, Reg::R12, Reg::Rbx);
        malloc_rbx(a, 40); // neighbor 1
        malloc_rbx(a, 40); // neighbor 2
        a.mov_rr(Width::W64, Reg::Rbx, Reg::R12);
        sys(a, syscalls::READ_INT);
        a.mov_ri(Width::W64, Reg::Rcx, 1);
        a.mov_mr(Width::W64, Mem::bis(Reg::Rbx, Reg::Rax, 8, 0), Reg::Rcx);
        exit0(a);
    });
    // Objects are 64 bytes apart; victim user data at V = base+16.
    // V + 8*idx with idx=10 → base+96 = neighbor's user data (its base
    // is base+64, user starts base+80). Skips the redzone entirely.
    let e = expect_error(&img, vec![10], &full());
    assert_eq!(e.kind, MemErrKind::Bounds);
    assert!(e.is_write);

    // Redzone-only policy MISSES it: Problem #1 of the paper.
    expect_clean(&img, vec![10], &redzone_only());
}

#[test]
fn use_after_free_detected() {
    let img = build_image(|a| {
        malloc_rbx(a, 40);
        a.mov_rr(Width::W64, Reg::Rdi, Reg::Rbx);
        sys(a, syscalls::FREE);
        // Dangling store.
        a.mov_ri(Width::W64, Reg::Rcx, 7);
        a.mov_mr(Width::W64, Mem::base(Reg::Rbx), Reg::Rcx);
        exit0(a);
    });
    let e = expect_error(&img, vec![], &full());
    // Merged representation: UAF surfaces as a bounds failure.
    assert_eq!(e.kind, MemErrKind::Bounds);
    // Redzone-only detects UAF as well (object-based metadata).
    let e = expect_error(&img, vec![], &redzone_only());
    assert_eq!(e.kind, MemErrKind::Bounds);
}

#[test]
fn underflow_detected() {
    // array[-1]: reads the metadata redzone.
    let img = build_image(|a| {
        malloc_rbx(a, 40);
        a.mov_rm(Width::W64, Reg::Rcx, Mem::base_disp(Reg::Rbx, -8));
        exit0(a);
    });
    let e = expect_error(&img, vec![], &full());
    assert_eq!(e.kind, MemErrKind::Bounds);
    assert!(!e.is_write);
}

#[test]
fn reads_uninstrumented_in_writes_only_mode() {
    let img = build_image(|a| {
        malloc_rbx(a, 40);
        // OOB *read* (underflow).
        a.mov_rm(Width::W64, Reg::Rcx, Mem::base_disp(Reg::Rbx, -8));
        exit0(a);
    });
    // -reads: the read goes unchecked (the documented trade-off).
    expect_clean(&img, vec![], &HardenConfig::minus_reads(LowFatPolicy::All));
    // ...but a write at the same spot is still caught.
    let img_w = build_image(|a| {
        malloc_rbx(a, 40);
        a.mov_ri(Width::W64, Reg::Rcx, 1);
        a.mov_mr(Width::W64, Mem::base_disp(Reg::Rbx, -8), Reg::Rcx);
        exit0(a);
    });
    let e = expect_error(
        &img_w,
        vec![],
        &HardenConfig::minus_reads(LowFatPolicy::All),
    );
    assert!(e.is_write);
}

#[test]
fn all_optimization_levels_detect_the_same_bug() {
    let img = build_image(attacker_indexed_store);
    for cfg in [
        HardenConfig::unoptimized(LowFatPolicy::All),
        HardenConfig::with_elim(LowFatPolicy::All),
        HardenConfig::with_batch(LowFatPolicy::All),
        HardenConfig::with_merge(LowFatPolicy::All),
        HardenConfig::minus_size(LowFatPolicy::All),
        HardenConfig::minus_reads(LowFatPolicy::All),
    ] {
        let e = expect_error(&img, vec![100], &cfg);
        assert_eq!(e.kind, MemErrKind::Bounds, "config {cfg:?}");
        expect_clean(&img, vec![2], &cfg);
    }
}

/// The paper's snippet (c): `array -= K; array[i] = val` with always
/// in-bounds `i`. Intentional out-of-bounds base pointer.
fn anti_idiom_program(a: &mut Asm) {
    malloc_rbx(a, 64);
    // array -= 256 (K = 32 elements of 8 bytes).
    a.alu_ri(AluOp::Sub, Width::W64, Reg::Rbx, 256);
    sys(a, syscalls::READ_INT); // i, always >= 32 in valid inputs
    a.mov_ri(Width::W64, Reg::Rcx, 9);
    a.mov_mr(Width::W64, Mem::bis(Reg::Rbx, Reg::Rax, 8, 0), Reg::Rcx);
    exit0(a);
}

#[test]
fn intentional_oob_base_is_a_false_positive_under_lowfat_all() {
    let img = build_image(anti_idiom_program);
    // i = 33 → accesses array base + 8 (in bounds of the real object).
    // Redzone-only: no error (correct).
    expect_clean(&img, vec![33], &redzone_only());
    // LowFat-everywhere: FALSE POSITIVE (paper Problem #2).
    let e = expect_error(&img, vec![33], &full());
    assert_eq!(e.kind, MemErrKind::Bounds);
}

#[test]
fn profile_workflow_eliminates_false_positive() {
    let img = build_image(anti_idiom_program);

    // Phase 1: profile against a training input.
    let prof = instrument_profile(&img).expect("profiles");
    let out = run_once(&prof.image, vec![34], ErrorMode::Log, 1_000_000);
    assert_eq!(out.result, RunResult::Exited(0));
    assert!(!out.profile.is_empty(), "profiling recorded events");
    let allow = collect_allowlist(&out.profile);

    // The anti-idiom store must have failed its LowFat check in
    // profiling, so at least one observed site is NOT allow-listed.
    let observed = out.profile.len();
    assert!(allow.len() < observed, "anti-idiom site excluded");

    // Phase 2: production hardening with the allow-list has no false
    // positive on fresh inputs.
    let cfg = HardenConfig::with_merge(LowFatPolicy::AllowList(allow));
    expect_clean(&img, vec![39], &cfg);
    expect_clean(&img, vec![33], &cfg);
}

#[test]
fn profile_workflow_still_detects_real_bugs() {
    // A program with both the anti-idiom AND an attacker-controlled
    // non-incremental bug on a different instruction.
    let img = build_image(|a| {
        // Anti-idiom part (benign).
        malloc_rbx(a, 64);
        a.mov_rr(Width::W64, Reg::R12, Reg::Rbx);
        a.alu_ri(AluOp::Sub, Width::W64, Reg::Rbx, 256);
        a.mov_ri(Width::W64, Reg::Rcx, 9);
        a.mov_ri(Width::W64, Reg::Rax, 32);
        a.mov_mr(Width::W64, Mem::bis(Reg::Rbx, Reg::Rax, 8, 0), Reg::Rcx);
        // Vulnerable part: attacker index into a fresh object.
        malloc_rbx(a, 40);
        malloc_rbx(a, 40);
        a.mov_rr(Width::W64, Reg::Rbx, Reg::Rax);
        sys(a, syscalls::READ_INT);
        a.mov_ri(Width::W64, Reg::Rcx, 1);
        a.mov_mr(Width::W64, Mem::bis(Reg::Rbx, Reg::Rax, 8, 0), Reg::Rcx);
        exit0(a);
    });

    // Train with a benign input.
    let prof = instrument_profile(&img).expect("profiles");
    let out = run_once(&prof.image, vec![1], ErrorMode::Log, 1_000_000);
    assert_eq!(out.result, RunResult::Exited(0));
    let allow = collect_allowlist(&out.profile);
    let cfg = HardenConfig::with_merge(LowFatPolicy::AllowList(allow));

    // Benign input stays clean; attack input is detected (the vulnerable
    // site always passed in training, so it kept the full check).
    expect_clean(&img, vec![2], &cfg);
    let e = expect_error(&img, vec![50], &cfg);
    assert_eq!(e.kind, MemErrKind::Bounds);
}

#[test]
fn log_mode_reports_and_continues() {
    let img = build_image(attacker_indexed_store);
    let hardened = harden(&img, &full()).unwrap();
    let out = run_once(&hardened.image, vec![5], ErrorMode::Log, 1_000_000);
    // Padding index: access proceeds after logging (padding is mapped).
    assert_eq!(out.result, RunResult::Exited(0));
    assert_eq!(out.errors.len(), 1);
}

#[test]
fn hardening_without_runtime_tables_is_inert() {
    // Running a hardened binary without installing the runtime is the
    // analogue of forgetting LD_PRELOAD: checks read zeroed tables and
    // pass everything.
    let img = build_image(attacker_indexed_store);
    let hardened = harden(&img, &full()).unwrap();
    // Manually construct an emulator whose runtime skips `install`.
    struct NoTables(redfat_emu::HostRuntime);
    impl redfat_emu::Runtime for NoTables {
        fn on_load(&mut self, vm: &mut redfat_vm::Vm) {
            // Map the runtime page zeroed, but skip table installation.
            vm.map(
                layout::RUNTIME_BASE,
                layout::SCRATCH_BASE + layout::SCRATCH_SIZE - layout::RUNTIME_BASE,
                redfat_vm::Prot::RW,
                "zeroed-runtime",
            );
        }
        fn syscall(
            &mut self,
            cpu: &mut redfat_emu::Cpu,
            vm: &mut redfat_vm::Vm,
        ) -> redfat_emu::SyscallOutcome {
            self.0.syscall(cpu, vm)
        }
    }
    // NOTE: the heap wrapper still works (malloc goes through the host
    // runtime), but base()/size() lookups in *generated code* see zeroes.
    let runtime = NoTables(redfat_emu::HostRuntime::new(ErrorMode::Abort).with_input(vec![5]));
    let mut emu = redfat_emu::Emu::load_image(&hardened.image, runtime).expect("loads");
    let r = emu.run(1_000_000);
    assert_eq!(r, RunResult::Exited(0), "checks are inert without tables");
}

#[test]
fn stats_reflect_policy() {
    let img = build_image(attacker_indexed_store);
    let all = harden(&img, &full()).unwrap();
    assert!(all.stats.sites_lowfat > 0);
    assert_eq!(all.stats.sites_redzone, 0);
    let rz = harden(&img, &redzone_only()).unwrap();
    assert_eq!(rz.stats.sites_lowfat, 0);
    assert!(rz.stats.sites_redzone > 0);
    assert_eq!(
        all.stats.sites_lowfat + all.stats.sites_eliminated,
        all.stats.sites_considered
    );
}
