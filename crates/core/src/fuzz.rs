//! Coverage-guided profiling (paper §5): "automated coverage-guided
//! testing tools, such as the American Fuzzy Lop (AFL) over binaries,
//! can be used to boost coverage" of the allow-list generation phase.
//!
//! This is a miniature E9AFL analogue: the profiling binary's
//! per-site events double as the coverage signal. Inputs that reach new
//! sites are kept as seeds and mutated further; the accumulated profile
//! across all executions feeds [`crate::collect_allowlist`].

use crate::pipeline::{instrument_profile, HardenError};
use crate::runner::run_once;
use redfat_elf::Image;
use redfat_emu::{ErrorMode, ProfileStats, RunResult};
use std::collections::HashMap;

/// Configuration for the profiling fuzzer.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Total executions to spend.
    pub iterations: usize,
    /// Step budget per execution.
    pub max_steps: u64,
    /// Deterministic RNG seed.
    pub seed: u64,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            iterations: 64,
            max_steps: 50_000_000,
            seed: 0xAF1,
        }
    }
}

/// Outcome of a fuzzing campaign.
pub struct FuzzOutcome {
    /// Merged per-site profile across all executions.
    pub profile: HashMap<u64, ProfileStats>,
    /// Inputs that discovered new coverage (the seed corpus).
    pub corpus: Vec<Vec<i64>>,
    /// Executions performed.
    pub executions: usize,
}

/// A tiny deterministic xorshift RNG (no external dependency needed in
/// this crate for reproducible mutation).
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// Mutates an input vector AFL-style: flip/replace/insert/remove/
/// perturb values.
fn mutate(rng: &mut XorShift, input: &[i64]) -> Vec<i64> {
    let mut out = input.to_vec();
    match rng.below(5) {
        0 if !out.is_empty() => {
            // Small perturbation.
            let i = rng.below(out.len());
            out[i] = out[i].wrapping_add(rng.next() as i64 % 17 - 8);
        }
        1 if !out.is_empty() => {
            // Interesting-value replacement.
            const INTERESTING: [i64; 8] = [0, 1, -1, 2, 16, 64, 255, 4096];
            let i = rng.below(out.len());
            out[i] = INTERESTING[rng.below(INTERESTING.len())];
        }
        2 => out.push(rng.next() as i64 % 128),
        3 if out.len() > 1 => {
            let i = rng.below(out.len());
            out.remove(i);
        }
        _ if !out.is_empty() => {
            // Random replacement.
            let i = rng.below(out.len());
            out[i] = (rng.next() % 256) as i64;
        }
        _ => out.push(0),
    }
    out
}

/// Runs a coverage-guided profiling campaign over `image`, starting from
/// `seeds`, and returns the merged profile.
///
/// Crashing or non-exiting inputs contribute whatever profile events they
/// produced before dying (AFL keeps their coverage too), but are not
/// added to the corpus.
pub fn fuzz_profile(
    image: &Image,
    seeds: &[Vec<i64>],
    config: &FuzzConfig,
) -> Result<FuzzOutcome, HardenError> {
    let prof = instrument_profile(image)?;
    let mut rng = XorShift(config.seed | 1);
    let mut profile: HashMap<u64, ProfileStats> = HashMap::new();
    let mut corpus: Vec<Vec<i64>> = seeds.to_vec();
    if corpus.is_empty() {
        corpus.push(Vec::new());
    }
    let mut executions = 0usize;

    let run_and_merge =
        |input: &Vec<i64>, profile: &mut HashMap<u64, ProfileStats>| -> (bool, usize) {
            let out = run_once(&prof.image, input.clone(), ErrorMode::Log, config.max_steps);
            let mut new_sites = 0usize;
            for (site, stats) in out.profile {
                let e = profile.entry(site).or_insert_with(|| {
                    new_sites += 1;
                    ProfileStats::default()
                });
                e.passes += stats.passes;
                e.fails += stats.fails;
            }
            (matches!(out.result, RunResult::Exited(_)), new_sites)
        };

    // Seed pass.
    for seed in corpus.clone() {
        run_and_merge(&seed, &mut profile);
        executions += 1;
    }

    // Mutation loop.
    while executions < config.iterations {
        let parent = corpus[rng.below(corpus.len())].clone();
        let child = mutate(&mut rng, &parent);
        let (exited, new_sites) = run_and_merge(&child, &mut profile);
        executions += 1;
        if exited && new_sites > 0 {
            corpus.push(child);
        }
    }

    Ok(FuzzOutcome {
        profile,
        corpus,
        executions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::collect_allowlist;

    /// A program whose second mode only runs for inputs the initial seed
    /// does not contain -- the situation AFL-boosted profiling fixes.
    const GATED: &str = "
fn cold(a) {
    var s = 0;
    for (var i = 0; i < 8; i = i + 1) { s = s + a[i]; }
    return s;
}
fn main() {
    var a = malloc(8 * 8);
    for (var i = 0; i < 8; i = i + 1) { a[i] = i; }
    var v = input();
    var s = a[v & 7];
    if (v == 64) { s = s + cold(a); }
    print(s);
    return 0;
}";

    #[test]
    fn fuzzing_extends_coverage_beyond_seed() {
        let image = redfat_minic::compile(GATED).unwrap();

        // Single-seed profiling misses the gated path.
        let single = fuzz_profile(
            &image,
            &[vec![3]],
            &FuzzConfig {
                iterations: 1,
                ..FuzzConfig::default()
            },
        )
        .unwrap();
        let base_sites = single.profile.len();

        // The campaign discovers v == 64 via interesting-value mutation.
        let fuzzed = fuzz_profile(
            &image,
            &[vec![3]],
            &FuzzConfig {
                iterations: 300,
                ..FuzzConfig::default()
            },
        )
        .unwrap();
        assert!(
            fuzzed.profile.len() > base_sites,
            "fuzzing found no new sites ({base_sites})"
        );
        assert!(fuzzed.corpus.len() > 1, "corpus grew");

        // The resulting allow-list covers the cold function's accesses.
        let allow = collect_allowlist(&fuzzed.profile);
        assert!(allow.len() > collect_allowlist(&single.profile).len());
    }

    #[test]
    fn fuzzing_is_deterministic() {
        let image = redfat_minic::compile(GATED).unwrap();
        let cfg = FuzzConfig {
            iterations: 50,
            ..FuzzConfig::default()
        };
        let a = fuzz_profile(&image, &[vec![1]], &cfg).unwrap();
        let b = fuzz_profile(&image, &[vec![1]], &cfg).unwrap();
        assert_eq!(a.executions, b.executions);
        assert_eq!(a.corpus, b.corpus);
        // Full per-site counter equality, not just the site count: the
        // same seed must reproduce the identical merged profile.
        assert_eq!(a.profile, b.profile);
        assert_eq!(collect_allowlist(&a.profile), collect_allowlist(&b.profile));
    }

    #[test]
    fn fuzzed_allowlist_is_subset_of_exhaustive() {
        // GATED's behavior depends only on (v & 7, v == 64), so a sweep
        // of 0..=64 exercises every reachable site; a fuzzing campaign
        // can only visit a subset of those behaviors and must therefore
        // produce a subset allow-list (never allow a site the exhaustive
        // profile would withhold).
        let image = redfat_minic::compile(GATED).unwrap();
        let prof = instrument_profile(&image).unwrap();
        let mut exhaustive: HashMap<u64, ProfileStats> = HashMap::new();
        for v in 0..=64 {
            let out = run_once(&prof.image, vec![v], ErrorMode::Log, 50_000_000);
            assert!(matches!(out.result, RunResult::Exited(_)));
            for (site, stats) in out.profile {
                let e = exhaustive.entry(site).or_default();
                e.passes += stats.passes;
                e.fails += stats.fails;
            }
        }
        let exhaustive_allow = collect_allowlist(&exhaustive);

        let fuzzed = fuzz_profile(&image, &[vec![3]], &FuzzConfig::default()).unwrap();
        let fuzz_allow = collect_allowlist(&fuzzed.profile);
        assert!(!fuzz_allow.is_empty(), "campaign reached some sites");
        for site in fuzz_allow.iter() {
            assert!(
                exhaustive_allow.contains(site),
                "fuzzed allow-list site {site:#x} missing from exhaustive profile"
            );
        }
    }
}
