//! Machine-code synthesis of the Figure 4 check.
//!
//! Each batch (paper §6) becomes one trampoline payload:
//!
//! ```text
//!   prologue   push live scratch registers; pushfq if flags live
//!   check_1    BASE/metadata/bounds tests → ja .err_1
//!   ...
//!   check_n
//!   jmp .epilogue
//!   .err_k:    push rdi/rsi; report via MEMORY_ERROR syscall; pop;
//!              jmp .after_k          (log mode continues checking)
//!   .epilogue: popfq; pop scratch
//!   (falls through to the displaced original instructions)
//! ```
//!
//! The check body implements the *merged* variant of §4.2: state and size
//! share one metadata word (`SIZE == 0` ⇒ free), the use-after-free test
//! folds into the bounds test, and the lower-bound test folds into the
//! upper-bound test via unsigned underflow of `LB - (BASE+16)`.
//!
//! Register discipline: `rax`/`rdx` are forced scratch (the `mul`
//! computing `ptr / class_size` needs them); three more scratch registers
//! are chosen from [`CHECK_SCRATCH_CANDIDATES`] avoiding every operand
//! register of the batch. Live scratch registers are saved on the guest
//! stack; when `rax`/`rdx` are themselves operand registers of a later
//! check in the batch, their original values are reloaded from their
//! stack slots.

use redfat_analysis::MergedCheck;
use redfat_emu::syscalls;
use redfat_vm::layout;
use redfat_x86::{AluOp, Asm, AsmError, Cond, Label, Mem, Reg, ShiftOp, Width};

/// Registers eligible as chosen scratch (beyond the forced `rax`/`rdx`).
pub const CHECK_SCRATCH_CANDIDATES: [Reg; 7] = [
    Reg::Rcx,
    Reg::Rsi,
    Reg::Rdi,
    Reg::R8,
    Reg::R9,
    Reg::R10,
    Reg::R11,
];

/// One check to synthesize, with its policy decision.
#[derive(Debug, Clone)]
pub(crate) struct CheckSpec {
    /// The merged operand/range.
    pub check: MergedCheck,
    /// `true` for the full (Redzone)+(LowFat) check; `false` for the
    /// (Redzone)-only fallback (base computed from `LB`, never from the
    /// base register).
    pub lowfat: bool,
}

/// What the payload does on a failed check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PayloadMode {
    /// Report via the `MEMORY_ERROR` syscall (abort or log is the
    /// runtime's decision).
    Harden,
    /// Record pass/fail via the `PROFILE_EVENT` syscall (§5 profiling
    /// phase). Requires singleton batches.
    Profile,
}

/// Everything needed to emit one batch's payload.
#[derive(Debug, Clone)]
pub(crate) struct BatchPayload {
    pub checks: Vec<CheckSpec>,
    /// Scratch registers saved in the prologue (live ones only), in push
    /// order.
    pub saves: Vec<Reg>,
    /// Scratch registers the payload may modify *without* restoring
    /// (they were dead at the anchor). The differential oracle uses this
    /// to attribute post-payload register divergence to liveness.
    pub clobbers: Vec<Reg>,
    /// Chosen scratch (lb, cls, siz) -- disjoint from all operand regs.
    pub scratch: (Reg, Reg, Reg),
    /// Save/restore flags around the checks.
    pub save_flags: bool,
    /// Metadata hardening on/off (`-size`).
    pub size_harden: bool,
    /// Pure-lowfat ablation: class-size bounds only (see
    /// [`crate::HardenConfig::lowfat_only`]).
    pub lowfat_only: bool,
    pub mode: PayloadMode,
}

impl BatchPayload {
    /// Chooses scratch registers and the save set for a batch.
    ///
    /// `dead` lists registers known dead at the anchor (skippable saves);
    /// `flags_dead` likewise for the flags.
    #[allow(clippy::too_many_arguments)]
    pub fn plan(
        checks: Vec<CheckSpec>,
        dead: &[Reg],
        flags_dead: bool,
        size_harden: bool,
        lowfat_only: bool,
        mode: PayloadMode,
    ) -> Option<BatchPayload> {
        let mut operand_regs = 0u16;
        for c in &checks {
            for r in c.check.mem.regs() {
                operand_regs |= 1 << r.code();
            }
        }
        let free: Vec<Reg> = CHECK_SCRATCH_CANDIDATES
            .iter()
            .copied()
            .filter(|r| operand_regs & (1 << r.code()) == 0)
            .collect();
        if free.len() < 3 {
            return None; // caller splits the batch
        }
        let scratch = (free[0], free[1], free[2]);

        let mut save_set: Vec<Reg> = vec![Reg::Rax, Reg::Rdx, free[0], free[1], free[2]];
        if mode == PayloadMode::Profile {
            for r in [Reg::Rdi, Reg::Rsi] {
                if !save_set.contains(&r) {
                    save_set.push(r);
                }
            }
        }
        let (saves, clobbers): (Vec<Reg>, Vec<Reg>) =
            save_set.into_iter().partition(|r| !dead.contains(r));

        Some(BatchPayload {
            checks,
            saves,
            clobbers,
            scratch,
            save_flags: !flags_dead,
            size_harden,
            lowfat_only,
            mode,
        })
    }

    /// Stack offset (from `rsp` during the check body) of a saved
    /// register's slot.
    fn slot_of(&self, reg: Reg) -> Option<i64> {
        let idx = self.saves.iter().position(|&r| r == reg)?;
        let after = (self.saves.len() - 1 - idx) as i64;
        let flags = if self.save_flags { 1 } else { 0 };
        Some((after + flags) * 8)
    }

    /// Emits the payload into the trampoline assembler.
    pub fn emit(&self, a: &mut Asm) -> Result<(), AsmError> {
        let (lb, cls, siz) = self.scratch;

        for &r in &self.saves {
            a.push_r(r);
        }
        if self.save_flags {
            a.pushfq();
        }

        // Deferred error/report stubs: (label, resume, site, kind_bits).
        let mut stubs: Vec<(Label, Label, u64, u64)> = Vec::new();

        for (k, spec) in self.checks.iter().enumerate() {
            self.emit_one(a, spec, k > 0, (lb, cls, siz), &mut stubs)?;
        }

        let epilogue = a.label();
        if !stubs.is_empty() {
            a.jmp_label(epilogue);
        }
        for (label, resume, site, kind_bits) in stubs {
            a.bind(label)?;
            match self.mode {
                PayloadMode::Harden => {
                    // Report and (in log mode) continue: preserve rdi/rsi
                    // around the syscall; rax is scratch.
                    a.push_r(Reg::Rdi);
                    a.push_r(Reg::Rsi);
                    a.mov_ri(Width::W64, Reg::Rdi, site as i64);
                    a.mov_ri(Width::W64, Reg::Rsi, kind_bits as i64);
                    a.mov_ri(Width::W64, Reg::Rax, syscalls::MEMORY_ERROR as i64);
                    a.syscall();
                    a.pop_r(Reg::Rsi);
                    a.pop_r(Reg::Rdi);
                    a.jmp_label(resume);
                }
                PayloadMode::Profile => {
                    // rdi/rsi are in the save set for profile mode. A
                    // stub always records a *fail* event (rsi = 0).
                    let _ = kind_bits;
                    a.mov_ri(Width::W64, Reg::Rdi, site as i64);
                    a.mov_ri(Width::W64, Reg::Rsi, 0);
                    a.mov_ri(Width::W64, Reg::Rax, syscalls::PROFILE_EVENT as i64);
                    a.syscall();
                    a.jmp_label(resume);
                }
            }
        }
        a.bind(epilogue)?;

        if self.save_flags {
            a.popfq();
        }
        for &r in self.saves.iter().rev() {
            a.pop_r(r);
        }
        Ok(())
    }

    /// Emits one (merged) check.
    #[allow(clippy::too_many_arguments)]
    fn emit_one(
        &self,
        a: &mut Asm,
        spec: &CheckSpec,
        may_be_clobbered: bool,
        (lb, cls, siz): (Reg, Reg, Reg),
        stubs: &mut Vec<(Label, Label, u64, u64)>,
    ) -> Result<(), AsmError> {
        let mem = spec.check.mem;
        let site = spec.check.sites[0];
        let w_bit = spec.check.is_write as u64;
        let len = spec.check.len as i64;

        // If a previous check clobbered rax/rdx and this operand uses
        // them, reload the original values from their stack slots.
        if may_be_clobbered {
            for r in [Reg::Rax, Reg::Rdx] {
                if mem.regs().any(|or| or == r) {
                    // Safety of the expect: `slot_of` covers every
                    // register the batch planner marked live, and a
                    // register appearing in a check operand is live by
                    // construction; a miss here is a planner bug that
                    // must not silently emit an unreloaded operand.
                    #[allow(clippy::expect_used)]
                    let slot = self
                        .slot_of(r)
                        .expect("operand register is live, hence saved");
                    a.mov_rm(Width::W64, r, Mem::base_disp(Reg::Rsp, slot));
                }
            }
        }

        let try_lb = a.label();
        let have_base = a.label();
        let done = a.label();
        let err_meta = a.label();
        let err_bounds = a.label();
        let after = a.label(); // resume point for log-mode continuation

        // LB = effective address (uses original operand registers; must
        // be first, before any scratch writes could alias... scratch is
        // disjoint from operand regs by construction, and rax/rdx were
        // reloaded above).
        a.lea(lb, mem);

        // ---- (LowFat) path: BASE from the operand's base register ----
        let ptr_reg = if spec.lowfat { mem.base } else { None };
        if let Some(ptr) = ptr_reg {
            a.mov_rr(Width::W64, cls, ptr);
            a.shift_ri(
                ShiftOp::Shr,
                Width::W64,
                cls,
                layout::REGION_SIZE_LOG2 as u8,
            );
            a.alu_ri(AluOp::Cmp, Width::W64, cls, layout::TABLE_ENTRIES as i64);
            a.jcc_label(Cond::Ae, try_lb);
            a.mov_rm(
                Width::W64,
                siz,
                Mem::index_scale(cls, 8, layout::SIZES_TABLE as i64),
            );
            if ptr != Reg::Rax {
                a.mov_rr(Width::W64, Reg::Rax, ptr);
            }
            a.mul_m(Mem::index_scale(cls, 8, layout::MAGICS_TABLE as i64));
            a.mov_rr(Width::W64, Reg::Rax, Reg::Rdx);
            a.imul_rr(Width::W64, Reg::Rax, siz);
            a.test_rr(Width::W64, Reg::Rax, Reg::Rax);
            a.jcc_label(Cond::Ne, have_base);
        }

        // ---- (Redzone) fallback: BASE from LB ----
        a.bind(try_lb)?;
        if self.lowfat_only {
            // Pure-lowfat ablation: no redzone fallback; non-fat base
            // register means no check at all (paper §2.1).
            a.jmp_label(done);
            a.bind(have_base)?;
            // Class-size bounds only: (u32)(LB - BASE) + len <= size(BASE).
            a.mov_rr(Width::W64, Reg::Rdx, lb);
            a.alu_rr(AluOp::Sub, Width::W64, Reg::Rdx, Reg::Rax);
            a.mov_rr(Width::W32, Reg::Rdx, Reg::Rdx);
            a.alu_ri(AluOp::Add, Width::W64, Reg::Rdx, len);
            a.alu_rr(AluOp::Cmp, Width::W64, Reg::Rdx, siz);
            a.jcc_label(Cond::A, err_bounds);
            stubs.push((err_bounds, after, site, w_bit));
            a.bind(done)?;
            a.bind(err_meta)?; // unused in this variant
            if self.mode == PayloadMode::Profile {
                a.mov_ri(Width::W64, Reg::Rdi, site as i64);
                a.mov_ri(Width::W64, Reg::Rsi, 1);
                a.mov_ri(Width::W64, Reg::Rax, syscalls::PROFILE_EVENT as i64);
                a.syscall();
            }
            a.bind(after)?;
            return Ok(());
        }
        a.mov_rr(Width::W64, cls, lb);
        a.shift_ri(
            ShiftOp::Shr,
            Width::W64,
            cls,
            layout::REGION_SIZE_LOG2 as u8,
        );
        a.alu_ri(AluOp::Cmp, Width::W64, cls, layout::TABLE_ENTRIES as i64);
        a.jcc_label(Cond::Ae, done);
        a.mov_rm(
            Width::W64,
            siz,
            Mem::index_scale(cls, 8, layout::SIZES_TABLE as i64),
        );
        a.mov_rr(Width::W64, Reg::Rax, lb);
        a.mul_m(Mem::index_scale(cls, 8, layout::MAGICS_TABLE as i64));
        a.mov_rr(Width::W64, Reg::Rax, Reg::Rdx);
        a.imul_rr(Width::W64, Reg::Rax, siz);
        a.test_rr(Width::W64, Reg::Rax, Reg::Rax);
        a.jcc_label(Cond::E, done);

        a.bind(have_base)?;
        // ---- metadata: cls := SIZE (merged state/size; 0 = free) ----
        a.mov_rm(Width::W64, cls, Mem::base(Reg::Rax));
        if self.size_harden {
            // SIZE must fit the allocation class: SIZE <= size(BASE)-16.
            a.lea(Reg::Rdx, Mem::base_disp(siz, -(layout::REDZONE as i64)));
            a.alu_rr(AluOp::Cmp, Width::W64, cls, Reg::Rdx);
            a.jcc_label(Cond::A, err_meta);
            stubs.push((err_meta, after, site, (1 << 1) | w_bit));
        }

        // ---- merged bounds check (§4.2) ----
        // rdx = (u32)(LB - (BASE+16)) + len, compared against SIZE. The
        // 32-bit truncation is the paper's underflow trick: a lower-bound
        // violation leaves a huge 32-bit value that the upper-bound
        // compare rejects, merging both bounds (and the UaF check, since
        // SIZE == 0 fails everything) into one branch. Like the paper's,
        // the truncation leaves a blind spot at offsets that are exact
        // multiples of 2^32 -- irrelevant for adjacent-object attacks.
        a.mov_rr(Width::W64, Reg::Rdx, lb);
        a.alu_rr(AluOp::Sub, Width::W64, Reg::Rdx, Reg::Rax);
        a.alu_ri(AluOp::Sub, Width::W64, Reg::Rdx, layout::REDZONE as i64);
        a.mov_rr(Width::W32, Reg::Rdx, Reg::Rdx); // zero-extending truncate
        a.alu_ri(AluOp::Add, Width::W64, Reg::Rdx, len);
        a.alu_rr(AluOp::Cmp, Width::W64, Reg::Rdx, cls);
        a.jcc_label(Cond::A, err_bounds);
        stubs.push((err_bounds, after, site, w_bit));

        a.bind(done)?;
        if self.mode == PayloadMode::Profile {
            // Passing (or non-fat) execution records a pass event.
            a.mov_ri(Width::W64, Reg::Rdi, site as i64);
            a.mov_ri(Width::W64, Reg::Rsi, 1);
            a.mov_ri(Width::W64, Reg::Rax, syscalls::PROFILE_EVENT as i64);
            a.syscall();
        }
        a.bind(after)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(mem: Mem, len: u64, is_write: bool, lowfat: bool) -> CheckSpec {
        CheckSpec {
            check: MergedCheck {
                mem,
                len,
                is_write,
                sites: vec![0x40_1000],
            },
            lowfat,
        }
    }

    #[test]
    fn scratch_avoids_operand_regs() {
        let p = BatchPayload::plan(
            vec![spec(Mem::bis(Reg::Rcx, Reg::Rsi, 8, 0), 8, true, true)],
            &[],
            false,
            true,
            false,
            PayloadMode::Harden,
        )
        .unwrap();
        let (a, b, c) = p.scratch;
        for r in [a, b, c] {
            assert_ne!(r, Reg::Rcx);
            assert_ne!(r, Reg::Rsi);
        }
    }

    #[test]
    fn dead_regs_skip_saves() {
        let all_dead: Vec<Reg> = (0..16).map(Reg::from_code).collect();
        let p = BatchPayload::plan(
            vec![spec(Mem::base(Reg::Rbx), 8, true, true)],
            &all_dead,
            true,
            true,
            false,
            PayloadMode::Harden,
        )
        .unwrap();
        assert!(p.saves.is_empty());
        assert!(!p.save_flags);
        // Everything skipped as dead is reported as a potential clobber.
        assert!(p.clobbers.contains(&Reg::Rax));
        assert!(p.clobbers.contains(&Reg::Rdx));
        assert_eq!(p.saves.len() + p.clobbers.len(), 5);
    }

    #[test]
    fn saves_and_clobbers_partition_the_save_set() {
        let p = BatchPayload::plan(
            vec![spec(Mem::base(Reg::Rbx), 8, true, true)],
            &[Reg::Rax, Reg::R10],
            false,
            true,
            false,
            PayloadMode::Harden,
        )
        .unwrap();
        for r in &p.clobbers {
            assert!(!p.saves.contains(r), "{r:?} both saved and clobbered");
        }
        assert!(p.clobbers.contains(&Reg::Rax));
        assert!(!p.saves.contains(&Reg::Rax));
        assert!(p.saves.contains(&Reg::Rdx));
    }

    #[test]
    fn payload_assembles() {
        let p = BatchPayload::plan(
            vec![
                spec(Mem::base(Reg::Rbx), 8, true, true),
                spec(Mem::bis(Reg::Rax, Reg::Rdx, 4, 16), 4, false, false),
            ],
            &[],
            false,
            true,
            false,
            PayloadMode::Harden,
        )
        .unwrap();
        let mut a = Asm::new(redfat_vm::layout::TRAMPOLINE_BASE);
        p.emit(&mut a).unwrap();
        let prog = a.finish().unwrap();
        assert!(prog.bytes.len() > 40, "non-trivial check code emitted");
        // The whole payload must decode cleanly.
        let insts = redfat_x86::decode_all(&prog.bytes, prog.base);
        let total: usize = insts.iter().map(|(_, _, l)| *l as usize).sum();
        assert_eq!(total, prog.bytes.len(), "payload decodes completely");
    }

    #[test]
    fn slot_offsets_match_push_order() {
        let p = BatchPayload::plan(
            vec![spec(Mem::base_disp(Reg::Rax, 8), 8, true, true)],
            &[],
            false, // flags live: extra slot below saves
            true,
            false,
            PayloadMode::Harden,
        )
        .unwrap();
        // saves = [rax, rdx, ...]; with flags push the last-pushed slot
        // (flags) is at 0, the first-pushed (rax) deepest.
        let n = p.saves.len() as i64;
        assert_eq!(p.slot_of(Reg::Rax), Some((n - 1 + 1) * 8));
        assert_eq!(p.slot_of(p.saves[p.saves.len() - 1]), Some(8));
    }
}
