//! Convenience runner used by tests, examples and the experiment
//! harness.

use redfat_elf::Image;
use redfat_emu::{
    Counters, Emu, ErrorMode, ExecBackend, GuestIo, HostRuntime, LoadError, MemoryError,
    ProfileStats, RunResult, TraceStats,
};
use std::collections::HashMap;

/// Everything a single guest run produced.
#[derive(Debug)]
pub struct RunOutcome {
    /// How the run ended.
    pub result: RunResult,
    /// Instruction/cycle counters (the performance metric).
    pub counters: Counters,
    /// Guest I/O streams.
    pub io: GuestIo,
    /// Memory errors reported by instrumentation.
    pub errors: Vec<MemoryError>,
    /// Per-site profiling counters (profiling binaries only).
    pub profile: HashMap<u64, ProfileStats>,
    /// Translation-cache counters (all zero under the step backend).
    pub trace_stats: TraceStats,
}

impl RunOutcome {
    /// `true` if the run exited cleanly with status 0.
    pub fn ok(&self) -> bool {
        matches!(self.result, RunResult::Exited(0))
    }
}

/// Loads `image`, runs it with the given input under the standard
/// RedFat runtime, and collects the outcome.
///
/// `mode` selects abort-on-error (hardening) or log-and-continue
/// (bug finding / profiling).
pub fn run_once(image: &Image, input: Vec<i64>, mode: ErrorMode, max_steps: u64) -> RunOutcome {
    // Safety of the expect: `run_once` is the documented panic-on-
    // malformed-image convenience for tests and experiments; services
    // and fault-tolerant callers use `try_run_once`.
    #[allow(clippy::expect_used)]
    try_run_once(image, input, mode, max_steps).expect("image loads")
}

/// [`run_once`] for images that may not load: a malformed image yields
/// the loader's structured error instead of a panic.
pub fn try_run_once(
    image: &Image,
    input: Vec<i64>,
    mode: ErrorMode,
    max_steps: u64,
) -> Result<RunOutcome, LoadError> {
    try_run_backend(image, input, mode, ExecBackend::Step, max_steps)
}

/// [`try_run_once`] on an explicit execution backend: `step` (the
/// reference interpreter), `superblock`, or the trace-linked tier.
/// Counters, I/O, and reported errors are backend-independent (the
/// translated tiers are audited against `step` by the selftest
/// lockstep oracle); only wall-clock time and [`RunOutcome::trace_stats`]
/// differ.
pub fn try_run_backend(
    image: &Image,
    input: Vec<i64>,
    mode: ErrorMode,
    backend: ExecBackend,
    max_steps: u64,
) -> Result<RunOutcome, LoadError> {
    try_run_backend_policy(
        image,
        input,
        mode,
        backend,
        max_steps,
        redfat_emu::AllocPolicyKind::default(),
    )
}

/// [`try_run_backend`] with the runtime heap backed by an explicit
/// allocator policy (the `--alloc-policy` knob). The hardened image is
/// policy-independent; only the runtime's placement decisions change.
pub fn try_run_backend_policy(
    image: &Image,
    input: Vec<i64>,
    mode: ErrorMode,
    backend: ExecBackend,
    max_steps: u64,
    policy: redfat_emu::AllocPolicyKind,
) -> Result<RunOutcome, LoadError> {
    let runtime = HostRuntime::with_policy(mode, policy).with_input(input);
    let mut emu = Emu::load_image(image, runtime)?;
    let result = emu.run_backend(backend, max_steps);
    let trace_stats = emu.trace_stats();
    Ok(RunOutcome {
        result,
        counters: emu.counters,
        io: emu.runtime.io,
        errors: emu.runtime.errors,
        profile: emu.runtime.profile,
        trace_stats,
    })
}
