//! Deterministic fault-injection harness: the no-panic gate for the
//! whole hardening toolchain.
//!
//! RedFat's value proposition is hardening *arbitrary* stripped
//! binaries, so the pipeline itself must survive arbitrary (malformed,
//! truncated, adversarial) inputs. This module mutates well-formed
//! images from every SPEC stand-in with a seeded [`SplitMix64`] stream
//! -- truncations, byte flips in the header / code / metadata regions,
//! oversized table counts, corrupt trap tables -- and drives each
//! mutant through the full parse → disasm → analyze → harden → load →
//! run chain. Every outcome must be classified:
//!
//! * **Ok** -- the mutant survived the chain; guest-level failures
//!   (faults, step limits, detected memory errors) are graceful.
//! * **Error** -- a stage rejected the mutant with a structured
//!   [`RedfatError`].
//! * **Degraded** -- hardening succeeded but skipped sites
//!   ([`HardenStats::degraded`][crate::HardenStats::degraded]), the
//!   paper's opportunistic-hardening model applied to the toolchain.
//!
//! A panic anywhere in the chain is a harness **failure**. The sweep is
//! fully deterministic: the same seed yields the same mutants and the
//! same classification counts on every run and at any thread count.

use crate::error::RedfatError;
use crate::pipeline::harden;
use crate::selftest::SplitMix64;
use crate::HardenConfig;
use redfat_elf::Image;
use redfat_emu::{Emu, ErrorMode, HostRuntime, RunResult, TRAP_TABLE_MAGIC};
use redfat_parallel::parallel_map;
use redfat_workloads::spec;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Configuration for a fault-injection sweep.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Seed for the mutation stream (per-workload streams are derived
    /// from it and the workload name).
    pub seed: u64,
    /// Mutants generated per workload.
    pub mutants_per_workload: usize,
    /// Step budget for each mutant's guest run (kept small: the chain
    /// stages, not the guest, are under test).
    pub max_steps: u64,
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig {
            seed: 0x5EED_FA17_1BAD_E1F0,
            // 35 mutants x 29 stand-ins ≈ a 1k-mutant sweep.
            mutants_per_workload: 35,
            max_steps: 200_000,
        }
    }
}

/// How one mutant's trip through the chain ended.
#[derive(Debug)]
pub enum FaultOutcome {
    /// Survived every stage (guest-level failures included).
    Ok,
    /// A stage rejected the mutant with a structured error.
    Error(RedfatError),
    /// Hardened with recorded degradation (skipped sites).
    Degraded,
}

impl FaultOutcome {
    /// `true` for the `Error` classification.
    pub fn is_error(&self) -> bool {
        matches!(self, FaultOutcome::Error(_))
    }
}

/// Aggregated sweep results.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Mutants driven through the chain.
    pub cases: usize,
    /// Mutants classified `Ok`.
    pub ok: usize,
    /// Mutants rejected with a structured error.
    pub errors: usize,
    /// Mutants hardened with recorded degradation.
    pub degraded: usize,
    /// Structured-error counts by failing stage name.
    pub by_stage: BTreeMap<String, usize>,
    /// Unclassified outcomes -- panics escaping the chain, or a
    /// well-formed input failing its sanity drive. Must be empty.
    pub failures: Vec<String>,
}

impl FaultReport {
    /// `true` if every outcome was classified (no panics).
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }

    fn absorb(&mut self, other: FaultReport) {
        self.cases += other.cases;
        self.ok += other.ok;
        self.errors += other.errors;
        self.degraded += other.degraded;
        for (stage, n) in other.by_stage {
            *self.by_stage.entry(stage).or_insert(0) += n;
        }
        self.failures.extend(other.failures);
    }

    fn record(&mut self, outcome: FaultOutcome) {
        self.cases += 1;
        match outcome {
            FaultOutcome::Ok => self.ok += 1,
            FaultOutcome::Degraded => self.degraded += 1,
            FaultOutcome::Error(e) => {
                self.errors += 1;
                *self.by_stage.entry(e.stage.to_string()).or_insert(0) += 1;
            }
        }
    }
}

/// FNV-1a, used to derive a per-workload mutation stream from the sweep
/// seed so workload order (and thread count) cannot affect the mutants.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Drives already-parsed `image` through harden → load → run and
/// classifies the outcome.
fn drive_image(image: &Image, input: &[i64], max_steps: u64) -> FaultOutcome {
    let hardened = match harden(image, &HardenConfig::default()) {
        Ok(h) => h,
        Err(e) => return FaultOutcome::Error(RedfatError::from(e)),
    };
    let degraded = hardened.stats.degraded();
    match drive_load_run(&hardened.image, input, max_steps) {
        FaultOutcome::Ok if degraded => FaultOutcome::Degraded,
        other => other,
    }
}

/// Drives `image` through load → run only (used for mutants of already
/// hardened images, e.g. corrupt trap tables).
fn drive_load_run(image: &Image, input: &[i64], max_steps: u64) -> FaultOutcome {
    let runtime = HostRuntime::new(ErrorMode::Log).with_input(input.to_vec());
    let mut emu = match Emu::load_image(image, runtime) {
        Ok(emu) => emu,
        Err(e) => return FaultOutcome::Error(RedfatError::from(e)),
    };
    match emu.run(max_steps) {
        // Guest-level endings are graceful by construction.
        RunResult::Exited(_) | RunResult::StepLimit | RunResult::MemoryError(_) => FaultOutcome::Ok,
        RunResult::Error(e) => FaultOutcome::Error(RedfatError::from(e)),
    }
}

/// Drives raw `bytes` through the full parse → harden → load → run
/// chain and classifies the outcome. This is the public single-case
/// entry point of the harness: callers hand it arbitrary (possibly
/// malformed) ELF bytes and get a classification, never a panic from a
/// stage error path (panics indicate a toolchain bug and are what
/// [`fault_sweep`] exists to catch).
pub fn classify_bytes(bytes: &[u8], input: &[i64], max_steps: u64) -> FaultOutcome {
    drive_bytes(bytes, input, max_steps)
}

/// Drives raw `bytes` through the full chain starting at ELF parsing.
fn drive_bytes(bytes: &[u8], input: &[i64], max_steps: u64) -> FaultOutcome {
    let image = match Image::parse(bytes) {
        Ok(image) => image,
        Err(e) => return FaultOutcome::Error(RedfatError::from(e)),
    };
    drive_image(&image, input, max_steps)
}

/// Reads the file region `[off, off+len)` of a `PT_LOAD` header matching
/// `want_exec` from well-formed ELF bytes, for targeted corruption.
fn segment_file_region(bytes: &[u8], want_exec: bool) -> Option<(usize, usize)> {
    fn field<const N: usize>(bytes: &[u8], o: usize) -> Option<[u8; N]> {
        bytes.get(o..o.checked_add(N)?)?.try_into().ok()
    }
    let u16at = |o: usize| Some(u16::from_le_bytes(field(bytes, o)?) as usize);
    let u32at = |o: usize| Some(u32::from_le_bytes(field(bytes, o)?));
    let u64at = |o: usize| Some(u64::from_le_bytes(field(bytes, o)?) as usize);
    let phoff = u64at(32)?;
    let phentsize = u16at(54)?;
    let phnum = u16at(56)?;
    for i in 0..phnum {
        let ph = phoff.checked_add(i.checked_mul(phentsize)?)?;
        if u32at(ph)? != 1 {
            continue;
        }
        let flags = u32at(ph + 4)?;
        if ((flags & 1) != 0) != want_exec {
            continue;
        }
        let off = u64at(ph + 8)?;
        let filesz = u64at(ph + 32)?;
        if filesz > 0 && off.checked_add(filesz)? <= bytes.len() {
            return Some((off, filesz));
        }
    }
    None
}

/// Produces one mutant and classifies it. `base` is the well-formed
/// image's serialization; `hardened` is the well-formed hardened image
/// (for trap-table mutations).
fn mutate_and_drive(
    base: &[u8],
    hardened: &Image,
    input: &[i64],
    rng: &mut SplitMix64,
    max_steps: u64,
) -> FaultOutcome {
    let mut bytes = base.to_vec();
    match rng.below(8) {
        // Truncation at a random offset.
        0 => {
            bytes.truncate(rng.below(bytes.len() as u64) as usize);
            drive_bytes(&bytes, input, max_steps)
        }
        // Byte flips anywhere in the file.
        1 => {
            for _ in 0..=rng.below(8) {
                let off = rng.below(bytes.len() as u64) as usize;
                bytes[off] ^= 1 << rng.below(8);
            }
            drive_bytes(&bytes, input, max_steps)
        }
        // Header corruption: flip a byte in the first 64.
        2 => {
            let off = rng.below(64.min(bytes.len() as u64)) as usize;
            bytes[off] ^= 1 << rng.below(8);
            drive_bytes(&bytes, input, max_steps)
        }
        // Oversized table counts: clobber e_phnum or e_shnum.
        3 => {
            let off = if rng.below(2) == 0 { 56 } else { 60 };
            let huge = (rng.next_u64() | 0x8000) as u16;
            if off + 2 <= bytes.len() {
                bytes[off..off + 2].copy_from_slice(&huge.to_le_bytes());
            }
            drive_bytes(&bytes, input, max_steps)
        }
        // Program-header field corruption (offsets, sizes, vaddrs).
        4 => {
            let phoff = 64u64;
            let off = (phoff + rng.below(56)) as usize;
            if off + 8 <= bytes.len() {
                let v = rng.next_u64();
                bytes[off..off + 8].copy_from_slice(&v.to_le_bytes());
            }
            drive_bytes(&bytes, input, max_steps)
        }
        // Code-segment byte flips: undecodable / altered instructions.
        5 => {
            if let Some((off, len)) = segment_file_region(&bytes, true) {
                for _ in 0..=rng.below(6) {
                    let o = off + rng.below(len as u64) as usize;
                    bytes[o] ^= 1 << rng.below(8);
                }
            }
            drive_bytes(&bytes, input, max_steps)
        }
        // Metadata (non-exec) segment byte flips.
        6 => {
            if let Some((off, len)) = segment_file_region(&bytes, false) {
                for _ in 0..=rng.below(6) {
                    let o = off + rng.below(len as u64) as usize;
                    bytes[o] ^= 1 << rng.below(8);
                }
            }
            drive_bytes(&bytes, input, max_steps)
        }
        // Corrupt trap table in the hardened image.
        _ => match mutate_trap_table(hardened, rng) {
            Some(img) => drive_load_run(&img, input, max_steps),
            // No trap table emitted for this workload: fall back to a
            // generic byte flip.
            None => {
                let off = rng.below(bytes.len() as u64) as usize;
                bytes[off] ^= 1 << rng.below(8);
                drive_bytes(&bytes, input, max_steps)
            }
        },
    }
}

/// Corrupts the hardened image's trap-table segment: truncation, count
/// inflation, a mid-entry cut with the count still claiming the partial
/// entry, or an entry byte flip. `None` if no trap table exists.
fn mutate_trap_table(hardened: &Image, rng: &mut SplitMix64) -> Option<Image> {
    let mut img = hardened.clone();
    let seg = img
        .segments
        .iter_mut()
        .find(|s| s.data.len() >= 16 && s.data[..8] == TRAP_TABLE_MAGIC.to_le_bytes())?;
    match rng.below(4) {
        0 => {
            // Truncate the table mid-entry (keeping the header so the
            // magic is still recognized).
            let keep = 16 + rng.below((seg.data.len() - 15) as u64) as usize;
            seg.data.truncate(keep.min(seg.data.len()));
            seg.mem_size = seg.data.len() as u64;
        }
        1 => {
            // Declare far more entries than the data holds.
            let huge = rng.next_u64() | (1 << 32);
            seg.data[8..16].copy_from_slice(&huge.to_le_bytes());
        }
        2 => {
            // Cut one entry in half and rewrite the declared count to
            // still claim the partial entry: the header and count look
            // internally consistent, but the last entry's field reads
            // run off the end of the data. This is the exact shape the
            // loader's unchecked `expect("8 bytes")` slice conversions
            // would have turned into a panic.
            let entries = (seg.data.len() - 16) / 16;
            if entries == 0 {
                return None;
            }
            let cut_entry = rng.below(entries as u64) as usize;
            let keep = 16 + cut_entry * 16 + 8;
            seg.data.truncate(keep);
            seg.mem_size = seg.data.len() as u64;
            let claimed = (cut_entry + 1) as u64;
            seg.data[8..16].copy_from_slice(&claimed.to_le_bytes());
        }
        _ => {
            // Flip a byte somewhere in the count or entries.
            let off = 8 + rng.below(seg.data.len() as u64 - 8) as usize;
            seg.data[off] ^= 1 << rng.below(8);
        }
    }
    Some(img)
}

/// Runs the mutation sweep for one workload (named by `name`), catching
/// panics so the caller gets a classification for every mutant.
fn fault_workload(name: &str, config: &FaultConfig) -> FaultReport {
    let mut report = FaultReport::default();
    let Some(w) = spec::all().into_iter().find(|w| w.name == name) else {
        report.failures.push(format!("unknown workload {name}"));
        return report;
    };
    let image = w.image();
    let base = image.to_bytes();
    let hardened = match harden(&image, &HardenConfig::default()) {
        Ok(h) => h,
        Err(e) => {
            report
                .failures
                .push(format!("{name}: well-formed image failed to harden: {e}"));
            return report;
        }
    };
    if hardened.stats.degraded() {
        report.failures.push(format!(
            "{name}: well-formed image hardened with degradation"
        ));
    }

    // Sanity: the unmutated image must classify Ok.
    match drive_bytes(&base, &w.train_input, config.max_steps) {
        FaultOutcome::Ok => {}
        other => report
            .failures
            .push(format!("{name}: well-formed image classified {other:?}")),
    }

    let mut rng = SplitMix64::new(config.seed ^ fnv1a(name));
    for m in 0..config.mutants_per_workload {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            mutate_and_drive(
                &base,
                &hardened.image,
                &w.train_input,
                &mut rng,
                config.max_steps,
            )
        }));
        match outcome {
            Ok(classified) => report.record(classified),
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&str>().copied())
                    .unwrap_or("<non-string panic payload>");
                report.cases += 1;
                report.failures.push(format!(
                    "{name}: PANIC on mutant {m} (seed {:#x}): {msg}",
                    config.seed
                ));
            }
        }
    }
    report
}

/// Runs the full fault-injection sweep over every SPEC stand-in on
/// `threads` workers. Panic output is suppressed for the duration (the
/// sweep *expects* to catch panics if a regression sneaks in; the
/// report, not stderr, is the record).
pub fn fault_sweep(config: &FaultConfig, threads: usize) -> FaultReport {
    let names: Vec<&'static str> = spec::all().into_iter().map(|w| w.name).collect();
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let reports = parallel_map(names, threads, |name: &&str| fault_workload(name, config));
    std::panic::set_hook(prev);
    let mut total = FaultReport::default();
    for r in reports {
        total.absorb(r);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_region_finder_locates_code() {
        let w = spec::all().into_iter().next().unwrap();
        let bytes = w.image().to_bytes();
        let (off, len) = segment_file_region(&bytes, true).expect("code segment");
        assert!(len > 0 && off + len <= bytes.len());
    }
}
