//! Allow-lists: the output of the §5 profiling phase.

use std::collections::BTreeSet;

/// The set of instrumentation sites (original-binary instruction
/// addresses) deemed safe for the full (Redzone)+(LowFat) check.
///
/// Serializes to the same shape as the paper's `allow.lst`: one lowercase
/// hex address per line, comments starting with `#`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AllowList {
    sites: BTreeSet<u64>,
}

impl AllowList {
    /// An empty allow-list (everything falls back to (Redzone)-only).
    pub fn new() -> AllowList {
        AllowList::default()
    }

    /// Builds from an iterator of site addresses.
    pub fn from_sites(sites: impl IntoIterator<Item = u64>) -> AllowList {
        AllowList {
            sites: sites.into_iter().collect(),
        }
    }

    /// Adds a site.
    pub fn insert(&mut self, site: u64) {
        self.sites.insert(site);
    }

    /// Membership test used by the hardening pipeline.
    pub fn contains(&self, site: u64) -> bool {
        self.sites.contains(&site)
    }

    /// Number of allow-listed sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Returns `true` if no sites are allow-listed.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Iterates the sites in address order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.sites.iter().copied()
    }

    /// Merges another allow-list in (for combining coverage from
    /// multiple training runs after intersecting their fail-sets).
    pub fn union(&mut self, other: &AllowList) {
        self.sites.extend(other.sites.iter().copied());
    }

    /// Serializes to `allow.lst` text format.
    pub fn to_text(&self) -> String {
        let mut s = String::from("# RedFat allow-list: sites safe for (Redzone)+(LowFat)\n");
        for site in &self.sites {
            s.push_str(&format!("{site:x}\n"));
        }
        s
    }

    /// Parses the `allow.lst` text format.
    ///
    /// CRLF line endings and surrounding whitespace are tolerated; lines
    /// that are empty or start with `#` are ignored; anything else must
    /// be a hex address (optionally `0x`-prefixed). A malformed line is
    /// a hard error naming the line, never a silent skip -- a corrupted
    /// allow-list must not quietly downgrade coverage.
    pub fn from_text(text: &str) -> Result<AllowList, String> {
        let mut sites = BTreeSet::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let digits = line
                .strip_prefix("0x")
                .or_else(|| line.strip_prefix("0X"))
                .unwrap_or(line);
            // `from_str_radix` alone would accept a sign ("+401000");
            // insist on pure hex digits so any stray byte fails loudly.
            if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_hexdigit()) {
                return Err(format!(
                    "line {}: bad address {line:?}: not a hex address",
                    i + 1
                ));
            }
            let v = u64::from_str_radix(digits, 16)
                .map_err(|e| format!("line {}: bad address {line:?}: {e}", i + 1))?;
            sites.insert(v);
        }
        Ok(AllowList { sites })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_membership() {
        let mut l = AllowList::new();
        assert!(l.is_empty());
        l.insert(0x40_1000);
        assert!(l.contains(0x40_1000));
        assert!(!l.contains(0x40_1001));
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn text_roundtrip() {
        let l = AllowList::from_sites([0x40_1000, 0x40_2000, 0x7FFF_FFFF]);
        let text = l.to_text();
        let back = AllowList::from_text(&text).unwrap();
        assert_eq!(back, l);
    }

    #[test]
    fn parse_rejects_junk() {
        assert!(AllowList::from_text("zzz").is_err());
        assert!(AllowList::from_text("# comment\n\n401000\n").is_ok());
    }

    #[test]
    fn parse_tolerates_crlf_and_whitespace() {
        let l = AllowList::from_text("# header\r\n  401000  \r\n\t402000\r\n\r\n").unwrap();
        assert_eq!(l, AllowList::from_sites([0x40_1000, 0x40_2000]));
        // A DOS-edited serialization round-trips to the same list.
        let crlf = l.to_text().replace('\n', "\r\n");
        assert_eq!(AllowList::from_text(&crlf).unwrap(), l);
    }

    #[test]
    fn parse_accepts_0x_prefix() {
        let l = AllowList::from_text("0x401000\n0X402000\n").unwrap();
        assert_eq!(l, AllowList::from_sites([0x40_1000, 0x40_2000]));
    }

    #[test]
    fn parse_rejects_signed_and_malformed_hex_with_line_number() {
        // from_str_radix would happily take a sign prefix; we must not.
        let err = AllowList::from_text("401000\n+402000\n").unwrap_err();
        assert!(err.contains("line 2"), "diagnostic names the line: {err}");
        assert!(AllowList::from_text("-401000").is_err());
        assert!(AllowList::from_text("0x").is_err());
        assert!(AllowList::from_text("40 1000").is_err());
        // Overflow is still a diagnostic error, not a skip.
        let err = AllowList::from_text("1ffffffffffffffffff").unwrap_err();
        assert!(err.contains("line 1"), "diagnostic names the line: {err}");
    }

    #[test]
    fn union_combines() {
        let mut a = AllowList::from_sites([1, 2]);
        let b = AllowList::from_sites([2, 3]);
        a.union(&b);
        assert_eq!(a.len(), 3);
    }
}
