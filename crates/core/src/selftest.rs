//! Differential self-test subsystem (`redfat selftest`).
//!
//! Rewriting running binaries is only trustworthy if the rewritten binary
//! is *behaviorally equivalent* to the original everywhere the paper's
//! design says it must be. This module provides three complementary
//! oracles, all deterministic and dependency-free:
//!
//! 1. **Lockstep differential oracle** ([`lockstep`]): runs the hardened
//!    and baseline images side by side in two emulator instances and
//!    compares architectural state (registers, flags, stored bytes) at
//!    every original-instruction boundary. Divergence is flagged unless
//!    it is attributable to an *intended* effect: a memory-error report
//!    from an inserted check, or a declared dead-register clobber
//!    ([`crate::ClobberInfo`], derived from the liveness analysis that
//!    justified eliding the save/restore).
//! 2. **Encoder/decoder round-trip fuzzer** ([`roundtrip_fuzz`]):
//!    `decode(encode(i)) == i` and byte-identical re-encoding over
//!    randomized REX/ModRM/SIB/displacement/immediate forms, from a fixed
//!    splitmix64 seed. The rewriter's trampolines are re-encoded
//!    instructions, so any non-identity here is a latent rewriting bug.
//! 3. **Allocator invariant checks** ([`allocator_invariants`]): a
//!    randomized malloc/free/calloc/realloc campaign validating the
//!    Figure 3 object layout (`base(p) <= p`, `p == base + 16`,
//!    size-class consistency, metadata/canary round-trip, shadow-state
//!    classification, double-free detection).
//! 4. **Backend lockstep oracle** ([`backend_lockstep`]): runs the
//!    superblock-translated execution backend against the single-step
//!    reference interpreter on the *same* image and compares the full
//!    architectural state (every register, flags, `rip`, all cost
//!    counters, runtime error count) at every superblock boundary. The
//!    translation cache is a pure performance optimization, so any
//!    difference at all is a bug.
//!
//! When the lockstep oracle diverges, [`shrink_input`] applies ddmin-style
//! [`minimize`]-ation to the program input so the repro is as small as the
//! predicate allows; divergence details embed a disassembly window of the
//! instructions leading up to the failure.
//!
//! Known blind spots (documented in DESIGN.md): reads below `rsp` after a
//! payload ran (the payload may push temporaries there), programs that
//! introspect their own return addresses (which legitimately point into
//! trampolines), and dead-register windows where a clobbered register is
//! not compared until a full-width write re-synchronizes it.
// Safety of the module-wide allow: this is test infrastructure that
// happens to ship in the library (so the CLI can drive it). Its
// expects/unwraps assert harness-internal invariants over images the
// harness itself built; a panic here is a failing self-test, which is
// exactly the signal the harness exists to produce. The daemon never
// calls into this module.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use crate::pipeline::{harden, ClobberInfo, HardenError};
use crate::HardenConfig;
use redfat_elf::Image;
use redfat_emu::{syscalls, Emu, EmuError, ErrorMode, ExecBackend, HostRuntime, RunResult};
use redfat_lowfat::{
    AllocError, AllocPolicyKind, LowFatConfig, ObjState, RedFatHeap, REDZONE_SIZE,
};
use redfat_vm::{layout, Vm};
use redfat_x86::{
    decode_one, encode, AluOp, Cond, Inst, Mem, MulDivOp, Op, Operands, Reg, Seg, ShiftOp, Width,
};
use std::collections::{HashMap, VecDeque};

/// Cap on recorded failures/divergences so a systematically broken build
/// produces a readable report instead of an unbounded one.
const MAX_FAILURES: usize = 16;

// ---------------------------------------------------------------------------
// Deterministic randomness
// ---------------------------------------------------------------------------

/// The splitmix64 generator: tiny, seedable, and good enough to cover the
/// encoder's form space. Fixed seeds make every self-test reproducible.
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-ish value in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Returns `true` with roughly `pct` percent probability.
    fn chance(&mut self, pct: u64) -> bool {
        self.below(100) < pct
    }
}

// ---------------------------------------------------------------------------
// Encoder/decoder round-trip fuzzer
// ---------------------------------------------------------------------------

/// Result of a [`roundtrip_fuzz`] campaign.
#[derive(Debug)]
pub struct RoundTripReport {
    /// Cases executed.
    pub cases: usize,
    /// Human-readable descriptions of each failing case (capped).
    pub failures: Vec<String>,
}

impl RoundTripReport {
    /// `true` if every case round-tripped.
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }
}

fn push_capped(failures: &mut Vec<String>, msg: String) {
    if failures.len() < MAX_FAILURES {
        failures.push(msg);
    }
}

fn gen_reg(r: &mut SplitMix64) -> Reg {
    Reg::from_code(r.below(16) as u8)
}

fn gen_index(r: &mut SplitMix64) -> Reg {
    loop {
        let reg = gen_reg(r);
        if reg != Reg::Rsp {
            return reg;
        }
    }
}

fn gen_width(r: &mut SplitMix64) -> Width {
    match r.below(3) {
        0 => Width::W8,
        1 => Width::W32,
        _ => Width::W64,
    }
}

fn gen_wide(r: &mut SplitMix64) -> Width {
    if r.chance(50) {
        Width::W32
    } else {
        Width::W64
    }
}

fn gen_disp(r: &mut SplitMix64) -> i64 {
    match r.below(5) {
        0 => 0,
        // The disp8/disp32 boundary, where canonical-form bugs live.
        1 => r.below(0x102) as i64 - 0x81,
        2 => r.below(0x2_0000) as i64 - 0x1_0000,
        _ => r.below(0x4000_0000) as i64 - 0x2000_0000,
    }
}

fn gen_scale(r: &mut SplitMix64) -> u8 {
    [1, 2, 4, 8][r.below(4) as usize]
}

fn gen_mem(r: &mut SplitMix64, addr: u64) -> Mem {
    let disp = gen_disp(r);
    let mut m = match r.below(8) {
        0 => Mem::base(gen_reg(r)),
        1 | 2 => Mem::base_disp(gen_reg(r), disp),
        3 | 4 => Mem::bis(gen_reg(r), gen_index(r), gen_scale(r), disp),
        5 => Mem::index_scale(gen_index(r), gen_scale(r), disp),
        6 => Mem::abs(r.below(0x7000_0000) as i64),
        // RIP-relative: `disp` holds the absolute target, which must stay
        // within rel32 reach of the instruction.
        _ => Mem::rip(addr.wrapping_add(r.below(0x10_0000)).wrapping_sub(0x8_0000)),
    };
    if !m.rip && r.chance(10) {
        m.seg = Some(if r.chance(50) { Seg::Fs } else { Seg::Gs });
    }
    m
}

/// Immediate fitting the canonical form for `w` in ALU/test/mov-to-memory
/// encodings (sign-extended imm32 at 64-bit width).
fn gen_imm(r: &mut SplitMix64, w: Width) -> i64 {
    match w {
        Width::W8 => r.below(0x100) as i64 - 0x80,
        _ => match r.below(3) {
            // The imm8 sign-extension boundary.
            0 => r.below(0x102) as i64 - 0x81,
            1 => r.below(0x2_0000) as i64 - 0x1_0000,
            _ => r.below(1 << 32) as i64 - (1 << 31),
        },
    }
}

fn gen_cond(r: &mut SplitMix64) -> Cond {
    Cond::from_code(r.below(16) as u8)
}

fn gen_rel(r: &mut SplitMix64, addr: u64) -> u64 {
    addr.wrapping_add(r.below(0x10_0000)).wrapping_sub(0x8_0000)
}

fn gen_alu(r: &mut SplitMix64) -> Op {
    Op::Alu(
        [
            AluOp::Add,
            AluOp::Or,
            AluOp::And,
            AluOp::Sub,
            AluOp::Xor,
            AluOp::Cmp,
        ][r.below(6) as usize],
    )
}

fn gen_shift(r: &mut SplitMix64) -> ShiftOp {
    [ShiftOp::Shl, ShiftOp::Shr, ShiftOp::Sar][r.below(3) as usize]
}

/// Generates a random instruction in *canonical* form -- the subset the
/// assembler emits and the encoder accepts -- at address `addr`.
fn gen_inst(r: &mut SplitMix64, addr: u64) -> Inst {
    let rr = |r: &mut SplitMix64| Operands::RR {
        dst: gen_reg(r),
        src: gen_reg(r),
    };
    match r.below(28) {
        0 => Inst::new(Op::Mov, gen_width(r), rr(r)),
        1 => Inst::new(
            Op::Mov,
            gen_width(r),
            Operands::RM {
                dst: gen_reg(r),
                src: gen_mem(r, addr),
            },
        ),
        2 => Inst::new(
            Op::Mov,
            gen_width(r),
            Operands::MR {
                dst: gen_mem(r, addr),
                src: gen_reg(r),
            },
        ),
        3 => {
            // Canonical mov-immediate: W32 takes the *unsigned* 32-bit
            // range, W64 takes any 64-bit value (the encoder selects
            // between imm32 and movabs forms deterministically).
            let w = gen_width(r);
            let imm = match w {
                Width::W8 => r.below(0x100) as i64 - 0x80,
                Width::W32 => r.below(1 << 32) as i64,
                Width::W64 => r.next_u64() as i64,
            };
            Inst::new(
                Op::Mov,
                w,
                Operands::RI {
                    dst: gen_reg(r),
                    imm,
                },
            )
        }
        4 => {
            let w = gen_width(r);
            Inst::new(
                Op::Mov,
                w,
                Operands::MI {
                    dst: gen_mem(r, addr),
                    imm: gen_imm(r, w),
                },
            )
        }
        5 => Inst::new(gen_alu(r), gen_width(r), rr(r)),
        6 => Inst::new(
            gen_alu(r),
            gen_width(r),
            Operands::RM {
                dst: gen_reg(r),
                src: gen_mem(r, addr),
            },
        ),
        7 => Inst::new(
            gen_alu(r),
            gen_width(r),
            Operands::MR {
                dst: gen_mem(r, addr),
                src: gen_reg(r),
            },
        ),
        8 => {
            let w = gen_width(r);
            Inst::new(
                gen_alu(r),
                w,
                Operands::RI {
                    dst: gen_reg(r),
                    imm: gen_imm(r, w),
                },
            )
        }
        9 => {
            let w = gen_width(r);
            Inst::new(
                gen_alu(r),
                w,
                Operands::MI {
                    dst: gen_mem(r, addr),
                    imm: gen_imm(r, w),
                },
            )
        }
        10 => Inst::new(Op::Test, gen_width(r), rr(r)),
        11 => {
            let w = gen_width(r);
            Inst::new(
                Op::Test,
                w,
                Operands::RI {
                    dst: gen_reg(r),
                    imm: gen_imm(r, w),
                },
            )
        }
        12 => Inst::new(
            Op::Shift(gen_shift(r)),
            gen_wide(r),
            Operands::RI {
                dst: gen_reg(r),
                imm: r.below(64) as i64,
            },
        ),
        13 => Inst::new(
            Op::Shift(gen_shift(r)),
            gen_wide(r),
            Operands::MI {
                dst: gen_mem(r, addr),
                imm: r.below(64) as i64,
            },
        ),
        14 => {
            let op = Op::ShiftCl(gen_shift(r));
            if r.chance(50) {
                Inst::new(op, gen_wide(r), Operands::R(gen_reg(r)))
            } else {
                Inst::new(op, gen_wide(r), Operands::M(gen_mem(r, addr)))
            }
        }
        15 => {
            let op =
                Op::MulDiv([MulDivOp::Mul, MulDivOp::Div, MulDivOp::Idiv][r.below(3) as usize]);
            if r.chance(50) {
                Inst::new(op, gen_wide(r), Operands::R(gen_reg(r)))
            } else {
                Inst::new(op, gen_wide(r), Operands::M(gen_mem(r, addr)))
            }
        }
        16 => {
            let op = if r.chance(50) { Op::Neg } else { Op::Not };
            if r.chance(50) {
                Inst::new(op, gen_wide(r), Operands::R(gen_reg(r)))
            } else {
                Inst::new(op, gen_wide(r), Operands::M(gen_mem(r, addr)))
            }
        }
        17 => {
            if r.chance(50) {
                Inst::new(Op::Imul2, gen_wide(r), rr(r))
            } else {
                Inst::new(
                    Op::Imul2,
                    gen_wide(r),
                    Operands::RM {
                        dst: gen_reg(r),
                        src: gen_mem(r, addr),
                    },
                )
            }
        }
        18 => {
            let w = gen_wide(r);
            let imm = gen_imm(r, w);
            if r.chance(50) {
                Inst::new(
                    Op::Imul3,
                    w,
                    Operands::RRI {
                        dst: gen_reg(r),
                        src: gen_reg(r),
                        imm,
                    },
                )
            } else {
                Inst::new(
                    Op::Imul3,
                    w,
                    Operands::RMI {
                        dst: gen_reg(r),
                        src: gen_mem(r, addr),
                        imm,
                    },
                )
            }
        }
        19 => {
            let op = if r.chance(50) { Op::Movzx8 } else { Op::Movsx8 };
            if r.chance(50) {
                Inst::new(op, gen_wide(r), rr(r))
            } else {
                Inst::new(
                    op,
                    gen_wide(r),
                    Operands::RM {
                        dst: gen_reg(r),
                        src: gen_mem(r, addr),
                    },
                )
            }
        }
        20 => {
            if r.chance(50) {
                Inst::new(Op::Movsxd, Width::W64, rr(r))
            } else {
                Inst::new(
                    Op::Movsxd,
                    Width::W64,
                    Operands::RM {
                        dst: gen_reg(r),
                        src: gen_mem(r, addr),
                    },
                )
            }
        }
        21 => Inst::new(
            Op::Lea,
            gen_wide(r),
            Operands::RM {
                dst: gen_reg(r),
                src: gen_mem(r, addr),
            },
        ),
        22 => {
            let op = if r.chance(50) { Op::Push } else { Op::Pop };
            if r.chance(50) {
                Inst::new(op, Width::W64, Operands::R(gen_reg(r)))
            } else {
                Inst::new(op, Width::W64, Operands::M(gen_mem(r, addr)))
            }
        }
        23 => {
            let op = Op::Setcc(gen_cond(r));
            if r.chance(50) {
                Inst::new(op, Width::W8, Operands::R(gen_reg(r)))
            } else {
                Inst::new(op, Width::W8, Operands::M(gen_mem(r, addr)))
            }
        }
        24 => {
            if r.chance(50) {
                Inst::new(Op::Cmovcc(gen_cond(r)), gen_wide(r), rr(r))
            } else {
                Inst::new(
                    Op::Cmovcc(gen_cond(r)),
                    gen_wide(r),
                    Operands::RM {
                        dst: gen_reg(r),
                        src: gen_mem(r, addr),
                    },
                )
            }
        }
        25 => {
            let op = [Op::Jmp, Op::Call, Op::Jcc(gen_cond(r))][r.below(3) as usize];
            Inst::new(op, Width::W64, Operands::Rel(gen_rel(r, addr)))
        }
        26 => {
            let op = if r.chance(50) {
                Op::CallInd
            } else {
                Op::JmpInd
            };
            if r.chance(50) {
                Inst::new(op, Width::W64, Operands::R(gen_reg(r)))
            } else {
                Inst::new(op, Width::W64, Operands::M(gen_mem(r, addr)))
            }
        }
        _ => match r.below(8) {
            0 => Inst::new(Op::Ret, Width::W64, Operands::None),
            1 => Inst::new(Op::Cqo, gen_wide(r), Operands::None),
            2 => Inst::new(Op::Syscall, Width::W64, Operands::None),
            3 => Inst::new(Op::Int3, Width::W64, Operands::None),
            4 => Inst::new(Op::Nop, Width::W64, Operands::None),
            5 => Inst::new(Op::Ud2, Width::W64, Operands::None),
            6 => Inst::new(Op::Pushfq, Width::W64, Operands::None),
            _ => Inst::new(Op::Popfq, Width::W64, Operands::None),
        },
    }
}

/// Runs `cases` encode→decode→re-encode round trips from `seed`.
///
/// Every generated instruction is in canonical form, so three properties
/// must hold exactly: the encoder accepts it, the decoder inverts the
/// encoder (`decode(encode(i)) == i`, consuming every byte), and
/// re-encoding the decoded instruction reproduces the identical bytes.
pub fn roundtrip_fuzz(cases: usize, seed: u64) -> RoundTripReport {
    let mut rng = SplitMix64::new(seed);
    let mut failures = Vec::new();
    for case in 0..cases {
        let addr = layout::CODE_BASE + rng.below(0x10_0000);
        let inst = gen_inst(&mut rng, addr);
        let bytes = match encode(&inst, addr) {
            Ok(b) => b,
            Err(e) => {
                push_capped(
                    &mut failures,
                    format!("case {case}: canonical `{inst}` at {addr:#x} failed to encode: {e:?}"),
                );
                continue;
            }
        };
        match decode_one(&bytes, addr) {
            Err(e) => push_capped(
                &mut failures,
                format!(
                    "case {case}: `{inst}` encoded to {bytes:02x?} but failed to decode: {e:?}"
                ),
            ),
            Ok((got, len)) => {
                if len as usize != bytes.len() {
                    push_capped(
                        &mut failures,
                        format!(
                            "case {case}: `{inst}` encoded to {} bytes but decode consumed {len}",
                            bytes.len()
                        ),
                    );
                } else if got != inst {
                    push_capped(
                        &mut failures,
                        format!(
                            "case {case}: decode(encode(i)) != i: `{inst}` vs `{got}` \
                             ({inst:?} vs {got:?}, bytes {bytes:02x?})"
                        ),
                    );
                } else {
                    match encode(&got, addr) {
                        Ok(again) if again == bytes => {}
                        Ok(again) => push_capped(
                            &mut failures,
                            format!(
                                "case {case}: `{inst}` re-encodes differently: \
                                 {bytes:02x?} vs {again:02x?}"
                            ),
                        ),
                        Err(e) => push_capped(
                            &mut failures,
                            format!("case {case}: decoded `{got}` failed to re-encode: {e:?}"),
                        ),
                    }
                }
            }
        }
    }
    RoundTripReport { cases, failures }
}

// ---------------------------------------------------------------------------
// Allocator invariants
// ---------------------------------------------------------------------------

/// Result of an [`allocator_invariants`] campaign.
#[derive(Debug)]
pub struct AllocReport {
    /// Heap operations performed.
    pub cases: usize,
    /// Human-readable invariant violations (capped).
    pub failures: Vec<String>,
}

impl AllocReport {
    /// `true` if every invariant held.
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Checks the full Figure 3 layout contract for a live object, under
/// whatever policy backs `heap` (the policy's allocation offset `delta`
/// generalizes the paper's `ptr = base + 16` law to
/// `ptr = base + 16 + delta` with extent metadata `delta + size`).
///
/// `fresh` objects must additionally sit in exactly the size class of
/// their padded size; a resized-in-place object only has to *fit* its
/// (possibly larger) slot.
fn check_object(
    heap: &RedFatHeap,
    vm: &Vm,
    p: u64,
    size: u64,
    fresh: bool,
    failures: &mut Vec<String>,
) {
    let mut fail = |msg: String| push_capped(failures, format!("ptr {p:#x} size {size}: {msg}"));
    let base = layout::lowfat_base(p);
    if base == 0 {
        fail("lowfat_base is 0 for a heap pointer".into());
        return;
    }
    if base > p {
        fail(format!("base {base:#x} above user pointer"));
    }
    let delta = heap.user_delta(base);
    if heap.policy_kind() == AllocPolicyKind::LowFat && delta != 0 {
        fail(format!("default policy produced a non-zero delta {delta}"));
    }
    if p != base + REDZONE_SIZE + delta {
        fail(format!(
            "user pointer not base + {REDZONE_SIZE} + delta {delta} (base {base:#x})"
        ));
    }
    if !p.is_multiple_of(16) {
        fail("user pointer not 16-byte aligned".into());
    }
    if layout::lowfat_base(base) != base {
        fail(format!(
            "lowfat_base not idempotent: base({base:#x}) = {:#x}",
            layout::lowfat_base(base)
        ));
    }
    let cls_size = layout::lowfat_size(p);
    if cls_size < delta + size + REDZONE_SIZE {
        fail(format!(
            "class size {cls_size} below delta + size + redzone"
        ));
    }
    if fresh {
        match layout::class_for_size((size + REDZONE_SIZE).max(REDZONE_SIZE + 1)) {
            None => fail("class_for_size returned None for an allocated size".into()),
            Some(idx) => {
                if layout::class_size(idx) != cls_size {
                    fail(format!(
                        "class_for_size/class_size disagree with lowfat_size: {} vs {cls_size}",
                        layout::class_size(idx)
                    ));
                }
            }
        }
    }
    let extent = delta + size;
    match vm.read_u64(base) {
        Ok(meta) if meta == extent => {}
        Ok(meta) => fail(format!("extent metadata reads {meta}, expected {extent}")),
        Err(e) => fail(format!("extent metadata unreadable: {e:?}")),
    }
    if !heap.check_canary(vm, p) {
        fail("metadata canary check failed".into());
    }
    let want_size = if size == 0 { None } else { Some(size) };
    if heap.object_size(vm, p) != want_size {
        fail(format!(
            "object_size reports {:?}, expected {want_size:?}",
            heap.object_size(vm, p)
        ));
    }
    if size > 0 && heap.state(vm, p) != ObjState::Allocated {
        fail(format!(
            "state(ptr) = {:?}, expected Allocated",
            heap.state(vm, p)
        ));
    }
    if size > 0 && heap.state(vm, p + size - 1) != ObjState::Allocated {
        fail(format!(
            "state(last byte) = {:?}, expected Allocated",
            heap.state(vm, p + size - 1)
        ));
    }
    for probe in [base, base + REDZONE_SIZE - 1] {
        if heap.state(vm, probe) != ObjState::Redzone {
            fail(format!(
                "state({probe:#x}) = {:?}, expected Redzone",
                heap.state(vm, probe)
            ));
        }
    }
    if cls_size > extent + REDZONE_SIZE && heap.state(vm, p + size) != ObjState::Padding {
        fail(format!(
            "state(first padding byte) = {:?}, expected Padding",
            heap.state(vm, p + size)
        ));
    }
}

/// Runs the Figure-3 invariant campaign against **every registered
/// allocator policy** (the satellite generalization: uniqueness,
/// alignment, red-zone disjointness and free-then-reuse transitions are
/// policy-independent laws). Failures are prefixed with the policy name.
pub fn allocator_invariants(cases: usize, seed: u64) -> AllocReport {
    let mut total = 0;
    let mut failures = Vec::new();
    for policy in AllocPolicyKind::ALL {
        let r = allocator_invariants_policy(cases, seed, policy);
        total += r.cases;
        for f in r.failures {
            push_capped(&mut failures, format!("[{policy}] {f}"));
        }
    }
    AllocReport {
        cases: total,
        failures,
    }
}

/// Runs `cases` randomized heap operations from `seed` against one
/// policy, checking the redzone/metadata invariants after every
/// mutation.
pub fn allocator_invariants_policy(
    cases: usize,
    seed: u64,
    policy: AllocPolicyKind,
) -> AllocReport {
    let mut rng = SplitMix64::new(seed);
    let mut vm = Vm::new();
    let mut heap = RedFatHeap::new(LowFatConfig {
        policy,
        ..LowFatConfig::default()
    });
    heap.install(&mut vm);
    // Live objects: (user pointer, requested size, fill byte).
    let mut live: Vec<(u64, u64, u8)> = Vec::new();
    // Slot bases of live objects (uniqueness) and of freed ones (reuse
    // transition tracking).
    let mut live_bases: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let mut freed_bases: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let mut failures = Vec::new();
    let note_alloc = |p: u64,
                      live_bases: &mut std::collections::HashSet<u64>,
                      freed_bases: &mut std::collections::HashSet<u64>,
                      failures: &mut Vec<String>| {
        let base = layout::lowfat_base(p);
        if !live_bases.insert(base) {
            push_capped(
                failures,
                format!("slot {base:#x} handed out while still live"),
            );
        }
        // Free-then-reuse: a recycled slot must have gone through a
        // free first (it is fine for it never to be reused at all).
        freed_bases.remove(&base);
    };

    for case in 0..cases {
        if failures.len() >= MAX_FAILURES {
            break;
        }
        match rng.below(10) {
            0..=3 => {
                let cap = if rng.chance(90) { 512 } else { 1 << 16 };
                let size = 1 + rng.below(cap);
                let fill = rng.below(0x100) as u8;
                match heap.malloc(&mut vm, size) {
                    Ok(p) => {
                        vm.write_privileged(p, &vec![fill; size as usize])
                            .expect("fresh object mapped");
                        note_alloc(p, &mut live_bases, &mut freed_bases, &mut failures);
                        check_object(&heap, &vm, p, size, true, &mut failures);
                        live.push((p, size, fill));
                    }
                    Err(e) => push_capped(
                        &mut failures,
                        format!("case {case}: malloc({size}) failed: {e:?}"),
                    ),
                }
            }
            4 => {
                let count = 1 + rng.below(32);
                let elem = 1 + rng.below(64);
                match heap.calloc(&mut vm, count, elem) {
                    Ok(p) => {
                        let size = count * elem;
                        note_alloc(p, &mut live_bases, &mut freed_bases, &mut failures);
                        check_object(&heap, &vm, p, size, true, &mut failures);
                        let data = vm.read_bytes(p, size as usize).expect("object mapped");
                        if data.iter().any(|&b| b != 0) {
                            push_capped(
                                &mut failures,
                                format!("case {case}: calloc({count}, {elem}) not zeroed"),
                            );
                        }
                        live.push((p, size, 0));
                    }
                    Err(e) => push_capped(
                        &mut failures,
                        format!("case {case}: calloc({count}, {elem}) failed: {e:?}"),
                    ),
                }
            }
            5 => {
                if live.is_empty() {
                    continue;
                }
                let i = rng.below(live.len() as u64) as usize;
                let (p, old_size, fill) = live[i];
                let new_size = 1 + rng.below(1024);
                match heap.realloc(&mut vm, p, new_size) {
                    Ok(q) => {
                        let old_base = layout::lowfat_base(p);
                        let new_base = layout::lowfat_base(q);
                        if new_base != old_base {
                            // Moved: the old slot must be free now.
                            live_bases.remove(&old_base);
                            freed_bases.insert(old_base);
                            note_alloc(q, &mut live_bases, &mut freed_bases, &mut failures);
                            if heap.state(&vm, p) != ObjState::Free {
                                push_capped(
                                    &mut failures,
                                    format!("case {case}: realloc source not freed after move"),
                                );
                            }
                        }
                        check_object(&heap, &vm, q, new_size, false, &mut failures);
                        let keep = old_size.min(new_size) as usize;
                        let data = vm.read_bytes(q, keep).expect("object mapped");
                        if data.iter().any(|&b| b != fill) {
                            push_capped(
                                &mut failures,
                                format!("case {case}: realloc lost object contents"),
                            );
                        }
                        vm.write_privileged(q, &vec![fill; new_size as usize])
                            .expect("object mapped");
                        live[i] = (q, new_size, fill);
                    }
                    Err(e) => push_capped(
                        &mut failures,
                        format!("case {case}: realloc({p:#x}, {new_size}) failed: {e:?}"),
                    ),
                }
            }
            6..=8 => {
                if live.is_empty() {
                    continue;
                }
                let i = rng.below(live.len() as u64) as usize;
                let (p, _, _) = live.swap_remove(i);
                if let Err(e) = heap.free(&mut vm, p) {
                    push_capped(
                        &mut failures,
                        format!("case {case}: free({p:#x}) failed: {e:?}"),
                    );
                    continue;
                }
                live_bases.remove(&layout::lowfat_base(p));
                freed_bases.insert(layout::lowfat_base(p));
                if heap.state(&vm, p) != ObjState::Free {
                    push_capped(
                        &mut failures,
                        format!(
                            "case {case}: freed object state is {:?}, expected Free",
                            heap.state(&vm, p)
                        ),
                    );
                }
                if heap.object_size(&vm, p).is_some() {
                    push_capped(
                        &mut failures,
                        format!("case {case}: freed object still has an object_size"),
                    );
                }
            }
            _ => {
                // Double-free probe: the second free must be detected.
                if live.is_empty() {
                    continue;
                }
                let i = rng.below(live.len() as u64) as usize;
                let (p, _, _) = live.swap_remove(i);
                if let Err(e) = heap.free(&mut vm, p) {
                    push_capped(
                        &mut failures,
                        format!("case {case}: free({p:#x}) failed: {e:?}"),
                    );
                    continue;
                }
                live_bases.remove(&layout::lowfat_base(p));
                freed_bases.insert(layout::lowfat_base(p));
                match heap.free(&mut vm, p) {
                    Err(AllocError::DoubleFree(_)) => {}
                    other => push_capped(
                        &mut failures,
                        format!("case {case}: double free not detected: {other:?}"),
                    ),
                }
            }
        }
    }

    // Drain: every remaining object must free cleanly.
    for (p, _, _) in live {
        if let Err(e) = heap.free(&mut vm, p) {
            push_capped(&mut failures, format!("drain: free({p:#x}) failed: {e:?}"));
        }
    }
    AllocReport { cases, failures }
}

// ---------------------------------------------------------------------------
// Failure minimization
// ---------------------------------------------------------------------------

/// ddmin-style list minimization: returns a subsequence of `items` on
/// which `still_fails` still returns `true`, minimal under chunk removal.
///
/// If the full input does not fail, it is returned unchanged.
pub fn minimize<T: Clone>(items: &[T], mut still_fails: impl FnMut(&[T]) -> bool) -> Vec<T> {
    let mut cur: Vec<T> = items.to_vec();
    if !still_fails(&cur) {
        return cur;
    }
    let mut chunk = cur.len().div_ceil(2).max(1);
    loop {
        let mut shrunk = false;
        let mut i = 0;
        while i < cur.len() {
            let end = (i + chunk).min(cur.len());
            let mut cand: Vec<T> = Vec::with_capacity(cur.len() - (end - i));
            cand.extend_from_slice(&cur[..i]);
            cand.extend_from_slice(&cur[end..]);
            if still_fails(&cand) {
                cur = cand;
                shrunk = true;
                // Same position now holds fresh content: retry in place.
            } else {
                i = end;
            }
        }
        if !shrunk {
            if chunk == 1 {
                return cur;
            }
            chunk = (chunk / 2).max(1);
        }
    }
}

// ---------------------------------------------------------------------------
// Superblock backend lockstep oracle
// ---------------------------------------------------------------------------

/// Result of a [`backend_lockstep`] run.
#[derive(Debug, Default)]
pub struct BackendReport {
    /// Superblock boundaries at which full state was compared.
    pub blocks: u64,
    /// Instructions executed (identical for both backends by design).
    pub instructions: u64,
    /// Unexplained differences between the backends (capped).
    pub divergences: Vec<Divergence>,
    /// How the translated-backend run ended (`None` only on a stall).
    pub superblock_exit: Option<RunResult>,
    /// How the reference single-step run ended.
    pub step_exit: Option<RunResult>,
    /// `true` if both backends terminated within the step budget.
    pub completed: bool,
}

impl BackendReport {
    /// `true` if the backends never disagreed.
    pub fn clean(&self) -> bool {
        self.divergences.is_empty()
    }
}

fn push_divergence(divs: &mut Vec<Divergence>, rip: u64, detail: String) {
    if divs.len() < MAX_FAILURES {
        divs.push(Divergence { rip, detail });
    }
}

/// Maps a `step`/`step_block` outcome to the run result `run_superblock`
/// and `run` would report, so the two backends compare apples to apples.
fn settle(outcome: Result<Option<RunResult>, EmuError>) -> Option<RunResult> {
    match outcome {
        Ok(r) => r,
        Err(EmuError::AccessVetoed { error, .. }) => Some(RunResult::MemoryError(error)),
        Err(e) => Some(RunResult::Error(e)),
    }
}

/// Runs a translated backend (superblock or trace-linked) and the
/// single-step reference interpreter in lockstep on `image` and compares
/// the complete architectural state at every block boundary.
///
/// Unlike [`lockstep_images`], both emulators execute the *same* image,
/// so the comparison is exact: every register (no dead-clobber
/// exemptions), the flags, `rip`, the full cost-counter set, and the
/// memory-error reports must agree element-for-element at every
/// boundary, and the final run results and guest IO digests must be
/// equal. For the trace-linked backend a "boundary" is wherever
/// `step_trace` returns (budget exhaustion or an unlinkable successor),
/// so chained execution is still audited against the reference run
/// whenever it surfaces.
///
/// For [`ExecBackend::Fast`] this is the **boundary-audit oracle**: the
/// fast tier batches counter updates and skips hook dispatch *within* a
/// trace, so per-instruction lockstep would (correctly) observe
/// mid-trace counters ahead of or behind the reference. But every
/// `step_fast` return restores bit-exact `step()` state by
/// construction (static-charge rollback on every early exit; budgets
/// smaller than a block interpret per-instruction), and with no access
/// hook attached nothing can observe the interior states -- so
/// auditing all 16 GPRs, flags, `rip`, the full `Counters`, and the
/// error reports at every return boundary, plus end-state equivalence,
/// is exactly as strong a statement as the per-instruction oracle is
/// for the other tiers. Slices are bounded at 4096 instructions so a
/// run is audited at thousands of boundaries.
pub fn backend_lockstep(
    image: &Image,
    input: &[i64],
    backend: ExecBackend,
    max_steps: u64,
) -> BackendReport {
    backend_lockstep_policy(image, input, backend, max_steps, AllocPolicyKind::default())
}

/// [`backend_lockstep`] with both runs backed by the given allocator
/// policy. Both emulators use the same policy (and thus see the same
/// deterministic pointer stream), so the oracle stays exact even under
/// the randomized backend.
pub fn backend_lockstep_policy(
    image: &Image,
    input: &[i64],
    backend: ExecBackend,
    max_steps: u64,
    policy: AllocPolicyKind,
) -> BackendReport {
    let mut sup = Emu::load_image(
        image,
        HostRuntime::with_policy(ErrorMode::Log, policy).with_input(input.to_vec()),
    )
    .expect("image loads");
    let mut refr = Emu::load_image(
        image,
        HostRuntime::with_policy(ErrorMode::Log, policy).with_input(input.to_vec()),
    )
    .expect("image loads");
    let mut report = BackendReport::default();
    let mut remaining = max_steps;

    let (sup_end, ref_end) = loop {
        if remaining == 0 {
            break (Some(RunResult::StepLimit), Some(RunResult::StepLimit));
        }
        let (executed, outcome) = match backend {
            // Chained execution would otherwise run the whole budget in
            // one call; bound each slice so full state is compared at
            // thousands of boundaries and mid-block budget expiry (the
            // exact-prefix path) is exercised continuously.
            ExecBackend::Trace => sup.step_trace(remaining.min(4096)),
            ExecBackend::Fast => sup.step_fast(remaining.min(4096)),
            ExecBackend::Step | ExecBackend::Superblock => sup.step_block(remaining),
        };
        remaining -= executed.min(remaining);
        report.instructions += executed;
        let sup_end = settle(outcome);
        // The reference interpreter retires exactly as many instructions
        // as the superblock executed; if it terminates first, the state
        // comparison below reports where the two runs parted ways.
        let mut ref_end = None;
        for _ in 0..executed {
            match settle(refr.step()) {
                None => {}
                some => {
                    ref_end = some;
                    break;
                }
            }
        }

        report.blocks += 1;
        let rip = refr.cpu.rip;
        let divs = &mut report.divergences;
        if sup.cpu.rip != refr.cpu.rip {
            push_divergence(
                divs,
                rip,
                format!(
                    "rip differs after block {}: {backend} {:#x}, step {:#x}",
                    report.blocks, sup.cpu.rip, refr.cpu.rip
                ),
            );
        }
        for c in 0..16u8 {
            let r = Reg::from_code(c);
            let (sv, rv) = (sup.cpu.get(r), refr.cpu.get(r));
            if sv != rv {
                push_divergence(
                    divs,
                    rip,
                    format!("register {r:?} differs at {rip:#x}: {backend} {sv:#x}, step {rv:#x}"),
                );
            }
        }
        if sup.cpu.flags != refr.cpu.flags {
            push_divergence(
                divs,
                rip,
                format!(
                    "flags differ at {rip:#x}: {backend} {:?}, step {:?}",
                    sup.cpu.flags, refr.cpu.flags
                ),
            );
        }
        if sup.counters != refr.counters {
            push_divergence(
                divs,
                rip,
                format!(
                    "cost counters differ at {rip:#x}: {backend} {:?}, step {:?}",
                    sup.counters, refr.counters
                ),
            );
        }
        if sup.runtime.errors != refr.runtime.errors {
            let n = sup.runtime.errors.len().min(refr.runtime.errors.len());
            let at = (0..n)
                .find(|&k| sup.runtime.errors[k] != refr.runtime.errors[k])
                .unwrap_or(n);
            push_divergence(
                divs,
                rip,
                format!(
                    "error reports differ at {rip:#x} (first mismatch is report #{at}): \
                     {backend} has {}, step has {}",
                    sup.runtime.errors.len(),
                    refr.runtime.errors.len()
                ),
            );
        }
        if divs.len() >= MAX_FAILURES {
            break (sup_end, ref_end);
        }
        match (sup_end, ref_end) {
            (None, None) => {
                if executed == 0 {
                    push_divergence(divs, rip, format!("{backend} backend stalled at {rip:#x}"));
                    break (None, None);
                }
            }
            ends => break ends,
        }
    };

    if sup_end != ref_end {
        report.divergences.truncate(MAX_FAILURES - 1);
        report.divergences.push(Divergence {
            rip: refr.cpu.rip,
            detail: format!("run results differ: {backend} {sup_end:?}, step {ref_end:?}"),
        });
    } else if sup.runtime.io.digest() != refr.runtime.io.digest() {
        report.divergences.truncate(MAX_FAILURES - 1);
        report.divergences.push(Divergence {
            rip: refr.cpu.rip,
            detail: format!(
                "guest IO digests differ: {backend} {:#x}, step {:#x}",
                sup.runtime.io.digest(),
                refr.runtime.io.digest()
            ),
        });
    }
    report.completed = sup_end.is_some() && ref_end.is_some();
    report.superblock_exit = sup_end;
    report.step_exit = ref_end;
    report
}

// ---------------------------------------------------------------------------
// Lockstep differential oracle
// ---------------------------------------------------------------------------

/// One unexplained difference between the baseline and hardened runs.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Original-code address where the difference was observed.
    pub rip: u64,
    /// Description, including a disassembly window of the instructions
    /// executed leading up to the divergence.
    pub detail: String,
}

/// Result of a [`lockstep`] run.
#[derive(Debug, Default)]
pub struct LockstepReport {
    /// Original-instruction boundaries at which full state was compared.
    pub synced: u64,
    /// Unexplained divergences (capped).
    pub divergences: Vec<Divergence>,
    /// How the baseline run ended (`None` if the budget ran out first).
    pub baseline_exit: Option<RunResult>,
    /// How the hardened run ended.
    pub hardened_exit: Option<RunResult>,
    /// Memory-error reports from the hardened run's checks. These are
    /// *intended* behavior differences, not divergences.
    pub hardened_errors: usize,
    /// `true` if both runs terminated within the step budget.
    pub completed: bool,
}

impl LockstepReport {
    /// `true` if no unexplained divergence was observed.
    pub fn clean(&self) -> bool {
        self.divergences.is_empty()
    }
}

fn record(report: &mut LockstepReport, window: &VecDeque<String>, rip: u64, msg: String) {
    if report.divergences.len() >= MAX_FAILURES {
        return;
    }
    let mut detail = msg;
    if !window.is_empty() {
        detail.push_str("\n  instructions leading here:");
        for line in window {
            detail.push_str("\n    ");
            detail.push_str(line);
        }
    }
    report.divergences.push(Divergence { rip, detail });
}

/// Exit results are equivalent if they end the run the same way; error
/// payloads carry addresses that legitimately differ between the images.
fn exit_equiv(b: &RunResult, h: &RunResult) -> bool {
    match (b, h) {
        (RunResult::Exited(x), RunResult::Exited(y)) => x == y,
        (RunResult::StepLimit, RunResult::StepLimit) => true,
        (RunResult::MemoryError(_), RunResult::MemoryError(_)) => true,
        (RunResult::Error(_), RunResult::Error(_)) => true,
        _ => false,
    }
}

/// Hardens `image` under `config` and runs the lockstep oracle on the
/// result, using the pipeline's own clobber declarations.
pub fn lockstep(
    image: &Image,
    config: &HardenConfig,
    input: &[i64],
    max_steps: u64,
) -> Result<LockstepReport, HardenError> {
    let hardened = harden(image, config)?;
    Ok(lockstep_images_policy(
        image,
        &hardened.image,
        &hardened.clobbers,
        input,
        max_steps,
        config.alloc_policy,
    ))
}

/// Shrinks `input` to a minimal vector on which the hardened image still
/// diverges from the baseline (ddmin over input elements).
pub fn shrink_input(
    baseline: &Image,
    hardened: &Image,
    clobbers: &HashMap<u64, ClobberInfo>,
    input: &[i64],
    max_steps: u64,
) -> Vec<i64> {
    shrink_input_policy(
        baseline,
        hardened,
        clobbers,
        input,
        max_steps,
        AllocPolicyKind::default(),
    )
}

/// [`shrink_input`] reproducing the divergence under the given allocator
/// policy (a divergence seen under one backend need not reproduce under
/// another).
pub fn shrink_input_policy(
    baseline: &Image,
    hardened: &Image,
    clobbers: &HashMap<u64, ClobberInfo>,
    input: &[i64],
    max_steps: u64,
    policy: AllocPolicyKind,
) -> Vec<i64> {
    minimize(input, |cand| {
        !lockstep_images_policy(baseline, hardened, clobbers, cand, max_steps, policy).clean()
    })
}

/// Runs `baseline` and `hardened` in lockstep, comparing architectural
/// state at every original-instruction boundary.
///
/// The sync invariant: both emulators sit at the same original-code
/// `rip`, below the trampoline region. Each round first compares all
/// registers (minus the *dirty* set of declared clobbers), the flags, and
/// the bytes stored since the last sync; then advances the hardened run
/// until it re-emerges from instrumentation, and finally single-steps the
/// baseline to the same address, checking per instruction that nothing
/// reads a clobbered register or flag (which would falsify the liveness
/// analysis that justified the clobber).
pub fn lockstep_images(
    baseline: &Image,
    hardened: &Image,
    clobbers: &HashMap<u64, ClobberInfo>,
    input: &[i64],
    max_steps: u64,
) -> LockstepReport {
    lockstep_images_policy(
        baseline,
        hardened,
        clobbers,
        input,
        max_steps,
        AllocPolicyKind::default(),
    )
}

/// [`lockstep_images`] with both runs backed by the given allocator
/// policy. Baseline and hardened share the policy (deterministic per
/// seed), so their pointer streams stay identical and every divergence
/// is attributable to the instrumentation.
pub fn lockstep_images_policy(
    baseline: &Image,
    hardened: &Image,
    clobbers: &HashMap<u64, ClobberInfo>,
    input: &[i64],
    max_steps: u64,
    policy: AllocPolicyKind,
) -> LockstepReport {
    let disasm = redfat_analysis::disassemble(baseline);
    let mut base = Emu::load_image(
        baseline,
        HostRuntime::with_policy(ErrorMode::Log, policy).with_input(input.to_vec()),
    )
    .expect("image loads");
    let mut hard = Emu::load_image(
        hardened,
        HostRuntime::with_policy(ErrorMode::Log, policy).with_input(input.to_vec()),
    )
    .expect("image loads");

    let mut report = LockstepReport::default();
    // Registers (bit per GPR code) whose values may legitimately differ:
    // declared dead at a payload anchor, clobbered by the payload, and not
    // yet re-synchronized by a full-width write.
    let mut dirty: u16 = 0;
    let mut flags_dirty = false;
    // Data stores performed since the last sync, compared at the next one.
    let mut pending: Vec<(u64, usize)> = Vec::new();
    let mut window: VecDeque<String> = VecDeque::new();
    let mut budget = max_steps;

    let mut base_done: Option<RunResult> = None;
    let mut hard_done: Option<RunResult> = None;

    'outer: while base_done.is_none() || hard_done.is_none() {
        if base_done.is_none() && hard_done.is_none() {
            // ---- sync point: compare state ----
            let rip = base.cpu.rip;
            report.synced += 1;
            for c in 0..16u8 {
                if dirty & (1 << c) != 0 {
                    continue;
                }
                let r = Reg::from_code(c);
                let (bv, hv) = (base.cpu.get(r), hard.cpu.get(r));
                if bv != hv {
                    record(
                        &mut report,
                        &window,
                        rip,
                        format!(
                            "register {r:?} differs at {rip:#x}: baseline {bv:#x}, hardened {hv:#x}"
                        ),
                    );
                    // Report once; treat as dirty from here on.
                    dirty |= 1 << c;
                }
            }
            if !flags_dirty && base.cpu.flags != hard.cpu.flags {
                record(
                    &mut report,
                    &window,
                    rip,
                    format!(
                        "flags differ at {rip:#x}: baseline {:?}, hardened {:?}",
                        base.cpu.flags, hard.cpu.flags
                    ),
                );
                flags_dirty = true;
            }
            for (addr, len) in pending.drain(..) {
                let bb = base.vm.read_bytes(addr, len).ok();
                let hb = hard.vm.read_bytes(addr, len).ok();
                if bb != hb {
                    record(
                        &mut report,
                        &window,
                        rip,
                        format!(
                            "stored bytes differ at {addr:#x} ({len} bytes): \
                             baseline {bb:02x?}, hardened {hb:02x?}"
                        ),
                    );
                }
            }
            // The payload anchored here runs *after* this comparison; mark
            // its declared clobbers as legitimately divergent.
            if let Some(ci) = clobbers.get(&rip) {
                for r in &ci.regs {
                    dirty |= 1 << r.code();
                }
                if ci.flags {
                    flags_dirty = true;
                }
            }
            if report.divergences.len() >= MAX_FAILURES {
                break 'outer;
            }

            // ---- advance hardened to the next original-code boundary ----
            let mut inner = 0u64;
            loop {
                if budget == 0 {
                    break 'outer;
                }
                budget -= 1;
                match hard.step() {
                    Ok(None) => {}
                    Ok(Some(res)) => {
                        hard_done = Some(res);
                        break;
                    }
                    Err(e) => {
                        hard_done = Some(RunResult::Error(e));
                        break;
                    }
                }
                if hard.cpu.rip < layout::TRAMPOLINE_BASE {
                    break;
                }
                inner += 1;
                if inner > 200_000 {
                    record(
                        &mut report,
                        &window,
                        rip,
                        format!("hardened run stuck inside trampoline entered at {rip:#x}"),
                    );
                    break 'outer;
                }
            }
        }

        // ---- baseline catch-up, instruction by instruction ----
        let target = if hard_done.is_some() {
            None
        } else {
            Some(hard.cpu.rip)
        };
        let mut caught = 0u32;
        while base_done.is_none() {
            if Some(base.cpu.rip) == target {
                break;
            }
            if budget == 0 {
                break 'outer;
            }
            let rip = base.cpu.rip;
            let Some(&(inst, _len)) = disasm.at(rip) else {
                record(
                    &mut report,
                    &window,
                    rip,
                    format!("baseline reached undecodable code at {rip:#x}"),
                );
                break 'outer;
            };
            window.push_back(format!("{rip:#x}: {inst}"));
            if window.len() > 32 {
                window.pop_front();
            }

            // Liveness soundness: nothing may read a clobbered register or
            // flag before it is rewritten.
            if dirty != 0 {
                for r in inst.regs_read() {
                    if dirty & (1 << r.code()) != 0 {
                        record(
                            &mut report,
                            &window,
                            rip,
                            format!(
                                "`{inst}` at {rip:#x} reads {r:?}, which instrumentation \
                                 clobbered (liveness violation)"
                            ),
                        );
                        dirty &= !(1 << r.code());
                    }
                }
            }
            if flags_dirty && inst.reads_flags() {
                record(
                    &mut report,
                    &window,
                    rip,
                    format!(
                        "`{inst}` at {rip:#x} reads flags, which instrumentation \
                         clobbered (liveness violation)"
                    ),
                );
                flags_dirty = false;
            }
            if report.divergences.len() >= MAX_FAILURES {
                break 'outer;
            }

            // Record data stores for comparison at the next sync. Stack
            // pushes are excluded: the hardened run legitimately pushes
            // trampoline-resident return addresses.
            if inst.writes_memory() {
                if let Some(m) = inst.memory_access() {
                    let ea = if m.rip {
                        m.disp as u64
                    } else {
                        let mut a = m.disp as u64;
                        if let Some(b) = m.base {
                            a = a.wrapping_add(base.cpu.get(b));
                        }
                        if let Some(i) = m.index {
                            a = a.wrapping_add(base.cpu.get(i).wrapping_mul(m.scale as u64));
                        }
                        a
                    };
                    let len = inst.access_len().unwrap_or(0) as usize;
                    pending.push((ea, len));
                }
            }

            let pre_rax = base.cpu.get(Reg::Rax);
            let pre_cond = if let Op::Cmovcc(c) = inst.op {
                base.cpu.flags.cond(c)
            } else {
                false
            };

            budget -= 1;
            match base.step() {
                Ok(None) => {}
                Ok(Some(res)) => base_done = Some(res),
                Err(e) => base_done = Some(RunResult::Error(e)),
            }

            // A full-width write re-synchronizes a dirty register (both
            // sides computed the value from clean state -- otherwise the
            // read check above already fired). Mirror the emulator's
            // actual write sets, not the static may-write model.
            match inst.op {
                Op::Syscall => {
                    dirty &= !(1u16 << Reg::Rax.code());
                    if pre_rax == syscalls::READ_INT {
                        dirty &= !(1u16 << Reg::Rdx.code());
                    }
                }
                Op::Cmovcc(_) => {
                    // A false condition keeps (W64) or partially rewrites
                    // (W32 zero-extend of the old low half) the old value:
                    // only a taken cmov cleans its destination.
                    if pre_cond {
                        for r in inst.regs_written() {
                            dirty &= !(1u16 << r.code());
                        }
                    }
                }
                _ => {
                    if inst.w != Width::W8 {
                        for r in inst.regs_written() {
                            dirty &= !(1u16 << r.code());
                        }
                    }
                }
            }
            if inst.writes_flags() {
                flags_dirty = false;
            }

            caught += 1;
            if caught > 128 && base_done.is_none() {
                record(
                    &mut report,
                    &window,
                    base.cpu.rip,
                    format!(
                        "baseline failed to re-converge with hardened at {:#x}",
                        target.unwrap_or(0)
                    ),
                );
                break 'outer;
            }
        }

        if base_done.is_some() && hard_done.is_none() {
            // The baseline terminated while the hardened run is paused at
            // a boundary; let it run to its own termination for the final
            // comparison.
            let mut extra = 0u64;
            while hard_done.is_none() {
                if budget == 0 {
                    break 'outer;
                }
                budget -= 1;
                match hard.step() {
                    Ok(None) => {}
                    Ok(Some(res)) => hard_done = Some(res),
                    Err(e) => hard_done = Some(RunResult::Error(e)),
                }
                extra += 1;
                if extra > 200_000 {
                    record(
                        &mut report,
                        &window,
                        hard.cpu.rip,
                        "baseline terminated but the hardened run keeps running".to_string(),
                    );
                    break 'outer;
                }
            }
        }
    }

    report.hardened_errors = hard.runtime.errors.len();
    if let (Some(b), Some(h)) = (&base_done, &hard_done) {
        if !exit_equiv(b, h) {
            record(
                &mut report,
                &window,
                base.cpu.rip,
                format!("exit results differ: baseline {b:?}, hardened {h:?}"),
            );
        }
        if base.runtime.io.digest() != hard.runtime.io.digest() {
            record(
                &mut report,
                &window,
                base.cpu.rip,
                format!(
                    "guest IO digests differ: baseline {:#x}, hardened {:#x}",
                    base.runtime.io.digest(),
                    hard.runtime.io.digest()
                ),
            );
        }
        report.completed = true;
    }
    report.baseline_exit = base_done;
    report.hardened_exit = hard_done;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HardenConfig, LowFatPolicy};
    use redfat_analysis::Cfg;
    use redfat_elf::{ImageKind, SegFlags, Segment};
    use redfat_rewriter::{rewrite, Patch};
    use redfat_x86::Asm;

    fn program(build: impl FnOnce(&mut Asm) -> u64) -> (Image, u64) {
        let mut a = Asm::new(layout::CODE_BASE);
        let mark = build(&mut a);
        let p = a.finish().unwrap();
        let image = Image {
            kind: ImageKind::Exec,
            entry: layout::CODE_BASE,
            segments: vec![Segment::new(p.base, SegFlags::RX, p.bytes)],
            symbols: vec![],
        };
        (image, mark)
    }

    fn clobber_rbx_patch(anchor: u64) -> Vec<Patch<'static>> {
        vec![Patch {
            anchor,
            payload: Box::new(|a: &mut Asm| {
                a.mov_ri(Width::W64, Reg::Rbx, 99);
                Ok(())
            }),
        }]
    }

    #[test]
    fn minimize_reduces_to_the_failing_core() {
        let items: Vec<i32> = (0..20).collect();
        let out = minimize(&items, |c| c.contains(&3) && c.contains(&17));
        assert_eq!(out, vec![3, 17]);
        // A non-failing input is returned unchanged.
        let out = minimize(&items, |_| false);
        assert_eq!(out, items);
        // A failure independent of the input shrinks to nothing.
        let out = minimize(&items, |_| true);
        assert!(out.is_empty());
    }

    #[test]
    fn roundtrip_fuzzer_is_clean() {
        let r = roundtrip_fuzz(2_000, 0xDEC0_DE01);
        assert_eq!(r.cases, 2_000);
        assert!(r.clean(), "{:#?}", r.failures);
    }

    #[test]
    fn allocator_invariants_hold() {
        let r = allocator_invariants(1_000, 0xA110_C001);
        assert!(r.clean(), "{:#?}", r.failures);
    }

    #[test]
    fn injected_live_clobber_is_flagged() {
        // rbx is *live* across the anchor (the displaced mov reads it), so
        // a payload clobbering it without declaration must be flagged.
        let (image, anchor) = program(|a| {
            a.mov_ri(Width::W64, Reg::Rbx, 7);
            let anchor = a.here();
            a.mov_rr(Width::W64, Reg::Rdi, Reg::Rbx);
            a.alu_ri(AluOp::Add, Width::W64, Reg::Rdi, 1);
            let l = a.label();
            a.jmp_label(l);
            a.bind(l).unwrap();
            a.mov_ri(Width::W64, Reg::Rax, 0);
            a.syscall();
            anchor
        });
        let disasm = redfat_analysis::disassemble(&image);
        let cfg = Cfg::recover(&disasm, image.entry, &[]);
        let out = rewrite(&image, &disasm, &cfg, clobber_rbx_patch(anchor)).unwrap();
        let rep = lockstep_images(&image, &out.image, &HashMap::new(), &[], 100_000);
        assert!(!rep.clean(), "undeclared clobber not flagged: {rep:#?}");
        assert!(
            rep.divergences.iter().any(|d| d.detail.contains("Rbx")),
            "divergence does not name the clobbered register: {:#?}",
            rep.divergences
        );
    }

    #[test]
    fn declared_dead_clobber_is_tolerated() {
        // rbx is *dead* after the anchor; the same clobber, declared, is
        // an intended effect and must not be reported.
        let (image, anchor) = program(|a| {
            a.mov_ri(Width::W64, Reg::Rbx, 7);
            let anchor = a.here();
            a.mov_ri(Width::W64, Reg::Rdi, 5);
            let l = a.label();
            a.jmp_label(l);
            a.bind(l).unwrap();
            a.mov_ri(Width::W64, Reg::Rax, 0);
            a.syscall();
            anchor
        });
        let disasm = redfat_analysis::disassemble(&image);
        let cfg = Cfg::recover(&disasm, image.entry, &[]);
        let out = rewrite(&image, &disasm, &cfg, clobber_rbx_patch(anchor)).unwrap();

        // Undeclared: flagged.
        let rep = lockstep_images(&image, &out.image, &HashMap::new(), &[], 100_000);
        assert!(!rep.clean(), "expected the undeclared clobber to be seen");

        // Declared: clean, and both runs exit 5.
        let mut declared = HashMap::new();
        declared.insert(
            anchor,
            ClobberInfo {
                regs: vec![Reg::Rbx],
                flags: false,
            },
        );
        let rep = lockstep_images(&image, &out.image, &declared, &[], 100_000);
        assert!(rep.clean(), "{:#?}", rep.divergences);
        assert!(rep.completed);
        assert_eq!(rep.baseline_exit, Some(RunResult::Exited(5)));
        assert_eq!(rep.hardened_exit, Some(RunResult::Exited(5)));
    }

    #[test]
    fn input_shrinking_reaches_a_fixpoint() {
        // The injected divergence is input-independent, so the shrinker
        // must reduce the input vector to nothing.
        let (image, anchor) = program(|a| {
            a.mov_ri(Width::W64, Reg::Rbx, 7);
            let anchor = a.here();
            a.mov_rr(Width::W64, Reg::Rdi, Reg::Rbx);
            a.alu_ri(AluOp::Add, Width::W64, Reg::Rdi, 1);
            let l = a.label();
            a.jmp_label(l);
            a.bind(l).unwrap();
            a.mov_ri(Width::W64, Reg::Rax, 0);
            a.syscall();
            anchor
        });
        let disasm = redfat_analysis::disassemble(&image);
        let cfg = Cfg::recover(&disasm, image.entry, &[]);
        let out = rewrite(&image, &disasm, &cfg, clobber_rbx_patch(anchor)).unwrap();
        let shrunk = shrink_input(&image, &out.image, &HashMap::new(), &[1, 2, 3], 100_000);
        assert!(shrunk.is_empty(), "{shrunk:?}");
    }

    #[test]
    fn backend_lockstep_is_clean_on_baseline_and_hardened_images() {
        let src = "fn main() {
            var n = input();
            var a = malloc(12 * 8);
            for (var i = 0; i < 12; i = i + 1) { a[i] = i * n; }
            var s = 0;
            for (var i = 0; i < 12; i = i + 1) { s = s + a[i]; }
            print(s);
            free(a);
            return 0;
        }";
        let image = redfat_minic::compile(src).unwrap();
        let hardened = harden(&image, &HardenConfig::default()).unwrap();
        for backend in [
            ExecBackend::Superblock,
            ExecBackend::Trace,
            ExecBackend::Fast,
        ] {
            let rep = backend_lockstep(&image, &[3], backend, 5_000_000);
            assert!(
                rep.completed,
                "{backend}: baseline run incomplete: {rep:#?}"
            );
            assert!(rep.clean(), "{backend}: {:#?}", rep.divergences);
            assert_eq!(rep.superblock_exit, Some(RunResult::Exited(0)));
            assert_eq!(rep.step_exit, Some(RunResult::Exited(0)));
            assert!(rep.blocks > 0 && rep.instructions > rep.blocks);

            // The hardened image exercises trampoline crossings and the
            // inserted check payloads under the translated backends.
            let rep = backend_lockstep(&hardened.image, &[3], backend, 5_000_000);
            assert!(
                rep.completed,
                "{backend}: hardened run incomplete: {rep:#?}"
            );
            assert!(rep.clean(), "{backend}: {:#?}", rep.divergences);
            assert_eq!(rep.superblock_exit, Some(RunResult::Exited(0)));
        }
    }

    #[test]
    fn backend_lockstep_agrees_on_step_budget_exhaustion() {
        let src = "fn main() {
            var s = 0;
            for (var i = 0; i < 1000000; i = i + 1) { s = s + i; }
            print(s);
            return 0;
        }";
        let image = redfat_minic::compile(src).unwrap();
        for backend in [
            ExecBackend::Superblock,
            ExecBackend::Trace,
            ExecBackend::Fast,
        ] {
            for budget in [1u64, 7, 100, 12345] {
                let rep = backend_lockstep(&image, &[], backend, budget);
                assert!(
                    rep.clean(),
                    "{backend} budget {budget}: {:#?}",
                    rep.divergences
                );
                assert!(rep.completed, "{backend} budget {budget}");
                assert_eq!(rep.superblock_exit, Some(RunResult::StepLimit));
                assert_eq!(rep.step_exit, Some(RunResult::StepLimit));
                assert_eq!(rep.instructions, budget);
            }
        }
    }

    #[test]
    fn lockstep_is_clean_on_a_hardened_minic_program() {
        let src = "fn main() {
            var n = input();
            var a = malloc(10 * 8);
            for (var i = 0; i < 10; i = i + 1) { a[i] = i * n; }
            var s = 0;
            for (var i = 0; i < 10; i = i + 1) { s = s + a[i]; }
            print(s);
            free(a);
            return 0;
        }";
        let image = redfat_minic::compile(src).unwrap();
        for config in [
            HardenConfig::unoptimized(LowFatPolicy::All),
            HardenConfig::default(),
        ] {
            let rep = lockstep(&image, &config, &[3], 5_000_000).unwrap();
            assert!(rep.completed, "run did not complete: {rep:#?}");
            assert!(rep.clean(), "{:#?}", rep.divergences);
            assert_eq!(rep.baseline_exit, Some(RunResult::Exited(0)));
            assert_eq!(rep.hardened_exit, Some(RunResult::Exited(0)));
            assert!(
                rep.synced > 10,
                "suspiciously few sync points: {}",
                rep.synced
            );
        }
    }
}
