//! Content digests for the hardening-as-a-service caches.
//!
//! Every cache in the service tier is *content-addressed*: artifact
//! entries are keyed by (input image digest, config digest, tool
//! version), and per-CFG-component analysis results are keyed by a
//! digest over the component's byte content plus everything else its
//! analysis can observe. A 256-bit cryptographic digest makes
//! accidental collisions a non-concern, so "equal key" can soundly be
//! read as "equal input" throughout the cache layer.
//!
//! The implementation is an in-tree SHA-256 (FIPS 180-4); the workspace
//! builds offline, so no external hashing crate is available.

use redfat_elf::Image;

/// A 256-bit content digest.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// The raw digest bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Lowercase hex rendering (the on-disk cache file name).
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in self.0 {
            s.push(char::from_digit((b >> 4) as u32, 16).unwrap_or('0'));
            s.push(char::from_digit((b & 0xF) as u32, 16).unwrap_or('0'));
        }
        s
    }

    /// Parses the [`Digest::to_hex`] rendering.
    pub fn from_hex(s: &str) -> Option<Digest> {
        let s = s.trim();
        if s.len() != 64 {
            return None;
        }
        let mut out = [0u8; 32];
        for (i, chunk) in s.as_bytes().chunks(2).enumerate() {
            let hi = (chunk[0] as char).to_digit(16)?;
            let lo = (chunk[1] as char).to_digit(16)?;
            out[i] = ((hi << 4) | lo) as u8;
        }
        Some(Digest(out))
    }
}

impl std::fmt::Display for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

impl std::fmt::Debug for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Digest({})", self.to_hex())
    }
}

/// Cache-relevant tool identity. Bump the trailing tag whenever the
/// pipeline's analysis or code generation changes in a way that can
/// alter hardened output for the same (image, config) pair; stale
/// cache entries from older tool revisions then miss by key instead of
/// serving wrong bytes.
pub const TOOL_VERSION: &str = concat!("redfat-", env!("CARGO_PKG_VERSION"), "+cache1");

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Incremental SHA-256 hasher.
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_bytes: u64,
}

impl Default for Sha256 {
    fn default() -> Sha256 {
        Sha256::new()
    }
}

impl Sha256 {
    /// Fresh hasher with the FIPS 180-4 initial state.
    pub fn new() -> Sha256 {
        Sha256 {
            state: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            buf: [0; 64],
            buf_len: 0,
            total_bytes: 0,
        }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.total_bytes = self.total_bytes.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(rest.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            } else {
                // Buffer still partial: `rest` is necessarily empty
                // (take == rest.len()), and falling through would reset
                // buf_len from rest.len() and drop the buffered bytes.
                return;
            }
        }
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            rest = tail;
        }
        self.buf[..rest.len()].copy_from_slice(rest);
        self.buf_len = rest.len();
    }

    /// Absorbs a length-prefixed little-endian `u64` (the canonical way
    /// structured fields enter a digest, so adjacent fields cannot
    /// alias across a boundary).
    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    /// Finalizes and returns the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total_bytes.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Manual length append: update() would recount these 8 bytes.
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);
        let mut out = [0u8; 32];
        for (i, w) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        Digest(out)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot digest of a byte string.
pub fn sha256(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// Digest of an image's canonical serialization (its ELF byte encoding,
/// which [`Image::to_bytes`] produces deterministically).
pub fn image_digest(image: &Image) -> Digest {
    sha256(&image.to_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answers() {
        assert_eq!(
            sha256(b"").to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            sha256(b"abc").to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i * 7 + 3) as u8).collect();
        for split in [0, 1, 63, 64, 65, 128, 999, 1000] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), sha256(&data), "split {split}");
        }
    }

    #[test]
    fn million_a() {
        // FIPS 180-4 long known-answer: 1,000,000 x 'a'.
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            h.finalize().to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn hex_roundtrip() {
        let d = sha256(b"roundtrip");
        assert_eq!(Digest::from_hex(&d.to_hex()), Some(d));
        assert_eq!(Digest::from_hex("xyz"), None);
        assert_eq!(Digest::from_hex(""), None);
    }
}
