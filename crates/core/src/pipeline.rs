//! The hardening pipeline: disassemble → CFG → batches → checks →
//! trampoline rewrite, plus the §5 two-phase profiling workflow.

use crate::allowlist::AllowList;
use crate::checks::{BatchPayload, CheckSpec, PayloadMode};
use crate::config::{HardenConfig, LowFatPolicy};
use crate::digest::{image_digest, Digest, Sha256, TOOL_VERSION};
use redfat_analysis::provenance::CallEffect;
use redfat_analysis::{can_reach_heap, unknown_entries, Disasm, Provenance, RedundantChecks};
use redfat_analysis::{disassemble, merge_checks, plan_batches, Batch, Cfg, Liveness, Summaries};
use redfat_elf::Image;
use redfat_emu::ProfileStats;
use redfat_parallel::parallel_map;
use redfat_rewriter::{rewrite_with_bases, Patch, RewriteBases, RewriteError, RewriteStats};
use redfat_x86::Inst;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// A hardening failure.
#[derive(Debug)]
pub enum HardenError {
    /// The underlying rewrite failed.
    Rewrite(RewriteError),
}

impl std::fmt::Display for HardenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HardenError::Rewrite(e) => write!(f, "rewrite failed: {e}"),
        }
    }
}

impl std::error::Error for HardenError {}

impl From<RewriteError> for HardenError {
    fn from(e: RewriteError) -> HardenError {
        HardenError::Rewrite(e)
    }
}

/// Instrumentation statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HardenStats {
    /// Memory-access instructions considered (post read/write filter).
    pub sites_considered: usize,
    /// Sites whose checks were eliminated by the syntactic rule
    /// (provably non-heap operand shape).
    pub sites_eliminated: usize,
    /// Sites *additionally* eliminated by flow-sensitive provenance
    /// (kept by the syntactic rule, proven non-heap by the interval
    /// analysis).
    pub sites_eliminated_flow: usize,
    /// Sites eliminated only with interprocedural call summaries
    /// applied: the intraprocedural provenance keeps them, the
    /// summary-augmented one proves them non-heap. Zero unless
    /// [`HardenConfig::interproc`] is set.
    pub sites_eliminated_interproc: usize,
    /// Full-check sites downgraded to redzone-only because a dominating
    /// identical check subsumes them. Counts materialized downgrades
    /// only: a merged check is downgraded iff every site it covers is
    /// subsumed.
    pub sites_redundant: usize,
    /// Sites instrumented with the full (Redzone)+(LowFat) check.
    pub sites_lowfat: usize,
    /// Sites instrumented with the (Redzone)-only fallback.
    pub sites_redzone: usize,
    /// Batches (= trampolines) emitted.
    pub batches: usize,
    /// Merged checks emitted across all batches.
    pub checks: usize,
    /// Sites skipped because a planned block member no longer decodes
    /// (graceful degradation on corrupt code; zero on well-formed
    /// inputs). Rewriter-level skips are counted separately in
    /// [`RewriteStats::skipped_sites`].
    pub sites_skipped: usize,
    /// Weakly-connected CFG components the image decomposed into (the
    /// unit of analysis sharding and of incremental reuse).
    pub components: usize,
    /// Components whose analysis/planning results were served from a
    /// [`ComponentCache`] instead of being recomputed. Always zero when
    /// no cache is supplied; equal to [`Self::components`] on a fully
    /// warm incremental re-harden.
    pub components_reused: usize,
    /// Underlying rewriter statistics.
    pub rewrite: RewriteStats,
}

impl HardenStats {
    /// `true` if any site was skipped rather than hardened -- the
    /// `DegradedHarden` outcome of the fault-injection taxonomy: the
    /// output image is valid and runs, but covers fewer sites than
    /// planned. Always `false` for well-formed inputs.
    pub fn degraded(&self) -> bool {
        self.sites_skipped > 0 || self.rewrite.skipped_sites > 0
    }
}

/// Liveness-derived clobber metadata for one instrumentation payload.
///
/// The payload only saves/restores registers (and flags) that are *live*
/// at its anchor; anything dead may legitimately differ from the baseline
/// after the payload runs. The differential oracle consumes this to
/// distinguish intended dead-register clobbers from real divergence.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClobberInfo {
    /// Registers the payload may leave modified (dead at the anchor).
    pub regs: Vec<redfat_x86::Reg>,
    /// `true` if the payload may leave the arithmetic flags modified.
    pub flags: bool,
}

/// A hardened (or profiling-instrumented) binary.
pub struct Hardened {
    /// The rewritten image, a drop-in replacement for the original.
    pub image: Image,
    /// Statistics.
    pub stats: HardenStats,
    /// Clobber metadata per patched batch, keyed by anchor address.
    pub clobbers: HashMap<u64, ClobberInfo>,
}

/// Default pipeline parallelism: the `REDFAT_THREADS` environment
/// variable when set to a positive integer, else 1 (serial). The
/// conservative default keeps single-workload experiment runs serial;
/// callers wanting machine-wide parallelism use [`harden_threaded`]
/// with an explicit count.
fn default_threads() -> usize {
    std::env::var("REDFAT_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1)
}

/// Hardens `image` under `config` (paper §3/§6; production phase of §5
/// when the policy is an allow-list).
pub fn harden(image: &Image, config: &HardenConfig) -> Result<Hardened, HardenError> {
    harden_threaded(image, config, default_threads())
}

/// [`harden`] with an explicit analysis thread count. The hardened
/// image, statistics and clobber metadata are byte-for-byte identical
/// at any thread count: analysis shards along weakly-connected CFG
/// components (whose results are exact restrictions of the whole-image
/// analyses), and the merged patch plan is ordered by anchor address
/// before the single serial rewrite.
pub fn harden_threaded(
    image: &Image,
    config: &HardenConfig,
    threads: usize,
) -> Result<Hardened, HardenError> {
    instrument(
        image,
        config,
        PayloadMode::Harden,
        RewriteBases::default(),
        threads,
    )
}

/// Hardens `image` with explicit trampoline/trap-table bases, for
/// instrumenting several images into one address space (separately
/// instrumented shared objects, paper §7.4).
pub fn harden_with_bases(
    image: &Image,
    config: &HardenConfig,
    bases: RewriteBases,
) -> Result<Hardened, HardenError> {
    instrument(image, config, PayloadMode::Harden, bases, default_threads())
}

/// Builds the §5 *profiling* binary: every heap-reachable access is
/// instrumented to record whether its (LowFat) check passes, via
/// `PROFILE_EVENT`. Run it against a test suite with
/// [`crate::run_once`], then feed the collected counters to
/// [`collect_allowlist`].
pub fn instrument_profile(image: &Image) -> Result<Hardened, HardenError> {
    let bases = RewriteBases::default();
    let config = HardenConfig {
        elim: true,
        batch: false, // singleton batches: exact per-site attribution
        merge: false,
        elim_flow: false, // profile counters must cover every site
        elim_redundant: false,
        interproc: false,
        size_harden: true,
        instrument_reads: true,
        lowfat: LowFatPolicy::All,
        lowfat_only: false,
        alloc_policy: redfat_lowfat::AllocPolicyKind::default(),
    };
    instrument(
        image,
        &config,
        PayloadMode::Profile,
        bases,
        default_threads(),
    )
}

/// Builds the allow-list from profiling counters: a site is allowed iff
/// it was observed and its (LowFat) check never failed (§5's hypothesis:
/// "each memory operation is always a false positive or never a false
/// positive").
pub fn collect_allowlist(profile: &HashMap<u64, ProfileStats>) -> AllowList {
    AllowList::from_sites(
        profile
            .iter()
            .filter(|(_, s)| s.fails == 0 && s.passes > 0)
            .map(|(&site, _)| site),
    )
}

/// How one memory access is handled by the pipeline, as decided by the
/// shared classification closure. One value drives both the statistics
/// accounting and the batch/redundant site filters, so the two can
/// never disagree about a site.
#[derive(Clone, Copy, PartialEq, Eq)]
enum SiteClass {
    /// No memory access, or filtered out by the read/write policy.
    NotSite,
    /// Eliminated by the syntactic non-heap rule.
    ElimSyntactic,
    /// Additionally eliminated by flow-sensitive provenance.
    ElimFlow,
    /// Eliminated only with interprocedural call summaries applied.
    ElimInterproc,
    /// Receives instrumentation.
    Instrument,
}

/// The precomputed interprocedural tables handed to every shard:
/// per-call-site effects and per-function pure-write masks.
type SummaryTables = (HashMap<u64, CallEffect>, HashMap<u64, u16>);

/// The per-component output of the analysis + planning stages:
/// everything the serial rewrite needs, in a form that merges
/// deterministically. Opaque to callers -- it exists publicly only so
/// [`ComponentCache`] implementations can hold and hand back plans.
pub struct ComponentPlan {
    planned: Vec<(u64, BatchPayload)>,
    clobbers: Vec<(u64, ClobberInfo)>,
    stats: HardenStats,
}

/// A cache of per-CFG-component analysis/planning results, keyed by a
/// content digest over everything the component's analysis can observe
/// (instruction bytes, block structure, roots, function entries,
/// config, mode, tool version -- see [`component_key`]). Equal key
/// therefore implies equal plan, so a `get` hit may be substituted for
/// recomputation without changing the hardened output by a single
/// byte.
///
/// Implementations must be safe to call from the analysis worker
/// threads. `put` may be called concurrently for the same key with
/// equal plans; keeping either is correct.
pub trait ComponentCache: Sync {
    /// Looks up a previously published plan.
    fn get(&self, key: &Digest) -> Option<Arc<ComponentPlan>>;
    /// Publishes a freshly computed plan.
    fn put(&self, key: &Digest, plan: Arc<ComponentPlan>);
}

/// [`harden_threaded`] with a [`ComponentCache`]: per-component
/// analysis results are reused when a component's key (byte content +
/// analysis context) matches a cached entry, and newly computed
/// results are published for future runs. The output is byte-identical
/// to an uncached run; [`HardenStats::components_reused`] reports how
/// much analysis was skipped.
pub fn harden_cached(
    image: &Image,
    config: &HardenConfig,
    threads: usize,
    cache: &dyn ComponentCache,
) -> Result<Hardened, HardenError> {
    instrument_with_cache(
        image,
        config,
        PayloadMode::Harden,
        RewriteBases::default(),
        threads,
        Some(cache),
    )
}

/// The digest prefix shared by every component key of one (image,
/// config, mode) run: tool version, canonical config, payload mode,
/// and -- when interprocedural summaries are enabled -- the whole-image
/// digest. Summaries are a whole-image fixpoint handed to every shard,
/// so under `interproc` a component's plan can depend on bytes outside
/// the component; folding the image digest into the prefix keeps the
/// key sound at the cost of degrading reuse to whole-image granularity
/// for that (non-default) configuration.
fn cache_prefix(image: &Image, config: &HardenConfig, mode: PayloadMode) -> Digest {
    let mut h = Sha256::new();
    let tool = TOOL_VERSION.as_bytes();
    h.update_u64(tool.len() as u64);
    h.update(tool);
    let cfg_bytes = config.canonical_bytes();
    h.update_u64(cfg_bytes.len() as u64);
    h.update(&cfg_bytes);
    h.update(&[match mode {
        PayloadMode::Harden => 1,
        PayloadMode::Profile => 2,
    }]);
    if config.interproc {
        h.update(image_digest(image).as_bytes());
    }
    h.finalize()
}

/// The content key for one component: the run prefix plus every input
/// the shard analysis can observe -- block structure, member
/// instruction addresses and raw bytes, successor edges, opaque exits,
/// and the restrictions of the global root/leader/function-entry sets
/// to this component. A byte change anywhere in the component (or in
/// context it can see) changes the key; a change elsewhere in the
/// image leaves it untouched, which is exactly the incremental-reuse
/// granularity.
fn component_key(
    prefix: &Digest,
    disasm: &Disasm,
    image: &Image,
    sub: &Cfg,
    roots: Option<&BTreeSet<u64>>,
) -> Digest {
    let mut h = Sha256::new();
    h.update(prefix.as_bytes());
    h.update_u64(sub.blocks.len() as u64);
    for block in sub.blocks.values() {
        h.update_u64(block.start);
        h.update_u64(block.insts.len() as u64);
        let mut block_end = block.start;
        for &addr in &block.insts {
            h.update_u64(addr);
            match disasm.at(addr) {
                Some(&(_, len)) => {
                    h.update_u64(len as u64);
                    match image.read_bytes(addr, len as usize) {
                        Some(bytes) => h.update(bytes),
                        // Unreadable bytes for a decoded instruction
                        // cannot happen (decode read them); a distinct
                        // marker keeps the encoding total anyway.
                        None => h.update(&[0xFF]),
                    }
                    block_end = block_end.max(addr.saturating_add(len as u64));
                }
                // Member no longer decodes: the shard degrades to
                // skip-and-record, which the key must distinguish from
                // a decodable member.
                None => h.update_u64(u64::MAX),
            }
        }
        h.update_u64(block.succs.len() as u64);
        for &s in &block.succs {
            h.update_u64(s);
        }
        h.update(&[u8::from(block.opaque_exit)]);
        // Global leaders landing inside this block's byte span (block
        // splits seen by in-block planning).
        for &l in sub.leaders.range(block.start..block_end) {
            h.update_u64(l);
        }
        h.update_u64(u64::MAX); // leader-list terminator
    }
    // Unknown-entry roots this component's analyses can see. `None`
    // (analyses that need roots are disabled) must hash differently
    // from "enabled with no roots in this component".
    match roots {
        Some(roots) => {
            let in_comp: Vec<u64> = roots
                .iter()
                .copied()
                .filter(|&r| sub.block_of(r).is_some())
                .collect();
            h.update_u64(in_comp.len() as u64);
            for r in in_comp {
                h.update_u64(r);
            }
        }
        None => h.update_u64(u64::MAX),
    }
    // Function entries inside the component (call-boundary context for
    // the flow/redundant analyses).
    let entries: Vec<u64> = sub
        .func_entries
        .iter()
        .copied()
        .filter(|&e| sub.block_of(e).is_some())
        .collect();
    h.update_u64(entries.len() as u64);
    for e in entries {
        h.update_u64(e);
    }
    h.finalize()
}

fn instrument(
    image: &Image,
    config: &HardenConfig,
    mode: PayloadMode,
    bases: RewriteBases,
    threads: usize,
) -> Result<Hardened, HardenError> {
    instrument_with_cache(image, config, mode, bases, threads, None)
}

fn instrument_with_cache(
    image: &Image,
    config: &HardenConfig,
    mode: PayloadMode,
    bases: RewriteBases,
    threads: usize,
    cache: Option<&dyn ComponentCache>,
) -> Result<Hardened, HardenError> {
    let disasm = disassemble(image);
    let cfg = Cfg::recover(&disasm, image.entry, &[]);

    // Unknown-entry roots are an image-wide property (the any-indirect
    // escape hatch scans every instruction): computed once here, then
    // intersected with each shard's blocks by the scoped analyses.
    let need_roots = config.elim_flow || (config.elim_redundant && mode == PayloadMode::Harden);
    let roots = need_roots.then(|| unknown_entries(&disasm, &cfg, image.entry));

    // Interprocedural summaries are a whole-image fixpoint (call edges
    // cross component boundaries by construction), so they are computed
    // once here -- serially, for determinism -- and handed to every
    // shard. With the knob off, shards behave exactly as before.
    let summaries: Option<SummaryTables> = (config.interproc && config.elim_flow && need_roots)
        .then(|| {
            // Safety of the expect: this closure only runs when
            // `need_roots` held above, which is exactly when `roots`
            // was populated.
            #[allow(clippy::expect_used)]
            let roots = roots.as_ref().expect("roots computed");
            let sums = Summaries::compute(&disasm, &cfg, roots);
            (sums.call_effects(), sums.pure_write_masks())
        });

    // Shard along weakly-connected CFG components (≈ functions): no
    // edge crosses a shard, so every per-shard analysis result is the
    // exact restriction of its whole-image counterpart, and the shard
    // granularity -- not the thread count -- determines the output.
    // With a cache, each component is first looked up by content key;
    // a hit substitutes the cached plan for recomputation (same plan by
    // the key's soundness argument), a miss computes and publishes.
    let prefix = cache.map(|_| cache_prefix(image, config, mode));
    let shards: Vec<(Arc<ComponentPlan>, bool)> = parallel_map(cfg.components(), threads, |sub| {
        let key = prefix
            .as_ref()
            .map(|p| component_key(p, &disasm, image, sub, roots.as_ref()));
        if let (Some(cache), Some(key)) = (cache, key.as_ref()) {
            if let Some(plan) = cache.get(key) {
                return (plan, true);
            }
        }
        let plan = Arc::new(instrument_shard(
            &disasm,
            sub,
            config,
            mode,
            roots.as_ref(),
            summaries.as_ref(),
        ));
        if let (Some(cache), Some(key)) = (cache, key.as_ref()) {
            cache.put(key, plan.clone());
        }
        (plan, false)
    });

    // Deterministic merge: shards arrive in component order; anchors
    // are globally unique, so the final sort is a total order.
    let mut stats = HardenStats::default();
    let mut clobbers: HashMap<u64, ClobberInfo> = HashMap::new();
    let mut planned: Vec<(u64, BatchPayload)> = Vec::new();
    for (shard, reused) in shards {
        stats.components += 1;
        stats.components_reused += reused as usize;
        stats.sites_considered += shard.stats.sites_considered;
        stats.sites_eliminated += shard.stats.sites_eliminated;
        stats.sites_eliminated_flow += shard.stats.sites_eliminated_flow;
        stats.sites_eliminated_interproc += shard.stats.sites_eliminated_interproc;
        stats.sites_redundant += shard.stats.sites_redundant;
        stats.sites_lowfat += shard.stats.sites_lowfat;
        stats.sites_redzone += shard.stats.sites_redzone;
        stats.checks += shard.stats.checks;
        stats.sites_skipped += shard.stats.sites_skipped;
        clobbers.extend(shard.clobbers.iter().cloned());
        planned.extend(shard.planned.iter().cloned());
    }
    planned.sort_by_key(|(anchor, _)| *anchor);
    stats.batches = planned.len();

    // Instructions in no recovered block belong to no shard; they are
    // never instrumented (batches only cover block members) but still
    // count toward the classification statistics. Flow facts are `None`
    // for them, so flow elimination never applies.
    for (addr, inst, _) in disasm.iter() {
        if cfg.block_of(addr).is_some() {
            continue;
        }
        if let Some(mem) = inst.memory_access() {
            if !config.instrument_reads && !inst.writes_memory() {
                continue;
            }
            stats.sites_considered += 1;
            if config.elim && !can_reach_heap(&mem) {
                stats.sites_eliminated += 1;
            }
        }
    }

    let patches: Vec<Patch> = planned
        .iter()
        .map(|(anchor, payload)| Patch {
            anchor: *anchor,
            payload: Box::new(move |a: &mut redfat_x86::Asm| payload.emit(a)),
        })
        .collect();

    let out = rewrite_with_bases(image, &disasm, &cfg, patches, bases)?;
    stats.rewrite = out.stats;
    Ok(Hardened {
        image: out.image,
        stats,
        clobbers,
    })
}

/// Runs analysis and batch/payload planning for one CFG component.
/// `cfg` is a sub-`Cfg` from [`Cfg::components`]; all queries stay
/// inside its blocks, so the results equal the whole-image pipeline's
/// restricted to this component.
fn instrument_shard(
    disasm: &Disasm,
    cfg: &Cfg,
    config: &HardenConfig,
    mode: PayloadMode,
    roots: Option<&BTreeSet<u64>>,
    summaries: Option<&SummaryTables>,
) -> ComponentPlan {
    let liveness = Liveness::compute(disasm, cfg);
    let mut stats = HardenStats::default();

    // Flow-sensitive provenance (when enabled), with callee effects
    // applied at direct call sites when interprocedural summaries are
    // on.
    let prov = config.elim_flow.then(|| {
        // Safety of the expect: the caller computes roots exactly when
        // `elim_flow || (elim_redundant && mode == Harden)` holds, and
        // this closure runs only under `elim_flow`.
        #[allow(clippy::expect_used)]
        let roots = roots.expect("roots precomputed");
        match summaries {
            Some((effects, _)) => {
                Provenance::compute_with_roots_and_effects(disasm, cfg, roots, effects.clone())
            }
            None => Provenance::compute_with_roots(disasm, cfg, roots),
        }
    });
    // The plain (summary-free) provenance, used only to attribute an
    // elimination to the interprocedural tier in the statistics. The
    // summary-augmented analysis eliminates a superset of the plain
    // one's sites, so the filter itself only consults `prov`.
    let prov_base = (config.elim_flow && summaries.is_some()).then(|| {
        // Safety of the expect: same `elim_flow` guard as `prov` above.
        #[allow(clippy::expect_used)]
        let roots = roots.expect("roots precomputed");
        Provenance::compute_with_roots(disasm, cfg, roots)
    });

    // The shared classification: read/write policy + (optionally)
    // syntactic and flow-sensitive check elimination.
    let classify = |addr: u64, inst: &Inst| {
        let Some(mem) = inst.memory_access() else {
            return SiteClass::NotSite;
        };
        if !config.instrument_reads && !inst.writes_memory() {
            return SiteClass::NotSite;
        }
        if config.elim && !can_reach_heap(&mem) {
            return SiteClass::ElimSyntactic;
        }
        if let Some(p) = &prov {
            if !p.site_can_reach_heap(disasm, cfg, addr, inst) {
                return match &prov_base {
                    Some(base) if base.site_can_reach_heap(disasm, cfg, addr, inst) => {
                        SiteClass::ElimInterproc
                    }
                    _ => SiteClass::ElimFlow,
                };
            }
        }
        SiteClass::Instrument
    };
    let filter = |addr: u64, inst: &Inst| classify(addr, inst) == SiteClass::Instrument;

    // Which sites the LowFat policy grants a *full* check.
    let allowed = |site: u64| match (&config.lowfat, mode) {
        (_, PayloadMode::Profile) => true,
        (LowFatPolicy::Disabled, _) => false,
        (LowFatPolicy::All, _) => true,
        (LowFatPolicy::AllowList(l), _) => l.contains(site),
    };

    // Redundant-check elimination: full checks subsumed by a dominating
    // identical full check are downgraded to redzone-only. The gen
    // predicate must be exactly "this site carries a full check", i.e.
    // the pipeline filter composed with the policy.
    let redundant = if config.elim_redundant && mode == PayloadMode::Harden {
        let pure_masks = summaries.map(|(_, m)| m.clone()).unwrap_or_default();
        // Safety of the expect: this branch is the other disjunct of
        // the caller's roots-computation condition.
        #[allow(clippy::expect_used)]
        let roots = roots.expect("roots precomputed");
        Some(RedundantChecks::compute_with_roots_and_masks(
            disasm,
            cfg,
            roots,
            |a, i| filter(a, i) && allowed(a),
            pure_masks,
        ))
    } else {
        None
    };
    // A site may be downgraded only when its root keeps its full check
    // (roots are non-redundant by construction, but an allow-list could
    // still withhold the root's LowFat component).
    let downgraded = |site: u64| {
        redundant
            .as_ref()
            .and_then(|r| r.root_of(site))
            .is_some_and(&allowed)
    };

    // Classification statistics for this shard's instructions.
    for block in cfg.blocks.values() {
        for &addr in &block.insts {
            // A block member that no longer decodes (corrupt input)
            // degrades to skip-and-record instead of aborting the
            // harden.
            let Some((inst, _)) = disasm.at(addr) else {
                stats.sites_skipped += 1;
                continue;
            };
            match classify(addr, inst) {
                SiteClass::NotSite => continue,
                SiteClass::ElimSyntactic => stats.sites_eliminated += 1,
                SiteClass::ElimFlow => stats.sites_eliminated_flow += 1,
                SiteClass::ElimInterproc => stats.sites_eliminated_interproc += 1,
                SiteClass::Instrument => {}
            }
            stats.sites_considered += 1;
        }
    }

    let batching = config.batch && mode == PayloadMode::Harden;
    let batches = plan_batches(disasm, cfg, batching, filter);

    // Build payloads; split any batch whose operand registers starve the
    // scratch allocator (extremely rare; singletons always succeed).
    let mut clobbers: Vec<(u64, ClobberInfo)> = Vec::new();
    let mut planned: Vec<(u64, BatchPayload)> = Vec::new();
    let mut queue: Vec<Batch> = batches;
    let mut qi = 0;
    while qi < queue.len() {
        let batch = queue[qi].clone();
        qi += 1;

        // Partition members by policy so merging never mixes policies.
        let (lf_members, rz_members): (Vec<u64>, Vec<u64>) =
            batch.members.iter().partition(|&&m| allowed(m));
        let mut specs: Vec<CheckSpec> = Vec::new();
        let mut batch_redundant = 0usize;
        // Redundant-check downgrades apply at merged-check granularity:
        // a check becomes redzone-only iff *every* site it covers is
        // subsumed by a dominating identical check. Downgrading a single
        // member would split its merge group and emit an extra check,
        // costing more than the downgrade saves.
        if !lf_members.is_empty() {
            let sub = Batch {
                anchor: batch.anchor,
                members: lf_members,
            };
            for check in merge_checks(disasm, &sub, config.merge) {
                let lowfat = !check.sites.iter().all(|&s| downgraded(s));
                if !lowfat {
                    batch_redundant += check.sites.len();
                }
                specs.push(CheckSpec { check, lowfat });
            }
        }
        if !rz_members.is_empty() {
            let sub = Batch {
                anchor: batch.anchor,
                members: rz_members,
            };
            for check in merge_checks(disasm, &sub, config.merge) {
                specs.push(CheckSpec {
                    check,
                    lowfat: false,
                });
            }
        }
        if specs.is_empty() {
            continue;
        }

        let dead = liveness.dead_regs_before(batch.anchor);
        let flags_dead = liveness.flags_dead_before(batch.anchor);
        let n_specs = specs.len();
        let site_counts: Vec<(usize, bool)> = specs
            .iter()
            .map(|s| (s.check.sites.len(), s.lowfat))
            .collect();
        match BatchPayload::plan(
            specs,
            &dead,
            flags_dead,
            config.size_harden,
            config.lowfat_only,
            mode,
        ) {
            Some(p) => {
                stats.checks += n_specs;
                stats.sites_redundant += batch_redundant;
                for (n, lowfat) in site_counts {
                    if lowfat {
                        stats.sites_lowfat += n;
                    } else {
                        stats.sites_redzone += n;
                    }
                }
                clobbers.push((
                    batch.anchor,
                    ClobberInfo {
                        regs: p.clobbers.clone(),
                        flags: !p.save_flags,
                    },
                ));
                planned.push((batch.anchor, p));
            }
            None => {
                // Scratch starvation: fall back to singleton batches.
                for &m in &batch.members {
                    queue.push(Batch {
                        anchor: m,
                        members: vec![m],
                    });
                }
            }
        }
    }

    ComponentPlan {
        planned,
        clobbers,
        stats,
    }
}
