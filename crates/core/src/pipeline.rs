//! The hardening pipeline: disassemble → CFG → batches → checks →
//! trampoline rewrite, plus the §5 two-phase profiling workflow.

use crate::allowlist::AllowList;
use crate::checks::{BatchPayload, CheckSpec, PayloadMode};
use crate::config::{HardenConfig, LowFatPolicy};
use redfat_analysis::{can_reach_heap, Provenance, RedundantChecks};
use redfat_analysis::{disassemble, merge_checks, plan_batches, Batch, Cfg, Liveness};
use redfat_elf::Image;
use redfat_emu::ProfileStats;
use redfat_rewriter::{rewrite_with_bases, Patch, RewriteBases, RewriteError, RewriteStats};
use redfat_x86::Inst;
use std::collections::HashMap;

/// A hardening failure.
#[derive(Debug)]
pub enum HardenError {
    /// The underlying rewrite failed.
    Rewrite(RewriteError),
}

impl std::fmt::Display for HardenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HardenError::Rewrite(e) => write!(f, "rewrite failed: {e}"),
        }
    }
}

impl std::error::Error for HardenError {}

impl From<RewriteError> for HardenError {
    fn from(e: RewriteError) -> HardenError {
        HardenError::Rewrite(e)
    }
}

/// Instrumentation statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HardenStats {
    /// Memory-access instructions considered (post read/write filter).
    pub sites_considered: usize,
    /// Sites whose checks were eliminated by the syntactic rule
    /// (provably non-heap operand shape).
    pub sites_eliminated: usize,
    /// Sites *additionally* eliminated by flow-sensitive provenance
    /// (kept by the syntactic rule, proven non-heap by the interval
    /// analysis).
    pub sites_eliminated_flow: usize,
    /// Full-check sites downgraded to redzone-only because a dominating
    /// identical check subsumes them. Counts materialized downgrades
    /// only: a merged check is downgraded iff every site it covers is
    /// subsumed.
    pub sites_redundant: usize,
    /// Sites instrumented with the full (Redzone)+(LowFat) check.
    pub sites_lowfat: usize,
    /// Sites instrumented with the (Redzone)-only fallback.
    pub sites_redzone: usize,
    /// Batches (= trampolines) emitted.
    pub batches: usize,
    /// Merged checks emitted across all batches.
    pub checks: usize,
    /// Underlying rewriter statistics.
    pub rewrite: RewriteStats,
}

/// Liveness-derived clobber metadata for one instrumentation payload.
///
/// The payload only saves/restores registers (and flags) that are *live*
/// at its anchor; anything dead may legitimately differ from the baseline
/// after the payload runs. The differential oracle consumes this to
/// distinguish intended dead-register clobbers from real divergence.
#[derive(Debug, Clone, Default)]
pub struct ClobberInfo {
    /// Registers the payload may leave modified (dead at the anchor).
    pub regs: Vec<redfat_x86::Reg>,
    /// `true` if the payload may leave the arithmetic flags modified.
    pub flags: bool,
}

/// A hardened (or profiling-instrumented) binary.
pub struct Hardened {
    /// The rewritten image, a drop-in replacement for the original.
    pub image: Image,
    /// Statistics.
    pub stats: HardenStats,
    /// Clobber metadata per patched batch, keyed by anchor address.
    pub clobbers: HashMap<u64, ClobberInfo>,
}

/// Hardens `image` under `config` (paper §3/§6; production phase of §5
/// when the policy is an allow-list).
pub fn harden(image: &Image, config: &HardenConfig) -> Result<Hardened, HardenError> {
    instrument(image, config, PayloadMode::Harden, RewriteBases::default())
}

/// Hardens `image` with explicit trampoline/trap-table bases, for
/// instrumenting several images into one address space (separately
/// instrumented shared objects, paper §7.4).
pub fn harden_with_bases(
    image: &Image,
    config: &HardenConfig,
    bases: RewriteBases,
) -> Result<Hardened, HardenError> {
    instrument(image, config, PayloadMode::Harden, bases)
}

/// Builds the §5 *profiling* binary: every heap-reachable access is
/// instrumented to record whether its (LowFat) check passes, via
/// `PROFILE_EVENT`. Run it against a test suite with
/// [`crate::run_once`], then feed the collected counters to
/// [`collect_allowlist`].
pub fn instrument_profile(image: &Image) -> Result<Hardened, HardenError> {
    let bases = RewriteBases::default();
    let config = HardenConfig {
        elim: true,
        batch: false, // singleton batches: exact per-site attribution
        merge: false,
        elim_flow: false, // profile counters must cover every site
        elim_redundant: false,
        size_harden: true,
        instrument_reads: true,
        lowfat: LowFatPolicy::All,
        lowfat_only: false,
    };
    instrument(image, &config, PayloadMode::Profile, bases)
}

/// Builds the allow-list from profiling counters: a site is allowed iff
/// it was observed and its (LowFat) check never failed (§5's hypothesis:
/// "each memory operation is always a false positive or never a false
/// positive").
pub fn collect_allowlist(profile: &HashMap<u64, ProfileStats>) -> AllowList {
    AllowList::from_sites(
        profile
            .iter()
            .filter(|(_, s)| s.fails == 0 && s.passes > 0)
            .map(|(&site, _)| site),
    )
}

fn instrument(
    image: &Image,
    config: &HardenConfig,
    mode: PayloadMode,
    bases: RewriteBases,
) -> Result<Hardened, HardenError> {
    let disasm = disassemble(image);
    let cfg = Cfg::recover(&disasm, image.entry, &[]);
    let liveness = Liveness::compute(&disasm, &cfg);

    let mut stats = HardenStats::default();

    // Flow-sensitive provenance (computed once per image when enabled).
    let prov = if config.elim_flow {
        Some(Provenance::compute(&disasm, &cfg, image.entry))
    } else {
        None
    };

    // Site filter: read/write policy + (optionally) syntactic and
    // flow-sensitive check elimination.
    let filter = |addr: u64, inst: &Inst| {
        let Some(mem) = inst.memory_access() else {
            return false;
        };
        if !config.instrument_reads && !inst.writes_memory() {
            return false;
        }
        if config.elim && !can_reach_heap(&mem) {
            return false;
        }
        if let Some(p) = &prov {
            if !p.site_can_reach_heap(&disasm, &cfg, addr, inst) {
                return false;
            }
        }
        true
    };

    // Which sites the LowFat policy grants a *full* check.
    let allowed = |site: u64| match (&config.lowfat, mode) {
        (_, PayloadMode::Profile) => true,
        (LowFatPolicy::Disabled, _) => false,
        (LowFatPolicy::All, _) => true,
        (LowFatPolicy::AllowList(l), _) => l.contains(site),
    };

    // Redundant-check elimination: full checks subsumed by a dominating
    // identical full check are downgraded to redzone-only. The gen
    // predicate must be exactly "this site carries a full check", i.e.
    // the pipeline filter composed with the policy.
    let redundant = if config.elim_redundant && mode == PayloadMode::Harden {
        Some(RedundantChecks::compute(
            &disasm,
            &cfg,
            image.entry,
            |a, i| filter(a, i) && allowed(a),
        ))
    } else {
        None
    };
    // A site may be downgraded only when its root keeps its full check
    // (roots are non-redundant by construction, but an allow-list could
    // still withhold the root's LowFat component).
    let downgraded = |site: u64| {
        redundant
            .as_ref()
            .and_then(|r| r.root_of(site))
            .is_some_and(&allowed)
    };

    // Count considered/eliminated/redundant for statistics (independent
    // of filter composition order).
    for (addr, inst, _) in disasm.iter() {
        if let Some(mem) = inst.memory_access() {
            if !config.instrument_reads && !inst.writes_memory() {
                continue;
            }
            stats.sites_considered += 1;
            if config.elim && !can_reach_heap(&mem) {
                stats.sites_eliminated += 1;
            } else if let Some(p) = &prov {
                if !p.site_can_reach_heap(&disasm, &cfg, addr, inst) {
                    stats.sites_eliminated_flow += 1;
                }
            }
        }
    }

    let batching = config.batch && mode == PayloadMode::Harden;
    let batches = plan_batches(&disasm, &cfg, batching, filter);

    // Build payloads; split any batch whose operand registers starve the
    // scratch allocator (extremely rare; singletons always succeed).
    let mut clobbers: HashMap<u64, ClobberInfo> = HashMap::new();
    let mut planned: Vec<(u64, BatchPayload)> = Vec::new();
    let mut queue: Vec<Batch> = batches;
    let mut qi = 0;
    while qi < queue.len() {
        let batch = queue[qi].clone();
        qi += 1;

        // Partition members by policy so merging never mixes policies.
        let (lf_members, rz_members): (Vec<u64>, Vec<u64>) =
            batch.members.iter().partition(|&&m| allowed(m));
        let mut specs: Vec<CheckSpec> = Vec::new();
        let mut batch_redundant = 0usize;
        // Redundant-check downgrades apply at merged-check granularity:
        // a check becomes redzone-only iff *every* site it covers is
        // subsumed by a dominating identical check. Downgrading a single
        // member would split its merge group and emit an extra check,
        // costing more than the downgrade saves.
        if !lf_members.is_empty() {
            let sub = Batch {
                anchor: batch.anchor,
                members: lf_members,
            };
            for check in merge_checks(&disasm, &sub, config.merge) {
                let lowfat = !check.sites.iter().all(|&s| downgraded(s));
                if !lowfat {
                    batch_redundant += check.sites.len();
                }
                specs.push(CheckSpec { check, lowfat });
            }
        }
        if !rz_members.is_empty() {
            let sub = Batch {
                anchor: batch.anchor,
                members: rz_members,
            };
            for check in merge_checks(&disasm, &sub, config.merge) {
                specs.push(CheckSpec {
                    check,
                    lowfat: false,
                });
            }
        }
        if specs.is_empty() {
            continue;
        }

        let dead = liveness.dead_regs_before(batch.anchor);
        let flags_dead = liveness.flags_dead_before(batch.anchor);
        let n_specs = specs.len();
        let site_counts: Vec<(usize, bool)> = specs
            .iter()
            .map(|s| (s.check.sites.len(), s.lowfat))
            .collect();
        match BatchPayload::plan(
            specs,
            &dead,
            flags_dead,
            config.size_harden,
            config.lowfat_only,
            mode,
        ) {
            Some(p) => {
                stats.checks += n_specs;
                stats.sites_redundant += batch_redundant;
                for (n, lowfat) in site_counts {
                    if lowfat {
                        stats.sites_lowfat += n;
                    } else {
                        stats.sites_redzone += n;
                    }
                }
                clobbers.insert(
                    batch.anchor,
                    ClobberInfo {
                        regs: p.clobbers.clone(),
                        flags: !p.save_flags,
                    },
                );
                planned.push((batch.anchor, p));
            }
            None => {
                // Scratch starvation: fall back to singleton batches.
                for &m in &batch.members {
                    queue.push(Batch {
                        anchor: m,
                        members: vec![m],
                    });
                }
            }
        }
    }
    planned.sort_by_key(|(anchor, _)| *anchor);
    stats.batches = planned.len();

    let patches: Vec<Patch> = planned
        .iter()
        .map(|(anchor, payload)| Patch {
            anchor: *anchor,
            payload: Box::new(move |a: &mut redfat_x86::Asm| payload.emit(a)),
        })
        .collect();

    let out = rewrite_with_bases(image, &disasm, &cfg, patches, bases)?;
    stats.rewrite = out.stats;
    Ok(Hardened {
        image: out.image,
        stats,
        clobbers,
    })
}
