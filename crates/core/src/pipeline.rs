//! The hardening pipeline: disassemble → CFG → batches → checks →
//! trampoline rewrite, plus the §5 two-phase profiling workflow.

use crate::allowlist::AllowList;
use crate::checks::{BatchPayload, CheckSpec, PayloadMode};
use crate::config::{HardenConfig, LowFatPolicy};
use redfat_analysis::{disassemble, merge_checks, plan_batches, Batch, Cfg, Liveness};
use redfat_analysis::can_reach_heap;
use redfat_elf::Image;
use redfat_emu::ProfileStats;
use redfat_rewriter::{rewrite_with_bases, Patch, RewriteBases, RewriteError, RewriteStats};
use redfat_x86::Inst;
use std::collections::HashMap;

/// A hardening failure.
#[derive(Debug)]
pub enum HardenError {
    /// The underlying rewrite failed.
    Rewrite(RewriteError),
}

impl std::fmt::Display for HardenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HardenError::Rewrite(e) => write!(f, "rewrite failed: {e}"),
        }
    }
}

impl std::error::Error for HardenError {}

impl From<RewriteError> for HardenError {
    fn from(e: RewriteError) -> HardenError {
        HardenError::Rewrite(e)
    }
}

/// Instrumentation statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HardenStats {
    /// Memory-access instructions considered (post read/write filter).
    pub sites_considered: usize,
    /// Sites whose checks were eliminated (provably non-heap).
    pub sites_eliminated: usize,
    /// Sites instrumented with the full (Redzone)+(LowFat) check.
    pub sites_lowfat: usize,
    /// Sites instrumented with the (Redzone)-only fallback.
    pub sites_redzone: usize,
    /// Batches (= trampolines) emitted.
    pub batches: usize,
    /// Merged checks emitted across all batches.
    pub checks: usize,
    /// Underlying rewriter statistics.
    pub rewrite: RewriteStats,
}

/// A hardened (or profiling-instrumented) binary.
pub struct Hardened {
    /// The rewritten image, a drop-in replacement for the original.
    pub image: Image,
    /// Statistics.
    pub stats: HardenStats,
}

/// Hardens `image` under `config` (paper §3/§6; production phase of §5
/// when the policy is an allow-list).
pub fn harden(image: &Image, config: &HardenConfig) -> Result<Hardened, HardenError> {
    instrument(image, config, PayloadMode::Harden, RewriteBases::default())
}

/// Hardens `image` with explicit trampoline/trap-table bases, for
/// instrumenting several images into one address space (separately
/// instrumented shared objects, paper §7.4).
pub fn harden_with_bases(
    image: &Image,
    config: &HardenConfig,
    bases: RewriteBases,
) -> Result<Hardened, HardenError> {
    instrument(image, config, PayloadMode::Harden, bases)
}

/// Builds the §5 *profiling* binary: every heap-reachable access is
/// instrumented to record whether its (LowFat) check passes, via
/// `PROFILE_EVENT`. Run it against a test suite with
/// [`crate::run_once`], then feed the collected counters to
/// [`collect_allowlist`].
pub fn instrument_profile(image: &Image) -> Result<Hardened, HardenError> {
    let bases = RewriteBases::default();
    let config = HardenConfig {
        elim: true,
        batch: false, // singleton batches: exact per-site attribution
        merge: false,
        size_harden: true,
        instrument_reads: true,
        lowfat: LowFatPolicy::All,
        lowfat_only: false,
    };
    instrument(image, &config, PayloadMode::Profile, bases)
}

/// Builds the allow-list from profiling counters: a site is allowed iff
/// it was observed and its (LowFat) check never failed (§5's hypothesis:
/// "each memory operation is always a false positive or never a false
/// positive").
pub fn collect_allowlist(profile: &HashMap<u64, ProfileStats>) -> AllowList {
    AllowList::from_sites(
        profile
            .iter()
            .filter(|(_, s)| s.fails == 0 && s.passes > 0)
            .map(|(&site, _)| site),
    )
}

fn instrument(
    image: &Image,
    config: &HardenConfig,
    mode: PayloadMode,
    bases: RewriteBases,
) -> Result<Hardened, HardenError> {
    let disasm = disassemble(image);
    let cfg = Cfg::recover(&disasm, image.entry, &[]);
    let liveness = Liveness::compute(&disasm, &cfg);

    let mut stats = HardenStats::default();

    // Site filter: read/write policy + (optionally) check elimination.
    let filter = |_: u64, inst: &Inst| {
        let Some(mem) = inst.memory_access() else {
            return false;
        };
        if !config.instrument_reads && !inst.writes_memory() {
            return false;
        }
        if config.elim && !can_reach_heap(&mem) {
            return false;
        }
        true
    };

    // Count considered/eliminated for statistics (independent of filter
    // composition order).
    for (_, inst, _) in disasm.iter() {
        if let Some(mem) = inst.memory_access() {
            if !config.instrument_reads && !inst.writes_memory() {
                continue;
            }
            stats.sites_considered += 1;
            if config.elim && !can_reach_heap(&mem) {
                stats.sites_eliminated += 1;
            }
        }
    }

    let batching = config.batch && mode == PayloadMode::Harden;
    let batches = plan_batches(&disasm, &cfg, batching, filter);

    // Build payloads; split any batch whose operand registers starve the
    // scratch allocator (extremely rare; singletons always succeed).
    let mut planned: Vec<(u64, BatchPayload)> = Vec::new();
    let mut queue: Vec<Batch> = batches;
    let mut qi = 0;
    while qi < queue.len() {
        let batch = queue[qi].clone();
        qi += 1;

        let allowed = |site: u64| match (&config.lowfat, mode) {
            (_, PayloadMode::Profile) => true,
            (LowFatPolicy::Disabled, _) => false,
            (LowFatPolicy::All, _) => true,
            (LowFatPolicy::AllowList(l), _) => l.contains(site),
        };

        // Partition members by policy so merging never mixes policies.
        let (lf_members, rz_members): (Vec<u64>, Vec<u64>) =
            batch.members.iter().partition(|&&m| allowed(m));
        let mut specs: Vec<CheckSpec> = Vec::new();
        for (members, lowfat) in [(lf_members, true), (rz_members, false)] {
            if members.is_empty() {
                continue;
            }
            let sub = Batch {
                anchor: batch.anchor,
                members,
            };
            for check in merge_checks(&disasm, &sub, config.merge) {
                specs.push(CheckSpec { check, lowfat });
            }
        }
        if specs.is_empty() {
            continue;
        }

        let dead = liveness.dead_regs_before(batch.anchor);
        let flags_dead = liveness.flags_dead_before(batch.anchor);
        let n_specs = specs.len();
        let site_counts: Vec<(usize, bool)> = specs
            .iter()
            .map(|s| (s.check.sites.len(), s.lowfat))
            .collect();
        match BatchPayload::plan(specs, &dead, flags_dead, config.size_harden, config.lowfat_only, mode) {
            Some(p) => {
                stats.checks += n_specs;
                for (n, lowfat) in site_counts {
                    if lowfat {
                        stats.sites_lowfat += n;
                    } else {
                        stats.sites_redzone += n;
                    }
                }
                planned.push((batch.anchor, p));
            }
            None => {
                // Scratch starvation: fall back to singleton batches.
                for &m in &batch.members {
                    queue.push(Batch {
                        anchor: m,
                        members: vec![m],
                    });
                }
            }
        }
    }
    planned.sort_by_key(|(anchor, _)| *anchor);
    stats.batches = planned.len();

    let patches: Vec<Patch> = planned
        .iter()
        .map(|(anchor, payload)| Patch {
            anchor: *anchor,
            payload: Box::new(move |a: &mut redfat_x86::Asm| payload.emit(a)),
        })
        .collect();

    let out = rewrite_with_bases(image, &disasm, &cfg, patches, bases)?;
    stats.rewrite = out.stats;
    Ok(Hardened {
        image: out.image,
        stats,
    })
}
