//! Hardening configuration: the knobs of Table 1.

use crate::allowlist::AllowList;

/// Which memory operations receive the full (Redzone)+(LowFat) check, as
/// opposed to the (Redzone)-only fallback (paper §3, "opportunistic
/// hardening").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LowFatPolicy {
    /// Never use the LowFat component: (Redzone)-only everywhere. This is
    /// the methodology of redzone-only state-of-the-art tools.
    Disabled,
    /// Full (Redzone)+(LowFat) on every instrumented site, risking false
    /// positives on intentional out-of-bounds pointers (paper §7.1,
    /// "false positives" experiment).
    All,
    /// Full check only on allow-listed sites; (Redzone)-only elsewhere.
    /// The production configuration of the §5 workflow.
    AllowList(AllowList),
}

/// Hardening configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HardenConfig {
    /// Check elimination (§6): skip operands that provably cannot reach
    /// the heap.
    pub elim: bool,
    /// Check batching (§6): one trampoline per reorderable group.
    pub batch: bool,
    /// Check merging (§6): one range check per operand shape in a batch.
    pub merge: bool,
    /// Flow-sensitive check elimination: interval provenance analysis
    /// proving per-site that the address cannot reach the heap -- a
    /// strict superset of the syntactic `elim` rule. Requires `elim`.
    pub elim_flow: bool,
    /// Dominator-based redundant-check elimination: a full check
    /// subsumed by an identical dominating check is downgraded to
    /// redzone-only. Requires `elim_flow`.
    pub elim_redundant: bool,
    /// Interprocedural summaries: per-function call effects (at-return
    /// register facts, may-write masks, heap purity) threaded into the
    /// flow and redundant passes at direct call sites. Off by default;
    /// when disabled the hardened output is byte-identical to the
    /// intraprocedural pipeline. Requires `elim_flow`.
    pub interproc: bool,
    /// Metadata hardening (§4.2): validate `SIZE` against the immutable
    /// class size. Disabled by the `-size` column.
    pub size_harden: bool,
    /// Instrument reads as well as writes. Disabled by the `-reads`
    /// column (write-only hardening).
    pub instrument_reads: bool,
    /// The LowFat component policy.
    pub lowfat: LowFatPolicy,
    /// Ablation: emit the *pure* (LowFat) check of §2.1 -- class-size
    /// bounds from the base register only, no redzone fallback, no
    /// metadata -- instead of the combined Figure 4 check. Used by the
    /// complementarity experiment; never set in production.
    pub lowfat_only: bool,
}

impl HardenConfig {
    /// Table 1 "unoptimized": no optimizations, full checks everywhere
    /// the policy allows.
    pub fn unoptimized(lowfat: LowFatPolicy) -> HardenConfig {
        HardenConfig {
            elim: false,
            batch: false,
            merge: false,
            elim_flow: false,
            elim_redundant: false,
            interproc: false,
            size_harden: true,
            instrument_reads: true,
            lowfat,
            lowfat_only: false,
        }
    }

    /// Table 1 "+elim".
    pub fn with_elim(lowfat: LowFatPolicy) -> HardenConfig {
        HardenConfig {
            elim: true,
            ..HardenConfig::unoptimized(lowfat)
        }
    }

    /// Table 1 "+batch".
    pub fn with_batch(lowfat: LowFatPolicy) -> HardenConfig {
        HardenConfig {
            batch: true,
            ..HardenConfig::with_elim(lowfat)
        }
    }

    /// Table 1 "+merge" (fully optimized).
    pub fn with_merge(lowfat: LowFatPolicy) -> HardenConfig {
        HardenConfig {
            merge: true,
            ..HardenConfig::with_batch(lowfat)
        }
    }

    /// Table 1 "+flow": flow-sensitive provenance elimination on top of
    /// the syntactic optimizations.
    pub fn with_flow(lowfat: LowFatPolicy) -> HardenConfig {
        HardenConfig {
            elim_flow: true,
            ..HardenConfig::with_merge(lowfat)
        }
    }

    /// Table 1 "+redund" (fully optimized): dominator-based
    /// redundant-check elimination on top of "+flow".
    pub fn with_redundant(lowfat: LowFatPolicy) -> HardenConfig {
        HardenConfig {
            elim_redundant: true,
            ..HardenConfig::with_flow(lowfat)
        }
    }

    /// Table 1 "+interproc": interprocedural call summaries on top of
    /// "+redund".
    pub fn with_interproc(lowfat: LowFatPolicy) -> HardenConfig {
        HardenConfig {
            interproc: true,
            ..HardenConfig::with_redundant(lowfat)
        }
    }

    /// Table 1 "-size": fully optimized minus metadata hardening. The
    /// configuration that most closely matches Valgrind Memcheck's
    /// feature set.
    pub fn minus_size(lowfat: LowFatPolicy) -> HardenConfig {
        HardenConfig {
            size_harden: false,
            ..HardenConfig::with_redundant(lowfat)
        }
    }

    /// Table 1 "-reads": write-only hardening, the cheapest production
    /// configuration.
    pub fn minus_reads(lowfat: LowFatPolicy) -> HardenConfig {
        HardenConfig {
            instrument_reads: false,
            ..HardenConfig::minus_size(lowfat)
        }
    }

    /// Ablation: the pure low-fat-pointer methodology of §2.1, without
    /// the redzone component (detects non-incremental skips; misses
    /// use-after-free, redzone hits and padding overflows).
    pub fn lowfat_only() -> HardenConfig {
        HardenConfig {
            lowfat_only: true,
            ..HardenConfig::with_merge(LowFatPolicy::All)
        }
    }
}

impl Default for HardenConfig {
    /// Fully optimized with full LowFat coverage (callers wanting the
    /// production workflow substitute an allow-list policy).
    fn default() -> HardenConfig {
        HardenConfig::with_redundant(LowFatPolicy::All)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_form_a_ladder() {
        let u = HardenConfig::unoptimized(LowFatPolicy::All);
        assert!(!u.elim && !u.batch && !u.merge);
        let e = HardenConfig::with_elim(LowFatPolicy::All);
        assert!(e.elim && !e.batch);
        let b = HardenConfig::with_batch(LowFatPolicy::All);
        assert!(b.elim && b.batch && !b.merge);
        let m = HardenConfig::with_merge(LowFatPolicy::All);
        assert!(m.elim && m.batch && m.merge && m.size_harden && m.instrument_reads);
        assert!(!m.elim_flow && !m.elim_redundant);
        let f = HardenConfig::with_flow(LowFatPolicy::All);
        assert!(f.merge && f.elim_flow && !f.elim_redundant);
        let d = HardenConfig::with_redundant(LowFatPolicy::All);
        assert!(d.elim_flow && d.elim_redundant && d.size_harden);
        assert!(!d.interproc, "interproc is off throughout the base ladder");
        let i = HardenConfig::with_interproc(LowFatPolicy::All);
        assert!(i.elim_flow && i.elim_redundant && i.interproc);
        let s = HardenConfig::minus_size(LowFatPolicy::All);
        assert!(!s.size_harden && s.instrument_reads && s.elim_redundant && !s.interproc);
        let r = HardenConfig::minus_reads(LowFatPolicy::All);
        assert!(!r.size_harden && !r.instrument_reads);
        // The default stays the intraprocedural pipeline: off-by-default
        // contract for byte-identical output.
        assert!(!HardenConfig::default().interproc);
    }
}
