//! Hardening configuration: the knobs of Table 1.

use crate::allowlist::AllowList;
use crate::digest::{sha256, Digest};
use redfat_lowfat::AllocPolicyKind;

/// Which memory operations receive the full (Redzone)+(LowFat) check, as
/// opposed to the (Redzone)-only fallback (paper §3, "opportunistic
/// hardening").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LowFatPolicy {
    /// Never use the LowFat component: (Redzone)-only everywhere. This is
    /// the methodology of redzone-only state-of-the-art tools.
    Disabled,
    /// Full (Redzone)+(LowFat) on every instrumented site, risking false
    /// positives on intentional out-of-bounds pointers (paper §7.1,
    /// "false positives" experiment).
    All,
    /// Full check only on allow-listed sites; (Redzone)-only elsewhere.
    /// The production configuration of the §5 workflow.
    AllowList(AllowList),
}

/// Hardening configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HardenConfig {
    /// Check elimination (§6): skip operands that provably cannot reach
    /// the heap.
    pub elim: bool,
    /// Check batching (§6): one trampoline per reorderable group.
    pub batch: bool,
    /// Check merging (§6): one range check per operand shape in a batch.
    pub merge: bool,
    /// Flow-sensitive check elimination: interval provenance analysis
    /// proving per-site that the address cannot reach the heap -- a
    /// strict superset of the syntactic `elim` rule. Requires `elim`.
    pub elim_flow: bool,
    /// Dominator-based redundant-check elimination: a full check
    /// subsumed by an identical dominating check is downgraded to
    /// redzone-only. Requires `elim_flow`.
    pub elim_redundant: bool,
    /// Interprocedural summaries: per-function call effects (at-return
    /// register facts, may-write masks, heap purity) threaded into the
    /// flow and redundant passes at direct call sites. Off by default;
    /// when disabled the hardened output is byte-identical to the
    /// intraprocedural pipeline. Requires `elim_flow`.
    pub interproc: bool,
    /// Metadata hardening (§4.2): validate `SIZE` against the immutable
    /// class size. Disabled by the `-size` column.
    pub size_harden: bool,
    /// Instrument reads as well as writes. Disabled by the `-reads`
    /// column (write-only hardening).
    pub instrument_reads: bool,
    /// The LowFat component policy.
    pub lowfat: LowFatPolicy,
    /// Ablation: emit the *pure* (LowFat) check of §2.1 -- class-size
    /// bounds from the base register only, no redzone fallback, no
    /// metadata -- instead of the combined Figure 4 check. Used by the
    /// complementarity experiment; never set in production.
    pub lowfat_only: bool,
    /// Which allocator policy backs the runtime heap (`--alloc-policy`).
    /// Does not change the emitted checks (the policy contract keeps
    /// them backend-independent) but *is* part of the artifact identity:
    /// run/analyze results depend on it, so cache keys must too.
    pub alloc_policy: AllocPolicyKind,
}

impl HardenConfig {
    /// Table 1 "unoptimized": no optimizations, full checks everywhere
    /// the policy allows.
    pub fn unoptimized(lowfat: LowFatPolicy) -> HardenConfig {
        HardenConfig {
            elim: false,
            batch: false,
            merge: false,
            elim_flow: false,
            elim_redundant: false,
            interproc: false,
            size_harden: true,
            instrument_reads: true,
            lowfat,
            lowfat_only: false,
            alloc_policy: AllocPolicyKind::default(),
        }
    }

    /// Table 1 "+elim".
    pub fn with_elim(lowfat: LowFatPolicy) -> HardenConfig {
        HardenConfig {
            elim: true,
            ..HardenConfig::unoptimized(lowfat)
        }
    }

    /// Table 1 "+batch".
    pub fn with_batch(lowfat: LowFatPolicy) -> HardenConfig {
        HardenConfig {
            batch: true,
            ..HardenConfig::with_elim(lowfat)
        }
    }

    /// Table 1 "+merge" (fully optimized).
    pub fn with_merge(lowfat: LowFatPolicy) -> HardenConfig {
        HardenConfig {
            merge: true,
            ..HardenConfig::with_batch(lowfat)
        }
    }

    /// Table 1 "+flow": flow-sensitive provenance elimination on top of
    /// the syntactic optimizations.
    pub fn with_flow(lowfat: LowFatPolicy) -> HardenConfig {
        HardenConfig {
            elim_flow: true,
            ..HardenConfig::with_merge(lowfat)
        }
    }

    /// Table 1 "+redund" (fully optimized): dominator-based
    /// redundant-check elimination on top of "+flow".
    pub fn with_redundant(lowfat: LowFatPolicy) -> HardenConfig {
        HardenConfig {
            elim_redundant: true,
            ..HardenConfig::with_flow(lowfat)
        }
    }

    /// Table 1 "+interproc": interprocedural call summaries on top of
    /// "+redund".
    pub fn with_interproc(lowfat: LowFatPolicy) -> HardenConfig {
        HardenConfig {
            interproc: true,
            ..HardenConfig::with_redundant(lowfat)
        }
    }

    /// Table 1 "-size": fully optimized minus metadata hardening. The
    /// configuration that most closely matches Valgrind Memcheck's
    /// feature set.
    pub fn minus_size(lowfat: LowFatPolicy) -> HardenConfig {
        HardenConfig {
            size_harden: false,
            ..HardenConfig::with_redundant(lowfat)
        }
    }

    /// Table 1 "-reads": write-only hardening, the cheapest production
    /// configuration.
    pub fn minus_reads(lowfat: LowFatPolicy) -> HardenConfig {
        HardenConfig {
            instrument_reads: false,
            ..HardenConfig::minus_size(lowfat)
        }
    }

    /// Ablation: the pure low-fat-pointer methodology of §2.1, without
    /// the redzone component (detects non-incremental skips; misses
    /// use-after-free, redzone hits and padding overflows).
    pub fn lowfat_only() -> HardenConfig {
        HardenConfig {
            lowfat_only: true,
            ..HardenConfig::with_merge(LowFatPolicy::All)
        }
    }

    /// The canonical byte encoding of this configuration: a versioned
    /// tag, the nine boolean knobs, the LowFat policy (with the
    /// allow-list sites in sorted order), and the allocator-policy
    /// byte. Two configs encode to the same bytes iff they are `==`,
    /// which makes [`Self::digest`] a sound cache-key component and the
    /// encoding itself a usable wire format for the service protocol.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(CONFIG_TAG);
        for flag in [
            self.elim,
            self.batch,
            self.merge,
            self.elim_flow,
            self.elim_redundant,
            self.interproc,
            self.size_harden,
            self.instrument_reads,
            self.lowfat_only,
        ] {
            out.push(flag as u8);
        }
        match &self.lowfat {
            LowFatPolicy::Disabled => out.push(0),
            LowFatPolicy::All => out.push(1),
            LowFatPolicy::AllowList(list) => {
                out.push(2);
                out.extend_from_slice(&(list.len() as u64).to_le_bytes());
                for site in list.iter() {
                    out.extend_from_slice(&site.to_le_bytes());
                }
            }
        }
        out.push(self.alloc_policy.wire_byte());
        out
    }

    /// Decodes [`Self::canonical_bytes`]. Trailing garbage, a wrong
    /// tag, or a truncated allow-list are all hard errors -- a config
    /// that does not round-trip exactly must never be hardened under.
    pub fn from_canonical_bytes(bytes: &[u8]) -> Result<HardenConfig, String> {
        let rest = bytes
            .strip_prefix(CONFIG_TAG)
            .ok_or_else(|| "config encoding: bad or missing version tag".to_string())?;
        if rest.len() < 10 {
            return Err("config encoding: truncated flag block".to_string());
        }
        let (flags, rest) = rest.split_at(9);
        for (i, &b) in flags.iter().enumerate() {
            if b > 1 {
                return Err(format!("config encoding: flag {i} is {b}, not a bool"));
            }
        }
        let (policy, mut rest) = (rest[0], &rest[1..]);
        let lowfat = match policy {
            0 => LowFatPolicy::Disabled,
            1 => LowFatPolicy::All,
            2 => {
                if rest.len() < 8 {
                    return Err("config encoding: truncated allow-list count".to_string());
                }
                let (count_bytes, tail) = rest.split_at(8);
                let mut count_le = [0u8; 8];
                count_le.copy_from_slice(count_bytes);
                let count = u64::from_le_bytes(count_le);
                let need = (count as usize)
                    .checked_mul(8)
                    .ok_or_else(|| "config encoding: allow-list count overflows".to_string())?;
                if tail.len() < need {
                    return Err(format!(
                        "config encoding: allow-list declares {count} sites, {} bytes available",
                        tail.len()
                    ));
                }
                let (sites_bytes, tail) = tail.split_at(need);
                rest = tail;
                let mut list = AllowList::new();
                for chunk in sites_bytes.chunks_exact(8) {
                    let mut le = [0u8; 8];
                    le.copy_from_slice(chunk);
                    list.insert(u64::from_le_bytes(le));
                }
                LowFatPolicy::AllowList(list)
            }
            other => return Err(format!("config encoding: unknown policy byte {other}")),
        };
        let [alloc_byte] = rest else {
            return Err(format!(
                "config encoding: expected one allocator-policy byte after the LowFat \
                 policy, found {} bytes",
                rest.len()
            ));
        };
        let alloc_policy = AllocPolicyKind::from_wire_byte(*alloc_byte).ok_or_else(|| {
            format!("config encoding: unknown allocator-policy byte {alloc_byte}")
        })?;
        Ok(HardenConfig {
            elim: flags[0] == 1,
            batch: flags[1] == 1,
            merge: flags[2] == 1,
            elim_flow: flags[3] == 1,
            elim_redundant: flags[4] == 1,
            interproc: flags[5] == 1,
            size_harden: flags[6] == 1,
            instrument_reads: flags[7] == 1,
            lowfat,
            lowfat_only: flags[8] == 1,
            alloc_policy,
        })
    }

    /// Content digest of the canonical encoding: the config component
    /// of every artifact- and component-cache key.
    pub fn digest(&self) -> Digest {
        sha256(&self.canonical_bytes())
    }
}

/// Version tag of the canonical config encoding. Bump when the
/// encoding changes shape; old cache keys then miss instead of
/// colliding with entries produced under different semantics.
const CONFIG_TAG: &[u8] = b"redfat-config/v2\n";

impl Default for HardenConfig {
    /// Fully optimized with full LowFat coverage (callers wanting the
    /// production workflow substitute an allow-list policy).
    fn default() -> HardenConfig {
        HardenConfig::with_redundant(LowFatPolicy::All)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_form_a_ladder() {
        let u = HardenConfig::unoptimized(LowFatPolicy::All);
        assert!(!u.elim && !u.batch && !u.merge);
        let e = HardenConfig::with_elim(LowFatPolicy::All);
        assert!(e.elim && !e.batch);
        let b = HardenConfig::with_batch(LowFatPolicy::All);
        assert!(b.elim && b.batch && !b.merge);
        let m = HardenConfig::with_merge(LowFatPolicy::All);
        assert!(m.elim && m.batch && m.merge && m.size_harden && m.instrument_reads);
        assert!(!m.elim_flow && !m.elim_redundant);
        let f = HardenConfig::with_flow(LowFatPolicy::All);
        assert!(f.merge && f.elim_flow && !f.elim_redundant);
        let d = HardenConfig::with_redundant(LowFatPolicy::All);
        assert!(d.elim_flow && d.elim_redundant && d.size_harden);
        assert!(!d.interproc, "interproc is off throughout the base ladder");
        let i = HardenConfig::with_interproc(LowFatPolicy::All);
        assert!(i.elim_flow && i.elim_redundant && i.interproc);
        let s = HardenConfig::minus_size(LowFatPolicy::All);
        assert!(!s.size_harden && s.instrument_reads && s.elim_redundant && !s.interproc);
        let r = HardenConfig::minus_reads(LowFatPolicy::All);
        assert!(!r.size_harden && !r.instrument_reads);
        // The default stays the intraprocedural pipeline: off-by-default
        // contract for byte-identical output.
        assert!(!HardenConfig::default().interproc);
    }

    #[test]
    fn canonical_roundtrip_all_presets() {
        let allow = LowFatPolicy::AllowList(AllowList::from_sites([0x40_1000, 0x40_2000]));
        let configs = [
            HardenConfig::unoptimized(LowFatPolicy::Disabled),
            HardenConfig::with_elim(LowFatPolicy::All),
            HardenConfig::with_batch(allow.clone()),
            HardenConfig::with_merge(LowFatPolicy::All),
            HardenConfig::with_flow(allow.clone()),
            HardenConfig::with_redundant(LowFatPolicy::All),
            HardenConfig::with_interproc(LowFatPolicy::All),
            HardenConfig::minus_size(LowFatPolicy::All),
            HardenConfig::minus_reads(allow),
            HardenConfig::lowfat_only(),
            HardenConfig {
                alloc_policy: AllocPolicyKind::RandLowFat,
                ..HardenConfig::default()
            },
        ];
        for c in &configs {
            let bytes = c.canonical_bytes();
            let back = HardenConfig::from_canonical_bytes(&bytes)
                .unwrap_or_else(|e| panic!("roundtrip failed: {e}"));
            assert_eq!(&back, c);
        }
        // Distinct configs encode (and thus digest) distinctly.
        let mut seen = std::collections::HashSet::new();
        for c in &configs {
            assert!(seen.insert(c.digest()), "digest collision for {c:?}");
        }
    }

    #[test]
    fn canonical_decode_rejects_malformed() {
        let good = HardenConfig::default().canonical_bytes();
        assert!(HardenConfig::from_canonical_bytes(&[]).is_err());
        assert!(HardenConfig::from_canonical_bytes(b"not-a-config").is_err());
        // Truncations at every length must error, never panic.
        for len in 0..good.len() {
            assert!(
                HardenConfig::from_canonical_bytes(&good[..len]).is_err(),
                "truncation to {len} must be rejected"
            );
        }
        // Trailing garbage is rejected.
        let mut padded = good.clone();
        padded.push(0);
        assert!(HardenConfig::from_canonical_bytes(&padded).is_err());
        // Non-bool flag byte is rejected.
        let mut bad_flag = good.clone();
        bad_flag[CONFIG_TAG.len()] = 7;
        assert!(HardenConfig::from_canonical_bytes(&bad_flag).is_err());
        // Unknown policy byte is rejected.
        let mut bad_policy = good;
        let policy_at = CONFIG_TAG.len() + 9;
        bad_policy[policy_at] = 9;
        assert!(HardenConfig::from_canonical_bytes(&bad_policy).is_err());
        // A truncated allow-list (declared count > bytes) is rejected.
        let listed =
            HardenConfig::with_merge(LowFatPolicy::AllowList(AllowList::from_sites([1, 2, 3])))
                .canonical_bytes();
        assert!(HardenConfig::from_canonical_bytes(&listed[..listed.len() - 4]).is_err());
        // Unknown allocator-policy byte is rejected.
        let mut bad_alloc = HardenConfig::default().canonical_bytes();
        *bad_alloc.last_mut().unwrap() = 9;
        assert!(HardenConfig::from_canonical_bytes(&bad_alloc).is_err());
    }

    /// Cache keys must distinguish the allocator backends: same knobs,
    /// different policy, different digest (and a different encoding).
    #[test]
    fn alloc_policy_is_part_of_the_cache_key() {
        let lowfat = HardenConfig::default();
        let rand = HardenConfig {
            alloc_policy: AllocPolicyKind::RandLowFat,
            ..HardenConfig::default()
        };
        assert_ne!(lowfat.canonical_bytes(), rand.canonical_bytes());
        assert_ne!(lowfat.digest(), rand.digest());
        for kind in AllocPolicyKind::ALL {
            let c = HardenConfig {
                alloc_policy: kind,
                ..HardenConfig::default()
            };
            let back = HardenConfig::from_canonical_bytes(&c.canonical_bytes()).unwrap();
            assert_eq!(back.alloc_policy, kind);
        }
    }
}
