//! In-memory component-plan cache for [`harden_cached`].
//!
//! The service daemon keeps one of these per process so repeated
//! harden jobs over related images reuse per-CFG-component analysis
//! results. Eviction is FIFO with a bounded entry count: component
//! plans are regenerable from the input, so an evicted entry only
//! costs recomputation, never correctness.
//!
//! [`harden_cached`]: crate::harden_cached

use crate::digest::Digest;
use crate::pipeline::{ComponentCache, ComponentPlan};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

/// Bounded thread-safe FIFO cache of component plans.
pub struct MemoryComponentCache {
    state: Mutex<State>,
    capacity: usize,
}

struct State {
    map: HashMap<Digest, Arc<ComponentPlan>>,
    order: VecDeque<Digest>,
}

/// Default entry bound: comfortably above the component count of any
/// workload in the suite, small enough that plans (a few KiB each)
/// stay far below the image sizes they describe.
pub const DEFAULT_COMPONENT_CAPACITY: usize = 65_536;

impl MemoryComponentCache {
    /// Cache holding at most [`DEFAULT_COMPONENT_CAPACITY`] plans.
    pub fn new() -> MemoryComponentCache {
        MemoryComponentCache::with_capacity(DEFAULT_COMPONENT_CAPACITY)
    }

    /// Cache holding at most `capacity` plans (minimum 1).
    pub fn with_capacity(capacity: usize) -> MemoryComponentCache {
        MemoryComponentCache {
            state: Mutex::new(State {
                map: HashMap::new(),
                order: VecDeque::new(),
            }),
            capacity: capacity.max(1),
        }
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        match self.state.lock() {
            Ok(s) => s.map.len(),
            Err(poisoned) => poisoned.into_inner().map.len(),
        }
    }

    /// `true` if no plans are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        // A panic while holding the lock poisons it; the state itself
        // is a plain map that is never left mid-update (every mutation
        // is a single insert/remove), so continuing with the inner
        // value is safe and keeps the cache usable from other workers.
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl Default for MemoryComponentCache {
    fn default() -> MemoryComponentCache {
        MemoryComponentCache::new()
    }
}

impl ComponentCache for MemoryComponentCache {
    fn get(&self, key: &Digest) -> Option<Arc<ComponentPlan>> {
        self.lock().map.get(key).cloned()
    }

    fn put(&self, key: &Digest, plan: Arc<ComponentPlan>) {
        let mut s = self.lock();
        if s.map.insert(*key, plan).is_none() {
            s.order.push_back(*key);
            while s.map.len() > self.capacity {
                match s.order.pop_front() {
                    Some(old) => {
                        s.map.remove(&old);
                    }
                    None => break,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::sha256;
    use crate::{harden_cached, harden_threaded, HardenConfig};
    use redfat_workloads::spec;

    #[test]
    fn fifo_eviction_bounds_entries() {
        // ComponentPlan is opaque, so seed one real plan via the
        // pipeline, then exercise the bound with synthetic keys.
        let cache = MemoryComponentCache::with_capacity(2);
        let image = spec::all()[0].image();
        harden_cached(&image, &HardenConfig::default(), 1, &cache).expect("hardens");
        assert!(cache.len() <= 2, "capacity bound holds after real run");
        let plan = cache.lock().map.values().next().cloned().expect("seeded");
        for i in 0..10u64 {
            cache.put(&sha256(&i.to_le_bytes()), plan.clone());
            assert!(cache.len() <= 2, "capacity bound holds at insert {i}");
        }
        // The most recent keys survive (FIFO evicts oldest first)...
        assert!(cache.get(&sha256(&9u64.to_le_bytes())).is_some());
        assert!(cache.get(&sha256(&8u64.to_le_bytes())).is_some());
        // ...and a duplicate put is a no-op.
        let before = cache.len();
        cache.put(&sha256(&9u64.to_le_bytes()), plan);
        assert_eq!(cache.len(), before, "duplicate put is a no-op");
    }

    #[test]
    fn warm_rerun_reuses_every_component_and_matches_cold_bytes() {
        let cache = MemoryComponentCache::new();
        let image = spec::all()[0].image();
        let config = HardenConfig::default();

        let cold = harden_cached(&image, &config, 1, &cache).expect("cold hardens");
        assert!(cold.stats.components > 0, "image has components");
        assert_eq!(cold.stats.components_reused, 0, "cold run computes all");

        let warm = harden_cached(&image, &config, 1, &cache).expect("warm hardens");
        assert_eq!(
            warm.stats.components_reused, warm.stats.components,
            "warm run reuses every component"
        );
        assert_eq!(
            warm.image.to_bytes(),
            cold.image.to_bytes(),
            "warm output is byte-identical"
        );

        // And both match the uncached pipeline.
        let uncached = harden_threaded(&image, &config, 1).expect("uncached hardens");
        assert_eq!(uncached.image.to_bytes(), cold.image.to_bytes());
        assert_eq!(uncached.stats.components_reused, 0);
    }

    #[test]
    fn different_config_is_a_cache_miss() {
        let cache = MemoryComponentCache::new();
        let image = spec::all()[0].image();
        let a = HardenConfig::default();
        let b = HardenConfig::unoptimized(crate::LowFatPolicy::All);
        harden_cached(&image, &a, 1, &cache).expect("hardens under a");
        let under_b = harden_cached(&image, &b, 1, &cache).expect("hardens under b");
        assert_eq!(
            under_b.stats.components_reused, 0,
            "a different config must never hit the other config's entries"
        );
    }
}
