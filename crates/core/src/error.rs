//! The unifying structured error for the whole hardening toolchain.
//!
//! Every stage keeps its own precise error type (`ElfError`,
//! `DecodeError`/`AsmError`, `RewriteError`, `LoadError`, `EmuError`);
//! [`RedfatError`] is the umbrella that carries *which stage* failed, the
//! stage's typed error, and an optional chain of human-readable context
//! frames. `From` impls exist for every stage error, so `?` works across
//! the parse → disasm → analyze → harden → load → run chain, and the
//! fault-injection harness (and the CLI) can classify any failure without
//! string matching.
//!
//! The invariant the fault harness enforces: a malformed input produces
//! either a clean result, a `RedfatError`, or a recorded degradation
//! ([`crate::HardenStats::degraded`]) -- never a panic.

use crate::pipeline::HardenError;
use redfat_elf::ElfError;
use redfat_emu::{EmuError, LoadError};
use redfat_rewriter::RewriteError;
use redfat_x86::{AsmError, DecodeError};

/// The pipeline stage an error originated from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// ELF parsing ([`redfat_elf::Image::parse`]).
    Parse,
    /// Instruction decoding / disassembly.
    Disasm,
    /// Static analysis (CFG, liveness, provenance).
    Analyze,
    /// Check synthesis + trampoline rewriting.
    Harden,
    /// Image loading into the guest address space.
    Load,
    /// Guest execution under the emulator.
    Run,
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Stage::Parse => "parse",
            Stage::Disasm => "disasm",
            Stage::Analyze => "analyze",
            Stage::Harden => "harden",
            Stage::Load => "load",
            Stage::Run => "run",
        };
        write!(f, "{name}")
    }
}

/// The typed per-stage error wrapped by [`RedfatError`].
#[derive(Debug)]
pub enum ErrorKind {
    /// ELF parsing failed.
    Elf(ElfError),
    /// Instruction decoding failed.
    Decode(DecodeError),
    /// Assembly (check synthesis / trampoline emission) failed.
    Asm(AsmError),
    /// The trampoline rewrite failed.
    Rewrite(RewriteError),
    /// Image loading failed.
    Load(LoadError),
    /// Guest execution faulted.
    Emu(EmuError),
    /// A failure with no structured stage error (e.g. I/O).
    Other(String),
}

impl std::fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ErrorKind::Elf(e) => write!(f, "{e}"),
            ErrorKind::Decode(e) => write!(f, "{e}"),
            ErrorKind::Asm(e) => write!(f, "{e}"),
            ErrorKind::Rewrite(e) => write!(f, "{e}"),
            ErrorKind::Load(e) => write!(f, "{e}"),
            ErrorKind::Emu(e) => write!(f, "{e}"),
            ErrorKind::Other(m) => write!(f, "{m}"),
        }
    }
}

/// A structured toolchain error: stage + typed cause + context chain.
#[derive(Debug)]
pub struct RedfatError {
    /// The stage that failed.
    pub stage: Stage,
    /// The stage's typed error.
    pub kind: ErrorKind,
    /// Context frames, innermost first (see [`RedfatError::context`]).
    pub context: Vec<String>,
}

impl RedfatError {
    /// Builds an error from a stage and kind with no context.
    pub fn new(stage: Stage, kind: ErrorKind) -> RedfatError {
        RedfatError {
            stage,
            kind,
            context: Vec::new(),
        }
    }

    /// Appends a context frame ("while hardening gzip", "mutant 17 of
    /// seed 0x5eed") to the chain; frames render outermost last.
    pub fn context(mut self, frame: impl Into<String>) -> RedfatError {
        self.context.push(frame.into());
        self
    }
}

impl std::fmt::Display for RedfatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.stage, self.kind)?;
        for frame in &self.context {
            write!(f, " ({frame})")?;
        }
        Ok(())
    }
}

impl std::error::Error for RedfatError {}

impl From<ElfError> for RedfatError {
    fn from(e: ElfError) -> RedfatError {
        RedfatError::new(Stage::Parse, ErrorKind::Elf(e))
    }
}

impl From<DecodeError> for RedfatError {
    fn from(e: DecodeError) -> RedfatError {
        RedfatError::new(Stage::Disasm, ErrorKind::Decode(e))
    }
}

impl From<AsmError> for RedfatError {
    fn from(e: AsmError) -> RedfatError {
        RedfatError::new(Stage::Harden, ErrorKind::Asm(e))
    }
}

impl From<RewriteError> for RedfatError {
    fn from(e: RewriteError) -> RedfatError {
        RedfatError::new(Stage::Harden, ErrorKind::Rewrite(e))
    }
}

impl From<HardenError> for RedfatError {
    fn from(e: HardenError) -> RedfatError {
        match e {
            HardenError::Rewrite(e) => e.into(),
        }
    }
}

impl From<LoadError> for RedfatError {
    fn from(e: LoadError) -> RedfatError {
        RedfatError::new(Stage::Load, ErrorKind::Load(e))
    }
}

impl From<EmuError> for RedfatError {
    fn from(e: EmuError) -> RedfatError {
        RedfatError::new(Stage::Run, ErrorKind::Emu(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_and_context_render() {
        let e: RedfatError = ElfError::NotElf64.into();
        assert_eq!(e.stage, Stage::Parse);
        let e = e.context("mutant 3").context("workload gzip");
        let s = e.to_string();
        assert!(s.starts_with("parse: "), "{s}");
        assert!(s.contains("(mutant 3)"), "{s}");
        assert!(s.contains("(workload gzip)"), "{s}");
    }

    #[test]
    fn stage_errors_map_to_stages() {
        let load: RedfatError = LoadError::NoImages.into();
        assert_eq!(load.stage, Stage::Load);
        let harden: RedfatError = HardenError::Rewrite(RewriteError::PatchWrite(0x40_0000)).into();
        assert_eq!(harden.stage, Stage::Harden);
        assert!(matches!(harden.kind, ErrorKind::Rewrite(_)));
    }
}
