//! RedFat: complementary memory-error hardening for binaries.
//!
//! This crate is the paper's primary contribution -- the tool that takes
//! a (possibly stripped) binary image and produces a hardened binary in
//! which every heap-reachable memory access is guarded by the combined
//! **(Redzone)+(LowFat)** check of Figure 4, subject to the policy and
//! optimization configuration of §3, §5 and §6:
//!
//! * [`HardenConfig`] selects the optimization levels of Table 1
//!   (`unoptimized`, `+elim`, `+batch`, `+merge`, `-size`, `-reads`) and
//!   the low-fat policy (disabled / all sites / allow-list).
//! * [`harden`] runs the full pipeline: disassemble → recover CFG →
//!   plan batches → synthesize machine-code checks → trampoline rewrite.
//! * [`instrument_profile`] builds the *profiling* binary of the §5
//!   two-phase workflow; [`collect_allowlist`] turns the recorded
//!   per-site pass/fail counters into an [`AllowList`]; hardening with
//!   [`LowFatPolicy::AllowList`] closes the loop.
//! * [`run_once`] is a convenience runner used by tests, examples and the
//!   experiment harness.
//!
//! The generated checks are real x86-64 code operating on the low-fat
//! SIZES/MAGICS tables installed by the runtime; no host-side shortcut
//! participates in detection.
// Production code must surface failures as structured errors, not
// panics: the pipeline feeds a long-running daemon. Deliberate
// exceptions carry an `allow` with a safety comment at the site.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod allowlist;
mod cache;
mod checks;
mod config;
pub mod digest;
pub mod error;
pub mod faults;
mod fuzz;
mod pipeline;
mod runner;
pub mod selftest;

pub use allowlist::AllowList;
pub use cache::{MemoryComponentCache, DEFAULT_COMPONENT_CAPACITY};
pub use checks::CHECK_SCRATCH_CANDIDATES;
pub use config::{HardenConfig, LowFatPolicy};
pub use digest::{image_digest, sha256, Digest, Sha256, TOOL_VERSION};
pub use error::{ErrorKind, RedfatError, Stage};
pub use faults::{classify_bytes, fault_sweep, FaultConfig, FaultOutcome, FaultReport};
pub use fuzz::{fuzz_profile, FuzzConfig, FuzzOutcome};
pub use pipeline::{
    collect_allowlist, harden, harden_cached, harden_threaded, harden_with_bases,
    instrument_profile, ClobberInfo, ComponentCache, ComponentPlan, HardenError, HardenStats,
    Hardened,
};
pub use redfat_lowfat::AllocPolicyKind;
pub use runner::{run_once, try_run_backend, try_run_backend_policy, try_run_once, RunOutcome};
