//! Kraken-like browser benchmark kernels (paper §7.3, Figure 8).
//!
//! The paper measures RedFat-hardened Google Chrome under Mozilla's
//! Kraken JavaScript benchmark. The stand-in is [`crate::kromium`]: a
//! very large generated binary embedding these fourteen computational
//! kernels -- the same kernel families Kraken exercises (AI search,
//! audio DSP, image filters, JSON text processing, crypto) -- selected
//! at runtime by the first input value.

/// A Kraken sub-benchmark: name + kernel function + dispatch id.
pub struct KrakenBench {
    /// Benchmark name as shown in Figure 8.
    pub name: &'static str,
    /// Kernel id understood by the kromium dispatcher.
    pub kernel: i64,
    /// Work scale for the measurement run.
    pub scale: i64,
}

/// The fourteen Figure 8 sub-benchmarks, in figure order.
pub fn all() -> Vec<KrakenBench> {
    let names = [
        "ai-astar",
        "beat-detection",
        "dft",
        "fft",
        "oscillator",
        "gaussian-blur",
        "darkroom",
        "desaturate",
        "parse-financial",
        "stringify-tinderbox",
        "aes",
        "ccm",
        "pbkdf2",
        "sha256-iterative",
    ];
    names
        .iter()
        .enumerate()
        .map(|(i, &name)| KrakenBench {
            name,
            kernel: (i + 1) as i64,
            scale: 3,
        })
        .collect()
}

/// mini-C source for all kernel functions plus the dispatcher body.
///
/// Kernel ids: 0 = startup sweep over generated "browser" code,
/// 1..=14 = the benchmarks of [`all`].
pub(crate) fn kernels_source() -> String {
    String::from(
        "
// ---- Kraken kernels ----
fn k_ai_astar(scale) {
    var dim = 40;
    var cells = dim * dim;
    var cost = malloc(cells * 8);
    var dist = malloc(cells * 8);
    var queue = malloc(cells * 2 * 8);
    var chk = 0;
    for (var i = 0; i < cells; i = i + 1) { cost[i] = 1 + (rnd() % 9); }
    for (var t = 0; t < scale; t = t + 1) {
        for (var i = 0; i < cells; i = i + 1) { dist[i] = 0x3fffffff; }
        dist[0] = 0;
        var head = 0;
        var tail = 1;
        queue[0] = 0;
        while (head < tail) {
            var cur = queue[head];
            head = head + 1;
            var d = dist[cur];
            var x = cur % dim;
            var y = cur / dim;
            if (x < dim - 1 && d + cost[cur + 1] < dist[cur + 1]) {
                dist[cur + 1] = d + cost[cur + 1];
                if (tail < cells * 2) { queue[tail] = cur + 1; tail = tail + 1; }
            }
            if (y < dim - 1 && d + cost[cur + dim] < dist[cur + dim]) {
                dist[cur + dim] = d + cost[cur + dim];
                if (tail < cells * 2) { queue[tail] = cur + dim; tail = tail + 1; }
            }
        }
        chk = chk + dist[cells - 1];
    }
    free(cost); free(dist); free(queue);
    return chk;
}

fn k_beat_detection(scale) {
    var n = 4096;
    var pcm = malloc(n * 8);
    var energy = malloc((n / 64) * 8);
    var chk = 0;
    for (var t = 0; t < scale; t = t + 1) {
        for (var i = 0; i < n; i = i + 1) {
            pcm[i] = ((i * 37) % 628) - 314 + ((rnd() % 65) - 32);
        }
        for (var w = 0; w < n / 64; w = w + 1) {
            var e = 0;
            for (var i = 0; i < 64; i = i + 1) {
                var s = pcm[w * 64 + i];
                e = e + s * s;
            }
            energy[w] = e / 64;
        }
        var beats = 0;
        for (var w = 2; w < n / 64; w = w + 1) {
            if (energy[w] > 2 * energy[w - 1] && energy[w] > energy[w - 2]) {
                beats = beats + 1;
            }
        }
        chk = chk + beats;
    }
    free(pcm); free(energy);
    return chk;
}

fn k_dft(scale) {
    var n = 128;
    var sig = malloc(n * 8);
    var re = malloc(n * 8);
    var im = malloc(n * 8);
    var sintab = malloc(256 * 8);
    // Quarter-wave integer sine table, scaled by 1024.
    for (var i = 0; i < 256; i = i + 1) {
        var x = (i * 402) % 6434; // ~ i * 2pi/256 scaled
        var s = x - (x * x / 6434) * x / 6434; // crude poly
        sintab[i] = s % 1024;
    }
    var chk = 0;
    for (var t = 0; t < scale; t = t + 1) {
        for (var i = 0; i < n; i = i + 1) { sig[i] = rnd() % 256; }
        for (var k = 0; k < n; k = k + 1) {
            var sr = 0;
            var si = 0;
            for (var i = 0; i < n; i = i + 1) {
                var phase = (k * i) % 256;
                var c = sintab[(phase + 64) % 256];
                var s = sintab[phase];
                sr = sr + sig[i] * c / 1024;
                si = si - sig[i] * s / 1024;
            }
            re[k] = sr;
            im[k] = si;
        }
        chk = chk + re[1] + im[1];
    }
    free(sig); free(re); free(im); free(sintab);
    return chk;
}

fn k_fft(scale) {
    var n = 512;
    var re = malloc(n * 8);
    var im = malloc(n * 8);
    var chk = 0;
    for (var t = 0; t < scale; t = t + 1) {
        for (var i = 0; i < n; i = i + 1) { re[i] = rnd() % 256; im[i] = 0; }
        // Iterative integer butterfly cascade.
        var len = 2;
        while (len <= n) {
            var half = len / 2;
            for (var start = 0; start < n; start = start + len) {
                for (var k = 0; k < half; k = k + 1) {
                    var a = start + k;
                    var b = a + half;
                    var tr = re[b] * (1024 - k * 2048 / len) / 1024 - im[b] * (k * 2048 / len) / 1024;
                    var ti = re[b] * (k * 2048 / len) / 1024 + im[b] * (1024 - k * 2048 / len) / 1024;
                    re[b] = re[a] - tr;
                    im[b] = im[a] - ti;
                    re[a] = re[a] + tr;
                    im[a] = im[a] + ti;
                }
            }
            len = len * 2;
        }
        chk = chk + re[3] + im[5];
    }
    free(re); free(im);
    return chk;
}

fn k_oscillator(scale) {
    var n = 2048;
    var mix = malloc(n * 8);
    var chk = 0;
    for (var t = 0; t < scale; t = t + 1) {
        for (var i = 0; i < n; i = i + 1) { mix[i] = 0; }
        for (var voice = 0; voice < 8; voice = voice + 1) {
            var phase = 0;
            var stepv = 100 + voice * 37;
            for (var i = 0; i < n; i = i + 1) {
                phase = (phase + stepv) % 2048;
                var saw = phase - 1024;
                mix[i] = mix[i] + saw / 8;
            }
        }
        chk = chk + mix[100] + mix[2000];
    }
    free(mix);
    return chk;
}

fn k_gaussian_blur(scale) {
    var w = 96;
    var h = 64;
    var src = malloc(w * h);
    var dst = malloc(w * h);
    var chk = 0;
    for (var i = 0; i < w * h; i = i + 1) { store8(src, i, rnd() % 256); }
    for (var t = 0; t < scale; t = t + 1) {
        for (var y = 2; y < h - 2; y = y + 1) {
            for (var x = 2; x < w - 2; x = x + 1) {
                var acc = 0;
                acc = acc + load8(src, (y - 1) * w + x) * 2;
                acc = acc + load8(src, (y + 1) * w + x) * 2;
                acc = acc + load8(src, y * w + x - 1) * 2;
                acc = acc + load8(src, y * w + x + 1) * 2;
                acc = acc + load8(src, y * w + x) * 4;
                acc = acc + load8(src, (y - 2) * w + x);
                acc = acc + load8(src, (y + 2) * w + x);
                acc = acc + load8(src, y * w + x - 2);
                acc = acc + load8(src, y * w + x + 2);
                store8(dst, y * w + x, acc / 16);
            }
        }
        var tmp = src; src = dst; dst = tmp;
        chk = chk + load8(src, w * 10 + 10);
    }
    free(src); free(dst);
    return chk;
}

fn k_darkroom(scale) {
    var n = 96 * 64;
    var img = malloc(n);
    var curve = malloc(256);
    var chk = 0;
    for (var i = 0; i < 256; i = i + 1) {
        var v = (i * i) / 255;
        store8(curve, i, v);
    }
    for (var i = 0; i < n; i = i + 1) { store8(img, i, rnd() % 256); }
    for (var t = 0; t < scale * 4; t = t + 1) {
        for (var i = 0; i < n; i = i + 1) {
            var p = load8(img, i);
            var adjusted = load8(curve, p);
            store8(img, i, (adjusted + 16) % 256);
        }
        chk = chk + load8(img, 1234);
    }
    free(img); free(curve);
    return chk;
}

fn k_desaturate(scale) {
    var pixels = 96 * 64;
    var rgb = malloc(pixels * 3);
    var gray = malloc(pixels);
    var chk = 0;
    for (var i = 0; i < pixels * 3; i = i + 1) { store8(rgb, i, rnd() % 256); }
    for (var t = 0; t < scale * 6; t = t + 1) {
        for (var i = 0; i < pixels; i = i + 1) {
            var r = load8(rgb, i * 3);
            var g = load8(rgb, i * 3 + 1);
            var b = load8(rgb, i * 3 + 2);
            store8(gray, i, (r * 30 + g * 59 + b * 11) / 100);
        }
        chk = chk + load8(gray, t % pixels);
    }
    free(rgb); free(gray);
    return chk;
}

fn k_parse_financial(scale) {
    // Parse a synthetic number-array document: digits and commas.
    var doclen = 6000;
    var doc = malloc(doclen);
    var values = malloc(2048 * 8);
    var chk = 0;
    var p = 0;
    while (p < doclen - 8) {
        var v = rnd() % 100000;
        while (v > 0) { store8(doc, p, 48 + v % 10); v = v / 10; p = p + 1; }
        store8(doc, p, 44); // comma
        p = p + 1;
    }
    store8(doc, p, 0);
    for (var t = 0; t < scale * 2; t = t + 1) {
        var i = 0;
        var count = 0;
        var acc = 0;
        while (i < doclen && count < 2048) {
            var c = load8(doc, i);
            if (c >= 48 && c <= 57) {
                acc = acc * 10 + c - 48;
            } else {
                values[count] = acc;
                count = count + 1;
                acc = 0;
                if (c == 0) { break; }
            }
            i = i + 1;
        }
        var total = 0;
        for (var k = 0; k < count; k = k + 1) { total = total + values[k]; }
        chk = chk + (total % 100000);
    }
    free(doc); free(values);
    return chk;
}

fn k_stringify_tinderbox(scale) {
    var count = 1024;
    var values = malloc(count * 8);
    var out = malloc(count * 12);
    var chk = 0;
    for (var i = 0; i < count; i = i + 1) { values[i] = rnd() % 1000000; }
    for (var t = 0; t < scale * 2; t = t + 1) {
        var o = 0;
        for (var i = 0; i < count; i = i + 1) {
            var v = values[i];
            if (v == 0) { store8(out, o, 48); o = o + 1; }
            var digits = 0;
            var tmpbuf = 0;
            while (v > 0) { tmpbuf = tmpbuf * 10 + v % 10; v = v / 10; digits = digits + 1; }
            while (digits > 0) {
                store8(out, o, 48 + tmpbuf % 10);
                tmpbuf = tmpbuf / 10;
                o = o + 1;
                digits = digits - 1;
            }
            store8(out, o, 44);
            o = o + 1;
        }
        chk = chk + o + load8(out, 17);
    }
    free(values); free(out);
    return chk;
}

fn k_aes(scale) {
    var sbox = malloc(256);
    var state = malloc(16);
    var key = malloc(16);
    var chk = 0;
    for (var i = 0; i < 256; i = i + 1) { store8(sbox, i, (i * 7 + 99) % 256); }
    for (var i = 0; i < 16; i = i + 1) { store8(key, i, rnd() % 256); }
    for (var block = 0; block < scale * 48; block = block + 1) {
        for (var i = 0; i < 16; i = i + 1) { store8(state, i, rnd() % 256); }
        for (var round = 0; round < 10; round = round + 1) {
            // SubBytes + AddRoundKey + a row rotation.
            for (var i = 0; i < 16; i = i + 1) {
                var v = load8(sbox, load8(state, i));
                store8(state, i, v ^ load8(key, (i + round) % 16));
            }
            var t0 = load8(state, 0);
            for (var i = 0; i < 15; i = i + 1) { store8(state, i, load8(state, i + 1)); }
            store8(state, 15, t0);
        }
        chk = chk + load8(state, 5);
    }
    free(sbox); free(state); free(key);
    return chk;
}

fn k_ccm(scale) {
    var mac = malloc(16);
    var ctr = malloc(16);
    var data = malloc(512);
    var chk = 0;
    for (var i = 0; i < 512; i = i + 1) { store8(data, i, rnd() % 256); }
    for (var t = 0; t < scale * 8; t = t + 1) {
        for (var i = 0; i < 16; i = i + 1) { store8(mac, i, 0); store8(ctr, i, i); }
        for (var b = 0; b < 32; b = b + 1) {
            for (var i = 0; i < 16; i = i + 1) {
                var m = load8(mac, i) ^ load8(data, b * 16 + i);
                store8(mac, i, (m * 5 + 1) % 256);
            }
            // Counter increment.
            var c = 15;
            while (c >= 0) {
                var v = load8(ctr, c) + 1;
                store8(ctr, c, v % 256);
                if (v < 256) { break; }
                c = c - 1;
            }
        }
        chk = chk + load8(mac, 0) + load8(ctr, 15);
    }
    free(mac); free(ctr); free(data);
    return chk;
}

fn k_pbkdf2(scale) {
    var state = malloc(8 * 8);
    var chk = 0;
    for (var i = 0; i < 8; i = i + 1) { state[i] = 0x6a09e667 + i * 0x1010101; }
    for (var iter = 0; iter < scale * 600; iter = iter + 1) {
        // One compression-ish mixing round.
        for (var i = 0; i < 8; i = i + 1) {
            var a = state[i];
            var b = state[(i + 1) % 8];
            state[i] = ((a >> 7) ^ (a << 9) ^ b ^ iter) & 0xffffffffffff;
        }
    }
    for (var i = 0; i < 8; i = i + 1) { chk = chk + state[i]; }
    free(state);
    return chk;
}

fn k_sha256_iterative(scale) {
    var w = malloc(64 * 8);
    var h = malloc(8 * 8);
    var chk = 0;
    for (var i = 0; i < 8; i = i + 1) { h[i] = 0x5be0cd19 + i; }
    for (var blockn = 0; blockn < scale * 60; blockn = blockn + 1) {
        for (var i = 0; i < 16; i = i + 1) { w[i] = rnd() & 0xffffffff; }
        for (var i = 16; i < 64; i = i + 1) {
            var s0 = (w[i - 15] >> 7) ^ (w[i - 15] >> 18) ^ (w[i - 15] >> 3);
            var s1 = (w[i - 2] >> 17) ^ (w[i - 2] >> 19) ^ (w[i - 2] >> 10);
            w[i] = (w[i - 16] + s0 + w[i - 7] + s1) & 0xffffffff;
        }
        var a = h[0];
        var e = h[4];
        for (var i = 0; i < 64; i = i + 1) {
            var t1 = (e + w[i] + i) & 0xffffffff;
            var t2 = (a ^ (a >> 2)) & 0xffffffff;
            e = (h[3] + t1) & 0xffffffff;
            a = (t1 + t2) & 0xffffffff;
        }
        h[0] = (h[0] + a) & 0xffffffff;
        h[4] = (h[4] + e) & 0xffffffff;
        chk = chk + h[0];
    }
    free(w); free(h);
    return chk;
}

fn run_kernel(id, scale) {
    if (id == 1) { return k_ai_astar(scale); }
    if (id == 2) { return k_beat_detection(scale); }
    if (id == 3) { return k_dft(scale); }
    if (id == 4) { return k_fft(scale); }
    if (id == 5) { return k_oscillator(scale); }
    if (id == 6) { return k_gaussian_blur(scale); }
    if (id == 7) { return k_darkroom(scale); }
    if (id == 8) { return k_desaturate(scale); }
    if (id == 9) { return k_parse_financial(scale); }
    if (id == 10) { return k_stringify_tinderbox(scale); }
    if (id == 11) { return k_aes(scale); }
    if (id == 12) { return k_ccm(scale); }
    if (id == 13) { return k_pbkdf2(scale); }
    if (id == 14) { return k_sha256_iterative(scale); }
    return 0;
}
",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fourteen_benchmarks() {
        let suite = all();
        assert_eq!(suite.len(), 14);
        assert_eq!(suite[0].name, "ai-astar");
        assert_eq!(suite[13].name, "sha256-iterative");
        let ids: std::collections::HashSet<i64> = suite.iter().map(|b| b.kernel).collect();
        assert_eq!(ids.len(), 14);
    }
}
