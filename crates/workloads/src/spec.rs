//! The SPEC CPU2006 stand-in suite: 29 mini-C benchmarks, one per SPEC
//! benchmark the paper's Table 1 reports, each imitating the memory
//! access idiom of its namesake.
//!
//! Conventions shared by all benchmarks:
//!
//! * the first input value scales the work (`train` small, `ref` large);
//! * where a second input exists it selects a *mode*: the `ref` run
//!   exercises code paths the `train` run does not, which is what makes
//!   allow-list coverage land below 100% for those benchmarks (paper
//!   Table 1, coverage column);
//! * Fortran-derived benchmarks bias array base pointers (`arr - K`),
//!   the anti-idiom that produces false positives without the §5
//!   allow-list (paper §7.1);
//! * each benchmark prints a checksum, used to verify that hardening
//!   preserves behavior.

use crate::{Lang, Workload, PRELUDE};

fn w(
    name: &'static str,
    lang: Lang,
    source: String,
    train_input: Vec<i64>,
    ref_input: Vec<i64>,
) -> Workload {
    Workload {
        name,
        lang,
        source,
        train_input,
        ref_input,
        requires_x87: false,
        planted_errors: 0,
        anti_idiom_sites: 0,
    }
}

/// Generates `n` distinct anti-idiom read sites over a biased pointer
/// `{bias}` (each statement is a distinct instruction, hence a distinct
/// false-positive site).
fn anti_idiom_reads(bias: &str, k_elems: i64, n: usize) -> String {
    let mut s = String::new();
    for i in 0..n {
        s.push_str(&format!(
            "    chk = chk + {bias}[{} + (step % 4)];\n",
            k_elems + (i as i64 % 8)
        ));
    }
    s
}

/// `400.perlbench`: chained hash table with byte-string keys.
fn perlbench() -> Workload {
    let src = format!(
        "{PRELUDE}
global chk;
global opstat[4];
global cstat[8];
fn classify(x) {{
    return x & 7;
}}
fn cbump(x) {{
    var ci = classify(x);
    var cst = &cstat;
    cst[ci] = cst[ci] + 1;
    return 0;
}}
fn hash_bytes(key, len) {{
    var h = 5381;
    for (var i = 0; i < len; i = i + 1) {{
        h = (h * 33 + load8(key, i)) & 0xffffff;
    }}
    return h;
}}
fn main() {{
    var n = input();
    srnd(42);
    var nbuckets = 256;
    var buckets = calloc(nbuckets, 8);
    var keybuf = malloc(16);
    chk = 0;
    var step = 0;
    // Anti-idiom: a biased view of a scratch table (1 site). The bias
    // crosses the allocation base, so base(view) resolves to the wrong
    // object -- the paper's Problem #2.
    var scratch = malloc(16 * 8);
    var one_based = scratch - 64;
    for (var i = 0; i < 16; i = i + 1) {{ scratch[i] = i; }}
    while (step < n) {{
        // Build a pseudo-random 8-byte key.
        var klen = 4 + (rnd() % 4);
        for (var i = 0; i < klen; i = i + 1) {{
            store8(keybuf, i, 97 + (rnd() % 26));
        }}
        var h = hash_bytes(keybuf, klen) % nbuckets;
        // Insert: node = [next, hash, value].
        var node = malloc(3 * 8);
        node[0] = buckets[h];
        node[1] = h;
        node[2] = step;
        buckets[h] = node;
        // Lookup walk.
        var cur = buckets[rnd() % nbuckets];
        while (cur != 0) {{
            chk = chk + cur[2];
            cur = cur[0];
        }}
        chk = chk + one_based[8 + (step % 8)];
        // Op-mix counters through the static table (constant base
        // address in a register, constant indices).
        var st = &opstat;
        st[0] = st[0] + 1;
        st[1] = st[1] + klen;
        // Key-length histogram: the bucket index flows out of a call, so
        // only an interprocedural return-range summary bounds it.
        cbump(h + klen);
        step = step + 1;
    }}
    var st2 = &opstat;
    print(st2[0] + st2[1]);
    print(chk & 0xffffffff);
    return 0;
}}"
    );
    let mut wl = w("perlbench", Lang::C, src, vec![150], vec![2600]);
    wl.anti_idiom_sites = 1;
    wl
}

/// `401.bzip2`: run-length + move-to-front coding over a byte buffer.
fn bzip2() -> Workload {
    let src = format!(
        "{PRELUDE}
global opstat[4];
fn opcount(k) {{
    var st = &opstat;
    st[0] = st[0] + 1;
    st[1] = st[1] + k;
    return st[0] + st[1];
}}
global cstat[8];
fn classify(x) {{
    return x & 7;
}}
fn cbump(x) {{
    var ci = classify(x);
    var cst = &cstat;
    cst[ci] = cst[ci] + 1;
    return 0;
}}
fn main() {{
    var n = input();
    srnd(7);
    var data = malloc(n);
    var out = malloc(2 * n + 16);
    var mtf = malloc(256);
    // Compressible data: long runs with noise.
    var v = 0;
    for (var i = 0; i < n; i = i + 1) {{
        if (rnd() % 13 == 0) {{ v = rnd() % 8; }}
        store8(data, i, v);
    }}
    for (var i = 0; i < 256; i = i + 1) {{ store8(mtf, i, i); }}
    // RLE encode with MTF of the run symbol.
    var o = 0;
    var i = 0;
    while (i < n) {{
        var sym = load8(data, i);
        var run = 1;
        while (i + run < n && load8(data, i + run) == sym && run < 255) {{
            run = run + 1;
        }}
        // Move-to-front rank of sym.
        var r = 0;
        while (load8(mtf, r) != sym) {{ r = r + 1; }}
        var j = r;
        while (j > 0) {{ store8(mtf, j, load8(mtf, j - 1)); j = j - 1; }}
        store8(mtf, 0, sym);
        store8(out, o, r);
        store8(out, o + 1, run);
        o = o + 2;
        opcount(run);
        cbump(r + run);
        i = i + run;
    }}
    // Checksum of the encoding.
    var chk = 0;
    for (var k = 0; k < o; k = k + 1) {{ chk = (chk * 31 + load8(out, k)) & 0xffffff; }}
    print(chk);
    print(o);
    print(opcount(0));
    return 0;
}}"
    );
    w("bzip2", Lang::C, src, vec![2500], vec![26000])
}

/// `403.gcc`: IR node allocation, constant folding, liveness-ish sweep.
/// Carries 14 anti-idiom sites (the paper reports 14 false positives).
fn gcc() -> Workload {
    let anti = anti_idiom_reads("onebase", 4, 14);
    let src = format!(
        "{PRELUDE}
global chk;
global opstat[4];
fn opcount(k) {{
    var st = &opstat;
    st[0] = st[0] + 1;
    st[1] = st[1] + k;
    return st[0] + st[1];
}}
fn fold(node) {{
    // node = [op, lhs, rhs, value]; fold constants upward.
    if (node[0] == 0) {{ return node[3]; }}
    var l = fold(node[1]);
    var r = fold(node[2]);
    if (node[0] == 1) {{ node[3] = l + r; }}
    if (node[0] == 2) {{ node[3] = l * r; }}
    if (node[0] == 3) {{ node[3] = l - r; }}
    node[0] = 0;
    return node[3];
}}
fn build(depth) {{
    var node = malloc(4 * 8);
    if (depth == 0) {{
        node[0] = 0;
        node[1] = 0;
        node[2] = 0;
        node[3] = rnd() % 100;
        return node;
    }}
    node[0] = 1 + (rnd() % 3);
    node[1] = build(depth - 1);
    node[2] = build(depth - 1);
    node[3] = 0;
    return node;
}}
global cstat[8];
fn classify(x) {{
    return x & 7;
}}
fn cbump(x) {{
    var ci = classify(x);
    var cst = &cstat;
    cst[ci] = cst[ci] + 1;
    return 0;
}}
fn main() {{
    var n = input();
    srnd(4003);
    chk = 0;
    var tbl = malloc(16 * 8);
    for (var i = 0; i < 16; i = i + 1) {{ tbl[i] = i * 3; }}
    var onebase = tbl - 32; // 4-element bias
    var step = 0;
    while (step < n) {{
        var tree = build(6);
        chk = (chk + fold(tree)) & 0xffffffff;
{anti}
        opcount(step);
        cbump(chk);
        step = step + 1;
    }}
    print(opcount(0));
    print(chk);
    return 0;
}}"
    );
    let mut wl = w("gcc", Lang::C, src, vec![60], vec![700]);
    wl.anti_idiom_sites = 14;
    wl
}

/// `429.mcf`: pointer-chasing shortest-path relaxation over a sparse
/// network (cache-hostile, like the original).
fn mcf() -> Workload {
    let src = format!(
        "{PRELUDE}
global opstat[4];
fn opcount(k) {{
    var st = &opstat;
    st[0] = st[0] + 1;
    st[1] = st[1] + k;
    return st[0] + st[1];
}}
global cstat[8];
fn classify(x) {{
    return x & 7;
}}
fn cbump(x) {{
    var ci = classify(x);
    var cst = &cstat;
    cst[ci] = cst[ci] + 1;
    return 0;
}}
fn main() {{
    var n = input();
    srnd(429);
    var nodes = n;
    // node = [dist, deg, a0, a1, a2, c0, c1, c2]
    var g = malloc(nodes * 8 * 8);
    for (var i = 0; i < nodes; i = i + 1) {{
        g[i * 8] = 0x3fffffff;
        var deg = 1 + (rnd() % 3);
        g[i * 8 + 1] = deg;
        for (var e = 0; e < deg; e = e + 1) {{
            g[i * 8 + 2 + e] = rnd() % nodes;
            g[i * 8 + 5 + e] = 1 + (rnd() % 9);
        }}
    }}
    g[0] = 0;
    // Bellman-Ford-style passes.
    for (var pass = 0; pass < 12; pass = pass + 1) {{
        for (var i = 0; i < nodes; i = i + 1) {{
            var node = g + i * 64;
            var d = node[0];
            opcount(d);
            cbump(d);
            if (d < 0x3fffffff) {{
                var deg = node[1];
                for (var e = 0; e < deg; e = e + 1) {{
                    var t = node[e + 2];
                    var c = node[e + 5];
                    if (d + c < g[t * 8]) {{ g[t * 8] = d + c; }}
                }}
            }}
        }}
    }}
    var chk = 0;
    for (var i = 0; i < nodes; i = i + 1) {{
        var d = g[i * 8];
        if (d < 0x3fffffff) {{ chk = chk + d; }}
    }}
    print(opcount(0));
    print(chk & 0xffffffff);
    return 0;
}}"
    );
    w("mcf", Lang::C, src, vec![300], vec![3200])
}

/// `445.gobmk`: board scans and liberty counting on a 19x19 goban.
fn gobmk() -> Workload {
    let src = format!(
        "{PRELUDE}
global chk;
global opstat[4];
fn opcount(k) {{
    var st = &opstat;
    st[0] = st[0] + 1;
    st[1] = st[1] + k;
    return st[0] + st[1];
}}
fn liberties(board, pos) {{
    var libs = 0;
    if (board[pos - 1] == 0) {{ libs = libs + 1; }}
    if (board[pos + 1] == 0) {{ libs = libs + 1; }}
    if (board[pos - 21] == 0) {{ libs = libs + 1; }}
    if (board[pos + 21] == 0) {{ libs = libs + 1; }}
    return libs;
}}
global cstat[8];
fn classify(x) {{
    return x & 7;
}}
fn cbump(x) {{
    var ci = classify(x);
    var cst = &cstat;
    cst[ci] = cst[ci] + 1;
    return 0;
}}
fn main() {{
    var n = input();
    srnd(445);
    // 21x21 board with border ring (sentinel 3).
    var board = malloc(21 * 21 * 8);
    for (var i = 0; i < 441; i = i + 1) {{ board[i] = 0; }}
    for (var i = 0; i < 21; i = i + 1) {{
        board[i] = 3;
        board[441 - 21 + i] = 3;
        board[i * 21] = 3;
        board[i * 21 + 20] = 3;
    }}
    // Anti-idiom: biased pattern-table view (1 site).
    var pat = malloc(16 * 8);
    for (var i = 0; i < 16; i = i + 1) {{ pat[i] = i ^ 5; }}
    var pat1 = pat - 64;
    chk = 0;
    for (var mv = 0; mv < n; mv = mv + 1) {{
        var pos = 22 + (rnd() % 19) * 21 + (rnd() % 19);
        var color = 1 + (mv % 2);
        opcount(pos);
        cbump(pos);
        if (board[pos] == 0) {{
            board[pos] = color;
            var l = liberties(board, pos);
            if (l == 0) {{ board[pos] = 0; }}
            chk = chk + l + pat1[8 + (pos % 8)];
        }}
        // Periodic full-board scan.
        if (mv % 64 == 0) {{
            for (var p = 22; p < 419; p = p + 1) {{
                if (board[p] == 1) {{ chk = chk + liberties(board, p); }}
            }}
        }}
    }}
    print(opcount(0));
    print(chk & 0xffffffff);
    return 0;
}}"
    );
    let mut wl = w("gobmk", Lang::C, src, vec![600], vec![8000]);
    wl.anti_idiom_sites = 1;
    wl
}

/// `456.hmmer`: profile-HMM Viterbi DP. The `ref` run scores against a
/// second profile whose scoring loops never run in `train`, so roughly
/// half the hot sites miss the allow-list (low coverage, as in Table 1).
fn hmmer() -> Workload {
    let src = format!(
        "{PRELUDE}
global chk;
global opstat[4];
fn opcount(k) {{
    var st = &opstat;
    st[0] = st[0] + 1;
    st[1] = st[1] + k;
    return st[0] + st[1];
}}
fn score(seq, slen, hmm, m) {{
    var vit = malloc((m + 1) * 8);
    var nxt = malloc((m + 1) * 8);
    for (var k = 0; k <= m; k = k + 1) {{ vit[k] = 0 - 100000; }}
    vit[0] = 0;
    for (var i = 0; i < slen; i = i + 1) {{
        var c = load8(seq, i);
        for (var k = 1; k <= m; k = k + 1) {{
            var match = vit[k - 1] + hmm[(k - 1) * 4 + (c % 4)];
            var ins = vit[k] - 3;
            var best = match;
            if (ins > best) {{ best = ins; }}
            nxt[k] = best;
        }}
        nxt[0] = 0;
        var tmp = vit; vit = nxt; nxt = tmp;
    }}
    var best = vit[m];
    free(vit);
    free(nxt);
    return best;
}}
fn score2(seq, slen, hmm, m) {{
    // Second profile: same structure, distinct instructions (only
    // reached in ref mode).
    var vit = malloc((m + 1) * 8);
    for (var k = 0; k <= m; k = k + 1) {{ vit[k] = 0; }}
    for (var i = 0; i < slen; i = i + 1) {{
        var c = load8(seq, i);
        for (var k = m; k >= 1; k = k - 1) {{
            vit[k] = vit[k - 1] + hmm[(k - 1) * 4 + ((c + i) % 4)];
        }}
    }}
    var best = vit[m];
    free(vit);
    return best;
}}
global cstat[8];
fn classify(x) {{
    return x & 7;
}}
fn cbump(x) {{
    var ci = classify(x);
    var cst = &cstat;
    cst[ci] = cst[ci] + 1;
    return 0;
}}
fn main() {{
    var n = input();
    var mode = input();
    srnd(456);
    var m = 24;
    var hmm = malloc(m * 4 * 8);
    for (var i = 0; i < m * 4; i = i + 1) {{ hmm[i] = (rnd() % 11) - 4; }}
    var seq = malloc(64);
    chk = 0;
    for (var it = 0; it < n; it = it + 1) {{
        var slen = 24 + (rnd() % 32);
        for (var i = 0; i < slen; i = i + 1) {{ store8(seq, i, rnd() % 20); }}
        chk = chk + score(seq, slen, hmm, m);
        if (mode > 0) {{
            chk = chk + score2(seq, slen, hmm, m);
        }}
        opcount(slen);
        cbump(chk);
    }}
    print(opcount(0));
    print(chk & 0xffffffff);
    return 0;
}}"
    );
    w("hmmer", Lang::C, src, vec![6, 0], vec![42, 1])
}

/// `458.sjeng`: game-tree search (negamax with simple evaluation).
fn sjeng() -> Workload {
    let src = format!(
        "{PRELUDE}
global nodes;
global opstat[4];
fn opcount(k) {{
    var st = &opstat;
    st[0] = st[0] + 1;
    st[1] = st[1] + k;
    return st[0] + st[1];
}}
fn eval(board) {{
    var s = 0;
    for (var i = 0; i < 16; i = i + 1) {{ s = s + board[i] * ((i & 3) - 1); }}
    return s;
}}
fn negamax(board, depth, color) {{
    nodes = nodes + 1;
    if (depth == 0) {{ return color * eval(board); }}
    var best = 0 - 1000000;
    for (var mv = 0; mv < 6; mv = mv + 1) {{
        var cell = (mv * 5 + depth) % 16;
        var save = board[cell];
        board[cell] = color;
        var v = 0 - negamax(board, depth - 1, 0 - color);
        board[cell] = save;
        if (v > best) {{ best = v; }}
    }}
    return best;
}}
global cstat[8];
fn classify(x) {{
    return x & 7;
}}
fn cbump(x) {{
    var ci = classify(x);
    var cst = &cstat;
    cst[ci] = cst[ci] + 1;
    return 0;
}}
fn main() {{
    var n = input();
    srnd(458);
    var board = malloc(16 * 8);
    nodes = 0;
    var chk = 0;
    for (var g = 0; g < n; g = g + 1) {{
        for (var i = 0; i < 16; i = i + 1) {{ board[i] = rnd() % 3; }}
        chk = chk + negamax(board, 4, 1);
        opcount(g);
        cbump(chk);
    }}
    print(chk & 0xffffffff);
    print(nodes);
    print(opcount(0));
    return 0;
}}"
    );
    w("sjeng", Lang::C, src, vec![1], vec![6])
}

/// `462.libquantum`: uniform sweeps over a quantum register array
/// (100% coverage: every hot site is exercised by train).
fn libquantum() -> Workload {
    let src = format!(
        "{PRELUDE}
global opstat[4];
fn opcount(k) {{
    var st = &opstat;
    st[0] = st[0] + 1;
    st[1] = st[1] + k;
    return st[0] + st[1];
}}
global cstat[8];
fn classify(x) {{
    return x & 7;
}}
fn cbump(x) {{
    var ci = classify(x);
    var cst = &cstat;
    cst[ci] = cst[ci] + 1;
    return 0;
}}
fn main() {{
    var n = input();
    srnd(462);
    var qubits = 10;
    var states = 1 << qubits;
    // state = [amp_re, amp_im] interleaved.
    var reg = malloc(states * 2 * 8);
    for (var i = 0; i < states; i = i + 1) {{
        reg[i * 2] = rnd() % 1000;
        reg[i * 2 + 1] = rnd() % 1000;
    }}
    for (var it = 0; it < n; it = it + 1) {{
        var target = it % qubits;
        var mask = 1 << target;
        opcount(mask);
        cbump(mask);
        // \"Hadamard-ish\" butterfly on integer amplitudes.
        for (var i = 0; i < states; i = i + 1) {{
            if ((i & mask) == 0) {{
                var j = i | mask;
                var ar = reg[i * 2];
                var br = reg[j * 2];
                reg[i * 2] = (ar + br) / 2;
                reg[j * 2] = (ar - br) / 2;
                var ai = reg[i * 2 + 1];
                var bi = reg[j * 2 + 1];
                reg[i * 2 + 1] = (ai + bi) / 2;
                reg[j * 2 + 1] = (ai - bi) / 2;
            }}
        }}
    }}
    var chk = 0;
    for (var i = 0; i < states; i = i + 1) {{ chk = chk + reg[i * 2] + reg[i * 2 + 1]; }}
    print(opcount(0));
    print(chk & 0xffffffff);
    return 0;
}}"
    );
    w("libquantum", Lang::C, src, vec![10], vec![80])
}

/// `464.h264ref`: block motion search. `train` runs integer-pel search
/// only; `ref` adds four interpolation/refinement passes, so most hot
/// sites are unseen at profile time (lowest coverage in Table 1).
fn h264ref() -> Workload {
    let src = format!(
        "{PRELUDE}
global chk;
global opstat[4];
fn opcount(k) {{
    var st = &opstat;
    st[0] = st[0] + 1;
    st[1] = st[1] + k;
    return st[0] + st[1];
}}
fn sad(frame, refp, w, bx, by) {{
    // refp is the displaced reference-frame pointer (refframe + dy*w+dx).
    var s = 0;
    for (var y = 0; y < 8; y = y + 1) {{
        for (var x = 0; x < 8; x = x + 1) {{
            var a = load8(frame, (by + y) * w + bx + x);
            var b = load8(refp, (by + y) * w + bx + x);
            var d = a - b;
            if (d < 0) {{ d = 0 - d; }}
            s = s + d;
        }}
    }}
    return s;
}}
fn halfpel(frame, refframe, w, bx, by) {{
    var s = 0;
    for (var y = 0; y < 8; y = y + 1) {{
        for (var x = 0; x < 8; x = x + 1) {{
            var a = load8(refframe, (by + y) * w + bx + x);
            var b = load8(refframe, (by + y) * w + bx + x + 1);
            var c = load8(refframe, (by + y + 1) * w + bx + x);
            var m = (a + b + c + load8(frame, (by + y) * w + bx + x)) / 4;
            s = s + m;
        }}
    }}
    return s;
}}
fn quarterpel(frame, refframe, w, bx, by) {{
    var s = 0;
    for (var y = 0; y < 8; y = y + 1) {{
        for (var x = 0; x < 8; x = x + 1) {{
            var a = load8(refframe, (by + y) * w + bx + x);
            var b = load8(frame, (by + y) * w + bx + x);
            s = s + (3 * a + b + 2) / 4;
        }}
    }}
    return s;
}}
fn deblock(frame, w, bx, by) {{
    var s = 0;
    for (var y = 0; y < 8; y = y + 1) {{
        var p = load8(frame, (by + y) * w + bx);
        var q = load8(frame, (by + y) * w + bx + 1);
        store8(frame, (by + y) * w + bx, (p * 3 + q) / 4);
        s = s + p - q;
    }}
    return s;
}}
global cstat[8];
fn classify(x) {{
    return x & 7;
}}
fn cbump(x) {{
    var ci = classify(x);
    var cst = &cstat;
    cst[ci] = cst[ci] + 1;
    return 0;
}}
fn main() {{
    var n = input();
    var mode = input();
    srnd(464);
    var width = 64;
    var height = 48;
    var frame = malloc(width * height);
    var refframe = malloc(width * height);
    for (var i = 0; i < width * height; i = i + 1) {{
        store8(frame, i, rnd() % 256);
        store8(refframe, i, rnd() % 256);
    }}
    chk = 0;
    for (var it = 0; it < n; it = it + 1) {{
        var bx = 8 + (rnd() % (width - 24));
        var by = 8 + (rnd() % (height - 24));
        var best = 0x7fffffff;
        for (var dy = 0 - 2; dy <= 2; dy = dy + 1) {{
            for (var dx = 0 - 2; dx <= 2; dx = dx + 1) {{
                var s = sad(frame, refframe + dy * width + dx, width, bx, by);
                if (s < best) {{ best = s; }}
            }}
        }}
        chk = chk + best;
        opcount(best);
        cbump(best);
        if (mode > 0) {{
            chk = chk + halfpel(frame, refframe, width, bx, by);
            chk = chk + quarterpel(frame, refframe, width, bx, by);
            chk = chk + deblock(frame, width, bx, by);
        }}
    }}
    print(opcount(0));
    print(chk & 0xffffffff);
    return 0;
}}"
    );
    w("h264ref", Lang::C, src, vec![9, 0], vec![64, 1])
}

/// `471.omnetpp`: discrete-event simulation on a binary-heap queue.
fn omnetpp() -> Workload {
    let src = format!(
        "{PRELUDE}
fn main() {{
    var n = input();
    srnd(471);
    var cap = 4096;
    var heap = malloc(cap * 2 * 8); // (time, payload) pairs
    var size = 0;
    var now = 0;
    var chk = 0;
    // Seed events.
    for (var i = 0; i < 64; i = i + 1) {{
        heap[size * 2] = rnd() % 1000;
        heap[size * 2 + 1] = i;
        size = size + 1;
        var c = size - 1;
        while (c > 0 && heap[((c - 1) / 2) * 2] > heap[c * 2]) {{
            var p = (c - 1) / 2;
            var t = heap[p * 2]; heap[p * 2] = heap[c * 2]; heap[c * 2] = t;
            t = heap[p * 2 + 1]; heap[p * 2 + 1] = heap[c * 2 + 1]; heap[c * 2 + 1] = t;
            c = p;
        }}
    }}
    for (var ev = 0; ev < n && size > 0; ev = ev + 1) {{
        // Pop min.
        now = heap[0];
        chk = chk + now + heap[1];
        size = size - 1;
        heap[0] = heap[size * 2];
        heap[1] = heap[size * 2 + 1];
        var c = 0;
        while (1) {{
            var l = c * 2 + 1;
            var r = c * 2 + 2;
            var m = c;
            if (l < size && heap[l * 2] < heap[m * 2]) {{ m = l; }}
            if (r < size && heap[r * 2] < heap[m * 2]) {{ m = r; }}
            if (m == c) {{ break; }}
            var t = heap[m * 2]; heap[m * 2] = heap[c * 2]; heap[c * 2] = t;
            t = heap[m * 2 + 1]; heap[m * 2 + 1] = heap[c * 2 + 1]; heap[c * 2 + 1] = t;
            c = m;
        }}
        // Schedule 1-2 follow-ups.
        var spawn = 1 + (rnd() % 2);
        for (var s = 0; s < spawn && size < cap; s = s + 1) {{
            heap[size * 2] = now + 1 + (rnd() % 100);
            heap[size * 2 + 1] = ev;
            size = size + 1;
            var cc = size - 1;
            while (cc > 0 && heap[((cc - 1) / 2) * 2] > heap[cc * 2]) {{
                var p = (cc - 1) / 2;
                var t = heap[p * 2]; heap[p * 2] = heap[cc * 2]; heap[cc * 2] = t;
                t = heap[p * 2 + 1]; heap[p * 2 + 1] = heap[cc * 2 + 1]; heap[cc * 2 + 1] = t;
                cc = p;
            }}
        }}
    }}
    print(chk & 0xffffffff);
    return 0;
}}"
    );
    w("omnetpp", Lang::Cpp, src, vec![550], vec![4200])
}

/// `473.astar`: breadth-first path search over a weighted grid.
fn astar() -> Workload {
    let src = format!(
        "{PRELUDE}
global opstat[4];
fn opcount(k) {{
    var st = &opstat;
    st[0] = st[0] + 1;
    st[1] = st[1] + k;
    return st[0] + st[1];
}}
global cstat[8];
fn classify(x) {{
    return x & 7;
}}
fn cbump(x) {{
    var ci = classify(x);
    var cst = &cstat;
    cst[ci] = cst[ci] + 1;
    return 0;
}}
fn main() {{
    var n = input();
    srnd(473);
    var dim = 48;
    var cells = dim * dim;
    var cost = malloc(cells * 8);
    var dist = malloc(cells * 8);
    var queue = malloc(cells * 2 * 8);
    var chk = 0;
    for (var i = 0; i < cells; i = i + 1) {{ cost[i] = 1 + (rnd() % 9); }}
    for (var trial = 0; trial < n; trial = trial + 1) {{
        for (var i = 0; i < cells; i = i + 1) {{ dist[i] = 0x3fffffff; }}
        var start = rnd() % cells;
        dist[start] = 0;
        var head = 0;
        var tail = 0;
        queue[0] = start;
        tail = 1;
        while (head < tail) {{
            var cur = queue[head];
            head = head + 1;
            opcount(cur);
            cbump(cur);
            var d = dist[cur];
            var x = cur % dim;
            var y = cur / dim;
            // Four neighbors.
            if (x > 0 && d + cost[cur - 1] < dist[cur - 1]) {{
                dist[cur - 1] = d + cost[cur - 1];
                if (tail < cells * 2) {{ queue[tail] = cur - 1; tail = tail + 1; }}
            }}
            if (x < dim - 1 && d + cost[cur + 1] < dist[cur + 1]) {{
                dist[cur + 1] = d + cost[cur + 1];
                if (tail < cells * 2) {{ queue[tail] = cur + 1; tail = tail + 1; }}
            }}
            if (y > 0 && d + cost[cur - dim] < dist[cur - dim]) {{
                dist[cur - dim] = d + cost[cur - dim];
                if (tail < cells * 2) {{ queue[tail] = cur - dim; tail = tail + 1; }}
            }}
            if (y < dim - 1 && d + cost[cur + dim] < dist[cur + dim]) {{
                dist[cur + dim] = d + cost[cur + dim];
                if (tail < cells * 2) {{ queue[tail] = cur + dim; tail = tail + 1; }}
            }}
        }}
        chk = chk + dist[cells - 1];
    }}
    print(opcount(0));
    print(chk & 0xffffffff);
    return 0;
}}"
    );
    w("astar", Lang::Cpp, src, vec![1], vec![5])
}

/// `483.xalancbmk`: array-encoded DOM-ish tree construction and styled
/// traversal (tag matching).
fn xalancbmk() -> Workload {
    let src = format!(
        "{PRELUDE}
global chk;
fn visit(tree, node, depth) {{
    // tree node = [tag, firstchild, sibling, payload].
    if (node == 0) {{ return 0; }}
    var tag = tree[node * 4];
    if (tag == 3) {{ chk = chk + tree[node * 4 + 3]; }}
    if (tag == 5 && depth > 2) {{ chk = chk + depth; }}
    visit(tree, tree[node * 4 + 1], depth + 1);
    visit(tree, tree[node * 4 + 2], depth);
    return 0;
}}
fn main() {{
    var n = input();
    srnd(483);
    var maxnodes = 2048;
    var tree = malloc(maxnodes * 4 * 8);
    var chk0 = 0;
    for (var doc = 0; doc < n; doc = doc + 1) {{
        // Build a random tree in array form.
        var used = 1;
        for (var i = 1; i < maxnodes; i = i + 1) {{
            tree[i * 4] = rnd() % 8;
            tree[i * 4 + 1] = 0;
            tree[i * 4 + 2] = 0;
            tree[i * 4 + 3] = rnd() % 100;
            if (i > 1) {{
                var parent = 1 + (rnd() % (i - 1));
                // Prepend as first child.
                tree[i * 4 + 2] = tree[parent * 4 + 1];
                tree[parent * 4 + 1] = i;
            }}
            used = used + 1;
        }}
        chk = 0;
        visit(tree, 1, 0);
        chk0 = chk0 + chk;
    }}
    print(chk0 & 0xffffffff);
    return 0;
}}"
    );
    w("xalancbmk", Lang::Cpp, src, vec![2], vec![12])
}

/// `433.milc`: 2D lattice gauge-ish sweeps (integer su2 proxy).
fn milc() -> Workload {
    let src = format!(
        "{PRELUDE}
global opstat[4];
fn opcount(k) {{
    var st = &opstat;
    st[0] = st[0] + 1;
    st[1] = st[1] + k;
    return st[0] + st[1];
}}
global cstat[8];
fn classify(x) {{
    return x & 7;
}}
fn cbump(x) {{
    var ci = classify(x);
    var cst = &cstat;
    cst[ci] = cst[ci] + 1;
    return 0;
}}
fn main() {{
    var n = input();
    srnd(433);
    var dim = 48;
    var sites = dim * dim;
    // Each site holds a 2x2 integer matrix (4 values).
    var field = malloc(sites * 4 * 8);
    for (var i = 0; i < sites * 4; i = i + 1) {{ field[i] = (rnd() % 19) - 9; }}
    for (var sweep = 0; sweep < n; sweep = sweep + 1) {{
        for (var s = 0; s < sites; s = s + 1) {{
            // m = field[s] * field[e] + field[south] (2x2 integer),
            // through element pointers.
            opcount(s);
            cbump(s);
            var ap = field + s * 32;
            var bp = field + ((s + 1) % sites) * 32;
            var sp = field + ((s + dim) % sites) * 32;
            var a0 = ap[0];
            var a1 = ap[1];
            var a2 = ap[2];
            var a3 = ap[3];
            var b0 = bp[0];
            var b1 = bp[1];
            var b2 = bp[2];
            var b3 = bp[3];
            ap[0] = (a0 * b0 + a1 * b2 + sp[0]) % 1000;
            ap[1] = (a0 * b1 + a1 * b3 + sp[1]) % 1000;
            ap[2] = (a2 * b0 + a3 * b2 + sp[2]) % 1000;
            ap[3] = (a2 * b1 + a3 * b3 + sp[3]) % 1000;
        }}
    }}
    var chk = 0;
    for (var i = 0; i < sites * 4; i = i + 1) {{ chk = chk + field[i]; }}
    print(opcount(0));
    print(chk & 0xffffffff);
    return 0;
}}"
    );
    w("milc", Lang::C, src, vec![2], vec![9])
}

/// `470.lbm`: lattice-Boltzmann stream/collide over a 1D channel with 9
/// distribution functions (long regular sweeps -- merging heaven).
fn lbm() -> Workload {
    let src = format!(
        "{PRELUDE}
global opstat[4];
fn opcount(k) {{
    var st = &opstat;
    st[0] = st[0] + 1;
    st[1] = st[1] + k;
    return st[0] + st[1];
}}
fn main() {{
    var n = input();
    srnd(470);
    var cells = 4000;
    var f = malloc(cells * 4 * 8);
    var g = malloc(cells * 4 * 8);
    for (var i = 0; i < cells * 4; i = i + 1) {{ f[i] = 100 + (rnd() % 10); }}
    for (var t = 0; t < n; t = t + 1) {{
        for (var c = 1; c < cells - 1; c = c + 1) {{
            // Collide: relax toward local mean; stream left/right.
            // Element pointers, as a strength-reducing compiler emits.
            opcount(c);
            var fp = f + c * 32;
            var gp = g + c * 32;
            var m = (fp[0] + fp[1] + fp[2] + fp[3]) / 4;
            gp[0] = fp[0] + (m - fp[0]) / 2;
            gp[1] = fp[1 - 4] + (m - fp[1]) / 8;
            gp[2] = fp[2 + 4] + (m - fp[2]) / 8;
            gp[3] = m;
        }}
        var tmp = f; f = g; g = tmp;
    }}
    var chk = 0;
    for (var i = 0; i < cells * 4; i = i + 1) {{ chk = chk + f[i]; }}
    print(opcount(0));
    print(chk & 0xffffffff);
    return 0;
}}"
    );
    w("lbm", Lang::C, src, vec![1], vec![7])
}

/// `482.sphinx3`: Gaussian-mixture scoring of feature frames.
fn sphinx3() -> Workload {
    let src = format!(
        "{PRELUDE}
global opstat[4];
fn opcount(k) {{
    var st = &opstat;
    st[0] = st[0] + 1;
    st[1] = st[1] + k;
    return st[0] + st[1];
}}
global cstat[8];
fn classify(x) {{
    return x & 7;
}}
fn cbump(x) {{
    var ci = classify(x);
    var cst = &cstat;
    cst[ci] = cst[ci] + 1;
    return 0;
}}
fn main() {{
    var n = input();
    srnd(482);
    var dims = 13;
    var mixtures = 32;
    var means = malloc(mixtures * dims * 8);
    var vars = malloc(mixtures * dims * 8);
    var feat = malloc(dims * 8);
    for (var i = 0; i < mixtures * dims; i = i + 1) {{
        means[i] = rnd() % 256;
        vars[i] = 1 + (rnd() % 15);
    }}
    var chk = 0;
    for (var frame = 0; frame < n; frame = frame + 1) {{
        for (var d = 0; d < dims; d = d + 1) {{ feat[d] = rnd() % 256; }}
        var best = 0x7fffffff;
        for (var m = 0; m < mixtures; m = m + 1) {{
            var mp = means + m * dims * 8;
            var vp = vars + m * dims * 8;
            var score = 0;
            for (var d = 0; d < dims; d = d + 1) {{
                var diff = feat[d] - mp[d];
                score = score + (diff * diff) / vp[d];
            }}
            if (score < best) {{ best = score; }}
        }}
        chk = chk + best;
        opcount(best);
        cbump(best);
    }}
    print(opcount(0));
    print(chk & 0xffffffff);
    return 0;
}}"
    );
    w("sphinx3", Lang::C, src, vec![30], vec![240])
}

/// `444.namd`: pairwise short-range force loop with a cell list.
fn namd() -> Workload {
    let src = format!(
        "{PRELUDE}
global opstat[4];
fn opcount(k) {{
    var st = &opstat;
    st[0] = st[0] + 1;
    st[1] = st[1] + k;
    return st[0] + st[1];
}}
fn main() {{
    var n = input();
    srnd(444);
    var atoms = 128;
    var pos = malloc(atoms * 3 * 8);
    var force = malloc(atoms * 3 * 8);
    for (var i = 0; i < atoms * 3; i = i + 1) {{ pos[i] = rnd() % 1000; }}
    var chk = 0;
    for (var step = 0; step < n; step = step + 1) {{
        for (var i = 0; i < atoms * 3; i = i + 1) {{ force[i] = 0; }}
        for (var i = 0; i < atoms; i = i + 1) {{
            var pi = pos + i * 24;
            var fi = force + i * 24;
            opcount(i);
            for (var j = i + 1; j < atoms; j = j + 1) {{
                var pj = pos + j * 24;
                var dx = pi[0] - pj[0];
                var dy = pi[1] - pj[1];
                var dz = pi[2] - pj[2];
                var r2 = dx * dx + dy * dy + dz * dz;
                if (r2 < 90000 && r2 > 0) {{
                    var f = 1000000 / r2;
                    var fj = force + j * 24;
                    fi[0] = fi[0] + f * dx / 1000;
                    fj[0] = fj[0] - f * dx / 1000;
                }}
            }}
        }}
        for (var i = 0; i < atoms; i = i + 1) {{
            pos[i * 3] = (pos[i * 3] + force[i * 3] / 100) % 1000;
        }}
        chk = chk + force[0];
    }}
    print(opcount(0));
    print(chk & 0xffffffff);
    return 0;
}}"
    );
    w("namd", Lang::Cpp, src, vec![1], vec![6])
}

/// `447.dealII`: conjugate-gradient iterations on a tridiagonal system.
/// Declares a very large global table so the image's data segment
/// exceeds the modeled Memcheck limit (the paper's NR row).
fn dealii() -> Workload {
    let src = format!(
        "{PRELUDE}
global bigmesh[5000000]; // ~40 MB data segment: Memcheck NR
fn main() {{
    var n = input();
    srnd(447);
    var dim = 600;
    var diag = malloc(dim * 8);
    var off = malloc(dim * 8);
    var x = malloc(dim * 8);
    var r = malloc(dim * 8);
    var p = malloc(dim * 8);
    var ap = malloc(dim * 8);
    for (var i = 0; i < dim; i = i + 1) {{
        diag[i] = 4;
        off[i] = 0 - 1;
        x[i] = 0;
        r[i] = rnd() % 100;
        p[i] = r[i];
    }}
    var chk = 0;
    for (var it = 0; it < n; it = it + 1) {{
        // ap = A * p.
        for (var i = 0; i < dim; i = i + 1) {{
            var v = diag[i] * p[i];
            if (i > 0) {{ v = v + off[i] * p[i - 1]; }}
            if (i < dim - 1) {{ v = v + off[i] * p[i + 1]; }}
            ap[i] = v;
        }}
        var rr = 0;
        var pap = 0;
        for (var i = 0; i < dim; i = i + 1) {{ rr = rr + r[i] * r[i]; pap = pap + p[i] * ap[i]; }}
        if (pap == 0) {{ break; }}
        var alpha = (rr * 16) / pap;
        for (var i = 0; i < dim; i = i + 1) {{
            x[i] = x[i] + (alpha * p[i]) / 16;
            r[i] = r[i] - (alpha * ap[i]) / 16;
        }}
        var rr2 = 0;
        for (var i = 0; i < dim; i = i + 1) {{ rr2 = rr2 + r[i] * r[i]; }}
        if (rr == 0) {{ break; }}
        var beta = (rr2 * 16) / rr;
        for (var i = 0; i < dim; i = i + 1) {{ p[i] = r[i] + (beta * p[i]) / 16; }}
        chk = chk + x[0];
    }}
    print(chk & 0xffffffff);
    return 0;
}}"
    );
    w("dealII", Lang::Cpp, src, vec![5], vec![28])
}

/// `450.soplex`: dense simplex tableau pivots.
fn soplex() -> Workload {
    let src = format!(
        "{PRELUDE}
fn main() {{
    var n = input();
    srnd(450);
    var rows = 40;
    var cols = 56;
    var tab = malloc(rows * cols * 8);
    for (var i = 0; i < rows * cols; i = i + 1) {{ tab[i] = (rnd() % 21) - 10; }}
    var chk = 0;
    for (var it = 0; it < n; it = it + 1) {{
        // Pick pivot: most negative in row 0.
        var pc = 1;
        for (var j = 1; j < cols; j = j + 1) {{
            if (tab[j] < tab[pc]) {{ pc = j; }}
        }}
        var pr = 1 + (it % (rows - 1));
        var pivot = tab[pr * cols + pc];
        if (pivot == 0) {{ pivot = 1; }}
        // Row reduce every other row (integer scaled) through row
        // pointers, as a compiler hoists the row base computations.
        var prow = tab + pr * cols * 8;
        for (var i = 0; i < rows; i = i + 1) {{
            if (i != pr) {{
                var row = tab + i * cols * 8;
                var factor = row[pc];
                for (var j = 0; j < cols; j = j + 1) {{
                    row[j] = row[j] - (factor * prow[j]) / pivot;
                    row[j] = row[j] % 100000;
                }}
            }}
        }}
        chk = chk + tab[pc];
    }}
    print(chk & 0xffffffff);
    return 0;
}}"
    );
    w("soplex", Lang::Cpp, src, vec![6], vec![33])
}

/// `453.povray`: integer ray-sphere intersection over an object grid,
/// with a Newton integer square root. One anti-idiom table.
fn povray() -> Workload {
    let src = format!(
        "{PRELUDE}
global chk;
fn isqrt(v) {{
    if (v <= 0) {{ return 0; }}
    var x = v;
    var y = (x + 1) / 2;
    while (y < x) {{ x = y; y = (x + v / x) / 2; }}
    return x;
}}
fn main() {{
    var n = input();
    srnd(453);
    var nspheres = 64;
    // sphere = [cx, cy, cz, r].
    var sph = malloc(nspheres * 4 * 8);
    for (var i = 0; i < nspheres; i = i + 1) {{
        sph[i * 4] = rnd() % 2000;
        sph[i * 4 + 1] = rnd() % 2000;
        sph[i * 4 + 2] = 500 + (rnd() % 2000);
        sph[i * 4 + 3] = 50 + (rnd() % 200);
    }}
    // Anti-idiom: biased color-table view (1 site).
    var colors = malloc(16 * 8);
    for (var i = 0; i < 16; i = i + 1) {{ colors[i] = i * 17; }}
    var colors1 = colors - 64;
    chk = 0;
    var step = 0;
    for (var ray = 0; ray < n; ray = ray + 1) {{
        var ox = rnd() % 2000;
        var oy = rnd() % 2000;
        var hit = 0;
        var nearest = 0x7fffffff;
        for (var s = 0; s < nspheres; s = s + 1) {{
            var dx = sph[s * 4] - ox;
            var dy = sph[s * 4 + 1] - oy;
            var d2 = dx * dx + dy * dy;
            var r = sph[s * 4 + 3];
            if (d2 <= r * r) {{
                var z = sph[s * 4 + 2] - isqrt(r * r - d2);
                if (z < nearest) {{ nearest = z; hit = s + 1; }}
            }}
        }}
        if (hit > 0) {{
            chk = chk + nearest + colors1[8 + (hit % 8)];
        }}
        step = step + 1;
    }}
    print(chk & 0xffffffff);
    return 0;
}}"
    );
    let mut wl = w("povray", Lang::Cpp, src, vec![200], vec![1400]);
    wl.anti_idiom_sites = 1;
    wl
}

/// `410.bwaves` (Fortran): 3D 7-point stencil over 1-based arrays; the
/// gfortran-style base bias yields 5 anti-idiom sites.
fn bwaves() -> Workload {
    let src = format!(
        "{PRELUDE}
global chk;
fn main() {{
    var n = input();
    srnd(410);
    var d = 14;
    var off = 1 + d + d * d;
    var cells = d * d * d;
    var u0 = malloc(cells * 8);
    var u1 = malloc(cells * 8);
    // Fortran 1-based view: u(1:d,1:d,1:d) lowered as base - stride.
    var f0 = u0 - 8 * off;
    var f1 = u1;
    for (var i = 0; i < cells; i = i + 1) {{ u0[i] = rnd() % 100; }}
    var step = 0;
    for (var t = 0; t < n; t = t + 1) {{
        for (var z = 2; z < d; z = z + 1) {{
            for (var y = 2; y < d; y = y + 1) {{
                for (var x = 2; x < d; x = x + 1) {{
                    var c = x + y * d + z * d * d;
                    // Five anti-idiom accesses through the 1-based view.
                    var acc = f0[c];
                    acc = acc + f0[c + 1];
                    acc = acc + f0[c - 1];
                    acc = acc + f0[c + d];
                    chk = chk + f0[c - d];
                    f1[c - off] = (acc + chk % 3) / 4;
                }}
            }}
        }}
        var tmp = u0; u0 = u1; u1 = tmp;
        f0 = u0 - 8 * off;
        f1 = u1;
        step = step + 1;
    }}
    print(chk & 0xffffffff);
    return 0;
}}"
    );
    let mut wl = w("bwaves", Lang::Fortran, src, vec![3], vec![30]);
    wl.anti_idiom_sites = 5;
    wl
}

/// `416.gamess` (Fortran): quartet integral loops; the `ref` basis set
/// enables a second integral class unseen in training (43% coverage).
fn gamess() -> Workload {
    let src = format!(
        "{PRELUDE}
global chk;
fn eri(bas, i, j, k, l) {{
    var v = bas[i] * bas[j] + bas[k] * bas[l];
    return v % 1000;
}}
fn eri2(bas, zeta, i, j) {{
    var v = bas[i] * zeta[j] - zeta[i] * bas[j];
    var s = 0;
    for (var m = 0; m < 4; m = m + 1) {{ s = s + (v >> m) + zeta[(i + m) % 24]; }}
    return s % 1000;
}}
fn main() {{
    var n = input();
    var mode = input();
    srnd(416);
    var bas = malloc(24 * 8);
    var zeta = malloc(24 * 8);
    for (var i = 0; i < 24; i = i + 1) {{ bas[i] = 1 + (rnd() % 50); zeta[i] = 1 + (rnd() % 9); }}
    chk = 0;
    for (var it = 0; it < n; it = it + 1) {{
        for (var i = 0; i < 24; i = i + 1) {{
            for (var j = 0; j <= i; j = j + 1) {{
                chk = chk + eri(bas, i, j, (i + j) % 24, (i * j) % 24);
                if (mode > 0) {{
                    chk = chk + eri2(bas, zeta, i, j);
                }}
            }}
        }}
    }}
    print(chk & 0xffffffff);
    return 0;
}}"
    );
    w("gamess", Lang::Fortran, src, vec![8, 0], vec![58, 1])
}

/// `434.zeusmp` (Fortran): 2D MHD-ish stencil. Tagged as requiring x87
/// (the documented Valgrind failure). Mode-gated boundary physics keeps
/// coverage low.
fn zeusmp() -> Workload {
    let src = format!(
        "{PRELUDE}
global chk;
fn boundary(v, d) {{
    var s = 0;
    for (var i = 0; i < d; i = i + 1) {{
        v[i] = v[i + d];
        v[(d - 1) * d + i] = v[(d - 2) * d + i];
        s = s + v[i];
    }}
    return s;
}}
fn mhd_corner(v, b, d) {{
    var s = 0;
    for (var i = 1; i < d - 1; i = i + 1) {{
        var c = i * d + i;
        v[c] = (v[c] + b[c] * 2) / 3;
        s = s + v[c];
    }}
    return s;
}}
fn main() {{
    var n = input();
    var mode = input();
    srnd(434);
    var d = 40;
    var v = malloc(d * d * 8);
    var b = malloc(d * d * 8);
    for (var i = 0; i < d * d; i = i + 1) {{ v[i] = rnd() % 100; b[i] = rnd() % 50; }}
    chk = 0;
    for (var t = 0; t < n; t = t + 1) {{
        for (var y = 1; y < d - 1; y = y + 1) {{
            var vr = v + y * d * 8;
            var vu = v + (y - 1) * d * 8;
            var vd = v + (y + 1) * d * 8;
            var br = b + y * d * 8;
            for (var x = 1; x < d - 1; x = x + 1) {{
                vr[x] = (vr[x] * 2 + vr[x - 1] + vr[x + 1] + vu[x] + vd[x] + br[x]) / 7;
            }}
        }}
        if (mode > 0) {{
            chk = chk + boundary(v, d);
            chk = chk + mhd_corner(v, b, d);
        }}
    }}
    for (var i = 0; i < d * d; i = i + 1) {{ chk = chk + v[i]; }}
    print(chk & 0xffffffff);
    return 0;
}}"
    );
    let mut wl = w("zeusmp", Lang::Fortran, src, vec![6, 0], vec![40, 1]);
    wl.requires_x87 = true;
    wl
}

/// `435.gromacs` (Fortran/C): MD inner loops with 1-based neighbor
/// lists: 3 anti-idiom sites.
fn gromacs() -> Workload {
    let src = format!(
        "{PRELUDE}
global chk;
fn main() {{
    var n = input();
    srnd(435);
    var atoms = 128;
    var pos = malloc(atoms * 8);
    var vel = malloc(atoms * 8);
    var nbr = malloc(atoms * 4 * 8);
    // Fortran-style biased views (3 distinct false-positive sites).
    var pos1 = pos - 64;
    var vel1 = vel - 64;
    var nbr1 = nbr - 64;
    for (var i = 0; i < atoms; i = i + 1) {{
        pos[i] = rnd() % 1000;
        vel[i] = (rnd() % 21) - 10;
        for (var k = 0; k < 4; k = k + 1) {{ nbr[i * 4 + k] = rnd() % atoms; }}
    }}
    var step = 0;
    for (var t = 0; t < n; t = t + 1) {{
        for (var i = 0; i < atoms; i = i + 1) {{
            var f = 0;
            for (var k = 0; k < 4; k = k + 1) {{
                var j = nbr[i * 4 + k];
                var dx = pos[i] - pos[j];
                if (dx > 500) {{ dx = dx - 1000; }}
                if (dx < 0 - 500) {{ dx = dx + 1000; }}
                f = f - dx / 16;
            }}
            vel[i] = (vel[i] + f) % 97;
            chk = chk + f;
        }}
        // Three anti-idiom accesses through the biased views.
        chk = chk + pos1[8 + (step % 8)];
        chk = chk + vel1[8 + (step % 8)];
        chk = chk + nbr1[8 + (step % 8)];
        for (var i = 0; i < atoms; i = i + 1) {{
            pos[i] = (pos[i] + vel[i] + 1000) % 1000;
        }}
        step = step + 1;
    }}
    print(chk & 0xffffffff);
    return 0;
}}"
    );
    let mut wl = w("gromacs", Lang::Fortran, src, vec![16], vec![110]);
    wl.anti_idiom_sites = 3;
    wl
}

/// `436.cactusADM` (Fortran/C): 3D grid relaxation with an unrolled
/// inner update (consecutive constant-offset stores: batching/merging
/// material).
fn cactusadm() -> Workload {
    let src = format!(
        "{PRELUDE}
fn main() {{
    var n = input();
    srnd(436);
    var d = 12;
    var cells = d * d * d;
    var g = malloc(cells * 4 * 8);
    for (var i = 0; i < cells * 4; i = i + 1) {{ g[i] = rnd() % 64; }}
    for (var t = 0; t < n; t = t + 1) {{
        for (var z = 1; z < d - 1; z = z + 1) {{
            for (var y = 1; y < d - 1; y = y + 1) {{
                for (var x = 1; x < d - 1; x = x + 1) {{
                    var c = (x + y * d + z * d * d) * 4;
                    var east = c + 4;
                    var west = c - 4;
                    var lap = g[east] + g[west] - 2 * g[c];
                    var p = g + c * 8;
                    // Unrolled 4-component update through one pointer.
                    p[0] = g[c] + lap / 4;
                    p[1] = g[c + 1] + lap / 8;
                    p[2] = g[c + 2] - lap / 8;
                    p[3] = (p[0] + p[1] + p[2]) % 4096;
                }}
            }}
        }}
    }}
    var chk = 0;
    for (var i = 0; i < cells * 4; i = i + 1) {{ chk = chk + g[i]; }}
    print(chk & 0xffffffff);
    return 0;
}}"
    );
    w("cactusADM", Lang::Fortran, src, vec![4], vec![44])
}

/// `437.leslie3d` (Fortran): triple-nested smoothing sweeps.
fn leslie3d() -> Workload {
    let src = format!(
        "{PRELUDE}
fn main() {{
    var n = input();
    srnd(437);
    var d = 16;
    var cells = d * d * d;
    var u = malloc(cells * 8);
    var v = malloc(cells * 8);
    for (var i = 0; i < cells; i = i + 1) {{ u[i] = rnd() % 256; }}
    for (var t = 0; t < n; t = t + 1) {{
        for (var z = 1; z < d - 1; z = z + 1) {{
            for (var y = 1; y < d - 1; y = y + 1) {{
                var rowdown = u + (y - 1) * d * 8 + z * d * d * 8;
                var rowup = u + (y + 1) * d * 8 + z * d * d * 8;
                var rowin = u + y * d * 8 + (z - 1) * d * d * 8;
                var rowout = u + y * d * 8 + (z + 1) * d * d * 8;
                var row = u + y * d * 8 + z * d * d * 8;
                var vrow = v + y * d * 8 + z * d * d * 8;
                for (var x = 1; x < d - 1; x = x + 1) {{
                    vrow[x] = (row[x] * 6 + row[x - 1] + row[x + 1] + rowdown[x]
                            + rowup[x] + rowin[x] + rowout[x]) / 12;
                }}
            }}
        }}
        var tmp = u; u = v; v = tmp;
    }}
    var chk = 0;
    for (var i = 0; i < cells; i = i + 1) {{ chk = chk + u[i]; }}
    print(chk & 0xffffffff);
    return 0;
}}"
    );
    w("leslie3d", Lang::Fortran, src, vec![2], vec![16])
}

/// `454.calculix` (Fortran/C): FEM assembly/solve. Plants the paper's
/// four real `array[-1]` read underflows in `main` (ref-gated) and two
/// anti-idiom sites.
fn calculix() -> Workload {
    let src = format!(
        "{PRELUDE}
global chk;
fn assemble(kmat, dim, e) {{
    var r = e % (dim - 1);
    kmat[r * dim + r] = kmat[r * dim + r] + 4;
    kmat[r * dim + r + 1] = kmat[r * dim + r + 1] - 1;
    kmat[(r + 1) * dim + r] = kmat[(r + 1) * dim + r] - 1;
    return 0;
}}
fn main() {{
    var n = input();
    var mode = input();
    srnd(454);
    var dim = 64;
    var kmat = calloc(dim * dim, 8);
    var f = malloc(dim * 8);
    var x = malloc(dim * 8);
    var one = malloc(16 * 8);
    for (var i = 0; i < 16; i = i + 1) {{ one[i] = i; }}
    var one1 = one - 64; // anti-idiom site carrier
    for (var i = 0; i < dim; i = i + 1) {{ f[i] = rnd() % 100; x[i] = 0; }}
    for (var e = 0; e < n; e = e + 1) {{ assemble(kmat, dim, e); }}
    // Gauss-Seidel sweeps.
    for (var it = 0; it < n / 4 + 4; it = it + 1) {{
        for (var i = 0; i < dim; i = i + 1) {{
            var s = f[i];
            if (i > 0) {{ s = s - kmat[i * dim + i - 1] * x[i - 1]; }}
            if (i < dim - 1) {{ s = s - kmat[i * dim + i + 1] * x[i + 1]; }}
            var dd = kmat[i * dim + i];
            if (dd == 0) {{ dd = 1; }}
            x[i] = s / dd;
        }}
    }}
    chk = 0;
    // Two anti-idiom reads.
    chk = chk + one1[8 + (n % 8)];
    chk = chk + one1[8 + ((n / 2) % 8)];
    if (mode > 0) {{
        // The four real read underflows the paper reports in main():
        // all of the form array[-1].
        chk = chk + f[0 - 1];
        chk = chk + x[0 - 1];
        chk = chk + kmat[0 - 1];
        chk = chk + one[0 - 1];
    }}
    for (var i = 0; i < dim; i = i + 1) {{ chk = chk + x[i]; }}
    print(chk & 0xffffffff);
    return 0;
}}"
    );
    let mut wl = w("calculix", Lang::Fortran, src, vec![260, 0], vec![2800, 1]);
    wl.anti_idiom_sites = 2;
    wl.planted_errors = 4;
    wl
}

/// `459.GemsFDTD` (Fortran): E/H field updates through 1-based views;
/// 32 distinct anti-idiom sites (the largest FP population in §7.1).
fn gemsfdtd() -> Workload {
    let anti = anti_idiom_reads("ez1", 8, 32);
    let src = format!(
        "{PRELUDE}
global chk;
fn main() {{
    var n = input();
    srnd(459);
    var d = 48;
    var cells = d * d;
    var ez = malloc(cells * 8);
    var hx = malloc(cells * 8);
    var hy = malloc(cells * 8);
    var ez1 = ez - 64; // Fortran non-zero-base view
    for (var i = 0; i < cells; i = i + 1) {{ ez[i] = rnd() % 32; }}
    chk = 0;
    var step = 0;
    for (var t = 0; t < n; t = t + 1) {{
        for (var y = 0; y < d - 1; y = y + 1) {{
            var hxr = hx + y * d * 8;
            var hyr = hy + y * d * 8;
            var ezr = ez + y * d * 8;
            var ezd = ez + (y + 1) * d * 8;
            for (var x = 0; x < d - 1; x = x + 1) {{
                hxr[x] = hxr[x] - (ezd[x] - ezr[x]) / 2;
                hyr[x] = hyr[x] + (ezr[x + 1] - ezr[x]) / 2;
            }}
        }}
        for (var y = 1; y < d; y = y + 1) {{
            var hxr = hx + y * d * 8;
            var hxu = hx + (y - 1) * d * 8;
            var hyr = hy + y * d * 8;
            var ezr = ez + y * d * 8;
            for (var x = 1; x < d; x = x + 1) {{
                ezr[x] = ezr[x] + (hyr[x] - hyr[x - 1] - hxr[x] + hxu[x]) / 2;
            }}
        }}
{anti}
        step = step + 1;
    }}
    print(chk & 0xffffffff);
    return 0;
}}"
    );
    let mut wl = w("GemsFDTD", Lang::Fortran, src, vec![2], vec![16]);
    wl.anti_idiom_sites = 32;
    wl
}

/// `465.tonto` (Fortran): Gaussian basis recurrence accumulation.
fn tonto() -> Workload {
    let src = format!(
        "{PRELUDE}
global chk;
fn recurrence(coef, m) {{
    // Three-term integer recurrence over a coefficient table.
    var a = malloc((m + 2) * 8);
    a[0] = 1;
    a[1] = coef[0];
    for (var k = 2; k <= m; k = k + 1) {{
        a[k] = (coef[k % 16] * a[k - 1] + (k - 1) * a[k - 2]) % 100003;
    }}
    var v = a[m];
    free(a);
    return v;
}}
fn main() {{
    var n = input();
    srnd(465);
    var coef = malloc(16 * 8);
    for (var i = 0; i < 16; i = i + 1) {{ coef[i] = 1 + (rnd() % 9); }}
    chk = 0;
    for (var it = 0; it < n; it = it + 1) {{
        chk = chk + recurrence(coef, 8 + (it % 24));
    }}
    print(chk & 0xffffffff);
    return 0;
}}"
    );
    w("tonto", Lang::Fortran, src, vec![300], vec![3300])
}

/// `481.wrf` (Fortran): layered atmosphere stencils with 26 anti-idiom
/// sites (the `fqy(i,k,jp1)` pattern of §7.1) and the paper's one real
/// read overflow in `interp_fcn` (ref-gated).
fn wrf() -> Workload {
    let anti = anti_idiom_reads("fqy", 8, 26);
    let src = format!(
        "{PRELUDE}
global chk;
fn interp_fcn(col, levels, mode) {{
    var s = 0;
    for (var k = 0; k < levels; k = k + 1) {{ s = s + col[k] * (levels - k); }}
    if (mode > 0) {{
        // The real read overflow the paper reports: one past the end.
        s = s + col[levels];
    }}
    return s;
}}
fn main() {{
    var n = input();
    var mode = input();
    srnd(481);
    var nx = 24;
    var nz = 16;
    var grid = malloc(nx * nz * 8);
    var col = malloc(nz * 8);
    var qy = malloc(64 * 8);
    var fqy = qy - 64; // fqy(its:ite,...) lowering: biased base
    for (var i = 0; i < nx * nz; i = i + 1) {{ grid[i] = rnd() % 64; }}
    for (var i = 0; i < 64; i = i + 1) {{ qy[i] = rnd() % 16; }}
    chk = 0;
    var step = 0;
    for (var t = 0; t < n; t = t + 1) {{
        // Vertical advection per column.
        for (var x = 0; x < nx; x = x + 1) {{
            for (var k = 0; k < nz; k = k + 1) {{ col[k] = grid[k * nx + x]; }}
            chk = chk + interp_fcn(col, nz, 0);
            for (var k = 1; k < nz - 1; k = k + 1) {{
                grid[k * nx + x] = (col[k] * 2 + col[k - 1] + col[k + 1]) / 4;
            }}
        }}
{anti}
        step = step + 1;
    }}
    if (mode > 0) {{
        chk = chk + interp_fcn(col, nz, 1);
    }}
    print(chk & 0xffffffff);
    return 0;
}}"
    );
    let mut wl = w("wrf", Lang::Fortran, src, vec![8, 0], vec![80, 1]);
    wl.anti_idiom_sites = 26;
    wl.planted_errors = 1;
    wl
}

/// All 29 Table 1 benchmarks, in the paper's row order.
pub fn all() -> Vec<Workload> {
    vec![
        perlbench(),
        bzip2(),
        gcc(),
        mcf(),
        gobmk(),
        hmmer(),
        sjeng(),
        libquantum(),
        h264ref(),
        omnetpp(),
        astar(),
        xalancbmk(),
        milc(),
        lbm(),
        sphinx3(),
        namd(),
        dealii(),
        soplex(),
        povray(),
        bwaves(),
        gamess(),
        zeusmp(),
        gromacs(),
        cactusadm(),
        leslie3d(),
        calculix(),
        gemsfdtd(),
        tonto(),
        wrf(),
    ]
}

/// Looks a workload up by name.
pub fn by_name(name: &str) -> Option<Workload> {
    all().into_iter().find(|w| w.name == name)
}
