//! "kromium": the very large generated binary standing in for Google
//! Chrome in the scalability experiment (paper §7.3).
//!
//! The paper's point is that trampoline-based rewriting scales to
//! binaries far larger than SPEC -- Chrome is ~149 MB and "much larger
//! than the SPEC2006 binaries combined". This generator produces a
//! binary with the same *structural* property: thousands of distinct
//! functions full of instrumentable memory operations (the "browser"),
//! plus the fourteen Kraken kernels on the hot path. The rewriter must
//! chew through every function; execution only touches the kernel
//! selected by the input (plus a startup sweep), exactly like a browser
//! running a JS benchmark.
//!
//! Input protocol: `[kernel_id, scale]`; kernel 0 performs the startup
//! sweep over a sample of generated functions.

use crate::{kraken, Lang, Workload, PRELUDE};

/// Number of generated "browser" functions.
pub const DEFAULT_FILLERS: usize = 3400;

/// Generates one filler function. Each has a distinct mix of loads,
/// stores, constant-offset runs, calls and branches so the rewriter
/// sees diverse material (seeded, deterministic).
fn filler(i: usize) -> String {
    let a = (i * 7919 + 13) % 23 + 2;
    let b = (i * 104729 + 7) % 11 + 1;
    let c = (i * 31 + 5) % 5;
    format!(
        "
fn browser_fn_{i}(x) {{
    var buf = malloc({len} * 8);
    buf[0] = x;
    buf[1] = x + {a};
    buf[2] = x * {b};
    buf[3] = x - {c};
    var acc = 0;
    for (var k = 0; k < {len}; k = k + 1) {{
        buf[k % {len}] = acc + k * {b};
        acc = acc + buf[(k * {a}) % {len}];
    }}
    if (acc % 2 == 0) {{ acc = acc + buf[{c}]; }} else {{ acc = acc - buf[1]; }}
    free(buf);
    return acc % 100000;
}}",
        len = a + 4,
    )
}

/// Builds the kromium source with `fillers` generated functions.
pub fn source(fillers: usize) -> String {
    let mut src = String::with_capacity(fillers * 512);
    src.push_str(PRELUDE);
    src.push_str(&kraken::kernels_source());
    for i in 0..fillers {
        src.push_str(&filler(i));
    }
    // Startup sweep: touch a spread of browser functions.
    src.push_str("\nfn startup() {\n    var acc = 0;\n");
    let step = (fillers / 48).max(1);
    for i in (0..fillers).step_by(step) {
        src.push_str(&format!("    acc = acc + browser_fn_{i}(acc + {i});\n"));
    }
    src.push_str("    return acc;\n}\n");
    src.push_str(
        "
fn main() {
    srnd(80);
    var kernel = input();
    var scale = input();
    if (kernel == 0) { print(startup()); return 0; }
    print(run_kernel(kernel, scale));
    return 0;
}
",
    );
    src
}

/// Builds the kromium workload with the default size.
pub fn build() -> Workload {
    Workload {
        name: "kromium",
        lang: Lang::Cpp,
        source: source(DEFAULT_FILLERS),
        train_input: vec![0, 1],
        ref_input: vec![0, 1],
        requires_x87: false,
        planted_errors: 0,
        anti_idiom_sites: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kromium_is_much_larger_than_a_spec_binary() {
        let img = build().image();
        let code: u64 = img.exec_segments().map(|s| s.data.len() as u64).sum();
        let spec_img = crate::spec::by_name("gcc").unwrap().image();
        let spec_code: u64 = spec_img.exec_segments().map(|s| s.data.len() as u64).sum();
        assert!(code > 20 * spec_code, "kromium {code} vs gcc {spec_code}");
        assert!(code > 1 << 20, "over a MiB of code ({code})");
    }

    #[test]
    fn startup_and_kernels_run() {
        use redfat_emu::{Emu, ErrorMode, HostRuntime, RunResult};
        let img = build().image();
        for input in [vec![0, 1], vec![1, 1], vec![14, 1]] {
            let rt = HostRuntime::new(ErrorMode::Abort).with_input(input.clone());
            let mut emu = Emu::load_image(&img, rt).expect("loads");
            let r = emu.run(200_000_000);
            assert_eq!(r, RunResult::Exited(0), "input {input:?}");
            assert_eq!(emu.runtime.io.out_ints.len(), 1);
        }
    }
}
