//! Workloads for the RedFat experiments.
//!
//! The paper evaluates on SPEC CPU2006, four real-world CVEs, the Juliet
//! CWE-122 subset, and Google Chrome under the Kraken browser benchmark.
//! None of those artifacts can run on this substrate, so this crate
//! provides *synthetic stand-ins compiled from mini-C*, each imitating
//! the memory-access idiom of its original (see `DESIGN.md` §2 for the
//! substitution argument):
//!
//! * [`spec::all`] -- 29 benchmarks named after their SPEC counterparts,
//!   with `train` and `ref` inputs driving the §5 two-phase workflow.
//!   Benchmarks tagged Fortran embed non-zero-base array arithmetic (the
//!   `array - K` anti-idiom), reproducing the false-positive population
//!   of §7.1; `calculix`/`wrf` carry the paper's *real* planted read
//!   errors; `dealII`/`zeusmp` model the Memcheck NR rows.
//! * [`cve::all`] -- the four CVE reproductions of Table 2, each with a
//!   benign input and an attacker input whose offset skips over redzones.
//! * [`juliet::generate`] -- a 480-case non-incremental heap-overflow
//!   suite in the style of Juliet CWE-122.
//! * [`kraken::all`] -- the Kraken-like suite and [`kromium::build`], a
//!   very large generated binary standing in for Chrome (§7.3).
//! * [`skips::all`] -- computed-pointer slot-skip cases whose access
//!   carries no provenance: the bug class that separates the
//!   deterministic and randomized allocator policies.

pub mod cve;
pub mod juliet;
pub mod kraken;
pub mod kromium;
pub mod skips;
pub mod spec;

use redfat_elf::Image;
use redfat_minic::compile;

/// Source language of the original benchmark (provenance/coloring).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lang {
    /// C.
    C,
    /// C++.
    Cpp,
    /// Fortran.
    Fortran,
}

/// A benchmark workload: source plus inputs and provenance metadata.
pub struct Workload {
    /// Benchmark name (SPEC name for the stand-ins).
    pub name: &'static str,
    /// Original benchmark's source language.
    pub lang: Lang,
    /// mini-C source.
    pub source: String,
    /// `train` input (profiling phase).
    pub train_input: Vec<i64>,
    /// `ref` input (measurement phase).
    pub ref_input: Vec<i64>,
    /// Models Valgrind's x87 limitation (`zeusmp`).
    pub requires_x87: bool,
    /// Expected planted real memory errors under full checking on the
    /// ref input (`calculix` = 4, `wrf` = 1).
    pub planted_errors: usize,
    /// Number of distinct anti-idiom (intentional OOB base) sites, which
    /// become false positives without the allow-list (§7.1).
    pub anti_idiom_sites: usize,
}

impl Workload {
    /// Compiles the workload to an ELF image.
    ///
    /// # Panics
    ///
    /// Panics if the embedded source fails to compile -- that is a bug in
    /// this crate, covered by tests.
    pub fn image(&self) -> Image {
        match compile(&self.source) {
            Ok(img) => img,
            Err(e) => panic!("workload {} failed to compile: {e}", self.name),
        }
    }
}

/// Shared mini-C prelude: a deterministic 63-bit LCG.
pub(crate) const PRELUDE: &str = "
global rngstate;
fn srnd(seed) { rngstate = seed * 2 + 1; return 0; }
fn rnd() {
    rngstate = rngstate * 6364136223846793005 + 1442695040888963407;
    return (rngstate >> 33) & 0x3fffffff;
}
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prelude_compiles() {
        let src = format!("{PRELUDE} fn main() {{ srnd(1); print(rnd() > 0); return 0; }}");
        assert!(compile(&src).is_ok());
    }
}
