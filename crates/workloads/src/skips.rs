//! The **computed-pointer slot-skip** suite: the bug class that
//! separates the allocator backends.
//!
//! Every Table 2 CVE accesses the heap *through the victim's base
//! register* (`palette[idx]`), so the emitted Figure-4 check inherits
//! the victim's provenance and catches the skip. This suite instead
//! materializes the out-of-bounds address into a fresh register first
//! (`var p = a + idx * 8; p[0] = v`), so the check's base-register
//! provenance proxy sees only the *landing* slot:
//!
//! * Under the deterministic low-fat policy, sequential allocation puts
//!   a live same-class neighbor exactly one slot over; the landing
//!   slot's extent metadata covers the access and the check passes --
//!   a **missed** bug.
//! * Under the randomized policy, the slot adjacent to the victim is
//!   (with high probability) unallocated, its metadata reads `E == 0`
//!   (Free), and the merged check reports the access.
//!
//! Allocation sizes are chosen so `size + 16` fills its class exactly,
//! mirroring the CVE suite's worst case for redzone-only tools.

use crate::{Lang, Workload, PRELUDE};

/// A slot-skip test case: a workload plus benign/attack inputs.
pub struct SkipCase {
    /// The program.
    pub workload: Workload,
    /// In-bounds index: behaves identically under every policy.
    pub benign_input: Vec<i64>,
    /// Index that lands the access exactly one class-size slot past the
    /// victim object, through a computed pointer.
    pub attack_input: Vec<i64>,
}

fn source(elems: u64, write: bool) -> String {
    let access = if write {
        "p[0] = 0x42;"
    } else {
        "var v = p[0]; print(v);"
    };
    format!(
        "{PRELUDE}
fn main() {{
    var a = malloc({elems} * 8);
    var b = malloc({elems} * 8); // same class: the deterministic neighbor
    for (var i = 0; i < {elems}; i = i + 1) {{ a[i] = i; b[i] = 0x77; }}
    var idx = input();
    var p = a + idx * 8;   // address computed away from the base register
    {access}
    print(a[0] + b[0]);
    return 0;
}}"
    )
}

fn case(name: &'static str, class_size: u64, write: bool) -> SkipCase {
    // size + 16 fills the class exactly (the CVE-suite sizing rule).
    let elems = (class_size - 16) / 8;
    let benign = vec![1];
    // idx * 8 == class_size: the access lands at the adjacent slot's
    // user offset, past the victim's trailing redzone.
    let attack = vec![(class_size / 8) as i64];
    SkipCase {
        workload: Workload {
            name,
            lang: Lang::C,
            source: source(elems, write),
            train_input: benign.clone(),
            ref_input: benign.clone(),
            requires_x87: false,
            planted_errors: 0,
            anti_idiom_sites: 0,
        },
        benign_input: benign,
        attack_input: attack,
    }
}

/// All slot-skip cases: write and read variants across a 16-byte-spaced
/// class, two larger spaced classes, and a power-of-two class.
pub fn all() -> Vec<SkipCase> {
    vec![
        case("skip-272-write", 272, true),
        case("skip-272-read", 272, false),
        case("skip-528-write", 528, true),
        case("skip-528-read", 528, false),
        case("skip-1024-write", 1024, true),
        case("skip-1024-read", 1024, false),
        case("skip-2048-write", 2048, true),
        case("skip-2048-read", 2048, false),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_case_compiles_and_benign_runs_clean() {
        for case in all() {
            let image = case.workload.image();
            let out = redfat_core::run_once(
                &image,
                case.benign_input.clone(),
                redfat_emu::ErrorMode::Abort,
                10_000_000,
            );
            assert!(
                matches!(out.result, redfat_emu::RunResult::Exited(0)),
                "{}: benign run must exit cleanly ({:?})",
                case.workload.name,
                out.result
            );
        }
    }
}
