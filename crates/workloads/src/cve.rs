//! Reproductions of the four non-incremental-overflow CVEs of Table 2.
//!
//! Each case models the vulnerable pattern of its CVE: an
//! attacker-controlled value indexes a heap object without an upper (or
//! lower) bound check, and a crafted value lands the access in an
//! *adjacent live object's user data* -- past every redzone -- which is
//! exactly the class of error redzone-only tools cannot see (paper
//! Problem #1, §7.2).
//!
//! Every case provides a benign input (the program behaves) and an
//! attack input (the access skips over the victim's redzone). Allocation
//! sizes are chosen so `size + 16` fills its low-fat class exactly and
//! the adjacent allocation is live, so a redzone-only checker sees a
//! perfectly addressable access.

use crate::{Lang, Workload, PRELUDE};

/// A CVE test case: a workload plus its benign/attack inputs.
pub struct CveCase {
    /// The program.
    pub workload: Workload,
    /// Input for normal behavior.
    pub benign_input: Vec<i64>,
    /// Input whose access skips redzones into a neighboring object.
    pub attack_input: Vec<i64>,
    /// CVE identifier.
    pub cve: &'static str,
}

fn case(
    cve: &'static str,
    name: &'static str,
    source: String,
    benign: Vec<i64>,
    attack: Vec<i64>,
) -> CveCase {
    CveCase {
        workload: Workload {
            name,
            lang: Lang::C,
            source,
            train_input: benign.clone(),
            ref_input: benign.clone(),
            requires_x87: false,
            planted_errors: 0,
            anti_idiom_sites: 0,
        },
        benign_input: benign,
        attack_input: attack,
        cve,
    }
}

/// CVE-2007-3476 (php/libgd): `imagecreate` color-index overflow --
/// an attacker-controlled palette index writes past the palette array.
pub fn php_2007_3476() -> CveCase {
    let src = format!(
        "{PRELUDE}
fn main() {{
    // gdImageColorAllocate-style palette: 32 entries...
    var palette = malloc(32 * 8);
    var neighbor = malloc(32 * 8); // adjacent heap object (same class)
    for (var i = 0; i < 32; i = i + 1) {{ palette[i] = 0; neighbor[i] = 7; }}
    // Attacker controls the color index from image data.
    var idx = input();
    palette[idx] = 255; // no bounds check in vulnerable gd
    print(palette[0] + neighbor[0]);
    return 0;
}}"
    );
    // 32*8 + 16 = 272 = exactly class 272: the adjacent object's user
    // data starts 34 elements past the palette.
    case("CVE-2007-3476", "php-gd-palette", src, vec![3], vec![36])
}

/// CVE-2016-1903 (php/libgd): `gdImageRotateInterpolated` out-of-range
/// read through an attacker-controlled background index.
pub fn php_2016_1903() -> CveCase {
    let src = format!(
        "{PRELUDE}
fn main() {{
    var row = malloc(64 * 8);
    var secret = malloc(64 * 8); // adjacent object holding \"secrets\"
    for (var i = 0; i < 64; i = i + 1) {{ row[i] = i; secret[i] = 0x5ec; }}
    var bgd = input(); // attacker-controlled background color index
    var leak = row[bgd]; // unchecked read
    print(leak);
    return 0;
}}"
    );
    // 64*8 + 16 = 528 = exactly class 528: stride 66 elements.
    case("CVE-2016-1903", "php-gd-rotate", src, vec![5], vec![68])
}

/// CVE-2012-4295 (wireshark): the paper's Figure 1. `m_vc_index_array`
/// has 5 byte-entries; `speed - 1` indexes it without an upper bound.
pub fn wireshark_2012_4295() -> CveCase {
    let src = format!(
        "{PRELUDE}
fn fill_sdh_g707_format(fmt, bit_flds, vc_size, speed) {{
    if (vc_size == 0) {{ return 0 - 1; }}
    fmt[0] = vc_size;       // m_vc_size
    fmt[1] = speed;         // m_sdh_line_rate
    // memset(&m_vc_index_array[0], 0xff, 5): bytes at offset 16.
    for (var i = 0; i < 5; i = i + 1) {{ store8(fmt, 16 + i, 255); }}
    // in_fmt->m_vc_index_array[speed - 1] = 0;  <-- CVE-2012-4295
    store8(fmt, 16 + speed - 1, 0);
    return 0;
}}
fn main() {{
    // Heap-allocated sdh_g707_format_t struct (2 words + 5-byte array,
    // padded), followed by adjacent dissector state.
    var fmt = malloc(24);
    var adjacent = malloc(24);
    adjacent[0] = 0x1111;
    var speed = input(); // from a crafted packet / PCAP file
    fill_sdh_g707_format(fmt, 0, 3, speed);
    print(adjacent[0]);
    return 0;
}}"
    );
    // malloc(24)+16 -> class 48: the adjacent struct's user data begins
    // 48 bytes past fmt. speed = 40 places the write at byte offset 55,
    // clear of every redzone (the paper uses speed = 200 against
    // Memcheck's 16-byte redzones; any sufficiently large value works).
    case("CVE-2012-4295", "wireshark-sdh", src, vec![4], vec![40])
}

/// CVE-2016-2335 (7zip): NArchive HFS `ReadBlock` -- an unchecked
/// fork-descriptor offset reaches outside the block buffer.
pub fn sevenzip_2016_2335() -> CveCase {
    let src = format!(
        "{PRELUDE}
fn main() {{
    // HFS catalog block buffer and the decoder table next to it.
    var block = malloc(126 * 8);
    var table = malloc(126 * 8);
    for (var i = 0; i < 126; i = i + 1) {{ block[i] = i & 0xff; table[i] = 0x7ab; }}
    var rec_off = input(); // attacker-controlled record offset
    // ReadBlock: copies a record header without validating rec_off.
    var v0 = block[rec_off];
    var v1 = block[rec_off + 1];
    block[rec_off] = v1; // unchecked write-back
    print(v0 + v1);
    return 0;
}}"
    );
    // 126*8 + 16 = 1024 = exactly class 1024: stride 128 elements.
    case("CVE-2016-2335", "7zip-hfs", src, vec![10], vec![130])
}

/// All four Table 2 CVE cases.
pub fn all() -> Vec<CveCase> {
    vec![
        php_2007_3476(),
        php_2016_1903(),
        wireshark_2012_4295(),
        sevenzip_2016_2335(),
    ]
}
