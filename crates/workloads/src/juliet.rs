//! A generated Juliet-style CWE-122 suite: 480 heap-buffer-overflow
//! cases with *non-incremental* access patterns (paper Table 2).
//!
//! The original evaluation uses the subset of NIST's Juliet 1.3 test
//! suite whose overflows skip over redzones. This generator reproduces
//! that shape systematically: the cross product of
//!
//! * 12 allocation sizes (each filling its low-fat class exactly, so a
//!   skipping index lands in the *adjacent live object*, invisible to
//!   redzone-only checking),
//! * 5 access patterns (direct write, offset write, direct read,
//!   strided-loop write, computed-index write),
//! * 2 code shapes (inline in `main` vs through a helper function --
//!   Juliet's "baseline" vs "dataflow" variants),
//! * 4 attacker offsets (1, 2, 3 or 5 elements into the neighbor),
//!
//! giving 12 x 5 x 2 x 4 = 480 cases, each with a benign and an attack
//! input.

use crate::{Lang, Workload, PRELUDE};

/// One generated Juliet-like case.
pub struct JulietCase {
    /// The program.
    pub workload: Workload,
    /// In-bounds input.
    pub benign_input: Vec<i64>,
    /// Redzone-skipping input.
    pub attack_input: Vec<i64>,
    /// Case identifier, e.g. `CWE122_sz12_patB_fn_off2`.
    pub id: String,
}

/// Allocation element counts whose `8*n + 16` exactly fills a class.
const SIZES: [i64; 12] = [2, 4, 6, 8, 10, 12, 14, 16, 20, 24, 28, 30];

/// Access patterns.
const PATTERNS: [char; 5] = ['A', 'B', 'C', 'D', 'E'];

/// Attacker offsets into the neighbor object (elements).
const OFFSETS: [i64; 4] = [0, 1, 2, 4];

fn access_code(pattern: char) -> &'static str {
    match pattern {
        // Direct indexed write.
        'A' => "buf[idx] = 0xbad;",
        // Write at idx plus a small constant.
        'B' => "buf[idx + 1] = 0xbad;",
        // Indexed read (leak).
        'C' => "sink = buf[idx];",
        // Strided loop: one iteration skips straight into the neighbor.
        'D' => "for (var i = idx; i < idx + 1; i = i + 1) { buf[i] = 0xbad; }",
        // Index computed through arithmetic the checker cannot see through.
        'E' => "var j = (idx * 2) / 2; buf[j] = 0xbad;",
        _ => unreachable!(),
    }
}

/// Builds one case.
fn build_case(elems: i64, pattern: char, through_fn: bool, off_idx: usize) -> JulietCase {
    let access = access_code(pattern);
    let body = format!("    var sink = 0;\n    {access}\n    print(sink + buf[0] + neighbor[0]);");
    let src = if through_fn {
        format!(
            "{PRELUDE}
fn victim(buf, neighbor, idx) {{
{body}
    return 0;
}}
fn main() {{
    var buf = malloc({elems} * 8);
    var neighbor = malloc({elems} * 8);
    for (var i = 0; i < {elems}; i = i + 1) {{ buf[i] = i; neighbor[i] = 1000 + i; }}
    var idx = input();
    victim(buf, neighbor, idx);
    return 0;
}}"
        )
    } else {
        format!(
            "{PRELUDE}
fn main() {{
    var buf = malloc({elems} * 8);
    var neighbor = malloc({elems} * 8);
    for (var i = 0; i < {elems}; i = i + 1) {{ buf[i] = i; neighbor[i] = 1000 + i; }}
    var idx = input();
{body}
    return 0;
}}"
        )
    };

    // The adjacent object's user data starts `elems + 2` elements past
    // `buf` (class stride = 8*elems + 16 bytes). Keep the access inside
    // the neighbor's user area.
    let stride = elems + 2;
    let extra = OFFSETS[off_idx].min(elems - 1);
    // Pattern B adds 1 to idx itself.
    let adjust = if pattern == 'B' { 1 } else { 0 };
    let attack = stride + extra - adjust;
    let benign = (elems / 2 - adjust).max(0);

    let id = format!(
        "CWE122_sz{elems}_pat{pattern}_{}_off{}",
        if through_fn { "fn" } else { "inline" },
        OFFSETS[off_idx]
    );
    JulietCase {
        workload: Workload {
            name: "juliet-cwe122",
            lang: Lang::C,
            source: src,
            train_input: vec![benign],
            ref_input: vec![benign],
            requires_x87: false,
            planted_errors: 0,
            anti_idiom_sites: 0,
        },
        benign_input: vec![benign],
        attack_input: vec![attack],
        id,
    }
}

/// Generates the full 480-case suite.
pub fn generate() -> Vec<JulietCase> {
    let mut out = Vec::with_capacity(480);
    for &elems in &SIZES {
        for &pattern in &PATTERNS {
            for through_fn in [false, true] {
                for off_idx in 0..OFFSETS.len() {
                    out.push(build_case(elems, pattern, through_fn, off_idx));
                }
            }
        }
    }
    debug_assert_eq!(out.len(), 480);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_480_distinct_cases() {
        let suite = generate();
        assert_eq!(suite.len(), 480);
        let ids: std::collections::HashSet<&str> = suite.iter().map(|c| c.id.as_str()).collect();
        assert_eq!(ids.len(), 480, "ids must be unique");
    }

    #[test]
    fn sizes_fill_classes_exactly() {
        for &e in &SIZES {
            let total = (8 * e + 16) as u64;
            let class = redfat_vm::layout::class_for_size(total).unwrap();
            assert_eq!(
                redfat_vm::layout::class_size(class),
                total,
                "elems {e} must fill its class"
            );
        }
    }

    #[test]
    fn cases_compile() {
        // Compile a sample spanning all patterns and shapes.
        for (i, case) in generate().iter().enumerate() {
            if i % 37 == 0 {
                let _ = case.workload.image();
            }
        }
    }
}
