//! Every SPEC stand-in must compile, run both inputs deterministically,
//! and honor its metadata (planted errors, anti-idiom sites).

use redfat_emu::{Emu, ErrorMode, HostRuntime, RunResult};
use redfat_workloads::spec;

fn run_baseline(wl: &redfat_workloads::Workload, input: &[i64]) -> (RunResult, Vec<i64>, u64) {
    let image = wl.image();
    let rt = HostRuntime::new(ErrorMode::Log).with_input(input.to_vec());
    let mut emu = Emu::load_image(&image, rt).expect("loads");
    let r = emu.run(400_000_000);
    (
        r,
        emu.runtime.io.out_ints.clone(),
        emu.counters.instructions,
    )
}

#[test]
fn all_benchmarks_compile() {
    for wl in spec::all() {
        let img = wl.image();
        assert!(img.exec_segments().next().is_some(), "{} has code", wl.name);
    }
}

#[test]
fn suite_has_29_benchmarks_in_paper_order() {
    let names: Vec<&str> = spec::all().iter().map(|w| w.name).collect();
    assert_eq!(names.len(), 29);
    assert_eq!(names[0], "perlbench");
    assert_eq!(names[3], "mcf");
    assert_eq!(names[28], "wrf");
    assert!(spec::by_name("gcc").is_some());
    assert!(spec::by_name("nope").is_none());
}

#[test]
fn train_runs_exit_cleanly() {
    for wl in spec::all() {
        let (r, out, instrs) = run_baseline(&wl, &wl.train_input);
        assert_eq!(r, RunResult::Exited(0), "{} train", wl.name);
        assert!(!out.is_empty(), "{} train produced output", wl.name);
        assert!(instrs > 1_000, "{} train did real work ({instrs})", wl.name);
    }
}

#[test]
fn ref_runs_exit_cleanly_and_are_deterministic() {
    for wl in spec::all() {
        let (r1, out1, n1) = run_baseline(&wl, &wl.ref_input);
        assert_eq!(r1, RunResult::Exited(0), "{} ref", wl.name);
        let (r2, out2, n2) = run_baseline(&wl, &wl.ref_input);
        assert_eq!(r1, r2);
        assert_eq!(out1, out2, "{} nondeterministic output", wl.name);
        assert_eq!(n1, n2, "{} nondeterministic length", wl.name);
    }
}

#[test]
fn metadata_flags_are_consistent() {
    let suite = spec::all();
    let x87: Vec<&str> = suite
        .iter()
        .filter(|w| w.requires_x87)
        .map(|w| w.name)
        .collect();
    assert_eq!(x87, vec!["zeusmp"]);
    let planted: Vec<(&str, usize)> = suite
        .iter()
        .filter(|w| w.planted_errors > 0)
        .map(|w| (w.name, w.planted_errors))
        .collect();
    assert_eq!(planted, vec![("calculix", 4), ("wrf", 1)]);
    // The paper's §7.1 false-positive population.
    let fp: Vec<(&str, usize)> = suite
        .iter()
        .filter(|w| w.anti_idiom_sites > 0)
        .map(|w| (w.name, w.anti_idiom_sites))
        .collect();
    assert_eq!(
        fp,
        vec![
            ("perlbench", 1),
            ("gcc", 14),
            ("gobmk", 1),
            ("povray", 1),
            ("bwaves", 5),
            ("gromacs", 3),
            ("calculix", 2),
            ("GemsFDTD", 32),
            ("wrf", 26),
        ]
    );
}

#[test]
fn dealii_data_segment_exceeds_memcheck_limit() {
    let wl = spec::by_name("dealII").unwrap();
    let img = wl.image();
    let data: u64 = img
        .segments
        .iter()
        .filter(|s| !s.flags.executable())
        .map(|s| s.mem_size)
        .sum();
    assert!(data > 32 << 20, "dealII data segment is {data}");
}

#[test]
fn ref_is_materially_bigger_than_train() {
    for wl in spec::all() {
        let (_, _, train) = run_baseline(&wl, &wl.train_input);
        let (_, _, refn) = run_baseline(&wl, &wl.ref_input);
        assert!(refn > 2 * train, "{}: ref {refn} vs train {train}", wl.name);
    }
}
