//! Soundness oracle for the flow-sensitive passes, run over the whole
//! SPEC stand-in suite:
//!
//! 1. **Provenance oracle** (property test): every check site the static
//!    analysis eliminates -- syntactically or flow-sensitively -- must
//!    never dereference a low-fat heap address at runtime. Checked by
//!    executing the *original* image under a wrapper runtime that
//!    observes every memory access.
//! 2. **Ablation win**: "+flow" must eliminate strictly more sites than
//!    "+elim" (and cost no more cycles) on a sizable share of the suite.
//! 3. **Redundant-pass detection equivalence** (integration test): the
//!    fully optimized configuration (with redundant-check downgrading)
//!    must reach exactly the same detection verdicts as "+merge" on the
//!    Table 2 attack/benign suites.

use redfat_analysis::{analyze_image, analyze_image_opts, AnalyzeOptions, SiteVerdict};
use redfat_core::{harden, run_once, HardenConfig, LowFatPolicy};
use redfat_emu::{
    Cpu, Emu, ErrorMode, HostRuntime, MemoryError, RunResult, Runtime, SyscallOutcome,
};
use redfat_vm::{layout, Vm};
use redfat_workloads::{cve, juliet, spec};
use std::collections::BTreeSet;

/// Delegates everything to [`HostRuntime`] but records any access that
/// an *eliminated* site makes to low-fat heap memory.
struct OracleRuntime {
    inner: HostRuntime,
    eliminated: BTreeSet<u64>,
    violations: Vec<(u64, u64)>,
}

impl Runtime for OracleRuntime {
    // The oracle audits every access through the hook.
    const OBSERVES_MEMORY: bool = true;

    fn on_load(&mut self, vm: &mut Vm) {
        self.inner.on_load(vm);
    }

    fn syscall(&mut self, cpu: &mut Cpu, vm: &mut Vm) -> SyscallOutcome {
        self.inner.syscall(cpu, vm)
    }

    fn on_memory_access(
        &mut self,
        vm: &Vm,
        addr: u64,
        len: u8,
        is_write: bool,
        rip: u64,
    ) -> Result<u64, MemoryError> {
        if self.eliminated.contains(&rip) {
            let lo = addr;
            let hi = addr.wrapping_add(len as u64);
            if hi > layout::heap_start() && lo < layout::heap_end() {
                self.violations.push((rip, addr));
            }
        }
        self.inner.on_memory_access(vm, addr, len, is_write, rip)
    }
}

/// Every site the static analysis claims non-heap, on every benchmark,
/// for both train and ref inputs: the claim must hold dynamically.
#[test]
fn eliminated_sites_never_touch_the_heap() {
    for wl in spec::all() {
        let image = wl.image();
        let report = analyze_image(&image);
        let eliminated_addrs: BTreeSet<u64> = report
            .sites
            .iter()
            .filter(|s| {
                matches!(
                    s.verdict,
                    SiteVerdict::EliminatedSyntactic | SiteVerdict::EliminatedFlow
                )
            })
            .map(|s| s.addr)
            .collect();
        // The emulator reports accesses against the *fall-through* rip
        // (the step loop advances before executing), so translate each
        // eliminated site to its successor address.
        let disasm = redfat_analysis::disassemble(&image);
        let eliminated: BTreeSet<u64> = disasm
            .iter()
            .filter(|(a, _, _)| eliminated_addrs.contains(a))
            .map(|(a, _, len)| a + len as u64)
            .collect();

        for input in [&wl.train_input, &wl.ref_input] {
            let rt = OracleRuntime {
                inner: HostRuntime::new(ErrorMode::Log).with_input(input.clone()),
                eliminated: eliminated.clone(),
                violations: Vec::new(),
            };
            let mut emu = Emu::load_image(&image, rt).expect("loads");
            let r = emu.run(4_000_000_000);
            assert!(
                matches!(r, RunResult::Exited(_)),
                "{}: oracle run must exit ({r:?})",
                wl.name
            );
            assert!(
                emu.runtime.violations.is_empty(),
                "{}: {} eliminated site(s) touched the heap, first at rip {:#x} addr {:#x}",
                wl.name,
                emu.runtime.violations.len(),
                emu.runtime.violations[0].0,
                emu.runtime.violations[0].1
            );
        }
    }
}

/// The interprocedural tier makes a strictly stronger claim: sites it
/// eliminates via call summaries must also never touch the heap. Same
/// oracle, summaries enabled, all three elimination verdicts included.
#[test]
fn interproc_eliminated_sites_never_touch_the_heap() {
    for wl in spec::all() {
        let image = wl.image();
        let report = analyze_image_opts(
            &image,
            AnalyzeOptions {
                threads: 0,
                interproc: true,
            },
        );
        let eliminated_addrs: BTreeSet<u64> = report
            .sites
            .iter()
            .filter(|s| {
                matches!(
                    s.verdict,
                    SiteVerdict::EliminatedSyntactic
                        | SiteVerdict::EliminatedFlow
                        | SiteVerdict::EliminatedInterproc
                )
            })
            .map(|s| s.addr)
            .collect();
        let disasm = redfat_analysis::disassemble(&image);
        let eliminated: BTreeSet<u64> = disasm
            .iter()
            .filter(|(a, _, _)| eliminated_addrs.contains(a))
            .map(|(a, _, len)| a + len as u64)
            .collect();

        for input in [&wl.train_input, &wl.ref_input] {
            let rt = OracleRuntime {
                inner: HostRuntime::new(ErrorMode::Log).with_input(input.clone()),
                eliminated: eliminated.clone(),
                violations: Vec::new(),
            };
            let mut emu = Emu::load_image(&image, rt).expect("loads");
            let r = emu.run(4_000_000_000);
            assert!(
                matches!(r, RunResult::Exited(_)),
                "{}: interproc oracle run must exit ({r:?})",
                wl.name
            );
            assert!(
                emu.runtime.violations.is_empty(),
                "{}: {} interproc-eliminated site(s) touched the heap, \
                 first at rip {:#x} addr {:#x}",
                wl.name,
                emu.runtime.violations.len(),
                emu.runtime.violations[0].0,
                emu.runtime.violations[0].1
            );
        }
    }
}

/// The interprocedural ablation win: "+interproc" eliminates sites that
/// "+redund" cannot on at least 8 of the 29 stand-ins, never loses an
/// elimination, never costs extra cycles, and never changes output.
#[test]
fn interproc_pass_wins_on_at_least_eight_benchmarks() {
    let mut interproc_wins = 0usize;
    let suite = spec::all();
    for wl in &suite {
        let image = wl.image();
        let redund = harden(&image, &HardenConfig::with_redundant(LowFatPolicy::All)).unwrap();
        let inter = harden(&image, &HardenConfig::with_interproc(LowFatPolicy::All)).unwrap();

        assert_eq!(redund.stats.sites_eliminated_interproc, 0);
        assert!(
            inter.stats.sites_eliminated + inter.stats.sites_eliminated_flow
                >= redund.stats.sites_eliminated + redund.stats.sites_eliminated_flow,
            "{}: interproc config lost intraprocedural eliminations",
            wl.name
        );

        let base = run_once(
            &redund.image,
            wl.train_input.clone(),
            ErrorMode::Log,
            4_000_000_000,
        );
        let opt = run_once(
            &inter.image,
            wl.train_input.clone(),
            ErrorMode::Log,
            4_000_000_000,
        );
        assert_eq!(
            base.io.digest(),
            opt.io.digest(),
            "{}: +interproc changed output",
            wl.name
        );
        assert!(
            opt.counters.cycles <= base.counters.cycles,
            "{}: +interproc cost extra cycles ({} vs {})",
            wl.name,
            opt.counters.cycles,
            base.counters.cycles
        );
        if inter.stats.sites_eliminated_interproc > 0 {
            interproc_wins += 1;
        }
    }
    assert!(
        interproc_wins >= 8,
        "+interproc must eliminate extra sites on at least 8 of {} benchmarks, \
         got {interproc_wins}",
        suite.len()
    );
}

/// The tentpole's Table 1 claim: "+flow" eliminates strictly more sites
/// than "+elim" -- with no extra runtime cost -- on a large share of the
/// suite, and the redundant pass finds subsumed checks on top.
#[test]
fn flow_pass_wins_on_most_benchmarks() {
    let mut flow_wins = 0usize;
    let mut redundant_total = 0usize;
    let suite = spec::all();
    for wl in &suite {
        let image = wl.image();
        let merge = harden(&image, &HardenConfig::with_merge(LowFatPolicy::All)).unwrap();
        let flow = harden(&image, &HardenConfig::with_flow(LowFatPolicy::All)).unwrap();
        let redund = harden(&image, &HardenConfig::with_redundant(LowFatPolicy::All)).unwrap();

        assert_eq!(merge.stats.sites_eliminated_flow, 0);
        assert!(
            flow.stats.sites_eliminated >= merge.stats.sites_eliminated,
            "{}: flow config lost syntactic eliminations",
            wl.name
        );
        redundant_total += redund.stats.sites_redundant;

        if flow.stats.sites_eliminated_flow == 0 {
            continue;
        }
        // Strictly more instrumentation removed; runs must agree and
        // cost no more cycles than "+merge".
        let base = run_once(
            &merge.image,
            wl.train_input.clone(),
            ErrorMode::Log,
            4_000_000_000,
        );
        let opt = run_once(
            &flow.image,
            wl.train_input.clone(),
            ErrorMode::Log,
            4_000_000_000,
        );
        assert_eq!(
            base.io.digest(),
            opt.io.digest(),
            "{}: +flow changed output",
            wl.name
        );
        if opt.counters.cycles <= base.counters.cycles {
            flow_wins += 1;
        }
    }
    assert!(
        flow_wins >= 10,
        "+flow must win (more sites eliminated, no extra cycles) on at least \
         10 of {} benchmarks, got {flow_wins}",
        suite.len()
    );
    assert!(
        redundant_total > 0,
        "the redundant pass should fire somewhere in the suite"
    );
}

/// Zero detection regressions: the fully optimized configuration reaches
/// exactly the same verdicts as "+merge" on every Table 2 case.
#[test]
fn redundant_pass_preserves_detection_verdicts() {
    let verdict = |cfg: &HardenConfig, wl: &redfat_workloads::Workload, input: &[i64]| -> bool {
        let hardened = harden(&wl.image(), cfg).expect("hardens");
        let out = run_once(
            &hardened.image,
            input.to_vec(),
            ErrorMode::Abort,
            50_000_000,
        );
        matches!(out.result, RunResult::MemoryError(_))
    };
    let merge = HardenConfig::with_merge(LowFatPolicy::All);
    let redund = HardenConfig::with_redundant(LowFatPolicy::All);

    for case in cve::all() {
        for (input, what) in [
            (&case.benign_input, "benign"),
            (&case.attack_input, "attack"),
        ] {
            assert_eq!(
                verdict(&merge, &case.workload, input),
                verdict(&redund, &case.workload, input),
                "{} {what}: detection verdict changed under +redund",
                case.cve
            );
        }
    }
    for case in juliet::generate() {
        for (input, what) in [
            (&case.benign_input, "benign"),
            (&case.attack_input, "attack"),
        ] {
            assert_eq!(
                verdict(&merge, &case.workload, input),
                verdict(&redund, &case.workload, input),
                "juliet {} {what}: detection verdict changed under +redund",
                case.id
            );
        }
    }
}
