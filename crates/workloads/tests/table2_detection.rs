//! Table 2 end-to-end: RedFat detects every non-incremental overflow
//! (CVEs + Juliet sample); the Memcheck baseline detects none of them,
//! while both behave cleanly on benign inputs.

use redfat_core::{harden, run_once, HardenConfig, LowFatPolicy};
use redfat_emu::{Emu, ErrorMode, RunResult};
use redfat_memcheck::MemcheckRuntime;
use redfat_workloads::{cve, juliet};

fn redfat_detects(workload: &redfat_workloads::Workload, input: &[i64]) -> bool {
    let hardened = harden(
        &workload.image(),
        &HardenConfig::with_merge(LowFatPolicy::All),
    )
    .expect("hardens");
    let out = run_once(
        &hardened.image,
        input.to_vec(),
        ErrorMode::Abort,
        50_000_000,
    );
    matches!(out.result, RunResult::MemoryError(_))
}

fn redfat_clean(workload: &redfat_workloads::Workload, input: &[i64]) -> bool {
    let hardened = harden(
        &workload.image(),
        &HardenConfig::with_merge(LowFatPolicy::All),
    )
    .expect("hardens");
    let out = run_once(
        &hardened.image,
        input.to_vec(),
        ErrorMode::Abort,
        50_000_000,
    );
    matches!(out.result, RunResult::Exited(_))
}

fn memcheck_detects(workload: &redfat_workloads::Workload, input: &[i64]) -> (bool, bool) {
    let rt = MemcheckRuntime::new(ErrorMode::Abort).with_input(input.to_vec());
    let mut emu = Emu::load_image(&workload.image(), rt).expect("loads");
    emu.cost = MemcheckRuntime::cost_model();
    let r = emu.run(50_000_000);
    let detected = matches!(r, RunResult::MemoryError(_)) || !emu.runtime.errors.is_empty();
    let clean_exit = matches!(r, RunResult::Exited(_));
    (detected, clean_exit)
}

#[test]
fn cves_detected_by_redfat_missed_by_memcheck() {
    for case in cve::all() {
        // Benign inputs are clean everywhere.
        assert!(
            redfat_clean(&case.workload, &case.benign_input),
            "{}: RedFat false positive on benign input",
            case.cve
        );
        let (mc_benign, mc_clean) = memcheck_detects(&case.workload, &case.benign_input);
        assert!(!mc_benign && mc_clean, "{}: Memcheck benign", case.cve);

        // Attack inputs: RedFat 1/1, Memcheck 0/1 (Table 2).
        assert!(
            redfat_detects(&case.workload, &case.attack_input),
            "{}: RedFat must detect the attack",
            case.cve
        );
        let (mc_attack, _) = memcheck_detects(&case.workload, &case.attack_input);
        assert!(
            !mc_attack,
            "{}: Memcheck should miss the redzone-skipping attack",
            case.cve
        );
    }
}

#[test]
fn juliet_sample_detected_by_redfat_missed_by_memcheck() {
    // The full 480-case sweep runs in the table2 harness; here a
    // deterministic sample across the parameter grid keeps the test
    // fast while covering every pattern and shape.
    let suite = juliet::generate();
    assert_eq!(suite.len(), 480);
    for (i, case) in suite.iter().enumerate() {
        if i % 23 != 0 {
            continue;
        }
        assert!(
            redfat_clean(&case.workload, &case.benign_input),
            "{}: benign must be clean",
            case.id
        );
        assert!(
            redfat_detects(&case.workload, &case.attack_input),
            "{}: RedFat must detect",
            case.id
        );
        let (mc, _) = memcheck_detects(&case.workload, &case.attack_input);
        assert!(!mc, "{}: Memcheck must miss", case.id);
    }
}
