//! The instruction model: operations, operand shapes, memory operands.

use crate::reg::Reg;

/// Operand width, in the subset this crate models.
///
/// 16-bit operand size is deliberately unsupported: optimizing compilers
/// for x86-64 essentially never emit 16-bit arithmetic, and omitting it
/// removes the `0x66` prefix interactions from the encoder/decoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Width {
    /// 8-bit (low-byte registers only; `ah`-family is unsupported).
    W8,
    /// 32-bit; writes zero-extend into the full 64-bit register.
    W32,
    /// 64-bit.
    W64,
}

impl Width {
    /// Returns the width in bytes (1, 4 or 8).
    #[inline]
    pub fn bytes(self) -> u8 {
        match self {
            Width::W8 => 1,
            Width::W32 => 4,
            Width::W64 => 8,
        }
    }

    /// Returns the width in bits (8, 32 or 64).
    #[inline]
    pub fn bits(self) -> u32 {
        self.bytes() as u32 * 8
    }
}

/// Segment-override prefix. Only `fs`/`gs` are meaningful on x86-64.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Seg {
    /// `%fs` override (prefix byte `0x64`).
    Fs,
    /// `%gs` override (prefix byte `0x65`).
    Gs,
}

/// A condition code, shared by `jcc`, `setcc` and `cmovcc`.
///
/// The discriminant is the hardware 4-bit condition number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Cond {
    /// Overflow (`OF=1`).
    O = 0,
    /// No overflow.
    No = 1,
    /// Below (unsigned, `CF=1`).
    B = 2,
    /// Above or equal (unsigned).
    Ae = 3,
    /// Equal (`ZF=1`).
    E = 4,
    /// Not equal.
    Ne = 5,
    /// Below or equal (unsigned).
    Be = 6,
    /// Above (unsigned).
    A = 7,
    /// Sign (`SF=1`).
    S = 8,
    /// No sign.
    Ns = 9,
    /// Parity even.
    P = 10,
    /// Parity odd.
    Np = 11,
    /// Less (signed).
    L = 12,
    /// Greater or equal (signed).
    Ge = 13,
    /// Less or equal (signed).
    Le = 14,
    /// Greater (signed).
    G = 15,
}

impl Cond {
    /// Builds a condition from the hardware 4-bit number.
    ///
    /// # Panics
    ///
    /// Panics if `code >= 16`.
    pub fn from_code(code: u8) -> Cond {
        const ALL: [Cond; 16] = [
            Cond::O,
            Cond::No,
            Cond::B,
            Cond::Ae,
            Cond::E,
            Cond::Ne,
            Cond::Be,
            Cond::A,
            Cond::S,
            Cond::Ns,
            Cond::P,
            Cond::Np,
            Cond::L,
            Cond::Ge,
            Cond::Le,
            Cond::G,
        ];
        ALL[code as usize]
    }

    /// Returns the hardware 4-bit condition number.
    #[inline]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Returns the logically negated condition (flips the low bit, as the
    /// hardware numbering guarantees).
    #[inline]
    pub fn negate(self) -> Cond {
        Cond::from_code(self.code() ^ 1)
    }

    /// Returns the AT&T mnemonic suffix, e.g. `"e"` for [`Cond::E`].
    pub fn suffix(self) -> &'static str {
        const SUF: [&str; 16] = [
            "o", "no", "b", "ae", "e", "ne", "be", "a", "s", "ns", "p", "np", "l", "ge", "le", "g",
        ];
        SUF[self.code() as usize]
    }
}

/// A memory operand: the `seg:disp(base,index,scale)` 5-tuple of §4.1.
///
/// For RIP-relative operands (`rip == true`), `disp` holds the **absolute
/// target address** rather than the raw displacement; the encoder converts
/// back to a `rel32` for the instruction's final address. Keeping the
/// absolute form makes moving instructions into trampolines a pure
/// re-encode, with no manual displacement fix-ups at call sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mem {
    /// Optional segment override.
    pub seg: Option<Seg>,
    /// Base register, if any.
    pub base: Option<Reg>,
    /// Index register, if any. `rsp` cannot be an index.
    pub index: Option<Reg>,
    /// Scale factor applied to the index: 1, 2, 4 or 8.
    pub scale: u8,
    /// Displacement; absolute target address when `rip` is set.
    pub disp: i64,
    /// RIP-relative addressing (`disp(%rip)`).
    pub rip: bool,
}

impl Mem {
    /// An absolute 32-bit address operand (`disp32` with no registers).
    pub fn abs(addr: i64) -> Mem {
        Mem {
            seg: None,
            base: None,
            index: None,
            scale: 1,
            disp: addr,
            rip: false,
        }
    }

    /// A plain `(base)` operand.
    pub fn base(base: Reg) -> Mem {
        Mem::base_disp(base, 0)
    }

    /// A `disp(base)` operand.
    pub fn base_disp(base: Reg, disp: i64) -> Mem {
        Mem {
            seg: None,
            base: Some(base),
            index: None,
            scale: 1,
            disp,
            rip: false,
        }
    }

    /// A full `disp(base,index,scale)` operand.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not 1, 2, 4 or 8, or if `index` is `rsp`.
    pub fn bis(base: Reg, index: Reg, scale: u8, disp: i64) -> Mem {
        assert!(matches!(scale, 1 | 2 | 4 | 8), "invalid scale {scale}");
        assert!(index != Reg::Rsp, "rsp cannot be an index register");
        Mem {
            seg: None,
            base: Some(base),
            index: Some(index),
            scale,
            disp,
            rip: false,
        }
    }

    /// A base-less `disp(,index,scale)` operand.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not 1, 2, 4 or 8, or if `index` is `rsp`.
    pub fn index_scale(index: Reg, scale: u8, disp: i64) -> Mem {
        assert!(matches!(scale, 1 | 2 | 4 | 8), "invalid scale {scale}");
        assert!(index != Reg::Rsp, "rsp cannot be an index register");
        Mem {
            seg: None,
            base: None,
            index: Some(index),
            scale,
            disp,
            rip: false,
        }
    }

    /// A RIP-relative operand addressing absolute `target`.
    pub fn rip(target: u64) -> Mem {
        Mem {
            seg: None,
            base: None,
            index: None,
            scale: 1,
            disp: target as i64,
            rip: true,
        }
    }

    /// Returns a copy with the displacement replaced.
    pub fn with_disp(self, disp: i64) -> Mem {
        Mem { disp, ..self }
    }

    /// Returns `true` if the two operands differ only in displacement --
    /// the pre-condition for the paper's check-*merging* optimization (§6).
    pub fn same_shape(&self, other: &Mem) -> bool {
        self.seg == other.seg
            && self.base == other.base
            && self.index == other.index
            && (self.index.is_none() || self.scale == other.scale)
            && self.rip == other.rip
    }

    /// Registers read to form the effective address.
    pub fn regs(&self) -> impl Iterator<Item = Reg> + '_ {
        self.base.into_iter().chain(self.index)
    }
}

/// ALU operations sharing the classic opcode grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum AluOp {
    /// Addition.
    Add = 0,
    /// Bitwise or.
    Or = 1,
    /// Bitwise and.
    And = 4,
    /// Subtraction.
    Sub = 5,
    /// Bitwise exclusive or.
    Xor = 6,
    /// Compare (subtraction discarding the result).
    Cmp = 7,
}

impl AluOp {
    /// Returns the `/digit` used in the `0x81`/`0x83` immediate forms.
    #[inline]
    pub fn digit(self) -> u8 {
        self as u8
    }

    /// Returns the AT&T mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Or => "or",
            AluOp::And => "and",
            AluOp::Sub => "sub",
            AluOp::Xor => "xor",
            AluOp::Cmp => "cmp",
        }
    }
}

/// Shift operations (immediate or `%cl` count).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShiftOp {
    /// Logical left shift.
    Shl,
    /// Logical right shift.
    Shr,
    /// Arithmetic right shift.
    Sar,
}

impl ShiftOp {
    /// Returns the `/digit` for the `0xC1`/`0xD3` opcode groups.
    #[inline]
    pub fn digit(self) -> u8 {
        match self {
            ShiftOp::Shl => 4,
            ShiftOp::Shr => 5,
            ShiftOp::Sar => 7,
        }
    }

    /// Returns the AT&T mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            ShiftOp::Shl => "shl",
            ShiftOp::Shr => "shr",
            ShiftOp::Sar => "sar",
        }
    }
}

/// Unary `0xF7`-group operations on `rdx:rax`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MulDivOp {
    /// Unsigned multiply: `rdx:rax = rax * src`.
    Mul,
    /// Unsigned divide: `rax = rdx:rax / src`, `rdx = remainder`.
    Div,
    /// Signed divide.
    Idiv,
}

impl MulDivOp {
    /// Returns the `/digit` in the `0xF7` group.
    #[inline]
    pub fn digit(self) -> u8 {
        match self {
            MulDivOp::Mul => 4,
            MulDivOp::Div => 6,
            MulDivOp::Idiv => 7,
        }
    }

    /// Returns the AT&T mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            MulDivOp::Mul => "mul",
            MulDivOp::Div => "div",
            MulDivOp::Idiv => "idiv",
        }
    }
}

/// The operation of an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Data move (register/memory/immediate forms).
    Mov,
    /// Zero-extending load of an 8-bit source.
    Movzx8,
    /// Sign-extending load of an 8-bit source.
    Movsx8,
    /// Sign-extending load of a 32-bit source (`movsxd`).
    Movsxd,
    /// Load effective address.
    Lea,
    /// Two-operand ALU operation.
    Alu(AluOp),
    /// Bitwise test (`and` discarding the result).
    Test,
    /// Shift by immediate (count carried in the immediate operand).
    Shift(ShiftOp),
    /// Shift by `%cl`.
    ShiftCl(ShiftOp),
    /// Two-operand signed multiply (`imul r, r/m`).
    Imul2,
    /// Three-operand signed multiply (`imul r, r/m, imm`).
    Imul3,
    /// Unary multiply/divide on `rdx:rax`.
    MulDiv(MulDivOp),
    /// Two's-complement negate.
    Neg,
    /// Bitwise not.
    Not,
    /// Push onto the stack (64-bit).
    Push,
    /// Pop from the stack (64-bit).
    Pop,
    /// Sign-extend `rax` into `rdx` (`cqo`; `cdq` at 32-bit width).
    Cqo,
    /// Push `rflags`.
    Pushfq,
    /// Pop `rflags`.
    Popfq,
    /// Direct near call (`rel32`).
    Call,
    /// Indirect call through register/memory.
    CallInd,
    /// Near return.
    Ret,
    /// Direct jump (`rel8`/`rel32`).
    Jmp,
    /// Indirect jump through register/memory.
    JmpInd,
    /// Conditional jump.
    Jcc(Cond),
    /// Set byte on condition.
    Setcc(Cond),
    /// Conditional move.
    Cmovcc(Cond),
    /// System call trap into the runtime (`0F 05`).
    Syscall,
    /// Guaranteed-undefined instruction (`0F 0B`); RedFat's `error()` sink.
    Ud2,
    /// Breakpoint trap (`0xCC`); the rewriter's 1-byte patch tactic.
    Int3,
    /// No-operation (including the multi-byte `0F 1F /0` family).
    Nop,
}

/// The operand shape of an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operands {
    /// No operands.
    None,
    /// Single register.
    R(Reg),
    /// Single memory operand.
    M(Mem),
    /// Register-to-register (`dst ← op(dst, src)` for ALU).
    RR {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// Load: register destination, memory source.
    RM {
        /// Destination register.
        dst: Reg,
        /// Memory source.
        src: Mem,
    },
    /// Store: memory destination, register source.
    MR {
        /// Memory destination.
        dst: Mem,
        /// Source register.
        src: Reg,
    },
    /// Register destination with immediate.
    RI {
        /// Destination register.
        dst: Reg,
        /// Immediate (sign interpretation depends on the operation).
        imm: i64,
    },
    /// Memory destination with immediate.
    MI {
        /// Memory destination.
        dst: Mem,
        /// Immediate.
        imm: i64,
    },
    /// Register, register, immediate (`imul3`).
    RRI {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
        /// Immediate.
        imm: i64,
    },
    /// Register, memory, immediate (`imul3`).
    RMI {
        /// Destination register.
        dst: Reg,
        /// Memory source.
        src: Mem,
        /// Immediate.
        imm: i64,
    },
    /// Branch with an **absolute** target address.
    ///
    /// The decoder resolves `rel8`/`rel32` displacements against the
    /// instruction's address; the encoder converts back.
    Rel(u64),
}

/// A decoded (or to-be-encoded) instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Inst {
    /// The operation.
    pub op: Op,
    /// Operand width. Meaningless for width-less operations (`ret`,
    /// `push`, ...), which conventionally carry [`Width::W64`].
    pub w: Width,
    /// The operand shape.
    pub operands: Operands,
}

impl Inst {
    /// Convenience constructor.
    pub fn new(op: Op, w: Width, operands: Operands) -> Inst {
        Inst { op, w, operands }
    }

    /// Returns the memory operand that this instruction *accesses*
    /// (reads or writes through), if any.
    ///
    /// `lea` computes an address but performs no access, so it returns
    /// `None` here -- exactly the distinction the instrumentation needs.
    pub fn memory_access(&self) -> Option<Mem> {
        if matches!(self.op, Op::Lea | Op::Nop) {
            return None;
        }
        self.memory_operand()
    }

    /// Returns the raw memory operand, including `lea`'s.
    pub fn memory_operand(&self) -> Option<Mem> {
        match self.operands {
            Operands::M(m)
            | Operands::RM { src: m, .. }
            | Operands::MR { dst: m, .. }
            | Operands::MI { dst: m, .. }
            | Operands::RMI { src: m, .. } => Some(m),
            _ => None,
        }
    }

    /// Returns the size in bytes of the memory access, if any.
    ///
    /// This is the `len` parameter of the paper's Figure 4 check. For most
    /// operations it equals the operand width; `movzx`/`movsx` access
    /// their *source* width.
    pub fn access_len(&self) -> Option<u8> {
        self.memory_access()?;
        Some(match self.op {
            Op::Movzx8 | Op::Movsx8 | Op::Setcc(_) => 1,
            Op::Movsxd => 4,
            Op::Push | Op::Pop | Op::CallInd | Op::JmpInd => 8,
            _ => self.w.bytes(),
        })
    }

    /// Returns `true` if the instruction *writes* to its memory operand.
    pub fn writes_memory(&self) -> bool {
        if self.memory_access().is_none() {
            return false;
        }
        match self.op {
            // Stores and read-modify-write forms.
            Op::Mov | Op::Setcc(_) => matches!(
                self.operands,
                Operands::MR { .. } | Operands::MI { .. } | Operands::M(_)
            ),
            Op::Alu(AluOp::Cmp) | Op::Test => false,
            Op::Alu(_) | Op::Shift(_) | Op::ShiftCl(_) | Op::Neg | Op::Not => matches!(
                self.operands,
                Operands::MR { .. } | Operands::MI { .. } | Operands::M(_)
            ),
            Op::Pop => matches!(self.operands, Operands::M(_)),
            _ => false,
        }
    }

    /// Returns `true` for control-transfer instructions (the basic-block
    /// terminators of CFG recovery).
    pub fn is_control_flow(&self) -> bool {
        matches!(
            self.op,
            Op::Call
                | Op::CallInd
                | Op::Ret
                | Op::Jmp
                | Op::JmpInd
                | Op::Jcc(_)
                | Op::Ud2
                | Op::Int3
        )
    }

    /// Returns the absolute branch target for direct branches.
    pub fn branch_target(&self) -> Option<u64> {
        match (self.op, self.operands) {
            (Op::Call | Op::Jmp | Op::Jcc(_), Operands::Rel(t)) => Some(t),
            _ => None,
        }
    }

    /// Collects the general-purpose registers this instruction reads.
    pub fn regs_read(&self) -> Vec<Reg> {
        let mut out = Vec::with_capacity(4);
        let mem_regs = |m: &Mem, out: &mut Vec<Reg>| {
            out.extend(m.regs());
        };
        match &self.operands {
            Operands::None | Operands::Rel(_) => {}
            Operands::R(r) => {
                // Unary register forms read their operand unless pure-write.
                if !matches!(self.op, Op::Pop | Op::Setcc(_)) {
                    out.push(*r);
                }
            }
            Operands::M(m) => mem_regs(m, &mut out),
            Operands::RR { dst, src } => {
                out.push(*src);
                // `mov`/`movzx`/`lea` do not read dst; RMW ALU does, and
                // `cmov` keeps dst when the condition is false, so its
                // prior value flows into the result.
                if matches!(
                    self.op,
                    Op::Alu(_)
                        | Op::Test
                        | Op::Imul2
                        | Op::Shift(_)
                        | Op::ShiftCl(_)
                        | Op::Cmovcc(_)
                ) {
                    out.push(*dst);
                }
            }
            Operands::RM { dst, src } => {
                mem_regs(src, &mut out);
                if matches!(self.op, Op::Alu(_) | Op::Imul2 | Op::Cmovcc(_)) {
                    out.push(*dst);
                }
            }
            Operands::MR { dst, src } => {
                mem_regs(dst, &mut out);
                out.push(*src);
            }
            Operands::RI { dst, .. } => {
                if matches!(self.op, Op::Alu(_) | Op::Test | Op::Shift(_)) {
                    out.push(*dst);
                }
            }
            Operands::MI { dst, .. } => mem_regs(dst, &mut out),
            Operands::RRI { src, .. } => out.push(*src),
            Operands::RMI { src, .. } => mem_regs(src, &mut out),
        }
        match self.op {
            Op::ShiftCl(_) => out.push(Reg::Rcx),
            Op::MulDiv(_) => {
                out.push(Reg::Rax);
                out.push(Reg::Rdx);
            }
            Op::Cqo => out.push(Reg::Rax),
            Op::Push | Op::Pop | Op::Call | Op::CallInd | Op::Ret | Op::Pushfq | Op::Popfq => {
                out.push(Reg::Rsp)
            }
            Op::Syscall => {
                // Runtime call ABI: function number in rax, arguments in
                // rdi/rsi. These must be modeled as reads or liveness
                // would let instrumentation clobber a syscall argument.
                out.push(Reg::Rax);
                out.push(Reg::Rdi);
                out.push(Reg::Rsi);
            }
            _ => {}
        }
        out
    }

    /// Collects the general-purpose registers this instruction writes.
    ///
    /// `call` conservatively clobbers nothing here; inter-procedural
    /// effects are the business of `redfat-analysis`.
    pub fn regs_written(&self) -> Vec<Reg> {
        let mut out = Vec::with_capacity(2);
        match &self.operands {
            Operands::R(r) if !matches!(self.op, Op::Push | Op::CallInd | Op::JmpInd) => {
                out.push(*r);
            }
            Operands::RR { dst, .. }
            | Operands::RM { dst, .. }
            | Operands::RI { dst, .. }
            | Operands::RRI { dst, .. }
            | Operands::RMI { dst, .. }
                if !matches!(self.op, Op::Alu(AluOp::Cmp) | Op::Test) =>
            {
                out.push(*dst);
            }
            _ => {}
        }
        match self.op {
            Op::MulDiv(_) => {
                out.push(Reg::Rax);
                out.push(Reg::Rdx);
            }
            Op::Cqo => out.push(Reg::Rdx),
            Op::Push | Op::Pop | Op::Call | Op::CallInd | Op::Ret | Op::Pushfq | Op::Popfq => {
                out.push(Reg::Rsp)
            }
            Op::Syscall => {
                // Runtime call ABI: result in rax. Only *must*-writes
                // belong here -- the runtime preserves rcx/r11 (unlike
                // real hardware) and writes rdx only for read_int, so
                // claiming either would falsely kill liveness across the
                // call.
                out.push(Reg::Rax);
            }
            _ => {}
        }
        out
    }

    /// Returns `true` if the instruction *always* rewrites every
    /// arithmetic flag.
    ///
    /// This is a must-write predicate: the liveness analysis uses it to
    /// declare the flags dead (clobberable) before the instruction, so
    /// anything that can leave even one flag bit untouched must answer
    /// `false`. A shift whose (masked) count is zero preserves the flags
    /// entirely, which rules out `ShiftCl` -- the count is only known at
    /// run time -- and immediate shifts by a multiple of the operand
    /// width.
    pub fn writes_flags(&self) -> bool {
        match self.op {
            Op::Alu(_) | Op::Test | Op::Imul2 | Op::Imul3 | Op::MulDiv(_) | Op::Neg | Op::Popfq => {
                true
            }
            Op::Shift(_) => {
                let count_mask = if self.w == Width::W64 { 63 } else { 31 };
                match self.operands {
                    Operands::RI { imm, .. } | Operands::MI { imm, .. } => imm & count_mask != 0,
                    _ => false,
                }
            }
            _ => false,
        }
    }

    /// Returns `true` if the instruction reads the arithmetic flags.
    pub fn reads_flags(&self) -> bool {
        matches!(
            self.op,
            Op::Jcc(_) | Op::Setcc(_) | Op::Cmovcc(_) | Op::Pushfq
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_same_shape_ignores_disp() {
        let a = Mem::bis(Reg::Rax, Reg::Rcx, 4, 0);
        let b = Mem::bis(Reg::Rax, Reg::Rcx, 4, 0x10);
        let c = Mem::bis(Reg::Rax, Reg::Rdx, 4, 0);
        assert!(a.same_shape(&b));
        assert!(!a.same_shape(&c));
    }

    #[test]
    fn cond_negation_flips_low_bit() {
        assert_eq!(Cond::E.negate(), Cond::Ne);
        assert_eq!(Cond::A.negate(), Cond::Be);
        assert_eq!(Cond::L.negate(), Cond::Ge);
        for c in 0..16u8 {
            let cond = Cond::from_code(c);
            assert_eq!(cond.negate().negate(), cond);
        }
    }

    #[test]
    fn store_writes_memory_load_does_not() {
        let store = Inst::new(
            Op::Mov,
            Width::W64,
            Operands::MR {
                dst: Mem::base(Reg::Rax),
                src: Reg::Rcx,
            },
        );
        let load = Inst::new(
            Op::Mov,
            Width::W64,
            Operands::RM {
                dst: Reg::Rcx,
                src: Mem::base(Reg::Rax),
            },
        );
        assert!(store.writes_memory());
        assert!(!load.writes_memory());
        assert_eq!(store.access_len(), Some(8));
    }

    #[test]
    fn lea_is_not_a_memory_access() {
        let lea = Inst::new(
            Op::Lea,
            Width::W64,
            Operands::RM {
                dst: Reg::Rax,
                src: Mem::bis(Reg::Rbx, Reg::Rcx, 8, -4),
            },
        );
        assert!(lea.memory_access().is_none());
        assert!(lea.memory_operand().is_some());
        assert_eq!(lea.access_len(), None);
    }

    #[test]
    fn cmp_reads_both_writes_neither() {
        let cmp = Inst::new(
            Op::Alu(AluOp::Cmp),
            Width::W64,
            Operands::RR {
                dst: Reg::Rax,
                src: Reg::Rbx,
            },
        );
        assert!(cmp.regs_read().contains(&Reg::Rax));
        assert!(cmp.regs_read().contains(&Reg::Rbx));
        assert!(cmp.regs_written().is_empty());
        assert!(cmp.writes_flags());
    }

    #[test]
    fn writes_flags_is_a_must_write_predicate() {
        // A shift whose masked count is zero preserves the flags, so it
        // must not count as a writer: the liveness analysis would
        // otherwise let instrumentation trash flags it cannot restore.
        let shl = |w, imm| {
            Inst::new(
                Op::Shift(crate::ShiftOp::Shl),
                w,
                Operands::RI { dst: Reg::Rax, imm },
            )
        };
        assert!(shl(Width::W64, 3).writes_flags());
        assert!(!shl(Width::W64, 0).writes_flags());
        assert!(!shl(Width::W64, 64).writes_flags()); // masked to 0
        assert!(!shl(Width::W32, 32).writes_flags()); // masked to 0
        assert!(shl(Width::W32, 33).writes_flags()); // masked to 1
                                                     // The cl count is unknown statically and may be zero at run time.
        let shl_cl = Inst::new(
            Op::ShiftCl(crate::ShiftOp::Shl),
            Width::W64,
            Operands::R(Reg::Rax),
        );
        assert!(!shl_cl.writes_flags());
        // mul/div rewrite every flag (the emulator defines the bits the
        // architecture leaves undefined).
        let idiv = Inst::new(
            Op::MulDiv(crate::MulDivOp::Idiv),
            Width::W64,
            Operands::R(Reg::Rcx),
        );
        assert!(idiv.writes_flags());
    }

    #[test]
    fn cmov_reads_its_destination() {
        // With a false condition, cmov leaves dst unchanged (or, at
        // 32-bit width, zero-extends its old low half): the prior value
        // is an input either way.
        let cmov = Inst::new(
            Op::Cmovcc(Cond::E),
            Width::W64,
            Operands::RR {
                dst: Reg::Rax,
                src: Reg::Rbx,
            },
        );
        assert!(cmov.regs_read().contains(&Reg::Rax));
        assert!(cmov.regs_read().contains(&Reg::Rbx));
        assert!(cmov.regs_written().contains(&Reg::Rax));
        let cmov_m = Inst::new(
            Op::Cmovcc(Cond::Ne),
            Width::W64,
            Operands::RM {
                dst: Reg::Rcx,
                src: Mem::base(Reg::Rdx),
            },
        );
        assert!(cmov_m.regs_read().contains(&Reg::Rcx));
    }

    #[test]
    fn syscall_models_the_runtime_call_abi() {
        let sc = Inst::new(Op::Syscall, Width::W64, Operands::None);
        let reads = sc.regs_read();
        for r in [Reg::Rax, Reg::Rdi, Reg::Rsi] {
            assert!(reads.contains(&r), "{r:?} carries the number/arguments");
        }
        // Must-writes only: the runtime returns in rax and preserves
        // rcx/r11; rdx is written only by read_int.
        assert_eq!(sc.regs_written(), vec![Reg::Rax]);
    }

    #[test]
    fn muldiv_uses_rax_rdx() {
        let mul = Inst::new(Op::MulDiv(MulDivOp::Mul), Width::W64, Operands::R(Reg::Rbx));
        assert!(mul.regs_written().contains(&Reg::Rax));
        assert!(mul.regs_written().contains(&Reg::Rdx));
        assert!(mul.regs_read().contains(&Reg::Rbx));
    }
}
