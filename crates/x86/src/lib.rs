//! A faithful x86-64 machine-code *subset*: instruction model, binary
//! encoder, binary decoder, and a label-aware assembler.
//!
//! This crate is the ISA substrate for the RedFat reproduction. It models
//! the instruction families that compiled C-like code and the RedFat
//! instrumentation actually use (`mov`/`lea`/ALU/shift/`mul`/`div`/
//! branch/`call`/`push`/`pop`/`setcc`/`cmovcc`/`syscall`/traps), with
//! **real x86-64 encodings**: REX prefixes, ModRM, SIB, displacement and
//! immediate forms, including RIP-relative addressing. Consequently:
//!
//! * instruction *lengths* are the true x86-64 lengths, which is what makes
//!   E9Patch-style patch-tactic selection in `redfat-rewriter` meaningful;
//! * memory operands carry the full `seg:disp(base,index,scale)` 5-tuple
//!   that the paper's instrumentation reasons about (§4.1 of the paper).
//!
//! The crate deliberately does not model the entire ISA (no SSE/AVX, no
//! 16-bit operand-size arithmetic, no legacy segmented modes); the decoder
//! reports [`DecodeError::UnsupportedOpcode`] for bytes outside the subset
//! so that callers can treat unknown code conservatively, exactly as a
//! binary-rewriting tool must.
//!
//! # Examples
//!
//! ```
//! use redfat_x86::{Asm, Reg, Width, decode_one};
//!
//! let mut a = Asm::new(0x40_0000);
//! a.mov_ri(Width::W64, Reg::Rax, 42);
//! a.ret();
//! let bytes = a.finish().unwrap().bytes;
//! let (inst, len) = decode_one(&bytes, 0x40_0000).unwrap();
//! assert_eq!(format!("{inst}"), "mov $0x2a, %rax");
//! assert_eq!(len, 7);
//! ```

mod asm;
mod decode;
mod encode;
mod fmt;
mod insn;
mod reg;

pub use asm::{Asm, AsmError, Label, Program};
pub use decode::{decode_one, DecodeError};
pub use encode::{encode, EncodeError};
pub use insn::{AluOp, Cond, Inst, Mem, MulDivOp, Op, Operands, Seg, ShiftOp, Width};
pub use reg::Reg;

/// Decodes a linear stretch of machine code into `(addr, inst, len)`
/// triples, stopping at the first undecodable byte.
///
/// The `addr` of each entry is `base_addr` plus the byte offset of the
/// instruction; this is the address-space view a static rewriter needs.
pub fn decode_all(bytes: &[u8], base_addr: u64) -> Vec<(u64, Inst, u8)> {
    let mut out = Vec::new();
    let mut off = 0usize;
    while off < bytes.len() {
        match decode_one(&bytes[off..], base_addr + off as u64) {
            Ok((inst, len)) => {
                out.push((base_addr + off as u64, inst, len));
                off += len as usize;
            }
            Err(_) => break,
        }
    }
    out
}
