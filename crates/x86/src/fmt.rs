//! AT&T-syntax display for instructions and operands.

use crate::insn::{Inst, Mem, Op, Operands, Seg, Width};
use crate::reg::Reg;
use std::fmt;

fn reg_name(r: Reg, w: Width) -> &'static str {
    match w {
        Width::W8 => r.name8(),
        Width::W32 => r.name32(),
        Width::W64 => r.name64(),
    }
}

impl fmt::Display for Mem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(seg) = self.seg {
            match seg {
                Seg::Fs => write!(f, "%fs:")?,
                Seg::Gs => write!(f, "%gs:")?,
            }
        }
        if self.rip {
            return write!(f, "{:#x}(%rip)", self.disp);
        }
        if self.disp != 0 || (self.base.is_none() && self.index.is_none()) {
            if self.disp < 0 {
                write!(f, "-{:#x}", -self.disp)?;
            } else {
                write!(f, "{:#x}", self.disp)?;
            }
        }
        if self.base.is_none() && self.index.is_none() {
            return Ok(());
        }
        write!(f, "(")?;
        if let Some(b) = self.base {
            write!(f, "%{}", b.name64())?;
        }
        if let Some(i) = self.index {
            write!(f, ",%{},{}", i.name64(), self.scale)?;
        }
        write!(f, ")")
    }
}

fn mnemonic(op: Op) -> String {
    match op {
        Op::Mov => "mov".into(),
        Op::Movzx8 => "movzbq".into(),
        Op::Movsx8 => "movsbq".into(),
        Op::Movsxd => "movslq".into(),
        Op::Lea => "lea".into(),
        Op::Alu(a) => a.mnemonic().into(),
        Op::Test => "test".into(),
        Op::Shift(s) | Op::ShiftCl(s) => s.mnemonic().into(),
        Op::Imul2 | Op::Imul3 => "imul".into(),
        Op::MulDiv(m) => m.mnemonic().into(),
        Op::Neg => "neg".into(),
        Op::Not => "not".into(),
        Op::Push => "push".into(),
        Op::Pop => "pop".into(),
        Op::Cqo => "cqo".into(),
        Op::Pushfq => "pushfq".into(),
        Op::Popfq => "popfq".into(),
        Op::Call | Op::CallInd => "call".into(),
        Op::Ret => "ret".into(),
        Op::Jmp | Op::JmpInd => "jmp".into(),
        Op::Jcc(c) => format!("j{}", c.suffix()),
        Op::Setcc(c) => format!("set{}", c.suffix()),
        Op::Cmovcc(c) => format!("cmov{}", c.suffix()),
        Op::Syscall => "syscall".into(),
        Op::Ud2 => "ud2".into(),
        Op::Int3 => "int3".into(),
        Op::Nop => "nop".into(),
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = mnemonic(self.op);
        let w = self.w;
        let star = if matches!(self.op, Op::CallInd | Op::JmpInd) {
            "*"
        } else {
            ""
        };
        match &self.operands {
            Operands::None => write!(f, "{m}"),
            Operands::R(r) => write!(f, "{m} {star}%{}", reg_name(*r, effective_w(self, *r))),
            Operands::M(mem) => write!(f, "{m} {star}{mem}"),
            Operands::RR { dst, src } => {
                // movzx/movsx/setcc read narrower sources.
                let src_w = src_width(self.op, w);
                write!(
                    f,
                    "{m} %{}, %{}",
                    reg_name(*src, src_w),
                    reg_name(*dst, dst_width(self.op, w))
                )
            }
            Operands::RM { dst, src } => {
                write!(f, "{m} {src}, %{}", reg_name(*dst, dst_width(self.op, w)))
            }
            Operands::MR { dst, src } => write!(f, "{m} %{}, {dst}", reg_name(*src, w)),
            Operands::RI { dst, imm } => write!(f, "{m} ${imm:#x}, %{}", reg_name(*dst, w)),
            Operands::MI { dst, imm } => write!(f, "{m} ${imm:#x}, {dst}"),
            Operands::RRI { dst, src, imm } => write!(
                f,
                "{m} ${imm:#x}, %{}, %{}",
                reg_name(*src, w),
                reg_name(*dst, w)
            ),
            Operands::RMI { dst, src, imm } => {
                write!(f, "{m} ${imm:#x}, {src}, %{}", reg_name(*dst, w))
            }
            Operands::Rel(t) => write!(f, "{m} {t:#x}"),
        }
    }
}

fn effective_w(inst: &Inst, _r: Reg) -> Width {
    match inst.op {
        Op::Setcc(_) => Width::W8,
        Op::Push | Op::Pop | Op::CallInd | Op::JmpInd => Width::W64,
        _ => inst.w,
    }
}

fn src_width(op: Op, w: Width) -> Width {
    match op {
        Op::Movzx8 | Op::Movsx8 => Width::W8,
        Op::Movsxd => Width::W32,
        _ => w,
    }
}

fn dst_width(op: Op, w: Width) -> Width {
    match op {
        Op::Movsxd => Width::W64,
        _ => w,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::{AluOp, Cond};

    #[test]
    fn formats_store_with_sib() {
        let i = Inst::new(
            Op::Mov,
            Width::W64,
            Operands::MR {
                dst: Mem::bis(Reg::Rax, Reg::Rbx, 4, 8),
                src: Reg::Rcx,
            },
        );
        assert_eq!(format!("{i}"), "mov %rcx, 0x8(%rax,%rbx,4)");
    }

    #[test]
    fn formats_negative_disp() {
        let m = Mem::base_disp(Reg::Rsp, -0x18);
        assert_eq!(format!("{m}"), "-0x18(%rsp)");
    }

    #[test]
    fn formats_cond_families() {
        let j = Inst::new(Op::Jcc(Cond::Ae), Width::W64, Operands::Rel(0x400000));
        assert_eq!(format!("{j}"), "jae 0x400000");
        let s = Inst::new(Op::Setcc(Cond::E), Width::W8, Operands::R(Reg::Rax));
        assert_eq!(format!("{s}"), "sete %al");
    }

    #[test]
    fn formats_alu_imm() {
        let i = Inst::new(
            Op::Alu(AluOp::Sub),
            Width::W64,
            Operands::RI {
                dst: Reg::Rsp,
                imm: 0x20,
            },
        );
        assert_eq!(format!("{i}"), "sub $0x20, %rsp");
    }
}
