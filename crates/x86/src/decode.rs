//! Binary decoder: x86-64 machine code bytes → [`Inst`].
//!
//! The decoder is the inverse of [`crate::encode`] over the modeled
//! subset; `decode(encode(i)) == i` is enforced by property tests. Bytes
//! outside the subset yield a [`DecodeError`], which a rewriter must treat
//! as "unknown code: do not touch".

use crate::insn::{AluOp, Cond, Inst, Mem, MulDivOp, Op, Operands, Seg, ShiftOp, Width};
use crate::reg::Reg;

/// A decoding failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Ran out of bytes mid-instruction.
    Truncated,
    /// The opcode (or opcode extension) is outside the modeled subset.
    UnsupportedOpcode(u8),
    /// A prefix outside the modeled subset (e.g. `0x66`, `0xF0`).
    UnsupportedPrefix(u8),
    /// A legacy high-byte register (`ah`/`ch`/`dh`/`bh`): register code
    /// 4-7 used at 8-bit width without a REX prefix. The model only
    /// represents the uniform `spl`/`bpl`/`sil`/`dil` byte registers,
    /// which require a REX prefix on real hardware.
    HighByteReg(u8),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "truncated instruction"),
            DecodeError::UnsupportedOpcode(b) => write!(f, "unsupported opcode {b:#04x}"),
            DecodeError::UnsupportedPrefix(b) => write!(f, "unsupported prefix {b:#04x}"),
            DecodeError::HighByteReg(c) => {
                write!(f, "unsupported high-byte register (code {c})")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self.bytes.get(self.pos).ok_or(DecodeError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn i8(&mut self) -> Result<i8, DecodeError> {
        Ok(self.u8()? as i8)
    }

    fn i32(&mut self) -> Result<i32, DecodeError> {
        let end = self.pos + 4;
        let s = self
            .bytes
            .get(self.pos..end)
            .ok_or(DecodeError::Truncated)?;
        self.pos = end;
        Ok(i32::from_le_bytes(s.try_into().expect("4 bytes")))
    }

    fn i64(&mut self) -> Result<i64, DecodeError> {
        let end = self.pos + 8;
        let s = self
            .bytes
            .get(self.pos..end)
            .ok_or(DecodeError::Truncated)?;
        self.pos = end;
        Ok(i64::from_le_bytes(s.try_into().expect("8 bytes")))
    }
}

#[derive(Clone, Copy, Default)]
struct Rex {
    present: bool,
    w: bool,
    r: bool,
    x: bool,
    b: bool,
}

/// Decoded r/m side of a ModRM byte.
enum Rm {
    Reg(Reg),
    Mem(Mem),
    /// RIP-relative; holds the raw disp32, resolved once the instruction
    /// length is known.
    Rip(i32),
}

/// Result of ModRM parsing: `reg` field (raw 4-bit with REX.R) and r/m.
struct ModRm {
    reg: u8,
    rm: Rm,
}

fn parse_modrm(c: &mut Cursor<'_>, rex: Rex, seg: Option<Seg>) -> Result<ModRm, DecodeError> {
    let modrm = c.u8()?;
    let md = modrm >> 6;
    let reg = ((modrm >> 3) & 7) | if rex.r { 8 } else { 0 };
    let rm_low = modrm & 7;

    if md == 3 {
        let r = Reg::from_code(rm_low | if rex.b { 8 } else { 0 });
        return Ok(ModRm {
            reg,
            rm: Rm::Reg(r),
        });
    }

    if rm_low == 0b101 && md == 0 {
        // RIP-relative.
        let disp = c.i32()?;
        return Ok(ModRm {
            reg,
            rm: Rm::Rip(disp),
        });
    }

    let (base, index, scale) = if rm_low == 0b100 {
        // SIB byte.
        let sib = c.u8()?;
        let ss = 1u8 << (sib >> 6);
        let idx_code = ((sib >> 3) & 7) | if rex.x { 8 } else { 0 };
        let base_code = (sib & 7) | if rex.b { 8 } else { 0 };
        let index = if idx_code == 4 {
            // Index=100 without REX.X means "no index"; with REX.X it is
            // r12, which *is* usable.
            if rex.x {
                Some(Reg::R12)
            } else {
                None
            }
        } else {
            Some(Reg::from_code(idx_code))
        };
        let base = if (sib & 7) == 0b101 && md == 0 {
            // No base, disp32 follows.
            None
        } else {
            Some(Reg::from_code(base_code))
        };
        (base, index, ss)
    } else {
        (
            Some(Reg::from_code(rm_low | if rex.b { 8 } else { 0 })),
            None,
            1,
        )
    };

    let disp: i64 = match md {
        0 => {
            if base.is_none() {
                c.i32()? as i64
            } else {
                0
            }
        }
        1 => c.i8()? as i64,
        2 => c.i32()? as i64,
        _ => unreachable!("md==3 handled above"),
    };

    Ok(ModRm {
        reg,
        rm: Rm::Mem(Mem {
            seg,
            base,
            index,
            scale,
            disp,
            rip: false,
        }),
    })
}

/// Rejects legacy high-byte registers in *byte-width* register operands.
///
/// Without a REX prefix, ModRM register codes 4-7 at 8-bit width select
/// `ah`/`ch`/`dh`/`bh` on real hardware -- not the `spl`/`bpl`/`sil`/`dil`
/// the uniform numbering would suggest. The model has no representation
/// for the high-byte registers, so decoding them as the REX-only ones
/// would silently misname the operand; callers pass the byte-width `reg`
/// field (if any) and the r/m side here before building operands.
fn check_byte_regs(rex: Rex, reg: Option<u8>, rm: &Rm) -> Result<(), DecodeError> {
    if rex.present {
        // With any REX prefix, codes 4-7 are the uniform byte registers.
        return Ok(());
    }
    let high = |code: u8| (4..=7).contains(&code);
    if let Some(code) = reg {
        if high(code) {
            return Err(DecodeError::HighByteReg(code));
        }
    }
    if let Rm::Reg(r) = rm {
        if high(r.code()) {
            return Err(DecodeError::HighByteReg(r.code()));
        }
    }
    Ok(())
}

/// Builds operands for a standard `op r/m, r` (store-direction) pair.
fn mr(rm: Rm, reg: u8) -> Operands {
    let r = Reg::from_code(reg);
    match rm {
        Rm::Reg(dst) => Operands::RR { dst, src: r },
        Rm::Mem(m) => Operands::MR { dst: m, src: r },
        Rm::Rip(_) => unreachable!("rip resolved before operand build"),
    }
}

/// Builds operands for a standard `op r, r/m` (load-direction) pair.
fn rm_(rm: Rm, reg: u8) -> Operands {
    let r = Reg::from_code(reg);
    match rm {
        Rm::Reg(src) => Operands::RR { dst: r, src },
        Rm::Mem(m) => Operands::RM { dst: r, src: m },
        Rm::Rip(_) => unreachable!("rip resolved before operand build"),
    }
}

/// Builds a unary register-or-memory operand.
fn unary(rm: Rm) -> Operands {
    match rm {
        Rm::Reg(r) => Operands::R(r),
        Rm::Mem(m) => Operands::M(m),
        Rm::Rip(_) => unreachable!("rip resolved before operand build"),
    }
}

/// Decodes one instruction at `addr`.
///
/// Returns the instruction and its encoded length in bytes. RIP-relative
/// displacements and branch offsets are resolved to absolute addresses
/// using `addr`.
pub fn decode_one(bytes: &[u8], addr: u64) -> Result<(Inst, u8), DecodeError> {
    let mut c = Cursor { bytes, pos: 0 };

    // Prefixes: segment override then REX (REX must be last).
    let mut seg = None;
    let mut rex = Rex::default();
    loop {
        let b = *c.bytes.get(c.pos).ok_or(DecodeError::Truncated)?;
        match b {
            0x64 => {
                seg = Some(Seg::Fs);
                c.pos += 1;
            }
            0x65 => {
                seg = Some(Seg::Gs);
                c.pos += 1;
            }
            0x40..=0x4F => {
                rex = Rex {
                    present: true,
                    w: b & 8 != 0,
                    r: b & 4 != 0,
                    x: b & 2 != 0,
                    b: b & 1 != 0,
                };
                c.pos += 1;
                break;
            }
            0x66 | 0x67 | 0xF0 | 0xF2 | 0xF3 | 0x2E | 0x36 | 0x3E | 0x26 => {
                return Err(DecodeError::UnsupportedPrefix(b))
            }
            _ => break,
        }
    }
    let _ = rex.present;

    let w = if rex.w { Width::W64 } else { Width::W32 };
    let opcode = c.u8()?;

    // Resolves a potential RIP r/m into a concrete Mem once `len` is
    // final; must be called after all immediate bytes are consumed.
    let resolve = |rm: Rm, total_len: usize| -> Rm {
        match rm {
            Rm::Rip(disp) => Rm::Mem(Mem {
                seg,
                base: None,
                index: None,
                scale: 1,
                disp: (addr + total_len as u64).wrapping_add(disp as i64 as u64) as i64,
                rip: true,
            }),
            other => other,
        }
    };

    macro_rules! done {
        ($op:expr, $w:expr, $operands:expr, $c:expr) => {{
            let len = $c.pos as u8;
            return Ok((Inst::new($op, $w, $operands), len));
        }};
    }

    // Standard ModRM-based decode paths share this shape.
    macro_rules! with_modrm {
        ($c:expr, |$m:ident| $body:expr) => {{
            let $m = parse_modrm(&mut $c, rex, seg)?;
            $body
        }};
    }

    match opcode {
        // ---- ALU grid: base+1 (r/m,r), base+3 (r,r/m) for 32/64-bit;
        //      base+0 / base+2 for 8-bit. ----
        0x00 | 0x01 | 0x02 | 0x03 | 0x08 | 0x09 | 0x0A | 0x0B | 0x20 | 0x21 | 0x22 | 0x23
        | 0x28 | 0x29 | 0x2A | 0x2B | 0x30 | 0x31 | 0x32 | 0x33 | 0x38 | 0x39 | 0x3A | 0x3B => {
            let alu = match opcode & 0xF8 {
                0x00 => AluOp::Add,
                0x08 => AluOp::Or,
                0x20 => AluOp::And,
                0x28 => AluOp::Sub,
                0x30 => AluOp::Xor,
                0x38 => AluOp::Cmp,
                _ => unreachable!(),
            };
            let is8 = opcode & 1 == 0;
            let load_dir = opcode & 2 != 0;
            let width = if is8 { Width::W8 } else { w };
            with_modrm!(c, |m| {
                if is8 {
                    check_byte_regs(rex, Some(m.reg), &m.rm)?;
                }
                let len = c.pos;
                let rm = resolve(m.rm, len);
                let ops = if load_dir {
                    rm_(rm, m.reg)
                } else {
                    mr(rm, m.reg)
                };
                done!(Op::Alu(alu), width, ops, c)
            })
        }

        // ---- ALU immediate groups ----
        0x80 | 0x81 | 0x83 => {
            let m = parse_modrm(&mut c, rex, seg)?;
            let digit = m.reg & 7;
            let alu = match digit {
                0 => AluOp::Add,
                1 => AluOp::Or,
                4 => AluOp::And,
                5 => AluOp::Sub,
                6 => AluOp::Xor,
                7 => AluOp::Cmp,
                d => return Err(DecodeError::UnsupportedOpcode(0x80 | d)),
            };
            let (width, imm) = match opcode {
                0x80 => {
                    check_byte_regs(rex, None, &m.rm)?;
                    (Width::W8, c.i8()? as i64)
                }
                0x81 => (w, c.i32()? as i64),
                _ => (w, c.i8()? as i64),
            };
            let len = c.pos;
            let ops = match resolve(m.rm, len) {
                Rm::Reg(r) => Operands::RI { dst: r, imm },
                Rm::Mem(mem) => Operands::MI { dst: mem, imm },
                Rm::Rip(_) => unreachable!(),
            };
            done!(Op::Alu(alu), width, ops, c)
        }

        // ---- test ----
        0x84 | 0x85 => {
            let width = if opcode == 0x84 { Width::W8 } else { w };
            with_modrm!(c, |m| {
                if width == Width::W8 {
                    check_byte_regs(rex, Some(m.reg), &m.rm)?;
                }
                let len = c.pos;
                done!(Op::Test, width, mr(resolve(m.rm, len), m.reg), c)
            })
        }

        // ---- mov ----
        0x88..=0x8B => {
            let is8 = opcode & 1 == 0;
            let load_dir = opcode & 2 != 0;
            let width = if is8 { Width::W8 } else { w };
            with_modrm!(c, |m| {
                if is8 {
                    check_byte_regs(rex, Some(m.reg), &m.rm)?;
                }
                let len = c.pos;
                let rm = resolve(m.rm, len);
                let ops = if load_dir {
                    rm_(rm, m.reg)
                } else {
                    mr(rm, m.reg)
                };
                done!(Op::Mov, width, ops, c)
            })
        }
        0xC6 | 0xC7 => {
            let m = parse_modrm(&mut c, rex, seg)?;
            if m.reg & 7 != 0 {
                return Err(DecodeError::UnsupportedOpcode(opcode));
            }
            let (width, imm) = if opcode == 0xC6 {
                check_byte_regs(rex, None, &m.rm)?;
                (Width::W8, c.i8()? as i64)
            } else {
                (w, c.i32()? as i64)
            };
            let len = c.pos;
            let ops = match resolve(m.rm, len) {
                Rm::Reg(r) => Operands::RI { dst: r, imm },
                Rm::Mem(mem) => Operands::MI { dst: mem, imm },
                Rm::Rip(_) => unreachable!(),
            };
            done!(Op::Mov, width, ops, c)
        }
        0xB0..=0xB7 => {
            if !rex.present && opcode & 7 >= 4 {
                // B4..B7 without REX are mov-imm into ah/ch/dh/bh.
                return Err(DecodeError::HighByteReg(opcode & 7));
            }
            let r = Reg::from_code((opcode & 7) | if rex.b { 8 } else { 0 });
            let imm = c.i8()? as i64;
            done!(Op::Mov, Width::W8, Operands::RI { dst: r, imm }, c)
        }
        0xB8..=0xBF => {
            let r = Reg::from_code((opcode & 7) | if rex.b { 8 } else { 0 });
            if rex.w {
                let imm = c.i64()?;
                done!(Op::Mov, Width::W64, Operands::RI { dst: r, imm }, c)
            } else {
                let imm = c.i32()? as u32 as i64;
                done!(Op::Mov, Width::W32, Operands::RI { dst: r, imm }, c)
            }
        }

        // ---- lea ----
        0x8D => with_modrm!(c, |m| {
            let len = c.pos;
            match resolve(m.rm, len) {
                Rm::Mem(mem) => done!(
                    Op::Lea,
                    w,
                    Operands::RM {
                        dst: Reg::from_code(m.reg),
                        src: mem
                    },
                    c
                ),
                _ => Err(DecodeError::UnsupportedOpcode(0x8D)),
            }
        }),

        // ---- movsxd ----
        0x63 => with_modrm!(c, |m| {
            let len = c.pos;
            done!(Op::Movsxd, Width::W64, rm_(resolve(m.rm, len), m.reg), c)
        }),

        // ---- imul 3-operand ----
        0x69 | 0x6B => {
            let m = parse_modrm(&mut c, rex, seg)?;
            let imm = if opcode == 0x6B {
                c.i8()? as i64
            } else {
                c.i32()? as i64
            };
            let len = c.pos;
            let dst = Reg::from_code(m.reg);
            let ops = match resolve(m.rm, len) {
                Rm::Reg(src) => Operands::RRI { dst, src, imm },
                Rm::Mem(src) => Operands::RMI { dst, src, imm },
                Rm::Rip(_) => unreachable!(),
            };
            done!(Op::Imul3, w, ops, c)
        }

        // ---- shifts ----
        0xC1 => {
            let m = parse_modrm(&mut c, rex, seg)?;
            let op = match m.reg & 7 {
                4 => ShiftOp::Shl,
                5 => ShiftOp::Shr,
                7 => ShiftOp::Sar,
                d => return Err(DecodeError::UnsupportedOpcode(0xC1 | (d << 4))),
            };
            let imm = c.u8()? as i64;
            let len = c.pos;
            let ops = match resolve(m.rm, len) {
                Rm::Reg(r) => Operands::RI { dst: r, imm },
                Rm::Mem(mem) => Operands::MI { dst: mem, imm },
                Rm::Rip(_) => unreachable!(),
            };
            done!(Op::Shift(op), w, ops, c)
        }
        0xD3 => {
            let m = parse_modrm(&mut c, rex, seg)?;
            let op = match m.reg & 7 {
                4 => ShiftOp::Shl,
                5 => ShiftOp::Shr,
                7 => ShiftOp::Sar,
                d => return Err(DecodeError::UnsupportedOpcode(0xD3 | (d << 4))),
            };
            let len = c.pos;
            done!(Op::ShiftCl(op), w, unary(resolve(m.rm, len)), c)
        }

        // ---- F6/F7 group ----
        0xF6 | 0xF7 => {
            let m = parse_modrm(&mut c, rex, seg)?;
            let width = if opcode == 0xF6 { Width::W8 } else { w };
            if width == Width::W8 {
                check_byte_regs(rex, None, &m.rm)?;
            }
            match m.reg & 7 {
                0 => {
                    // test r/m, imm.
                    let imm = if opcode == 0xF6 {
                        c.i8()? as i64
                    } else {
                        c.i32()? as i64
                    };
                    let len = c.pos;
                    let ops = match resolve(m.rm, len) {
                        Rm::Reg(r) => Operands::RI { dst: r, imm },
                        Rm::Mem(_) => return Err(DecodeError::UnsupportedOpcode(opcode)),
                        Rm::Rip(_) => unreachable!(),
                    };
                    done!(Op::Test, width, ops, c)
                }
                2 => {
                    let len = c.pos;
                    done!(Op::Not, width, unary(resolve(m.rm, len)), c)
                }
                3 => {
                    let len = c.pos;
                    done!(Op::Neg, width, unary(resolve(m.rm, len)), c)
                }
                4 => {
                    let len = c.pos;
                    done!(
                        Op::MulDiv(MulDivOp::Mul),
                        width,
                        unary(resolve(m.rm, len)),
                        c
                    )
                }
                6 => {
                    let len = c.pos;
                    done!(
                        Op::MulDiv(MulDivOp::Div),
                        width,
                        unary(resolve(m.rm, len)),
                        c
                    )
                }
                7 => {
                    let len = c.pos;
                    done!(
                        Op::MulDiv(MulDivOp::Idiv),
                        width,
                        unary(resolve(m.rm, len)),
                        c
                    )
                }
                d => Err(DecodeError::UnsupportedOpcode(0xF0 | d)),
            }
        }

        // ---- stack ----
        0x50..=0x57 => {
            let r = Reg::from_code((opcode & 7) | if rex.b { 8 } else { 0 });
            done!(Op::Push, Width::W64, Operands::R(r), c)
        }
        0x58..=0x5F => {
            let r = Reg::from_code((opcode & 7) | if rex.b { 8 } else { 0 });
            done!(Op::Pop, Width::W64, Operands::R(r), c)
        }
        0x8F => {
            let m = parse_modrm(&mut c, rex, seg)?;
            if m.reg & 7 != 0 {
                return Err(DecodeError::UnsupportedOpcode(0x8F));
            }
            let len = c.pos;
            done!(Op::Pop, Width::W64, unary(resolve(m.rm, len)), c)
        }
        0x9C => done!(Op::Pushfq, Width::W64, Operands::None, c),
        0x9D => done!(Op::Popfq, Width::W64, Operands::None, c),

        // ---- cqo/cdq ----
        0x99 => done!(Op::Cqo, w, Operands::None, c),

        // ---- control flow ----
        0xE8 => {
            let rel = c.i32()?;
            let target = (addr + c.pos as u64).wrapping_add(rel as i64 as u64);
            done!(Op::Call, Width::W64, Operands::Rel(target), c)
        }
        0xE9 => {
            let rel = c.i32()?;
            let target = (addr + c.pos as u64).wrapping_add(rel as i64 as u64);
            done!(Op::Jmp, Width::W64, Operands::Rel(target), c)
        }
        0xEB => {
            let rel = c.i8()?;
            let target = (addr + c.pos as u64).wrapping_add(rel as i64 as u64);
            done!(Op::Jmp, Width::W64, Operands::Rel(target), c)
        }
        0x70..=0x7F => {
            let cond = Cond::from_code(opcode & 0xF);
            let rel = c.i8()?;
            let target = (addr + c.pos as u64).wrapping_add(rel as i64 as u64);
            done!(Op::Jcc(cond), Width::W64, Operands::Rel(target), c)
        }
        0xC3 => done!(Op::Ret, Width::W64, Operands::None, c),
        0xFF => {
            let m = parse_modrm(&mut c, rex, seg)?;
            let len = c.pos;
            let rm = resolve(m.rm, len);
            match m.reg & 7 {
                2 => done!(Op::CallInd, Width::W64, unary(rm), c),
                4 => done!(Op::JmpInd, Width::W64, unary(rm), c),
                6 => done!(Op::Push, Width::W64, unary(rm), c),
                d => Err(DecodeError::UnsupportedOpcode(0xF8 | d)),
            }
        }

        // ---- traps / misc ----
        0xCC => done!(Op::Int3, Width::W64, Operands::None, c),
        0x90 => done!(Op::Nop, Width::W64, Operands::None, c),

        // ---- two-byte opcodes ----
        0x0F => {
            let op2 = c.u8()?;
            match op2 {
                0x05 => done!(Op::Syscall, Width::W64, Operands::None, c),
                0x0B => done!(Op::Ud2, Width::W64, Operands::None, c),
                0x1F => {
                    // Multi-byte NOP: consume ModRM encoding.
                    let _ = parse_modrm(&mut c, rex, seg)?;
                    done!(Op::Nop, Width::W64, Operands::None, c)
                }
                0x80..=0x8F => {
                    let cond = Cond::from_code(op2 & 0xF);
                    let rel = c.i32()?;
                    let target = (addr + c.pos as u64).wrapping_add(rel as i64 as u64);
                    done!(Op::Jcc(cond), Width::W64, Operands::Rel(target), c)
                }
                0x90..=0x9F => {
                    let cond = Cond::from_code(op2 & 0xF);
                    let m = parse_modrm(&mut c, rex, seg)?;
                    check_byte_regs(rex, None, &m.rm)?;
                    let len = c.pos;
                    done!(Op::Setcc(cond), Width::W8, unary(resolve(m.rm, len)), c)
                }
                0x40..=0x4F => {
                    let cond = Cond::from_code(op2 & 0xF);
                    let m = parse_modrm(&mut c, rex, seg)?;
                    let len = c.pos;
                    done!(Op::Cmovcc(cond), w, rm_(resolve(m.rm, len), m.reg), c)
                }
                0xAF => {
                    let m = parse_modrm(&mut c, rex, seg)?;
                    let len = c.pos;
                    done!(Op::Imul2, w, rm_(resolve(m.rm, len), m.reg), c)
                }
                0xB6 => {
                    let m = parse_modrm(&mut c, rex, seg)?;
                    // Only the *source* is byte-width; the dst reg field
                    // is a full-width register at any code.
                    check_byte_regs(rex, None, &m.rm)?;
                    let len = c.pos;
                    done!(Op::Movzx8, w, rm_(resolve(m.rm, len), m.reg), c)
                }
                0xBE => {
                    let m = parse_modrm(&mut c, rex, seg)?;
                    check_byte_regs(rex, None, &m.rm)?;
                    let len = c.pos;
                    done!(Op::Movsx8, w, rm_(resolve(m.rm, len), m.reg), c)
                }
                other => Err(DecodeError::UnsupportedOpcode(other)),
            }
        }

        other => Err(DecodeError::UnsupportedOpcode(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;

    fn roundtrip(inst: Inst, addr: u64) {
        let bytes = encode(&inst, addr).expect("encodes");
        let (decoded, len) = decode_one(&bytes, addr).expect("decodes");
        assert_eq!(len as usize, bytes.len(), "length mismatch for {inst:?}");
        assert_eq!(decoded, inst, "round-trip mismatch, bytes {bytes:02x?}");
    }

    #[test]
    fn roundtrip_mov_variants() {
        let addr = 0x40_1000;
        roundtrip(
            Inst::new(
                Op::Mov,
                Width::W64,
                Operands::RR {
                    dst: Reg::R9,
                    src: Reg::Rbp,
                },
            ),
            addr,
        );
        roundtrip(
            Inst::new(
                Op::Mov,
                Width::W32,
                Operands::RM {
                    dst: Reg::Rax,
                    src: Mem::bis(Reg::R13, Reg::R12, 8, -0x20),
                },
            ),
            addr,
        );
        roundtrip(
            Inst::new(
                Op::Mov,
                Width::W8,
                Operands::MR {
                    dst: Mem::base_disp(Reg::Rsp, 0x7F),
                    src: Reg::Rsi,
                },
            ),
            addr,
        );
        roundtrip(
            Inst::new(
                Op::Mov,
                Width::W64,
                Operands::MI {
                    dst: Mem::base_disp(Reg::Rax, 0x10),
                    imm: 0,
                },
            ),
            addr,
        );
    }

    #[test]
    fn roundtrip_rip_relative() {
        roundtrip(
            Inst::new(
                Op::Mov,
                Width::W64,
                Operands::RM {
                    dst: Reg::Rdx,
                    src: Mem::rip(0x60_0040),
                },
            ),
            0x40_2000,
        );
    }

    #[test]
    fn roundtrip_branches() {
        roundtrip(
            Inst::new(Op::Jmp, Width::W64, Operands::Rel(0x40_0030)),
            0x40_0000,
        );
        roundtrip(
            Inst::new(Op::Jcc(Cond::A), Width::W64, Operands::Rel(0x41_0000)),
            0x40_0000,
        );
        roundtrip(
            Inst::new(Op::Call, Width::W64, Operands::Rel(0x3F_0000)),
            0x40_0000,
        );
    }

    #[test]
    fn roundtrip_muldiv_table_lookup() {
        roundtrip(
            Inst::new(
                Op::MulDiv(MulDivOp::Mul),
                Width::W64,
                Operands::M(Mem::index_scale(Reg::Rcx, 8, 0x5000_0000)),
            ),
            0x40_0000,
        );
    }

    #[test]
    fn decodes_real_gcc_bytes() {
        // 48 89 45 F8: mov %rax, -0x8(%rbp).
        let (i, len) = decode_one(&[0x48, 0x89, 0x45, 0xF8], 0).unwrap();
        assert_eq!(len, 4);
        assert_eq!(
            i,
            Inst::new(
                Op::Mov,
                Width::W64,
                Operands::MR {
                    dst: Mem::base_disp(Reg::Rbp, -8),
                    src: Reg::Rax,
                },
            )
        );
    }

    #[test]
    fn roundtrip_sib_edge_cases() {
        // The classic ModRM traps: r12 base forces a SIB byte, r13/rbp
        // base with disp 0 forces a disp8, rsp base always takes SIB.
        let addr = 0x40_0000;
        for base in [Reg::R12, Reg::R13, Reg::Rbp, Reg::Rsp] {
            for disp in [0i64, 0x7F, -0x80, 0x1234] {
                roundtrip(
                    Inst::new(
                        Op::Mov,
                        Width::W64,
                        Operands::RM {
                            dst: Reg::Rax,
                            src: Mem::base_disp(base, disp),
                        },
                    ),
                    addr,
                );
            }
            roundtrip(
                Inst::new(
                    Op::Mov,
                    Width::W64,
                    Operands::MR {
                        dst: Mem::bis(base, Reg::R13, 4, 0),
                        src: Reg::Rcx,
                    },
                ),
                addr,
            );
        }
    }

    #[test]
    fn roundtrip_mov_w32_imm_is_zero_extended() {
        // B8+rd imm32 zero-extends; the model form is the unsigned value.
        roundtrip(
            Inst::new(
                Op::Mov,
                Width::W32,
                Operands::RI {
                    dst: Reg::Rdx,
                    imm: 0xFFFF_FFFF,
                },
            ),
            0x40_0000,
        );
        let (i, _) = decode_one(&[0xB8, 0xFF, 0xFF, 0xFF, 0xFF], 0).unwrap();
        assert_eq!(
            i.operands,
            Operands::RI {
                dst: Reg::Rax,
                imm: 0xFFFF_FFFF,
            }
        );
    }

    #[test]
    fn rejects_high_byte_registers() {
        // Without REX, byte-width register codes 4-7 are ah/ch/dh/bh,
        // which the model cannot represent; decoding them as spl..dil
        // would silently rename the operand.
        // mov %ah, %al (88 E0): reg field = 4.
        assert_eq!(
            decode_one(&[0x88, 0xE0], 0),
            Err(DecodeError::HighByteReg(4))
        );
        // mov $1, %ah (B4 01).
        assert_eq!(
            decode_one(&[0xB4, 0x01], 0),
            Err(DecodeError::HighByteReg(4))
        );
        // neg %ch (F6 DD): r/m = 5.
        assert_eq!(
            decode_one(&[0xF6, 0xDD], 0),
            Err(DecodeError::HighByteReg(5))
        );
        // sete %ah (0F 94 C4).
        assert_eq!(
            decode_one(&[0x0F, 0x94, 0xC4], 0),
            Err(DecodeError::HighByteReg(4))
        );
        // movzbl %dh, %eax (0F B6 C6): src = 6.
        assert_eq!(
            decode_one(&[0x0F, 0xB6, 0xC6], 0),
            Err(DecodeError::HighByteReg(6))
        );
        // add $1, %bh (80 C7 01): r/m = 7.
        assert_eq!(
            decode_one(&[0x80, 0xC7, 0x01], 0),
            Err(DecodeError::HighByteReg(7))
        );
        // With a REX prefix the same codes are spl..dil and decode fine:
        // mov $1, %spl (40 B4 01).
        let (i, _) = decode_one(&[0x40, 0xB4, 0x01], 0).unwrap();
        assert_eq!(
            i,
            Inst::new(
                Op::Mov,
                Width::W8,
                Operands::RI {
                    dst: Reg::Rsp,
                    imm: 1,
                },
            )
        );
        // Codes 0-3 (al..bl) never collide: mov %cl, (%rax).
        assert!(decode_one(&[0x88, 0x08], 0).is_ok());
    }

    #[test]
    fn rejects_sse() {
        // movaps: 0F 28 C1.
        assert!(matches!(
            decode_one(&[0x0F, 0x28, 0xC1], 0),
            Err(DecodeError::UnsupportedOpcode(0x28))
        ));
    }

    #[test]
    fn rejects_operand_size_prefix() {
        assert!(matches!(
            decode_one(&[0x66, 0x90], 0),
            Err(DecodeError::UnsupportedPrefix(0x66))
        ));
    }

    #[test]
    fn truncated_reports_error() {
        assert_eq!(decode_one(&[0x48], 0), Err(DecodeError::Truncated));
        assert_eq!(decode_one(&[0xE9, 0x00], 0), Err(DecodeError::Truncated));
    }

    #[test]
    fn decode_all_stops_at_junk() {
        let mut bytes = encode(&Inst::new(Op::Nop, Width::W64, Operands::None), 0x40_0000).unwrap();
        bytes.push(0x0F);
        bytes.push(0x28); // SSE: unsupported.
        let insts = crate::decode_all(&bytes, 0x40_0000);
        assert_eq!(insts.len(), 1);
    }
}
