//! Binary encoder: [`Inst`] → real x86-64 machine code bytes.

use crate::insn::{AluOp, Inst, Mem, Op, Operands, Seg, Width};
use crate::reg::Reg;

/// An encoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// The operand shape is not valid for the operation.
    BadOperands(&'static str),
    /// A displacement, immediate or branch offset does not fit its field.
    OutOfRange(&'static str),
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::BadOperands(m) => write!(f, "bad operands: {m}"),
            EncodeError::OutOfRange(m) => write!(f, "value out of range: {m}"),
        }
    }
}

impl std::error::Error for EncodeError {}

/// Either side of a ModRM byte's `r/m` field.
#[derive(Clone, Copy)]
enum Rm {
    Reg(Reg),
    Mem(Mem),
}

/// Returns `true` if using `r` as an *8-bit* register requires a bare REX
/// prefix (`spl`/`bpl`/`sil`/`dil` instead of legacy `ah`..`bh`).
fn bare8(r: Reg) -> bool {
    matches!(r, Reg::Rsp | Reg::Rbp | Reg::Rsi | Reg::Rdi)
}

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new() -> Enc {
        Enc {
            buf: Vec::with_capacity(16),
        }
    }

    fn byte(&mut self, b: u8) {
        self.buf.push(b);
    }

    fn bytes(&mut self, bs: &[u8]) {
        self.buf.extend_from_slice(bs);
    }

    fn imm32(&mut self, v: i32) {
        self.bytes(&v.to_le_bytes());
    }

    fn imm64(&mut self, v: i64) {
        self.bytes(&v.to_le_bytes());
    }

    fn seg_prefix(&mut self, seg: Option<Seg>) {
        match seg {
            Some(Seg::Fs) => self.byte(0x64),
            Some(Seg::Gs) => self.byte(0x65),
            None => {}
        }
    }

    /// Emits a REX prefix if needed. `bare` forces emission of at least
    /// `0x40` (required for uniform byte registers).
    fn rex(&mut self, w: bool, reg: Option<Reg>, rm: &Rm, bare: bool) {
        let r = reg.is_some_and(|r| r.is_extended());
        let (b, x) = match rm {
            Rm::Reg(r) => (r.is_extended(), false),
            Rm::Mem(m) => (
                m.base.is_some_and(|r| r.is_extended()),
                m.index.is_some_and(|r| r.is_extended()),
            ),
        };
        let mut rex = 0x40u8;
        if w {
            rex |= 8;
        }
        if r {
            rex |= 4;
        }
        if x {
            rex |= 2;
        }
        if b {
            rex |= 1;
        }
        if rex != 0x40 || bare {
            self.byte(rex);
        }
    }

    /// Emits ModRM (+SIB +disp). Returns the patch offset of a pending
    /// RIP-relative disp32, if any.
    fn modrm(&mut self, reg_field: u8, rm: &Rm) -> Result<Option<usize>, EncodeError> {
        let reg3 = (reg_field & 7) << 3;
        match rm {
            Rm::Reg(r) => {
                self.byte(0xC0 | reg3 | r.low3());
                Ok(None)
            }
            Rm::Mem(m) => {
                if m.rip {
                    // mod=00 rm=101: RIP-relative disp32, fixed up later.
                    self.byte(reg3 | 0b101);
                    let pos = self.buf.len();
                    self.imm32(0);
                    return Ok(Some(pos));
                }
                match (m.base, m.index) {
                    (None, None) => {
                        // Absolute disp32: mod=00 rm=100 with SIB base=101
                        // index=100.
                        let disp: i32 = m
                            .disp
                            .try_into()
                            .map_err(|_| EncodeError::OutOfRange("absolute disp32"))?;
                        self.byte(reg3 | 0b100);
                        self.byte(0x25);
                        self.imm32(disp);
                        Ok(None)
                    }
                    (base, Some(idx)) => {
                        debug_assert!(idx != Reg::Rsp);
                        let ss = match m.scale {
                            1 => 0u8,
                            2 => 1,
                            4 => 2,
                            8 => 3,
                            _ => return Err(EncodeError::BadOperands("scale")),
                        };
                        match base {
                            None => {
                                let disp: i32 = m
                                    .disp
                                    .try_into()
                                    .map_err(|_| EncodeError::OutOfRange("disp32"))?;
                                self.byte(reg3 | 0b100);
                                self.byte((ss << 6) | (idx.low3() << 3) | 0b101);
                                self.imm32(disp);
                                Ok(None)
                            }
                            Some(b) => {
                                let (md, d8) = Self::disp_mode(m.disp, b)?;
                                self.byte((md << 6) | reg3 | 0b100);
                                self.byte((ss << 6) | (idx.low3() << 3) | b.low3());
                                match md {
                                    0 => {}
                                    1 => self.byte(d8 as u8),
                                    _ => self.imm32(m.disp as i32),
                                }
                                Ok(None)
                            }
                        }
                    }
                    (Some(b), None) => {
                        let (md, d8) = Self::disp_mode(m.disp, b)?;
                        if b.low3() == 0b100 {
                            // rsp/r12 base requires SIB with index=none.
                            self.byte((md << 6) | reg3 | 0b100);
                            self.byte(0x20 | b.low3());
                        } else {
                            self.byte((md << 6) | reg3 | b.low3());
                        }
                        match md {
                            0 => {}
                            1 => self.byte(d8 as u8),
                            _ => self.imm32(m.disp as i32),
                        }
                        Ok(None)
                    }
                }
            }
        }
    }

    /// Chooses mod (00/01/10) and disp8 for a based memory operand.
    fn disp_mode(disp: i64, base: Reg) -> Result<(u8, i8), EncodeError> {
        let disp32: i32 = disp
            .try_into()
            .map_err(|_| EncodeError::OutOfRange("disp32"))?;
        // rbp/r13 as base cannot use mod=00 (that slot means disp32/RIP).
        let needs_disp = base.low3() == 0b101;
        if disp32 == 0 && !needs_disp {
            Ok((0, 0))
        } else if let Ok(d8) = i8::try_from(disp32) {
            Ok((1, d8))
        } else {
            Ok((2, 0))
        }
    }
}

fn mem_of(rm: &Rm) -> Option<Mem> {
    match rm {
        Rm::Mem(m) => Some(*m),
        Rm::Reg(_) => None,
    }
}

/// Emits the standard `[seg] [REX] opcode ModRM [SIB] [disp] [imm]` shape
/// and fixes up any RIP-relative displacement against the final length.
#[allow(clippy::too_many_arguments)]
fn emit_modrm(
    e: &mut Enc,
    addr: u64,
    w64: bool,
    opcode: &[u8],
    reg_field: u8,
    reg_for_rex: Option<Reg>,
    rm: Rm,
    imm: &[u8],
    bare: bool,
) -> Result<(), EncodeError> {
    if let Some(m) = mem_of(&rm) {
        e.seg_prefix(m.seg);
    }
    e.rex(w64, reg_for_rex, &rm, bare);
    e.bytes(opcode);
    let rip_pos = e.modrm(reg_field, &rm)?;
    e.bytes(imm);
    if let Some(pos) = rip_pos {
        let m = mem_of(&rm).expect("rip operand is memory");
        let end = addr + e.buf.len() as u64;
        let rel = (m.disp as u64).wrapping_sub(end) as i64;
        let rel32: i32 = rel
            .try_into()
            .map_err(|_| EncodeError::OutOfRange("rip rel32"))?;
        e.buf[pos..pos + 4].copy_from_slice(&rel32.to_le_bytes());
    }
    Ok(())
}

/// Encodes `inst` as it would appear at absolute address `addr`.
///
/// The address is needed for RIP-relative operands and branch targets
/// (stored in the model as absolute addresses).
pub fn encode(inst: &Inst, addr: u64) -> Result<Vec<u8>, EncodeError> {
    let mut e = Enc::new();
    encode_into(inst, addr, &mut e)?;
    Ok(e.buf)
}

fn encode_into(inst: &Inst, addr: u64, e: &mut Enc) -> Result<(), EncodeError> {
    use Operands as O;
    let w = inst.w;
    let w64 = w == Width::W64;
    let w8 = w == Width::W8;

    match (inst.op, &inst.operands) {
        // ---- mov ----
        (Op::Mov, O::RR { dst, src }) => {
            let opc = if w8 { [0x88] } else { [0x89] };
            let bare = w8 && (bare8(*dst) || bare8(*src));
            emit_modrm(
                e,
                addr,
                w64,
                &opc,
                src.code(),
                Some(*src),
                Rm::Reg(*dst),
                &[],
                bare,
            )
        }
        (Op::Mov, O::MR { dst, src }) => {
            let opc = if w8 { [0x88] } else { [0x89] };
            let bare = w8 && bare8(*src);
            emit_modrm(
                e,
                addr,
                w64,
                &opc,
                src.code(),
                Some(*src),
                Rm::Mem(*dst),
                &[],
                bare,
            )
        }
        (Op::Mov, O::RM { dst, src }) => {
            let opc = if w8 { [0x8A] } else { [0x8B] };
            let bare = w8 && bare8(*dst);
            emit_modrm(
                e,
                addr,
                w64,
                &opc,
                dst.code(),
                Some(*dst),
                Rm::Mem(*src),
                &[],
                bare,
            )
        }
        (Op::Mov, O::RI { dst, imm }) => {
            match w {
                Width::W8 => {
                    let v = i8::try_from(*imm).map_err(|_| EncodeError::OutOfRange("imm8"))?;
                    e.rex(false, None, &Rm::Reg(*dst), bare8(*dst));
                    e.byte(0xB0 | dst.low3());
                    e.byte(v as u8);
                }
                Width::W32 => {
                    // B8+rd imm32 zero-extends, and the decoder stores the
                    // immediate zero-extended; only the canonical
                    // [0, 2^32) form round-trips, so reject the rest.
                    if u32::try_from(*imm).is_err() {
                        return Err(EncodeError::OutOfRange("imm32"));
                    }
                    e.rex(false, None, &Rm::Reg(*dst), false);
                    e.byte(0xB8 | dst.low3());
                    e.imm32(*imm as i32);
                }
                Width::W64 => {
                    if let Ok(v) = i32::try_from(*imm) {
                        // mov r/m64, imm32 (sign-extended): C7 /0.
                        emit_modrm(
                            e,
                            addr,
                            true,
                            &[0xC7],
                            0,
                            None,
                            Rm::Reg(*dst),
                            &v.to_le_bytes(),
                            false,
                        )?;
                    } else {
                        // movabs: REX.W B8+r imm64.
                        e.rex(true, None, &Rm::Reg(*dst), false);
                        e.byte(0xB8 | dst.low3());
                        e.imm64(*imm);
                    }
                }
            }
            Ok(())
        }
        (Op::Mov, O::MI { dst, imm }) => {
            if w8 {
                let v = i8::try_from(*imm).map_err(|_| EncodeError::OutOfRange("imm8"))?;
                emit_modrm(
                    e,
                    addr,
                    false,
                    &[0xC6],
                    0,
                    None,
                    Rm::Mem(*dst),
                    &[v as u8],
                    false,
                )
            } else {
                let v = i32::try_from(*imm).map_err(|_| EncodeError::OutOfRange("imm32"))?;
                emit_modrm(
                    e,
                    addr,
                    w64,
                    &[0xC7],
                    0,
                    None,
                    Rm::Mem(*dst),
                    &v.to_le_bytes(),
                    false,
                )
            }
        }

        // ---- movzx / movsx / movsxd ----
        (Op::Movzx8, O::RR { dst, src }) => emit_modrm(
            e,
            addr,
            w64,
            &[0x0F, 0xB6],
            dst.code(),
            Some(*dst),
            Rm::Reg(*src),
            &[],
            bare8(*src),
        ),
        (Op::Movzx8, O::RM { dst, src }) => emit_modrm(
            e,
            addr,
            w64,
            &[0x0F, 0xB6],
            dst.code(),
            Some(*dst),
            Rm::Mem(*src),
            &[],
            false,
        ),
        (Op::Movsx8, O::RR { dst, src }) => emit_modrm(
            e,
            addr,
            w64,
            &[0x0F, 0xBE],
            dst.code(),
            Some(*dst),
            Rm::Reg(*src),
            &[],
            bare8(*src),
        ),
        (Op::Movsx8, O::RM { dst, src }) => emit_modrm(
            e,
            addr,
            w64,
            &[0x0F, 0xBE],
            dst.code(),
            Some(*dst),
            Rm::Mem(*src),
            &[],
            false,
        ),
        (Op::Movsxd, O::RR { dst, src }) => emit_modrm(
            e,
            addr,
            true,
            &[0x63],
            dst.code(),
            Some(*dst),
            Rm::Reg(*src),
            &[],
            false,
        ),
        (Op::Movsxd, O::RM { dst, src }) => emit_modrm(
            e,
            addr,
            true,
            &[0x63],
            dst.code(),
            Some(*dst),
            Rm::Mem(*src),
            &[],
            false,
        ),

        // ---- lea ----
        (Op::Lea, O::RM { dst, src }) => emit_modrm(
            e,
            addr,
            w64,
            &[0x8D],
            dst.code(),
            Some(*dst),
            Rm::Mem(*src),
            &[],
            false,
        ),

        // ---- ALU grid ----
        (Op::Alu(op), O::RR { dst, src }) => {
            let base = alu_base(op);
            let opc = if w8 { [base] } else { [base + 1] };
            let bare = w8 && (bare8(*dst) || bare8(*src));
            emit_modrm(
                e,
                addr,
                w64,
                &opc,
                src.code(),
                Some(*src),
                Rm::Reg(*dst),
                &[],
                bare,
            )
        }
        (Op::Alu(op), O::MR { dst, src }) => {
            let base = alu_base(op);
            let opc = if w8 { [base] } else { [base + 1] };
            emit_modrm(
                e,
                addr,
                w64,
                &opc,
                src.code(),
                Some(*src),
                Rm::Mem(*dst),
                &[],
                w8 && bare8(*src),
            )
        }
        (Op::Alu(op), O::RM { dst, src }) => {
            let base = alu_base(op) + 2;
            let opc = if w8 { [base] } else { [base + 1] };
            emit_modrm(
                e,
                addr,
                w64,
                &opc,
                dst.code(),
                Some(*dst),
                Rm::Mem(*src),
                &[],
                w8 && bare8(*dst),
            )
        }
        (Op::Alu(op), O::RI { dst, imm }) => encode_alu_imm(e, addr, op, w, Rm::Reg(*dst), *imm),
        (Op::Alu(op), O::MI { dst, imm }) => encode_alu_imm(e, addr, op, w, Rm::Mem(*dst), *imm),

        // ---- test ----
        (Op::Test, O::RR { dst, src }) => {
            let opc = if w8 { [0x84] } else { [0x85] };
            let bare = w8 && (bare8(*dst) || bare8(*src));
            emit_modrm(
                e,
                addr,
                w64,
                &opc,
                src.code(),
                Some(*src),
                Rm::Reg(*dst),
                &[],
                bare,
            )
        }
        (Op::Test, O::RI { dst, imm }) => {
            if w8 {
                let v = i8::try_from(*imm).map_err(|_| EncodeError::OutOfRange("imm8"))?;
                emit_modrm(
                    e,
                    addr,
                    false,
                    &[0xF6],
                    0,
                    None,
                    Rm::Reg(*dst),
                    &[v as u8],
                    bare8(*dst),
                )
            } else {
                let v = i32::try_from(*imm).map_err(|_| EncodeError::OutOfRange("imm32"))?;
                emit_modrm(
                    e,
                    addr,
                    w64,
                    &[0xF7],
                    0,
                    None,
                    Rm::Reg(*dst),
                    &v.to_le_bytes(),
                    false,
                )
            }
        }

        // ---- shifts ----
        //
        // Only the C1/D3 (32/64-bit) opcode groups are modeled; an 8-bit
        // shift would need C0/D2, so W8 is rejected rather than silently
        // encoded at the wrong width.
        (Op::Shift(op), O::RI { dst, imm }) => {
            if w8 {
                return Err(EncodeError::BadOperands("8-bit shift"));
            }
            let count = u8::try_from(*imm).map_err(|_| EncodeError::OutOfRange("shift count"))?;
            emit_modrm(
                e,
                addr,
                w64,
                &[0xC1],
                op.digit(),
                None,
                Rm::Reg(*dst),
                &[count],
                false,
            )
        }
        (Op::Shift(op), O::MI { dst, imm }) => {
            if w8 {
                return Err(EncodeError::BadOperands("8-bit shift"));
            }
            let count = u8::try_from(*imm).map_err(|_| EncodeError::OutOfRange("shift count"))?;
            emit_modrm(
                e,
                addr,
                w64,
                &[0xC1],
                op.digit(),
                None,
                Rm::Mem(*dst),
                &[count],
                false,
            )
        }
        (Op::ShiftCl(op), O::R(r)) => {
            if w8 {
                return Err(EncodeError::BadOperands("8-bit shift"));
            }
            emit_modrm(
                e,
                addr,
                w64,
                &[0xD3],
                op.digit(),
                None,
                Rm::Reg(*r),
                &[],
                false,
            )
        }
        (Op::ShiftCl(op), O::M(m)) => {
            if w8 {
                return Err(EncodeError::BadOperands("8-bit shift"));
            }
            emit_modrm(
                e,
                addr,
                w64,
                &[0xD3],
                op.digit(),
                None,
                Rm::Mem(*m),
                &[],
                false,
            )
        }

        // ---- multiply / divide ----
        (Op::Imul2, O::RR { dst, src }) => emit_modrm(
            e,
            addr,
            w64,
            &[0x0F, 0xAF],
            dst.code(),
            Some(*dst),
            Rm::Reg(*src),
            &[],
            false,
        ),
        (Op::Imul2, O::RM { dst, src }) => emit_modrm(
            e,
            addr,
            w64,
            &[0x0F, 0xAF],
            dst.code(),
            Some(*dst),
            Rm::Mem(*src),
            &[],
            false,
        ),
        (Op::Imul3, O::RRI { dst, src, imm }) => {
            if let Ok(v) = i8::try_from(*imm) {
                emit_modrm(
                    e,
                    addr,
                    w64,
                    &[0x6B],
                    dst.code(),
                    Some(*dst),
                    Rm::Reg(*src),
                    &[v as u8],
                    false,
                )
            } else {
                let v = i32::try_from(*imm).map_err(|_| EncodeError::OutOfRange("imm32"))?;
                emit_modrm(
                    e,
                    addr,
                    w64,
                    &[0x69],
                    dst.code(),
                    Some(*dst),
                    Rm::Reg(*src),
                    &v.to_le_bytes(),
                    false,
                )
            }
        }
        (Op::Imul3, O::RMI { dst, src, imm }) => {
            if let Ok(v) = i8::try_from(*imm) {
                emit_modrm(
                    e,
                    addr,
                    w64,
                    &[0x6B],
                    dst.code(),
                    Some(*dst),
                    Rm::Mem(*src),
                    &[v as u8],
                    false,
                )
            } else {
                let v = i32::try_from(*imm).map_err(|_| EncodeError::OutOfRange("imm32"))?;
                emit_modrm(
                    e,
                    addr,
                    w64,
                    &[0x69],
                    dst.code(),
                    Some(*dst),
                    Rm::Mem(*src),
                    &v.to_le_bytes(),
                    false,
                )
            }
        }
        (Op::MulDiv(op), O::R(r)) => {
            let opc = if w8 { [0xF6] } else { [0xF7] };
            emit_modrm(
                e,
                addr,
                w64,
                &opc,
                op.digit(),
                None,
                Rm::Reg(*r),
                &[],
                w8 && bare8(*r),
            )
        }
        (Op::MulDiv(op), O::M(m)) => {
            let opc = if w8 { [0xF6] } else { [0xF7] };
            emit_modrm(
                e,
                addr,
                w64,
                &opc,
                op.digit(),
                None,
                Rm::Mem(*m),
                &[],
                false,
            )
        }
        (Op::Neg, O::R(r)) => {
            let opc = if w8 { [0xF6] } else { [0xF7] };
            emit_modrm(
                e,
                addr,
                w64,
                &opc,
                3,
                None,
                Rm::Reg(*r),
                &[],
                w8 && bare8(*r),
            )
        }
        (Op::Neg, O::M(m)) => {
            let opc = if w8 { [0xF6] } else { [0xF7] };
            emit_modrm(e, addr, w64, &opc, 3, None, Rm::Mem(*m), &[], false)
        }
        (Op::Not, O::R(r)) => {
            let opc = if w8 { [0xF6] } else { [0xF7] };
            emit_modrm(
                e,
                addr,
                w64,
                &opc,
                2,
                None,
                Rm::Reg(*r),
                &[],
                w8 && bare8(*r),
            )
        }
        (Op::Not, O::M(m)) => {
            let opc = if w8 { [0xF6] } else { [0xF7] };
            emit_modrm(e, addr, w64, &opc, 2, None, Rm::Mem(*m), &[], false)
        }

        // ---- stack ----
        (Op::Push, O::R(r)) => {
            e.rex(false, None, &Rm::Reg(*r), false);
            e.byte(0x50 | r.low3());
            Ok(())
        }
        (Op::Push, O::M(m)) => {
            emit_modrm(e, addr, false, &[0xFF], 6, None, Rm::Mem(*m), &[], false)
        }
        (Op::Pop, O::R(r)) => {
            e.rex(false, None, &Rm::Reg(*r), false);
            e.byte(0x58 | r.low3());
            Ok(())
        }
        (Op::Pop, O::M(m)) => emit_modrm(e, addr, false, &[0x8F], 0, None, Rm::Mem(*m), &[], false),
        (Op::Pushfq, O::None) => {
            e.byte(0x9C);
            Ok(())
        }
        (Op::Popfq, O::None) => {
            e.byte(0x9D);
            Ok(())
        }

        // ---- wide ops ----
        (Op::Cqo, O::None) => {
            if w64 {
                e.byte(0x48);
            }
            e.byte(0x99);
            Ok(())
        }

        // ---- control flow ----
        (Op::Call, O::Rel(target)) => {
            e.byte(0xE8);
            emit_rel32(e, addr, *target)
        }
        (Op::CallInd, O::R(r)) => {
            emit_modrm(e, addr, false, &[0xFF], 2, None, Rm::Reg(*r), &[], false)
        }
        (Op::CallInd, O::M(m)) => {
            emit_modrm(e, addr, false, &[0xFF], 2, None, Rm::Mem(*m), &[], false)
        }
        (Op::Ret, O::None) => {
            e.byte(0xC3);
            Ok(())
        }
        (Op::Jmp, O::Rel(target)) => {
            let rel8 = (*target as i64) - (addr as i64 + 2);
            if let Ok(d8) = i8::try_from(rel8) {
                e.byte(0xEB);
                e.byte(d8 as u8);
                Ok(())
            } else {
                e.byte(0xE9);
                emit_rel32(e, addr, *target)
            }
        }
        (Op::JmpInd, O::R(r)) => {
            emit_modrm(e, addr, false, &[0xFF], 4, None, Rm::Reg(*r), &[], false)
        }
        (Op::JmpInd, O::M(m)) => {
            emit_modrm(e, addr, false, &[0xFF], 4, None, Rm::Mem(*m), &[], false)
        }
        (Op::Jcc(c), O::Rel(target)) => {
            let rel8 = (*target as i64) - (addr as i64 + 2);
            if let Ok(d8) = i8::try_from(rel8) {
                e.byte(0x70 | c.code());
                e.byte(d8 as u8);
                Ok(())
            } else {
                e.byte(0x0F);
                e.byte(0x80 | c.code());
                emit_rel32(e, addr, *target)
            }
        }

        // ---- conditional data ----
        (Op::Setcc(c), O::R(r)) => emit_modrm(
            e,
            addr,
            false,
            &[0x0F, 0x90 | c.code()],
            0,
            None,
            Rm::Reg(*r),
            &[],
            bare8(*r),
        ),
        (Op::Setcc(c), O::M(m)) => emit_modrm(
            e,
            addr,
            false,
            &[0x0F, 0x90 | c.code()],
            0,
            None,
            Rm::Mem(*m),
            &[],
            false,
        ),
        (Op::Cmovcc(c), O::RR { dst, src }) => emit_modrm(
            e,
            addr,
            w64,
            &[0x0F, 0x40 | c.code()],
            dst.code(),
            Some(*dst),
            Rm::Reg(*src),
            &[],
            false,
        ),
        (Op::Cmovcc(c), O::RM { dst, src }) => emit_modrm(
            e,
            addr,
            w64,
            &[0x0F, 0x40 | c.code()],
            dst.code(),
            Some(*dst),
            Rm::Mem(*src),
            &[],
            false,
        ),

        // ---- system ----
        (Op::Syscall, O::None) => {
            e.bytes(&[0x0F, 0x05]);
            Ok(())
        }
        (Op::Ud2, O::None) => {
            e.bytes(&[0x0F, 0x0B]);
            Ok(())
        }
        (Op::Int3, O::None) => {
            e.byte(0xCC);
            Ok(())
        }
        (Op::Nop, O::None) => {
            e.byte(0x90);
            Ok(())
        }

        _ => Err(EncodeError::BadOperands("operation/operand mismatch")),
    }
}

/// Emits a rel32 whose origin is `addr` and whose end is four bytes past
/// the current buffer position.
fn emit_rel32(e: &mut Enc, addr: u64, target: u64) -> Result<(), EncodeError> {
    let end = addr + e.buf.len() as u64 + 4;
    let rel = (target as i64) - (end as i64);
    let rel32: i32 = rel
        .try_into()
        .map_err(|_| EncodeError::OutOfRange("branch rel32"))?;
    e.imm32(rel32);
    Ok(())
}

fn alu_base(op: AluOp) -> u8 {
    // Classic grid: add=00, or=08, and=20, sub=28, xor=30, cmp=38.
    op.digit() * 8
}

/// Shared encoder for the `0x80`/`0x81`/`0x83` immediate ALU forms.
fn encode_alu_imm(
    e: &mut Enc,
    addr: u64,
    op: AluOp,
    w: Width,
    rm: Rm,
    imm: i64,
) -> Result<(), EncodeError> {
    let w64 = w == Width::W64;
    match w {
        Width::W8 => {
            let v = i8::try_from(imm).map_err(|_| EncodeError::OutOfRange("imm8"))?;
            let bare = matches!(rm, Rm::Reg(r) if bare8(r));
            emit_modrm(
                e,
                addr,
                false,
                &[0x80],
                op.digit(),
                None,
                rm,
                &[v as u8],
                bare,
            )
        }
        _ => {
            if let Ok(v) = i8::try_from(imm) {
                emit_modrm(
                    e,
                    addr,
                    w64,
                    &[0x83],
                    op.digit(),
                    None,
                    rm,
                    &[v as u8],
                    false,
                )
            } else {
                let v = i32::try_from(imm).map_err(|_| EncodeError::OutOfRange("imm32"))?;
                emit_modrm(
                    e,
                    addr,
                    w64,
                    &[0x81],
                    op.digit(),
                    None,
                    rm,
                    &v.to_le_bytes(),
                    false,
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::{Cond, MulDivOp, ShiftOp};

    fn enc(i: Inst) -> Vec<u8> {
        encode(&i, 0x40_0000).expect("encodes")
    }

    #[test]
    fn mov_rr_64() {
        // mov %rax, %rbx (store into rbx): 48 89 C3.
        let i = Inst::new(
            Op::Mov,
            Width::W64,
            Operands::RR {
                dst: Reg::Rbx,
                src: Reg::Rax,
            },
        );
        assert_eq!(enc(i), vec![0x48, 0x89, 0xC3]);
    }

    #[test]
    fn mov_load_simple() {
        // mov (%rax), %rcx: 48 8B 08.
        let i = Inst::new(
            Op::Mov,
            Width::W64,
            Operands::RM {
                dst: Reg::Rcx,
                src: Mem::base(Reg::Rax),
            },
        );
        assert_eq!(enc(i), vec![0x48, 0x8B, 0x08]);
    }

    #[test]
    fn mov_store_sib_scaled() {
        // mov %rcx, (%rax,%rbx,4): 48 89 0C 98.
        let i = Inst::new(
            Op::Mov,
            Width::W64,
            Operands::MR {
                dst: Mem::bis(Reg::Rax, Reg::Rbx, 4, 0),
                src: Reg::Rcx,
            },
        );
        assert_eq!(enc(i), vec![0x48, 0x89, 0x0C, 0x98]);
    }

    #[test]
    fn rbp_base_needs_disp8() {
        // mov (%rbp), %rax must encode as disp8=0: 48 8B 45 00.
        let i = Inst::new(
            Op::Mov,
            Width::W64,
            Operands::RM {
                dst: Reg::Rax,
                src: Mem::base(Reg::Rbp),
            },
        );
        assert_eq!(enc(i), vec![0x48, 0x8B, 0x45, 0x00]);
    }

    #[test]
    fn r13_base_needs_disp8() {
        let i = Inst::new(
            Op::Mov,
            Width::W64,
            Operands::RM {
                dst: Reg::Rax,
                src: Mem::base(Reg::R13),
            },
        );
        assert_eq!(enc(i), vec![0x49, 0x8B, 0x45, 0x00]);
    }

    #[test]
    fn rsp_base_needs_sib() {
        // mov 8(%rsp), %rax: 48 8B 44 24 08.
        let i = Inst::new(
            Op::Mov,
            Width::W64,
            Operands::RM {
                dst: Reg::Rax,
                src: Mem::base_disp(Reg::Rsp, 8),
            },
        );
        assert_eq!(enc(i), vec![0x48, 0x8B, 0x44, 0x24, 0x08]);
    }

    #[test]
    fn add_imm8_uses_83() {
        // add $8, %rax: 48 83 C0 08.
        let i = Inst::new(
            Op::Alu(AluOp::Add),
            Width::W64,
            Operands::RI {
                dst: Reg::Rax,
                imm: 8,
            },
        );
        assert_eq!(enc(i), vec![0x48, 0x83, 0xC0, 0x08]);
    }

    #[test]
    fn cmp_imm32() {
        // cmp $0x1000, %rdi: 48 81 FF 00 10 00 00.
        let i = Inst::new(
            Op::Alu(AluOp::Cmp),
            Width::W64,
            Operands::RI {
                dst: Reg::Rdi,
                imm: 0x1000,
            },
        );
        assert_eq!(enc(i), vec![0x48, 0x81, 0xFF, 0x00, 0x10, 0x00, 0x00]);
    }

    #[test]
    fn movabs_for_large_imm() {
        let i = Inst::new(
            Op::Mov,
            Width::W64,
            Operands::RI {
                dst: Reg::Rax,
                imm: 0x1122_3344_5566_7788,
            },
        );
        assert_eq!(
            enc(i),
            vec![0x48, 0xB8, 0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11]
        );
    }

    #[test]
    fn jmp_rel8_and_rel32() {
        let near = Inst::new(Op::Jmp, Width::W64, Operands::Rel(0x40_0002 + 0x10));
        assert_eq!(enc(near), vec![0xEB, 0x10]);
        let far = Inst::new(Op::Jmp, Width::W64, Operands::Rel(0x50_0000));
        let b = enc(far);
        assert_eq!(b[0], 0xE9);
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn jcc_rel32_form() {
        let i = Inst::new(Op::Jcc(Cond::Ne), Width::W64, Operands::Rel(0x41_0000));
        let b = enc(i);
        assert_eq!(&b[..2], &[0x0F, 0x85]);
        assert_eq!(b.len(), 6);
    }

    #[test]
    fn call_rel32() {
        // call to next instruction: E8 00 00 00 00.
        let i = Inst::new(Op::Call, Width::W64, Operands::Rel(0x40_0005));
        assert_eq!(enc(i), vec![0xE8, 0, 0, 0, 0]);
    }

    #[test]
    fn shr_imm() {
        // shr $35, %rcx: 48 C1 E9 23.
        let i = Inst::new(
            Op::Shift(ShiftOp::Shr),
            Width::W64,
            Operands::RI {
                dst: Reg::Rcx,
                imm: 35,
            },
        );
        assert_eq!(enc(i), vec![0x48, 0xC1, 0xE9, 0x23]);
    }

    #[test]
    fn mul_with_memory_and_index_table() {
        // mul 0x50000000(,%rcx,8): 48 F7 24 CD 00 00 00 50.
        let i = Inst::new(
            Op::MulDiv(MulDivOp::Mul),
            Width::W64,
            Operands::M(Mem::index_scale(Reg::Rcx, 8, 0x5000_0000)),
        );
        assert_eq!(enc(i), vec![0x48, 0xF7, 0x24, 0xCD, 0x00, 0x00, 0x00, 0x50]);
    }

    #[test]
    fn push_pop_extended() {
        let p = Inst::new(Op::Push, Width::W64, Operands::R(Reg::R12));
        assert_eq!(enc(p), vec![0x41, 0x54]);
        let q = Inst::new(Op::Pop, Width::W64, Operands::R(Reg::Rbx));
        assert_eq!(enc(q), vec![0x5B]);
    }

    #[test]
    fn byte_reg_sil_needs_bare_rex() {
        // mov %sil, (%rax): 40 88 30.
        let i = Inst::new(
            Op::Mov,
            Width::W8,
            Operands::MR {
                dst: Mem::base(Reg::Rax),
                src: Reg::Rsi,
            },
        );
        assert_eq!(enc(i), vec![0x40, 0x88, 0x30]);
    }

    #[test]
    fn rip_relative_round_numbers() {
        // lea 0x100(%rip), %rax at 0x400000; instruction is 7 bytes, so
        // target = 0x400007 + 0x100.
        let i = Inst::new(
            Op::Lea,
            Width::W64,
            Operands::RM {
                dst: Reg::Rax,
                src: Mem::rip(0x40_0107),
            },
        );
        assert_eq!(enc(i), vec![0x48, 0x8D, 0x05, 0x00, 0x01, 0x00, 0x00]);
    }

    #[test]
    fn absolute_disp32() {
        // mov %rax, 0x50000000: 48 89 04 25 00 00 00 50.
        let i = Inst::new(
            Op::Mov,
            Width::W64,
            Operands::MR {
                dst: Mem::abs(0x5000_0000),
                src: Reg::Rax,
            },
        );
        assert_eq!(enc(i), vec![0x48, 0x89, 0x04, 0x25, 0x00, 0x00, 0x00, 0x50]);
    }

    #[test]
    fn syscall_ud2_int3() {
        assert_eq!(
            enc(Inst::new(Op::Syscall, Width::W64, Operands::None)),
            vec![0x0F, 0x05]
        );
        assert_eq!(
            enc(Inst::new(Op::Ud2, Width::W64, Operands::None)),
            vec![0x0F, 0x0B]
        );
        assert_eq!(
            enc(Inst::new(Op::Int3, Width::W64, Operands::None)),
            vec![0xCC]
        );
    }

    #[test]
    fn mov_w32_has_no_rex_w() {
        // mov %eax, %ebx: 89 C3.
        let i = Inst::new(
            Op::Mov,
            Width::W32,
            Operands::RR {
                dst: Reg::Rbx,
                src: Reg::Rax,
            },
        );
        assert_eq!(enc(i), vec![0x89, 0xC3]);
    }

    #[test]
    fn mov_w32_imm_requires_canonical_zero_extended_form() {
        // mov $-1, %eax is written 0xFFFFFFFF in the model (the decoder
        // zero-extends B8+rd imm32); the sign-extended spelling must be
        // rejected instead of silently re-decoding as a different value.
        let neg = Inst::new(
            Op::Mov,
            Width::W32,
            Operands::RI {
                dst: Reg::Rax,
                imm: -1,
            },
        );
        assert_eq!(
            encode(&neg, 0x40_0000),
            Err(EncodeError::OutOfRange("imm32"))
        );
        let max = Inst::new(
            Op::Mov,
            Width::W32,
            Operands::RI {
                dst: Reg::Rax,
                imm: 0xFFFF_FFFF,
            },
        );
        assert_eq!(enc(max), vec![0xB8, 0xFF, 0xFF, 0xFF, 0xFF]);
    }

    #[test]
    fn w8_shift_is_rejected_not_miswidthed() {
        // C1/D3 are the 32/64-bit groups; encoding a W8 shift through them
        // would silently change the operation width.
        let ri = Inst::new(
            Op::Shift(ShiftOp::Shl),
            Width::W8,
            Operands::RI {
                dst: Reg::Rax,
                imm: 1,
            },
        );
        assert_eq!(
            encode(&ri, 0x40_0000),
            Err(EncodeError::BadOperands("8-bit shift"))
        );
        let cl = Inst::new(Op::ShiftCl(ShiftOp::Shr), Width::W8, Operands::R(Reg::Rbx));
        assert_eq!(
            encode(&cl, 0x40_0000),
            Err(EncodeError::BadOperands("8-bit shift"))
        );
    }

    #[test]
    fn r12_base_needs_sib() {
        // mov (%r12), %rax: 49 8B 04 24.
        let i = Inst::new(
            Op::Mov,
            Width::W64,
            Operands::RM {
                dst: Reg::Rax,
                src: Mem::base(Reg::R12),
            },
        );
        assert_eq!(enc(i), vec![0x49, 0x8B, 0x04, 0x24]);
    }
}
