//! General-purpose register names and their hardware encodings.

/// A 64-bit general-purpose register.
///
/// Sub-register access (32/16/8-bit) is expressed by pairing a `Reg` with a
/// [`crate::Width`] in the instruction model, mirroring how the hardware
/// reuses the same 4-bit register number across operand sizes. Only the
/// "low byte" 8-bit registers are modeled (`al`, `cl`, ..., `r15b`); the
/// legacy high-byte registers (`ah`..`bh`) are intentionally unsupported,
/// as compilers for 64-bit targets rarely emit them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Reg {
    /// Accumulator; implicit operand of `mul`/`div`/`cqo`.
    Rax = 0,
    /// Counter; implicit shift-count register (`cl`).
    Rcx = 1,
    /// Data; implicit high half of `mul`/`div`.
    Rdx = 2,
    /// Base (callee-saved in the System V ABI).
    Rbx = 3,
    /// Stack pointer; unusable as a SIB index.
    Rsp = 4,
    /// Frame pointer (callee-saved).
    Rbp = 5,
    /// Source index; 2nd argument register in the System V ABI.
    Rsi = 6,
    /// Destination index; 1st argument register in the System V ABI.
    Rdi = 7,
    /// Extended register 8; 5th argument register.
    R8 = 8,
    /// Extended register 9; 6th argument register.
    R9 = 9,
    /// Extended register 10 (caller-saved).
    R10 = 10,
    /// Extended register 11 (caller-saved).
    R11 = 11,
    /// Extended register 12 (callee-saved).
    R12 = 12,
    /// Extended register 13 (callee-saved); shares `rbp`'s ModRM quirk.
    R13 = 13,
    /// Extended register 14 (callee-saved).
    R14 = 14,
    /// Extended register 15 (callee-saved).
    R15 = 15,
}

/// All sixteen general-purpose registers in encoding order.
pub const ALL_REGS: [Reg; 16] = [
    Reg::Rax,
    Reg::Rcx,
    Reg::Rdx,
    Reg::Rbx,
    Reg::Rsp,
    Reg::Rbp,
    Reg::Rsi,
    Reg::Rdi,
    Reg::R8,
    Reg::R9,
    Reg::R10,
    Reg::R11,
    Reg::R12,
    Reg::R13,
    Reg::R14,
    Reg::R15,
];

impl Reg {
    /// Returns the 4-bit hardware register number (0..=15).
    #[inline]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Returns the low three bits used in ModRM/SIB fields.
    #[inline]
    pub fn low3(self) -> u8 {
        self.code() & 0b111
    }

    /// Returns `true` if encoding this register requires a REX extension
    /// bit (`r8`..`r15`).
    #[inline]
    pub fn is_extended(self) -> bool {
        self.code() >= 8
    }

    /// Builds a register from its 4-bit hardware number.
    ///
    /// # Panics
    ///
    /// Panics if `code >= 16`; decoder-internal values are always masked.
    #[inline]
    pub fn from_code(code: u8) -> Reg {
        ALL_REGS[code as usize]
    }

    /// Returns the canonical 64-bit AT&T-style name, e.g. `"rax"`.
    pub fn name64(self) -> &'static str {
        const NAMES: [&str; 16] = [
            "rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi", "r8", "r9", "r10", "r11",
            "r12", "r13", "r14", "r15",
        ];
        NAMES[self.code() as usize]
    }

    /// Returns the 32-bit sub-register name, e.g. `"eax"`.
    pub fn name32(self) -> &'static str {
        const NAMES: [&str; 16] = [
            "eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi", "r8d", "r9d", "r10d", "r11d",
            "r12d", "r13d", "r14d", "r15d",
        ];
        NAMES[self.code() as usize]
    }

    /// Returns the 16-bit sub-register name, e.g. `"ax"`.
    pub fn name16(self) -> &'static str {
        const NAMES: [&str; 16] = [
            "ax", "cx", "dx", "bx", "sp", "bp", "si", "di", "r8w", "r9w", "r10w", "r11w", "r12w",
            "r13w", "r14w", "r15w",
        ];
        NAMES[self.code() as usize]
    }

    /// Returns the low-byte sub-register name, e.g. `"al"` / `"sil"`.
    pub fn name8(self) -> &'static str {
        const NAMES: [&str; 16] = [
            "al", "cl", "dl", "bl", "spl", "bpl", "sil", "dil", "r8b", "r9b", "r10b", "r11b",
            "r12b", "r13b", "r14b", "r15b",
        ];
        NAMES[self.code() as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for r in ALL_REGS {
            assert_eq!(Reg::from_code(r.code()), r);
        }
    }

    #[test]
    fn low3_masks_extension() {
        assert_eq!(Reg::R8.low3(), 0);
        assert_eq!(Reg::R15.low3(), 7);
        assert!(Reg::R8.is_extended());
        assert!(!Reg::Rdi.is_extended());
    }

    #[test]
    fn names_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for r in ALL_REGS {
            assert!(seen.insert(r.name64()));
            assert!(seen.insert(r.name32()));
            assert!(seen.insert(r.name8()));
        }
    }
}
