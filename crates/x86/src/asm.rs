//! A label-aware assembler over the instruction encoder.
//!
//! [`Asm`] accumulates machine code at a fixed base address, supporting
//! forward label references for branches. Branches to labels are always
//! emitted in their `rel32` form so that binding order cannot change
//! instruction lengths (the classic fixed-point problem of span-dependent
//! instructions is deliberately avoided; a hardening tool favors
//! predictability over the last byte of density).

use crate::encode::{encode, EncodeError};
use crate::insn::{AluOp, Cond, Inst, Mem, MulDivOp, Op, Operands, ShiftOp, Width};
use crate::reg::Reg;
use std::collections::HashMap;

/// An opaque assembler label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// An assembler failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// An instruction failed to encode.
    Encode(EncodeError),
    /// `finish` was called while a label was still unbound.
    UnboundLabel(Label),
    /// A label was bound twice.
    Rebound(Label),
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AsmError::Encode(e) => write!(f, "encode error: {e}"),
            AsmError::UnboundLabel(l) => write!(f, "unbound label {l:?}"),
            AsmError::Rebound(l) => write!(f, "label bound twice {l:?}"),
        }
    }
}

impl std::error::Error for AsmError {}

impl From<EncodeError> for AsmError {
    fn from(e: EncodeError) -> AsmError {
        AsmError::Encode(e)
    }
}

/// Finished machine code at a base address.
#[derive(Debug, Clone)]
pub struct Program {
    /// Base address of the first byte.
    pub base: u64,
    /// The machine code.
    pub bytes: Vec<u8>,
}

impl Program {
    /// Address one past the final byte.
    pub fn end(&self) -> u64 {
        self.base + self.bytes.len() as u64
    }
}

enum FixKind {
    /// A rel32 at `pos` whose origin is `pos + 4`.
    Rel32,
}

struct Fixup {
    pos: usize,
    label: Label,
    kind: FixKind,
}

/// The assembler.
pub struct Asm {
    base: u64,
    bytes: Vec<u8>,
    labels: Vec<Option<u64>>,
    fixups: Vec<Fixup>,
    named: HashMap<String, Label>,
}

impl Asm {
    /// Creates an assembler whose first emitted byte lives at `base`.
    pub fn new(base: u64) -> Asm {
        Asm {
            base,
            bytes: Vec::new(),
            labels: Vec::new(),
            fixups: Vec::new(),
            named: HashMap::new(),
        }
    }

    /// The address of the next byte to be emitted.
    pub fn here(&self) -> u64 {
        self.base + self.bytes.len() as u64
    }

    /// The current length of the emitted code in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Returns `true` if nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Creates a fresh unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Returns the label registered under `name`, creating it on first use.
    ///
    /// Handy for codegen that refers to functions by name before they are
    /// emitted.
    pub fn named_label(&mut self, name: &str) -> Label {
        if let Some(&l) = self.named.get(name) {
            return l;
        }
        let l = self.label();
        self.named.insert(name.to_owned(), l);
        l
    }

    /// Binds `label` to the current position.
    ///
    /// Returns an error if the label was already bound.
    pub fn bind(&mut self, label: Label) -> Result<(), AsmError> {
        let here = self.here();
        let slot = &mut self.labels[label.0];
        if slot.is_some() {
            return Err(AsmError::Rebound(label));
        }
        *slot = Some(here);
        Ok(())
    }

    /// Returns the bound address of `label`, if bound.
    pub fn label_addr(&self, label: Label) -> Option<u64> {
        self.labels[label.0]
    }

    /// Emits a full instruction through the encoder.
    pub fn emit(&mut self, inst: Inst) -> Result<(), AsmError> {
        let addr = self.here();
        let enc = encode(&inst, addr)?;
        self.bytes.extend_from_slice(&enc);
        Ok(())
    }

    /// Emits raw bytes verbatim.
    pub fn raw(&mut self, bytes: &[u8]) {
        self.bytes.extend_from_slice(bytes);
    }

    // ---- data moves ----

    /// `mov %src, %dst`.
    pub fn mov_rr(&mut self, w: Width, dst: Reg, src: Reg) {
        self.emit(Inst::new(Op::Mov, w, Operands::RR { dst, src }))
            .expect("mov_rr");
    }

    /// `mov $imm, %dst`.
    pub fn mov_ri(&mut self, w: Width, dst: Reg, imm: i64) {
        self.emit(Inst::new(Op::Mov, w, Operands::RI { dst, imm }))
            .expect("mov_ri");
    }

    /// `mov mem, %dst` (load).
    pub fn mov_rm(&mut self, w: Width, dst: Reg, src: Mem) {
        self.emit(Inst::new(Op::Mov, w, Operands::RM { dst, src }))
            .expect("mov_rm");
    }

    /// `mov %src, mem` (store).
    pub fn mov_mr(&mut self, w: Width, dst: Mem, src: Reg) {
        self.emit(Inst::new(Op::Mov, w, Operands::MR { dst, src }))
            .expect("mov_mr");
    }

    /// `mov $imm, mem`.
    pub fn mov_mi(&mut self, w: Width, dst: Mem, imm: i64) {
        self.emit(Inst::new(Op::Mov, w, Operands::MI { dst, imm }))
            .expect("mov_mi");
    }

    /// `movzbq mem, %dst`.
    pub fn movzx8_rm(&mut self, dst: Reg, src: Mem) {
        self.emit(Inst::new(Op::Movzx8, Width::W64, Operands::RM { dst, src }))
            .expect("movzx8_rm");
    }

    /// `movsbq mem, %dst`.
    pub fn movsx8_rm(&mut self, dst: Reg, src: Mem) {
        self.emit(Inst::new(Op::Movsx8, Width::W64, Operands::RM { dst, src }))
            .expect("movsx8_rm");
    }

    /// `lea mem, %dst`.
    pub fn lea(&mut self, dst: Reg, mem: Mem) {
        self.emit(Inst::new(
            Op::Lea,
            Width::W64,
            Operands::RM { dst, src: mem },
        ))
        .expect("lea");
    }

    // ---- ALU ----

    /// `op %src, %dst`.
    pub fn alu_rr(&mut self, op: AluOp, w: Width, dst: Reg, src: Reg) {
        self.emit(Inst::new(Op::Alu(op), w, Operands::RR { dst, src }))
            .expect("alu_rr");
    }

    /// `op $imm, %dst`.
    pub fn alu_ri(&mut self, op: AluOp, w: Width, dst: Reg, imm: i64) {
        self.emit(Inst::new(Op::Alu(op), w, Operands::RI { dst, imm }))
            .expect("alu_ri");
    }

    /// `op mem, %dst`.
    pub fn alu_rm(&mut self, op: AluOp, w: Width, dst: Reg, src: Mem) {
        self.emit(Inst::new(Op::Alu(op), w, Operands::RM { dst, src }))
            .expect("alu_rm");
    }

    /// `op %src, mem`.
    pub fn alu_mr(&mut self, op: AluOp, w: Width, dst: Mem, src: Reg) {
        self.emit(Inst::new(Op::Alu(op), w, Operands::MR { dst, src }))
            .expect("alu_mr");
    }

    /// `test %src, %dst`.
    pub fn test_rr(&mut self, w: Width, dst: Reg, src: Reg) {
        self.emit(Inst::new(Op::Test, w, Operands::RR { dst, src }))
            .expect("test_rr");
    }

    /// `shl/shr/sar $count, %dst`.
    pub fn shift_ri(&mut self, op: ShiftOp, w: Width, dst: Reg, count: u8) {
        self.emit(Inst::new(
            Op::Shift(op),
            w,
            Operands::RI {
                dst,
                imm: count as i64,
            },
        ))
        .expect("shift_ri");
    }

    /// `shl/shr/sar %cl, %dst`.
    pub fn shift_cl(&mut self, op: ShiftOp, w: Width, dst: Reg) {
        self.emit(Inst::new(Op::ShiftCl(op), w, Operands::R(dst)))
            .expect("shift_cl");
    }

    /// `imul %src, %dst`.
    pub fn imul_rr(&mut self, w: Width, dst: Reg, src: Reg) {
        self.emit(Inst::new(Op::Imul2, w, Operands::RR { dst, src }))
            .expect("imul_rr");
    }

    /// `imul $imm, %src, %dst`.
    pub fn imul_rri(&mut self, w: Width, dst: Reg, src: Reg, imm: i64) {
        self.emit(Inst::new(Op::Imul3, w, Operands::RRI { dst, src, imm }))
            .expect("imul_rri");
    }

    /// `mul %r` (`rdx:rax = rax * r`).
    pub fn mul_r(&mut self, r: Reg) {
        self.emit(Inst::new(
            Op::MulDiv(MulDivOp::Mul),
            Width::W64,
            Operands::R(r),
        ))
        .expect("mul_r");
    }

    /// `mul mem`.
    pub fn mul_m(&mut self, m: Mem) {
        self.emit(Inst::new(
            Op::MulDiv(MulDivOp::Mul),
            Width::W64,
            Operands::M(m),
        ))
        .expect("mul_m");
    }

    /// `div %r`.
    pub fn div_r(&mut self, r: Reg) {
        self.emit(Inst::new(
            Op::MulDiv(MulDivOp::Div),
            Width::W64,
            Operands::R(r),
        ))
        .expect("div_r");
    }

    /// `idiv %r`.
    pub fn idiv_r(&mut self, r: Reg) {
        self.emit(Inst::new(
            Op::MulDiv(MulDivOp::Idiv),
            Width::W64,
            Operands::R(r),
        ))
        .expect("idiv_r");
    }

    /// `neg %r`.
    pub fn neg_r(&mut self, w: Width, r: Reg) {
        self.emit(Inst::new(Op::Neg, w, Operands::R(r)))
            .expect("neg_r");
    }

    /// `cqo`.
    pub fn cqo(&mut self) {
        self.emit(Inst::new(Op::Cqo, Width::W64, Operands::None))
            .expect("cqo");
    }

    // ---- stack ----

    /// `push %r`.
    pub fn push_r(&mut self, r: Reg) {
        self.emit(Inst::new(Op::Push, Width::W64, Operands::R(r)))
            .expect("push_r");
    }

    /// `pop %r`.
    pub fn pop_r(&mut self, r: Reg) {
        self.emit(Inst::new(Op::Pop, Width::W64, Operands::R(r)))
            .expect("pop_r");
    }

    /// `pushfq`.
    pub fn pushfq(&mut self) {
        self.emit(Inst::new(Op::Pushfq, Width::W64, Operands::None))
            .expect("pushfq");
    }

    /// `popfq`.
    pub fn popfq(&mut self) {
        self.emit(Inst::new(Op::Popfq, Width::W64, Operands::None))
            .expect("popfq");
    }

    // ---- control flow ----

    /// `ret`.
    pub fn ret(&mut self) {
        self.emit(Inst::new(Op::Ret, Width::W64, Operands::None))
            .expect("ret");
    }

    /// `call` to an absolute address.
    pub fn call_abs(&mut self, target: u64) -> Result<(), AsmError> {
        self.emit(Inst::new(Op::Call, Width::W64, Operands::Rel(target)))
    }

    /// `call` to a label (rel32 form).
    pub fn call_label(&mut self, label: Label) {
        self.bytes.push(0xE8);
        self.push_rel32_fixup(label);
    }

    /// `call *%r`.
    pub fn call_ind_r(&mut self, r: Reg) {
        self.emit(Inst::new(Op::CallInd, Width::W64, Operands::R(r)))
            .expect("call_ind_r");
    }

    /// `jmp` to an absolute address.
    pub fn jmp_abs(&mut self, target: u64) -> Result<(), AsmError> {
        self.emit(Inst::new(Op::Jmp, Width::W64, Operands::Rel(target)))
    }

    /// `jmp` to a label (always rel32).
    pub fn jmp_label(&mut self, label: Label) {
        self.bytes.push(0xE9);
        self.push_rel32_fixup(label);
    }

    /// `jmp *%r`.
    pub fn jmp_ind_r(&mut self, r: Reg) {
        self.emit(Inst::new(Op::JmpInd, Width::W64, Operands::R(r)))
            .expect("jmp_ind_r");
    }

    /// `jcc` to a label (always rel32).
    pub fn jcc_label(&mut self, cond: Cond, label: Label) {
        self.bytes.push(0x0F);
        self.bytes.push(0x80 | cond.code());
        self.push_rel32_fixup(label);
    }

    /// `setcc %r8`.
    pub fn setcc_r(&mut self, cond: Cond, r: Reg) {
        self.emit(Inst::new(Op::Setcc(cond), Width::W8, Operands::R(r)))
            .expect("setcc_r");
    }

    /// `cmovcc %src, %dst`.
    pub fn cmov_rr(&mut self, cond: Cond, w: Width, dst: Reg, src: Reg) {
        self.emit(Inst::new(Op::Cmovcc(cond), w, Operands::RR { dst, src }))
            .expect("cmov_rr");
    }

    // ---- system ----

    /// `syscall`.
    pub fn syscall(&mut self) {
        self.emit(Inst::new(Op::Syscall, Width::W64, Operands::None))
            .expect("syscall");
    }

    /// `ud2`.
    pub fn ud2(&mut self) {
        self.emit(Inst::new(Op::Ud2, Width::W64, Operands::None))
            .expect("ud2");
    }

    /// `int3`.
    pub fn int3(&mut self) {
        self.emit(Inst::new(Op::Int3, Width::W64, Operands::None))
            .expect("int3");
    }

    /// `nop`.
    pub fn nop(&mut self) {
        self.emit(Inst::new(Op::Nop, Width::W64, Operands::None))
            .expect("nop");
    }

    /// Pads with single-byte NOPs until the position is `align`-aligned.
    pub fn align(&mut self, align: u64) {
        while !self.here().is_multiple_of(align) {
            self.nop();
        }
    }

    fn push_rel32_fixup(&mut self, label: Label) {
        let pos = self.bytes.len();
        self.bytes.extend_from_slice(&[0, 0, 0, 0]);
        self.fixups.push(Fixup {
            pos,
            label,
            kind: FixKind::Rel32,
        });
    }

    /// Resolves all fixups and returns the finished program.
    pub fn finish(mut self) -> Result<Program, AsmError> {
        for fix in &self.fixups {
            let target = self.labels[fix.label.0].ok_or(AsmError::UnboundLabel(fix.label))?;
            match fix.kind {
                FixKind::Rel32 => {
                    let origin = self.base + fix.pos as u64 + 4;
                    let rel = (target as i64) - (origin as i64);
                    let rel32: i32 = rel
                        .try_into()
                        .map_err(|_| AsmError::Encode(EncodeError::OutOfRange("label rel32")))?;
                    self.bytes[fix.pos..fix.pos + 4].copy_from_slice(&rel32.to_le_bytes());
                }
            }
        }
        Ok(Program {
            base: self.base,
            bytes: self.bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode_all;

    #[test]
    fn forward_label_resolves() {
        let mut a = Asm::new(0x40_0000);
        let done = a.label();
        a.mov_ri(Width::W64, Reg::Rax, 1);
        a.jmp_label(done);
        a.mov_ri(Width::W64, Reg::Rax, 2);
        a.bind(done).unwrap();
        a.ret();
        let p = a.finish().unwrap();
        let insts = decode_all(&p.bytes, p.base);
        // jmp must target the ret.
        let jmp = insts.iter().find(|(_, i, _)| i.op == Op::Jmp).unwrap();
        let ret = insts.iter().find(|(_, i, _)| i.op == Op::Ret).unwrap();
        assert_eq!(jmp.1.branch_target(), Some(ret.0));
    }

    #[test]
    fn backward_label_resolves() {
        let mut a = Asm::new(0x40_0000);
        let top = a.label();
        a.bind(top).unwrap();
        a.alu_ri(AluOp::Sub, Width::W64, Reg::Rcx, 1);
        a.jcc_label(Cond::Ne, top);
        a.ret();
        let p = a.finish().unwrap();
        let insts = decode_all(&p.bytes, p.base);
        let jcc = insts
            .iter()
            .find(|(_, i, _)| matches!(i.op, Op::Jcc(_)))
            .unwrap();
        assert_eq!(jcc.1.branch_target(), Some(0x40_0000));
    }

    #[test]
    fn unbound_label_errors() {
        let mut a = Asm::new(0);
        let l = a.label();
        a.jmp_label(l);
        assert!(matches!(a.finish(), Err(AsmError::UnboundLabel(_))));
    }

    #[test]
    fn rebinding_errors() {
        let mut a = Asm::new(0);
        let l = a.label();
        a.bind(l).unwrap();
        assert!(matches!(a.bind(l), Err(AsmError::Rebound(_))));
    }

    #[test]
    fn named_labels_are_stable() {
        let mut a = Asm::new(0);
        let f1 = a.named_label("f");
        let f2 = a.named_label("f");
        assert_eq!(f1, f2);
    }

    #[test]
    fn align_pads_with_nops() {
        let mut a = Asm::new(0x40_0001);
        a.align(16);
        assert_eq!(a.here() % 16, 0);
    }
}
