//! Randomized tests: `decode(encode(inst)) == inst` over the full modeled
//! subset, driven by a deterministic seeded generator so failures are
//! reproducible offline (no external property-testing dependency).

use redfat_vm::Rng64;
use redfat_x86::{
    decode_one, encode, AluOp, Cond, Inst, Mem, MulDivOp, Op, Operands, Reg, ShiftOp, Width,
};

const CASES: u64 = 8192;

fn any_reg(r: &mut Rng64) -> Reg {
    Reg::from_code(r.below(16) as u8)
}

fn any_index_reg(r: &mut Rng64) -> Reg {
    loop {
        let reg = any_reg(r);
        if reg != Reg::Rsp {
            return reg;
        }
    }
}

fn any_width(r: &mut Rng64) -> Width {
    [Width::W8, Width::W32, Width::W64][r.below_usize(3)]
}

fn any_wide_width(r: &mut Rng64) -> Width {
    [Width::W32, Width::W64][r.below_usize(2)]
}

fn any_scale(r: &mut Rng64) -> u8 {
    [1u8, 2, 4, 8][r.below_usize(4)]
}

fn any_mem(r: &mut Rng64) -> Mem {
    match r.below(5) {
        0 => Mem::base_disp(any_reg(r), r.range_i64(-0x8000_0000, 0x8000_0000)),
        1 => {
            let b = any_reg(r);
            let i = any_index_reg(r);
            let s = any_scale(r);
            Mem::bis(b, i, s, r.range_i64(-0x1000, 0x1000))
        }
        2 => {
            let i = any_index_reg(r);
            let s = any_scale(r);
            Mem::index_scale(i, s, r.range_i64(0, 0x7000_0000))
        }
        3 => Mem::abs(r.range_i64(0, 0x7000_0000)),
        _ => Mem::rip(r.range_u64(0x40_0000, 0x50_0000)),
    }
}

fn any_cond(r: &mut Rng64) -> Cond {
    Cond::from_code(r.below(16) as u8)
}

fn any_alu(r: &mut Rng64) -> AluOp {
    [
        AluOp::Add,
        AluOp::Or,
        AluOp::And,
        AluOp::Sub,
        AluOp::Xor,
        AluOp::Cmp,
    ][r.below_usize(6)]
}

fn any_inst(r: &mut Rng64) -> Inst {
    match r.below(11) {
        // Register-register forms.
        0 => {
            let (w, dst, src) = (any_width(r), any_reg(r), any_reg(r));
            match r.below(3) {
                0 => Inst::new(Op::Mov, w, Operands::RR { dst, src }),
                1 => Inst::new(Op::Alu(any_alu(r)), w, Operands::RR { dst, src }),
                _ => Inst::new(Op::Test, w, Operands::RR { dst, src }),
            }
        }
        // Memory forms.
        1 => {
            let (w, reg, m) = (any_wide_width(r), any_reg(r), any_mem(r));
            match r.below(9) {
                0 => Inst::new(Op::Mov, w, Operands::RM { dst: reg, src: m }),
                1 => Inst::new(Op::Mov, w, Operands::MR { dst: m, src: reg }),
                2 => Inst::new(Op::Lea, Width::W64, Operands::RM { dst: reg, src: m }),
                3 => Inst::new(Op::Movzx8, Width::W64, Operands::RM { dst: reg, src: m }),
                4 => Inst::new(Op::Movsx8, Width::W64, Operands::RM { dst: reg, src: m }),
                5 => Inst::new(Op::Movsxd, Width::W64, Operands::RM { dst: reg, src: m }),
                6 => Inst::new(Op::Imul2, w, Operands::RM { dst: reg, src: m }),
                7 => Inst::new(Op::MulDiv(MulDivOp::Mul), Width::W64, Operands::M(m)),
                _ => Inst::new(Op::MulDiv(MulDivOp::Div), Width::W64, Operands::M(m)),
            }
        }
        // Register-immediate forms.
        2 => {
            let (w, dst) = (any_wide_width(r), any_reg(r));
            let imm = r.range_i64(-0x8000_0000, 0x8000_0000);
            if r.coin() {
                // W32 `mov $imm, %r32` zero-extends; the decoder
                // canonicalizes the immediate to its zero-extended value.
                let mov_imm = if w == Width::W32 {
                    imm as u32 as i64
                } else {
                    imm
                };
                Inst::new(Op::Mov, w, Operands::RI { dst, imm: mov_imm })
            } else {
                Inst::new(Op::Alu(any_alu(r)), w, Operands::RI { dst, imm })
            }
        }
        // Memory-immediate store.
        3 => {
            let m = any_mem(r);
            let imm = r.range_i64(-0x8000, 0x8000);
            Inst::new(Op::Mov, Width::W64, Operands::MI { dst: m, imm })
        }
        // movabs.
        4 => Inst::new(
            Op::Mov,
            Width::W64,
            Operands::RI {
                dst: any_reg(r),
                imm: r.next_u64() as i64,
            },
        ),
        // Shifts.
        5 => {
            let (w, reg, c) = (any_wide_width(r), any_reg(r), r.range_i64(0, 64));
            match r.below(4) {
                0 => Inst::new(
                    Op::Shift(ShiftOp::Shl),
                    w,
                    Operands::RI { dst: reg, imm: c },
                ),
                1 => Inst::new(
                    Op::Shift(ShiftOp::Shr),
                    w,
                    Operands::RI { dst: reg, imm: c },
                ),
                2 => Inst::new(
                    Op::Shift(ShiftOp::Sar),
                    w,
                    Operands::RI { dst: reg, imm: c },
                ),
                _ => Inst::new(Op::ShiftCl(ShiftOp::Shl), w, Operands::R(reg)),
            }
        }
        // Branches.
        6 => {
            let t = r.range_u64(0x40_0000, 0x48_0000);
            match r.below(3) {
                0 => Inst::new(Op::Jmp, Width::W64, Operands::Rel(t)),
                1 => Inst::new(Op::Call, Width::W64, Operands::Rel(t)),
                _ => Inst::new(Op::Jcc(any_cond(r)), Width::W64, Operands::Rel(t)),
            }
        }
        // Single-register forms.
        7 => {
            let reg = any_reg(r);
            match r.below(8) {
                0 => Inst::new(Op::Push, Width::W64, Operands::R(reg)),
                1 => Inst::new(Op::Pop, Width::W64, Operands::R(reg)),
                2 => Inst::new(Op::Neg, Width::W64, Operands::R(reg)),
                3 => Inst::new(Op::Not, Width::W64, Operands::R(reg)),
                4 => Inst::new(Op::Setcc(any_cond(r)), Width::W8, Operands::R(reg)),
                5 => Inst::new(Op::CallInd, Width::W64, Operands::R(reg)),
                6 => Inst::new(Op::JmpInd, Width::W64, Operands::R(reg)),
                _ => Inst::new(Op::MulDiv(MulDivOp::Idiv), Width::W64, Operands::R(reg)),
            }
        }
        // Conditional move.
        8 => Inst::new(
            Op::Cmovcc(any_cond(r)),
            any_wide_width(r),
            Operands::RR {
                dst: any_reg(r),
                src: any_reg(r),
            },
        ),
        // Three-operand imul.
        9 => Inst::new(
            Op::Imul3,
            any_wide_width(r),
            Operands::RRI {
                dst: any_reg(r),
                src: any_reg(r),
                imm: r.range_i64(-0x8000, 0x8000),
            },
        ),
        // Nullary forms.
        _ => {
            let op = [
                Op::Ret,
                Op::Syscall,
                Op::Ud2,
                Op::Int3,
                Op::Nop,
                Op::Pushfq,
                Op::Popfq,
                Op::Cqo,
            ][r.below_usize(8)];
            Inst::new(op, Width::W64, Operands::None)
        }
    }
}

#[test]
fn encode_decode_roundtrip() {
    let mut r = Rng64::new(0xB00F_0001);
    for case in 0..CASES {
        let inst = any_inst(&mut r);
        let addr = 0x40_0000u64;
        let bytes = encode(&inst, addr).expect("valid instruction must encode");
        let (decoded, len) = decode_one(&bytes, addr).expect("own encoding must decode");
        assert_eq!(len as usize, bytes.len(), "case {case}: {inst}");
        assert_eq!(decoded, inst, "case {case}");
    }
}

#[test]
fn encoding_is_position_consistent() {
    // Relocating an instruction and re-decoding it at the new address
    // must reproduce the same abstract instruction (this is what lets
    // the rewriter move instructions into trampolines).
    let mut r = Rng64::new(0xB00F_0002);
    for case in 0..CASES {
        let inst = any_inst(&mut r);
        let addr = r.range_u64(0x40_0000, 0x7000_0000);
        if let Ok(bytes) = encode(&inst, addr) {
            let (decoded, _) = decode_one(&bytes, addr).expect("decodes");
            assert_eq!(decoded, inst, "case {case} at {addr:#x}");
        }
    }
}

#[test]
fn decoder_never_panics() {
    let mut r = Rng64::new(0xB00F_0003);
    let mut buf = [0u8; 16];
    for _ in 0..CASES * 4 {
        let len = r.below_usize(17);
        r.fill_bytes(&mut buf[..len]);
        let _ = decode_one(&buf[..len], 0x40_0000);
    }
}

#[test]
fn display_never_panics() {
    let mut r = Rng64::new(0xB00F_0004);
    for _ in 0..CASES {
        let inst = any_inst(&mut r);
        let _ = format!("{inst}");
    }
}
