//! Property tests: `decode(encode(inst)) == inst` over the full modeled
//! subset, with randomized operands.

use proptest::prelude::*;
use redfat_x86::{
    decode_one, encode, AluOp, Cond, Inst, Mem, MulDivOp, Op, Operands, Reg, ShiftOp, Width,
};

fn any_reg() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(Reg::from_code)
}

fn any_index_reg() -> impl Strategy<Value = Reg> {
    any_reg().prop_filter("rsp cannot index", |r| *r != Reg::Rsp)
}

fn any_width() -> impl Strategy<Value = Width> {
    prop_oneof![Just(Width::W8), Just(Width::W32), Just(Width::W64)]
}

fn any_wide_width() -> impl Strategy<Value = Width> {
    prop_oneof![Just(Width::W32), Just(Width::W64)]
}

fn any_mem() -> impl Strategy<Value = Mem> {
    prop_oneof![
        // disp(base)
        (any_reg(), -0x8000_0000i64..0x8000_0000).prop_map(|(b, d)| Mem::base_disp(b, d)),
        // disp(base,index,scale)
        (
            any_reg(),
            any_index_reg(),
            prop_oneof![Just(1u8), Just(2), Just(4), Just(8)],
            -0x1000i64..0x1000,
        )
            .prop_map(|(b, i, s, d)| Mem::bis(b, i, s, d)),
        // disp(,index,scale)
        (
            any_index_reg(),
            prop_oneof![Just(1u8), Just(2), Just(4), Just(8)],
            0i64..0x7000_0000,
        )
            .prop_map(|(i, s, d)| Mem::index_scale(i, s, d)),
        // absolute
        (0i64..0x7000_0000).prop_map(Mem::abs),
        // rip-relative: target near the test address.
        (0x40_0000u64..0x50_0000).prop_map(Mem::rip),
    ]
}

fn any_cond() -> impl Strategy<Value = Cond> {
    (0u8..16).prop_map(Cond::from_code)
}

fn any_inst() -> impl Strategy<Value = Inst> {
    let rr_ops = (any_width(), any_reg(), any_reg()).prop_flat_map(|(w, dst, src)| {
        prop_oneof![
            Just(Inst::new(Op::Mov, w, Operands::RR { dst, src })),
            (0u8..6).prop_map(move |a| {
                let alu = [
                    AluOp::Add,
                    AluOp::Or,
                    AluOp::And,
                    AluOp::Sub,
                    AluOp::Xor,
                    AluOp::Cmp,
                ][a as usize];
                Inst::new(Op::Alu(alu), w, Operands::RR { dst, src })
            }),
            Just(Inst::new(Op::Test, w, Operands::RR { dst, src })),
        ]
    });
    let mem_ops = (any_wide_width(), any_reg(), any_mem()).prop_flat_map(|(w, r, m)| {
        prop_oneof![
            Just(Inst::new(Op::Mov, w, Operands::RM { dst: r, src: m })),
            Just(Inst::new(Op::Mov, w, Operands::MR { dst: m, src: r })),
            Just(Inst::new(Op::Lea, Width::W64, Operands::RM { dst: r, src: m })),
            Just(Inst::new(Op::Movzx8, Width::W64, Operands::RM { dst: r, src: m })),
            Just(Inst::new(Op::Movsx8, Width::W64, Operands::RM { dst: r, src: m })),
            Just(Inst::new(Op::Movsxd, Width::W64, Operands::RM { dst: r, src: m })),
            Just(Inst::new(Op::Imul2, w, Operands::RM { dst: r, src: m })),
            Just(Inst::new(
                Op::MulDiv(MulDivOp::Mul),
                Width::W64,
                Operands::M(m)
            )),
            Just(Inst::new(
                Op::MulDiv(MulDivOp::Div),
                Width::W64,
                Operands::M(m)
            )),
        ]
    });
    let imm_ops = (any_wide_width(), any_reg(), -0x8000_0000i64..0x8000_0000i64).prop_flat_map(
        |(w, r, imm)| {
            // W32 `mov $imm, %r32` zero-extends; the decoder canonicalizes
            // the immediate to its zero-extended value.
            let mov_imm = if w == Width::W32 { imm as u32 as i64 } else { imm };
            prop_oneof![
                Just(Inst::new(Op::Mov, w, Operands::RI { dst: r, imm: mov_imm })),
                (0u8..6).prop_map(move |a| {
                    let alu = [
                        AluOp::Add,
                        AluOp::Or,
                        AluOp::And,
                        AluOp::Sub,
                        AluOp::Xor,
                        AluOp::Cmp,
                    ][a as usize];
                    Inst::new(Op::Alu(alu), w, Operands::RI { dst: r, imm })
                }),
            ]
        },
    );
    let mi_ops = (any_mem(), -0x8000i64..0x8000i64)
        .prop_map(|(m, imm)| Inst::new(Op::Mov, Width::W64, Operands::MI { dst: m, imm }));
    let movabs =
        (any_reg(), any::<i64>()).prop_map(|(r, imm)| Inst::new(Op::Mov, Width::W64, Operands::RI { dst: r, imm }));
    let shift_ops = (any_wide_width(), any_reg(), 0i64..64).prop_flat_map(|(w, r, c)| {
        prop_oneof![
            Just(Inst::new(Op::Shift(ShiftOp::Shl), w, Operands::RI { dst: r, imm: c })),
            Just(Inst::new(Op::Shift(ShiftOp::Shr), w, Operands::RI { dst: r, imm: c })),
            Just(Inst::new(Op::Shift(ShiftOp::Sar), w, Operands::RI { dst: r, imm: c })),
            Just(Inst::new(Op::ShiftCl(ShiftOp::Shl), w, Operands::R(r))),
        ]
    });
    let branches = (0x40_0000u64..0x48_0000, any_cond()).prop_flat_map(|(t, c)| {
        prop_oneof![
            Just(Inst::new(Op::Jmp, Width::W64, Operands::Rel(t))),
            Just(Inst::new(Op::Call, Width::W64, Operands::Rel(t))),
            Just(Inst::new(Op::Jcc(c), Width::W64, Operands::Rel(t))),
        ]
    });
    let unary = (any_reg(), any_cond()).prop_flat_map(|(r, c)| {
        prop_oneof![
            Just(Inst::new(Op::Push, Width::W64, Operands::R(r))),
            Just(Inst::new(Op::Pop, Width::W64, Operands::R(r))),
            Just(Inst::new(Op::Neg, Width::W64, Operands::R(r))),
            Just(Inst::new(Op::Not, Width::W64, Operands::R(r))),
            Just(Inst::new(Op::Setcc(c), Width::W8, Operands::R(r))),
            Just(Inst::new(Op::CallInd, Width::W64, Operands::R(r))),
            Just(Inst::new(Op::JmpInd, Width::W64, Operands::R(r))),
            Just(Inst::new(Op::MulDiv(MulDivOp::Idiv), Width::W64, Operands::R(r))),
        ]
    });
    let cmov = (any_wide_width(), any_reg(), any_reg(), any_cond())
        .prop_map(|(w, d, s, c)| Inst::new(Op::Cmovcc(c), w, Operands::RR { dst: d, src: s }));
    let imul3 = (any_wide_width(), any_reg(), any_reg(), -0x8000i64..0x8000i64)
        .prop_map(|(w, d, s, imm)| Inst::new(Op::Imul3, w, Operands::RRI { dst: d, src: s, imm }));
    let nullary = prop_oneof![
        Just(Inst::new(Op::Ret, Width::W64, Operands::None)),
        Just(Inst::new(Op::Syscall, Width::W64, Operands::None)),
        Just(Inst::new(Op::Ud2, Width::W64, Operands::None)),
        Just(Inst::new(Op::Int3, Width::W64, Operands::None)),
        Just(Inst::new(Op::Nop, Width::W64, Operands::None)),
        Just(Inst::new(Op::Pushfq, Width::W64, Operands::None)),
        Just(Inst::new(Op::Popfq, Width::W64, Operands::None)),
        Just(Inst::new(Op::Cqo, Width::W64, Operands::None)),
    ];
    prop_oneof![
        rr_ops, mem_ops, imm_ops, mi_ops, movabs, shift_ops, branches, unary, cmov, imul3,
        nullary
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4096))]

    #[test]
    fn encode_decode_roundtrip(inst in any_inst()) {
        let addr = 0x40_0000u64;
        let bytes = encode(&inst, addr).expect("valid instruction must encode");
        let (decoded, len) = decode_one(&bytes, addr).expect("own encoding must decode");
        prop_assert_eq!(len as usize, bytes.len());
        prop_assert_eq!(decoded, inst);
    }

    #[test]
    fn encoding_is_position_consistent(inst in any_inst(), addr in 0x40_0000u64..0x7000_0000) {
        // Relocating an instruction and re-decoding it at the new address
        // must reproduce the same abstract instruction (this is what lets
        // the rewriter move instructions into trampolines).
        if let Ok(bytes) = encode(&inst, addr) {
            let (decoded, _) = decode_one(&bytes, addr).expect("decodes");
            prop_assert_eq!(decoded, inst);
        }
    }

    #[test]
    fn decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..16)) {
        let _ = decode_one(&bytes, 0x40_0000);
    }

    #[test]
    fn display_never_panics(inst in any_inst()) {
        let _ = format!("{inst}");
    }
}
