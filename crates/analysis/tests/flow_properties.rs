//! Integration tests for the flow-sensitive passes over real compiled
//! mini-C images: provenance elimination, dominator-validated redundant
//! checks, and conservatism on patterns that must NOT be eliminated.

use redfat_analysis::{
    analyze_image, can_reach_heap, disassemble, Cfg, DomTree, Provenance, RedundantChecks,
    SiteVerdict,
};
use redfat_minic::compile;
use redfat_vm::Rng64;

/// Const-index accesses through a register holding a global's address:
/// kept by the syntactic rule (general-purpose base), eliminated by
/// provenance (the register provably holds the global's address).
#[test]
fn global_array_const_index_is_flow_eliminated() {
    let src = "
        global tab[8];
        fn main() {
            var p = &tab;
            p[0] = 41;
            p[3] = p[0] + 1;
            print(p[3]);
            return 0;
        }";
    let image = compile(src).expect("compiles");
    let report = analyze_image(&image);
    let flow = report.eliminated_flow();
    assert!(
        flow >= 2,
        "expected the const-index global accesses flow-eliminated, got report:\n{}",
        redfat_analysis::report::render(&report)
    );
}

/// A heap pointer returned by malloc flows from a call: every access
/// through it must keep its check.
#[test]
fn heap_accesses_survive_flow_elimination() {
    let src = "
        fn main() {
            var a = malloc(64);
            a[0] = 7;
            a[1] = a[0] + 1;
            print(a[1]);
            return 0;
        }";
    let image = compile(src).expect("compiles");
    let report = analyze_image(&image);
    // The heap stores/loads (plus the RMW pattern) must remain checked
    // or at most be *redundant* (still redzone-checked) -- never
    // flow-eliminated.
    let checked_or_redundant = report.checked() + report.redundant();
    assert!(
        checked_or_redundant >= 3,
        "heap accesses vanished:\n{}",
        redfat_analysis::report::render(&report)
    );
}

/// The read-modify-write idiom `a[k] = a[k] + v` checks the same operand
/// shape twice with no intervening call or register write: the second
/// (store) check is redundant, rooted at the first (load).
#[test]
fn rmw_store_check_is_redundant() {
    let src = "
        fn main() {
            var a = malloc(64);
            a[2] = 1;
            a[2] = a[2] + 5;
            a[2] = a[2] + 7;
            print(a[2]);
            return 0;
        }";
    let image = compile(src).expect("compiles");
    let disasm = disassemble(&image);
    let cfg = Cfg::recover(&disasm, image.entry, &[]);
    let redundant = RedundantChecks::compute(&disasm, &cfg, image.entry, |_, inst| {
        inst.memory_access().is_some_and(|m| can_reach_heap(&m))
    });
    assert!(
        !redundant.is_empty(),
        "RMW sequence produced no redundant checks"
    );
    // Every root must strictly dominate its site and must itself be
    // non-redundant (chains fully chased).
    let roots = redfat_analysis::unknown_entries(&disasm, &cfg, image.entry);
    let dom = DomTree::compute(&cfg, &roots);
    for (site, root) in redundant.iter() {
        assert_ne!(site, root);
        assert!(dom.site_dominates(&cfg, root, site));
        assert!(!redundant.is_redundant(root));
    }
}

/// A call between two identical checks clears availability: unknown code
/// may `free` the object, so the later check must stay.
#[test]
fn call_kills_redundancy() {
    let src = "
        fn nop() { return 0; }
        fn main() {
            var a = malloc(64);
            a[2] = 1;
            nop();
            a[2] = 2;
            print(a[2]);
            return 0;
        }";
    let image = compile(src).expect("compiles");
    let disasm = disassemble(&image);
    let cfg = Cfg::recover(&disasm, image.entry, &[]);
    let redundant = RedundantChecks::compute(&disasm, &cfg, image.entry, |_, inst| {
        inst.memory_access().is_some_and(|m| can_reach_heap(&m))
    });
    // The two `a[2]` stores bracket a call; neither may be considered
    // redundant with the other. (The `a[2]` load feeding print may
    // legitimately be redundant w.r.t. the second store.)
    // We assert the stronger property per-pair via the fact that any
    // surviving redundancy's root/site pair has no call between them --
    // here by checking every redundant site sits *after* the call-free
    // suffix store.
    for (site, root) in redundant.iter() {
        // No Call instruction may exist in [root, site] in address
        // order when both live in the same straight-line block chain.
        let calls_between = disasm
            .iter()
            .filter(|(a, i, _)| *a > root && *a < site && matches!(i.op, redfat_x86::Op::Call))
            .count();
        assert_eq!(
            calls_between, 0,
            "redundant pair ({root:#x},{site:#x}) spans a call"
        );
    }
}

/// Randomized agreement: on random safe programs, flow elimination never
/// drops a site the syntactic rule keeps *and* the emulator would touch
/// the heap through -- validated structurally here (heap-derived bases
/// come from calls, which clobber to Top), and dynamically by the
/// workloads oracle test.
#[test]
fn random_programs_static_sanity() {
    let mut r = Rng64::new(0xF10_0001);
    for _ in 0..32 {
        let elems = r.range_u64(2, 10);
        let muts = r.below(4);
        let src = format!(
            "global g[{elems}];
            fn main() {{
                var a = malloc({elems} * 8);
                var p = &g;
                var s = 0;
                for (var i = 0; i < {elems}; i = i + 1) {{
                    a[i] = i + {muts};
                    p[{muts}] = a[i];
                    s = s + p[{muts}];
                }}
                print(s);
                return 0;
            }}"
        );
        let image = compile(&src).expect("compiles");
        let disasm = disassemble(&image);
        let cfg = Cfg::recover(&disasm, image.entry, &[]);
        let prov = Provenance::compute(&disasm, &cfg, image.entry);
        for (addr, inst, _) in disasm.iter() {
            let Some(mem) = inst.memory_access() else {
                continue;
            };
            if !can_reach_heap(&mem) {
                continue;
            }
            if prov.site_can_reach_heap(&disasm, &cfg, addr, inst) {
                continue;
            }
            // Flow-eliminated: the abstract span must be disjoint from
            // the heap, which for this program shape means a global or
            // stack address -- never a malloc result. Structural proxy:
            // the base register cannot be the malloc return conduit
            // immediately after a call (calls clobber to Top, so any
            // surviving interval is call-free provenance).
            let facts = prov
                .facts_before(&disasm, &cfg, addr)
                .expect("eliminated site must have facts");
            for reg in mem.regs() {
                assert!(
                    facts.get(reg) != redfat_analysis::AbsVal::Top,
                    "eliminated site {addr:#x} has Top operand register"
                );
            }
        }
    }
}

/// The report classifies every access site exactly once and counts add
/// up.
#[test]
fn report_partitions_sites() {
    let src = "
        global t[4];
        fn main() {
            var a = malloc(32);
            var p = &t;
            p[1] = 3;
            a[1] = p[1];
            a[1] = a[1] * 2;
            print(a[1]);
            return 0;
        }";
    let image = compile(src).expect("compiles");
    let report = analyze_image(&image);
    let total = report.checked()
        + report.eliminated_syntactic()
        + report.eliminated_flow()
        + report.redundant();
    assert_eq!(total, report.sites.len());
    assert!(!report.sites.is_empty());
    for s in &report.sites {
        if let SiteVerdict::Redundant { root } = s.verdict {
            assert!(report.sites.iter().any(|o| o.addr == root));
        }
    }
}
