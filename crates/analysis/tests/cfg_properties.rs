//! Property tests for CFG recovery over randomly generated compiled
//! programs: blocks partition the decoded instructions, every direct
//! branch target is a leader, and batching never groups across blocks.

use proptest::prelude::*;
use redfat_analysis::{can_reach_heap, disassemble, plan_batches, Cfg};
use redfat_minic::compile;
use std::collections::HashSet;

fn random_program() -> impl Strategy<Value = String> {
    (
        1u64..8,
        proptest::collection::vec((0u8..5, 1i64..20), 2..10),
    )
        .prop_map(|(elems, ops)| {
            let mut body = String::new();
            for (kind, val) in ops {
                match kind {
                    0 => body.push_str(&format!(
                        "if (s % 2 == 0) {{ s = s + {val}; }} else {{ s = s - 1; }}\n"
                    )),
                    1 => body.push_str(&format!(
                        "for (var i = 0; i < {val} % 5 + 1; i = i + 1) {{ s = s + a[i % {elems}]; }}\n"
                    )),
                    2 => body.push_str(&format!("s = s + helper({val});\n")),
                    3 => body.push_str(&format!("a[{}] = s;\n", val % elems as i64)),
                    _ => body.push_str(&format!(
                        "while (s > {val} * 3) {{ s = s / 2; }}\n"
                    )),
                }
            }
            format!(
                "fn helper(x) {{ if (x > 10) {{ return x - 10; }} return x; }}
                 fn main() {{
                    var a = malloc({elems} * 8);
                    for (var i = 0; i < {elems}; i = i + 1) {{ a[i] = i; }}
                    var s = 1;
                    {body}
                    print(s);
                    return 0;
                 }}"
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn blocks_partition_instructions(src in random_program()) {
        let image = compile(&src).expect("compiles");
        let d = disassemble(&image);
        let cfg = Cfg::recover(&d, image.entry, &[]);

        // Every decoded instruction belongs to exactly one block.
        let mut seen: HashSet<u64> = HashSet::new();
        for block in cfg.blocks.values() {
            for &addr in &block.insts {
                prop_assert!(seen.insert(addr), "instruction {addr:#x} in two blocks");
                prop_assert!(d.at(addr).is_some());
            }
        }
        // All reachable-by-decoding instructions are covered (linear
        // sweep and block slicing agree).
        prop_assert_eq!(seen.len(), d.len());
    }

    #[test]
    fn branch_targets_are_leaders(src in random_program()) {
        let image = compile(&src).expect("compiles");
        let d = disassemble(&image);
        let cfg = Cfg::recover(&d, image.entry, &[]);
        for (_, inst, _) in d.iter() {
            if let Some(t) = inst.branch_target() {
                prop_assert!(cfg.is_leader(t), "target {t:#x} not a leader");
            }
        }
        // Successor lists point at leaders too.
        for block in cfg.blocks.values() {
            for &s in &block.succs {
                prop_assert!(cfg.is_leader(s), "succ {s:#x} not a leader");
            }
        }
    }

    #[test]
    fn batches_stay_within_blocks(src in random_program()) {
        let image = compile(&src).expect("compiles");
        let d = disassemble(&image);
        let cfg = Cfg::recover(&d, image.entry, &[]);
        let batches = plan_batches(&d, &cfg, true, |_, i| {
            i.memory_access().is_some_and(|m| can_reach_heap(&m))
        });
        for b in &batches {
            let anchor_block = cfg.block_of(b.anchor).expect("anchor in a block");
            for &m in &b.members {
                let mb = cfg.block_of(m).expect("member in a block");
                prop_assert_eq!(mb.start, anchor_block.start, "batch crosses blocks");
            }
            // Members are ordered and start at the anchor.
            prop_assert_eq!(b.members[0], b.anchor);
            prop_assert!(b.members.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
