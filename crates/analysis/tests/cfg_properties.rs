//! Randomized tests for CFG recovery over generated compiled programs:
//! blocks partition the decoded instructions, every direct branch target
//! is a leader, and batching never groups across blocks. Driven by a
//! deterministic seeded generator.

use redfat_analysis::{can_reach_heap, disassemble, plan_batches, Cfg};
use redfat_minic::compile;
use redfat_vm::Rng64;
use std::collections::HashSet;

fn random_program(r: &mut Rng64) -> String {
    let elems = r.range_u64(1, 8);
    let n_ops = r.below_usize(8) + 2;
    let mut body = String::new();
    for _ in 0..n_ops {
        let val = r.range_i64(1, 20);
        match r.below(5) {
            0 => body.push_str(&format!(
                "if (s % 2 == 0) {{ s = s + {val}; }} else {{ s = s - 1; }}\n"
            )),
            1 => body.push_str(&format!(
                "for (var i = 0; i < {val} % 5 + 1; i = i + 1) {{ s = s + a[i % {elems}]; }}\n"
            )),
            2 => body.push_str(&format!("s = s + helper({val});\n")),
            3 => body.push_str(&format!("a[{}] = s;\n", val % elems as i64)),
            _ => body.push_str(&format!("while (s > {val} * 3) {{ s = s / 2; }}\n")),
        }
    }
    format!(
        "fn helper(x) {{ if (x > 10) {{ return x - 10; }} return x; }}
         fn main() {{
            var a = malloc({elems} * 8);
            for (var i = 0; i < {elems}; i = i + 1) {{ a[i] = i; }}
            var s = 1;
            {body}
            print(s);
            return 0;
         }}"
    )
}

#[test]
fn blocks_partition_instructions() {
    let mut r = Rng64::new(0xCF6_0001);
    for case in 0..128 {
        let src = random_program(&mut r);
        let image = compile(&src).expect("compiles");
        let d = disassemble(&image);
        let cfg = Cfg::recover(&d, image.entry, &[]);

        // Every decoded instruction belongs to exactly one block.
        let mut seen: HashSet<u64> = HashSet::new();
        for block in cfg.blocks.values() {
            for &addr in &block.insts {
                assert!(
                    seen.insert(addr),
                    "case {case}: instruction {addr:#x} in two blocks"
                );
                assert!(d.at(addr).is_some());
            }
        }
        // All reachable-by-decoding instructions are covered (linear
        // sweep and block slicing agree).
        assert_eq!(seen.len(), d.len(), "case {case}");
    }
}

#[test]
fn branch_targets_are_leaders() {
    let mut r = Rng64::new(0xCF6_0002);
    for case in 0..128 {
        let src = random_program(&mut r);
        let image = compile(&src).expect("compiles");
        let d = disassemble(&image);
        let cfg = Cfg::recover(&d, image.entry, &[]);
        for (_, inst, _) in d.iter() {
            if let Some(t) = inst.branch_target() {
                assert!(cfg.is_leader(t), "case {case}: target {t:#x} not a leader");
            }
        }
        // Successor lists point at leaders too.
        for block in cfg.blocks.values() {
            for &s in &block.succs {
                assert!(cfg.is_leader(s), "case {case}: succ {s:#x} not a leader");
            }
        }
    }
}

#[test]
fn batches_stay_within_blocks() {
    let mut r = Rng64::new(0xCF6_0003);
    for case in 0..128 {
        let src = random_program(&mut r);
        let image = compile(&src).expect("compiles");
        let d = disassemble(&image);
        let cfg = Cfg::recover(&d, image.entry, &[]);
        let batches = plan_batches(&d, &cfg, true, |_, i| {
            i.memory_access().is_some_and(|m| can_reach_heap(&m))
        });
        for b in &batches {
            let anchor_block = cfg.block_of(b.anchor).expect("anchor in a block");
            for &m in &b.members {
                let mb = cfg.block_of(m).expect("member in a block");
                assert_eq!(
                    mb.start, anchor_block.start,
                    "case {case}: batch crosses blocks"
                );
            }
            // Members are ordered and start at the anchor.
            assert_eq!(b.members[0], b.anchor);
            assert!(b.members.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
