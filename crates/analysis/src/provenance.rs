//! Flow-sensitive non-heap provenance analysis (the upgraded check
//! elimination of paper §6).
//!
//! The syntactic rule in [`crate::elim`] only eliminates operands whose
//! base is `%rsp`, `%rip` or an absolute displacement. This pass tracks,
//! per register and program point, an *interval of possible values*, so
//! it additionally eliminates accesses through:
//!
//! * registers holding the address of a global (`mov $addr, %r` followed
//!   by `mov disp(%r)` -- how compilers access static arrays),
//! * stack-pointer copies and `lea`-derived frame addresses,
//! * constant-propagated pointers and bounded index arithmetic.
//!
//! # Abstract domain
//!
//! Per register: `Top` (any value, "MaybeHeap") or `Interval { lo, hi }`
//! meaning the register's 64-bit value is `x mod 2^64` for some
//! `x ∈ [lo, hi]` (`i128` bounds; a negative `lo` models values that
//! wrap near `2^64`, e.g. `-8` for `0xffff...fff8`). The join is the
//! interval hull; termination comes from the framework's widening.
//!
//! A memory operand is **NonHeap** at a site iff every address its
//! access can touch -- base interval + scaled index interval +
//! displacement, over all `len` accessed bytes, *reduced mod `2^64`* --
//! avoids `[heap_start, heap_end)`. This is checked exactly
//! ([`span_avoids_heap`]), so the classification is sound by
//! construction: `Top` components simply make the span universal.
//!
//! # The `%rsp` axiom
//!
//! Like the seed's syntactic rule (and the paper's §6 argument), the
//! stack pointer is assumed to stay within the stack region pinned more
//! than 2 GiB below the heap by the address-space layout; `%rsp` is
//! never clobbered to `Top`. All other registers are clobbered at calls,
//! syscalls and unknown-entry joins.

use crate::cfg::Cfg;
use crate::dataflow::{solve_forward, unknown_entries, ForwardAnalysis, ForwardSolution};
use crate::disasm::Disasm;
use redfat_vm::layout;
use redfat_x86::{AluOp, Inst, Mem, Op, Operands, Reg, ShiftOp, Width};
use std::collections::{BTreeSet, HashMap};

/// Abstract value of one register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbsVal {
    /// Any 64-bit value (MaybeHeap).
    Top,
    /// Value is `x mod 2^64` for some `x ∈ [lo, hi]`.
    Interval {
        /// Inclusive lower bound.
        lo: i128,
        /// Inclusive upper bound.
        hi: i128,
    },
}

impl AbsVal {
    /// The singleton interval.
    pub fn exact(v: i128) -> AbsVal {
        AbsVal::Interval { lo: v, hi: v }
    }

    fn interval(lo: i128, hi: i128) -> AbsVal {
        // Degenerate-width guard: an interval spanning 2^64 or more
        // contains every residue, i.e. is Top. The checked subtraction
        // also catches bounds blown past the i128 range by long chains
        // of exact-constant arithmetic.
        match hi.checked_sub(lo) {
            Some(w) if w < (1i128 << 64) => AbsVal::Interval { lo, hi },
            _ => AbsVal::Top,
        }
    }

    /// `interval` on optional bounds: any overflowed component is Top.
    fn interval_checked(lo: Option<i128>, hi: Option<i128>) -> AbsVal {
        match (lo, hi) {
            (Some(lo), Some(hi)) => AbsVal::interval(lo, hi),
            _ => AbsVal::Top,
        }
    }

    fn join(self, other: AbsVal) -> AbsVal {
        match (self, other) {
            (AbsVal::Interval { lo: a, hi: b }, AbsVal::Interval { lo: c, hi: d }) => {
                AbsVal::interval(a.min(c), b.max(d))
            }
            _ => AbsVal::Top,
        }
    }

    fn add_const(self, k: i128) -> AbsVal {
        match self {
            AbsVal::Interval { lo, hi } => {
                AbsVal::interval_checked(lo.checked_add(k), hi.checked_add(k))
            }
            AbsVal::Top => AbsVal::Top,
        }
    }

    fn add(self, other: AbsVal) -> AbsVal {
        match (self, other) {
            (AbsVal::Interval { lo: a, hi: b }, AbsVal::Interval { lo: c, hi: d }) => {
                AbsVal::interval_checked(a.checked_add(c), b.checked_add(d))
            }
            _ => AbsVal::Top,
        }
    }

    fn sub(self, other: AbsVal) -> AbsVal {
        match (self, other) {
            (AbsVal::Interval { lo: a, hi: b }, AbsVal::Interval { lo: c, hi: d }) => {
                AbsVal::interval_checked(a.checked_sub(d), b.checked_sub(c))
            }
            _ => AbsVal::Top,
        }
    }

    fn mul_const(self, k: i128) -> AbsVal {
        match self {
            AbsVal::Interval { lo, hi } if k >= 0 => {
                AbsVal::interval_checked(lo.checked_mul(k), hi.checked_mul(k))
            }
            AbsVal::Interval { lo, hi } => {
                AbsVal::interval_checked(hi.checked_mul(k), lo.checked_mul(k))
            }
            AbsVal::Top => AbsVal::Top,
        }
    }

    /// Clamp through a 32-bit destination write (upper half zeroed).
    fn zext32(self) -> AbsVal {
        match self {
            AbsVal::Interval { lo, hi } if lo >= 0 && hi <= u32::MAX as i128 => self,
            _ => AbsVal::Interval {
                lo: 0,
                hi: u32::MAX as i128,
            },
        }
    }
}

/// The per-point fact: one abstract value per GPR.
#[derive(Debug, Clone, PartialEq)]
pub struct RegFacts {
    vals: [AbsVal; 16],
}

/// The abstract interval pinned on `%rsp` (the stack region; see the
/// module docs for why this is an axiom rather than a derived fact).
pub fn stack_interval() -> AbsVal {
    AbsVal::Interval {
        lo: 0,
        hi: layout::STACK_TOP as i128,
    }
}

impl RegFacts {
    pub(crate) fn top() -> RegFacts {
        let mut vals = [AbsVal::Top; 16];
        vals[Reg::Rsp.code() as usize] = stack_interval();
        RegFacts { vals }
    }

    /// The abstract value of `r` at this point.
    pub fn get(&self, r: Reg) -> AbsVal {
        self.vals[r.code() as usize]
    }

    pub(crate) fn set(&mut self, r: Reg, v: AbsVal) {
        if r != Reg::Rsp {
            self.vals[r.code() as usize] = v;
        }
    }

    fn clobber_all_but_rsp(&mut self) {
        *self = RegFacts::top();
    }

    /// Pointwise interval-hull join (the [`ForwardAnalysis::join`] of
    /// the provenance analysis, exposed for the summary fixpoint).
    pub(crate) fn join_with(&mut self, other: &RegFacts) {
        for i in 0..16 {
            self.vals[i] = self.vals[i].join(other.vals[i]);
        }
    }
}

/// The interprocedural effect of calling one *summarized* function: the
/// abstract register state its `ret` hands back to the caller.
///
/// `apply` merges the effect over the caller's pre-call facts:
///
/// * a register **not** in `may_write` is provably never written
///   anywhere in the callee (or anything it calls), so the caller's
///   fact survives the call verbatim — a *preservation* fact;
/// * a register in `may_write` takes the callee's at-return value,
///   which is `Top` unless the summary proved a bound (e.g. `%rax`
///   after `and $7, %eax; ret`).
///
/// Both directions are sound per-path: an unwritten register literally
/// holds its old value at the return site, and a written register holds
/// exactly the value the callee's `ret` left in it. `%rsp` always keeps
/// its axiom ([`RegFacts::set`] refuses it).
#[derive(Debug, Clone, PartialEq)]
pub struct CallEffect {
    /// Register facts at the callee's return points.
    pub at_return: RegFacts,
    /// Bit `r.code()` set ⇔ the callee (transitively) may write `r`.
    pub may_write: u16,
}

impl CallEffect {
    /// Merges the effect into the caller's facts at a call site.
    pub fn apply(&self, fact: &mut RegFacts) {
        for code in 0u8..16 {
            if self.may_write & (1 << code) != 0 {
                let r = Reg::from_code(code);
                fact.set(r, self.at_return.get(r));
            }
        }
    }
}

/// Returns `true` when the address span `[lo, hi]` (inclusive, `i128`
/// arithmetic), reduced mod `2^64`, avoids the low-fat heap range
/// `[heap_start, heap_end)` entirely.
pub fn span_avoids_heap(lo: i128, hi: i128) -> bool {
    match hi.checked_sub(lo) {
        Some(w) if w < (1i128 << 64) => {}
        _ => return false,
    }
    let two64 = 1i128 << 64;
    let hs = layout::heap_start() as i128;
    let he = layout::heap_end() as i128;
    // The span overlaps a translated heap copy [hs + k·2^64, he + k·2^64)
    // iff lo ≤ he + k·2^64 - 1 and hs + k·2^64 ≤ hi.
    let kmin = (lo - he).div_euclid(two64);
    let kmax = (hi - hs).div_euclid(two64);
    for k in kmin..=kmax {
        let a = hs + k * two64;
        let b = he + k * two64;
        if lo < b && a <= hi {
            return false;
        }
    }
    true
}

/// Abstract address span of a memory operand under `facts`, or `None`
/// when a component is unbounded.
fn operand_span(facts: &RegFacts, mem: &Mem, len: u8) -> Option<(i128, i128)> {
    if mem.rip {
        // disp carries the absolute target.
        return Some((mem.disp as i128, mem.disp as i128 + len as i128 - 1));
    }
    let base = match mem.base {
        None => AbsVal::exact(0),
        Some(b) => facts.get(b),
    };
    let index = match mem.index {
        None => AbsVal::exact(0),
        Some(i) => facts.get(i).mul_const(mem.scale as i128),
    };
    match base.add(index).add_const(mem.disp as i128) {
        AbsVal::Interval { lo, hi } => Some((lo, hi.checked_add(len as i128 - 1)?)),
        AbsVal::Top => None,
    }
}

/// Returns `true` if, under `facts`, the `len`-byte access through `mem`
/// provably cannot touch low-fat heap memory.
pub fn operand_non_heap(facts: &RegFacts, mem: &Mem, len: u8) -> bool {
    match operand_span(facts, mem, len) {
        Some((lo, hi)) => span_avoids_heap(lo, hi),
        None => false,
    }
}

/// The analysis instance. Stateless by default; with call effects
/// attached ([`ProvenanceAnalysis::with_effects`]) direct calls to
/// summarized functions apply the callee's [`CallEffect`] instead of
/// clobbering every register.
#[derive(Default)]
pub struct ProvenanceAnalysis {
    call_effects: HashMap<u64, CallEffect>,
}

impl ProvenanceAnalysis {
    /// The intraprocedural analysis: every call clobbers all but `%rsp`.
    pub fn new() -> ProvenanceAnalysis {
        ProvenanceAnalysis::default()
    }

    /// Attaches per-callee effects, keyed by callee entry address.
    pub fn with_effects(call_effects: HashMap<u64, CallEffect>) -> ProvenanceAnalysis {
        ProvenanceAnalysis { call_effects }
    }
}

impl ForwardAnalysis for ProvenanceAnalysis {
    type Fact = RegFacts;

    fn boundary(&self) -> RegFacts {
        RegFacts::top()
    }

    fn join(&self, a: &RegFacts, b: &RegFacts) -> RegFacts {
        let mut out = a.clone();
        for i in 0..16 {
            out.vals[i] = a.vals[i].join(b.vals[i]);
        }
        out
    }

    fn widen(&self, prev: &RegFacts, next: &RegFacts) -> RegFacts {
        // Any register still moving goes straight to Top; stable ones
        // keep their interval. Each register widens at most once, so the
        // chain stabilizes.
        let mut out = next.clone();
        for i in 0..16 {
            if prev.vals[i] != next.vals[i] {
                out.vals[i] = AbsVal::Top;
            }
        }
        out.vals[Reg::Rsp.code() as usize] = stack_interval();
        out
    }

    fn transfer(&self, _addr: u64, inst: &Inst, fact: &mut RegFacts) {
        // Calls, indirect control flow and syscalls may run unknown
        // code: every register except %rsp becomes unknown — unless the
        // call is direct and its callee has a summary, in which case the
        // callee's effect (at-return facts gated by its may-write mask)
        // replaces the blanket clobber.
        if matches!(inst.op, Op::Call | Op::CallInd | Op::Syscall) {
            if inst.op == Op::Call {
                if let Some(eff) = inst.branch_target().and_then(|t| self.call_effects.get(&t)) {
                    eff.apply(fact);
                    return;
                }
            }
            fact.clobber_all_but_rsp();
            return;
        }
        // 8-bit operations (`mov $imm, %al`, `xor %al, %al`, 8-bit ALU
        // and shifts) are *partial* writes: the upper 56 bits of the
        // destination survive, so none of the value-tracking arms below
        // apply. Fall through to the default, which sends every written
        // register to Top. (Movzx8/Movsx8/Movsxd carry their
        // *destination* width in `inst.w`, which is always W32/W64.)
        if inst.w != Width::W8 {
            self.transfer_value(inst, fact);
            return;
        }
        // 8-bit partial writes: the written register's full value is
        // unknown. %rsp keeps its axiom.
        for r in inst.regs_written() {
            fact.set(r, AbsVal::Top);
        }
    }
}

impl ProvenanceAnalysis {
    /// Transfer for full-width (W32/W64) instructions; calls/syscalls
    /// and 8-bit partial writes are already handled by the caller.
    fn transfer_value(&self, inst: &Inst, fact: &mut RegFacts) {
        use Operands::*;
        match (inst.op, &inst.operands) {
            // Constant loads.
            (Op::Mov, RI { dst, imm }) => {
                let v = if inst.w == Width::W32 {
                    AbsVal::exact(*imm as u32 as i128)
                } else {
                    AbsVal::exact(*imm as i128)
                };
                fact.set(*dst, v);
                return;
            }
            // Register copies.
            (Op::Mov, RR { dst, src }) => {
                let v = match inst.w {
                    Width::W32 => fact.get(*src).zext32(),
                    _ => fact.get(*src),
                };
                fact.set(*dst, v);
                return;
            }
            // Address computation.
            (Op::Lea, RM { dst, src }) => {
                let v = if src.rip {
                    AbsVal::exact(src.disp as i128)
                } else {
                    let base = src.base.map_or(AbsVal::exact(0), |b| fact.get(b));
                    let index = src.index.map_or(AbsVal::exact(0), |i| {
                        fact.get(i).mul_const(src.scale as i128)
                    });
                    base.add(index).add_const(src.disp as i128)
                };
                // `leal` truncates the computed address to 32 bits and
                // zero-extends; the full-width interval would exclude
                // the truncated value.
                let v = if inst.w == Width::W32 { v.zext32() } else { v };
                fact.set(*dst, v);
                return;
            }
            // Width-bounded loads.
            (Op::Movzx8, RM { dst, .. } | RR { dst, .. }) => {
                fact.set(*dst, AbsVal::Interval { lo: 0, hi: 255 });
                return;
            }
            (Op::Movsx8, RM { dst, .. } | RR { dst, .. }) => {
                // `movsbq` yields [-128, 127] as 64-bit residues, but
                // `movsbl` sign-extends only to 32 bits and then
                // zero-extends: negative bytes land at 0xffff_ff80..=
                // 0xffff_ffff, inside [0, u32::MAX] and far from
                // [-128, -1] mod 2^64.
                let v = match inst.w {
                    Width::W64 => AbsVal::Interval { lo: -128, hi: 127 },
                    _ => AbsVal::Interval {
                        lo: 0,
                        hi: u32::MAX as i128,
                    },
                };
                fact.set(*dst, v);
                return;
            }
            (Op::Movsxd, RM { dst, .. } | RR { dst, .. }) => {
                fact.set(
                    *dst,
                    AbsVal::Interval {
                        lo: i32::MIN as i128,
                        hi: i32::MAX as i128,
                    },
                );
                return;
            }
            // Immediate arithmetic.
            (Op::Alu(op), RI { dst, imm }) => {
                let cur = fact.get(*dst);
                let v = match op {
                    AluOp::Add => cur.add_const(*imm as i128),
                    AluOp::Sub => cur.add_const(-(*imm as i128)),
                    AluOp::And if *imm >= 0 => AbsVal::Interval {
                        lo: 0,
                        hi: *imm as i128,
                    },
                    AluOp::Cmp => cur, // no register write
                    _ => AbsVal::Top,
                };
                let v = if inst.w == Width::W32 { v.zext32() } else { v };
                fact.set(*dst, v);
                return;
            }
            // Register arithmetic.
            (Op::Alu(op), RR { dst, src }) => {
                let v = match op {
                    AluOp::Add => fact.get(*dst).add(fact.get(*src)),
                    AluOp::Sub if dst == src => AbsVal::exact(0),
                    AluOp::Sub => fact.get(*dst).sub(fact.get(*src)),
                    AluOp::Xor if dst == src => AbsVal::exact(0),
                    AluOp::Cmp => return, // no register write
                    _ => AbsVal::Top,
                };
                let v = if inst.w == Width::W32 { v.zext32() } else { v };
                fact.set(*dst, v);
                return;
            }
            // Shifts by constant.
            (Op::Shift(op), RI { dst, imm }) => {
                let k = (*imm as u32).min(63);
                let v = match (op, fact.get(*dst)) {
                    (ShiftOp::Shl, AbsVal::Interval { lo, hi }) if lo >= 0 => {
                        let f = 1i128 << k;
                        AbsVal::interval_checked(lo.checked_mul(f), hi.checked_mul(f))
                    }
                    (ShiftOp::Shr | ShiftOp::Sar, AbsVal::Interval { lo, hi })
                        if lo >= 0 && hi < (1i128 << 64) =>
                    {
                        AbsVal::interval(lo >> k, hi >> k)
                    }
                    // Logical right shift of *any* 64-bit value is
                    // bounded by 2^(64-k).
                    (ShiftOp::Shr, _) if k > 0 => AbsVal::Interval {
                        lo: 0,
                        hi: (1i128 << (64 - k)) - 1,
                    },
                    _ => AbsVal::Top,
                };
                let v = if inst.w == Width::W32 { v.zext32() } else { v };
                fact.set(*dst, v);
                return;
            }
            // Conditional move: either the old or the new value.
            (Op::Cmovcc(_), RR { dst, src }) => {
                let v = fact.get(*dst).join(fact.get(*src));
                let v = if inst.w == Width::W32 { v.zext32() } else { v };
                fact.set(*dst, v);
                return;
            }
            // Sign-extension of rax into rdx.
            (Op::Cqo, _) => {
                fact.set(Reg::Rdx, AbsVal::Interval { lo: -1, hi: 0 });
                return;
            }
            _ => {}
        }
        // Default: every written register becomes unknown (loads, pop,
        // mul/div, ...). %rsp keeps its axiom.
        for r in inst.regs_written() {
            fact.set(r, AbsVal::Top);
        }
    }
}

/// The computed provenance solution plus site-level queries.
pub struct Provenance {
    solution: ForwardSolution<ProvenanceAnalysis>,
    roots: BTreeSet<u64>,
}

impl Provenance {
    /// Runs the analysis over a disassembled image.
    pub fn compute(disasm: &Disasm, cfg: &Cfg, entry: u64) -> Provenance {
        Provenance::compute_with_roots(disasm, cfg, &unknown_entries(disasm, cfg, entry))
    }

    /// Runs the analysis with a precomputed unknown-entry set, for
    /// callers that shard one image into per-component sub-`Cfg`s:
    /// `unknown_entries` scans the whole disassembly (its any-indirect
    /// escape hatch is an image-wide property), so the pipeline computes
    /// it once globally and this constructor intersects it with the
    /// blocks actually present in `cfg`.
    pub fn compute_with_roots(disasm: &Disasm, cfg: &Cfg, roots: &BTreeSet<u64>) -> Provenance {
        Provenance::compute_with_roots_and_effects(disasm, cfg, roots, HashMap::new())
    }

    /// Interprocedural variant: direct calls to callees present in
    /// `effects` apply the callee's summary instead of clobbering.
    /// Sound for any sound effect map; an empty map reproduces the
    /// intraprocedural analysis exactly.
    pub fn compute_with_roots_and_effects(
        disasm: &Disasm,
        cfg: &Cfg,
        roots: &BTreeSet<u64>,
        effects: HashMap<u64, CallEffect>,
    ) -> Provenance {
        let roots: BTreeSet<u64> = roots
            .iter()
            .copied()
            .filter(|r| cfg.blocks.contains_key(r))
            .collect();
        let solution = solve_forward(
            ProvenanceAnalysis::with_effects(effects),
            disasm,
            cfg,
            &roots,
        );
        Provenance { solution, roots }
    }

    /// The unknown-entry blocks the analysis was rooted at.
    pub fn roots(&self) -> &BTreeSet<u64> {
        &self.roots
    }

    /// Register facts immediately before `addr`, or `None` for
    /// unreached/unknown instructions.
    pub fn facts_before(&self, disasm: &Disasm, cfg: &Cfg, addr: u64) -> Option<RegFacts> {
        self.solution.fact_before(disasm, cfg, addr)
    }

    /// Flow-sensitive version of [`crate::elim::can_reach_heap`]: `true`
    /// if the instruction's memory access might touch low-fat heap
    /// memory. Conservative (`true`) for instructions the analysis did
    /// not reach.
    pub fn site_can_reach_heap(&self, disasm: &Disasm, cfg: &Cfg, addr: u64, inst: &Inst) -> bool {
        let Some(mem) = inst.memory_access() else {
            return false;
        };
        let len = inst.access_len().unwrap_or(8);
        match self.facts_before(disasm, cfg, addr) {
            Some(facts) => !operand_non_heap(&facts, &mem, len),
            None => true,
        }
    }

    /// Human-readable rendering of the operand's abstract address span
    /// at `addr` (for `AnalysisReport`).
    pub fn describe_span(&self, disasm: &Disasm, cfg: &Cfg, addr: u64, inst: &Inst) -> String {
        let Some(mem) = inst.memory_access() else {
            return "no access".to_string();
        };
        let len = inst.access_len().unwrap_or(8);
        match self.facts_before(disasm, cfg, addr) {
            None => "unreached".to_string(),
            Some(facts) => match operand_span(&facts, &mem, len) {
                None => "addr ∈ ⊤".to_string(),
                Some((lo, hi)) => format!("addr ∈ [{lo:#x}, {hi:#x}]"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_check_basics() {
        let hs = layout::heap_start() as i128;
        let he = layout::heap_end() as i128;
        assert!(span_avoids_heap(0, hs - 1));
        assert!(!span_avoids_heap(0, hs));
        assert!(!span_avoids_heap(hs, hs));
        assert!(!span_avoids_heap(he - 1, he - 1));
        assert!(span_avoids_heap(he, he + 100));
        // Negative span wraps to the top of the address space, far above
        // heap_end.
        assert!(span_avoids_heap(-64, -1));
        // ...but a huge span covers everything.
        assert!(!span_avoids_heap(-64, (1i128 << 64) - 65));
        // A span one wraparound up still hits the translated heap copy.
        assert!(!span_avoids_heap((1i128 << 64) + hs, (1i128 << 64) + hs));
    }

    #[test]
    fn interval_arithmetic() {
        let a = AbsVal::Interval { lo: 4, hi: 8 };
        let b = AbsVal::Interval { lo: -2, hi: 2 };
        assert_eq!(a.add(b), AbsVal::Interval { lo: 2, hi: 10 });
        assert_eq!(a.sub(b), AbsVal::Interval { lo: 2, hi: 10 });
        assert_eq!(a.mul_const(8), AbsVal::Interval { lo: 32, hi: 64 });
        assert_eq!(a.join(b), AbsVal::Interval { lo: -2, hi: 8 });
        assert_eq!(AbsVal::Top.join(a), AbsVal::Top);
    }

    #[test]
    fn rsp_axiom_survives_clobbers() {
        let mut f = RegFacts::top();
        f.set(Reg::Rsp, AbsVal::Top); // set() must refuse
        assert_eq!(f.get(Reg::Rsp), stack_interval());
    }

    fn inst(op: Op, w: Width, operands: Operands) -> Inst {
        Inst { op, w, operands }
    }

    fn with_exact_rax(v: i128) -> RegFacts {
        let mut f = RegFacts::top();
        f.set(Reg::Rax, AbsVal::exact(v));
        f
    }

    /// 8-bit instructions write only the low byte; the analysis must
    /// not record a full-register fact for them.
    #[test]
    fn w8_partial_writes_clobber_to_top() {
        let a = ProvenanceAnalysis::new();
        let rax_imm = |w, imm| inst(Op::Mov, w, Operands::RI { dst: Reg::Rax, imm });

        // mov $1, %al on a register holding a (possibly-heap) pointer.
        let mut f = with_exact_rax(0x1234_5678_9abc);
        a.transfer(0, &rax_imm(Width::W8, 1), &mut f);
        assert_eq!(f.get(Reg::Rax), AbsVal::Top);

        // xor %al, %al is NOT a full zeroing idiom.
        let mut f = with_exact_rax(0x1234_5678_9abc);
        let xor8 = inst(
            Op::Alu(AluOp::Xor),
            Width::W8,
            Operands::RR {
                dst: Reg::Rax,
                src: Reg::Rax,
            },
        );
        a.transfer(0, &xor8, &mut f);
        assert_eq!(f.get(Reg::Rax), AbsVal::Top);

        // and $15, %al bounds only the low byte.
        let mut f = with_exact_rax(0x1234_5678_9abc);
        let and8 = inst(
            Op::Alu(AluOp::And),
            Width::W8,
            Operands::RI {
                dst: Reg::Rax,
                imm: 15,
            },
        );
        a.transfer(0, &and8, &mut f);
        assert_eq!(f.get(Reg::Rax), AbsVal::Top);

        // shl $4, %al shifts only the low byte.
        let mut f = with_exact_rax(3);
        let shl8 = inst(
            Op::Shift(ShiftOp::Shl),
            Width::W8,
            Operands::RI {
                dst: Reg::Rax,
                imm: 4,
            },
        );
        a.transfer(0, &shl8, &mut f);
        assert_eq!(f.get(Reg::Rax), AbsVal::Top);

        // Full-width constant loads still give exact facts.
        let mut f = RegFacts::top();
        a.transfer(0, &rax_imm(Width::W64, 42), &mut f);
        assert_eq!(f.get(Reg::Rax), AbsVal::exact(42));
    }

    /// movsbl zero-extends the 32-bit sign-extension: negative bytes
    /// land at 0xffff_ff8x, not at -1..-128 mod 2^64.
    #[test]
    fn movsx8_width_sensitivity() {
        let a = ProvenanceAnalysis::new();
        let movsx = |w| {
            inst(
                Op::Movsx8,
                w,
                Operands::RR {
                    dst: Reg::Rax,
                    src: Reg::Rcx,
                },
            )
        };

        let mut f = RegFacts::top();
        a.transfer(0, &movsx(Width::W64), &mut f);
        assert_eq!(f.get(Reg::Rax), AbsVal::Interval { lo: -128, hi: 127 });

        let mut f = RegFacts::top();
        a.transfer(0, &movsx(Width::W32), &mut f);
        assert_eq!(
            f.get(Reg::Rax),
            AbsVal::Interval {
                lo: 0,
                hi: u32::MAX as i128
            }
        );
    }

    /// leal truncates the computed address to 32 bits.
    #[test]
    fn lea32_clamps_result() {
        let a = ProvenanceAnalysis::new();
        let mut f = RegFacts::top();
        f.set(Reg::Rbx, AbsVal::exact(0x1_0000_0010));
        let lea = inst(
            Op::Lea,
            Width::W32,
            Operands::RM {
                dst: Reg::Rax,
                src: Mem::base(Reg::Rbx),
            },
        );
        a.transfer(0, &lea, &mut f);
        assert_eq!(
            f.get(Reg::Rax),
            AbsVal::Interval {
                lo: 0,
                hi: u32::MAX as i128
            }
        );
    }

    /// Bound arithmetic that overflows i128 must widen to Top, not
    /// panic (debug) or wrap (release).
    #[test]
    fn interval_arithmetic_saturates_to_top() {
        let big = AbsVal::exact(i128::MAX - 1);
        assert_eq!(big.add_const(2), AbsVal::Top);
        assert_eq!(big.add(AbsVal::exact(2)), AbsVal::Top);
        assert_eq!(
            AbsVal::exact(i128::MIN + 1).sub(AbsVal::exact(2)),
            AbsVal::Top
        );
        assert_eq!(big.mul_const(2), AbsVal::Top);
        assert_eq!(big.mul_const(-2), AbsVal::Top);

        // A long straight-line chain of doublings (each an exact,
        // zero-width interval, so widening never fires) stays safe.
        let mut v = AbsVal::exact(1);
        for _ in 0..200 {
            v = v.mul_const(2);
        }
        assert_eq!(v, AbsVal::Top);

        // Same via repeated shl-by-imm through the transfer function.
        let a = ProvenanceAnalysis::new();
        let mut f = with_exact_rax(1);
        let shl = inst(
            Op::Shift(ShiftOp::Shl),
            Width::W64,
            Operands::RI {
                dst: Reg::Rax,
                imm: 63,
            },
        );
        for _ in 0..4 {
            a.transfer(0, &shl, &mut f);
        }
        assert_eq!(f.get(Reg::Rax), AbsVal::Top);
    }
}
