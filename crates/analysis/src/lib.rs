//! Static binary analyses for the RedFat rewriter (paper §6).
//!
//! Everything here is *conservative over-approximation*, in the precise
//! sense the paper requires: imprecision may shrink an optimization's
//! applicability (smaller batches, fewer free scratch registers) but can
//! never change program behavior.
//!
//! * [`disasm`]: linear-sweep disassembly of executable segments, with
//!   explicit *unknown gaps* where bytes do not decode -- unknown code is
//!   left untouched by the rewriter.
//! * [`cfg`]: basic-block recovery. Any direct branch/call target is a
//!   leader; indirect control flow marks the function boundary as opaque.
//! * [`liveness`]: backward register/flags liveness, used to find
//!   *clobbered* (dead) registers so trampolines can skip save/restore
//!   work (§6 "additional low-level optimizations"). Unknown successors
//!   are treated as reading everything.
//! * [`batch`]: grouping of checkable memory accesses into per-basic-
//!   block batches (§6 "check batching") and shape-compatible merge
//!   groups (§6 "check merging").
//! * [`elim`]: the check-elimination rule -- memory operands that provably
//!   cannot reach low-fat heap memory (§6 "check elimination").

pub mod batch;
pub mod cfg;
pub mod disasm;
pub mod elim;
pub mod liveness;

pub use batch::{merge_checks, plan_batches, Batch, MergedCheck};
pub use cfg::{Cfg, MAX_BLOCK};
pub use disasm::{disassemble, Disasm};
pub use elim::can_reach_heap;
pub use liveness::Liveness;
