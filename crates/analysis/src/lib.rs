//! Static binary analyses for the RedFat rewriter (paper §6).
//!
//! Everything here is *conservative over-approximation*, in the precise
//! sense the paper requires: imprecision may shrink an optimization's
//! applicability (smaller batches, fewer free scratch registers) but can
//! never change program behavior.
//!
//! * [`disasm`]: linear-sweep disassembly of executable segments, with
//!   explicit *unknown gaps* where bytes do not decode -- unknown code is
//!   left untouched by the rewriter.
//! * [`cfg`]: basic-block recovery. Any direct branch/call target is a
//!   leader; indirect control flow marks the function boundary as opaque.
//! * [`liveness`]: backward register/flags liveness, used to find
//!   *clobbered* (dead) registers so trampolines can skip save/restore
//!   work (§6 "additional low-level optimizations"). Unknown successors
//!   are treated as reading everything.
//! * [`batch`]: grouping of checkable memory accesses into per-basic-
//!   block batches (§6 "check batching") and shape-compatible merge
//!   groups (§6 "check merging").
//! * [`elim`]: the check-elimination rule -- memory operands that provably
//!   cannot reach low-fat heap memory (§6 "check elimination").
//! * [`dataflow`]: a generic forward worklist solver over the recovered
//!   CFG (unknown-entry roots, widening), shared by the flow passes.
//! * [`domtree`]: iterative dominator tree rooted at a virtual super-root
//!   over all unknown entries.
//! * [`provenance`]: flow-sensitive non-heap provenance -- per-register
//!   value intervals proving that an access cannot touch the heap, a
//!   strict superset of the syntactic elimination rule.
//! * [`redundant`]: dominator-based redundant-check elimination -- a full
//!   check subsumed by an identical dominating check is downgraded to
//!   redzone-only.
//! * [`callgraph`]: call-graph recovery over the CFG -- direct call and
//!   tail-call edges, conservative Top for indirect calls, condensed to
//!   SCCs for bottom-up summary computation.
//! * [`summary`]: per-function summaries over the provenance lattice --
//!   return-register facts, may-write register masks, and heap purity --
//!   iterated over call-graph SCCs with recursion widening to Top.
//! * [`report`]: per-site classification report (`redfat analyze`).

pub mod batch;
pub mod callgraph;
pub mod cfg;
pub mod dataflow;
pub mod disasm;
pub mod domtree;
pub mod elim;
pub mod liveness;
pub mod provenance;
pub mod redundant;
pub mod report;
pub mod summary;

pub use batch::{merge_checks, plan_batches, Batch, MergedCheck};
pub use callgraph::{CallGraph, CallSite};
pub use cfg::{Cfg, MAX_BLOCK};
pub use dataflow::{solve_forward, unknown_entries, ForwardAnalysis, ForwardSolution};
pub use disasm::{disassemble, Disasm};
pub use domtree::DomTree;
pub use elim::can_reach_heap;
pub use liveness::{dead_flags_in_run, flags_live_after_run, Liveness};
pub use provenance::{operand_non_heap, span_avoids_heap, AbsVal, Provenance, RegFacts};
pub use redundant::RedundantChecks;
pub use report::{
    analyze, analyze_image, analyze_image_opts, analyze_image_threaded, analyze_opts,
    analyze_threaded, render_callgraph, render_callgraph_dot, AnalysisReport, AnalyzeOptions,
    SiteReport, SiteVerdict,
};
pub use summary::{FuncSummary, Summaries};
