//! Per-function summaries over the provenance lattice — the
//! interprocedural tier's second layer.
//!
//! For every recovered function (see [`crate::callgraph`]) this module
//! computes a [`FuncSummary`]:
//!
//! * **closedness** — whether every exit of every block in the
//!   function's body is statically understood (`ret`, a recognized tail
//!   call, a non-returning trap, or an in-image successor edge). Only
//!   closed functions are summarized; everything else keeps the Top
//!   summary, which reproduces the intraprocedural clobber exactly.
//! * **may-write mask** — the set of registers the function (or
//!   anything it transitively calls) may write. Least fixpoint over the
//!   call graph: calls to unknown or indirect targets contribute the
//!   full mask. A register *outside* the mask is provably preserved
//!   across the call — the caller's provenance fact survives verbatim.
//! * **heap purity** — `true` when no execution of the function can
//!   reach a syscall or statically-unknown code. In this substrate the
//!   allocator is reached via `syscall` only, so a heap-pure call
//!   cannot allocate or free: available bounds-checks on registers the
//!   callee preserves remain valid across the call
//!   ([`crate::redundant`]). Greatest fixpoint: recursion among locally
//!   clean functions stays pure; one dirty reachable callee poisons all
//!   its callers.
//! * **at-return facts** — the provenance [`RegFacts`] joined over the
//!   function's `ret` blocks (and tail-call exits, through the tail
//!   callee's own effect). Computed bottom-up over call-graph SCCs so
//!   callee effects are final before callers consume them.
//!
//! # Recursion widening
//!
//! Members of a recursive SCC start from the Top summary (recursive
//! calls clobber, exactly as the intraprocedural analysis would) and
//! are then recomputed for a small fixed number of rounds
//! ([`RECURSION_ROUNDS`]). Every round is sound by induction — a
//! summary computed from sound callee summaries is sound — so stopping
//! after any round is safe; more rounds only refine. No monotonicity of
//! the summary operator is needed, which keeps the argument robust
//! against the interval widening inside each solve.

use crate::callgraph::CallGraph;
use crate::cfg::{Block, Cfg};
use crate::dataflow::solve_forward;
use crate::disasm::Disasm;
use crate::provenance::{CallEffect, ProvenanceAnalysis, RegFacts};
use redfat_x86::Op;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Recomputation rounds for recursive SCCs after the Top
/// initialization. Round 1 already incorporates one unrolling of the
/// recursion; further rounds rarely change anything in practice.
pub const RECURSION_ROUNDS: usize = 2;

/// All sixteen GPR bits (the "writes everything" mask).
const ALL_REGS_MASK: u16 = 0xffff;

/// The interprocedural summary of one recovered function.
#[derive(Debug, Clone)]
pub struct FuncSummary {
    /// Entry address of the function.
    pub entry: u64,
    /// `true` when every block exit in the body is statically
    /// understood; only closed functions yield a [`CallEffect`].
    pub closed: bool,
    /// `true` when no execution can reach a syscall or unknown code.
    pub heap_pure: bool,
    /// Bit `r.code()` set ⇔ the function may (transitively) write `r`.
    pub may_write: u16,
    /// Provenance facts at the function's return points.
    pub at_return: RegFacts,
}

impl FuncSummary {
    fn top(entry: u64) -> FuncSummary {
        FuncSummary {
            entry,
            closed: false,
            heap_pure: false,
            may_write: ALL_REGS_MASK,
            at_return: RegFacts::top(),
        }
    }

    /// The call effect this summary justifies, or `None` for the Top
    /// summary (callers fall back to clobbering).
    pub fn effect(&self) -> Option<CallEffect> {
        self.closed.then(|| CallEffect {
            at_return: self.at_return.clone(),
            may_write: self.may_write,
        })
    }
}

/// How one basic block hands off control, for closedness and at-return
/// classification.
enum ExitKind {
    /// Ends in `ret`: a return point.
    Return,
    /// Tail call to a recovered function entry: returns through it.
    TailCall(u64),
    /// `ud2`/`int3`: execution stops; contributes no return fact.
    Trap,
    /// All control flow stays on in-image successor edges.
    Flow,
    /// Control may escape to statically unknown code.
    Unknown,
}

fn classify_exit(disasm: &Disasm, cfg: &Cfg, block: &Block) -> ExitKind {
    let Some(&last) = block.insts.last() else {
        return ExitKind::Unknown;
    };
    let (inst, _) = disasm.at(last).expect("block member decoded");
    let all_succs_known =
        !block.succs.is_empty() && block.succs.iter().all(|s| cfg.blocks.contains_key(s));
    match inst.op {
        Op::Ret => ExitKind::Return,
        Op::Ud2 | Op::Int3 => ExitKind::Trap,
        Op::JmpInd => ExitKind::Unknown,
        Op::Jmp => match inst.branch_target() {
            // Tail call: recovery stripped the successor edge.
            Some(t) if block.opaque_exit && cfg.func_entries.contains(&t) => ExitKind::TailCall(t),
            Some(_) if all_succs_known => ExitKind::Flow,
            _ => ExitKind::Unknown,
        },
        Op::Jcc(_) => {
            // Both arms (target and fall-through) must be decoded.
            if block.succs.len() == 2 && all_succs_known {
                ExitKind::Flow
            } else {
                ExitKind::Unknown
            }
        }
        // Calls continue at their return site; the *callee* is handled
        // by the provenance transfer (effect or clobber), so a decoded
        // return site is all closedness needs.
        Op::Call | Op::CallInd => {
            if all_succs_known {
                ExitKind::Flow
            } else {
                ExitKind::Unknown
            }
        }
        // Straight-line block split at a leader, or fell into
        // undecodable bytes (opaque without a terminator).
        _ => {
            if !block.opaque_exit && all_succs_known {
                ExitKind::Flow
            } else {
                ExitKind::Unknown
            }
        }
    }
}

/// Summaries for every recovered function of one image.
pub struct Summaries {
    /// The call graph the fixpoint ran over.
    pub graph: CallGraph,
    funcs: BTreeMap<u64, FuncSummary>,
}

impl Summaries {
    /// Computes all function summaries bottom-up over the call graph.
    ///
    /// `roots` is the image-global unknown-entry set
    /// ([`crate::dataflow::unknown_entries`]): blocks inside a function
    /// body that are also global roots keep their boundary join, so an
    /// image with indirect branches degrades every summary toward Top
    /// automatically instead of claiming precision it cannot have.
    pub fn compute(disasm: &Disasm, cfg: &Cfg, roots: &BTreeSet<u64>) -> Summaries {
        let graph = CallGraph::build(disasm, cfg);

        // Phase 1: closedness (purely local).
        let mut closed: BTreeMap<u64, bool> = BTreeMap::new();
        for &entry in &graph.entries {
            let ok = graph.body[&entry].iter().all(|b| {
                !matches!(
                    classify_exit(disasm, cfg, &cfg.blocks[b]),
                    ExitKind::Unknown
                )
            });
            closed.insert(entry, ok);
        }

        // Phase 2: may-write masks. Least fixpoint from local masks;
        // non-closed functions and unknown callees are pinned at ⊤.
        let mut masks: BTreeMap<u64, u16> = graph
            .entries
            .iter()
            .map(|&e| {
                let m = if closed[&e] {
                    local_write_mask(disasm, cfg, &graph, e)
                } else {
                    ALL_REGS_MASK
                };
                (e, m)
            })
            .collect();
        loop {
            let mut changed = false;
            for &e in &graph.entries {
                if masks[&e] == ALL_REGS_MASK {
                    continue;
                }
                let mut m = masks[&e];
                for site in graph.sites.iter().filter(|s| s.caller == e) {
                    m |= match site.callee {
                        Some(t) => masks.get(&t).copied().unwrap_or(ALL_REGS_MASK),
                        None => ALL_REGS_MASK,
                    };
                }
                if m != masks[&e] {
                    masks.insert(e, m);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        // Phase 3: heap purity. Greatest fixpoint from local purity.
        let mut pure: BTreeMap<u64, bool> = graph
            .entries
            .iter()
            .map(|&e| (e, closed[&e] && locally_heap_clean(disasm, cfg, &graph, e)))
            .collect();
        loop {
            let mut changed = false;
            for &e in &graph.entries {
                if !pure[&e] {
                    continue;
                }
                let dirty_callee = graph.sites.iter().any(|s| {
                    s.caller == e
                        && match s.callee {
                            Some(t) => !pure.get(&t).copied().unwrap_or(false),
                            None => true,
                        }
                });
                if dirty_callee {
                    pure.insert(e, false);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        // Phase 4: at-return facts, bottom-up over SCCs. The effects
        // map always holds the best *sound* effect known so far;
        // recursive SCCs start at Top (absent ⇒ clobber) and are
        // recomputed for a bounded number of rounds.
        let mut effects: HashMap<u64, CallEffect> = HashMap::new();
        let mut funcs: BTreeMap<u64, FuncSummary> = BTreeMap::new();
        for scc in graph.sccs_bottom_up() {
            let rounds = if graph.is_recursive(scc) {
                RECURSION_ROUNDS
            } else {
                1
            };
            for _ in 0..rounds {
                // Jacobi update: compute all members against the same
                // effects map, then commit, so member order is
                // irrelevant.
                let staged: Vec<(u64, FuncSummary)> = scc
                    .iter()
                    .map(|&e| {
                        let s = summarize_one(
                            disasm, cfg, &graph, roots, &effects, e, closed[&e], masks[&e],
                            pure[&e],
                        );
                        (e, s)
                    })
                    .collect();
                for (e, s) in staged {
                    match s.effect() {
                        Some(eff) => {
                            effects.insert(e, eff);
                        }
                        None => {
                            effects.remove(&e);
                        }
                    }
                    funcs.insert(e, s);
                }
            }
        }

        Summaries { graph, funcs }
    }

    /// The summary of the function entered at `entry`.
    pub fn get(&self, entry: u64) -> Option<&FuncSummary> {
        self.funcs.get(&entry)
    }

    /// All summaries, in entry order.
    pub fn iter(&self) -> impl Iterator<Item = &FuncSummary> {
        self.funcs.values()
    }

    /// The call-effect map for [`ProvenanceAnalysis::with_effects`]:
    /// one entry per closed function.
    pub fn call_effects(&self) -> HashMap<u64, CallEffect> {
        self.funcs
            .iter()
            .filter_map(|(&e, s)| s.effect().map(|eff| (e, eff)))
            .collect()
    }

    /// Per-callee may-write masks for the redundant-check pass: only
    /// closed *and heap-pure* functions qualify, because an available
    /// check survives a call only if the callee can neither move the
    /// heap (syscall) nor write the registers the checked shape reads.
    pub fn pure_write_masks(&self) -> HashMap<u64, u16> {
        self.funcs
            .iter()
            .filter(|(_, s)| s.closed && s.heap_pure)
            .map(|(&e, s)| (e, s.may_write))
            .collect()
    }
}

/// Registers the function's own body may write, ignoring callees
/// (those are folded in by the fixpoint). Calls and indirect/unknown
/// transfers inside the body contribute ⊤ here directly.
fn local_write_mask(disasm: &Disasm, cfg: &Cfg, graph: &CallGraph, entry: u64) -> u16 {
    let mut mask = 1u16 << redfat_x86::Reg::Rsp.code();
    for b in &graph.body[&entry] {
        for &addr in &cfg.blocks[b].insts {
            let (inst, _) = disasm.at(addr).expect("block member decoded");
            match inst.op {
                // Direct calls/tail calls: callee masks are added by
                // the caller's fixpoint loop; a call to a target with
                // no recovered body is ⊤.
                Op::Call | Op::Jmp => {}
                Op::CallInd | Op::Syscall | Op::JmpInd => return ALL_REGS_MASK,
                _ => {}
            }
            for r in inst.regs_written() {
                mask |= 1u16 << r.code();
            }
        }
    }
    // Direct calls to targets outside the recovered entry set (e.g.
    // into a decode gap) write anything.
    for site in graph.sites.iter().filter(|s| s.caller == entry) {
        match site.callee {
            Some(t) if graph.body.contains_key(&t) => {}
            _ => return ALL_REGS_MASK,
        }
    }
    mask
}

/// `true` when the body itself contains no syscall and no transfer to
/// statically unknown code (callees are folded in by the fixpoint).
fn locally_heap_clean(disasm: &Disasm, cfg: &Cfg, graph: &CallGraph, entry: u64) -> bool {
    for b in &graph.body[&entry] {
        for &addr in &cfg.blocks[b].insts {
            let (inst, _) = disasm.at(addr).expect("block member decoded");
            if matches!(inst.op, Op::Syscall | Op::CallInd | Op::JmpInd) {
                return false;
            }
        }
    }
    graph
        .sites
        .iter()
        .filter(|s| s.caller == entry)
        .all(|s| s.callee.is_some_and(|t| graph.body.contains_key(&t)))
}

/// One summary computation for one function, against the current
/// callee-effects map. Sound whenever every effect in the map is sound.
#[allow(clippy::too_many_arguments)]
fn summarize_one(
    disasm: &Disasm,
    cfg: &Cfg,
    graph: &CallGraph,
    global_roots: &BTreeSet<u64>,
    effects: &HashMap<u64, CallEffect>,
    entry: u64,
    closed: bool,
    may_write: u16,
    heap_pure: bool,
) -> FuncSummary {
    if !closed {
        return FuncSummary::top(entry);
    }
    let body = &graph.body[&entry];
    // Roots: the function entry (boundary — arguments are unknown) plus
    // any image-global unknown entry inside the body.
    let mut roots: BTreeSet<u64> = global_roots
        .iter()
        .copied()
        .filter(|r| body.contains(r))
        .collect();
    roots.insert(entry);
    let analysis = ProvenanceAnalysis::with_effects(effects.clone());
    let sol = solve_forward(analysis, disasm, cfg, &roots);

    // Join facts over every reachable return path.
    let mut at_return: Option<RegFacts> = None;
    for b in body {
        let block = &cfg.blocks[b];
        let exit = classify_exit(disasm, cfg, block);
        let (ExitKind::Return | ExitKind::TailCall(_)) = exit else {
            continue;
        };
        let Some(entry_fact) = sol.block_entry(*b) else {
            continue; // unreachable return path
        };
        let mut fact = entry_fact.clone();
        for &addr in &block.insts {
            let (inst, _) = disasm.at(addr).expect("block member decoded");
            sol.analysis().transfer(addr, inst, &mut fact);
        }
        if let ExitKind::TailCall(t) = exit {
            // Returning *through* the tail callee: its effect maps our
            // state at the jmp to the state at the eventual ret.
            match effects.get(&t) {
                Some(eff) => eff.apply(&mut fact),
                None => fact = RegFacts::top(),
            }
        }
        match &mut at_return {
            None => at_return = Some(fact),
            Some(acc) => acc.join_with(&fact),
        }
    }
    // No reachable return path: under the model the function never
    // returns, so any at-return fact is vacuously sound; Top keeps it
    // unsurprising.
    let at_return = at_return.unwrap_or_else(RegFacts::top);
    FuncSummary {
        entry,
        closed,
        heap_pure,
        may_write,
        at_return,
    }
}

// `transfer` comes through the trait.
use crate::dataflow::ForwardAnalysis;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::unknown_entries;
    use crate::disasm::disassemble;
    use crate::provenance::AbsVal;
    use redfat_elf::{Image, ImageKind, SegFlags, Segment};
    use redfat_x86::{AluOp, Asm, Reg, Width};

    fn image_of(f: impl FnOnce(&mut Asm)) -> Image {
        let mut a = Asm::new(0x40_0000);
        f(&mut a);
        let p = a.finish().unwrap();
        Image {
            kind: ImageKind::Exec,
            entry: 0x40_0000,
            segments: vec![Segment::new(p.base, SegFlags::RX, p.bytes)],
            symbols: vec![],
        }
    }

    fn summaries_of(img: &Image) -> Summaries {
        let d = disassemble(img);
        let cfg = Cfg::recover(&d, img.entry, &[]);
        let roots = unknown_entries(&d, &cfg, img.entry);
        Summaries::compute(&d, &cfg, &roots)
    }

    fn entry_of(s: &Summaries, img: &Image, skip_main: bool) -> u64 {
        s.graph
            .entries
            .iter()
            .copied()
            .find(|&e| !skip_main || e != img.entry)
            .unwrap()
    }

    /// `and $7, %rax; ret` summarizes rax to [0, 7] and a tight
    /// may-write mask; callers' preserved registers stay out of it.
    #[test]
    fn leaf_summary_bounds_return_register() {
        let img = image_of(|a| {
            let f = a.label();
            a.call_label(f); // main
            a.ret();
            a.bind(f).unwrap();
            a.alu_ri(AluOp::And, Width::W64, Reg::Rax, 7);
            a.ret();
        });
        let s = summaries_of(&img);
        let f = entry_of(&s, &img, true);
        let sum = s.get(f).unwrap();
        assert!(sum.closed);
        assert!(sum.heap_pure);
        assert_eq!(
            sum.at_return.get(Reg::Rax),
            AbsVal::Interval { lo: 0, hi: 7 }
        );
        // rbx is never written by f.
        assert_eq!(sum.may_write & (1 << Reg::Rbx.code()), 0);
        assert_ne!(sum.may_write & (1 << Reg::Rax.code()), 0);
        let effects = s.call_effects();
        assert!(effects.contains_key(&f));
        // Applying the effect preserves an unwritten register.
        let mut facts = RegFacts::top();
        facts.set(Reg::Rbx, AbsVal::exact(42));
        effects[&f].apply(&mut facts);
        assert_eq!(facts.get(Reg::Rbx), AbsVal::exact(42));
        assert_eq!(facts.get(Reg::Rax), AbsVal::Interval { lo: 0, hi: 7 });
    }

    /// A self-recursive function widens to the Top-initialized rounds:
    /// its rax claim must stay sound (here: Top, because the recursive
    /// call clobbers before the final mov depends on it... the branch
    /// that recurses rejoins with arbitrary rax).
    #[test]
    fn recursion_widens_to_top() {
        let img = image_of(|a| {
            let f = a.label();
            let done = a.label();
            a.call_label(f); // main
            a.ret();
            a.bind(f).unwrap();
            a.alu_ri(AluOp::Sub, Width::W64, Reg::Rcx, 1);
            a.jcc_label(redfat_x86::Cond::E, done);
            a.call_label(f); // recurse
            a.ret();
            a.bind(done).unwrap();
            a.mov_ri(Width::W64, Reg::Rax, 5);
            a.ret();
        });
        let s = summaries_of(&img);
        let f = entry_of(&s, &img, true);
        let sum = s.get(f).unwrap();
        assert!(sum.closed);
        // The non-recursive arm returns rax = 5; the recursive arm
        // returns whatever the inner call produced. After the rounds
        // stabilize the join must still contain 5 and be sound for the
        // recursive path — the recursive call's effect itself reports
        // at-return rax ⊇ {5}, so the join stays an interval containing
        // 5 or Top; either way `and`-style misuse is impossible. What
        // must NOT happen is an *exact* 5 claim for the recursive path
        // computed from an unsound bottom initialization.
        match sum.at_return.get(Reg::Rax) {
            AbsVal::Top => {}
            AbsVal::Interval { lo, hi } => {
                assert!(lo <= 5 && 5 <= hi, "sound summaries contain 5");
            }
        }
        // Recursive SCC detected.
        let scc = s
            .graph
            .sccs_bottom_up()
            .iter()
            .find(|c| c.contains(&f))
            .unwrap();
        assert!(s.graph.is_recursive(scc));
    }

    /// A function containing a syscall is not heap-pure, and neither is
    /// its caller; masks go to ⊤ through the call chain.
    #[test]
    fn syscall_poisons_purity_transitively() {
        let img = image_of(|a| {
            let f = a.label();
            let g = a.label();
            a.call_label(f); // main
            a.ret();
            a.bind(f).unwrap();
            a.call_label(g);
            a.ret();
            a.bind(g).unwrap();
            a.syscall();
            a.ret();
        });
        let s = summaries_of(&img);
        let mut entries = s.graph.entries.clone();
        entries.retain(|&e| e != img.entry);
        for e in entries {
            let sum = s.get(e).unwrap();
            assert!(!sum.heap_pure, "syscall reachable from {e:#x}");
            assert_eq!(sum.may_write, 0xffff);
        }
        assert!(s.pure_write_masks().is_empty());
    }

    /// Tail calls thread the callee's effect into the caller's
    /// at-return fact.
    #[test]
    fn tail_call_composes_effects() {
        let img = image_of(|a| {
            let f = a.label();
            let g = a.label();
            a.call_label(f); // main
            a.call_label(g); // make g a recovered entry
            a.ret();
            a.bind(f).unwrap();
            a.jmp_label(g); // f tail-calls g
            a.bind(g).unwrap();
            a.alu_ri(AluOp::And, Width::W64, Reg::Rax, 15);
            a.ret();
        });
        let s = summaries_of(&img);
        // Identify f: the entry whose body has a tail-call site.
        let f = s
            .graph
            .sites
            .iter()
            .find(|site| site.tail)
            .map(|site| site.caller)
            .expect("tail call site");
        let sum = s.get(f).unwrap();
        assert!(sum.closed);
        assert_eq!(
            sum.at_return.get(Reg::Rax),
            AbsVal::Interval { lo: 0, hi: 15 },
            "f returns through g, so f's rax bound is g's"
        );
    }
}
