//! A generic forward dataflow framework over the recovered [`Cfg`].
//!
//! Clients implement [`ForwardAnalysis`] -- a join-semilattice of facts
//! plus a per-instruction transfer function -- and the worklist solver
//! computes a fixed point of block-entry facts. Two conservatisms are
//! built in, matching what binary-level analysis (as opposed to
//! compiler IR analysis) must assume:
//!
//! * **Unknown entries.** A stripped binary has no reliable function
//!   boundaries: the image entry point, every direct call target, every
//!   decode-gap boundary -- and, when the image contains *any* indirect
//!   branch, every leader -- may be reached from code we cannot see.
//!   Such blocks have their entry fact joined with the analysis's
//!   [`boundary`](ForwardAnalysis::boundary) fact (the "know nothing"
//!   element).
//! * **Widening.** Infinite-height domains (intervals) terminate via
//!   [`widen`](ForwardAnalysis::widen), applied to a block's entry fact
//!   once it has been refined more than [`WIDEN_AFTER`] times.
//!
//! The solver stores facts per *block*; per-instruction facts are
//! recovered on demand by replaying the transfer function from the block
//! entry ([`ForwardSolution::fact_before`]), which keeps memory linear
//! in the number of blocks rather than instructions.

use crate::cfg::Cfg;
use crate::disasm::Disasm;
use redfat_x86::{Inst, Op};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// Number of refinements of one block's entry fact before the solver
/// starts widening (guarantees termination on interval-like domains).
pub const WIDEN_AFTER: usize = 4;

/// A forward dataflow analysis over machine instructions.
pub trait ForwardAnalysis {
    /// The abstract fact attached to each program point.
    type Fact: Clone + PartialEq;

    /// The fact holding at entries reachable from unknown code (and at
    /// the image entry): the most conservative description of state.
    fn boundary(&self) -> Self::Fact;

    /// Least upper bound of two facts.
    fn join(&self, a: &Self::Fact, b: &Self::Fact) -> Self::Fact;

    /// Widening operator: a sound over-approximation of `next` that
    /// additionally guarantees stabilization when applied repeatedly to
    /// a chain `prev ⊑ next`. Defaults to jumping straight to
    /// [`boundary`](ForwardAnalysis::boundary) (always sound).
    fn widen(&self, _prev: &Self::Fact, _next: &Self::Fact) -> Self::Fact {
        self.boundary()
    }

    /// Applies the effect of one instruction to `fact`, in place.
    fn transfer(&self, addr: u64, inst: &Inst, fact: &mut Self::Fact);
}

/// The fixed point computed by [`solve_forward`].
pub struct ForwardSolution<A: ForwardAnalysis> {
    analysis: A,
    /// Entry fact per reachable block.
    block_in: HashMap<u64, A::Fact>,
}

/// Computes the set of blocks that must be treated as enterable from
/// statically unknown code: the image entry, direct call targets,
/// decode-gap boundaries -- and every leader if any indirect branch
/// exists anywhere in the image (an indirect `jmp`/`call` could target
/// any of them).
pub fn unknown_entries(disasm: &Disasm, cfg: &Cfg, entry: u64) -> BTreeSet<u64> {
    let mut roots = BTreeSet::new();
    roots.insert(entry);
    let mut any_indirect = false;
    for (_, inst, _) in disasm.iter() {
        match inst.op {
            Op::Call => {
                if let Some(t) = inst.branch_target() {
                    roots.insert(t);
                }
            }
            Op::CallInd | Op::JmpInd => any_indirect = true,
            _ => {}
        }
    }
    for &(_, end) in &disasm.unknown {
        if disasm.at(end).is_some() {
            roots.insert(end);
        }
    }
    if any_indirect {
        roots.extend(cfg.leaders.iter().copied());
    }
    roots.retain(|r| cfg.blocks.contains_key(r));
    roots
}

/// Runs the worklist algorithm to a fixed point.
///
/// `roots` are the unknown-entry blocks (see [`unknown_entries`]); their
/// entry facts are pinned at-or-above the boundary fact. Blocks not
/// reachable from any root keep no fact and queries on them answer
/// conservatively.
pub fn solve_forward<A: ForwardAnalysis>(
    analysis: A,
    disasm: &Disasm,
    cfg: &Cfg,
    roots: &BTreeSet<u64>,
) -> ForwardSolution<A> {
    let mut block_in: HashMap<u64, A::Fact> = HashMap::new();
    let mut updates: HashMap<u64, usize> = HashMap::new();
    let mut work: VecDeque<u64> = VecDeque::new();
    let mut queued: BTreeSet<u64> = BTreeSet::new();

    for &r in roots {
        block_in.insert(r, analysis.boundary());
        if queued.insert(r) {
            work.push_back(r);
        }
    }

    while let Some(start) = work.pop_front() {
        queued.remove(&start);
        let Some(block) = cfg.blocks.get(&start) else {
            continue;
        };
        let Some(entry_fact) = block_in.get(&start) else {
            continue;
        };
        // Apply the block's transfer.
        let mut fact = entry_fact.clone();
        for &addr in &block.insts {
            let (inst, _) = disasm.at(addr).expect("block member decoded");
            analysis.transfer(addr, inst, &mut fact);
        }
        // Propagate to successors.
        for &succ in &block.succs {
            if !cfg.blocks.contains_key(&succ) {
                continue;
            }
            let mut incoming = fact.clone();
            if roots.contains(&succ) {
                incoming = analysis.join(&incoming, &analysis.boundary());
            }
            let updated = match block_in.get(&succ) {
                None => {
                    block_in.insert(succ, incoming);
                    true
                }
                Some(old) => {
                    let mut new = analysis.join(old, &incoming);
                    if new != *old {
                        let n = updates.entry(succ).or_insert(0);
                        *n += 1;
                        if *n > WIDEN_AFTER {
                            new = analysis.widen(old, &new);
                        }
                        if new != *old {
                            block_in.insert(succ, new);
                            true
                        } else {
                            false
                        }
                    } else {
                        false
                    }
                }
            };
            if updated && queued.insert(succ) {
                work.push_back(succ);
            }
        }
    }

    ForwardSolution { analysis, block_in }
}

impl<A: ForwardAnalysis> ForwardSolution<A> {
    /// The fact at the entry of the block starting at `start`, if the
    /// block was reached.
    pub fn block_entry(&self, start: u64) -> Option<&A::Fact> {
        self.block_in.get(&start)
    }

    /// The fact holding immediately *before* the instruction at `addr`,
    /// recovered by replaying the block prefix. `None` when `addr` is in
    /// no reached block -- callers must treat that conservatively.
    pub fn fact_before(&self, disasm: &Disasm, cfg: &Cfg, addr: u64) -> Option<A::Fact> {
        let block = cfg.block_of(addr)?;
        let mut fact = self.block_in.get(&block.start)?.clone();
        for &a in &block.insts {
            if a == addr {
                return Some(fact);
            }
            let (inst, _) = disasm.at(a).expect("block member decoded");
            self.analysis.transfer(a, inst, &mut fact);
        }
        None
    }

    /// The underlying analysis (for clients that need its helpers).
    pub fn analysis(&self) -> &A {
        &self.analysis
    }
}
