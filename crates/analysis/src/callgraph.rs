//! Call-graph recovery over the recovered [`Cfg`] (the interprocedural
//! tier's first layer).
//!
//! Nodes are the *recovered function entries*: the image entry plus
//! every direct `call` target that starts a decoded block
//! ([`Cfg::func_entries`]). Edges are:
//!
//! * **direct call edges** — a `call imm` inside F's body targeting G;
//! * **tail-call edges** — a direct `jmp` inside F's body to another
//!   function's entry (recognized during CFG recovery: such a jump
//!   carries no intra-function successor edge);
//! * **Top edges** — any `call` through a register (`CallInd`) leaves F
//!   with a conservative edge to the ⊤ node: the callee is statically
//!   unknown, so every interprocedural fact about the call must assume
//!   the worst. Represented as a [`CallSite`] with `callee == None`.
//!
//! A function's **body** is the set of blocks reachable from its entry
//! via successor edges. Successor edges never enter another function
//! (calls connect to their *return site*; tail calls have no edge), so
//! bodies approximate compiler-emitted function extents; code reachable
//! from two entries (shared tails) simply belongs to both bodies, which
//! is conservative for every client below.
//!
//! For the summary fixpoint the graph is condensed to strongly-connected
//! components (mutual recursion) and traversed **bottom-up**: every SCC
//! is visited after all SCCs it calls into, so callee summaries are
//! final before any caller reads them. Recursive SCCs are the widening
//! points ([`crate::summary`]).

use crate::cfg::Cfg;
use crate::disasm::Disasm;
use redfat_x86::Op;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// One call instruction (or tail-call jump) attributed to its owning
/// function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallSite {
    /// Address of the `call`/`jmp` instruction.
    pub addr: u64,
    /// Entry address of the function whose body contains the site.
    pub caller: u64,
    /// Direct callee entry, or `None` for an indirect call (⊤).
    pub callee: Option<u64>,
    /// `true` when the site is a tail-call `jmp` rather than a `call`.
    pub tail: bool,
}

/// The recovered call graph plus its SCC condensation.
#[derive(Debug, Clone)]
pub struct CallGraph {
    /// Function entries with a recovered body, in address order.
    pub entries: Vec<u64>,
    /// Every call/tail-call site, in (caller, address) order.
    pub sites: Vec<CallSite>,
    /// Body of each function: blocks reachable from its entry.
    pub body: BTreeMap<u64, BTreeSet<u64>>,
    /// Direct edges (call + tail) between recovered functions.
    edges: BTreeMap<u64, BTreeSet<u64>>,
    /// SCCs of the direct-edge graph in bottom-up (callees-first) order.
    sccs: Vec<Vec<u64>>,
}

impl CallGraph {
    /// Builds the call graph for a disassembled image.
    pub fn build(disasm: &Disasm, cfg: &Cfg) -> CallGraph {
        let entries: Vec<u64> = cfg
            .func_entries
            .iter()
            .copied()
            .filter(|e| cfg.blocks.contains_key(e))
            .collect();

        // Bodies: forward closure over successor edges.
        let mut body: BTreeMap<u64, BTreeSet<u64>> = BTreeMap::new();
        for &entry in &entries {
            let mut seen: BTreeSet<u64> = BTreeSet::new();
            let mut stack = vec![entry];
            seen.insert(entry);
            while let Some(b) = stack.pop() {
                let Some(block) = cfg.blocks.get(&b) else {
                    continue;
                };
                for &s in &block.succs {
                    if cfg.blocks.contains_key(&s) && seen.insert(s) {
                        stack.push(s);
                    }
                }
            }
            body.insert(entry, seen);
        }

        // Sites and edges.
        let mut sites = Vec::new();
        let mut edges: BTreeMap<u64, BTreeSet<u64>> = BTreeMap::new();
        for &caller in &entries {
            edges.entry(caller).or_default();
            for &bstart in &body[&caller] {
                let block = &cfg.blocks[&bstart];
                for &addr in &block.insts {
                    let (inst, _) = disasm.at(addr).expect("block member decoded");
                    match inst.op {
                        Op::Call => {
                            let callee = inst.branch_target();
                            sites.push(CallSite {
                                addr,
                                caller,
                                callee,
                                tail: false,
                            });
                            if let Some(t) = callee {
                                if cfg.blocks.contains_key(&t) {
                                    edges.entry(caller).or_default().insert(t);
                                }
                            }
                        }
                        Op::CallInd => sites.push(CallSite {
                            addr,
                            caller,
                            callee: None,
                            tail: false,
                        }),
                        // A tail call is a direct jmp to a function entry
                        // that CFG recovery stripped of its successor
                        // edge (see `Cfg::recover`).
                        Op::Jmp => {
                            if let Some(t) = inst.branch_target() {
                                if cfg.func_entries.contains(&t) && !block.succs.contains(&t) {
                                    sites.push(CallSite {
                                        addr,
                                        caller,
                                        callee: Some(t),
                                        tail: true,
                                    });
                                    if cfg.blocks.contains_key(&t) {
                                        edges.entry(caller).or_default().insert(t);
                                    }
                                }
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
        sites.sort_by_key(|s| (s.caller, s.addr));

        let sccs = condense(&entries, &edges);
        CallGraph {
            entries,
            sites,
            body,
            edges,
            sccs,
        }
    }

    /// Direct callees (call + tail) of `entry`.
    pub fn callees(&self, entry: u64) -> impl Iterator<Item = u64> + '_ {
        self.edges.get(&entry).into_iter().flatten().copied()
    }

    /// SCCs of the call graph in bottom-up order: every component
    /// appears after all components it calls into.
    pub fn sccs_bottom_up(&self) -> &[Vec<u64>] {
        &self.sccs
    }

    /// `true` when the SCC contains recursion: more than one member, or
    /// a single member calling itself.
    pub fn is_recursive(&self, scc: &[u64]) -> bool {
        match scc {
            [f] => self.edges.get(f).is_some_and(|es| es.contains(f)),
            _ => scc.len() > 1,
        }
    }

    /// Entry of the function whose body contains the block starting at
    /// `block_start`; when bodies overlap, the lowest owning entry. For
    /// site *attribution* prefer [`owner_of_addr`](Self::owner_of_addr).
    pub fn owner_of_block(&self, block_start: u64) -> Option<u64> {
        self.body
            .iter()
            .find(|(_, blocks)| blocks.contains(&block_start))
            .map(|(&e, _)| e)
    }

    /// Attributes an instruction address to the nearest function entry
    /// at or below it — the conventional symbolization rule, cheap and
    /// total even for addresses outside every body.
    pub fn owner_of_addr(&self, addr: u64) -> Option<u64> {
        match self.entries.binary_search(&addr) {
            Ok(i) => Some(self.entries[i]),
            Err(0) => None,
            Err(i) => Some(self.entries[i - 1]),
        }
    }
}

/// Iterative Tarjan SCC over the entry set. Emission order is reverse
/// topological on the condensation: an SCC is emitted only after every
/// SCC reachable from it, i.e. callees first.
fn condense(entries: &[u64], edges: &BTreeMap<u64, BTreeSet<u64>>) -> Vec<Vec<u64>> {
    #[derive(Default, Clone)]
    struct NodeState {
        index: Option<usize>,
        lowlink: usize,
        on_stack: bool,
    }
    let mut state: HashMap<u64, NodeState> =
        entries.iter().map(|&e| (e, NodeState::default())).collect();
    let mut next_index = 0usize;
    let mut stack: Vec<u64> = Vec::new();
    let mut out: Vec<Vec<u64>> = Vec::new();

    // Edge targets are always recovered entries (guaranteed by
    // `build`), so children need no membership filter.
    let children = |n: u64| -> Vec<u64> {
        edges
            .get(&n)
            .into_iter()
            .flatten()
            .copied()
            .filter(|c| entries.contains(c))
            .collect()
    };

    // Explicit DFS machine: (node, children, next child position).
    for &root in entries {
        if state[&root].index.is_some() {
            continue;
        }
        let mut dfs: Vec<(u64, Vec<u64>, usize)> = Vec::new();
        {
            let s = state.get_mut(&root).expect("known node");
            s.index = Some(next_index);
            s.lowlink = next_index;
            s.on_stack = true;
        }
        next_index += 1;
        stack.push(root);
        dfs.push((root, children(root), 0));

        while let Some(&(node, _, pos)) = dfs.last() {
            let kids = &dfs.last().expect("nonempty").1;
            if pos < kids.len() {
                let child = kids[pos];
                dfs.last_mut().expect("nonempty").2 += 1;
                if state[&child].index.is_none() {
                    let s = state.get_mut(&child).expect("known node");
                    s.index = Some(next_index);
                    s.lowlink = next_index;
                    s.on_stack = true;
                    next_index += 1;
                    stack.push(child);
                    dfs.push((child, children(child), 0));
                } else if state[&child].on_stack {
                    let cl = state[&child].lowlink;
                    let s = state.get_mut(&node).expect("known node");
                    s.lowlink = s.lowlink.min(cl);
                }
            } else {
                dfs.pop();
                if let Some(&(parent, _, _)) = dfs.last() {
                    let nl = state[&node].lowlink;
                    let p = state.get_mut(&parent).expect("known node");
                    p.lowlink = p.lowlink.min(nl);
                }
                if state[&node].lowlink == state[&node].index.expect("visited") {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("scc member on stack");
                        state.get_mut(&w).expect("known node").on_stack = false;
                        scc.push(w);
                        if w == node {
                            break;
                        }
                    }
                    scc.sort_unstable();
                    out.push(scc);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disasm::disassemble;
    use redfat_elf::{Image, ImageKind, SegFlags, Segment};
    use redfat_x86::Asm;

    fn image_of(f: impl FnOnce(&mut Asm)) -> Image {
        let mut a = Asm::new(0x40_0000);
        f(&mut a);
        let p = a.finish().unwrap();
        Image {
            kind: ImageKind::Exec,
            entry: 0x40_0000,
            segments: vec![Segment::new(p.base, SegFlags::RX, p.bytes)],
            symbols: vec![],
        }
    }

    fn graph_of(img: &Image) -> CallGraph {
        let d = disassemble(img);
        let cfg = Cfg::recover(&d, img.entry, &[]);
        CallGraph::build(&d, &cfg)
    }

    /// main -> f -> g chain: three singleton SCCs, callees first.
    #[test]
    fn chain_condenses_bottom_up() {
        let img = image_of(|a| {
            let f = a.label();
            let g = a.label();
            a.call_label(f); // main
            a.ret();
            a.bind(f).unwrap();
            a.call_label(g);
            a.ret();
            a.bind(g).unwrap();
            a.ret();
        });
        let cg = graph_of(&img);
        assert_eq!(cg.entries.len(), 3);
        let sccs = cg.sccs_bottom_up();
        assert_eq!(sccs.len(), 3);
        // Position of each function's SCC: callees strictly earlier.
        let pos = |e: u64| sccs.iter().position(|s| s.contains(&e)).unwrap();
        let main = img.entry;
        for s in &cg.sites {
            if let Some(callee) = s.callee {
                assert!(
                    pos(callee) < pos(s.caller),
                    "callee SCC must precede caller SCC"
                );
            }
        }
        assert!(!cg.is_recursive(&sccs[pos(main)]));
    }

    /// Mutually recursive f <-> g collapse into one SCC; a helper h
    /// called from the cycle still precedes it.
    #[test]
    fn mutual_recursion_forms_one_scc() {
        let img = image_of(|a| {
            let f = a.label();
            let g = a.label();
            let h = a.label();
            a.call_label(f); // main
            a.ret();
            a.bind(f).unwrap();
            a.call_label(g);
            a.ret();
            a.bind(g).unwrap();
            a.call_label(f);
            a.call_label(h);
            a.ret();
            a.bind(h).unwrap();
            a.ret();
        });
        let cg = graph_of(&img);
        let sccs = cg.sccs_bottom_up();
        let cycle = sccs.iter().find(|s| s.len() == 2).expect("f<->g SCC");
        assert!(cg.is_recursive(cycle));
        let pos = |p: &dyn Fn(&Vec<u64>) -> bool| sccs.iter().position(p).unwrap();
        let cycle_pos = pos(&|s: &Vec<u64>| s.len() == 2);
        // h: a leaf function called only from the cycle.
        let h_entry = cg
            .entries
            .iter()
            .copied()
            .filter(|&e| !cycle.contains(&e) && e != img.entry)
            .max()
            .unwrap();
        let h_pos = pos(&|s: &Vec<u64>| s.contains(&h_entry));
        assert!(h_pos < cycle_pos, "leaf callee precedes the cycle");
    }

    /// Direct self-recursion is a recursive singleton SCC.
    #[test]
    fn self_recursion_is_recursive() {
        let img = image_of(|a| {
            let f = a.label();
            a.call_label(f); // main
            a.ret();
            a.bind(f).unwrap();
            a.call_label(f);
            a.ret();
        });
        let cg = graph_of(&img);
        let f = cg
            .entries
            .iter()
            .copied()
            .find(|&e| e != img.entry)
            .unwrap();
        let scc = cg.sccs_bottom_up().iter().find(|s| s.contains(&f)).unwrap();
        assert_eq!(scc.len(), 1);
        assert!(cg.is_recursive(scc));
        let main_scc = cg
            .sccs_bottom_up()
            .iter()
            .find(|s| s.contains(&img.entry))
            .unwrap();
        assert!(!cg.is_recursive(main_scc));
    }

    /// Tail-call jmp produces a `tail: true` site and a call edge.
    #[test]
    fn tail_call_site_recorded() {
        let img = image_of(|a| {
            let f = a.label();
            let g = a.label();
            a.call_label(f); // main
            a.ret();
            a.bind(f).unwrap();
            a.jmp_label(g); // tail call
            a.bind(g).unwrap();
            a.ret();
        });
        // g must be recognized as a function entry: it is only reached
        // by the tail jmp, so make it a call target too.
        let cg = graph_of(&img);
        // f tail-calls g only if g ∈ func_entries; with no direct call
        // to g the jmp stays an intra-function branch.
        assert!(cg.sites.iter().all(|s| !s.tail));

        let img2 = image_of(|a| {
            let f = a.label();
            let g = a.label();
            a.call_label(f);
            a.call_label(g); // ensure g is a recovered function entry
            a.ret();
            a.bind(f).unwrap();
            a.jmp_label(g);
            a.bind(g).unwrap();
            a.ret();
        });
        let cg2 = graph_of(&img2);
        let tail: Vec<&CallSite> = cg2.sites.iter().filter(|s| s.tail).collect();
        assert_eq!(tail.len(), 1);
        assert!(tail[0].callee.is_some());
    }
}
