//! Check elimination (paper §6): memory operands that provably cannot
//! reach low-fat heap memory need no instrumentation.

use redfat_vm::layout;
use redfat_x86::{Mem, Reg};

/// Returns `true` if the operand might address low-fat heap memory and
/// therefore needs a check.
///
/// The paper's rule: a check can be eliminated for any memory operand
///
/// 1. with no index register; **and**
/// 2. with no base register, or a base register that provably stays more
///    than ±2 GiB (the displacement range) away from heap memory.
///
/// Statically-known bases in that category are the instruction pointer
/// (RIP-relative operands address code/globals, far below the heap) and
/// the stack pointer (the layout pins the stack more than 2 GiB below
/// region #1). Absolute operands encode a signed 32-bit address, which is
/// also below the heap. Any other base register could hold a heap pointer,
/// so the check stays.
pub fn can_reach_heap(mem: &Mem) -> bool {
    if mem.index.is_some() {
        // An index register can move the address anywhere.
        return true;
    }
    if mem.rip {
        return false;
    }
    match mem.base {
        None => {
            // Absolute disp32: |addr| < 2^31 < heap_start.
            debug_assert!((mem.disp.unsigned_abs()) < layout::heap_start());
            false
        }
        Some(Reg::Rsp) => false,
        Some(_) => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absolute_and_rip_eliminated() {
        assert!(!can_reach_heap(&Mem::abs(0x60_0000)));
        assert!(!can_reach_heap(&Mem::rip(0x40_1000)));
    }

    #[test]
    fn rsp_based_eliminated() {
        assert!(!can_reach_heap(&Mem::base_disp(Reg::Rsp, 0x18)));
        assert!(!can_reach_heap(&Mem::base_disp(Reg::Rsp, -0x7FFF_0000)));
    }

    #[test]
    fn general_registers_kept() {
        assert!(can_reach_heap(&Mem::base(Reg::Rax)));
        assert!(can_reach_heap(&Mem::base_disp(Reg::Rbp, -8)));
    }

    #[test]
    fn index_always_kept() {
        // Even an rsp base cannot be eliminated with an index present.
        assert!(can_reach_heap(&Mem::bis(Reg::Rsp, Reg::Rcx, 8, 0)));
        assert!(can_reach_heap(&Mem::index_scale(Reg::Rcx, 8, 0)));
    }
}
