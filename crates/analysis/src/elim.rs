//! Check elimination (paper §6): memory operands that provably cannot
//! reach low-fat heap memory need no instrumentation.

use redfat_vm::layout;
use redfat_x86::{Mem, Reg};

/// Returns `true` if the operand might address low-fat heap memory and
/// therefore needs a check.
///
/// The paper's rule: a check can be eliminated for any memory operand
///
/// 1. with no index register; **and**
/// 2. with no base register, or a base register that provably stays more
///    than ±2 GiB (the displacement range) away from heap memory.
///
/// Statically-known bases in that category are the instruction pointer
/// (RIP-relative operands address code/globals, far below the heap) and
/// the stack pointer (the layout pins the stack more than 2 GiB below
/// region #1). Absolute operands encode a signed 32-bit address, which is
/// also below the heap. Any other base register could hold a heap pointer,
/// so the check stays.
pub fn can_reach_heap(mem: &Mem) -> bool {
    if mem.index.is_some() {
        // An index register can move the address anywhere.
        return true;
    }
    if mem.rip {
        return false;
    }
    match mem.base {
        None => {
            // Absolute operand: the address is exactly the displacement
            // (as a 64-bit value; negative displacements wrap far above
            // the heap). Encodable disp32 operands always land below
            // heap_start, but rather than assert that we test the range
            // conservatively -- a synthetic operand aliasing the heap
            // keeps its check.
            let addr = mem.disp as u64;
            layout::heap_start() <= addr && addr < layout::heap_end()
        }
        Some(Reg::Rsp) => false,
        Some(_) => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absolute_and_rip_eliminated() {
        assert!(!can_reach_heap(&Mem::abs(0x60_0000)));
        assert!(!can_reach_heap(&Mem::rip(0x40_1000)));
    }

    #[test]
    fn rsp_based_eliminated() {
        assert!(!can_reach_heap(&Mem::base_disp(Reg::Rsp, 0x18)));
        assert!(!can_reach_heap(&Mem::base_disp(Reg::Rsp, -0x7FFF_0000)));
    }

    #[test]
    fn general_registers_kept() {
        assert!(can_reach_heap(&Mem::base(Reg::Rax)));
        assert!(can_reach_heap(&Mem::base_disp(Reg::Rbp, -8)));
    }

    #[test]
    fn absolute_heap_alias_kept() {
        // A synthetic absolute operand inside the low-fat heap range
        // must keep its check (no encodable disp32 gets here, but the
        // classifier must not assume that).
        assert!(can_reach_heap(&Mem::abs(layout::heap_start() as i64)));
        assert!(can_reach_heap(&Mem::abs((layout::heap_end() - 1) as i64)));
        // Negative displacements wrap above heap_end: still eliminable.
        assert!(!can_reach_heap(&Mem::abs(-0x1000)));
        assert!(!can_reach_heap(&Mem::abs(layout::heap_end() as i64)));
    }

    #[test]
    fn index_always_kept() {
        // Even an rsp base cannot be eliminated with an index present.
        assert!(can_reach_heap(&Mem::bis(Reg::Rsp, Reg::Rcx, 8, 0)));
        assert!(can_reach_heap(&Mem::index_scale(Reg::Rcx, 8, 0)));
    }
}
