//! Backward register and flags liveness.
//!
//! The instrumentation needs scratch registers and may destroy the flags;
//! saving and restoring them costs instructions. This analysis finds, for
//! each instrumentation site, which registers (and whether the flags) are
//! *dead* -- i.e. overwritten before any use on every path -- so the
//! trampoline generator can clobber them for free (paper §6, "additional
//! low-level optimizations").
//!
//! Conservatism: any opaque exit (indirect control flow, `ret`, calls,
//! unknown bytes) is assumed to read every register and the flags.

use crate::cfg::Cfg;
use crate::disasm::Disasm;
use std::collections::HashMap;

/// Bitmask over the 16 GPRs, plus a flags bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LiveSet {
    regs: u16,
    flags: bool,
}

impl LiveSet {
    const ALL: LiveSet = LiveSet {
        regs: u16::MAX,
        flags: true,
    };
    const NONE: LiveSet = LiveSet {
        regs: 0,
        flags: false,
    };

    fn union(self, other: LiveSet) -> LiveSet {
        LiveSet {
            regs: self.regs | other.regs,
            flags: self.flags || other.flags,
        }
    }
}

/// Per-site liveness results.
pub struct Liveness {
    /// Live-before set per instruction address.
    live_before: HashMap<u64, (u16, bool)>,
}

impl Liveness {
    /// Computes liveness over a recovered CFG.
    pub fn compute(disasm: &Disasm, cfg: &Cfg) -> Liveness {
        // Iterate blocks to a fixed point (the graph is small).
        let mut live_in: HashMap<u64, LiveSet> = HashMap::new();
        let mut changed = true;
        let mut rounds = 0usize;
        while changed && rounds < 64 {
            changed = false;
            rounds += 1;
            for (&start, block) in cfg.blocks.iter().rev() {
                let mut live = if block.opaque_exit {
                    LiveSet::ALL
                } else {
                    block
                        .succs
                        .iter()
                        .filter_map(|s| live_in.get(s).copied())
                        .fold(LiveSet::NONE, LiveSet::union)
                };
                // Successors not yet computed: be conservative.
                if !block.opaque_exit && block.succs.iter().any(|s| !live_in.contains_key(s)) {
                    live = live.union(LiveSet::ALL);
                }
                for &addr in block.insts.iter().rev() {
                    let (inst, _) = disasm.at(addr).expect("block member decoded");
                    live = transfer(inst, live);
                }
                if live_in.get(&start) != Some(&live) {
                    live_in.insert(start, live);
                    changed = true;
                }
            }
        }

        // Second pass: record live-before per instruction.
        let mut live_before = HashMap::new();
        for block in cfg.blocks.values() {
            let mut live = if block.opaque_exit {
                LiveSet::ALL
            } else {
                block
                    .succs
                    .iter()
                    .filter_map(|s| live_in.get(s).copied())
                    .fold(LiveSet::NONE, LiveSet::union)
            };
            for &addr in block.insts.iter().rev() {
                let (inst, _) = disasm.at(addr).expect("block member decoded");
                live = transfer(inst, live);
                live_before.insert(addr, (live.regs, live.flags));
            }
        }
        Liveness { live_before }
    }

    /// Registers that are dead immediately before the instruction at
    /// `addr` (safe to clobber by code inserted before it).
    pub fn dead_regs_before(&self, addr: u64) -> Vec<redfat_x86::Reg> {
        let (live, _) = self
            .live_before
            .get(&addr)
            .copied()
            .unwrap_or((u16::MAX, true));
        (0u8..16)
            .filter(|&c| live & (1 << c) == 0)
            .map(redfat_x86::Reg::from_code)
            .collect()
    }

    /// Returns `true` if the flags are dead immediately before `addr`
    /// (code inserted before it may trash them without saving).
    pub fn flags_dead_before(&self, addr: u64) -> bool {
        match self.live_before.get(&addr) {
            Some((_, flags_live)) => !*flags_live,
            None => false,
        }
    }
}

/// Returns `true` if executing `inst` may leave a straight-line run
/// early -- a memory fault, an access veto, a divide error, a trap, or a
/// syscall exit -- making the architectural flags observable *before*
/// the following instruction retires. Implicit stack traffic
/// (`push`/`pop`/`call`/`ret`) counts: `Inst::memory_access` only
/// reports explicit memory operands.
fn may_exit_run(inst: &redfat_x86::Inst) -> bool {
    use redfat_x86::Op;
    inst.memory_access().is_some()
        || matches!(
            inst.op,
            Op::Push
                | Op::Pop
                | Op::Pushfq
                | Op::Popfq
                | Op::Call
                | Op::CallInd
                | Op::Ret
                | Op::MulDiv(_)
                | Op::Syscall
                | Op::Int3
                | Op::Ud2
        )
}

/// Whether `inst` writes *any* flag bits at all. This is the may-write
/// superset of the must-write-all predicate [`redfat_x86::Inst::writes_flags`]:
/// `shl cl`-style shifts write the flags only when the runtime count is
/// nonzero, so they may write without being reported as must-writers.
fn writes_any_flags(inst: &redfat_x86::Inst) -> bool {
    inst.writes_flags() || matches!(inst.op, redfat_x86::Op::ShiftCl(_))
}

/// Backward flag deadness over a straight-line run (no CFG).
///
/// Returns, for each instruction, `true` when its EFLAGS outputs are
/// provably unobservable: some later instruction *in the run* fully
/// rewrites the flags before anything reads them, and no instruction in
/// between can leave the run early. The flags are conservatively assumed
/// live at the end of the run (a trace exit may branch on them) and at
/// every potential early exit ([`may_exit_run`]), so a trace executor may
/// skip computing the flags of every `true` entry without the skipped
/// values ever becoming architecturally visible.
pub fn dead_flags_in_run(insts: &[redfat_x86::Inst]) -> Vec<bool> {
    let mut dead = vec![false; insts.len()];
    // `live` holds liveness *after* instruction `i` within the loop.
    let mut live = true;
    for (i, inst) in insts.iter().enumerate().rev() {
        let exit = may_exit_run(inst);
        dead[i] = !live && !exit && writes_any_flags(inst);
        // live-before(i): an exit or a flag read observes the incoming
        // flags; a must-write-all kills them; otherwise flow through.
        live = exit || inst.reads_flags() || (live && !inst.writes_flags());
    }
    dead
}

/// Backward flags-liveness *after* each instruction of a straight-line
/// run: `out[i]` is `false` only when the flags as left by instruction
/// `i` are provably unobservable -- a later instruction in the run
/// fully rewrites them before any read, and nothing in between can
/// leave the run early. Same conservative rules as
/// [`dead_flags_in_run`] (flags live at the end of the run and at
/// every potential early exit); the two differ only in what they
/// report: this is the raw liveness-out, used by the trace tier to
/// decide whether a compare-and-branch pair may skip materializing the
/// compare's flags on its predicted path.
pub fn flags_live_after_run(insts: &[redfat_x86::Inst]) -> Vec<bool> {
    let mut out = vec![true; insts.len()];
    let mut live = true;
    for (i, inst) in insts.iter().enumerate().rev() {
        out[i] = live;
        live = may_exit_run(inst) || inst.reads_flags() || (live && !inst.writes_flags());
    }
    out
}

fn transfer(inst: &redfat_x86::Inst, after: LiveSet) -> LiveSet {
    let mut regs = after.regs;
    let mut flags = after.flags;
    // Kill writes first, then add reads (standard backward transfer).
    for r in inst.regs_written() {
        regs &= !(1u16 << r.code());
    }
    if inst.writes_flags() {
        flags = false;
    }
    for r in inst.regs_read() {
        regs |= 1u16 << r.code();
    }
    if inst.reads_flags() {
        flags = true;
    }
    LiveSet { regs, flags }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disasm::disassemble;
    use redfat_elf::{Image, ImageKind, SegFlags, Segment};
    use redfat_x86::{AluOp, Asm, Mem, Reg, Width};

    fn analyze(f: impl FnOnce(&mut Asm) -> Vec<u64>) -> (Liveness, Vec<u64>) {
        let mut a = Asm::new(0x40_0000);
        let marks = f(&mut a);
        let p = a.finish().unwrap();
        let img = Image {
            kind: ImageKind::Exec,
            entry: 0x40_0000,
            segments: vec![Segment::new(p.base, SegFlags::RX, p.bytes)],
            symbols: vec![],
        };
        let d = disassemble(&img);
        let cfg = Cfg::recover(&d, img.entry, &[]);
        (Liveness::compute(&d, &cfg), marks)
    }

    #[test]
    fn overwritten_reg_is_dead() {
        let (lv, marks) = analyze(|a| {
            a.mov_ri(Width::W64, Reg::Rax, 1);
            let site = a.here();
            // rbx is written before any read: dead at `site`.
            a.mov_ri(Width::W64, Reg::Rbx, 2);
            a.ret();
            vec![site]
        });
        let dead = lv.dead_regs_before(marks[0]);
        assert!(dead.contains(&Reg::Rbx));
        // rax escapes through ret (opaque): live.
        assert!(!dead.contains(&Reg::Rax));
    }

    #[test]
    fn flags_dead_when_rewritten_before_use() {
        let (lv, marks) = analyze(|a| {
            let site = a.here();
            // cmp writes flags before anything reads them.
            a.alu_rr(AluOp::Cmp, Width::W64, Reg::Rax, Reg::Rbx);
            a.setcc_r(redfat_x86::Cond::E, Reg::Rcx);
            a.ret();
            vec![site]
        });
        assert!(lv.flags_dead_before(marks[0]));
    }

    #[test]
    fn flags_live_when_branch_reads_them() {
        let (lv, marks) = analyze(|a| {
            a.alu_rr(AluOp::Cmp, Width::W64, Reg::Rax, Reg::Rbx);
            let site = a.here();
            a.mov_ri(Width::W64, Reg::Rcx, 0); // does not touch flags
            let l = a.label();
            a.jcc_label(redfat_x86::Cond::E, l);
            a.bind(l).unwrap();
            a.ret();
            vec![site]
        });
        assert!(!lv.flags_dead_before(marks[0]));
    }

    #[test]
    fn memory_operand_regs_are_live() {
        let (lv, marks) = analyze(|a| {
            let site = a.here();
            a.mov_rm(Width::W64, Reg::Rax, Mem::bis(Reg::Rbx, Reg::Rcx, 8, 0));
            a.ret();
            vec![site]
        });
        let dead = lv.dead_regs_before(marks[0]);
        assert!(!dead.contains(&Reg::Rbx));
        assert!(!dead.contains(&Reg::Rcx));
    }

    #[test]
    fn syscall_arguments_are_live() {
        let (lv, marks) = analyze(|a| {
            a.mov_ri(Width::W64, Reg::Rdi, 7);
            let site = a.here();
            a.mov_ri(Width::W64, Reg::Rax, 5); // print_int(rdi)
            a.syscall();
            a.mov_ri(Width::W64, Reg::Rdi, 0); // exit(0)
            a.mov_ri(Width::W64, Reg::Rax, 0);
            a.syscall();
            vec![site]
        });
        // rdi carries the print argument into the first syscall: it must
        // be live at the site even though a later instruction rewrites it.
        assert!(!lv.dead_regs_before(marks[0]).contains(&Reg::Rdi));
    }

    #[test]
    fn cmov_destination_stays_live() {
        let (lv, marks) = analyze(|a| {
            a.mov_ri(Width::W64, Reg::Rbx, 1);
            a.alu_rr(AluOp::Cmp, Width::W64, Reg::Rax, Reg::Rax);
            let site = a.here();
            // If the condition is false, rbx keeps its old value: the
            // cmov does not kill rbx's liveness.
            a.cmov_rr(redfat_x86::Cond::E, Width::W64, Reg::Rbx, Reg::Rcx);
            a.mov_rr(Width::W64, Reg::Rdi, Reg::Rbx);
            a.ret();
            vec![site]
        });
        assert!(!lv.dead_regs_before(marks[0]).contains(&Reg::Rbx));
    }

    fn inst(op: redfat_x86::Op, w: Width, operands: redfat_x86::Operands) -> redfat_x86::Inst {
        redfat_x86::Inst::new(op, w, operands)
    }

    #[test]
    fn dead_flags_killed_by_later_cmp() {
        use redfat_x86::{Op, Operands};
        // cmp ; mov ; cmp ; jcc -- the first cmp's flags are rewritten by
        // the second before the jcc reads them, with no exit in between.
        let run = [
            inst(
                Op::Alu(AluOp::Cmp),
                Width::W64,
                Operands::RR {
                    dst: Reg::Rax,
                    src: Reg::Rbx,
                },
            ),
            inst(
                Op::Mov,
                Width::W64,
                Operands::RI {
                    dst: Reg::Rcx,
                    imm: 7,
                },
            ),
            inst(
                Op::Alu(AluOp::Cmp),
                Width::W64,
                Operands::RR {
                    dst: Reg::Rcx,
                    src: Reg::Rdx,
                },
            ),
            inst(Op::Jcc(redfat_x86::Cond::E), Width::W64, Operands::Rel(0)),
        ];
        assert_eq!(dead_flags_in_run(&run), vec![true, false, false, false]);
    }

    #[test]
    fn memory_access_pins_flags_live() {
        use redfat_x86::{Op, Operands};
        // cmp ; load ; cmp -- the load may fault, which makes the first
        // cmp's flags observable at the fault boundary: not dead.
        let run = [
            inst(
                Op::Alu(AluOp::Cmp),
                Width::W64,
                Operands::RR {
                    dst: Reg::Rax,
                    src: Reg::Rbx,
                },
            ),
            inst(
                Op::Mov,
                Width::W64,
                Operands::RM {
                    dst: Reg::Rcx,
                    src: Mem::base(Reg::Rsi),
                },
            ),
            inst(
                Op::Alu(AluOp::Cmp),
                Width::W64,
                Operands::RR {
                    dst: Reg::Rcx,
                    src: Reg::Rdx,
                },
            ),
        ];
        assert_eq!(dead_flags_in_run(&run), vec![false, false, false]);
    }

    #[test]
    fn implicit_stack_traffic_counts_as_exit() {
        use redfat_x86::{Op, Operands};
        // add ; push ; cmp -- push accesses the stack (no explicit memory
        // operand), so the add's flags survive to a potential fault.
        let run = [
            inst(
                Op::Alu(AluOp::Add),
                Width::W64,
                Operands::RR {
                    dst: Reg::Rax,
                    src: Reg::Rbx,
                },
            ),
            inst(Op::Push, Width::W64, Operands::R(Reg::Rax)),
            inst(
                Op::Alu(AluOp::Cmp),
                Width::W64,
                Operands::RR {
                    dst: Reg::Rax,
                    src: Reg::Rdx,
                },
            ),
        ];
        assert_eq!(dead_flags_in_run(&run), vec![false, false, false]);
    }

    #[test]
    fn last_instruction_flags_are_always_live() {
        use redfat_x86::{Op, Operands};
        // Flags are conservatively live at the run's end: a lone add's
        // output is never dead.
        let run = [inst(
            Op::Alu(AluOp::Add),
            Width::W64,
            Operands::RR {
                dst: Reg::Rax,
                src: Reg::Rbx,
            },
        )];
        assert_eq!(dead_flags_in_run(&run), vec![false]);
    }

    #[test]
    fn flag_reader_blocks_elision() {
        use redfat_x86::{Op, Operands};
        // cmp ; setcc ; cmp -- the setcc reads the first cmp's flags.
        let run = [
            inst(
                Op::Alu(AluOp::Cmp),
                Width::W64,
                Operands::RR {
                    dst: Reg::Rax,
                    src: Reg::Rbx,
                },
            ),
            inst(
                Op::Setcc(redfat_x86::Cond::E),
                Width::W8,
                Operands::R(Reg::Rcx),
            ),
            inst(
                Op::Alu(AluOp::Cmp),
                Width::W64,
                Operands::RR {
                    dst: Reg::Rax,
                    src: Reg::Rdx,
                },
            ),
        ];
        assert_eq!(dead_flags_in_run(&run), vec![false, false, false]);
    }

    #[test]
    fn shiftcl_is_killed_but_never_kills() {
        use redfat_x86::{Op, Operands, ShiftOp};
        // shl-cl ; cmp ; jcc -- the variable shift may or may not write
        // flags (count could be zero), so its output is elidable when a
        // later must-writer kills it, but it must never itself count as
        // the killer: add ; shl-cl ; jcc keeps the add live.
        let killed = [
            inst(Op::ShiftCl(ShiftOp::Shl), Width::W64, Operands::R(Reg::Rax)),
            inst(
                Op::Alu(AluOp::Cmp),
                Width::W64,
                Operands::RR {
                    dst: Reg::Rax,
                    src: Reg::Rbx,
                },
            ),
            inst(Op::Jcc(redfat_x86::Cond::E), Width::W64, Operands::Rel(0)),
        ];
        assert_eq!(dead_flags_in_run(&killed), vec![true, false, false]);

        let not_killer = [
            inst(
                Op::Alu(AluOp::Add),
                Width::W64,
                Operands::RR {
                    dst: Reg::Rax,
                    src: Reg::Rbx,
                },
            ),
            inst(Op::ShiftCl(ShiftOp::Shl), Width::W64, Operands::R(Reg::Rcx)),
            inst(Op::Jcc(redfat_x86::Cond::E), Width::W64, Operands::Rel(0)),
        ];
        assert_eq!(dead_flags_in_run(&not_killer), vec![false, false, false]);
    }

    #[test]
    fn unknown_site_is_fully_conservative() {
        let (lv, _) = analyze(|a| {
            a.ret();
            vec![]
        });
        assert!(lv.dead_regs_before(0xDEAD).is_empty());
        assert!(!lv.flags_dead_before(0xDEAD));
    }
}
