//! Backward register and flags liveness.
//!
//! The instrumentation needs scratch registers and may destroy the flags;
//! saving and restoring them costs instructions. This analysis finds, for
//! each instrumentation site, which registers (and whether the flags) are
//! *dead* -- i.e. overwritten before any use on every path -- so the
//! trampoline generator can clobber them for free (paper §6, "additional
//! low-level optimizations").
//!
//! Conservatism: any opaque exit (indirect control flow, `ret`, calls,
//! unknown bytes) is assumed to read every register and the flags.

use crate::cfg::Cfg;
use crate::disasm::Disasm;
use std::collections::HashMap;

/// Bitmask over the 16 GPRs, plus a flags bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LiveSet {
    regs: u16,
    flags: bool,
}

impl LiveSet {
    const ALL: LiveSet = LiveSet {
        regs: u16::MAX,
        flags: true,
    };
    const NONE: LiveSet = LiveSet {
        regs: 0,
        flags: false,
    };

    fn union(self, other: LiveSet) -> LiveSet {
        LiveSet {
            regs: self.regs | other.regs,
            flags: self.flags || other.flags,
        }
    }
}

/// Per-site liveness results.
pub struct Liveness {
    /// Live-before set per instruction address.
    live_before: HashMap<u64, (u16, bool)>,
}

impl Liveness {
    /// Computes liveness over a recovered CFG.
    pub fn compute(disasm: &Disasm, cfg: &Cfg) -> Liveness {
        // Iterate blocks to a fixed point (the graph is small).
        let mut live_in: HashMap<u64, LiveSet> = HashMap::new();
        let mut changed = true;
        let mut rounds = 0usize;
        while changed && rounds < 64 {
            changed = false;
            rounds += 1;
            for (&start, block) in cfg.blocks.iter().rev() {
                let mut live = if block.opaque_exit {
                    LiveSet::ALL
                } else {
                    block
                        .succs
                        .iter()
                        .filter_map(|s| live_in.get(s).copied())
                        .fold(LiveSet::NONE, LiveSet::union)
                };
                // Successors not yet computed: be conservative.
                if !block.opaque_exit && block.succs.iter().any(|s| !live_in.contains_key(s)) {
                    live = live.union(LiveSet::ALL);
                }
                for &addr in block.insts.iter().rev() {
                    let (inst, _) = disasm.at(addr).expect("block member decoded");
                    live = transfer(inst, live);
                }
                if live_in.get(&start) != Some(&live) {
                    live_in.insert(start, live);
                    changed = true;
                }
            }
        }

        // Second pass: record live-before per instruction.
        let mut live_before = HashMap::new();
        for block in cfg.blocks.values() {
            let mut live = if block.opaque_exit {
                LiveSet::ALL
            } else {
                block
                    .succs
                    .iter()
                    .filter_map(|s| live_in.get(s).copied())
                    .fold(LiveSet::NONE, LiveSet::union)
            };
            for &addr in block.insts.iter().rev() {
                let (inst, _) = disasm.at(addr).expect("block member decoded");
                live = transfer(inst, live);
                live_before.insert(addr, (live.regs, live.flags));
            }
        }
        Liveness { live_before }
    }

    /// Registers that are dead immediately before the instruction at
    /// `addr` (safe to clobber by code inserted before it).
    pub fn dead_regs_before(&self, addr: u64) -> Vec<redfat_x86::Reg> {
        let (live, _) = self
            .live_before
            .get(&addr)
            .copied()
            .unwrap_or((u16::MAX, true));
        (0u8..16)
            .filter(|&c| live & (1 << c) == 0)
            .map(redfat_x86::Reg::from_code)
            .collect()
    }

    /// Returns `true` if the flags are dead immediately before `addr`
    /// (code inserted before it may trash them without saving).
    pub fn flags_dead_before(&self, addr: u64) -> bool {
        match self.live_before.get(&addr) {
            Some((_, flags_live)) => !*flags_live,
            None => false,
        }
    }
}

fn transfer(inst: &redfat_x86::Inst, after: LiveSet) -> LiveSet {
    let mut regs = after.regs;
    let mut flags = after.flags;
    // Kill writes first, then add reads (standard backward transfer).
    for r in inst.regs_written() {
        regs &= !(1u16 << r.code());
    }
    if inst.writes_flags() {
        flags = false;
    }
    for r in inst.regs_read() {
        regs |= 1u16 << r.code();
    }
    if inst.reads_flags() {
        flags = true;
    }
    LiveSet { regs, flags }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disasm::disassemble;
    use redfat_elf::{Image, ImageKind, SegFlags, Segment};
    use redfat_x86::{AluOp, Asm, Mem, Reg, Width};

    fn analyze(f: impl FnOnce(&mut Asm) -> Vec<u64>) -> (Liveness, Vec<u64>) {
        let mut a = Asm::new(0x40_0000);
        let marks = f(&mut a);
        let p = a.finish().unwrap();
        let img = Image {
            kind: ImageKind::Exec,
            entry: 0x40_0000,
            segments: vec![Segment::new(p.base, SegFlags::RX, p.bytes)],
            symbols: vec![],
        };
        let d = disassemble(&img);
        let cfg = Cfg::recover(&d, img.entry, &[]);
        (Liveness::compute(&d, &cfg), marks)
    }

    #[test]
    fn overwritten_reg_is_dead() {
        let (lv, marks) = analyze(|a| {
            a.mov_ri(Width::W64, Reg::Rax, 1);
            let site = a.here();
            // rbx is written before any read: dead at `site`.
            a.mov_ri(Width::W64, Reg::Rbx, 2);
            a.ret();
            vec![site]
        });
        let dead = lv.dead_regs_before(marks[0]);
        assert!(dead.contains(&Reg::Rbx));
        // rax escapes through ret (opaque): live.
        assert!(!dead.contains(&Reg::Rax));
    }

    #[test]
    fn flags_dead_when_rewritten_before_use() {
        let (lv, marks) = analyze(|a| {
            let site = a.here();
            // cmp writes flags before anything reads them.
            a.alu_rr(AluOp::Cmp, Width::W64, Reg::Rax, Reg::Rbx);
            a.setcc_r(redfat_x86::Cond::E, Reg::Rcx);
            a.ret();
            vec![site]
        });
        assert!(lv.flags_dead_before(marks[0]));
    }

    #[test]
    fn flags_live_when_branch_reads_them() {
        let (lv, marks) = analyze(|a| {
            a.alu_rr(AluOp::Cmp, Width::W64, Reg::Rax, Reg::Rbx);
            let site = a.here();
            a.mov_ri(Width::W64, Reg::Rcx, 0); // does not touch flags
            let l = a.label();
            a.jcc_label(redfat_x86::Cond::E, l);
            a.bind(l).unwrap();
            a.ret();
            vec![site]
        });
        assert!(!lv.flags_dead_before(marks[0]));
    }

    #[test]
    fn memory_operand_regs_are_live() {
        let (lv, marks) = analyze(|a| {
            let site = a.here();
            a.mov_rm(Width::W64, Reg::Rax, Mem::bis(Reg::Rbx, Reg::Rcx, 8, 0));
            a.ret();
            vec![site]
        });
        let dead = lv.dead_regs_before(marks[0]);
        assert!(!dead.contains(&Reg::Rbx));
        assert!(!dead.contains(&Reg::Rcx));
    }

    #[test]
    fn syscall_arguments_are_live() {
        let (lv, marks) = analyze(|a| {
            a.mov_ri(Width::W64, Reg::Rdi, 7);
            let site = a.here();
            a.mov_ri(Width::W64, Reg::Rax, 5); // print_int(rdi)
            a.syscall();
            a.mov_ri(Width::W64, Reg::Rdi, 0); // exit(0)
            a.mov_ri(Width::W64, Reg::Rax, 0);
            a.syscall();
            vec![site]
        });
        // rdi carries the print argument into the first syscall: it must
        // be live at the site even though a later instruction rewrites it.
        assert!(!lv.dead_regs_before(marks[0]).contains(&Reg::Rdi));
    }

    #[test]
    fn cmov_destination_stays_live() {
        let (lv, marks) = analyze(|a| {
            a.mov_ri(Width::W64, Reg::Rbx, 1);
            a.alu_rr(AluOp::Cmp, Width::W64, Reg::Rax, Reg::Rax);
            let site = a.here();
            // If the condition is false, rbx keeps its old value: the
            // cmov does not kill rbx's liveness.
            a.cmov_rr(redfat_x86::Cond::E, Width::W64, Reg::Rbx, Reg::Rcx);
            a.mov_rr(Width::W64, Reg::Rdi, Reg::Rbx);
            a.ret();
            vec![site]
        });
        assert!(!lv.dead_regs_before(marks[0]).contains(&Reg::Rbx));
    }

    #[test]
    fn unknown_site_is_fully_conservative() {
        let (lv, _) = analyze(|a| {
            a.ret();
            vec![]
        });
        assert!(lv.dead_regs_before(0xDEAD).is_empty());
        assert!(!lv.flags_dead_before(0xDEAD));
    }
}
