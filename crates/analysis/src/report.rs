//! Structured per-site analysis reporting: what each memory-access site
//! is classified as, by which pass, and why. Backs the `redfat analyze`
//! CLI subcommand and the paper-style ablation accounting.

use crate::callgraph::CallGraph;
use crate::cfg::Cfg;
use crate::disasm::{disassemble, Disasm};
use crate::elim::can_reach_heap;
use crate::provenance::{AbsVal, Provenance};
use crate::redundant::RedundantChecks;
use crate::summary::Summaries;
use redfat_elf::Image;
use redfat_x86::Reg;
use std::fmt;

/// Why a site does or does not carry a full check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteVerdict {
    /// Full Redzone + LowFat check required.
    Checked,
    /// Eliminated by the syntactic rule (`rsp`/`rip`/absolute base, no
    /// index).
    EliminatedSyntactic,
    /// Eliminated by flow-sensitive provenance: the abstract address
    /// span provably avoids the heap.
    EliminatedFlow,
    /// Eliminated only with interprocedural call summaries: the
    /// intraprocedural provenance cannot prove the span heap-free, but
    /// with callee effects applied at call sites it can.
    EliminatedInterproc,
    /// Full check downgraded to redzone-only: subsumed by the
    /// dominating check at `root`.
    Redundant {
        /// The dominating site whose full check subsumes this one.
        root: u64,
    },
}

impl fmt::Display for SiteVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SiteVerdict::Checked => write!(f, "checked"),
            SiteVerdict::EliminatedSyntactic => write!(f, "elim:syntactic"),
            SiteVerdict::EliminatedFlow => write!(f, "elim:flow"),
            SiteVerdict::EliminatedInterproc => write!(f, "elim:interproc"),
            SiteVerdict::Redundant { root } => write!(f, "redundant(root={root:#x})"),
        }
    }
}

/// Classification of one memory-access site.
#[derive(Debug, Clone)]
pub struct SiteReport {
    /// Instruction address.
    pub addr: u64,
    /// Entry address of the recovered function owning the site, when
    /// the site lies inside a recovered block (nearest function entry
    /// at or below the address).
    pub func: Option<u64>,
    /// Disassembly text.
    pub inst: String,
    /// Bytes accessed.
    pub len: u8,
    /// Whether the instruction writes memory.
    pub is_write: bool,
    /// The classification.
    pub verdict: SiteVerdict,
    /// Human-readable abstract address span at the site.
    pub span: String,
}

/// Whole-image analysis summary.
pub struct AnalysisReport {
    /// Per-site classifications, in address order.
    pub sites: Vec<SiteReport>,
    /// Number of recovered basic blocks.
    pub blocks: usize,
    /// Number of decoded instructions.
    pub insts: usize,
    /// Number of unknown-entry roots the dataflow was seeded with.
    pub roots: usize,
    /// Whether interprocedural summaries were applied.
    pub interproc: bool,
}

impl AnalysisReport {
    /// Count of sites with the given verdict kind.
    pub fn count(&self, f: impl Fn(&SiteVerdict) -> bool) -> usize {
        self.sites.iter().filter(|s| f(&s.verdict)).count()
    }

    /// Sites still carrying a full check.
    pub fn checked(&self) -> usize {
        self.count(|v| matches!(v, SiteVerdict::Checked))
    }

    /// Sites eliminated by the syntactic rule.
    pub fn eliminated_syntactic(&self) -> usize {
        self.count(|v| matches!(v, SiteVerdict::EliminatedSyntactic))
    }

    /// Sites additionally eliminated by provenance flow analysis.
    pub fn eliminated_flow(&self) -> usize {
        self.count(|v| matches!(v, SiteVerdict::EliminatedFlow))
    }

    /// Sites eliminated only with interprocedural summaries.
    pub fn eliminated_interproc(&self) -> usize {
        self.count(|v| matches!(v, SiteVerdict::EliminatedInterproc))
    }

    /// Sites downgraded to redzone-only by the redundant pass.
    pub fn redundant(&self) -> usize {
        self.count(|v| matches!(v, SiteVerdict::Redundant { .. }))
    }
}

/// Knobs for [`analyze_image_opts`].
#[derive(Debug, Clone, Copy, Default)]
pub struct AnalyzeOptions {
    /// Worker threads for per-component sharding; `0` analyzes the
    /// whole image on the calling thread.
    pub threads: usize,
    /// Apply interprocedural function summaries at call sites.
    pub interproc: bool,
}

/// Runs the full static-analysis stack over an image -- disassembly, CFG
/// recovery, provenance, redundant-check elimination -- and classifies
/// every memory-access site the way the instrumentation pipeline would
/// under its most aggressive configuration (`instrument_reads = true`).
pub fn analyze_image(image: &Image) -> AnalysisReport {
    analyze_image_opts(image, AnalyzeOptions::default())
}

/// [`analyze_image`] with the per-component analyses sharded across
/// `threads` worker threads. The report is identical to the serial one
/// at any thread count (see [`Cfg::components`]).
pub fn analyze_image_threaded(image: &Image, threads: usize) -> AnalysisReport {
    analyze_image_opts(
        image,
        AnalyzeOptions {
            threads,
            interproc: false,
        },
    )
}

/// [`analyze_image`] with explicit [`AnalyzeOptions`].
pub fn analyze_image_opts(image: &Image, opts: AnalyzeOptions) -> AnalysisReport {
    let disasm = disassemble(image);
    let cfg = Cfg::recover(&disasm, image.entry, &[]);
    analyze_opts(&disasm, &cfg, image.entry, opts)
}

/// [`analyze_image`] over pre-computed disassembly and CFG.
pub fn analyze(disasm: &Disasm, cfg: &Cfg, entry: u64) -> AnalysisReport {
    analyze_opts(disasm, cfg, entry, AnalyzeOptions::default())
}

/// [`analyze`] sharded by weakly-connected CFG component across
/// `threads` worker threads (see [`analyze_opts`]).
pub fn analyze_threaded(disasm: &Disasm, cfg: &Cfg, entry: u64, threads: usize) -> AnalysisReport {
    analyze_opts(
        disasm,
        cfg,
        entry,
        AnalyzeOptions {
            threads,
            interproc: false,
        },
    )
}

/// The analysis core behind every `analyze*` entry point.
///
/// With `threads > 0` the per-component analyses are sharded across
/// worker threads. Each component carries the full image-wide
/// unknown-entry root set, so per-shard provenance and redundant-check
/// results are exactly the whole-image results restricted to that
/// component; the merged report is identical to the serial one at any
/// thread count. Interprocedural summaries are computed *globally*
/// (call edges cross component boundaries by construction) and handed
/// to every shard, which preserves the same property.
pub fn analyze_opts(
    disasm: &Disasm,
    cfg: &Cfg,
    entry: u64,
    opts: AnalyzeOptions,
) -> AnalysisReport {
    let roots = crate::dataflow::unknown_entries(disasm, cfg, entry);

    // Function attribution always wants the call graph; summaries only
    // when the interprocedural pass is on.
    let (graph, effects, masks) = if opts.interproc {
        let sums = Summaries::compute(disasm, cfg, &roots);
        let effects = sums.call_effects();
        let masks = sums.pure_write_masks();
        (sums.graph, Some(effects), Some(masks))
    } else {
        (CallGraph::build(disasm, cfg), None, None)
    };

    let analyze_shard = |sub: &Cfg| -> Vec<SiteReport> {
        let prov = match &effects {
            Some(e) => Provenance::compute_with_roots_and_effects(disasm, sub, &roots, e.clone()),
            None => Provenance::compute_with_roots(disasm, sub, &roots),
        };
        // The plain analysis, for attributing an elimination to the
        // interprocedural tier. Only needed when effects are applied:
        // without them `prov` *is* the plain analysis.
        let prov_base = effects
            .as_ref()
            .map(|_| Provenance::compute_with_roots(disasm, sub, &roots));
        let needs_full = |addr: u64, inst: &redfat_x86::Inst| -> bool {
            let Some(mem) = inst.memory_access() else {
                return false;
            };
            can_reach_heap(&mem) && prov.site_can_reach_heap(disasm, sub, addr, inst)
        };
        let redundant = match &masks {
            Some(m) => RedundantChecks::compute_with_roots_and_masks(
                disasm,
                sub,
                &roots,
                needs_full,
                m.clone(),
            ),
            None => RedundantChecks::compute_with_roots(disasm, sub, &roots, needs_full),
        };
        let mut sites = Vec::new();
        for block in sub.blocks.values() {
            for &addr in &block.insts {
                let (inst, _) = disasm.at(addr).expect("block member decoded");
                sites.extend(classify_site(
                    disasm,
                    sub,
                    &graph,
                    &prov,
                    prov_base.as_ref(),
                    &redundant,
                    addr,
                    inst,
                ));
            }
        }
        sites
    };

    let mut sites: Vec<SiteReport> = if opts.threads == 0 {
        analyze_shard(cfg)
    } else {
        redfat_parallel::parallel_map(cfg.components(), opts.threads, |sub| analyze_shard(sub))
            .into_iter()
            .flatten()
            .collect()
    };

    // Instructions outside every recovered block never acquire dataflow
    // facts, so their conservative classification needs no analysis:
    // syntactic elimination still applies, everything else stays checked
    // with an "unreached" span (exactly what the whole-image provenance
    // reports for them).
    let mut insts = 0usize;
    for (addr, inst, _) in disasm.iter() {
        insts += 1;
        if cfg.block_of(addr).is_some() {
            continue;
        }
        let Some(mem) = inst.memory_access() else {
            continue;
        };
        sites.push(SiteReport {
            addr,
            func: None,
            inst: inst.to_string(),
            len: inst.access_len().unwrap_or(8),
            is_write: inst.writes_memory(),
            verdict: if !can_reach_heap(&mem) {
                SiteVerdict::EliminatedSyntactic
            } else {
                SiteVerdict::Checked
            },
            span: "unreached".to_string(),
        });
    }
    sites.sort_by_key(|s| s.addr);

    AnalysisReport {
        sites,
        blocks: cfg.blocks.len(),
        insts,
        roots: roots.iter().filter(|r| cfg.blocks.contains_key(r)).count(),
        interproc: opts.interproc,
    }
}

/// Classifies one memory-access site given its component's analyses.
#[allow(clippy::too_many_arguments)]
fn classify_site(
    disasm: &Disasm,
    cfg: &Cfg,
    graph: &CallGraph,
    prov: &Provenance,
    prov_base: Option<&Provenance>,
    redundant: &RedundantChecks,
    addr: u64,
    inst: &redfat_x86::Inst,
) -> Option<SiteReport> {
    let mem = inst.memory_access()?;
    let verdict = if !can_reach_heap(&mem) {
        SiteVerdict::EliminatedSyntactic
    } else if !prov.site_can_reach_heap(disasm, cfg, addr, inst) {
        match prov_base {
            // The plain analysis could not prove it: the elimination is
            // the interprocedural tier's.
            Some(base) if base.site_can_reach_heap(disasm, cfg, addr, inst) => {
                SiteVerdict::EliminatedInterproc
            }
            _ => SiteVerdict::EliminatedFlow,
        }
    } else if let Some(root) = redundant.root_of(addr) {
        SiteVerdict::Redundant { root }
    } else {
        SiteVerdict::Checked
    };
    Some(SiteReport {
        addr,
        func: graph.owner_of_addr(addr),
        inst: inst.to_string(),
        len: inst.access_len().unwrap_or(8),
        is_write: inst.writes_memory(),
        verdict,
        span: prov.describe_span(disasm, cfg, addr, inst),
    })
}

/// Renders the report as the `redfat analyze` text output.
pub fn render(report: &AnalysisReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} instructions, {} blocks, {} dataflow roots{}",
        report.insts,
        report.blocks,
        report.roots,
        if report.interproc {
            " (interprocedural summaries applied)"
        } else {
            ""
        }
    );
    let _ = writeln!(
        out,
        "{} access sites: {} checked, {} elim:syntactic, {} elim:flow, {} elim:interproc, {} redundant",
        report.sites.len(),
        report.checked(),
        report.eliminated_syntactic(),
        report.eliminated_flow(),
        report.eliminated_interproc(),
        report.redundant()
    );
    for s in &report.sites {
        let rw = if s.is_write { "W" } else { "R" };
        let func = s
            .func
            .map_or_else(|| "-".to_string(), |f| format!("{f:#x}"));
        let _ = writeln!(
            out,
            "{:#10x}  {rw}{}  {:<24} {:<24} fn={func:<10} {}",
            s.addr,
            s.len,
            s.verdict.to_string(),
            s.span,
            s.inst
        );
    }
    out
}

fn describe_absval(v: AbsVal) -> String {
    match v {
        AbsVal::Top => "⊤".to_string(),
        AbsVal::Interval { lo, hi } if lo == hi => format!("{lo:#x}"),
        AbsVal::Interval { lo, hi } => format!("[{lo:#x},{hi:#x}]"),
    }
}

/// Renders the recovered call graph with per-function site and summary
/// counts (the `redfat analyze --callgraph` text output).
pub fn render_callgraph(sums: &Summaries) -> String {
    use std::fmt::Write as _;
    let g = &sums.graph;
    let direct = g
        .sites
        .iter()
        .filter(|s| s.callee.is_some() && !s.tail)
        .count();
    let tail = g.sites.iter().filter(|s| s.tail).count();
    let indirect = g.sites.iter().filter(|s| s.callee.is_none()).count();
    let summarized = sums.iter().filter(|s| s.closed).count();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "call graph: {} functions ({} summarized), {} call sites ({} direct, {} tail, {} indirect)",
        g.entries.len(),
        summarized,
        g.sites.len(),
        direct,
        tail,
        indirect
    );
    for &entry in &g.entries {
        let blocks = g.body[&entry].len();
        let nsites = g.sites.iter().filter(|s| s.caller == entry).count();
        let desc = match sums.get(entry) {
            Some(s) if s.closed => format!(
                "closed{} may_write={:#06x} ret rax∈{}",
                if s.heap_pure { " heap-pure" } else { "" },
                s.may_write,
                describe_absval(s.at_return.get(Reg::Rax))
            ),
            _ => "⊤ (not summarized)".to_string(),
        };
        let _ = writeln!(
            out,
            "fn {entry:#x}: {blocks} blocks, {nsites} call sites -- {desc}"
        );
        for site in g.sites.iter().filter(|s| s.caller == entry) {
            let target = match site.callee {
                Some(t) => format!("{t:#x}"),
                None => "⊤ (indirect)".to_string(),
            };
            let kind = if site.tail { "tail" } else { "call" };
            let _ = writeln!(out, "  {:#x}: {kind} -> {target}", site.addr);
        }
    }
    let sccs: Vec<String> = g
        .sccs_bottom_up()
        .iter()
        .map(|scc| {
            let members: Vec<String> = scc.iter().map(|e| format!("{e:#x}")).collect();
            let tag = if g.is_recursive(scc) { "*" } else { "" };
            format!("[{}]{tag}", members.join(" "))
        })
        .collect();
    let _ = writeln!(out, "sccs bottom-up (* = recursive): {}", sccs.join(" "));
    out
}

/// Renders the call graph in Graphviz DOT form.
pub fn render_callgraph_dot(sums: &Summaries) -> String {
    use std::fmt::Write as _;
    let g = &sums.graph;
    let mut out = String::new();
    let _ = writeln!(out, "digraph callgraph {{");
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
    for &entry in &g.entries {
        let style = match sums.get(entry) {
            Some(s) if s.closed && s.heap_pure => ", style=filled, fillcolor=palegreen",
            Some(s) if s.closed => ", style=filled, fillcolor=lightyellow",
            _ => "",
        };
        let _ = writeln!(
            out,
            "  \"{entry:#x}\" [label=\"{entry:#x}\\n{} blocks\"{style}];",
            g.body[&entry].len()
        );
    }
    let mut has_indirect = false;
    for site in &g.sites {
        match site.callee {
            Some(t) => {
                let style = if site.tail {
                    " [style=dashed, label=\"tail\"]"
                } else {
                    ""
                };
                let _ = writeln!(out, "  \"{:#x}\" -> \"{t:#x}\"{style};", site.caller);
            }
            None => {
                has_indirect = true;
                let _ = writeln!(out, "  \"{:#x}\" -> \"⊤\";", site.caller);
            }
        }
    }
    if has_indirect {
        let _ = writeln!(out, "  \"⊤\" [shape=doublecircle];");
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "fn weigh(x) {
            var t = malloc(4 * 8);
            for (var i = 0; i < 4; i = i + 1) { t[i] = x * i; }
            var s = 0;
            for (var i = 0; i < 4; i = i + 1) { s = s + t[i]; }
            free(t);
            return s;
        }
        fn main() {
            var a = malloc(16 * 8);
            var s = 0;
            for (var i = 0; i < 16; i = i + 1) { a[i] = weigh(i); }
            for (var i = 0; i < 16; i = i + 1) { s = s + a[i]; }
            print(s);
            free(a);
            return 0;
        }";

    #[test]
    fn threaded_analysis_matches_serial() {
        let image = redfat_minic::compile(SRC).unwrap();
        let serial = analyze_image(&image);
        assert!(!serial.sites.is_empty());
        for threads in [1usize, 2, 8] {
            let par = analyze_image_threaded(&image, threads);
            assert_eq!(
                render(&serial),
                render(&par),
                "report differs at {threads} threads"
            );
            assert_eq!(serial.insts, par.insts);
            assert_eq!(serial.blocks, par.blocks);
            assert_eq!(serial.roots, par.roots);
        }
    }

    #[test]
    fn threaded_interproc_matches_serial() {
        let image = redfat_minic::compile(SRC).unwrap();
        let opts = |threads| AnalyzeOptions {
            threads,
            interproc: true,
        };
        let serial = analyze_image_opts(&image, opts(0));
        for threads in [1usize, 2, 8] {
            let par = analyze_image_opts(&image, opts(threads));
            assert_eq!(
                render(&serial),
                render(&par),
                "interproc report differs at {threads} threads"
            );
        }
    }

    #[test]
    fn sites_carry_function_attribution() {
        let image = redfat_minic::compile(SRC).unwrap();
        let report = analyze_image(&image);
        // Every in-block site is attributed to some recovered function.
        assert!(report.sites.iter().all(|s| s.func.is_some()));
        // More than one function exists, and sites spread across them.
        let funcs: std::collections::BTreeSet<u64> =
            report.sites.iter().filter_map(|s| s.func).collect();
        assert!(funcs.len() >= 2, "weigh and main both have sites");
    }

    #[test]
    fn callgraph_render_smoke() {
        let image = redfat_minic::compile(SRC).unwrap();
        let disasm = disassemble(&image);
        let cfg = Cfg::recover(&disasm, image.entry, &[]);
        let roots = crate::dataflow::unknown_entries(&disasm, &cfg, image.entry);
        let sums = Summaries::compute(&disasm, &cfg, &roots);
        let text = render_callgraph(&sums);
        assert!(text.contains("call graph:"));
        assert!(text.contains("sccs bottom-up"));
        let dot = render_callgraph_dot(&sums);
        assert!(dot.starts_with("digraph callgraph {"));
        assert!(dot.trim_end().ends_with('}'));
    }
}
