//! Structured per-site analysis reporting: what each memory-access site
//! is classified as, by which pass, and why. Backs the `redfat analyze`
//! CLI subcommand and the paper-style ablation accounting.

use crate::cfg::Cfg;
use crate::disasm::{disassemble, Disasm};
use crate::elim::can_reach_heap;
use crate::provenance::Provenance;
use crate::redundant::RedundantChecks;
use redfat_elf::Image;
use std::fmt;

/// Why a site does or does not carry a full check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteVerdict {
    /// Full Redzone + LowFat check required.
    Checked,
    /// Eliminated by the syntactic rule (`rsp`/`rip`/absolute base, no
    /// index).
    EliminatedSyntactic,
    /// Eliminated by flow-sensitive provenance: the abstract address
    /// span provably avoids the heap.
    EliminatedFlow,
    /// Full check downgraded to redzone-only: subsumed by the
    /// dominating check at `root`.
    Redundant {
        /// The dominating site whose full check subsumes this one.
        root: u64,
    },
}

impl fmt::Display for SiteVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SiteVerdict::Checked => write!(f, "checked"),
            SiteVerdict::EliminatedSyntactic => write!(f, "elim:syntactic"),
            SiteVerdict::EliminatedFlow => write!(f, "elim:flow"),
            SiteVerdict::Redundant { root } => write!(f, "redundant(root={root:#x})"),
        }
    }
}

/// Classification of one memory-access site.
#[derive(Debug, Clone)]
pub struct SiteReport {
    /// Instruction address.
    pub addr: u64,
    /// Disassembly text.
    pub inst: String,
    /// Bytes accessed.
    pub len: u8,
    /// Whether the instruction writes memory.
    pub is_write: bool,
    /// The classification.
    pub verdict: SiteVerdict,
    /// Human-readable abstract address span at the site.
    pub span: String,
}

/// Whole-image analysis summary.
pub struct AnalysisReport {
    /// Per-site classifications, in address order.
    pub sites: Vec<SiteReport>,
    /// Number of recovered basic blocks.
    pub blocks: usize,
    /// Number of decoded instructions.
    pub insts: usize,
    /// Number of unknown-entry roots the dataflow was seeded with.
    pub roots: usize,
}

impl AnalysisReport {
    /// Count of sites with the given verdict kind.
    pub fn count(&self, f: impl Fn(&SiteVerdict) -> bool) -> usize {
        self.sites.iter().filter(|s| f(&s.verdict)).count()
    }

    /// Sites still carrying a full check.
    pub fn checked(&self) -> usize {
        self.count(|v| matches!(v, SiteVerdict::Checked))
    }

    /// Sites eliminated by the syntactic rule.
    pub fn eliminated_syntactic(&self) -> usize {
        self.count(|v| matches!(v, SiteVerdict::EliminatedSyntactic))
    }

    /// Sites additionally eliminated by provenance flow analysis.
    pub fn eliminated_flow(&self) -> usize {
        self.count(|v| matches!(v, SiteVerdict::EliminatedFlow))
    }

    /// Sites downgraded to redzone-only by the redundant pass.
    pub fn redundant(&self) -> usize {
        self.count(|v| matches!(v, SiteVerdict::Redundant { .. }))
    }
}

/// Runs the full static-analysis stack over an image -- disassembly, CFG
/// recovery, provenance, redundant-check elimination -- and classifies
/// every memory-access site the way the instrumentation pipeline would
/// under its most aggressive configuration (`instrument_reads = true`).
pub fn analyze_image(image: &Image) -> AnalysisReport {
    let disasm = disassemble(image);
    let cfg = Cfg::recover(&disasm, image.entry, &[]);
    analyze(&disasm, &cfg, image.entry)
}

/// [`analyze_image`] with the per-component analyses sharded across
/// `threads` worker threads. The report is identical to the serial one
/// at any thread count (see [`Cfg::components`]).
pub fn analyze_image_threaded(image: &Image, threads: usize) -> AnalysisReport {
    let disasm = disassemble(image);
    let cfg = Cfg::recover(&disasm, image.entry, &[]);
    analyze_threaded(&disasm, &cfg, image.entry, threads)
}

/// [`analyze_image`] over pre-computed disassembly and CFG.
pub fn analyze(disasm: &Disasm, cfg: &Cfg, entry: u64) -> AnalysisReport {
    let prov = Provenance::compute(disasm, cfg, entry);
    // Sites that still need a full check after both elimination rules.
    let needs_full = |addr: u64, inst: &redfat_x86::Inst| -> bool {
        let Some(mem) = inst.memory_access() else {
            return false;
        };
        can_reach_heap(&mem) && prov.site_can_reach_heap(disasm, cfg, addr, inst)
    };
    let redundant = RedundantChecks::compute(disasm, cfg, entry, needs_full);

    let mut sites = Vec::new();
    let mut insts = 0usize;
    for (addr, inst, _) in disasm.iter() {
        insts += 1;
        let Some(mem) = inst.memory_access() else {
            continue;
        };
        let verdict = if !can_reach_heap(&mem) {
            SiteVerdict::EliminatedSyntactic
        } else if !prov.site_can_reach_heap(disasm, cfg, addr, inst) {
            SiteVerdict::EliminatedFlow
        } else if let Some(root) = redundant.root_of(addr) {
            SiteVerdict::Redundant { root }
        } else {
            SiteVerdict::Checked
        };
        sites.push(SiteReport {
            addr,
            inst: inst.to_string(),
            len: inst.access_len().unwrap_or(8),
            is_write: inst.writes_memory(),
            verdict,
            span: prov.describe_span(disasm, cfg, addr, inst),
        });
    }

    AnalysisReport {
        sites,
        blocks: cfg.blocks.len(),
        insts,
        roots: prov.roots().len(),
    }
}

/// Classifies one memory-access site given its component's analyses.
fn classify_site(
    disasm: &Disasm,
    cfg: &Cfg,
    prov: &Provenance,
    redundant: &RedundantChecks,
    addr: u64,
    inst: &redfat_x86::Inst,
) -> Option<SiteReport> {
    let mem = inst.memory_access()?;
    let verdict = if !can_reach_heap(&mem) {
        SiteVerdict::EliminatedSyntactic
    } else if !prov.site_can_reach_heap(disasm, cfg, addr, inst) {
        SiteVerdict::EliminatedFlow
    } else if let Some(root) = redundant.root_of(addr) {
        SiteVerdict::Redundant { root }
    } else {
        SiteVerdict::Checked
    };
    Some(SiteReport {
        addr,
        inst: inst.to_string(),
        len: inst.access_len().unwrap_or(8),
        is_write: inst.writes_memory(),
        verdict,
        span: prov.describe_span(disasm, cfg, addr, inst),
    })
}

/// [`analyze`] sharded by weakly-connected CFG component across
/// `threads` worker threads.
///
/// Each component carries the full image-wide unknown-entry root set, so
/// per-shard provenance and redundant-check results are exactly the
/// whole-image results restricted to that component; sites outside every
/// recovered block have no dataflow facts under either strategy. The
/// merged report is therefore identical to the serial one.
pub fn analyze_threaded(disasm: &Disasm, cfg: &Cfg, entry: u64, threads: usize) -> AnalysisReport {
    let roots = crate::dataflow::unknown_entries(disasm, cfg, entry);
    let shard_sites = redfat_parallel::parallel_map(cfg.components(), threads, |sub| {
        let prov = Provenance::compute_with_roots(disasm, sub, &roots);
        let needs_full = |addr: u64, inst: &redfat_x86::Inst| -> bool {
            let Some(mem) = inst.memory_access() else {
                return false;
            };
            can_reach_heap(&mem) && prov.site_can_reach_heap(disasm, sub, addr, inst)
        };
        let redundant = RedundantChecks::compute_with_roots(disasm, sub, &roots, needs_full);
        let mut sites = Vec::new();
        for block in sub.blocks.values() {
            for &addr in &block.insts {
                let (inst, _) = disasm.at(addr).expect("block member decoded");
                sites.extend(classify_site(disasm, sub, &prov, &redundant, addr, inst));
            }
        }
        sites
    });
    let mut sites: Vec<SiteReport> = shard_sites.into_iter().flatten().collect();

    // Instructions outside every recovered block never acquire dataflow
    // facts, so their conservative classification needs no analysis:
    // syntactic elimination still applies, everything else stays checked
    // with an "unreached" span (exactly what the whole-image provenance
    // reports for them).
    let mut insts = 0usize;
    for (addr, inst, _) in disasm.iter() {
        insts += 1;
        if cfg.block_of(addr).is_some() {
            continue;
        }
        let Some(mem) = inst.memory_access() else {
            continue;
        };
        sites.push(SiteReport {
            addr,
            inst: inst.to_string(),
            len: inst.access_len().unwrap_or(8),
            is_write: inst.writes_memory(),
            verdict: if !can_reach_heap(&mem) {
                SiteVerdict::EliminatedSyntactic
            } else {
                SiteVerdict::Checked
            },
            span: "unreached".to_string(),
        });
    }
    sites.sort_by_key(|s| s.addr);

    AnalysisReport {
        sites,
        blocks: cfg.blocks.len(),
        insts,
        roots: roots.iter().filter(|r| cfg.blocks.contains_key(r)).count(),
    }
}

/// Renders the report as the `redfat analyze` text output.
pub fn render(report: &AnalysisReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} instructions, {} blocks, {} dataflow roots",
        report.insts, report.blocks, report.roots
    );
    let _ = writeln!(
        out,
        "{} access sites: {} checked, {} elim:syntactic, {} elim:flow, {} redundant",
        report.sites.len(),
        report.checked(),
        report.eliminated_syntactic(),
        report.eliminated_flow(),
        report.redundant()
    );
    for s in &report.sites {
        let rw = if s.is_write { "W" } else { "R" };
        let _ = writeln!(
            out,
            "{:#10x}  {rw}{}  {:<24} {:<24} {}",
            s.addr,
            s.len,
            s.verdict.to_string(),
            s.span,
            s.inst
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threaded_analysis_matches_serial() {
        let src = "fn weigh(x) {
            var t = malloc(4 * 8);
            for (var i = 0; i < 4; i = i + 1) { t[i] = x * i; }
            var s = 0;
            for (var i = 0; i < 4; i = i + 1) { s = s + t[i]; }
            free(t);
            return s;
        }
        fn main() {
            var a = malloc(16 * 8);
            var s = 0;
            for (var i = 0; i < 16; i = i + 1) { a[i] = weigh(i); }
            for (var i = 0; i < 16; i = i + 1) { s = s + a[i]; }
            print(s);
            free(a);
            return 0;
        }";
        let image = redfat_minic::compile(src).unwrap();
        let serial = analyze_image(&image);
        assert!(!serial.sites.is_empty());
        for threads in [1usize, 2, 8] {
            let par = analyze_image_threaded(&image, threads);
            assert_eq!(
                render(&serial),
                render(&par),
                "report differs at {threads} threads"
            );
            assert_eq!(serial.insts, par.insts);
            assert_eq!(serial.blocks, par.blocks);
            assert_eq!(serial.roots, par.roots);
        }
    }
}
