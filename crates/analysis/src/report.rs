//! Structured per-site analysis reporting: what each memory-access site
//! is classified as, by which pass, and why. Backs the `redfat analyze`
//! CLI subcommand and the paper-style ablation accounting.

use crate::cfg::Cfg;
use crate::disasm::{disassemble, Disasm};
use crate::elim::can_reach_heap;
use crate::provenance::Provenance;
use crate::redundant::RedundantChecks;
use redfat_elf::Image;
use std::fmt;

/// Why a site does or does not carry a full check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteVerdict {
    /// Full Redzone + LowFat check required.
    Checked,
    /// Eliminated by the syntactic rule (`rsp`/`rip`/absolute base, no
    /// index).
    EliminatedSyntactic,
    /// Eliminated by flow-sensitive provenance: the abstract address
    /// span provably avoids the heap.
    EliminatedFlow,
    /// Full check downgraded to redzone-only: subsumed by the
    /// dominating check at `root`.
    Redundant {
        /// The dominating site whose full check subsumes this one.
        root: u64,
    },
}

impl fmt::Display for SiteVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SiteVerdict::Checked => write!(f, "checked"),
            SiteVerdict::EliminatedSyntactic => write!(f, "elim:syntactic"),
            SiteVerdict::EliminatedFlow => write!(f, "elim:flow"),
            SiteVerdict::Redundant { root } => write!(f, "redundant(root={root:#x})"),
        }
    }
}

/// Classification of one memory-access site.
#[derive(Debug, Clone)]
pub struct SiteReport {
    /// Instruction address.
    pub addr: u64,
    /// Disassembly text.
    pub inst: String,
    /// Bytes accessed.
    pub len: u8,
    /// Whether the instruction writes memory.
    pub is_write: bool,
    /// The classification.
    pub verdict: SiteVerdict,
    /// Human-readable abstract address span at the site.
    pub span: String,
}

/// Whole-image analysis summary.
pub struct AnalysisReport {
    /// Per-site classifications, in address order.
    pub sites: Vec<SiteReport>,
    /// Number of recovered basic blocks.
    pub blocks: usize,
    /// Number of decoded instructions.
    pub insts: usize,
    /// Number of unknown-entry roots the dataflow was seeded with.
    pub roots: usize,
}

impl AnalysisReport {
    /// Count of sites with the given verdict kind.
    pub fn count(&self, f: impl Fn(&SiteVerdict) -> bool) -> usize {
        self.sites.iter().filter(|s| f(&s.verdict)).count()
    }

    /// Sites still carrying a full check.
    pub fn checked(&self) -> usize {
        self.count(|v| matches!(v, SiteVerdict::Checked))
    }

    /// Sites eliminated by the syntactic rule.
    pub fn eliminated_syntactic(&self) -> usize {
        self.count(|v| matches!(v, SiteVerdict::EliminatedSyntactic))
    }

    /// Sites additionally eliminated by provenance flow analysis.
    pub fn eliminated_flow(&self) -> usize {
        self.count(|v| matches!(v, SiteVerdict::EliminatedFlow))
    }

    /// Sites downgraded to redzone-only by the redundant pass.
    pub fn redundant(&self) -> usize {
        self.count(|v| matches!(v, SiteVerdict::Redundant { .. }))
    }
}

/// Runs the full static-analysis stack over an image -- disassembly, CFG
/// recovery, provenance, redundant-check elimination -- and classifies
/// every memory-access site the way the instrumentation pipeline would
/// under its most aggressive configuration (`instrument_reads = true`).
pub fn analyze_image(image: &Image) -> AnalysisReport {
    let disasm = disassemble(image);
    let cfg = Cfg::recover(&disasm, image.entry, &[]);
    analyze(&disasm, &cfg, image.entry)
}

/// [`analyze_image`] over pre-computed disassembly and CFG.
pub fn analyze(disasm: &Disasm, cfg: &Cfg, entry: u64) -> AnalysisReport {
    let prov = Provenance::compute(disasm, cfg, entry);
    // Sites that still need a full check after both elimination rules.
    let needs_full = |addr: u64, inst: &redfat_x86::Inst| -> bool {
        let Some(mem) = inst.memory_access() else {
            return false;
        };
        can_reach_heap(&mem) && prov.site_can_reach_heap(disasm, cfg, addr, inst)
    };
    let redundant = RedundantChecks::compute(disasm, cfg, entry, needs_full);

    let mut sites = Vec::new();
    let mut insts = 0usize;
    for (addr, inst, _) in disasm.iter() {
        insts += 1;
        let Some(mem) = inst.memory_access() else {
            continue;
        };
        let verdict = if !can_reach_heap(&mem) {
            SiteVerdict::EliminatedSyntactic
        } else if !prov.site_can_reach_heap(disasm, cfg, addr, inst) {
            SiteVerdict::EliminatedFlow
        } else if let Some(root) = redundant.root_of(addr) {
            SiteVerdict::Redundant { root }
        } else {
            SiteVerdict::Checked
        };
        sites.push(SiteReport {
            addr,
            inst: inst.to_string(),
            len: inst.access_len().unwrap_or(8),
            is_write: inst.writes_memory(),
            verdict,
            span: prov.describe_span(disasm, cfg, addr, inst),
        });
    }

    AnalysisReport {
        sites,
        blocks: cfg.blocks.len(),
        insts,
        roots: prov.roots().len(),
    }
}

/// Renders the report as the `redfat analyze` text output.
pub fn render(report: &AnalysisReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} instructions, {} blocks, {} dataflow roots",
        report.insts, report.blocks, report.roots
    );
    let _ = writeln!(
        out,
        "{} access sites: {} checked, {} elim:syntactic, {} elim:flow, {} redundant",
        report.sites.len(),
        report.checked(),
        report.eliminated_syntactic(),
        report.eliminated_flow(),
        report.redundant()
    );
    for s in &report.sites {
        let rw = if s.is_write { "W" } else { "R" };
        let _ = writeln!(
            out,
            "{:#10x}  {rw}{}  {:<24} {:<24} {}",
            s.addr,
            s.len,
            s.verdict.to_string(),
            s.span,
            s.inst
        );
    }
    out
}
