//! Dominator tree over the recovered [`Cfg`].
//!
//! Computed with the Cooper–Harvey–Kennedy iterative algorithm on the
//! reverse-postorder numbering. Because a binary's CFG has *several*
//! entry points (image entry, call targets, unknown-entry blocks), the
//! tree is rooted at a virtual super-root with an edge to every unknown
//! entry; "A dominates B" below therefore means "every path from *any*
//! unknown entry to B passes through A", which is exactly the property
//! redundant-check elimination needs.

use crate::cfg::Cfg;
use std::collections::{BTreeSet, HashMap};

/// Index of the virtual super-root in the internal numbering.
const VROOT: usize = 0;

/// The dominator tree.
pub struct DomTree {
    /// Block start -> dense index (1-based; 0 is the virtual root).
    index: HashMap<u64, usize>,
    /// Dense index -> block start (`0` for the virtual root).
    starts: Vec<u64>,
    /// Immediate dominator per dense index (in dense-index space).
    idom: Vec<usize>,
}

impl DomTree {
    /// Builds the dominator tree for all blocks reachable from `roots`.
    pub fn compute(cfg: &Cfg, roots: &BTreeSet<u64>) -> DomTree {
        // Depth-first search from the virtual root to get postorder.
        // Dense index 0 is the virtual root; blocks are numbered as
        // discovered.
        let mut index: HashMap<u64, usize> = HashMap::new();
        let mut starts: Vec<u64> = vec![0];
        let succs_of = |start: u64| -> Vec<u64> {
            cfg.blocks
                .get(&start)
                .map(|b| {
                    b.succs
                        .iter()
                        .copied()
                        .filter(|s| cfg.blocks.contains_key(s))
                        .collect()
                })
                .unwrap_or_default()
        };

        // Iterative DFS computing postorder.
        let mut postorder: Vec<usize> = Vec::new();
        let mut visited: BTreeSet<u64> = BTreeSet::new();
        // Stack of (node, next-successor-cursor). The virtual root's
        // successors are the roots, in address order for determinism.
        let root_succs: Vec<u64> = roots
            .iter()
            .copied()
            .filter(|r| cfg.blocks.contains_key(r))
            .collect();
        enum Node {
            VRoot(usize),
            Block(u64, usize),
        }
        let mut stack = vec![Node::VRoot(0)];
        while let Some(top) = stack.pop() {
            match top {
                Node::VRoot(cursor) => {
                    if cursor < root_succs.len() {
                        stack.push(Node::VRoot(cursor + 1));
                        let child = root_succs[cursor];
                        if visited.insert(child) {
                            let i = starts.len();
                            starts.push(child);
                            index.insert(child, i);
                            stack.push(Node::Block(child, 0));
                        }
                    } else {
                        postorder.push(VROOT);
                    }
                }
                Node::Block(start, cursor) => {
                    let succs = succs_of(start);
                    if cursor < succs.len() {
                        stack.push(Node::Block(start, cursor + 1));
                        let child = succs[cursor];
                        if visited.insert(child) {
                            let i = starts.len();
                            starts.push(child);
                            index.insert(child, i);
                            stack.push(Node::Block(child, 0));
                        }
                    } else {
                        postorder.push(index[&start]);
                    }
                }
            }
        }

        let n = starts.len();
        let mut rpo = vec![0usize; n];
        for (po_num, &node) in postorder.iter().enumerate() {
            // Reverse postorder number: smaller = earlier.
            rpo[node] = postorder.len() - 1 - po_num;
        }

        // Predecessor lists in dense-index space.
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &r in &root_succs {
            preds[index[&r]].push(VROOT);
        }
        for (&start, block) in &cfg.blocks {
            let Some(&i) = index.get(&start) else {
                continue;
            };
            for s in block.succs.iter().filter(|s| index.contains_key(s)) {
                preds[index[s]].push(i);
            }
        }

        // Nodes in reverse postorder (excluding the virtual root).
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| rpo[i]);

        const UNDEF: usize = usize::MAX;
        let mut idom = vec![UNDEF; n];
        idom[VROOT] = VROOT;
        let intersect = |idom: &[usize], rpo: &[usize], mut a: usize, mut b: usize| -> usize {
            while a != b {
                while rpo[a] > rpo[b] {
                    a = idom[a];
                }
                while rpo[b] > rpo[a] {
                    b = idom[b];
                }
            }
            a
        };
        let mut changed = true;
        while changed {
            changed = false;
            for &node in &order {
                if node == VROOT {
                    continue;
                }
                let mut new_idom = UNDEF;
                for &p in &preds[node] {
                    if idom[p] == UNDEF {
                        continue;
                    }
                    new_idom = if new_idom == UNDEF {
                        p
                    } else {
                        intersect(&idom, &rpo, new_idom, p)
                    };
                }
                if new_idom != UNDEF && idom[node] != new_idom {
                    idom[node] = new_idom;
                    changed = true;
                }
            }
        }

        DomTree {
            index,
            starts,
            idom,
        }
    }

    /// Immediate dominator of the block starting at `b`, or `None` when
    /// `b` is unreachable, unknown, or immediately dominated by the
    /// virtual root (i.e. has no proper dominator block).
    pub fn idom(&self, b: u64) -> Option<u64> {
        let &i = self.index.get(&b)?;
        let d = self.idom[i];
        if d == VROOT || d == usize::MAX {
            None
        } else {
            Some(self.starts[d])
        }
    }

    /// Returns `true` if block `a` dominates block `b` (reflexive).
    pub fn dominates(&self, a: u64, b: u64) -> bool {
        let (Some(&ia), Some(&ib)) = (self.index.get(&a), self.index.get(&b)) else {
            return false;
        };
        // Walk b's dominator chain; rpo numbers strictly decrease, so
        // this terminates at the virtual root.
        let mut cur = ib;
        loop {
            if cur == ia {
                return true;
            }
            if cur == VROOT || self.idom[cur] == usize::MAX {
                return false;
            }
            let up = self.idom[cur];
            if up == cur {
                return false;
            }
            cur = up;
        }
    }

    /// Returns `true` if the block starting at `b` is reachable from the
    /// analysis roots.
    pub fn is_reachable(&self, b: u64) -> bool {
        self.index.contains_key(&b)
    }

    /// Site-level dominance: the instruction at `a` dominates the
    /// instruction at `b` if they share a block and `a` comes first, or
    /// `a`'s block strictly dominates `b`'s block.
    pub fn site_dominates(&self, cfg: &Cfg, a: u64, b: u64) -> bool {
        let (Some(ba), Some(bb)) = (cfg.block_of(a), cfg.block_of(b)) else {
            return false;
        };
        if ba.start == bb.start {
            return a <= b;
        }
        self.dominates(ba.start, bb.start)
    }
}
