//! Conservative basic-block recovery.

use crate::disasm::Disasm;
use redfat_x86::Op;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Upper bound on instructions per recovered block (defensive cap).
pub const MAX_BLOCK: usize = 4096;

/// A recovered basic block: straight-line code ending at a terminator or
/// the next leader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Address of the first instruction.
    pub start: u64,
    /// Addresses of all member instructions, in order.
    pub insts: Vec<u64>,
    /// Direct successors (fall-through and/or branch target). Empty when
    /// the block ends in `ret`, indirect jump, or unknown code.
    pub succs: Vec<u64>,
    /// `true` if control can leave to statically unknown targets.
    pub opaque_exit: bool,
}

/// The recovered control-flow graph.
#[derive(Debug, Clone, Default)]
pub struct Cfg {
    /// Blocks keyed by start address.
    pub blocks: BTreeMap<u64, Block>,
    /// Every address that is (conservatively) a potential jump/call
    /// target. Instructions at these addresses must stay addressable:
    /// the rewriter may not displace them as the *interior* of a
    /// multi-instruction patch. Shared (not copied) across the sub-CFGs
    /// that [`Cfg::components`] produces, so leader queries stay global
    /// and splitting a large image stays cheap.
    pub leaders: Arc<BTreeSet<u64>>,
    /// Recovered function entry points: the image entry plus every
    /// direct `call` target. A direct `jmp` to one of these is a tail
    /// call — control transfers to another function and returns to
    /// *this* function's caller — so it carries no successor edge.
    /// Shared across sub-CFGs like `leaders`.
    pub func_entries: Arc<BTreeSet<u64>>,
}

impl Cfg {
    /// Returns `true` if `addr` is a potential control-flow target.
    pub fn is_leader(&self, addr: u64) -> bool {
        self.leaders.contains(&addr)
    }

    /// Returns the block containing `addr`, if any.
    pub fn block_of(&self, addr: u64) -> Option<&Block> {
        let (_, b) = self.blocks.range(..=addr).next_back()?;
        if b.insts.binary_search(&addr).is_ok() {
            Some(b)
        } else {
            None
        }
    }

    /// Splits the CFG into weakly-connected components over successor
    /// edges, each returned as a sub-`Cfg` holding only that component's
    /// blocks (but the *full* leader set, so leader queries stay global).
    ///
    /// No successor edge crosses a component boundary, so any CFG
    /// analysis run on a sub-`Cfg` -- liveness, the forward dataflow
    /// solver, dominators -- computes exactly the restriction of the
    /// whole-image result to that component. Calls connect only to their
    /// *return site* (the callee is reached by no successor edge), so
    /// components approximate functions. The hardening pipeline relies
    /// on both properties to shard per-function work across threads
    /// without changing its output.
    ///
    /// Components are ordered by their lowest block address, and every
    /// block appears in exactly one component.
    pub fn components(&self) -> Vec<Cfg> {
        // Undirected adjacency: successor edges plus their reverses.
        let mut adj: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for (&start, block) in &self.blocks {
            adj.entry(start).or_default();
            for &s in block.succs.iter().filter(|s| self.blocks.contains_key(s)) {
                adj.entry(start).or_default().push(s);
                adj.entry(s).or_default().push(start);
            }
        }
        let mut seen: BTreeSet<u64> = BTreeSet::new();
        let mut out = Vec::new();
        for &start in self.blocks.keys() {
            if !seen.insert(start) {
                continue;
            }
            let mut members = vec![start];
            let mut stack = vec![start];
            while let Some(b) = stack.pop() {
                for &n in &adj[&b] {
                    if seen.insert(n) {
                        members.push(n);
                        stack.push(n);
                    }
                }
            }
            out.push(Cfg {
                blocks: members
                    .iter()
                    .map(|m| (*m, self.blocks[m].clone()))
                    .collect(),
                leaders: Arc::clone(&self.leaders),
                func_entries: Arc::clone(&self.func_entries),
            });
        }
        out
    }

    /// Recovers the CFG from a disassembly.
    ///
    /// `extra_leaders` lets the caller add addresses discovered by other
    /// means (e.g. scanning data for code pointers); conservatism only
    /// ever *adds* leaders.
    pub fn recover(disasm: &Disasm, entry: u64, extra_leaders: &[u64]) -> Cfg {
        let mut leaders: BTreeSet<u64> = BTreeSet::new();
        leaders.insert(entry);
        leaders.extend(extra_leaders.iter().copied());
        let mut func_entries: BTreeSet<u64> = BTreeSet::new();
        func_entries.insert(entry);

        // Pass 1: collect leaders and function entries.
        for (addr, inst, len) in disasm.iter() {
            if let Some(t) = inst.branch_target() {
                leaders.insert(t);
                if inst.op == Op::Call {
                    func_entries.insert(t);
                }
            }
            let next = addr + len as u64;
            match inst.op {
                // After any control transfer the next instruction starts a
                // block. `call` also makes the return site a leader (the
                // `ret` will target it).
                Op::Jmp
                | Op::JmpInd
                | Op::Jcc(_)
                | Op::Call
                | Op::CallInd
                | Op::Ret
                | Op::Ud2
                | Op::Int3
                    if disasm.at(next).is_some() =>
                {
                    leaders.insert(next);
                }
                _ => {}
            }
        }
        // Unknown-gap boundaries are leaders too: code after a gap might
        // be reached in ways we cannot see.
        for &(_, end) in &disasm.unknown {
            if disasm.at(end).is_some() {
                leaders.insert(end);
            }
        }

        // Pass 2: slice into blocks.
        let mut blocks = BTreeMap::new();
        for &leader in &leaders {
            if disasm.at(leader).is_none() {
                continue;
            }
            let mut insts = Vec::new();
            let mut addr = leader;
            let mut succs = Vec::new();
            let mut opaque = false;
            loop {
                let Some((inst, len)) = disasm.at(addr) else {
                    // Fell into unknown bytes.
                    opaque = true;
                    break;
                };
                insts.push(addr);
                let next = addr + *len as u64;
                match inst.op {
                    Op::Jmp => {
                        match inst.branch_target() {
                            // A direct jump to another function's entry is
                            // a tail call: control leaves this function and
                            // the callee's `ret` returns to *our* caller.
                            // No intra-function successor edge; the exit is
                            // opaque exactly like a `ret`.
                            Some(t) if func_entries.contains(&t) && t != leader => {
                                opaque = true;
                            }
                            Some(t) => succs.push(t),
                            None => {}
                        }
                        break;
                    }
                    Op::Jcc(_) => {
                        if let Some(t) = inst.branch_target() {
                            succs.push(t);
                        }
                        if disasm.at(next).is_some() {
                            succs.push(next);
                        }
                        break;
                    }
                    Op::JmpInd | Op::Ret | Op::Ud2 | Op::Int3 => {
                        opaque = true;
                        break;
                    }
                    Op::Call | Op::CallInd => {
                        // The callee is opaque; treat the return site as
                        // the fall-through successor but mark the exit
                        // opaque so liveness stays conservative.
                        if disasm.at(next).is_some() {
                            succs.push(next);
                        }
                        opaque = true;
                        break;
                    }
                    _ => {
                        if leaders.contains(&next) || insts.len() >= MAX_BLOCK {
                            if disasm.at(next).is_some() {
                                succs.push(next);
                            }
                            break;
                        }
                        if disasm.at(next).is_none() {
                            opaque = true;
                            break;
                        }
                        addr = next;
                    }
                }
            }
            blocks.insert(
                leader,
                Block {
                    start: leader,
                    insts,
                    succs,
                    opaque_exit: opaque,
                },
            );
        }

        Cfg {
            blocks,
            leaders: Arc::new(leaders),
            func_entries: Arc::new(func_entries),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disasm::disassemble;
    use redfat_elf::{Image, ImageKind, SegFlags, Segment};
    use redfat_x86::{AluOp, Asm, Cond, Reg, Width};

    fn build(f: impl FnOnce(&mut Asm)) -> (Image, u64) {
        let mut a = Asm::new(0x40_0000);
        f(&mut a);
        let p = a.finish().unwrap();
        (
            Image {
                kind: ImageKind::Exec,
                entry: 0x40_0000,
                segments: vec![Segment::new(p.base, SegFlags::RX, p.bytes)],
                symbols: vec![],
            },
            0x40_0000,
        )
    }

    #[test]
    fn straight_line_is_one_block() {
        let (img, entry) = build(|a| {
            a.mov_ri(Width::W64, Reg::Rax, 1);
            a.mov_ri(Width::W64, Reg::Rbx, 2);
            a.alu_rr(AluOp::Add, Width::W64, Reg::Rax, Reg::Rbx);
            a.ret();
        });
        let cfg = Cfg::recover(&disassemble(&img), entry, &[]);
        assert_eq!(cfg.blocks.len(), 1);
        let b = &cfg.blocks[&entry];
        assert_eq!(b.insts.len(), 4);
        assert!(b.opaque_exit, "ret is opaque");
        assert!(b.succs.is_empty());
    }

    #[test]
    fn branch_splits_blocks() {
        let (img, entry) = build(|a| {
            let l = a.label();
            a.alu_ri(AluOp::Sub, Width::W64, Reg::Rcx, 1); // block 1
            a.jcc_label(Cond::Ne, l);
            a.nop(); // block 2 (fallthrough)
            a.bind(l).unwrap();
            a.ret(); // block 3 (target)
        });
        let cfg = Cfg::recover(&disassemble(&img), entry, &[]);
        assert_eq!(cfg.blocks.len(), 3);
        let first = &cfg.blocks[&entry];
        assert_eq!(first.succs.len(), 2);
    }

    #[test]
    fn loop_back_edge_found() {
        let (img, entry) = build(|a| {
            let top = a.label();
            a.bind(top).unwrap();
            a.alu_ri(AluOp::Sub, Width::W64, Reg::Rcx, 1);
            a.jcc_label(Cond::Ne, top);
            a.ret();
        });
        let cfg = Cfg::recover(&disassemble(&img), entry, &[]);
        let first = &cfg.blocks[&entry];
        assert!(first.succs.contains(&entry), "back edge to self");
    }

    #[test]
    fn call_marks_return_site_leader_and_opaque() {
        let (img, entry) = build(|a| {
            let f = a.label();
            a.call_label(f);
            a.nop();
            a.ret();
            a.bind(f).unwrap();
            a.ret();
        });
        let cfg = Cfg::recover(&disassemble(&img), entry, &[]);
        let first = &cfg.blocks[&entry];
        assert!(first.opaque_exit);
        // The nop after the call starts a block.
        assert_eq!(first.insts.len(), 1);
        assert!(cfg.is_leader(first.succs[0]));
    }

    #[test]
    fn tail_call_jmp_to_function_entry_has_no_succ_edge() {
        // entry: call f; ret;  g: jmp f (tail call);  f: ret
        let (img, entry) = build(|a| {
            let f = a.label();
            a.call_label(f);
            a.ret();
            // g — reachable only as an extra leader, tail-calls f.
            a.jmp_label(f);
            a.bind(f).unwrap();
            a.ret();
        });
        let d = disassemble(&img);
        // The jmp sits right after the entry block's ret.
        let g = d.next_addr(d.next_addr(entry).unwrap()).unwrap();
        let cfg = Cfg::recover(&d, entry, &[g]);
        let gb = &cfg.blocks[&g];
        assert!(
            gb.succs.is_empty(),
            "tail-call jmp must not create an intra-function edge, got {:?}",
            gb.succs
        );
        assert!(gb.opaque_exit, "tail call exits like a ret");
        assert_eq!(gb.insts.len(), 1);
        // f is a recovered function entry (direct call target).
        let f = d.at(entry).unwrap().0.branch_target().unwrap();
        assert!(cfg.func_entries.contains(&entry));
        assert!(cfg.func_entries.contains(&f));
        // The tail-calling block and its target land in different
        // weakly-connected components.
        let comps = cfg.components();
        let of = |addr: u64| comps.iter().position(|c| c.blocks.contains_key(&addr));
        assert_ne!(of(g), of(f), "g and f split into components");
    }

    #[test]
    fn jmp_to_non_entry_is_still_a_branch() {
        let (img, entry) = build(|a| {
            let l = a.label();
            a.jmp_label(l);
            a.nop();
            a.bind(l).unwrap();
            a.ret();
        });
        let d = disassemble(&img);
        let cfg = Cfg::recover(&d, entry, &[]);
        let b = &cfg.blocks[&entry];
        assert_eq!(b.succs.len(), 1, "plain jmp keeps its edge");
        assert!(!b.opaque_exit);
    }

    #[test]
    fn block_of_locates_interior_instructions() {
        let (img, entry) = build(|a| {
            a.mov_ri(Width::W64, Reg::Rax, 1);
            a.mov_ri(Width::W64, Reg::Rbx, 2);
            a.ret();
        });
        let d = disassemble(&img);
        let cfg = Cfg::recover(&d, entry, &[]);
        let second = d.next_addr(entry).unwrap();
        assert_eq!(cfg.block_of(second).unwrap().start, entry);
        assert!(cfg.block_of(0x50_0000).is_none());
    }
}
