//! Check batching and merging (paper §6).
//!
//! *Batching* groups the checks of several memory-access instructions
//! into one trampoline, invoked once at the first instruction of the
//! group, provided each member's effective address can be computed there
//! (no intervening write to its base/index registers, same basic block).
//!
//! *Merging* then collapses members whose operands differ only in
//! displacement into a single range check over `[min_disp, max_disp+len)`.

use crate::cfg::Cfg;
use crate::disasm::Disasm;
use redfat_x86::{Inst, Mem, Op};

/// A batch: one instrumentation point covering several member accesses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Batch {
    /// Address of the instruction at which the (single) trampoline is
    /// invoked: the first member's address.
    pub anchor: u64,
    /// Addresses of the member memory-access instructions, in program
    /// order. Always non-empty; `members[0] == anchor` is *not* required
    /// (the anchor is the first instruction of the group, which is the
    /// first member by construction).
    pub members: Vec<u64>,
}

/// A (possibly merged) check to emit for a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergedCheck {
    /// The operand to check, with the displacement of the lowest member.
    pub mem: Mem,
    /// Total byte span covered: `max(disp+len) - min(disp)`.
    pub len: u64,
    /// `true` if any covered access writes.
    pub is_write: bool,
    /// Covered member addresses (for attribution/allow-lists).
    pub sites: Vec<u64>,
}

/// Plans check batches over a recovered CFG.
///
/// `filter` selects which memory-access instructions need checks: the
/// caller composes its policy there -- check elimination
/// ([`can_reach_heap`]), write-only hardening (`inst.writes_memory()`),
/// and so on. When `batching` is false every member becomes its own
/// singleton batch (the unoptimized configuration of Table 1).
pub fn plan_batches(
    disasm: &Disasm,
    cfg: &Cfg,
    batching: bool,
    filter: impl Fn(u64, &Inst) -> bool,
) -> Vec<Batch> {
    let mut batches = Vec::new();
    for block in cfg.blocks.values() {
        let mut current: Option<Batch> = None;
        // Registers written since the current batch's anchor.
        let mut written: u16 = 0;
        for &addr in &block.insts {
            let (inst, _) = disasm.at(addr).expect("block member decoded");

            let checkable = inst.memory_access().is_some() && filter(addr, inst);

            if checkable {
                let m = inst.memory_access().expect("checked above");
                let regs_clean = m.regs().all(|r| written & (1 << r.code()) == 0);
                match (&mut current, regs_clean && batching) {
                    (Some(batch), true) => batch.members.push(addr),
                    _ => {
                        if let Some(b) = current.take() {
                            batches.push(b);
                        }
                        current = Some(Batch {
                            anchor: addr,
                            members: vec![addr],
                        });
                        written = 0;
                    }
                }
            }

            // Syscalls can allocate/free heap objects; hoisting a later
            // check across one could consult stale metadata. End the
            // batch (conservative; not required by register reordering
            // alone).
            if inst.op == Op::Syscall {
                if let Some(b) = current.take() {
                    batches.push(b);
                }
                written = 0;
                continue;
            }

            for r in inst.regs_written() {
                written |= 1 << r.code();
            }
        }
        if let Some(b) = current.take() {
            batches.push(b);
        }
    }
    batches.sort_by_key(|b| b.anchor);
    batches
}

/// Merges a batch's member checks (paper §6, check merging).
///
/// With `merging` disabled each member yields its own check. With it
/// enabled, members sharing `seg:base,index,scale` collapse into a single
/// range check.
pub fn merge_checks(disasm: &Disasm, batch: &Batch, merging: bool) -> Vec<MergedCheck> {
    let mut checks: Vec<MergedCheck> = Vec::new();
    for &addr in &batch.members {
        let (inst, _) = disasm.at(addr).expect("member decoded");
        let mem = inst.memory_access().expect("member is an access");
        let len = inst.access_len().expect("member has a length") as u64;
        let is_write = inst.writes_memory();
        if merging {
            if let Some(existing) = checks.iter_mut().find(|c| c.mem.same_shape(&mem)) {
                let lo = existing.mem.disp.min(mem.disp);
                let hi = (existing.mem.disp + existing.len as i64).max(mem.disp + len as i64);
                existing.mem = existing.mem.with_disp(lo);
                existing.len = (hi - lo) as u64;
                existing.is_write |= is_write;
                existing.sites.push(addr);
                continue;
            }
        }
        checks.push(MergedCheck {
            mem,
            len,
            is_write,
            sites: vec![addr],
        });
    }
    checks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disasm::disassemble;
    use crate::elim::can_reach_heap;
    use redfat_elf::{Image, ImageKind, SegFlags, Segment};
    use redfat_x86::{Asm, Mem, Reg, Width};

    fn analyze(f: impl FnOnce(&mut Asm)) -> (Disasm, Cfg) {
        let mut a = Asm::new(0x40_0000);
        f(&mut a);
        let p = a.finish().unwrap();
        let img = Image {
            kind: ImageKind::Exec,
            entry: 0x40_0000,
            segments: vec![Segment::new(p.base, SegFlags::RX, p.bytes)],
            symbols: vec![],
        };
        let d = disassemble(&img);
        let cfg = Cfg::recover(&d, img.entry, &[]);
        (d, cfg)
    }

    fn all(_: u64, i: &Inst) -> bool {
        i.memory_access().is_some_and(|m| can_reach_heap(&m))
    }

    #[test]
    fn example2_batches_into_one() {
        // The paper's Example 2 sequence.
        let (d, cfg) = analyze(|a| {
            a.mov_mr(Width::W64, Mem::base_disp(Reg::Rbx, 8), Reg::R10);
            a.mov_mr(Width::W64, Mem::base(Reg::Rax), Reg::R8);
            a.mov_mi(Width::W64, Mem::base_disp(Reg::Rax, 8), 0);
            a.mov_mi(Width::W64, Mem::base_disp(Reg::Rax, 0x10), 0);
            a.ret();
        });
        let batches = plan_batches(&d, &cfg, true, all);
        assert_eq!(batches.len(), 1, "all four accesses share one batch");
        assert_eq!(batches[0].members.len(), 4);
        assert_eq!(batches[0].anchor, 0x40_0000);
    }

    #[test]
    fn example2_merges_rax_accesses() {
        let (d, cfg) = analyze(|a| {
            a.mov_mr(Width::W64, Mem::base_disp(Reg::Rbx, 8), Reg::R10);
            a.mov_mr(Width::W64, Mem::base(Reg::Rax), Reg::R8);
            a.mov_mi(Width::W64, Mem::base_disp(Reg::Rax, 8), 0);
            a.mov_mi(Width::W64, Mem::base_disp(Reg::Rax, 0x10), 0);
            a.ret();
        });
        let batches = plan_batches(&d, &cfg, true, all);
        let checks = merge_checks(&d, &batches[0], true);
        assert_eq!(checks.len(), 2, "rbx check + merged rax check");
        let rax = checks
            .iter()
            .find(|c| c.mem.base == Some(Reg::Rax))
            .unwrap();
        // Merged bounds: LB = 0x0(%rax), UB = 0x10+8(%rax).
        assert_eq!(rax.mem.disp, 0);
        assert_eq!(rax.len, 0x18);
        assert_eq!(rax.sites.len(), 3);
    }

    #[test]
    fn no_merging_keeps_members_separate() {
        let (d, cfg) = analyze(|a| {
            a.mov_mi(Width::W64, Mem::base(Reg::Rax), 0);
            a.mov_mi(Width::W64, Mem::base_disp(Reg::Rax, 8), 0);
            a.ret();
        });
        let batches = plan_batches(&d, &cfg, true, all);
        let checks = merge_checks(&d, &batches[0], false);
        assert_eq!(checks.len(), 2);
    }

    #[test]
    fn register_write_breaks_batch() {
        let (d, cfg) = analyze(|a| {
            a.mov_mi(Width::W64, Mem::base(Reg::Rax), 0);
            a.lea(Reg::Rax, Mem::base_disp(Reg::Rax, 8)); // rax changes
            a.mov_mi(Width::W64, Mem::base(Reg::Rax), 0);
            a.ret();
        });
        let batches = plan_batches(&d, &cfg, true, all);
        assert_eq!(batches.len(), 2, "write to rax splits the batch");
    }

    #[test]
    fn batching_disabled_gives_singletons() {
        let (d, cfg) = analyze(|a| {
            a.mov_mi(Width::W64, Mem::base(Reg::Rax), 0);
            a.mov_mi(Width::W64, Mem::base_disp(Reg::Rax, 8), 0);
            a.ret();
        });
        let batches = plan_batches(&d, &cfg, false, all);
        assert_eq!(batches.len(), 2);
    }

    #[test]
    fn eliminated_accesses_are_not_members() {
        let (d, cfg) = analyze(|a| {
            a.mov_mi(Width::W64, Mem::base_disp(Reg::Rsp, 8), 1); // eliminated
            a.mov_mi(Width::W64, Mem::abs(0x60_0000), 2); // eliminated
            a.mov_mi(Width::W64, Mem::base(Reg::Rax), 3); // kept
            a.ret();
        });
        let batches = plan_batches(&d, &cfg, true, all);
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].members.len(), 1);
    }

    #[test]
    fn write_filter_drops_loads() {
        let (d, cfg) = analyze(|a| {
            a.mov_rm(Width::W64, Reg::Rcx, Mem::base(Reg::Rax)); // load
            a.mov_mr(Width::W64, Mem::base_disp(Reg::Rax, 8), Reg::Rcx); // store
            a.ret();
        });
        let batches = plan_batches(&d, &cfg, true, |_, i| i.writes_memory());
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].members.len(), 1);
        let checks = merge_checks(&d, &batches[0], true);
        assert!(checks[0].is_write);
    }

    #[test]
    fn syscall_ends_batch() {
        let (d, cfg) = analyze(|a| {
            a.mov_mi(Width::W64, Mem::base(Reg::Rbx), 0);
            a.syscall();
            a.mov_mi(Width::W64, Mem::base_disp(Reg::Rbx, 8), 0);
            a.ret();
        });
        let batches = plan_batches(&d, &cfg, true, all);
        assert_eq!(batches.len(), 2, "syscall is a batch barrier");
    }

    #[test]
    fn branch_target_breaks_batch() {
        // A label between two accesses forces two blocks, hence two
        // batches (over-approximation shrinks batches, never correctness).
        let (d, cfg) = analyze(|a| {
            let l = a.label();
            a.mov_mi(Width::W64, Mem::base(Reg::Rax), 0);
            a.bind(l).unwrap();
            a.mov_mi(Width::W64, Mem::base_disp(Reg::Rax, 8), 0);
            a.jcc_label(redfat_x86::Cond::E, l);
            a.ret();
        });
        let batches = plan_batches(&d, &cfg, true, all);
        assert_eq!(batches.len(), 2);
    }
}
