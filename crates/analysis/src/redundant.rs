//! Dominator-based redundant-check elimination (paper §6, "check
//! elimination" extended across instructions).
//!
//! If site A performs a full (Redzone + LowFat) check of `disp_A(base,
//! index, scale)` and site B, *strictly dominated* by A, checks the same
//! operand shape with a byte range contained in A's -- and no register
//! feeding the address is modified on **any** path from A to B, and no
//! call/syscall intervenes (so the heap cannot have been freed or
//! remapped in between) -- then B's low-fat bounds check is redundant:
//! the address was already proven in-bounds for its object. B keeps a
//! redzone-only check (cheap, catches adjacent-overflow writes) and
//! drops the expensive bounds computation.
//!
//! This module reports the per-site analysis result; the hardening
//! pipeline applies the downgrade at *merged-check* granularity (a
//! merged check flips to redzone-only iff all its sites are subsumed),
//! so a downgrade never splits a merge group into two checks.
//!
//! # Mechanics
//!
//! This is an *available-checks* forward dataflow problem on the
//! [`ForwardAnalysis`] framework:
//!
//! * Fact: a map from operand **shape** (seg/base/index/scale/rip,
//!   displacement excluded) to the dominating checked site and the byte
//!   range it proved.
//! * Transfer: a checked site *generates* its entry (unless the
//!   instruction overwrites one of its own address registers); any write
//!   to a register *kills* every shape using it; `call`/`callind`/
//!   `syscall`/`ret`/`jmpind` clear the whole map (unknown code may
//!   `free` the object or re-enter anywhere).
//! * Join: set intersection keeping only entries identical on both
//!   paths. Identical-site survival on every incoming path implies the
//!   generating site dominates the join point; this is re-validated
//!   against the [`DomTree`] before an elimination is recorded.
//!
//! Redundancy is sound for the low-fat *bounds* portion only: between A
//! and B the heap state is unchanged (no calls), the address registers
//! are unchanged, and B's accessed bytes are a subset of A's proven
//! range. The redzone probe is retained at B because redzone state is a
//! property of object *contents* (freed-object poisoning) with cheaper
//! invariants -- mirroring the paper's merged-check fallback.

use crate::cfg::Cfg;
use crate::dataflow::{solve_forward, unknown_entries, ForwardAnalysis};
use crate::disasm::Disasm;
use crate::domtree::DomTree;
use crate::provenance::Provenance;
use redfat_x86::{Inst, Mem, Op, Reg, Seg};
use std::collections::{BTreeMap, HashMap};

/// Operand shape: a memory operand with the displacement abstracted
/// away. Two accesses with equal shapes address the same object
/// provided the registers involved are unmodified in between.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Shape {
    seg: u8,
    base: u8,
    index: u8,
    scale: u8,
    rip: bool,
}

/// Register-code sentinel for "no register" in a [`Shape`].
const NO_REG: u8 = 0xFF;

impl Shape {
    fn of(mem: &Mem) -> Shape {
        Shape {
            seg: match mem.seg {
                None => 0,
                Some(Seg::Fs) => 1,
                Some(Seg::Gs) => 2,
            },
            base: mem.base.map_or(NO_REG, |r| r.code()),
            index: mem.index.map_or(NO_REG, |r| r.code()),
            scale: if mem.index.is_some() { mem.scale } else { 1 },
            rip: mem.rip,
        }
    }

    fn uses(&self, r: Reg) -> bool {
        let c = r.code();
        self.base == c || self.index == c
    }

    /// `true` when the shape reads any register whose bit is set in
    /// `mask` (a callee may-write mask; see [`crate::summary`]).
    fn uses_mask(&self, mask: u16) -> bool {
        [self.base, self.index]
            .into_iter()
            .any(|c| c < 16 && mask & (1u16 << c) != 0)
    }
}

/// One available check: the generating site and the byte range
/// (displacement-relative, half-open) it proved in-bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Avail {
    /// Address of the instruction whose full check proved the range.
    pub site: u64,
    /// First proven byte offset (the operand displacement).
    pub lo: i64,
    /// One past the last proven byte offset.
    pub hi: i64,
}

struct AvailableChecks<F> {
    checked: F,
    /// May-write masks of *closed, heap-pure* direct callees
    /// ([`crate::summary::Summaries::pure_write_masks`]). A call to one
    /// of these cannot reach a syscall (so the heap layout -- every
    /// object's bounds and redzone state -- is unchanged) and provably
    /// writes only the masked registers, so available checks on shapes
    /// reading only unmasked registers survive the call. Empty map ==
    /// the intraprocedural behavior (every call clears everything).
    pure_masks: HashMap<u64, u16>,
}

impl<F: Fn(u64, &Inst) -> bool> ForwardAnalysis for AvailableChecks<F> {
    type Fact = BTreeMap<Shape, Avail>;

    fn boundary(&self) -> Self::Fact {
        // Unknown entries carry no available checks.
        BTreeMap::new()
    }

    fn join(&self, a: &Self::Fact, b: &Self::Fact) -> Self::Fact {
        // Must-analysis: keep only entries available, with identical
        // provenance, on both paths.
        a.iter()
            .filter(|(k, v)| b.get(k) == Some(v))
            .map(|(k, v)| (*k, *v))
            .collect()
    }

    fn widen(&self, _prev: &Self::Fact, next: &Self::Fact) -> Self::Fact {
        // Entry facts only ever shrink under the intersection join, so
        // the chain is finite; widening never actually fires, but pass
        // `next` through rather than dropping to the empty boundary.
        next.clone()
    }

    fn transfer(&self, addr: u64, inst: &Inst, fact: &mut Self::Fact) {
        // Unknown code may free heap objects or re-enter anywhere:
        // nothing survives a call edge -- except a direct call to a
        // summarized heap-pure callee, which only kills shapes reading
        // registers the callee may write.
        if matches!(
            inst.op,
            Op::Call | Op::CallInd | Op::Syscall | Op::Ret | Op::JmpInd
        ) {
            if inst.op == Op::Call {
                if let Some(mask) = inst.branch_target().and_then(|t| self.pure_masks.get(&t)) {
                    fact.retain(|shape, _| !shape.uses_mask(*mask));
                    return;
                }
            }
            fact.clear();
            return;
        }
        let gen = if (self.checked)(addr, inst) {
            inst.memory_access()
                .map(|m| (m, i64::from(inst.access_len().unwrap_or(8))))
        } else {
            None
        };
        let written = inst.regs_written();
        if !written.is_empty() {
            fact.retain(|shape, _| !written.iter().any(|&r| shape.uses(r)));
        }
        if let Some((mem, len)) = gen {
            // The check observed the *pre-instruction* register values;
            // if the instruction overwrites one of them the shape no
            // longer describes the checked address.
            if !mem.regs().any(|r| written.contains(&r)) {
                let key = Shape::of(&mem);
                let (lo, hi) = (mem.disp, mem.disp + len);
                match fact.get(&key) {
                    // An earlier, still-valid check already subsumes
                    // this one; keep the earlier root so later sites
                    // chain to it directly.
                    Some(av) if av.lo <= lo && hi <= av.hi => {}
                    _ => {
                        fact.insert(key, Avail { site: addr, lo, hi });
                    }
                }
            }
        }
    }
}

/// Result of the pass: every check site proven redundant, mapped to the
/// dominating root site whose full check subsumes it.
pub struct RedundantChecks {
    redundant: BTreeMap<u64, u64>,
}

impl RedundantChecks {
    /// Runs the available-checks analysis and dominance validation.
    ///
    /// `checked` must be exactly the predicate the instrumentation
    /// pipeline uses to decide which sites receive a *full* check
    /// (after syntactic and flow-sensitive elimination): only such
    /// sites can generate availability, and only such sites are
    /// candidates for downgrading.
    pub fn compute<F: Fn(u64, &Inst) -> bool>(
        disasm: &Disasm,
        cfg: &Cfg,
        entry: u64,
        checked: F,
    ) -> RedundantChecks {
        RedundantChecks::compute_with_roots(
            disasm,
            cfg,
            &unknown_entries(disasm, cfg, entry),
            checked,
        )
    }

    /// [`RedundantChecks::compute`] with a precomputed unknown-entry
    /// set, for callers sharding one image into per-component
    /// sub-`Cfg`s (the roots are an image-wide property; see
    /// [`Provenance::compute_with_roots`]). Only instructions inside
    /// `cfg`'s blocks are examined -- instructions in no block can never
    /// be proven redundant (they have no dataflow facts).
    pub fn compute_with_roots<F: Fn(u64, &Inst) -> bool>(
        disasm: &Disasm,
        cfg: &Cfg,
        roots: &std::collections::BTreeSet<u64>,
        checked: F,
    ) -> RedundantChecks {
        RedundantChecks::compute_with_roots_and_masks(disasm, cfg, roots, checked, HashMap::new())
    }

    /// Interprocedural variant: direct calls to callees present in
    /// `pure_masks` (closed, heap-pure functions with a may-write mask)
    /// keep available checks on shapes the callee provably does not
    /// disturb. An empty map reproduces the intraprocedural pass
    /// exactly.
    pub fn compute_with_roots_and_masks<F: Fn(u64, &Inst) -> bool>(
        disasm: &Disasm,
        cfg: &Cfg,
        roots: &std::collections::BTreeSet<u64>,
        checked: F,
        pure_masks: HashMap<u64, u16>,
    ) -> RedundantChecks {
        let roots: std::collections::BTreeSet<u64> = roots
            .iter()
            .copied()
            .filter(|r| cfg.blocks.contains_key(r))
            .collect();
        let dom = DomTree::compute(cfg, &roots);
        let solution = solve_forward(
            AvailableChecks {
                checked,
                pure_masks,
            },
            disasm,
            cfg,
            &roots,
        );

        let mut immediate: BTreeMap<u64, u64> = BTreeMap::new();
        for block in cfg.blocks.values() {
            for &addr in &block.insts {
                let (inst, _) = disasm.at(addr).expect("block member decoded");
                if !(solution.analysis().checked)(addr, inst) {
                    continue;
                }
                let Some(mem) = inst.memory_access() else {
                    continue;
                };
                let Some(fact) = solution.fact_before(disasm, cfg, addr) else {
                    continue;
                };
                let Some(av) = fact.get(&Shape::of(&mem)).copied() else {
                    continue;
                };
                let len = i64::from(inst.access_len().unwrap_or(8));
                if av.site != addr
                    && av.lo <= mem.disp
                    && mem.disp + len <= av.hi
                    && dom.site_dominates(cfg, av.site, addr)
                {
                    immediate.insert(addr, av.site);
                }
            }
        }

        // Chase chains so every recorded root is itself non-redundant
        // (it will keep its full check). Dominance is a strict partial
        // order over distinct sites, so chains cannot cycle.
        let mut redundant: BTreeMap<u64, u64> = BTreeMap::new();
        for (&site, &first) in &immediate {
            let mut r = first;
            while let Some(&up) = immediate.get(&r) {
                r = up;
            }
            redundant.insert(site, r);
        }

        RedundantChecks { redundant }
    }

    /// Returns `true` if the full check at `addr` is subsumed by a
    /// dominating check.
    pub fn is_redundant(&self, addr: u64) -> bool {
        self.redundant.contains_key(&addr)
    }

    /// The non-redundant root whose check subsumes `addr`, if any.
    pub fn root_of(&self, addr: u64) -> Option<u64> {
        self.redundant.get(&addr).copied()
    }

    /// All `(redundant site, root site)` pairs in address order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.redundant.iter().map(|(&s, &r)| (s, r))
    }

    /// Number of sites proven redundant.
    pub fn len(&self) -> usize {
        self.redundant.len()
    }

    /// Returns `true` when no site was proven redundant.
    pub fn is_empty(&self) -> bool {
        self.redundant.is_empty()
    }
}

/// Convenience driver composing both flow passes the way the pipeline
/// does: `flow` refines which sites need checks at all, and the
/// redundant pass then runs with exactly that refined predicate.
pub fn compute_with_provenance<F: Fn(u64, &Inst) -> bool>(
    disasm: &Disasm,
    cfg: &Cfg,
    entry: u64,
    prov: &Provenance,
    base_checked: F,
) -> RedundantChecks {
    RedundantChecks::compute(disasm, cfg, entry, move |addr, inst| {
        base_checked(addr, inst) && prov.site_can_reach_heap(disasm, cfg, addr, inst)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use redfat_x86::{Operands, Width};

    fn checked_all(_: u64, inst: &Inst) -> bool {
        inst.memory_access().is_some()
    }

    fn mov_load(mem: Mem, dst: Reg) -> Inst {
        Inst {
            op: Op::Mov,
            w: Width::W64,
            operands: Operands::RM { dst, src: mem },
        }
    }

    fn mov_store(mem: Mem, src: Reg) -> Inst {
        Inst {
            op: Op::Mov,
            w: Width::W64,
            operands: Operands::MR { dst: mem, src },
        }
    }

    #[test]
    fn transfer_generates_and_kills() {
        let analysis = AvailableChecks {
            checked: checked_all,
            pure_masks: HashMap::new(),
        };
        let mut fact = analysis.boundary();

        // A checked store through [rax+8] becomes available.
        let store = mov_store(Mem::base_disp(Reg::Rax, 8), Reg::Rcx);
        analysis.transfer(0x100, &store, &mut fact);
        let key = Shape::of(&Mem::base_disp(Reg::Rax, 8));
        assert_eq!(
            fact.get(&key),
            Some(&Avail {
                site: 0x100,
                lo: 8,
                hi: 16
            })
        );

        // Writing an unrelated register keeps it...
        let clobber_rdx = Inst {
            op: Op::Mov,
            w: Width::W64,
            operands: Operands::RI {
                dst: Reg::Rdx,
                imm: 7,
            },
        };
        analysis.transfer(0x108, &clobber_rdx, &mut fact);
        assert!(fact.contains_key(&key));

        // ...writing rax kills it.
        let clobber_rax = Inst {
            op: Op::Mov,
            w: Width::W64,
            operands: Operands::RI {
                dst: Reg::Rax,
                imm: 7,
            },
        };
        analysis.transfer(0x110, &clobber_rax, &mut fact);
        assert!(!fact.contains_key(&key));
    }

    #[test]
    fn load_into_own_base_does_not_generate() {
        let analysis = AvailableChecks {
            checked: checked_all,
            pure_masks: HashMap::new(),
        };
        let mut fact = analysis.boundary();
        // mov (%rax), %rax checks the old address but invalidates the
        // shape in the same step: nothing may become available.
        let inst = mov_load(Mem::base(Reg::Rax), Reg::Rax);
        analysis.transfer(0x100, &inst, &mut fact);
        assert!(fact.is_empty());
    }

    #[test]
    fn calls_clear_everything() {
        let analysis = AvailableChecks {
            checked: checked_all,
            pure_masks: HashMap::new(),
        };
        let mut fact = analysis.boundary();
        analysis.transfer(0x100, &mov_store(Mem::base(Reg::Rbx), Reg::Rcx), &mut fact);
        assert_eq!(fact.len(), 1);
        let call = Inst {
            op: Op::Call,
            w: Width::W64,
            operands: Operands::Rel(0x40),
        };
        analysis.transfer(0x108, &call, &mut fact);
        assert!(fact.is_empty());
    }

    #[test]
    fn join_is_intersection_on_identical_entries() {
        let analysis = AvailableChecks {
            checked: checked_all,
            pure_masks: HashMap::new(),
        };
        let ka = Shape::of(&Mem::base(Reg::Rax));
        let kb = Shape::of(&Mem::base(Reg::Rbx));
        let av = |site| Avail { site, lo: 0, hi: 8 };
        let a: BTreeMap<Shape, Avail> = [(ka, av(0x100)), (kb, av(0x108))].into();
        let b: BTreeMap<Shape, Avail> = [(ka, av(0x100)), (kb, av(0x200))].into();
        let j = analysis.join(&a, &b);
        // Same site survives; differing sites are dropped.
        assert_eq!(j.get(&ka), Some(&av(0x100)));
        assert!(!j.contains_key(&kb));
    }

    #[test]
    fn range_subsumption_in_gen() {
        let analysis = AvailableChecks {
            checked: checked_all,
            pure_masks: HashMap::new(),
        };
        let mut fact = analysis.boundary();
        // Wider check first...
        let wide = Inst {
            op: Op::Push,
            w: Width::W64,
            operands: Operands::M(Mem::base_disp(Reg::Rax, 0)),
        };
        analysis.transfer(0x100, &wide, &mut fact);
        // ...then a 1-byte probe of the same bytes: the earlier root is
        // retained (subsumed), so chains point at the oldest site.
        let narrow = Inst {
            op: Op::Movzx8,
            w: Width::W64,
            operands: Operands::RM {
                dst: Reg::Rcx,
                src: Mem::base_disp(Reg::Rax, 2),
            },
        };
        analysis.transfer(0x108, &narrow, &mut fact);
        let key = Shape::of(&Mem::base(Reg::Rax));
        assert_eq!(fact.get(&key).map(|a| a.site), Some(0x100));
        // A probe *outside* the proven range replaces the entry.
        let outside = mov_store(Mem::base_disp(Reg::Rax, 64), Reg::Rcx);
        analysis.transfer(0x110, &outside, &mut fact);
        assert_eq!(fact.get(&key).map(|a| a.site), Some(0x110));
    }
}
