//! Linear-sweep disassembly with explicit unknown gaps.

use redfat_elf::Image;
use redfat_x86::{decode_one, Inst};
use std::collections::BTreeMap;

/// Disassembly of an image's executable segments.
#[derive(Debug, Clone, Default)]
pub struct Disasm {
    /// Decoded instructions keyed by address, with encoded length.
    pub insts: BTreeMap<u64, (Inst, u8)>,
    /// Byte ranges that failed to decode (`[start, end)`), which the
    /// rewriter must leave untouched.
    pub unknown: Vec<(u64, u64)>,
}

impl Disasm {
    /// Returns the instruction at exactly `addr`.
    pub fn at(&self, addr: u64) -> Option<&(Inst, u8)> {
        self.insts.get(&addr)
    }

    /// Returns the address of the instruction following `addr`.
    pub fn next_addr(&self, addr: u64) -> Option<u64> {
        let (inst, len) = self.insts.get(&addr)?;
        let _ = inst;
        Some(addr + *len as u64)
    }

    /// Iterates instructions in address order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &Inst, u8)> {
        self.insts.iter().map(|(&a, (i, l))| (a, i, *l))
    }

    /// Total decoded instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Returns `true` if no instructions were decoded.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }
}

/// Disassembles all executable segments of `image`.
///
/// Uses linear sweep with single-byte resynchronization: undecodable
/// bytes are recorded as unknown gaps and skipped one byte at a time.
/// For binaries produced by this workspace's assembler/compiler the
/// unknown set is empty; the mechanism exists so that foreign byte
/// sequences degrade coverage rather than correctness, matching the
/// paper's conservative stance.
pub fn disassemble(image: &Image) -> Disasm {
    let mut out = Disasm::default();
    for seg in image.exec_segments() {
        let mut off = 0usize;
        let mut gap_start: Option<u64> = None;
        while off < seg.data.len() {
            let addr = seg.vaddr + off as u64;
            match decode_one(&seg.data[off..], addr) {
                Ok((inst, len)) => {
                    if let Some(gs) = gap_start.take() {
                        out.unknown.push((gs, addr));
                    }
                    out.insts.insert(addr, (inst, len));
                    off += len as usize;
                }
                Err(_) => {
                    if gap_start.is_none() {
                        gap_start = Some(addr);
                    }
                    off += 1;
                }
            }
        }
        if let Some(gs) = gap_start {
            out.unknown.push((gs, seg.vaddr + seg.data.len() as u64));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use redfat_elf::{ImageKind, SegFlags, Segment};
    use redfat_x86::{Asm, Reg, Width};

    fn image_with(code: Vec<u8>) -> Image {
        Image {
            kind: ImageKind::Exec,
            entry: 0x40_0000,
            segments: vec![Segment::new(0x40_0000, SegFlags::RX, code)],
            symbols: vec![],
        }
    }

    #[test]
    fn disassembles_clean_code() {
        let mut a = Asm::new(0x40_0000);
        a.mov_ri(Width::W64, Reg::Rax, 5);
        a.push_r(Reg::Rax);
        a.pop_r(Reg::Rbx);
        a.ret();
        let p = a.finish().unwrap();
        let d = disassemble(&image_with(p.bytes));
        assert_eq!(d.len(), 4);
        assert!(d.unknown.is_empty());
        assert!(d.at(0x40_0000).is_some());
    }

    #[test]
    fn records_unknown_gaps() {
        // nop, SSE junk, nop.
        let code = vec![0x90, 0x0F, 0x28, 0xC1, 0x90];
        let d = disassemble(&image_with(code));
        // The 0x0F 0x28 fails; resync lands on 0x28 0xC1 (sub), then 0x90.
        assert!(!d.unknown.is_empty());
        assert!(d.at(0x40_0000).is_some());
    }

    #[test]
    fn skips_data_segments() {
        let img = Image {
            kind: ImageKind::Exec,
            entry: 0x40_0000,
            segments: vec![
                Segment::new(0x40_0000, SegFlags::RX, vec![0xC3]),
                Segment::new(0x60_0000, SegFlags::RW, vec![0x90; 16]),
            ],
            symbols: vec![],
        };
        let d = disassemble(&img);
        assert_eq!(d.len(), 1);
    }
}
