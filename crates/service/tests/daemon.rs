//! End-to-end daemon tests: dedupe, artifact warm hits, incremental
//! component reuse, and corrupt-cache robustness.

use redfat_core::selftest::SplitMix64;
use redfat_core::{harden_threaded, HardenConfig, LowFatPolicy};
use redfat_service::{
    artifact_key, ArtifactCache, ArtifactEntry, Client, Op, Response, Server, ServerConfig, Source,
};
use std::path::PathBuf;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("redfat-daemon-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Starts a daemon on a scratch socket; returns (config, join handle).
fn start(tag: &str, workers: usize) -> (ServerConfig, std::thread::JoinHandle<String>) {
    let dir = scratch(tag);
    let config = ServerConfig {
        socket: dir.join("daemon.sock"),
        cache_dir: dir.join("cache"),
        workers,
        threads: 2,
    };
    let server = Server::bind(config.clone()).expect("bind daemon");
    let handle = std::thread::spawn(move || server.run().expect("daemon run"));
    (config, handle)
}

/// One stand-in image, built once per test binary: `spec::all()`
/// compiles the whole suite, which is far too slow to repeat per test
/// in debug mode.
fn workload_image_bytes() -> Vec<u8> {
    static IMAGE: std::sync::OnceLock<Vec<u8>> = std::sync::OnceLock::new();
    IMAGE
        .get_or_init(|| redfat_workloads::spec::all()[0].image().to_bytes())
        .clone()
}

fn counter(stats: &str, key: &str) -> u64 {
    for line in stats.lines() {
        if let Some(v) = line.strip_prefix(key).and_then(|r| r.strip_prefix('=')) {
            return v.parse().expect("counter value");
        }
    }
    panic!("counter {key} missing from stats:\n{stats}");
}

#[test]
fn concurrent_identical_requests_cost_one_computation() {
    let (config, handle) = start("dedupe", 2);
    let image = workload_image_bytes();
    let cfg = HardenConfig::default().canonical_bytes();

    const CLIENTS: usize = 4;
    let mut joins = Vec::new();
    for _ in 0..CLIENTS {
        let socket = config.socket.clone();
        let image = image.clone();
        let cfg = cfg.clone();
        joins.push(std::thread::spawn(move || {
            let mut c = Client::connect(&socket).expect("connect");
            c.job(Op::Harden, cfg, image).expect("submit")
        }));
    }
    let responses: Vec<Response> = joins
        .into_iter()
        .map(|j| j.join().expect("client"))
        .collect();

    let mut artifacts = Vec::new();
    for r in &responses {
        match r {
            Response::Ok { artifact, .. } => artifacts.push(artifact.clone()),
            Response::Err(e) => panic!("job failed: {e}"),
        }
    }
    // Every client gets the same bytes, and they match a direct
    // one-shot harden of the same image and config.
    let direct = harden_threaded(
        &redfat_elf::Image::parse(&image).expect("parse"),
        &HardenConfig::default(),
        2,
    )
    .expect("direct harden")
    .image
    .to_bytes();
    for a in &artifacts {
        assert_eq!(a, &direct, "daemon artifact matches one-shot harden");
    }

    // However the arrivals interleaved, exactly one computation ran;
    // everyone else was deduplicated in flight or hit the published
    // artifact.
    let mut c = Client::connect(&config.socket).expect("connect");
    let stats = c.stats().expect("stats");
    assert_eq!(counter(&stats, "computations"), 1, "stats:\n{stats}");
    assert_eq!(
        counter(&stats, "deduped") + counter(&stats, "artifact_hits"),
        (CLIENTS - 1) as u64,
        "stats:\n{stats}"
    );
    assert_eq!(counter(&stats, "errors"), 0, "stats:\n{stats}");

    c.shutdown().expect("shutdown");
    handle.join().expect("daemon thread");
}

#[test]
fn warm_artifact_hit_does_zero_analysis() {
    let (config, handle) = start("warm", 1);
    let image = workload_image_bytes();
    let cfg = HardenConfig::default().canonical_bytes();

    let mut c = Client::connect(&config.socket).expect("connect");
    let cold = c
        .job(Op::Harden, cfg.clone(), image.clone())
        .expect("cold submit");
    let (cold_bytes, cold_micros) = match cold {
        Response::Ok {
            source,
            artifact,
            micros,
            ..
        } => {
            assert_eq!(source, Source::Computed);
            (artifact, micros)
        }
        Response::Err(e) => panic!("cold job failed: {e}"),
    };
    let analyzed_after_cold = counter(&c.stats().expect("stats"), "components_analyzed");
    assert!(analyzed_after_cold > 0, "cold run analyzed components");

    let warm = c.job(Op::Harden, cfg, image).expect("warm submit");
    match warm {
        Response::Ok {
            source,
            artifact,
            micros,
            ..
        } => {
            assert_eq!(source, Source::ArtifactHit);
            assert_eq!(artifact, cold_bytes, "warm hit is byte-identical");
            assert!(
                micros <= cold_micros,
                "warm lookup ({micros}us) within cold compute ({cold_micros}us)"
            );
        }
        Response::Err(e) => panic!("warm job failed: {e}"),
    }
    let stats = c.stats().expect("stats");
    assert_eq!(
        counter(&stats, "components_analyzed"),
        analyzed_after_cold,
        "warm hit did zero analysis; stats:\n{stats}"
    );
    assert_eq!(counter(&stats, "artifact_hits"), 1);

    c.shutdown().expect("shutdown");
    handle.join().expect("daemon thread");
}

#[test]
fn changed_input_reuses_unchanged_components() {
    let (config, handle) = start("incr", 1);
    let base = workload_image_bytes();
    let cfg = HardenConfig::default().canonical_bytes();

    let mut c = Client::connect(&config.socket).expect("connect");
    match c
        .job(Op::Harden, cfg.clone(), base.clone())
        .expect("cold submit")
    {
        Response::Ok { source, .. } => assert_eq!(source, Source::Computed),
        Response::Err(e) => panic!("cold job failed: {e}"),
    }
    let after_cold = c.stats().expect("stats");
    let analyzed_cold = counter(&after_cold, "components_analyzed");
    assert!(analyzed_cold > 1, "stand-in has multiple components");

    // Submitting a *different* config over the same image is a new
    // artifact key and a new component-cache prefix: it must recompute
    // every component (config changes invalidate analysis), proving
    // the reuse key is not input-bytes-only. `unoptimized` keeps the
    // recompute cheap (no elimination analyses run).
    let other = HardenConfig::unoptimized(LowFatPolicy::All).canonical_bytes();
    match c
        .job(Op::Harden, other, base.clone())
        .expect("second submit")
    {
        Response::Ok { source, .. } => assert_eq!(source, Source::Computed),
        Response::Err(e) => panic!("second job failed: {e}"),
    }
    let after_other = c.stats().expect("stats");
    assert!(
        counter(&after_other, "components_analyzed") > analyzed_cold,
        "different config re-analyzes; stats:\n{after_other}"
    );
    assert_eq!(counter(&after_other, "components_reused"), 0);

    // Re-submitting the original config exercises the artifact cache,
    // not the component cache (whole-job hit short-circuits first).
    match c.job(Op::Harden, cfg, base).expect("resubmit") {
        Response::Ok { source, .. } => assert_eq!(source, Source::ArtifactHit),
        Response::Err(e) => panic!("resubmit failed: {e}"),
    }

    c.shutdown().expect("shutdown");
    handle.join().expect("daemon thread");
}

#[test]
fn malformed_and_non_job_requests_never_kill_the_daemon() {
    let (config, handle) = start("malformed", 1);

    // Garbage config bytes: structured error, daemon stays up.
    let mut c = Client::connect(&config.socket).expect("connect");
    match c
        .job(Op::Harden, vec![0xFF; 8], workload_image_bytes())
        .expect("submit garbage config")
    {
        Response::Err(e) => assert!(e.contains("bad config"), "error names the cause: {e}"),
        Response::Ok { .. } => panic!("garbage config must not harden"),
    }

    // Garbage image bytes likewise.
    let mut c = Client::connect(&config.socket).expect("connect");
    match c
        .job(
            Op::Harden,
            HardenConfig::default().canonical_bytes(),
            b"not an elf".to_vec(),
        )
        .expect("submit garbage image")
    {
        Response::Err(e) => assert!(e.contains("parse failed"), "error names the cause: {e}"),
        Response::Ok { .. } => panic!("garbage image must not harden"),
    }

    let mut c = Client::connect(&config.socket).expect("connect");
    let stats = c.stats().expect("stats");
    assert_eq!(counter(&stats, "errors"), 2, "stats:\n{stats}");
    assert_eq!(counter(&stats, "computations"), 0);

    c.shutdown().expect("shutdown");
    handle.join().expect("daemon thread");
}

/// Satellite: corrupt artifact entries -- truncations, bit flips,
/// wrong tool versions -- must classify as misses and recompute,
/// never panic and never serve stale or wrong bytes.
#[test]
fn corrupted_artifacts_are_misses_never_stale() {
    let dir = scratch("corrupt");
    let cache = ArtifactCache::open(dir.join("cache")).expect("open cache");
    let key = artifact_key(b"input-image", b"config-bytes", 1);
    let entry = ArtifactEntry {
        artifact: (0u16..700).map(|b| (b % 251) as u8).collect(),
        stats: "sites=9\ncomponents=3\n".to_string(),
    };
    cache.put(&key, &entry).expect("publish");
    let pristine = std::fs::read(cache.entry_path(&key)).expect("read entry");

    let mut rng = SplitMix64::new(0xC0FFEE);
    for case in 0..200 {
        let mut bytes = pristine.clone();
        match rng.below(3) {
            // Truncate at a random point (including empty).
            0 => bytes.truncate(rng.below(bytes.len() as u64) as usize),
            // Flip one random bit.
            1 => {
                let i = rng.below(bytes.len() as u64) as usize;
                bytes[i] ^= 1 << rng.below(8);
            }
            // Stamp a different tool version string over the header's
            // version field (same length, different bytes).
            _ => {
                let start = 8 + 4 + 8; // magic + format + length prefix
                let i = start + rng.below(8) as usize;
                bytes[i] = bytes[i].wrapping_add(1);
            }
        }
        if bytes == pristine {
            continue; // mutation was a no-op; nothing to assert
        }
        std::fs::write(cache.entry_path(&key), &bytes).expect("plant corruption");
        let got = cache.get(&key);
        assert_eq!(got, None, "case {case}: corrupt entry must miss");
        // Recompute-and-republish heals the entry.
        cache.put(&key, &entry).expect("republish");
        assert_eq!(cache.get(&key), Some(entry.clone()), "case {case}: healed");
    }
}

/// A daemon pointed at a cache directory full of corrupt entries
/// recomputes and heals without ever panicking.
#[test]
fn daemon_survives_poisoned_cache_directory() {
    let (config, handle) = start("poisoned", 1);
    let image = workload_image_bytes();
    let cfg = HardenConfig::default().canonical_bytes();

    let mut c = Client::connect(&config.socket).expect("connect");
    let cold = match c
        .job(Op::Harden, cfg.clone(), image.clone())
        .expect("cold submit")
    {
        Response::Ok { artifact, .. } => artifact,
        Response::Err(e) => panic!("cold job failed: {e}"),
    };

    // Corrupt the (single) published entry in place.
    let cache = ArtifactCache::open(&config.cache_dir).expect("open cache");
    let key = artifact_key(&image, &cfg, Op::Harden.to_byte());
    let path = cache.entry_path(&key);
    let mut bytes = std::fs::read(&path).expect("read entry");
    let mid = bytes.len() / 2;
    bytes.truncate(mid);
    std::fs::write(&path, &bytes).expect("truncate entry");

    // The truncated entry is a miss: the daemon recomputes (source is
    // Computed, not ArtifactHit) and still returns identical bytes.
    match c
        .job(Op::Harden, cfg.clone(), image.clone())
        .expect("resubmit")
    {
        Response::Ok {
            source, artifact, ..
        } => {
            assert_eq!(source, Source::Computed, "corrupt entry recomputes");
            assert_eq!(artifact, cold, "recompute is byte-identical");
        }
        Response::Err(e) => panic!("resubmit failed: {e}"),
    }

    // ... and the recompute healed the entry: next submit is a hit.
    match c.job(Op::Harden, cfg, image).expect("warm submit") {
        Response::Ok {
            source, artifact, ..
        } => {
            assert_eq!(source, Source::ArtifactHit);
            assert_eq!(artifact, cold);
        }
        Response::Err(e) => panic!("warm submit failed: {e}"),
    }

    c.shutdown().expect("shutdown");
    handle.join().expect("daemon thread");
}

#[test]
fn profile_op_and_analyze_op_have_distinct_artifacts() {
    let (config, handle) = start("ops", 1);
    let image = workload_image_bytes();
    let cfg = HardenConfig::default().canonical_bytes();

    let mut c = Client::connect(&config.socket).expect("connect");
    let profiled = match c
        .job(Op::Profile, cfg.clone(), image.clone())
        .expect("profile")
    {
        Response::Ok { artifact, .. } => artifact,
        Response::Err(e) => panic!("profile failed: {e}"),
    };
    assert!(!profiled.is_empty(), "profile op returns an image");

    let analyzed = match c.job(Op::Analyze, cfg, image).expect("analyze") {
        Response::Ok {
            artifact, stats, ..
        } => {
            assert!(stats.contains("sites_considered="), "analyze returns stats");
            artifact
        }
        Response::Err(e) => panic!("analyze failed: {e}"),
    };
    assert!(analyzed.is_empty(), "analyze op returns stats only");

    c.shutdown().expect("shutdown");
    handle.join().expect("daemon thread");
}
