//! Hardening-as-a-service: a local daemon that accepts harden /
//! analyze / profile jobs over a length-prefixed Unix-socket protocol
//! and answers them from a content-addressed artifact cache when it
//! can.
//!
//! Three layers of reuse, strongest first:
//!
//! 1. **Artifact cache** ([`artifact::ArtifactCache`]): whole-job
//!    results keyed by `(tool version, input bytes, canonical config,
//!    op)`, persisted on disk with atomic write-then-rename
//!    publication and fully verified reads. A warm hit does zero
//!    analysis.
//! 2. **In-flight dedupe** ([`server::Server`]): N concurrent
//!    identical requests cost one computation; followers wait on the
//!    leader's result and respond with [`proto::Source::Deduped`].
//! 3. **Component cache** (`redfat_core::MemoryComponentCache`): for a
//!    *changed* input, per-CFG-component analysis results keyed by the
//!    component's structural digest are reused, so a one-component
//!    edit re-analyzes only that component while producing bytes
//!    identical to a cold run.
//!
//! Correctness never depends on the caches: any verification failure
//! (truncated, bit-flipped, wrong-version entry) classifies as a miss
//! and the job recomputes.
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod artifact;
pub mod client;
pub mod proto;
pub mod server;

pub use artifact::{artifact_key, ArtifactCache, ArtifactEntry};
pub use client::Client;
pub use proto::{Op, ProtoError, Request, Response, Source};
pub use server::{render_harden_stats, Server, ServerConfig, ServerStats};
