//! Content-addressed on-disk artifact cache.
//!
//! Artifacts are keyed by `sha256(tool version, input digest, config
//! digest, op)` and stored one file per key under the cache directory,
//! named `<key-hex>.rfa`. Publication is atomic: the entry is written
//! to a unique temporary file in the same directory and `rename(2)`d
//! into place, so readers only ever observe absent or complete files
//! and concurrent writers of the same key are idempotent.
//!
//! Reads are *verified*: the file must carry the expected magic,
//! format version, tool version, key, and a payload digest matching
//! the payload bytes. Any mismatch -- truncation, bit flips, an entry
//! written by a different tool version -- classifies as a cache miss
//! (the caller recomputes and rewrites the entry); corrupt on-disk
//! state can cost recomputation but can never serve wrong bytes.

use redfat_core::digest::{sha256, Digest, Sha256, TOOL_VERSION};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// On-disk entry magic.
const ENTRY_MAGIC: &[u8; 8] = b"RFATCACH";
/// On-disk format version.
const ENTRY_FORMAT: u32 = 1;

/// One cached job result: the artifact bytes plus the pipeline's
/// statistics rendering, so a warm hit reproduces the whole response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtifactEntry {
    /// The output image bytes (may be empty for analyze-only jobs).
    pub artifact: Vec<u8>,
    /// Human-readable pipeline statistics.
    pub stats: String,
}

/// The content-addressed cache rooted at one directory.
pub struct ArtifactCache {
    dir: PathBuf,
    tmp_counter: AtomicU64,
}

/// Derives the artifact key for a job: every input that can change the
/// output participates -- tool version, the submitted bytes, the
/// canonical config, and the operation.
pub fn artifact_key(image_bytes: &[u8], config_bytes: &[u8], op_byte: u8) -> Digest {
    let mut h = Sha256::new();
    let tool = TOOL_VERSION.as_bytes();
    h.update_u64(tool.len() as u64);
    h.update(tool);
    h.update_u64(image_bytes.len() as u64);
    h.update(image_bytes);
    h.update_u64(config_bytes.len() as u64);
    h.update(config_bytes);
    h.update(&[op_byte]);
    h.finalize()
}

impl ArtifactCache {
    /// Opens (creating if needed) the cache directory.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<ArtifactCache> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(ArtifactCache {
            dir,
            tmp_counter: AtomicU64::new(0),
        })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the published entry for `key`.
    pub fn entry_path(&self, key: &Digest) -> PathBuf {
        self.dir.join(format!("{}.rfa", key.to_hex()))
    }

    /// Looks up `key`, verifying the entry end to end. Returns `None`
    /// -- a miss -- for absent, truncated, corrupted, mis-keyed, or
    /// wrong-tool-version entries alike.
    pub fn get(&self, key: &Digest) -> Option<ArtifactEntry> {
        let bytes = std::fs::read(self.entry_path(key)).ok()?;
        decode_entry(&bytes, key)
    }

    /// Publishes `entry` under `key` atomically: temp-file write, then
    /// rename into place. Concurrent publishes of the same key race
    /// benignly (equal content by key derivation).
    pub fn put(&self, key: &Digest, entry: &ArtifactEntry) -> std::io::Result<()> {
        let n = self.tmp_counter.fetch_add(1, Ordering::Relaxed);
        let tmp = self
            .dir
            .join(format!(".tmp-{}-{}-{n}", key.to_hex(), std::process::id()));
        let bytes = encode_entry(key, entry);
        let publish = (|| {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
            std::fs::rename(&tmp, self.entry_path(key))
        })();
        if publish.is_err() {
            // Best-effort cleanup of the orphaned temp file.
            let _ = std::fs::remove_file(&tmp);
        }
        publish
    }
}

/// Serializes an entry: header (magic, format, tool version, key),
/// payload digest + length, then the payload (artifact + stats).
fn encode_entry(key: &Digest, entry: &ArtifactEntry) -> Vec<u8> {
    let mut payload = Vec::with_capacity(entry.artifact.len() + entry.stats.len() + 24);
    payload.extend_from_slice(&(entry.artifact.len() as u64).to_le_bytes());
    payload.extend_from_slice(&entry.artifact);
    payload.extend_from_slice(&(entry.stats.len() as u64).to_le_bytes());
    payload.extend_from_slice(entry.stats.as_bytes());

    let mut out = Vec::with_capacity(payload.len() + 128);
    out.extend_from_slice(ENTRY_MAGIC);
    out.extend_from_slice(&ENTRY_FORMAT.to_le_bytes());
    let tool = TOOL_VERSION.as_bytes();
    out.extend_from_slice(&(tool.len() as u64).to_le_bytes());
    out.extend_from_slice(tool);
    out.extend_from_slice(key.as_bytes());
    out.extend_from_slice(sha256(&payload).as_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Bounds-checked field reader over entry bytes; `None` anywhere means
/// the entry is corrupt and classifies as a miss.
struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.data.len())?;
        let out = &self.data[self.pos..end];
        self.pos = end;
        Some(out)
    }

    fn u32(&mut self) -> Option<u32> {
        let b = self.take(4)?;
        Some(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Option<u64> {
        let b = self.take(8)?;
        let mut le = [0u8; 8];
        le.copy_from_slice(b);
        Some(u64::from_le_bytes(le))
    }

    fn digest(&mut self) -> Option<Digest> {
        let b = self.take(32)?;
        let mut d = [0u8; 32];
        d.copy_from_slice(b);
        Some(Digest(d))
    }
}

/// Decodes and fully verifies entry bytes against the expected key.
fn decode_entry(bytes: &[u8], key: &Digest) -> Option<ArtifactEntry> {
    let mut r = Reader {
        data: bytes,
        pos: 0,
    };
    if r.take(ENTRY_MAGIC.len())? != ENTRY_MAGIC {
        return None;
    }
    if r.u32()? != ENTRY_FORMAT {
        return None;
    }
    let tool_len = r.u64()? as usize;
    if tool_len > bytes.len() {
        return None;
    }
    if r.take(tool_len)? != TOOL_VERSION.as_bytes() {
        return None;
    }
    if r.digest()? != *key {
        return None;
    }
    let payload_digest = r.digest()?;
    let payload_len = r.u64()? as usize;
    let payload = r.take(payload_len)?;
    if r.pos != bytes.len() {
        return None; // trailing bytes: not an entry we wrote
    }
    if sha256(payload) != payload_digest {
        return None;
    }

    let mut p = Reader {
        data: payload,
        pos: 0,
    };
    let artifact_len = p.u64()? as usize;
    let artifact = p.take(artifact_len)?.to_vec();
    let stats_len = p.u64()? as usize;
    let stats_bytes = p.take(stats_len)?;
    if p.pos != payload.len() {
        return None;
    }
    let stats = String::from_utf8(stats_bytes.to_vec()).ok()?;
    Some(ArtifactEntry { artifact, stats })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("redfat-artifact-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_get_roundtrip() {
        let dir = tmp_dir("roundtrip");
        let cache = ArtifactCache::open(&dir).unwrap();
        let key = artifact_key(b"image", b"config", 1);
        assert_eq!(cache.get(&key), None, "empty cache misses");
        let entry = ArtifactEntry {
            artifact: vec![7; 200],
            stats: "sites=3\n".to_string(),
        };
        cache.put(&key, &entry).unwrap();
        assert_eq!(cache.get(&key), Some(entry));
        // No stray temp files remain.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "temp files cleaned: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_separates_inputs_configs_and_ops() {
        let base = artifact_key(b"image", b"config", 1);
        assert_ne!(base, artifact_key(b"imagf", b"config", 1));
        assert_ne!(base, artifact_key(b"image", b"confih", 1));
        assert_ne!(base, artifact_key(b"image", b"config", 2));
        // Length-prefixing prevents field aliasing.
        assert_ne!(artifact_key(b"ab", b"c", 1), artifact_key(b"a", b"bc", 1));
    }

    /// Two jobs differing only in the allocator policy must land in
    /// different cache slots: the policy byte rides in the canonical
    /// config bytes, which participate in the key verbatim.
    #[test]
    fn key_separates_allocator_policies() {
        use redfat_core::HardenConfig;
        let mut keys = std::collections::HashSet::new();
        for kind in redfat_core::AllocPolicyKind::ALL {
            let cfg = HardenConfig {
                alloc_policy: kind,
                ..HardenConfig::default()
            };
            assert!(
                keys.insert(artifact_key(b"image", &cfg.canonical_bytes(), 1)),
                "policy {kind} collided with another policy's cache key"
            );
        }
    }

    #[test]
    fn wrong_key_file_is_a_miss() {
        let dir = tmp_dir("wrongkey");
        let cache = ArtifactCache::open(&dir).unwrap();
        let key_a = artifact_key(b"a", b"", 1);
        let key_b = artifact_key(b"b", b"", 1);
        let entry = ArtifactEntry {
            artifact: vec![1],
            stats: String::new(),
        };
        cache.put(&key_a, &entry).unwrap();
        // Copy A's entry to B's path: the embedded key mismatch must
        // classify as a miss, never serve A's bytes for B.
        std::fs::copy(cache.entry_path(&key_a), cache.entry_path(&key_b)).unwrap();
        assert_eq!(cache.get(&key_b), None);
        assert_eq!(cache.get(&key_a), Some(entry));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
