//! Minimal blocking client for the daemon protocol.

use crate::proto::{read_frame, write_frame, Op, ProtoError, Request, Response};
use std::os::unix::net::UnixStream;
use std::path::Path;

/// One connection to a running daemon.
pub struct Client {
    stream: UnixStream,
}

impl Client {
    /// Connects to the daemon listening at `socket`.
    pub fn connect(socket: impl AsRef<Path>) -> std::io::Result<Client> {
        Ok(Client {
            stream: UnixStream::connect(socket)?,
        })
    }

    /// Sends one request and blocks for its response.
    pub fn submit(&mut self, req: &Request) -> Result<Response, ProtoError> {
        write_frame(&mut self.stream, &req.encode())?;
        let payload = read_frame(&mut self.stream)?;
        Response::decode(&payload)
    }

    /// Submits a job op with the given canonical config and image
    /// bytes.
    pub fn job(&mut self, op: Op, config: Vec<u8>, image: Vec<u8>) -> Result<Response, ProtoError> {
        self.submit(&Request { op, config, image })
    }

    /// Fetches the daemon's statistics rendering.
    pub fn stats(&mut self) -> Result<String, ProtoError> {
        match self.submit(&Request {
            op: Op::Stats,
            config: Vec::new(),
            image: Vec::new(),
        })? {
            Response::Ok { stats, .. } => Ok(stats),
            Response::Err(e) => Err(ProtoError::Malformed(format!("stats refused: {e}"))),
        }
    }

    /// Asks the daemon to shut down (acknowledged before it exits).
    pub fn shutdown(&mut self) -> Result<(), ProtoError> {
        match self.submit(&Request {
            op: Op::Shutdown,
            config: Vec::new(),
            image: Vec::new(),
        })? {
            Response::Ok { .. } => Ok(()),
            Response::Err(e) => Err(ProtoError::Malformed(format!("shutdown refused: {e}"))),
        }
    }
}
