//! The daemon: accept loop, job scheduling, dedupe, and caching.
//!
//! One [`Server`] owns a Unix-domain listener, a [`WorkerPool`] that
//! runs pipeline jobs, an on-disk [`ArtifactCache`] for whole-job
//! results, and an in-memory [`MemoryComponentCache`] for per-CFG-
//! component analysis reuse across jobs. Request handling is
//! thread-per-connection (connections are few and local); the compute
//! itself is scheduled on the pool, so a flood of connections cannot
//! oversubscribe analysis.
//!
//! Identical concurrent requests are deduplicated: the first becomes
//! the *leader* and computes; followers block on the leader's
//! in-flight cell and reply from its result. N identical submissions
//! therefore cost one computation and N responses.

use crate::artifact::{artifact_key, ArtifactCache, ArtifactEntry};
use crate::proto::{read_frame, write_frame, Op, ProtoError, Request, Response, Source};
use redfat_core::digest::Digest;
use redfat_core::{harden_cached, instrument_profile, HardenConfig, HardenStats};
use redfat_core::{ComponentCache, MemoryComponentCache};
use redfat_elf::Image;
use redfat_parallel::WorkerPool;
use std::collections::HashMap;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Unix-domain socket path to listen on.
    pub socket: PathBuf,
    /// Artifact cache directory.
    pub cache_dir: PathBuf,
    /// Worker threads executing pipeline jobs.
    pub workers: usize,
    /// Analysis threads per job (`harden_threaded` sharding).
    pub threads: usize,
}

/// Monotonic server counters. All relaxed: they are reporting, not
/// synchronization.
#[derive(Default)]
pub struct ServerStats {
    /// Requests received (all ops).
    pub requests: AtomicU64,
    /// Job requests (harden/analyze/profile).
    pub job_requests: AtomicU64,
    /// Jobs answered from the on-disk artifact cache.
    pub artifact_hits: AtomicU64,
    /// Jobs computed by this process.
    pub computations: AtomicU64,
    /// Jobs answered by joining another request's in-flight
    /// computation.
    pub deduped: AtomicU64,
    /// Jobs that failed (bad input, pipeline error).
    pub errors: AtomicU64,
    /// CFG components analyzed fresh across all computations.
    pub components_analyzed: AtomicU64,
    /// CFG components served from the component cache.
    pub components_reused: AtomicU64,
}

impl ServerStats {
    /// Renders the counters as `key=value` lines (the `Stats` op
    /// response body).
    pub fn render(&self) -> String {
        let mut s = String::new();
        for (k, v) in [
            ("requests", &self.requests),
            ("job_requests", &self.job_requests),
            ("artifact_hits", &self.artifact_hits),
            ("computations", &self.computations),
            ("deduped", &self.deduped),
            ("errors", &self.errors),
            ("components_analyzed", &self.components_analyzed),
            ("components_reused", &self.components_reused),
        ] {
            s.push_str(k);
            s.push('=');
            s.push_str(&v.load(Ordering::Relaxed).to_string());
            s.push('\n');
        }
        s
    }
}

/// The result of one computed job, shared between the leader and any
/// deduplicated followers.
struct JobOutput {
    artifact: Vec<u8>,
    stats: String,
    micros: u64,
}

/// The cell followers block on while the leader computes.
struct Inflight {
    state: Mutex<Option<Result<Arc<JobOutput>, String>>>,
    done: Condvar,
}

impl Inflight {
    fn new() -> Inflight {
        Inflight {
            state: Mutex::new(None),
            done: Condvar::new(),
        }
    }

    fn fulfill(&self, result: Result<Arc<JobOutput>, String>) {
        *lock_riding_poison(&self.state) = Some(result);
        self.done.notify_all();
    }

    fn wait(&self) -> Result<Arc<JobOutput>, String> {
        let mut state = lock_riding_poison(&self.state);
        loop {
            if let Some(result) = state.as_ref() {
                return result.clone();
            }
            state = match self.done.wait(state) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }
}

/// Locks a mutex, riding through poisoning: every critical section in
/// this module is a single read or single write of an `Option`/map
/// entry, so a panic elsewhere cannot leave the value mid-update.
fn lock_riding_poison<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// State shared by the accept loop, connection handlers, and pool jobs.
struct Shared {
    config: ServerConfig,
    stats: ServerStats,
    artifacts: ArtifactCache,
    components: MemoryComponentCache,
    pool: WorkerPool,
    inflight: Mutex<HashMap<Digest, Arc<Inflight>>>,
    shutdown: AtomicBool,
}

/// The hardening-as-a-service daemon.
pub struct Server {
    listener: UnixListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the daemon's socket and opens its caches. A stale socket
    /// file at the path (from a previous daemon) is replaced.
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let artifacts = ArtifactCache::open(&config.cache_dir)?;
        if config.socket.exists() {
            std::fs::remove_file(&config.socket)?;
        }
        let listener = UnixListener::bind(&config.socket)?;
        let pool = WorkerPool::new(config.workers);
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                config,
                stats: ServerStats::default(),
                artifacts,
                components: MemoryComponentCache::new(),
                pool,
                inflight: Mutex::new(HashMap::new()),
                shutdown: AtomicBool::new(false),
            }),
        })
    }

    /// The bound socket path.
    pub fn socket(&self) -> &std::path::Path {
        &self.shared.config.socket
    }

    /// Serves requests until a `Shutdown` request arrives. Each
    /// connection gets a handler thread; job compute runs on the
    /// worker pool. Returns the final server statistics rendering.
    pub fn run(self) -> std::io::Result<String> {
        let mut handlers = Vec::new();
        for stream in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            let shared = self.shared.clone();
            if let Ok(h) = std::thread::Builder::new()
                .name("redfat-conn".to_string())
                .spawn(move || handle_connection(&shared, stream))
            {
                handlers.push(h);
            }
            // A handler may have processed Shutdown while we were
            // accepting; re-check before blocking on accept again.
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
        }
        for h in handlers {
            let _ = h.join();
        }
        let stats = self.shared.stats.render();
        let _ = std::fs::remove_file(&self.shared.config.socket);
        Ok(stats)
    }
}

/// Serves one connection: a sequence of request frames, each answered
/// with a response frame. Protocol errors answer with `Response::Err`
/// where a response can still be framed, and close the connection.
fn handle_connection(shared: &Arc<Shared>, stream: UnixStream) {
    let mut reader = match stream.try_clone() {
        Ok(r) => r,
        Err(_) => return,
    };
    let mut writer = stream;
    loop {
        let payload = match read_frame(&mut reader) {
            Ok(p) => p,
            // EOF or a poisoned length prefix: nothing more to answer.
            Err(_) => return,
        };
        shared.stats.requests.fetch_add(1, Ordering::Relaxed);
        let response = match Request::decode(&payload) {
            Ok(req) => dispatch(shared, req),
            Err(ProtoError::Malformed(m)) => {
                shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                Response::Err(format!("malformed request: {m}"))
            }
            Err(ProtoError::Io(e)) => {
                shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                Response::Err(format!("request i/o: {e}"))
            }
        };
        let closing = matches!(response, Response::Err(_));
        if write_frame(&mut writer, &response.encode()).is_err() {
            return;
        }
        if closing {
            return;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
    }
}

fn dispatch(shared: &Arc<Shared>, req: Request) -> Response {
    match req.op {
        Op::Stats => Response::Ok {
            source: Source::Computed,
            micros: 0,
            stats: shared.stats.render(),
            artifact: Vec::new(),
        },
        Op::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            // Wake the accept loop so `run` observes the flag even if
            // no further client ever connects.
            let _ = UnixStream::connect(&shared.config.socket);
            Response::Ok {
                source: Source::Computed,
                micros: 0,
                stats: String::new(),
                artifact: Vec::new(),
            }
        }
        Op::Harden | Op::Analyze | Op::Profile => handle_job(shared, req),
    }
}

fn handle_job(shared: &Arc<Shared>, req: Request) -> Response {
    shared.stats.job_requests.fetch_add(1, Ordering::Relaxed);
    let key = artifact_key(&req.image, &req.config, req.op.to_byte());

    // Warm path: a verified on-disk artifact answers immediately.
    let lookup_start = Instant::now();
    if let Some(entry) = shared.artifacts.get(&key) {
        shared.stats.artifact_hits.fetch_add(1, Ordering::Relaxed);
        return Response::Ok {
            source: Source::ArtifactHit,
            micros: elapsed_micros(lookup_start),
            stats: entry.stats,
            artifact: entry.artifact,
        };
    }

    // Cold path with in-flight dedupe: first arrival leads, the rest
    // follow its computation.
    let (cell, leader) = {
        let mut map = lock_riding_poison(&shared.inflight);
        match map.get(&key) {
            Some(cell) => (cell.clone(), false),
            None => {
                let cell = Arc::new(Inflight::new());
                map.insert(key, cell.clone());
                (cell, true)
            }
        }
    };

    if !leader {
        shared.stats.deduped.fetch_add(1, Ordering::Relaxed);
        return match cell.wait() {
            Ok(out) => Response::Ok {
                source: Source::Deduped,
                micros: out.micros,
                stats: out.stats.clone(),
                artifact: out.artifact.clone(),
            },
            Err(e) => Response::Err(e),
        };
    }

    let job_shared = shared.clone();
    let job_req = req;
    let handle = shared
        .pool
        .submit(move || compute_job(&job_shared, &job_req, &key));
    // A panicking job surfaces as Err through the pool's catch_unwind.
    let result = match handle.join() {
        Ok(r) => r,
        Err(panic_msg) => Err(panic_msg),
    };
    cell.fulfill(result.clone());
    lock_riding_poison(&shared.inflight).remove(&key);

    match result {
        Ok(out) => {
            shared.stats.computations.fetch_add(1, Ordering::Relaxed);
            Response::Ok {
                source: Source::Computed,
                micros: out.micros,
                stats: out.stats.clone(),
                artifact: out.artifact.clone(),
            }
        }
        Err(e) => {
            shared.stats.errors.fetch_add(1, Ordering::Relaxed);
            Response::Err(e)
        }
    }
}

/// Runs one pipeline job on a worker thread and publishes its artifact.
fn compute_job(shared: &Shared, req: &Request, key: &Digest) -> Result<Arc<JobOutput>, String> {
    let start = Instant::now();
    let config =
        HardenConfig::from_canonical_bytes(&req.config).map_err(|e| format!("bad config: {e}"))?;
    let image = Image::parse(&req.image).map_err(|e| format!("parse failed: {e}"))?;
    let hardened = match req.op {
        Op::Harden | Op::Analyze => harden_cached(
            &image,
            &config,
            shared.config.threads,
            &shared.components as &dyn ComponentCache,
        ),
        Op::Profile => instrument_profile(&image),
        // Non-job ops never reach compute (dispatch handles them).
        Op::Stats | Op::Shutdown => return Err("not a pipeline op".to_string()),
    }
    .map_err(|e| format!("pipeline failed: {e}"))?;

    let fresh = hardened
        .stats
        .components
        .saturating_sub(hardened.stats.components_reused);
    shared
        .stats
        .components_analyzed
        .fetch_add(fresh as u64, Ordering::Relaxed);
    shared
        .stats
        .components_reused
        .fetch_add(hardened.stats.components_reused as u64, Ordering::Relaxed);

    let artifact = match req.op {
        Op::Analyze => Vec::new(),
        _ => hardened.image.to_bytes(),
    };
    let out = Arc::new(JobOutput {
        stats: render_harden_stats(&hardened.stats),
        micros: elapsed_micros(start),
        artifact,
    });
    // Publication failure (disk full, permissions) degrades to an
    // uncached-but-correct response; the job itself succeeded.
    let _ = shared.artifacts.put(
        key,
        &ArtifactEntry {
            artifact: out.artifact.clone(),
            stats: out.stats.clone(),
        },
    );
    Ok(out)
}

fn elapsed_micros(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Renders pipeline statistics as `key=value` lines (the job response
/// body, and what the artifact cache persists alongside the bytes).
pub fn render_harden_stats(s: &HardenStats) -> String {
    format!(
        "sites_considered={}\nsites_eliminated={}\nsites_eliminated_flow={}\n\
         sites_eliminated_interproc={}\nsites_redundant={}\nsites_lowfat={}\n\
         sites_redzone={}\nbatches={}\nchecks={}\nsites_skipped={}\n\
         components={}\ncomponents_reused={}\ndegraded={}\n",
        s.sites_considered,
        s.sites_eliminated,
        s.sites_eliminated_flow,
        s.sites_eliminated_interproc,
        s.sites_redundant,
        s.sites_lowfat,
        s.sites_redzone,
        s.batches,
        s.checks,
        s.sites_skipped,
        s.components,
        s.components_reused,
        s.degraded(),
    )
}
