//! Wire protocol: length-prefixed frames over a local stream socket.
//!
//! Framing is a `u32` little-endian payload length followed by the
//! payload, capped at [`MAX_FRAME`] so a corrupt length prefix cannot
//! make the peer allocate gigabytes. Payloads are versioned by magic
//! (`RFS1` requests, `RFR1` responses); every multi-byte integer is
//! little-endian, and every variable-length field carries its own
//! length, so decoding is total: any malformed byte sequence decodes
//! to a structured error, never a panic or a wild slice.

use std::io::{Read, Write};

/// Upper bound on one frame's payload.
pub const MAX_FRAME: usize = 64 << 20;

/// Request payload magic.
pub const REQUEST_MAGIC: &[u8; 4] = b"RFS1";
/// Response payload magic.
pub const RESPONSE_MAGIC: &[u8; 4] = b"RFR1";

/// What the client is asking the daemon to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Harden the submitted image; the artifact is the hardened image.
    Harden,
    /// Run the harden pipeline for its analysis only; the response
    /// carries statistics but no artifact bytes.
    Analyze,
    /// Build the §5 profiling instrumentation of the submitted image.
    Profile,
    /// Report server statistics (no image or config).
    Stats,
    /// Ask the daemon to shut down after acknowledging.
    Shutdown,
}

impl Op {
    /// Wire byte for this op.
    pub fn to_byte(self) -> u8 {
        match self {
            Op::Harden => 1,
            Op::Analyze => 2,
            Op::Profile => 3,
            Op::Stats => 4,
            Op::Shutdown => 5,
        }
    }

    /// Decodes a wire byte.
    pub fn from_byte(b: u8) -> Option<Op> {
        match b {
            1 => Some(Op::Harden),
            2 => Some(Op::Analyze),
            3 => Some(Op::Profile),
            4 => Some(Op::Stats),
            5 => Some(Op::Shutdown),
            _ => None,
        }
    }

    /// `true` for the ops that submit an image through the pipeline.
    pub fn is_job(self) -> bool {
        matches!(self, Op::Harden | Op::Analyze | Op::Profile)
    }
}

/// How the daemon produced a successful job response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// Computed fresh by this request.
    Computed,
    /// Served from the on-disk artifact cache.
    ArtifactHit,
    /// Deduplicated onto another in-flight identical request's
    /// computation.
    Deduped,
}

impl Source {
    fn to_byte(self) -> u8 {
        match self {
            Source::Computed => 0,
            Source::ArtifactHit => 1,
            Source::Deduped => 2,
        }
    }

    fn from_byte(b: u8) -> Option<Source> {
        match b {
            0 => Some(Source::Computed),
            1 => Some(Source::ArtifactHit),
            2 => Some(Source::Deduped),
            _ => None,
        }
    }
}

/// A decoded client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The requested operation.
    pub op: Op,
    /// Canonical [`HardenConfig`] bytes (empty for `Stats`/`Shutdown`).
    ///
    /// [`HardenConfig`]: redfat_core::HardenConfig
    pub config: Vec<u8>,
    /// The input image's ELF serialization (empty for
    /// `Stats`/`Shutdown`).
    pub image: Vec<u8>,
}

/// A decoded daemon response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The request succeeded.
    Ok {
        /// Where the result came from.
        source: Source,
        /// Microseconds the server spent producing the result (compute
        /// time for `Computed`/`Deduped`, lookup time for
        /// `ArtifactHit`).
        micros: u64,
        /// Human-readable statistics (pipeline stats for jobs, server
        /// stats for `Stats`, empty for `Shutdown`).
        stats: String,
        /// The artifact bytes (hardened/profiled image; empty for
        /// `Analyze`, `Stats` and `Shutdown`).
        artifact: Vec<u8>,
    },
    /// The request failed; the daemon stays up.
    Err(String),
}

/// A protocol-level failure: bad framing, bad magic, or a field that
/// does not decode.
#[derive(Debug)]
pub enum ProtoError {
    /// The underlying stream failed.
    Io(std::io::Error),
    /// The peer sent bytes that do not decode.
    Malformed(String),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "socket i/o failed: {e}"),
            ProtoError::Malformed(m) => write!(f, "malformed frame: {m}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> ProtoError {
        ProtoError::Io(e)
    }
}

fn malformed(msg: impl Into<String>) -> ProtoError {
    ProtoError::Malformed(msg.into())
}

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), ProtoError> {
    if payload.len() > MAX_FRAME {
        return Err(malformed(format!(
            "frame of {} bytes exceeds the {MAX_FRAME}-byte cap",
            payload.len()
        )));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one length-prefixed frame.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, ProtoError> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME {
        return Err(malformed(format!(
            "declared frame length {len} exceeds the {MAX_FRAME}-byte cap"
        )));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// A cursor over a frame payload with bounds-checked field reads.
struct Fields<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Fields<'a> {
    fn new(data: &'a [u8]) -> Fields<'a> {
        Fields { data, pos: 0 }
    }

    fn bytes(&mut self, n: usize, what: &str) -> Result<&'a [u8], ProtoError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.data.len())
            .ok_or_else(|| malformed(format!("truncated {what}")))?;
        let out = &self.data[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self, what: &str) -> Result<u8, ProtoError> {
        Ok(self.bytes(1, what)?[0])
    }

    fn u64(&mut self, what: &str) -> Result<u64, ProtoError> {
        let b = self.bytes(8, what)?;
        let mut le = [0u8; 8];
        le.copy_from_slice(b);
        Ok(u64::from_le_bytes(le))
    }

    fn var_bytes(&mut self, what: &str) -> Result<Vec<u8>, ProtoError> {
        let len = self.u64(what)? as usize;
        if len > MAX_FRAME {
            return Err(malformed(format!(
                "{what} declares {len} bytes, over the frame cap"
            )));
        }
        Ok(self.bytes(len, what)?.to_vec())
    }

    fn var_string(&mut self, what: &str) -> Result<String, ProtoError> {
        let bytes = self.var_bytes(what)?;
        String::from_utf8(bytes).map_err(|_| malformed(format!("{what} is not UTF-8")))
    }

    fn finish(self, what: &str) -> Result<(), ProtoError> {
        if self.pos != self.data.len() {
            return Err(malformed(format!(
                "{} trailing bytes after {what}",
                self.data.len() - self.pos
            )));
        }
        Ok(())
    }
}

fn push_var_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
    out.extend_from_slice(bytes);
}

impl Request {
    /// Encodes to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.image.len() + self.config.len() + 32);
        out.extend_from_slice(REQUEST_MAGIC);
        out.push(self.op.to_byte());
        push_var_bytes(&mut out, &self.config);
        push_var_bytes(&mut out, &self.image);
        out
    }

    /// Decodes a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Request, ProtoError> {
        let mut f = Fields::new(payload);
        if f.bytes(4, "request magic")? != REQUEST_MAGIC {
            return Err(malformed("bad request magic"));
        }
        let op_byte = f.u8("request op")?;
        let op = Op::from_byte(op_byte)
            .ok_or_else(|| malformed(format!("unknown op byte {op_byte}")))?;
        let config = f.var_bytes("request config")?;
        let image = f.var_bytes("request image")?;
        f.finish("request")?;
        Ok(Request { op, config, image })
    }
}

impl Response {
    /// Encodes to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(RESPONSE_MAGIC);
        match self {
            Response::Ok {
                source,
                micros,
                stats,
                artifact,
            } => {
                out.push(0);
                out.push(source.to_byte());
                out.extend_from_slice(&micros.to_le_bytes());
                push_var_bytes(&mut out, stats.as_bytes());
                push_var_bytes(&mut out, artifact);
            }
            Response::Err(msg) => {
                out.push(1);
                push_var_bytes(&mut out, msg.as_bytes());
            }
        }
        out
    }

    /// Decodes a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Response, ProtoError> {
        let mut f = Fields::new(payload);
        if f.bytes(4, "response magic")? != RESPONSE_MAGIC {
            return Err(malformed("bad response magic"));
        }
        match f.u8("response status")? {
            0 => {
                let source_byte = f.u8("response source")?;
                let source = Source::from_byte(source_byte)
                    .ok_or_else(|| malformed(format!("unknown source byte {source_byte}")))?;
                let micros = f.u64("response micros")?;
                let stats = f.var_string("response stats")?;
                let artifact = f.var_bytes("response artifact")?;
                f.finish("response")?;
                Ok(Response::Ok {
                    source,
                    micros,
                    stats,
                    artifact,
                })
            }
            1 => {
                let msg = f.var_string("response error")?;
                f.finish("response")?;
                Ok(Response::Err(msg))
            }
            other => Err(malformed(format!("unknown status byte {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let req = Request {
            op: Op::Harden,
            config: vec![1, 2, 3],
            image: vec![9; 100],
        };
        assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        let empty = Request {
            op: Op::Stats,
            config: vec![],
            image: vec![],
        };
        assert_eq!(Request::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn response_roundtrip() {
        let ok = Response::Ok {
            source: Source::Deduped,
            micros: 12_345,
            stats: "components=3\n".to_string(),
            artifact: vec![0xAA; 64],
        };
        assert_eq!(Response::decode(&ok.encode()).unwrap(), ok);
        let err = Response::Err("harden failed: no entry".to_string());
        assert_eq!(Response::decode(&err.encode()).unwrap(), err);
    }

    #[test]
    fn decode_rejects_malformed() {
        let req = Request {
            op: Op::Harden,
            config: vec![1, 2, 3],
            image: vec![9; 10],
        };
        let good = req.encode();
        // Every truncation must fail cleanly.
        for len in 0..good.len() {
            assert!(Request::decode(&good[..len]).is_err(), "truncated to {len}");
        }
        // Trailing garbage, bad magic, bad op.
        let mut padded = good.clone();
        padded.push(0);
        assert!(Request::decode(&padded).is_err());
        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xFF;
        assert!(Request::decode(&bad_magic).is_err());
        let mut bad_op = good;
        bad_op[4] = 99;
        assert!(Request::decode(&bad_op).is_err());

        let ok = Response::Ok {
            source: Source::Computed,
            micros: 1,
            stats: "s".to_string(),
            artifact: vec![1],
        };
        let good = ok.encode();
        for len in 0..good.len() {
            assert!(
                Response::decode(&good[..len]).is_err(),
                "truncated to {len}"
            );
        }
        // A declared field length far beyond the data must error, not
        // allocate or slice wild.
        let mut huge = Response::Err("x".to_string()).encode();
        let at = RESPONSE_MAGIC.len() + 1; // error-message length field
        huge[at..at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(Response::decode(&huge).is_err());
    }

    #[test]
    fn frame_roundtrip_and_cap() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), b"hello");

        // A poisoned length prefix is rejected before allocation.
        let mut poisoned = Vec::new();
        poisoned.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut cursor = std::io::Cursor::new(poisoned);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(ProtoError::Malformed(_))
        ));
    }

    #[test]
    fn op_bytes_roundtrip() {
        for op in [
            Op::Harden,
            Op::Analyze,
            Op::Profile,
            Op::Stats,
            Op::Shutdown,
        ] {
            assert_eq!(Op::from_byte(op.to_byte()), Some(op));
        }
        assert_eq!(Op::from_byte(0), None);
        assert_eq!(Op::from_byte(6), None);
    }
}
