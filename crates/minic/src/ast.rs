//! Abstract syntax tree for mini-C.

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (signed)
    Div,
    /// `%` (signed)
    Rem,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>` (arithmetic)
    Shr,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&` (short-circuit)
    LAnd,
    /// `||` (short-circuit)
    LOr,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Bitwise not.
    Not,
    /// Logical not (`!`): 1 if zero, else 0.
    LNot,
}

/// Expressions. All values are 64-bit integers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Variable (local, parameter or global scalar) read.
    Var(String),
    /// Address of a global array's first element.
    GlobalAddr(String),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// 8-byte indexed load: `base[index]`.
    Index(Box<Expr>, Box<Expr>),
    /// Function call.
    Call(String, Vec<Expr>),
}

/// Statements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `var name = init;`
    Decl(String, Expr),
    /// `name = value;` (local or global scalar)
    Assign(String, Expr),
    /// `base[index] = value;` (8-byte store)
    Store(Expr, Expr, Expr),
    /// Expression statement (e.g. a call).
    Expr(Expr),
    /// `if (cond) { .. } else { .. }`
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while (cond) { .. }`
    While(Expr, Vec<Stmt>),
    /// `for (init; cond; step) { .. }` -- desugared by the parser into
    /// `init; while (cond) { body; step; }` but kept structured so
    /// `continue` jumps to `step`.
    For(Box<Stmt>, Expr, Box<Stmt>, Vec<Stmt>),
    /// `return expr;`
    Return(Expr),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Name.
    pub name: String,
    /// Parameter names (at most 6).
    pub params: Vec<String>,
    /// Body.
    pub body: Vec<Stmt>,
}

/// A global declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Global {
    /// Name.
    pub name: String,
    /// Element count: 1 for scalars, N for `global name[N];`.
    pub elems: u64,
}

/// A whole program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    /// Globals in declaration order.
    pub globals: Vec<Global>,
    /// Functions in declaration order. Must contain `main`.
    pub functions: Vec<Function>,
}
