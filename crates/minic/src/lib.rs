//! mini-C: a small C-like language compiled to the x86-64 subset.
//!
//! The RedFat paper evaluates on SPEC CPU2006 and Chrome -- megabytes of
//! compiled C/C++/Fortran. This crate is the reproduction's compiler
//! substrate: it turns C-like source into real machine code in ELF
//! images, so the workloads exercising the hardening pipeline are
//! *compiled programs* with the memory-access idioms the paper cares
//! about, not hand-crafted snippets:
//!
//! * heap arrays accessed through `disp(base,index,scale)` operands
//!   (including constant-offset forms that give check *merging* real
//!   material);
//! * locals and spill temporaries addressed off `%rsp`, which check
//!   *elimination* removes -- the same reason most stack traffic is free
//!   in the paper;
//! * pointer arithmetic, including the `array - K` anti-idiom and
//!   Fortran-style non-zero array bases that produce intentional
//!   out-of-bounds base pointers (the §5 false-positive generators);
//! * function calls, loops, branches, byte-granular access (`load8`/
//!   `store8`), globals, and runtime calls (`malloc`/`free`/IO) through
//!   `syscall` stubs.
//!
//! # Language
//!
//! ```text
//! global seed;            // global scalar
//! global table[64];       // global array (8-byte elements)
//!
//! fn add(x, y) { return x + y; }
//!
//! fn main() {
//!     var a = malloc(10 * 8);
//!     for (var i = 0; i < 10; i = i + 1) { a[i] = add(i, i); }
//!     print(a[9]);
//!     free(a);
//!     return 0;
//! }
//! ```
//!
//! All values are 64-bit integers; pointers are byte addresses; `a[i]`
//! scales by 8; `load8`/`store8` access single bytes. Functions take up
//! to six parameters. `input()` reads the next integer from the guest
//! input queue (returns -1 at EOF); `print(v)`/`putc(c)` write to the
//! guest output streams.
//!
//! # Examples
//!
//! ```
//! use redfat_minic::compile;
//!
//! let image = compile("fn main() { print(6 * 7); return 0; }").unwrap();
//! assert!(image.exec_segments().count() > 0);
//! ```

mod ast;
mod codegen;
mod lexer;
mod parser;

pub use ast::{BinOp, Expr, Function, Global, Program, Stmt, UnOp};
pub use codegen::{CodegenError, CodegenOptions};
pub use lexer::{LexError, Token};
pub use parser::ParseError;

use redfat_elf::Image;

/// A compilation failure.
#[derive(Debug)]
pub enum CompileError {
    /// Lexical error.
    Lex(LexError),
    /// Syntax error.
    Parse(ParseError),
    /// Code generation error.
    Codegen(CodegenError),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Lex(e) => write!(f, "lex error: {e}"),
            CompileError::Parse(e) => write!(f, "parse error: {e}"),
            CompileError::Codegen(e) => write!(f, "codegen error: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Compiles mini-C source into an ELF image ready for the emulator (and
/// for the RedFat hardening pipeline).
pub fn compile(source: &str) -> Result<Image, CompileError> {
    let tokens = lexer::lex(source).map_err(CompileError::Lex)?;
    let program = parser::parse(&tokens).map_err(CompileError::Parse)?;
    codegen::generate(&program).map_err(CompileError::Codegen)
}

/// Parses mini-C source to an AST (exposed for tooling/tests).
pub fn parse_program(source: &str) -> Result<Program, CompileError> {
    let tokens = lexer::lex(source).map_err(CompileError::Lex)?;
    parser::parse(&tokens).map_err(CompileError::Parse)
}

/// Compiles a mini-C *library*: no `main`, no startup stub, text and
/// globals at caller-chosen bases. Its exported functions are reached
/// from other images through the `callptr` intrinsic, using addresses
/// from the returned image's symbol table -- the reproduction's analogue
/// of a shared object (paper §7.4).
pub fn compile_library(
    source: &str,
    code_base: u64,
    globals_base: u64,
) -> Result<Image, CompileError> {
    let tokens = lexer::lex(source).map_err(CompileError::Lex)?;
    let program = parser::parse_library(&tokens).map_err(CompileError::Parse)?;
    codegen::generate_with(
        &program,
        CodegenOptions {
            code_base,
            globals_base,
            entry_stub: false,
        },
    )
    .map_err(CompileError::Codegen)
}
