//! Code generation: mini-C AST → x86-64 machine code in an ELF image.
//!
//! The generated code style deliberately mimics a simple optimizing
//! compiler's output on x86-64:
//!
//! * locals, parameters and expression temporaries live in a fixed
//!   `%rsp`-relative frame (frame pointer omitted, like `-O2` code), so
//!   stack traffic is eliminable by RedFat's check elimination;
//! * array accesses use full `disp(base,index,scale)` memory operands;
//! * consecutive constant-index stores/loads through the same pointer
//!   (struct-init / unrolled patterns) are emitted through a common
//!   address register, reproducing the batching/merging material of the
//!   paper's Example 2.

use crate::ast::{BinOp, Expr, Function, Program, Stmt, UnOp};
use redfat_elf::{Image, ImageKind, SegFlags, Segment};
use redfat_emu::syscalls;
use redfat_vm::layout;
use redfat_x86::{AluOp, Asm, AsmError, Cond, Inst, Label, Mem, Op, Operands, Reg, ShiftOp, Width};
use std::collections::HashMap;

/// Maximum expression nesting depth (temporary slots per frame).
const MAX_TEMPS: i64 = 24;

/// Dedicated address register for batched store/load runs.
const ADDR_REG: Reg = Reg::R11;

/// A code generation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodegenError {
    /// Reference to an undefined variable.
    UndefinedVar(String),
    /// Reference to an undefined function.
    UndefinedFn(String),
    /// Call with the wrong number of arguments.
    ArityMismatch(String, usize, usize),
    /// Expression nesting exceeds the temporary budget.
    ExprTooDeep,
    /// `break`/`continue` outside a loop.
    NotInLoop,
    /// Duplicate definition.
    Duplicate(String),
    /// Assembly failed (e.g. out-of-range immediates).
    Asm(String),
}

impl std::fmt::Display for CodegenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodegenError::UndefinedVar(n) => write!(f, "undefined variable {n}"),
            CodegenError::UndefinedFn(n) => write!(f, "undefined function {n}"),
            CodegenError::ArityMismatch(n, want, got) => {
                write!(f, "{n} expects {want} args, got {got}")
            }
            CodegenError::ExprTooDeep => write!(f, "expression too deeply nested"),
            CodegenError::NotInLoop => write!(f, "break/continue outside loop"),
            CodegenError::Duplicate(n) => write!(f, "duplicate definition of {n}"),
            CodegenError::Asm(e) => write!(f, "assembly error: {e}"),
        }
    }
}

impl std::error::Error for CodegenError {}

impl From<AsmError> for CodegenError {
    fn from(e: AsmError) -> CodegenError {
        CodegenError::Asm(e.to_string())
    }
}

/// Where a named value lives.
#[derive(Debug, Clone, Copy)]
enum Place {
    /// `offset(%rsp)`.
    Slot(i64),
    /// A callee-saved pool register (register-allocated local).
    RegVar(Reg),
    /// Absolute global address.
    Global(u64),
}

/// Callee-saved registers handed to the first few locals/parameters of
/// each function -- the analogue of `-O2` keeping hot scalars in
/// registers. Never used as codegen scratch.
const REG_POOL: [Reg; 9] = [
    Reg::Rbx,
    Reg::R12,
    Reg::R13,
    Reg::R14,
    Reg::R15,
    Reg::Rbp,
    Reg::R10,
    Reg::R9,
    Reg::R8,
];

/// A leaf operand usable directly as an ALU source.
#[derive(Debug, Clone, Copy)]
enum Leaf {
    Imm(i32),
    Reg(Reg),
    Mem(Mem),
}

struct FnCtx {
    vars: Vec<HashMap<String, Place>>,
    /// Pool registers allocated per scope (returned on scope exit, so
    /// sibling scopes reuse them -- a lifetime-aware allocator lite).
    scope_regs: Vec<Vec<Reg>>,
    nlocals: i64,
    /// Currently free pool registers (stack; top = next to hand out).
    free_regs: Vec<Reg>,
    /// Pool size this function started with.
    pool_len: usize,
    /// High-water mark of concurrently allocated pool registers.
    max_regs: usize,
    /// Names eligible for a pool register (frequency-ranked pre-pass).
    reg_names: std::collections::HashSet<String>,
    depth: i64,
    epilogue: Label,
    loops: Vec<(Label, Label)>, // (continue target, break target)
}

struct Gen {
    asm: Asm,
    globals: HashMap<String, (u64, u64)>, // name -> (addr, elems)
    fn_arity: HashMap<String, usize>,
}

impl Gen {
    fn frame_size(f: &Function) -> i64 {
        // Temps + params + a generous local budget, computed exactly by
        // counting declarations (including nested blocks).
        fn count_decls(stmts: &[Stmt]) -> i64 {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::Decl(..) => 1,
                    Stmt::If(_, a, b) => count_decls(a) + count_decls(b),
                    Stmt::While(_, b) => count_decls(b),
                    Stmt::For(init, _, _, b) => {
                        count_decls(std::slice::from_ref(init)) + count_decls(b)
                    }
                    _ => 0,
                })
                .sum()
        }
        8 * (MAX_TEMPS + f.params.len() as i64 + count_decls(&f.body)) + 8
    }

    fn temp_slot(depth: i64) -> Mem {
        Mem::base_disp(Reg::Rsp, 8 * depth)
    }

    fn lookup(&self, ctx: &FnCtx, name: &str) -> Option<Place> {
        for scope in ctx.vars.iter().rev() {
            if let Some(&p) = scope.get(name) {
                return Some(p);
            }
        }
        self.globals.get(name).map(|&(addr, _)| Place::Global(addr))
    }

    fn place_mem(place: Place) -> Mem {
        match place {
            Place::Slot(off) => Mem::base_disp(Reg::Rsp, off),
            Place::Global(addr) => Mem::abs(addr as i64),
            Place::RegVar(r) => unreachable!("register-resident {r:?} has no memory home"),
        }
    }

    /// Allocates a home for a new local: a pool register if the
    /// frequency pre-pass selected this name (the -O2 analogue of
    /// keeping the hottest scalars in registers), a stack slot
    /// otherwise.
    fn alloc_place(ctx: &mut FnCtx, name: &str) -> Place {
        if ctx.reg_names.contains(name) {
            if let Some(r) = ctx.free_regs.pop() {
                ctx.scope_regs
                    .last_mut()
                    .expect("scope stack non-empty")
                    .push(r);
                ctx.max_regs = ctx.max_regs.max(ctx.pool_len - ctx.free_regs.len());
                return Place::RegVar(r);
            }
        }
        let off = 8 * (MAX_TEMPS + ctx.nlocals);
        ctx.nlocals += 1;
        Place::Slot(off)
    }

    /// Frequency pre-pass: ranks variable names by static occurrence
    /// count (loop bodies weighted 3x per nesting level) and returns the
    /// `pool_len` hottest -- only they may occupy pool registers, so an
    /// inner-loop scalar never loses its register to a cold outer local.
    fn hot_names(f: &Function, pool_len: usize) -> std::collections::HashSet<String> {
        use std::collections::HashMap as Counts;
        fn count_expr(e: &Expr, c: &mut Counts<String, usize>) {
            match e {
                Expr::Var(n) => *c.entry(n.clone()).or_default() += 1,
                Expr::Bin(_, a, b) => {
                    count_expr(a, c);
                    count_expr(b, c);
                }
                Expr::Un(_, a) => count_expr(a, c),
                Expr::Index(a, b) => {
                    // Index participants benefit doubly (they form
                    // memory operands): weight them heavier.
                    count_expr(a, c);
                    count_expr(b, c);
                    if let Expr::Var(n) = &**a {
                        *c.entry(n.clone()).or_default() += 2;
                    }
                    if let Expr::Var(n) = &**b {
                        *c.entry(n.clone()).or_default() += 2;
                    }
                }
                Expr::Call(_, args) => args.iter().for_each(|a| count_expr(a, c)),
                Expr::Int(_) | Expr::GlobalAddr(_) => {}
            }
        }
        fn count_stmt(s: &Stmt, c: &mut Counts<String, usize>) {
            match s {
                Stmt::Decl(n, e) | Stmt::Assign(n, e) => {
                    *c.entry(n.clone()).or_default() += 1;
                    count_expr(e, c);
                }
                Stmt::Store(b, i, v) => {
                    count_expr(b, c);
                    count_expr(i, c);
                    count_expr(v, c);
                    if let Expr::Var(n) = b {
                        *c.entry(n.clone()).or_default() += 2;
                    }
                }
                Stmt::Expr(e) | Stmt::Return(e) => count_expr(e, c),
                Stmt::If(e, a, b) => {
                    count_expr(e, c);
                    a.iter().for_each(|s| count_stmt(s, c));
                    b.iter().for_each(|s| count_stmt(s, c));
                }
                Stmt::While(e, b) => {
                    count_expr(e, c);
                    // Loop bodies weigh triple: that is where registers
                    // pay off.
                    let mut inner = Counts::new();
                    b.iter().for_each(|s| count_stmt(s, &mut inner));
                    for (k, v) in inner {
                        *c.entry(k).or_default() += 3 * v;
                    }
                }
                Stmt::For(init, e, step, b) => {
                    count_stmt(init, c);
                    count_expr(e, c);
                    let mut inner = Counts::new();
                    count_stmt(step, &mut inner);
                    b.iter().for_each(|s| count_stmt(s, &mut inner));
                    for (k, v) in inner {
                        *c.entry(k).or_default() += 3 * v;
                    }
                }
                Stmt::Break | Stmt::Continue => {}
            }
        }
        let mut counts = Counts::new();
        for p in &f.params {
            *counts.entry(p.clone()).or_default() += 1;
        }
        for s in &f.body {
            count_stmt(s, &mut counts);
        }
        let mut ranked: Vec<(String, usize)> = counts.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.into_iter().take(pool_len).map(|(n, _)| n).collect()
    }

    /// Largest user-call arity in a function (pool registers that double
    /// as the 5th/6th argument registers are only safe below it).
    fn max_call_arity(&self, f: &Function) -> usize {
        fn expr_arity(e: &Expr, g: &Gen) -> usize {
            match e {
                Expr::Call(name, args) => {
                    let own = if g.fn_arity.contains_key(name) {
                        args.len()
                    } else {
                        0 // intrinsics use rdi/rsi/rdx only
                    };
                    own.max(args.iter().map(|a| expr_arity(a, g)).max().unwrap_or(0))
                }
                Expr::Bin(_, a, b) | Expr::Index(a, b) => expr_arity(a, g).max(expr_arity(b, g)),
                Expr::Un(_, a) => expr_arity(a, g),
                _ => 0,
            }
        }
        fn stmt_arity(s: &Stmt, g: &Gen) -> usize {
            match s {
                Stmt::Decl(_, e) | Stmt::Assign(_, e) | Stmt::Expr(e) | Stmt::Return(e) => {
                    expr_arity(e, g)
                }
                Stmt::Store(a, b, c) => {
                    expr_arity(a, g).max(expr_arity(b, g)).max(expr_arity(c, g))
                }
                Stmt::If(e, a, b) => expr_arity(e, g)
                    .max(a.iter().map(|s| stmt_arity(s, g)).max().unwrap_or(0))
                    .max(b.iter().map(|s| stmt_arity(s, g)).max().unwrap_or(0)),
                Stmt::While(e, b) => {
                    expr_arity(e, g).max(b.iter().map(|s| stmt_arity(s, g)).max().unwrap_or(0))
                }
                Stmt::For(i, e, st, b) => stmt_arity(i, g)
                    .max(expr_arity(e, g))
                    .max(stmt_arity(st, g))
                    .max(b.iter().map(|s| stmt_arity(s, g)).max().unwrap_or(0)),
                _ => 0,
            }
        }
        f.body
            .iter()
            .map(|s| stmt_arity(s, self))
            .max()
            .unwrap_or(0)
    }

    /// Resolves `e` to a register-resident variable, if it is one.
    fn reg_var(&self, ctx: &FnCtx, e: &Expr) -> Option<Reg> {
        match e {
            Expr::Var(name) => match self.lookup(ctx, name)? {
                Place::RegVar(r) => Some(r),
                _ => None,
            },
            _ => None,
        }
    }

    /// Classifies an expression as a directly usable ALU operand.
    ///
    /// Register-resident bases/indices make whole `a[i]` loads leaves
    /// (`op %rax, (%rbx,%r12,8)`), exactly the compiled-C shape the
    /// paper's instrumentation targets.
    fn leaf(&self, ctx: &FnCtx, e: &Expr) -> Option<Leaf> {
        match e {
            Expr::Int(v) => i32::try_from(*v).ok().map(Leaf::Imm),
            Expr::Var(name) => match self.lookup(ctx, name)? {
                Place::RegVar(r) => Some(Leaf::Reg(r)),
                p => Some(Leaf::Mem(Self::place_mem(p))),
            },
            Expr::GlobalAddr(name) => {
                let &(addr, _) = self.globals.get(name)?;
                i32::try_from(addr).ok().map(Leaf::Imm)
            }
            Expr::Index(base, idx) => {
                let rb = self.reg_var(ctx, base)?;
                match &**idx {
                    Expr::Int(k) => Some(Leaf::Mem(Mem::base_disp(rb, 8 * *k))),
                    Expr::Var(_) => {
                        let ri = self.reg_var(ctx, idx)?;
                        Some(Leaf::Mem(Mem::bis(rb, ri, 8, 0)))
                    }
                    Expr::Bin(BinOp::Add, i, k) => {
                        let ri = self.reg_var(ctx, i)?;
                        let Expr::Int(kv) = **k else { return None };
                        Some(Leaf::Mem(Mem::bis(rb, ri, 8, 8 * kv)))
                    }
                    Expr::Bin(BinOp::Sub, i, k) => {
                        let ri = self.reg_var(ctx, i)?;
                        let Expr::Int(kv) = **k else { return None };
                        Some(Leaf::Mem(Mem::bis(rb, ri, 8, -8 * kv)))
                    }
                    _ => None,
                }
            }
            _ => None,
        }
    }

    /// Evaluates `e` into `rax`.
    fn expr(&mut self, ctx: &mut FnCtx, e: &Expr) -> Result<(), CodegenError> {
        match e {
            Expr::Int(v) => self.asm.mov_ri(Width::W64, Reg::Rax, *v),
            Expr::Var(name) => {
                let p = self
                    .lookup(ctx, name)
                    .ok_or_else(|| CodegenError::UndefinedVar(name.clone()))?;
                match p {
                    Place::RegVar(r) => self.asm.mov_rr(Width::W64, Reg::Rax, r),
                    _ => self.asm.mov_rm(Width::W64, Reg::Rax, Self::place_mem(p)),
                }
            }
            Expr::GlobalAddr(name) => {
                let &(addr, _) = self
                    .globals
                    .get(name)
                    .ok_or_else(|| CodegenError::UndefinedVar(name.clone()))?;
                self.asm.mov_ri(Width::W64, Reg::Rax, addr as i64);
            }
            Expr::Un(op, inner) => {
                self.expr(ctx, inner)?;
                match op {
                    UnOp::Neg => self.asm.neg_r(Width::W64, Reg::Rax),
                    UnOp::Not => {
                        self.asm
                            .emit(Inst::new(Op::Not, Width::W64, Operands::R(Reg::Rax)))?
                    }
                    UnOp::LNot => {
                        self.asm.test_rr(Width::W64, Reg::Rax, Reg::Rax);
                        self.asm.setcc_r(Cond::E, Reg::Rax);
                        self.asm.emit(Inst::new(
                            Op::Movzx8,
                            Width::W64,
                            Operands::RR {
                                dst: Reg::Rax,
                                src: Reg::Rax,
                            },
                        ))?;
                    }
                }
            }
            Expr::Bin(BinOp::LAnd, l, r) => {
                let falsy = self.asm.label();
                let end = self.asm.label();
                self.expr(ctx, l)?;
                self.asm.test_rr(Width::W64, Reg::Rax, Reg::Rax);
                self.asm.jcc_label(Cond::E, falsy);
                self.expr(ctx, r)?;
                self.asm.test_rr(Width::W64, Reg::Rax, Reg::Rax);
                self.asm.jcc_label(Cond::E, falsy);
                self.asm.mov_ri(Width::W64, Reg::Rax, 1);
                self.asm.jmp_label(end);
                self.asm.bind(falsy)?;
                self.asm.mov_ri(Width::W64, Reg::Rax, 0);
                self.asm.bind(end)?;
            }
            Expr::Bin(BinOp::LOr, l, r) => {
                let truthy = self.asm.label();
                let end = self.asm.label();
                self.expr(ctx, l)?;
                self.asm.test_rr(Width::W64, Reg::Rax, Reg::Rax);
                self.asm.jcc_label(Cond::Ne, truthy);
                self.expr(ctx, r)?;
                self.asm.test_rr(Width::W64, Reg::Rax, Reg::Rax);
                self.asm.jcc_label(Cond::Ne, truthy);
                self.asm.mov_ri(Width::W64, Reg::Rax, 0);
                self.asm.jmp_label(end);
                self.asm.bind(truthy)?;
                self.asm.mov_ri(Width::W64, Reg::Rax, 1);
                self.asm.bind(end)?;
            }
            Expr::Bin(op, l, r) => {
                // Commutative reassociation: `leaf op complex` evaluates
                // the complex side first and applies the leaf directly,
                // avoiding a temp-slot round trip (accumulation patterns
                // like `acc = acc + f(x)` hit this constantly).
                if self.leaf(ctx, r).is_none()
                    && self.leaf(ctx, l).is_some()
                    && matches!(
                        op,
                        BinOp::Add
                            | BinOp::Mul
                            | BinOp::And
                            | BinOp::Or
                            | BinOp::Xor
                            | BinOp::Eq
                            | BinOp::Ne
                    )
                {
                    let leaf = self.leaf(ctx, l).expect("checked");
                    self.expr(ctx, r)?;
                    self.bin_with_leaf(*op, leaf)?;
                    return Ok(());
                }
                self.expr(ctx, l)?;
                if let Some(leaf) = self.leaf(ctx, r) {
                    self.bin_with_leaf(*op, leaf)?;
                } else {
                    // General case via a temp slot.
                    if ctx.depth >= MAX_TEMPS {
                        return Err(CodegenError::ExprTooDeep);
                    }
                    let slot = Self::temp_slot(ctx.depth);
                    self.asm.mov_mr(Width::W64, slot, Reg::Rax);
                    ctx.depth += 1;
                    self.expr(ctx, r)?;
                    ctx.depth -= 1;
                    self.asm.mov_rr(Width::W64, Reg::Rcx, Reg::Rax);
                    self.asm.mov_rm(Width::W64, Reg::Rax, slot);
                    self.bin_with_reg(*op, Reg::Rcx)?;
                }
            }
            Expr::Index(base, idx) => {
                let mem = self.index_operand(ctx, base, idx)?;
                self.asm.mov_rm(Width::W64, Reg::Rax, mem);
            }
            Expr::Call(name, args) => self.call(ctx, name, args)?,
        }
        Ok(())
    }

    /// Computes the memory operand for `base[idx]`, leaving operand
    /// registers live. Base ends in `rax`; index (if non-constant) in
    /// `rcx`.
    fn index_operand(
        &mut self,
        ctx: &mut FnCtx,
        base: &Expr,
        idx: &Expr,
    ) -> Result<Mem, CodegenError> {
        // Register-resident base: build the operand without touching
        // rax/rcx (this is what lets consecutive accesses batch/merge).
        if let Some(rb) = self.reg_var(ctx, base) {
            match idx {
                Expr::Int(k) => return Ok(Mem::base_disp(rb, 8 * *k)),
                _ => {
                    if let Some(ri) = self.reg_var(ctx, idx) {
                        return Ok(Mem::bis(rb, ri, 8, 0));
                    }
                    if let Expr::Bin(BinOp::Add, i, k) = idx {
                        if let (Some(ri), Expr::Int(kv)) = (self.reg_var(ctx, i), &**k) {
                            return Ok(Mem::bis(rb, ri, 8, 8 * *kv));
                        }
                    }
                    if let Expr::Bin(BinOp::Sub, i, k) = idx {
                        if let (Some(ri), Expr::Int(kv)) = (self.reg_var(ctx, i), &**k) {
                            return Ok(Mem::bis(rb, ri, 8, -8 * *kv));
                        }
                    }
                    // General index into rax; base register stays put.
                    self.expr(ctx, idx)?;
                    return Ok(Mem::bis(rb, Reg::Rax, 8, 0));
                }
            }
        }
        self.expr(ctx, base)?;
        match idx {
            Expr::Int(k) => Ok(Mem::base_disp(Reg::Rax, 8 * *k)),
            // The common `a[i + k]` shape keeps the scaled-index form.
            Expr::Bin(BinOp::Add, i, k) if matches!(**k, Expr::Int(_)) => {
                let Expr::Int(kv) = **k else { unreachable!() };
                if ctx.depth >= MAX_TEMPS {
                    return Err(CodegenError::ExprTooDeep);
                }
                let slot = Self::temp_slot(ctx.depth);
                self.asm.mov_mr(Width::W64, slot, Reg::Rax);
                ctx.depth += 1;
                self.expr(ctx, i)?;
                ctx.depth -= 1;
                self.asm.mov_rr(Width::W64, Reg::Rcx, Reg::Rax);
                self.asm.mov_rm(Width::W64, Reg::Rax, slot);
                Ok(Mem::bis(Reg::Rax, Reg::Rcx, 8, 8 * kv))
            }
            _ => {
                if ctx.depth >= MAX_TEMPS {
                    return Err(CodegenError::ExprTooDeep);
                }
                let slot = Self::temp_slot(ctx.depth);
                self.asm.mov_mr(Width::W64, slot, Reg::Rax);
                ctx.depth += 1;
                self.expr(ctx, idx)?;
                ctx.depth -= 1;
                self.asm.mov_rr(Width::W64, Reg::Rcx, Reg::Rax);
                self.asm.mov_rm(Width::W64, Reg::Rax, slot);
                Ok(Mem::bis(Reg::Rax, Reg::Rcx, 8, 0))
            }
        }
    }

    fn bin_with_leaf(&mut self, op: BinOp, leaf: Leaf) -> Result<(), CodegenError> {
        match op {
            BinOp::Add | BinOp::Sub | BinOp::And | BinOp::Or | BinOp::Xor => {
                let alu = alu_of(op);
                match leaf {
                    Leaf::Imm(v) => self.asm.alu_ri(alu, Width::W64, Reg::Rax, v as i64),
                    Leaf::Reg(r) => self.asm.alu_rr(alu, Width::W64, Reg::Rax, r),
                    Leaf::Mem(m) => self.asm.alu_rm(alu, Width::W64, Reg::Rax, m),
                }
            }
            BinOp::Mul => match leaf {
                Leaf::Imm(v) => self.asm.imul_rri(Width::W64, Reg::Rax, Reg::Rax, v as i64),
                Leaf::Reg(r) => self.asm.imul_rr(Width::W64, Reg::Rax, r),
                Leaf::Mem(m) => self.asm.emit(Inst::new(
                    Op::Imul2,
                    Width::W64,
                    Operands::RM {
                        dst: Reg::Rax,
                        src: m,
                    },
                ))?,
            },
            BinOp::Div | BinOp::Rem => {
                match leaf {
                    Leaf::Imm(v) => self.asm.mov_ri(Width::W64, Reg::Rcx, v as i64),
                    Leaf::Reg(r) => self.asm.mov_rr(Width::W64, Reg::Rcx, r),
                    Leaf::Mem(m) => self.asm.mov_rm(Width::W64, Reg::Rcx, m),
                }
                self.divide(op == BinOp::Rem);
            }
            BinOp::Shl | BinOp::Shr => {
                let sh = if op == BinOp::Shl {
                    ShiftOp::Shl
                } else {
                    ShiftOp::Sar
                };
                match leaf {
                    Leaf::Imm(v) => self.asm.shift_ri(sh, Width::W64, Reg::Rax, (v & 63) as u8),
                    Leaf::Reg(r) => {
                        self.asm.mov_rr(Width::W64, Reg::Rcx, r);
                        self.asm.shift_cl(sh, Width::W64, Reg::Rax);
                    }
                    Leaf::Mem(m) => {
                        self.asm.mov_rm(Width::W64, Reg::Rcx, m);
                        self.asm.shift_cl(sh, Width::W64, Reg::Rax);
                    }
                }
            }
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne => {
                match leaf {
                    Leaf::Imm(v) => self.asm.alu_ri(AluOp::Cmp, Width::W64, Reg::Rax, v as i64),
                    Leaf::Reg(r) => self.asm.alu_rr(AluOp::Cmp, Width::W64, Reg::Rax, r),
                    Leaf::Mem(m) => self.asm.alu_rm(AluOp::Cmp, Width::W64, Reg::Rax, m),
                }
                self.set_cond(cond_of(op))?;
            }
            BinOp::LAnd | BinOp::LOr => unreachable!("handled in expr"),
        }
        Ok(())
    }

    fn bin_with_reg(&mut self, op: BinOp, rhs: Reg) -> Result<(), CodegenError> {
        match op {
            BinOp::Add | BinOp::Sub | BinOp::And | BinOp::Or | BinOp::Xor => {
                self.asm.alu_rr(alu_of(op), Width::W64, Reg::Rax, rhs);
            }
            BinOp::Mul => self.asm.imul_rr(Width::W64, Reg::Rax, rhs),
            BinOp::Div | BinOp::Rem => self.divide(op == BinOp::Rem),
            BinOp::Shl | BinOp::Shr => {
                debug_assert_eq!(rhs, Reg::Rcx);
                let sh = if op == BinOp::Shl {
                    ShiftOp::Shl
                } else {
                    ShiftOp::Sar
                };
                self.asm.shift_cl(sh, Width::W64, Reg::Rax);
            }
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne => {
                self.asm.alu_rr(AluOp::Cmp, Width::W64, Reg::Rax, rhs);
                self.set_cond(cond_of(op))?;
            }
            BinOp::LAnd | BinOp::LOr => unreachable!("handled in expr"),
        }
        Ok(())
    }

    /// `rax = rax / rcx` (or remainder): signed division.
    fn divide(&mut self, remainder: bool) {
        self.asm.cqo();
        self.asm.idiv_r(Reg::Rcx);
        if remainder {
            self.asm.mov_rr(Width::W64, Reg::Rax, Reg::Rdx);
        }
    }

    fn set_cond(&mut self, c: Cond) -> Result<(), CodegenError> {
        self.asm.setcc_r(c, Reg::Rax);
        self.asm.emit(Inst::new(
            Op::Movzx8,
            Width::W64,
            Operands::RR {
                dst: Reg::Rax,
                src: Reg::Rax,
            },
        ))?;
        Ok(())
    }

    fn call(&mut self, ctx: &mut FnCtx, name: &str, args: &[Expr]) -> Result<(), CodegenError> {
        // Intrinsics first.
        if let Some(()) = self.intrinsic(ctx, name, args)? {
            return Ok(());
        }
        let arity = *self
            .fn_arity
            .get(name)
            .ok_or_else(|| CodegenError::UndefinedFn(name.to_owned()))?;
        if arity != args.len() {
            return Err(CodegenError::ArityMismatch(
                name.to_owned(),
                arity,
                args.len(),
            ));
        }
        self.eval_args_to_regs(ctx, args)?;
        let label = self.asm.named_label(name);
        self.asm.call_label(label);
        Ok(())
    }

    /// Evaluates `args` into the System V argument registers.
    ///
    /// Non-leaf arguments evaluate through temp slots; leaf arguments
    /// (constants, register/stack variables) load directly at the end,
    /// after no further evaluation can clobber the argument registers.
    fn eval_args_to_regs(&mut self, ctx: &mut FnCtx, args: &[Expr]) -> Result<(), CodegenError> {
        const ARG_REGS: [Reg; 6] = [Reg::Rdi, Reg::Rsi, Reg::Rdx, Reg::Rcx, Reg::R8, Reg::R9];
        if ctx.depth + args.len() as i64 > MAX_TEMPS {
            return Err(CodegenError::ExprTooDeep);
        }
        let base_depth = ctx.depth;
        // Pass 1: complex arguments into temp slots.
        let leaves: Vec<Option<Leaf>> = args.iter().map(|a| self.leaf(ctx, a)).collect();
        for (i, arg) in args.iter().enumerate() {
            if leaves[i].is_none() {
                self.expr(ctx, arg)?;
                let slot = Self::temp_slot(base_depth + i as i64);
                self.asm.mov_mr(Width::W64, slot, Reg::Rax);
            }
            ctx.depth += 1;
        }
        ctx.depth = base_depth;
        // Pass 2: fill argument registers.
        for (i, &reg) in ARG_REGS.iter().take(args.len()).enumerate() {
            match leaves[i] {
                Some(Leaf::Imm(v)) => self.asm.mov_ri(Width::W64, reg, v as i64),
                Some(Leaf::Reg(r)) => self.asm.mov_rr(Width::W64, reg, r),
                Some(Leaf::Mem(m)) => self.asm.mov_rm(Width::W64, reg, m),
                None => {
                    let slot = Self::temp_slot(base_depth + i as i64);
                    self.asm.mov_rm(Width::W64, reg, slot);
                }
            }
        }
        Ok(())
    }

    /// Emits an intrinsic; returns `Ok(Some(()))` if `name` was one.
    fn intrinsic(
        &mut self,
        ctx: &mut FnCtx,
        name: &str,
        args: &[Expr],
    ) -> Result<Option<()>, CodegenError> {
        let arity_check = |want: usize| -> Result<(), CodegenError> {
            if args.len() != want {
                Err(CodegenError::ArityMismatch(
                    name.to_owned(),
                    want,
                    args.len(),
                ))
            } else {
                Ok(())
            }
        };
        let nr = match name {
            "malloc" => {
                arity_check(1)?;
                syscalls::MALLOC
            }
            "free" => {
                arity_check(1)?;
                syscalls::FREE
            }
            "calloc" => {
                arity_check(2)?;
                syscalls::CALLOC
            }
            "realloc" => {
                arity_check(2)?;
                syscalls::REALLOC
            }
            "print" => {
                arity_check(1)?;
                syscalls::PRINT_INT
            }
            "putc" => {
                arity_check(1)?;
                syscalls::PRINT_CHAR
            }
            "input" => {
                arity_check(0)?;
                // input() -> value, or -1 at EOF.
                self.asm
                    .mov_ri(Width::W64, Reg::Rax, syscalls::READ_INT as i64);
                self.asm.syscall();
                let ok = self.asm.label();
                self.asm.test_rr(Width::W64, Reg::Rdx, Reg::Rdx);
                self.asm.jcc_label(Cond::Ne, ok);
                self.asm.mov_ri(Width::W64, Reg::Rax, -1);
                self.asm.bind(ok)?;
                return Ok(Some(()));
            }
            "callptr" => {
                // callptr(f, args...): indirect call through a function
                // pointer -- the mini-C mechanism for calling into a
                // separately compiled (and separately hardened) library.
                if args.is_empty() || args.len() > 4 {
                    return Err(CodegenError::ArityMismatch(name.to_owned(), 2, args.len()));
                }
                // Evaluate call arguments into the argument registers,
                // then the target into rax, then call through it.
                self.eval_args_to_regs(ctx, &args[1..])?;
                if let Some(r) = self.reg_var(ctx, &args[0]) {
                    self.asm.call_ind_r(r);
                } else {
                    self.expr(ctx, &args[0])?;
                    self.asm.mov_rr(Width::W64, Reg::R11, Reg::Rax);
                    self.asm.call_ind_r(Reg::R11);
                }
                return Ok(Some(()));
            }
            "load8" => {
                arity_check(2)?;
                // load8(p, i): zero-extended byte at p + i. Fast path for
                // register-resident pointer: no argument shuffling.
                if let Some(rp) = self.reg_var(ctx, &args[0]) {
                    if let Some(ri) = self.reg_var(ctx, &args[1]) {
                        self.asm.movzx8_rm(Reg::Rax, Mem::bis(rp, ri, 1, 0));
                        return Ok(Some(()));
                    }
                    if let Expr::Int(k) = &args[1] {
                        self.asm.movzx8_rm(Reg::Rax, Mem::base_disp(rp, *k));
                        return Ok(Some(()));
                    }
                    self.expr(ctx, &args[1])?;
                    self.asm.movzx8_rm(Reg::Rax, Mem::bis(rp, Reg::Rax, 1, 0));
                    return Ok(Some(()));
                }
                self.eval_args_to_regs(ctx, args)?;
                self.asm
                    .movzx8_rm(Reg::Rax, Mem::bis(Reg::Rdi, Reg::Rsi, 1, 0));
                return Ok(Some(()));
            }
            "store8" => {
                arity_check(3)?;
                // store8(p, i, v), with a register-pointer fast path.
                if let (Some(rp), Some(value_leaf)) =
                    (self.reg_var(ctx, &args[0]), self.leaf(ctx, &args[2]))
                {
                    let mem = if let Some(ri) = self.reg_var(ctx, &args[1]) {
                        Some(Mem::bis(rp, ri, 1, 0))
                    } else if let Expr::Int(k) = &args[1] {
                        Some(Mem::base_disp(rp, *k))
                    } else {
                        self.expr(ctx, &args[1])?;
                        self.asm.mov_rr(Width::W64, Reg::Rcx, Reg::Rax);
                        Some(Mem::bis(rp, Reg::Rcx, 1, 0))
                    };
                    if let Some(mem) = mem {
                        match value_leaf {
                            Leaf::Imm(v) => self.asm.mov_ri(Width::W64, Reg::Rax, v as i64),
                            Leaf::Reg(r) => self.asm.mov_rr(Width::W64, Reg::Rax, r),
                            Leaf::Mem(m) => self.asm.mov_rm(Width::W64, Reg::Rax, m),
                        }
                        self.asm.mov_mr(Width::W8, mem, Reg::Rax);
                        return Ok(Some(()));
                    }
                }
                self.eval_args_to_regs(ctx, args)?;
                self.asm.mov_rr(Width::W64, Reg::Rax, Reg::Rdx);
                self.asm
                    .mov_mr(Width::W8, Mem::bis(Reg::Rdi, Reg::Rsi, 1, 0), Reg::Rax);
                return Ok(Some(()));
            }
            _ => return Ok(None),
        };
        self.eval_args_to_regs(ctx, args)?;
        self.asm.mov_ri(Width::W64, Reg::Rax, nr as i64);
        self.asm.syscall();
        Ok(Some(()))
    }

    fn stmts(&mut self, ctx: &mut FnCtx, stmts: &[Stmt]) -> Result<(), CodegenError> {
        ctx.vars.push(HashMap::new());
        ctx.scope_regs.push(Vec::new());
        let mut i = 0usize;
        while i < stmts.len() {
            // Batching peephole: runs of constant-index stores/loads
            // through the same pointer variable.
            if let Some(run) = self.store_run(ctx, &stmts[i..]) {
                self.emit_store_run(ctx, &stmts[i..i + run])?;
                i += run;
                continue;
            }
            self.stmt(ctx, &stmts[i])?;
            i += 1;
        }
        ctx.vars.pop();
        for r in ctx.scope_regs.pop().expect("pushed above") {
            ctx.free_regs.push(r);
        }
        Ok(())
    }

    /// Length of a maximal run (>= 2) of `p[k] = leaf;` statements with
    /// the same pointer variable `p` and constant indices.
    fn store_run(&self, ctx: &FnCtx, stmts: &[Stmt]) -> Option<usize> {
        let ptr_of = |s: &Stmt| -> Option<String> {
            match s {
                Stmt::Store(Expr::Var(p), Expr::Int(_), value) => {
                    if self.leaf(ctx, value).is_some() {
                        Some(p.clone())
                    } else {
                        None
                    }
                }
                _ => None,
            }
        };
        let first = ptr_of(stmts.first()?)?;
        let mut n = 1;
        while n < stmts.len() && ptr_of(&stmts[n]).as_deref() == Some(first.as_str()) {
            n += 1;
        }
        (n >= 2).then_some(n)
    }

    /// Emits a store run through the dedicated address register.
    fn emit_store_run(&mut self, ctx: &mut FnCtx, run: &[Stmt]) -> Result<(), CodegenError> {
        let Stmt::Store(Expr::Var(pname), _, _) = &run[0] else {
            unreachable!("store_run checked the shape");
        };
        let p = self
            .lookup(ctx, pname)
            .ok_or_else(|| CodegenError::UndefinedVar(pname.clone()))?;
        let addr_reg = match p {
            Place::RegVar(r) => r,
            _ => {
                self.asm.mov_rm(Width::W64, ADDR_REG, Self::place_mem(p));
                ADDR_REG
            }
        };
        for s in run {
            let Stmt::Store(_, Expr::Int(k), value) = s else {
                unreachable!("store_run checked the shape");
            };
            let dst = Mem::base_disp(addr_reg, 8 * *k);
            match self.leaf(ctx, value).expect("store_run checked leaf") {
                Leaf::Imm(v) => self.asm.mov_mi(Width::W64, dst, v as i64),
                Leaf::Reg(r) => self.asm.mov_mr(Width::W64, dst, r),
                Leaf::Mem(m) => {
                    self.asm.mov_rm(Width::W64, Reg::Rax, m);
                    self.asm.mov_mr(Width::W64, dst, Reg::Rax);
                }
            }
        }
        Ok(())
    }

    fn stmt(&mut self, ctx: &mut FnCtx, s: &Stmt) -> Result<(), CodegenError> {
        match s {
            Stmt::Decl(name, init) => {
                self.expr(ctx, init)?;
                let place = Self::alloc_place(ctx, name);
                ctx.vars
                    .last_mut()
                    .expect("scope stack non-empty")
                    .insert(name.clone(), place);
                match place {
                    Place::RegVar(r) => self.asm.mov_rr(Width::W64, r, Reg::Rax),
                    Place::Slot(off) => {
                        self.asm
                            .mov_mr(Width::W64, Mem::base_disp(Reg::Rsp, off), Reg::Rax)
                    }
                    Place::Global(_) => unreachable!("locals are never global"),
                }
            }
            Stmt::Assign(name, value) => {
                let p = self
                    .lookup(ctx, name)
                    .ok_or_else(|| CodegenError::UndefinedVar(name.clone()))?;
                self.expr(ctx, value)?;
                match p {
                    Place::RegVar(r) => self.asm.mov_rr(Width::W64, r, Reg::Rax),
                    _ => self.asm.mov_mr(Width::W64, Self::place_mem(p), Reg::Rax),
                }
            }
            Stmt::Store(base, idx, value) => {
                // Evaluate the value first (into a temp), then the
                // address, then store.
                if let Some(leaf) = self.leaf(ctx, value) {
                    let mem = self.index_operand(ctx, base, idx)?;
                    match leaf {
                        Leaf::Imm(v) => self.asm.mov_mi(Width::W64, mem, v as i64),
                        Leaf::Reg(r) => self.asm.mov_mr(Width::W64, mem, r),
                        Leaf::Mem(src) => {
                            // A memory-to-memory move needs a scratch; rdx
                            // is free here (never an operand register).
                            self.asm.mov_rm(Width::W64, Reg::Rdx, src);
                            self.asm.mov_mr(Width::W64, mem, Reg::Rdx);
                        }
                    }
                } else {
                    if ctx.depth >= MAX_TEMPS {
                        return Err(CodegenError::ExprTooDeep);
                    }
                    let slot = Self::temp_slot(ctx.depth);
                    self.expr(ctx, value)?;
                    self.asm.mov_mr(Width::W64, slot, Reg::Rax);
                    ctx.depth += 1;
                    let mem = self.index_operand(ctx, base, idx)?;
                    ctx.depth -= 1;
                    self.asm.mov_rm(Width::W64, Reg::Rdx, slot);
                    self.asm.mov_mr(Width::W64, mem, Reg::Rdx);
                }
            }
            Stmt::Expr(e) => self.expr(ctx, e)?,
            Stmt::If(cond, then, els) => {
                let else_l = self.asm.label();
                let end = self.asm.label();
                self.expr(ctx, cond)?;
                self.asm.test_rr(Width::W64, Reg::Rax, Reg::Rax);
                self.asm.jcc_label(Cond::E, else_l);
                self.stmts(ctx, then)?;
                self.asm.jmp_label(end);
                self.asm.bind(else_l)?;
                self.stmts(ctx, els)?;
                self.asm.bind(end)?;
            }
            Stmt::While(cond, body) => {
                let top = self.asm.label();
                let end = self.asm.label();
                self.asm.bind(top)?;
                self.expr(ctx, cond)?;
                self.asm.test_rr(Width::W64, Reg::Rax, Reg::Rax);
                self.asm.jcc_label(Cond::E, end);
                ctx.loops.push((top, end));
                self.stmts(ctx, body)?;
                ctx.loops.pop();
                self.asm.jmp_label(top);
                self.asm.bind(end)?;
            }
            Stmt::For(init, cond, step, body) => {
                ctx.vars.push(HashMap::new());
                ctx.scope_regs.push(Vec::new());
                self.stmt(ctx, init)?;
                let top = self.asm.label();
                let cont = self.asm.label();
                let end = self.asm.label();
                self.asm.bind(top)?;
                self.expr(ctx, cond)?;
                self.asm.test_rr(Width::W64, Reg::Rax, Reg::Rax);
                self.asm.jcc_label(Cond::E, end);
                ctx.loops.push((cont, end));
                self.stmts(ctx, body)?;
                ctx.loops.pop();
                self.asm.bind(cont)?;
                self.stmt(ctx, step)?;
                self.asm.jmp_label(top);
                self.asm.bind(end)?;
                ctx.vars.pop();
                for r in ctx.scope_regs.pop().expect("pushed above") {
                    ctx.free_regs.push(r);
                }
            }
            Stmt::Return(e) => {
                self.expr(ctx, e)?;
                self.asm.jmp_label(ctx.epilogue);
            }
            Stmt::Break => {
                let &(_, end) = ctx.loops.last().ok_or(CodegenError::NotInLoop)?;
                self.asm.jmp_label(end);
            }
            Stmt::Continue => {
                let &(cont, _) = ctx.loops.last().ok_or(CodegenError::NotInLoop)?;
                self.asm.jmp_label(cont);
            }
        }
        Ok(())
    }

    fn function(&mut self, f: &Function) -> Result<(), CodegenError> {
        // Pass 1 (dry run into a discarded assembler): discover how many
        // pool registers the body actually needs, so the real prologue
        // only saves those -- like a compiler emitting a minimal
        // callee-save sequence.
        let saved_asm =
            std::mem::replace(&mut self.asm, Asm::new(redfat_vm::layout::TRAMPOLINE_BASE));
        let max_regs = match self.gen_function_body(f, REG_POOL.len()) {
            Ok(m) => m,
            Err(e) => {
                self.asm = saved_asm;
                return Err(e);
            }
        };
        self.asm = saved_asm;

        // Pass 2: real emission with the minimal save set.
        let label = self.asm.named_label(&f.name);
        self.asm.bind(label)?;
        for &r in &REG_POOL[..max_regs] {
            self.asm.push_r(r);
        }
        let frame = Self::frame_size(f);
        self.asm.alu_ri(AluOp::Sub, Width::W64, Reg::Rsp, frame);
        let used = self.gen_function_body(f, max_regs)?;
        debug_assert!(used <= max_regs);
        self.asm.alu_ri(AluOp::Add, Width::W64, Reg::Rsp, frame);
        for &r in REG_POOL[..max_regs].iter().rev() {
            self.asm.pop_r(r);
        }
        self.asm.ret();
        Ok(())
    }

    /// Generates a function body (parameters, statements, epilogue
    /// label) with a pool of `pool_cap` registers; returns the register
    /// high-water mark. Allocation is deterministic, so a second pass
    /// with `pool_cap` = the first pass's result makes identical
    /// decisions.
    fn gen_function_body(&mut self, f: &Function, pool_cap: usize) -> Result<usize, CodegenError> {
        // r8/r9 double as the 5th/6th argument registers: exclude them
        // from the pool when this function makes calls that wide.
        let arity = self.max_call_arity(f);
        let pool_len = if arity >= 6 {
            pool_cap.min(REG_POOL.len() - 2)
        } else if arity >= 5 {
            pool_cap.min(REG_POOL.len() - 1)
        } else {
            pool_cap
        };
        let mut free_regs: Vec<Reg> = REG_POOL[..pool_len].to_vec();
        free_regs.reverse(); // hand out rbx first
        let epilogue = self.asm.label();
        let mut ctx = FnCtx {
            vars: vec![HashMap::new()],
            scope_regs: vec![Vec::new()],
            nlocals: 0,
            free_regs,
            pool_len,
            max_regs: 0,
            reg_names: Self::hot_names(f, pool_len),
            depth: 0,
            epilogue,
            loops: Vec::new(),
        };
        // Home the parameters (pool registers first, then slots).
        const ARG_REGS: [Reg; 6] = [Reg::Rdi, Reg::Rsi, Reg::Rdx, Reg::Rcx, Reg::R8, Reg::R9];
        for (i, pname) in f.params.iter().enumerate() {
            let place = Self::alloc_place(&mut ctx, pname);
            ctx.vars[0].insert(pname.clone(), place);
            match place {
                Place::RegVar(r) => self.asm.mov_rr(Width::W64, r, ARG_REGS[i]),
                Place::Slot(off) => {
                    self.asm
                        .mov_mr(Width::W64, Mem::base_disp(Reg::Rsp, off), ARG_REGS[i])
                }
                Place::Global(_) => unreachable!("params are never global"),
            }
        }
        self.stmts(&mut ctx, &f.body)?;
        // Implicit `return 0` fall-through.
        self.asm.mov_ri(Width::W64, Reg::Rax, 0);
        self.asm.bind(epilogue)?;
        Ok(ctx.max_regs)
    }
}

fn alu_of(op: BinOp) -> AluOp {
    match op {
        BinOp::Add => AluOp::Add,
        BinOp::Sub => AluOp::Sub,
        BinOp::And => AluOp::And,
        BinOp::Or => AluOp::Or,
        BinOp::Xor => AluOp::Xor,
        other => unreachable!("not a plain ALU op: {other:?}"),
    }
}

fn cond_of(op: BinOp) -> Cond {
    match op {
        BinOp::Lt => Cond::L,
        BinOp::Le => Cond::Le,
        BinOp::Gt => Cond::G,
        BinOp::Ge => Cond::Ge,
        BinOp::Eq => Cond::E,
        BinOp::Ne => Cond::Ne,
        other => unreachable!("not a comparison: {other:?}"),
    }
}

/// Code-generation options.
#[derive(Debug, Clone, Copy)]
pub struct CodegenOptions {
    /// Base address of the text segment.
    pub code_base: u64,
    /// Base address of the globals segment.
    pub globals_base: u64,
    /// Emit the startup stub (`call main; exit`). Libraries set this to
    /// `false`; their functions are reached through `callptr`.
    pub entry_stub: bool,
}

impl Default for CodegenOptions {
    fn default() -> CodegenOptions {
        CodegenOptions {
            code_base: layout::CODE_BASE,
            globals_base: layout::GLOBALS_BASE,
            entry_stub: true,
        }
    }
}

/// Generates an ELF image from a parsed program at the default layout.
pub fn generate(program: &Program) -> Result<Image, CodegenError> {
    generate_with(program, CodegenOptions::default())
}

/// Generates an ELF image with explicit bases (used for library images
/// that must not collide with the main program).
pub fn generate_with(program: &Program, opts: CodegenOptions) -> Result<Image, CodegenError> {
    // Assign global addresses.
    let mut globals = HashMap::new();
    let mut gaddr = opts.globals_base;
    for g in &program.globals {
        if globals.contains_key(&g.name) {
            return Err(CodegenError::Duplicate(g.name.clone()));
        }
        globals.insert(g.name.clone(), (gaddr, g.elems));
        gaddr += 8 * g.elems;
    }
    let globals_size = gaddr - opts.globals_base;

    let mut fn_arity = HashMap::new();
    for f in &program.functions {
        if fn_arity.insert(f.name.clone(), f.params.len()).is_some() {
            return Err(CodegenError::Duplicate(f.name.clone()));
        }
    }

    let mut g = Gen {
        asm: Asm::new(opts.code_base),
        globals,
        fn_arity,
    };

    if opts.entry_stub {
        // Startup stub: call main; exit(result).
        let main_l = g.asm.named_label("main");
        g.asm.call_label(main_l);
        g.asm.mov_rr(Width::W64, Reg::Rdi, Reg::Rax);
        g.asm.mov_ri(Width::W64, Reg::Rax, syscalls::EXIT as i64);
        g.asm.syscall();
    }

    for f in &program.functions {
        g.function(f)?;
    }

    // Collect function symbols (strippable; hardening never reads them).
    let symbols = program
        .functions
        .iter()
        .filter_map(|f| {
            let label = g.asm.named_label(&f.name);
            g.asm.label_addr(label).map(|addr| redfat_elf::Symbol {
                name: f.name.clone(),
                value: addr,
                size: 0,
            })
        })
        .collect();

    let prog = g.asm.finish()?;
    let mut segments = vec![Segment::new(prog.base, SegFlags::RX, prog.bytes)];
    if globals_size > 0 {
        segments.push(Segment {
            vaddr: opts.globals_base,
            flags: SegFlags::RW,
            data: vec![],
            mem_size: globals_size,
        });
    }
    Ok(Image {
        kind: ImageKind::Exec,
        entry: opts.code_base,
        segments,
        symbols,
    })
}
