//! Recursive-descent parser for mini-C.

use crate::ast::{BinOp, Expr, Function, Global, Program, Stmt, UnOp};
use crate::lexer::Token;

/// A parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Token index where the error occurred.
    pub at: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "token {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

struct P<'a> {
    toks: &'a [Token],
    pos: usize,
}

impl<'a> P<'a> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            at: self.pos,
            message: msg.into(),
        })
    }

    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<&Token> {
        let t = self.toks.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Token) -> Result<(), ParseError> {
        if self.peek() == Some(t) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected {t:?}, found {:?}", self.peek()))
        }
    }

    fn try_eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next().cloned() {
            Some(Token::Ident(s)) => Ok(s),
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }

    fn program(&mut self, require_main: bool) -> Result<Program, ParseError> {
        let mut p = Program::default();
        while let Some(tok) = self.peek() {
            match tok {
                Token::Global => {
                    self.pos += 1;
                    let name = self.ident()?;
                    let elems = if self.try_eat(&Token::LBracket) {
                        let n = match self.next().cloned() {
                            Some(Token::Int(v)) if v > 0 => v as u64,
                            other => {
                                return self.err(format!("expected array size, got {other:?}"))
                            }
                        };
                        self.eat(&Token::RBracket)?;
                        n
                    } else {
                        1
                    };
                    self.eat(&Token::Semi)?;
                    p.globals.push(Global { name, elems });
                }
                Token::Fn => {
                    self.pos += 1;
                    let name = self.ident()?;
                    self.eat(&Token::LParen)?;
                    let mut params = Vec::new();
                    if !self.try_eat(&Token::RParen) {
                        loop {
                            params.push(self.ident()?);
                            if self.try_eat(&Token::RParen) {
                                break;
                            }
                            self.eat(&Token::Comma)?;
                        }
                    }
                    if params.len() > 6 {
                        return self.err("at most 6 parameters supported");
                    }
                    let body = self.block()?;
                    p.functions.push(Function { name, params, body });
                }
                other => return self.err(format!("expected fn/global, got {other:?}")),
            }
        }
        if require_main && !p.functions.iter().any(|f| f.name == "main") {
            return self.err("program has no main function");
        }
        Ok(p)
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.eat(&Token::LBrace)?;
        let mut stmts = Vec::new();
        while !self.try_eat(&Token::RBrace) {
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek() {
            Some(Token::Var) => {
                self.pos += 1;
                let name = self.ident()?;
                self.eat(&Token::Assign)?;
                let init = self.expr()?;
                self.eat(&Token::Semi)?;
                Ok(Stmt::Decl(name, init))
            }
            Some(Token::If) => {
                self.pos += 1;
                self.eat(&Token::LParen)?;
                let cond = self.expr()?;
                self.eat(&Token::RParen)?;
                let then = self.block()?;
                let els = if self.try_eat(&Token::Else) {
                    if self.peek() == Some(&Token::If) {
                        vec![self.stmt()?]
                    } else {
                        self.block()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If(cond, then, els))
            }
            Some(Token::While) => {
                self.pos += 1;
                self.eat(&Token::LParen)?;
                let cond = self.expr()?;
                self.eat(&Token::RParen)?;
                let body = self.block()?;
                Ok(Stmt::While(cond, body))
            }
            Some(Token::For) => {
                self.pos += 1;
                self.eat(&Token::LParen)?;
                let init = self.simple_stmt()?;
                self.eat(&Token::Semi)?;
                let cond = self.expr()?;
                self.eat(&Token::Semi)?;
                let step = self.simple_stmt_no_semi()?;
                self.eat(&Token::RParen)?;
                let body = self.block()?;
                Ok(Stmt::For(Box::new(init), cond, Box::new(step), body))
            }
            Some(Token::Return) => {
                self.pos += 1;
                let e = if self.peek() == Some(&Token::Semi) {
                    Expr::Int(0)
                } else {
                    self.expr()?
                };
                self.eat(&Token::Semi)?;
                Ok(Stmt::Return(e))
            }
            Some(Token::Break) => {
                self.pos += 1;
                self.eat(&Token::Semi)?;
                Ok(Stmt::Break)
            }
            Some(Token::Continue) => {
                self.pos += 1;
                self.eat(&Token::Semi)?;
                Ok(Stmt::Continue)
            }
            _ => {
                let s = self.simple_stmt_no_semi()?;
                self.eat(&Token::Semi)?;
                Ok(s)
            }
        }
    }

    /// A statement allowed in `for` headers: decl, assignment, store or
    /// expression (no trailing semicolon consumed).
    fn simple_stmt(&mut self) -> Result<Stmt, ParseError> {
        if self.peek() == Some(&Token::Var) {
            self.pos += 1;
            let name = self.ident()?;
            self.eat(&Token::Assign)?;
            let init = self.expr()?;
            return Ok(Stmt::Decl(name, init));
        }
        self.simple_stmt_no_semi()
    }

    fn simple_stmt_no_semi(&mut self) -> Result<Stmt, ParseError> {
        // Lookahead: `ident = ...` is assignment, `expr [ e ] = ...` is a
        // store; anything else is an expression statement.
        let start = self.pos;
        let e = self.expr()?;
        if self.try_eat(&Token::Assign) {
            let value = self.expr()?;
            match e {
                Expr::Var(name) => return Ok(Stmt::Assign(name, value)),
                Expr::Index(base, index) => return Ok(Stmt::Store(*base, *index, value)),
                _ => {
                    self.pos = start;
                    return self.err("invalid assignment target");
                }
            }
        }
        Ok(Stmt::Expr(e))
    }

    // Precedence climbing: || < && < |&^ < ==/!= < cmp < shifts < +- < */%.
    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.lor()
    }

    fn lor(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.land()?;
        while self.try_eat(&Token::OrOr) {
            let r = self.land()?;
            e = Expr::Bin(BinOp::LOr, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn land(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.bitor()?;
        while self.try_eat(&Token::AndAnd) {
            let r = self.bitor()?;
            e = Expr::Bin(BinOp::LAnd, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn bitor(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.bitxor()?;
        while self.try_eat(&Token::Pipe) {
            let r = self.bitxor()?;
            e = Expr::Bin(BinOp::Or, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn bitxor(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.bitand()?;
        while self.try_eat(&Token::Caret) {
            let r = self.bitand()?;
            e = Expr::Bin(BinOp::Xor, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn bitand(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.equality()?;
        while self.try_eat(&Token::Amp) {
            let r = self.equality()?;
            e = Expr::Bin(BinOp::And, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn equality(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.relational()?;
        loop {
            let op = match self.peek() {
                Some(Token::EqEq) => BinOp::Eq,
                Some(Token::NotEq) => BinOp::Ne,
                _ => break,
            };
            self.pos += 1;
            let r = self.relational()?;
            e = Expr::Bin(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn relational(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.shift()?;
        loop {
            let op = match self.peek() {
                Some(Token::Lt) => BinOp::Lt,
                Some(Token::Le) => BinOp::Le,
                Some(Token::Gt) => BinOp::Gt,
                Some(Token::Ge) => BinOp::Ge,
                _ => break,
            };
            self.pos += 1;
            let r = self.shift()?;
            e = Expr::Bin(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn shift(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.additive()?;
        loop {
            let op = match self.peek() {
                Some(Token::Shl) => BinOp::Shl,
                Some(Token::Shr) => BinOp::Shr,
                _ => break,
            };
            self.pos += 1;
            let r = self.additive()?;
            e = Expr::Bin(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let r = self.multiplicative()?;
            e = Expr::Bin(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                Some(Token::Percent) => BinOp::Rem,
                _ => break,
            };
            self.pos += 1;
            let r = self.unary()?;
            e = Expr::Bin(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Some(Token::Minus) => {
                self.pos += 1;
                Ok(Expr::Un(UnOp::Neg, Box::new(self.unary()?)))
            }
            Some(Token::Tilde) => {
                self.pos += 1;
                Ok(Expr::Un(UnOp::Not, Box::new(self.unary()?)))
            }
            Some(Token::Bang) => {
                self.pos += 1;
                Ok(Expr::Un(UnOp::LNot, Box::new(self.unary()?)))
            }
            Some(Token::Amp) => {
                // `&name`: address of a global array.
                self.pos += 1;
                let name = self.ident()?;
                Ok(Expr::GlobalAddr(name))
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        while self.try_eat(&Token::LBracket) {
            let idx = self.expr()?;
            self.eat(&Token::RBracket)?;
            e = Expr::Index(Box::new(e), Box::new(idx));
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.next().cloned() {
            Some(Token::Int(v)) => Ok(Expr::Int(v)),
            Some(Token::Ident(name)) => {
                if self.try_eat(&Token::LParen) {
                    let mut args = Vec::new();
                    if !self.try_eat(&Token::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.try_eat(&Token::RParen) {
                                break;
                            }
                            self.eat(&Token::Comma)?;
                        }
                    }
                    Ok(Expr::Call(name, args))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            Some(Token::LParen) => {
                let e = self.expr()?;
                self.eat(&Token::RParen)?;
                Ok(e)
            }
            other => self.err(format!("unexpected token {other:?}")),
        }
    }
}

/// Parses a token stream into a [`Program`] (requires a `main`).
pub fn parse(tokens: &[Token]) -> Result<Program, ParseError> {
    let mut p = P {
        toks: tokens,
        pos: 0,
    };
    p.program(true)
}

/// Parses a library translation unit (no `main` required).
pub fn parse_library(tokens: &[Token]) -> Result<Program, ParseError> {
    let mut p = P {
        toks: tokens,
        pos: 0,
    };
    p.program(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Result<Program, ParseError> {
        parse(&lex(src).unwrap())
    }

    #[test]
    fn parses_minimal_main() {
        let p = parse_src("fn main() { return 0; }").unwrap();
        assert_eq!(p.functions.len(), 1);
        assert_eq!(p.functions[0].name, "main");
    }

    #[test]
    fn requires_main() {
        assert!(parse_src("fn f() { return 0; }").is_err());
    }

    #[test]
    fn parses_globals() {
        let p = parse_src("global x; global arr[10]; fn main() { return 0; }").unwrap();
        assert_eq!(p.globals.len(), 2);
        assert_eq!(p.globals[1].elems, 10);
    }

    #[test]
    fn precedence_mul_over_add() {
        let p = parse_src("fn main() { return 1 + 2 * 3; }").unwrap();
        match &p.functions[0].body[0] {
            Stmt::Return(Expr::Bin(BinOp::Add, l, r)) => {
                assert_eq!(**l, Expr::Int(1));
                assert!(matches!(**r, Expr::Bin(BinOp::Mul, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_indexed_store_and_load() {
        let p = parse_src("fn main() { var a = malloc(8); a[0] = a[0] + 1; return 0; }").unwrap();
        assert!(matches!(p.functions[0].body[1], Stmt::Store(..)));
    }

    #[test]
    fn parses_for_loop() {
        let p =
            parse_src("fn main() { for (var i = 0; i < 10; i = i + 1) { print(i); } return 0; }")
                .unwrap();
        assert!(matches!(p.functions[0].body[0], Stmt::For(..)));
    }

    #[test]
    fn parses_else_if_chain() {
        let p = parse_src(
            "fn main() { if (1) { return 1; } else if (2) { return 2; } else { return 3; } }",
        )
        .unwrap();
        match &p.functions[0].body[0] {
            Stmt::If(_, _, els) => assert!(matches!(els[0], Stmt::If(..))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn too_many_params_rejected() {
        assert!(parse_src("fn f(a,b,c,d,e,g,h) { return 0; } fn main() { return 0; }").is_err());
    }

    #[test]
    fn nested_index_parses() {
        let p = parse_src("fn main() { var a = 0; return a[a[1]]; }").unwrap();
        match &p.functions[0].body[1] {
            Stmt::Return(Expr::Index(_, idx)) => {
                assert!(matches!(**idx, Expr::Index(..)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
